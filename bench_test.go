// Package hiconc_test is the root benchmark harness: one benchmark family
// per experiment of EXPERIMENTS.md. Run all of them with
//
//	go test -bench=. -benchmem
//
// The cmd/hibench tool prints the same measurements as formatted tables.
package hiconc_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hiconc/internal/adversary"
	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/hihash"
	"hiconc/internal/linearize"
	"hiconc/internal/llsc"
	"hiconc/internal/registers"
	"hiconc/internal/shard"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
	"hiconc/internal/workload"
)

// --- E10: native SWSR register algorithms ---

func BenchmarkE10Write(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		writes := workload.NewGen(1).RegisterWrites(4096, k)
		b.Run(fmt.Sprintf("alg1/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg1Register(k, 1)
			for i := 0; i < b.N; i++ {
				r.Write(writes[i%len(writes)].Arg)
			}
		})
		b.Run(fmt.Sprintf("alg2/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg2Register(k, 1)
			for i := 0; i < b.N; i++ {
				r.Write(writes[i%len(writes)].Arg)
			}
		})
		b.Run(fmt.Sprintf("alg4/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg4Register(k, 1)
			for i := 0; i < b.N; i++ {
				r.Write(writes[i%len(writes)].Arg)
			}
		})
	}
}

func BenchmarkE10Read(b *testing.B) {
	for _, k := range []int{4, 64} {
		b.Run(fmt.Sprintf("alg1/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg1Register(k, k)
			for i := 0; i < b.N; i++ {
				r.Read()
			}
		})
		b.Run(fmt.Sprintf("alg2/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg2Register(k, k)
			for i := 0; i < b.N; i++ {
				r.Read()
			}
		})
		b.Run(fmt.Sprintf("alg4/K=%d", k), func(b *testing.B) {
			r := conc.NewAlg4Register(k, k)
			for i := 0; i < b.N; i++ {
				r.Read()
			}
		})
	}
}

func BenchmarkE10ReadUnderWriteStorm(b *testing.B) {
	const k = 64
	b.Run("alg2", func(b *testing.B) {
		r := conc.NewAlg2Register(k, 1)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := 1
			for {
				select {
				case <-stop:
					return
				default:
					v = v%k + 1
					r.Write(v)
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Read()
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
	b.Run("alg4", func(b *testing.B) {
		r := conc.NewAlg4Register(k, 1)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := 1
			for {
				select {
				case <-stop:
					return
				default:
					v = v%k + 1
					r.Write(v)
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Read()
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- E11: universal construction scaling ---

// benchApplier drives a with n goroutines splitting b.N operations of the
// given mix.
func benchApplier(b *testing.B, a conc.Applier, n int, readFrac float64) {
	b.Helper()
	mixes := make([][]core.Op, n)
	for pid := range mixes {
		mixes[pid] = workload.NewGen(int64(pid)).CounterMix(4096, readFrac)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/n + 1
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			mix := mixes[pid]
			for i := 0; i < per; i++ {
				a.Apply(pid, mix[i%len(mix)])
			}
		}(pid)
	}
	wg.Wait()
}

func BenchmarkE11UniversalCounter(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hi/procs=%d", n), func(b *testing.B) {
			benchApplier(b, conc.NewUniversal(conc.CounterObj{}, n), n, 0.2)
		})
		b.Run(fmt.Sprintf("leaky/procs=%d", n), func(b *testing.B) {
			benchApplier(b, conc.NewLeakyUniversal(conc.CounterObj{}, n), n, 0.2)
		})
		b.Run(fmt.Sprintf("mutex/procs=%d", n), func(b *testing.B) {
			benchApplier(b, conc.NewMutexObject(conc.CounterObj{}), n, 0.2)
		})
		b.Run(fmt.Sprintf("nohelp/procs=%d", n), func(b *testing.B) {
			benchApplier(b, conc.NewNoHelpUniversal(conc.CounterObj{}), n, 0.2)
		})
	}
}

func BenchmarkE11UniversalQueue(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("hi/procs=%d", n), func(b *testing.B) {
			a := conc.NewUniversal(conc.QueueObj{}, n)
			mixes := make([][]core.Op, n)
			for pid := range mixes {
				mixes[pid] = workload.NewGen(int64(pid)).QueueMix(4096, 0.2, 8)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/n + 1
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						a.Apply(pid, mixes[pid][i%len(mixes[pid])])
					}
				}(pid)
			}
			wg.Wait()
		})
	}
}

// --- E12: clearing overhead ---

func BenchmarkE12ClearingOverhead(b *testing.B) {
	const n = 4
	for _, readFrac := range []float64{0.0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("hi/reads=%.0f%%", readFrac*100), func(b *testing.B) {
			benchApplier(b, conc.NewUniversal(conc.CounterObj{}, n), n, readFrac)
		})
		b.Run(fmt.Sprintf("leaky/reads=%.0f%%", readFrac*100), func(b *testing.B) {
			benchApplier(b, conc.NewLeakyUniversal(conc.CounterObj{}, n), n, readFrac)
		})
	}
}

// --- E20: shard scaling and operation combining ---

// benchPerKey drives applier a with n goroutines, each replaying its own
// seeded per-key operation mix.
func benchPerKey(b *testing.B, a conc.Applier, n int, mix func(pid int) []core.Op) {
	b.Helper()
	mixes := make([][]core.Op, n)
	for pid := range mixes {
		mixes[pid] = mix(pid)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/n + 1
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ops := mixes[pid]
			for i := 0; i < per; i++ {
				a.Apply(pid, ops[i%len(ops)])
			}
		}(pid)
	}
	wg.Wait()
}

// BenchmarkE20ShardScaling measures sharded-set and sharded-map throughput
// against the single-Universal baseline as the shard count grows, over a
// large key space with mild Zipf skew (s = 1.01, load spreads across
// shards). Two scaling mechanisms compose: on multicore hardware shards
// update in parallel, and on any hardware each update copies an immutable
// state that is S times smaller — so throughput rises with S even at
// GOMAXPROCS=1.
func BenchmarkE20ShardScaling(b *testing.B) {
	const n, domain = 8, 16384
	setMix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).SetZipf(8192, domain, 1.01, 0.1)
	}
	mapMix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).MapZipf(8192, 256, 1.01, 0.1)
	}
	b.Run("set/baseline", func(b *testing.B) {
		benchPerKey(b, conc.NewUniversal(conc.BigSetObj{Words: domain / 64}, n), n, setMix)
	})
	for _, s := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("set/shards=%d", s), func(b *testing.B) {
			benchPerKey(b, shard.NewSet(n, domain, s), n, setMix)
		})
	}
	b.Run("map/baseline", func(b *testing.B) {
		benchPerKey(b, conc.NewUniversal(conc.MultiCounterObj{}, n), n, mapMix)
	})
	for _, s := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("map/shards=%d", s), func(b *testing.B) {
			benchPerKey(b, shard.NewMap(n, 256, s), n, mapMix)
		})
	}
}

// BenchmarkE20Combining is the combining ablation: the same contended
// workloads through Algorithm 5 with and without operation combining. The
// counter case is total contention (every update hits one head); the
// sharded-map case adds combining on top of sharding under Zipf skew.
func BenchmarkE20Combining(b *testing.B) {
	const n, keys = 8, 64
	ctrMix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).CounterMix(4096, 0.0)
	}
	mapMix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).MapZipf(4096, keys, 1.5, 0.0)
	}
	b.Run("counter/plain", func(b *testing.B) {
		benchPerKey(b, conc.NewUniversal(conc.CounterObj{}, n), n, ctrMix)
	})
	b.Run("counter/combining", func(b *testing.B) {
		benchPerKey(b, conc.NewCombiningUniversal(conc.CounterObj{}, n), n, ctrMix)
	})
	for _, s := range []int{1, 4} {
		b.Run(fmt.Sprintf("map/shards=%d/plain", s), func(b *testing.B) {
			benchPerKey(b, shard.NewMap(n, keys, s), n, mapMix)
		})
		b.Run(fmt.Sprintf("map/shards=%d/combining", s), func(b *testing.B) {
			benchPerKey(b, shard.NewCombiningMap(n, keys, s), n, mapMix)
		})
	}
}

// --- E21: the HICHT direct hash table vs the universal-construction path ---

// BenchmarkE21HashTable measures the direct lock-free HICHT table
// (internal/hihash) against the sharded universal construction and a
// sync.Map baseline on insert/remove/lookup mixes at 8 goroutines, across
// load factors (table capacity relative to the domain) and Zipf skews.
// The hihash table has no per-object or per-shard serialization point —
// lookups are one atomic load and updates one CAS — so it should beat the
// sharded universal construction by a wide margin on every mix. Caveat
// for the load=1.0 column: at capacity == domain a fraction of inserts is
// rejected with RspFull, which is cheaper than a real insert; cmd/hibench
// -exp E21 prints the rejection rates (see EXPERIMENTS.md).
func BenchmarkE21HashTable(b *testing.B) {
	const n, domain = 8, 16384
	for _, s := range []float64{1.01, 1.5} {
		mix := func(pid int) []core.Op {
			return workload.NewGen(int64(pid)).SetZipf(8192, domain, s, 0.1)
		}
		b.Run(fmt.Sprintf("zipf=%.2f/hihash/load=0.5", s), func(b *testing.B) {
			benchPerKey(b, hihash.NewSet(domain, domain/2), n, mix)
		})
		b.Run(fmt.Sprintf("zipf=%.2f/hihash/load=1.0", s), func(b *testing.B) {
			benchPerKey(b, hihash.NewSet(domain, domain/4), n, mix)
		})
		b.Run(fmt.Sprintf("zipf=%.2f/sharded-universal/S=16", s), func(b *testing.B) {
			benchPerKey(b, shard.NewSet(n, domain, 16), n, mix)
		})
		b.Run(fmt.Sprintf("zipf=%.2f/sharded-hihash/S=16", s), func(b *testing.B) {
			benchPerKey(b, shard.NewHashSet(n, domain, 16), n, mix)
		})
		b.Run(fmt.Sprintf("zipf=%.2f/syncmap", s), func(b *testing.B) {
			benchPerKey(b, conc.NewSyncMapSet(), n, mix)
		})
	}
}

// BenchmarkE21HashMap is the multi-counter side of E21: the pointer-
// bucket hihash map against the sharded universal-construction map under
// Zipf-skewed per-key increments.
func BenchmarkE21HashMap(b *testing.B) {
	const n, keys = 8, 256
	mix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).MapZipf(8192, keys, 1.2, 0.1)
	}
	b.Run("hihash-map", func(b *testing.B) {
		benchPerKey(b, hihash.NewMap(keys, keys/4), n, mix)
	})
	b.Run("sharded-universal/S=16", func(b *testing.B) {
		benchPerKey(b, shard.NewMap(n, keys, 16), n, mix)
	})
	b.Run("sharded-universal-combining/S=16", func(b *testing.B) {
		benchPerKey(b, shard.NewCombiningMap(n, keys, 16), n, mix)
	})
}

// --- E22: the unbounded HICHT — displacement and online resize ---

// BenchmarkE22DisplaceLoadFactor measures the displacing table across
// load factors relative to its initial capacity, 0.5 through 1.5: past
// 1.0 the bounded table of E21 rejects inserts, the displacing one
// spills into neighbouring groups and doubles its array online. The
// bounded table and sync.Map anchor the comparison.
func BenchmarkE22DisplaceLoadFactor(b *testing.B) {
	const n, domain = 8, 8192
	g0 := domain / 8 // initial capacity domain/2
	mix := func(pid int) []core.Op {
		return workload.NewGen(int64(pid)).SetZipf(8192, domain, 1.01, 0.1)
	}
	for _, lf := range []float64{0.5, 1.0, 1.5} {
		load := int(lf * float64(g0) * hihash.SlotsPerGroup)
		b.Run(fmt.Sprintf("load=%.1f/displace", lf), func(b *testing.B) {
			s := hihash.NewDisplaceSet(domain, g0)
			for k := 1; k <= load; k++ {
				s.Insert(k)
			}
			benchPerKey(b, s, n, mix)
		})
		b.Run(fmt.Sprintf("load=%.1f/bounded", lf), func(b *testing.B) {
			s := hihash.NewSet(domain, g0)
			for k := 1; k <= load; k++ {
				s.Insert(k) // rejects silently above load 1.0 — E21's caveat
			}
			benchPerKey(b, s, n, mix)
		})
		b.Run(fmt.Sprintf("load=%.1f/syncmap", lf), func(b *testing.B) {
			s := conc.NewSyncMapSet()
			for k := 1; k <= load; k++ {
				s.Apply(0, core.Op{Name: spec.OpInsert, Arg: k})
			}
			benchPerKey(b, s, n, mix)
		})
	}
}

// BenchmarkE22ResizeUnderLoad fills the whole domain from 8 goroutines
// into a displacing table that starts 64x too small, so the cooperative
// migration runs several times mid-storm; the pre-sized variant is the
// no-resize ceiling and the gap between them is the amortized resize
// cost.
func BenchmarkE22ResizeUnderLoad(b *testing.B) {
	const n, domain = 8, 16384
	storm := func(b *testing.B, mk func() conc.Applier) {
		for i := 0; i < b.N; i++ {
			a := mk()
			var wg sync.WaitGroup
			per := domain / n
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						a.Apply(pid, core.Op{Name: spec.OpInsert, Arg: pid*per + j + 1})
					}
				}(pid)
			}
			wg.Wait()
		}
	}
	b.Run("displace/G0=16", func(b *testing.B) {
		storm(b, func() conc.Applier { return hihash.NewDisplaceSet(domain, 16) })
	})
	b.Run("displace/presized", func(b *testing.B) {
		storm(b, func() conc.Applier { return hihash.NewDisplaceSet(domain, domain/2) })
	})
	b.Run("syncmap", func(b *testing.B) {
		storm(b, func() conc.Applier { return conc.NewSyncMapSet() })
	})
}

// --- R-LLSC cell primitives (Algorithm 6's native port) ---

func BenchmarkCellLLSC(b *testing.B) {
	b.Run("uncontended", func(b *testing.B) {
		c := conc.NewCell(0)
		for i := 0; i < b.N; i++ {
			v := c.LL(0).(int)
			if !c.SC(0, v+1) {
				b.Fatal("uncontended SC failed")
			}
		}
	})
	b.Run("contended", func(b *testing.B) {
		c := conc.NewCell(0)
		var pidCtr atomic.Int32
		b.RunParallel(func(pb *testing.PB) {
			pid := int(pidCtr.Add(1)-1) % 64
			for pb.Next() {
				for {
					v := c.LL(pid).(int)
					if c.SC(pid, v+1) {
						break
					}
				}
			}
		})
	})
	b.Run("load", func(b *testing.B) {
		c := conc.NewCell(7)
		for i := 0; i < b.N; i++ {
			_ = c.Load()
		}
	})
}

// --- E1/E2: checker machinery throughput ---

func BenchmarkE1CanonicalMap(b *testing.B) {
	h := registers.NewAlg2(3, 1)
	for i := 0; i < b.N; i++ {
		if _, err := hicheck.BuildCanon(h, 2, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Exhaustive(b *testing.B) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		b.Fatal(err)
	}
	scripts := hicheck.Scripts(h, []int{1, 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, 12, 1_000_000, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4/E5: adversary round throughput ---

func BenchmarkE4AdversaryRound(b *testing.B) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := adversary.Run(h, adversary.RegisterConfig(3), c, b.N)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Starved {
		b.Fatalf("unexpected outcome: %v", res)
	}
}

func BenchmarkE5QueueAdversaryRound(b *testing.B) {
	h := registers.NewHIQueue(3, 2)
	c, err := hicheck.BuildCanon(h, 2, 1500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := adversary.Run(h, adversary.QueueConfig(3), c, b.N)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Starved {
		b.Fatalf("unexpected outcome: %v", res)
	}
}

// --- E6: simulator and universal construction in the simulator ---

func BenchmarkE6SimulatedUniversalOp(b *testing.B) {
	inc := core.Op{Name: spec.OpInc}
	for _, f := range []llsc.Factory{llsc.HardwareFactory{}, llsc.CASFactory{}} {
		b.Run(f.Name(), func(b *testing.B) {
			h := universal.CounterHarness(b.N+4, 1, f, universal.Full)
			script := make([]core.Op, b.N)
			for i := range script {
				script[i] = inc
			}
			r := h.BuildScripts([][]core.Op{script})
			b.ResetTimer()
			tr := r.Run(&sim.RoundRobin{}, 1<<62)
			b.StopTimer()
			if got := len(tr.Responses(0)); got != b.N {
				b.Fatalf("completed %d of %d ops", got, b.N)
			}
		})
	}
}

func BenchmarkSimStep(b *testing.B) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "spin"}, false)
		for {
			p.Read(x)
		}
	}
	r := sim.NewRunner(mem, []sim.Program{prog}, sim.WithSnapshots(false))
	r.Start()
	defer r.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0)
	}
}

// --- linearizability checker ---

func BenchmarkLinearizeCheck(b *testing.B) {
	h := registers.NewAlg4(3, 1)
	w := func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
	rd := core.Op{Name: spec.OpRead}
	tr := h.Builder([][]core.Op{{w(2), w(3), w(1)}, {rd, rd, rd}})().Run(sim.NewRandomSched(5), 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linearize.Check(h.Spec, tr.Events); err != nil {
			b.Fatal(err)
		}
	}
}
