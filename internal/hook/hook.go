// Package hook factors out the one-global-atomic-observer idiom that the
// observability layers share: hihash's steppoint hook, histats' recorder
// pointer and hirec's flight recorder each hang off a single global
// atomic pointer, so the disabled path of every instrumented site is one
// atomic load and a predicted branch.
//
// A Point carries no synchronization beyond the pointer itself, which is
// exactly the idiom's contract: Install and Uninstall may race with
// instrumented traffic, and sites that already loaded the old observer
// finish their current event against it. Callers that need stronger
// hand-off (e.g. "no site still writes to the old observer") must
// quiesce the instrumented code themselves.
package hook

import "sync/atomic"

// Point is one global observer slot for observers of type T. The zero
// Point is empty and ready to use.
type Point[T any] struct {
	p atomic.Pointer[T]
}

// Install makes v the observer and returns the previous one (nil if the
// point was empty). Installing nil is equivalent to Uninstall.
func (pt *Point[T]) Install(v *T) (old *T) { return pt.p.Swap(v) }

// Uninstall empties the point and returns the observer that was
// installed (nil if none), so callers can still drain what it gathered.
func (pt *Point[T]) Uninstall() (old *T) { return pt.p.Swap(nil) }

// Load returns the installed observer, nil when the point is empty.
// This is the load every instrumented site's fast path pays.
func (pt *Point[T]) Load() *T { return pt.p.Load() }

// Enabled reports whether an observer is installed.
func (pt *Point[T]) Enabled() bool { return pt.p.Load() != nil }
