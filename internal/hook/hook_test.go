package hook

import (
	"sync"
	"testing"
)

func TestInstallUninstall(t *testing.T) {
	var pt Point[int]
	if pt.Load() != nil || pt.Enabled() {
		t.Fatal("zero Point is not empty")
	}
	a, b := new(int), new(int)
	if old := pt.Install(a); old != nil {
		t.Fatalf("Install on empty point returned %v", old)
	}
	if pt.Load() != a || !pt.Enabled() {
		t.Fatal("Install(a) did not take")
	}
	if old := pt.Install(b); old != a {
		t.Fatal("Install(b) did not return the previous observer")
	}
	if old := pt.Uninstall(); old != b {
		t.Fatal("Uninstall did not return the installed observer")
	}
	if pt.Load() != nil || pt.Enabled() {
		t.Fatal("Uninstall left an observer installed")
	}
	if old := pt.Uninstall(); old != nil {
		t.Fatal("Uninstall on empty point returned an observer")
	}
	if old := pt.Install(nil); old != nil {
		t.Fatal("Install(nil) on empty point returned an observer")
	}
}

// TestChurn races installs, uninstalls and loads; every Load must see
// nil or one of the installed observers (this test exists for -race).
func TestChurn(t *testing.T) {
	var pt Point[int]
	a, b := new(int), new(int)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(v *int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pt.Install(v)
				pt.Uninstall()
			}
		}([]*int{a, b}[w])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4000; i++ {
			if v := pt.Load(); v != nil && v != a && v != b {
				t.Error("Load returned a pointer that was never installed")
				return
			}
		}
	}()
	wg.Wait()
}
