package trace_test

import (
	"os"
	"path/filepath"
	"testing"

	"hiconc/internal/hirec"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
)

// TestNativeTimelineGolden pins the flight-recording rendering against a
// golden file, using a hand-built recording with fixed timestamps (real
// recordings carry wall-clock time, so the fixture is synthetic: two
// lanes, one overlapping op pair, a protocol step, and a drop count).
// Regenerate with: go test ./internal/trace -run NativeTimelineGolden -update
func TestNativeTimelineGolden(t *testing.T) {
	base := int64(1_000_000_000)
	rec := hirec.Recording{
		Dropped: 2,
		Events: []hirec.Event{
			{Seq: 1, TS: base, Kind: hirec.KInvoke, Lane: 0, Index: 0, Name: spec.OpInsert, Arg: 5},
			{Seq: 2, TS: base + 3_000, Kind: hirec.KInvoke, Lane: 1, Index: 0, Name: spec.OpLookup, Arg: 5},
			{Seq: 3, TS: base + 7_000, Kind: hirec.KStep, Lane: 0, Index: -1, Name: "mark-set"},
			{Seq: 4, TS: base + 12_000, Kind: hirec.KReturn, Lane: 0, Index: 0, Name: spec.OpInsert, Arg: 5, Resp: 0},
			{Seq: 5, TS: base + 15_000, Kind: hirec.KReturn, Lane: 1, Index: 0, Name: spec.OpLookup, Arg: 5, Resp: 1},
		},
	}
	got := trace.NativeTimeline(rec)

	golden := filepath.Join("testdata", "native_timeline.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline drifted from golden:\n got:\n%s\nwant:\n%s", got, want)
	}
}
