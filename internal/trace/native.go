package trace

import (
	"fmt"
	"strings"

	"hiconc/internal/hirec"
)

// NativeTimeline renders a flight recording (internal/hirec) in the
// style of Figure1, but for a real execution instead of a simulated one:
// one line per recorded event in global sequence order, showing the
// microsecond offset from the first event, the recorder lane (the
// history's process id), and whether the event is an operation
// invocation, its response, or a labeled protocol step the goroutine
// performed in between. The sequence column is the ordering authority;
// the timestamp column is coarse wall-clock decoration.
func NativeTimeline(rec hirec.Recording) string {
	var b strings.Builder
	lanes := map[int32]bool{}
	var base int64
	for i, ev := range rec.Events {
		lanes[ev.Lane] = true
		if i == 0 || ev.TS < base {
			base = ev.TS
		}
	}
	var span int64
	for _, ev := range rec.Events {
		if ev.TS-base > span {
			span = ev.TS - base
		}
	}
	fmt.Fprintf(&b, "native flight recording: %d events over %d lanes (span %dµs, %d dropped)\n",
		len(rec.Events), len(lanes), span/1e3, rec.Dropped)
	for _, ev := range rec.Events {
		us := (ev.TS - base) / 1e3
		switch ev.Kind {
		case hirec.KInvoke:
			fmt.Fprintf(&b, "%5d %6dµs  g%-2d >>> invoke  %s(%d)\n",
				ev.Seq, us, ev.Lane, ev.Name, ev.Arg)
		case hirec.KReturn:
			fmt.Fprintf(&b, "%5d %6dµs  g%-2d <<< return  %d from %s(%d)\n",
				ev.Seq, us, ev.Lane, ev.Resp, ev.Name, ev.Arg)
		case hirec.KStep:
			fmt.Fprintf(&b, "%5d %6dµs  g%-2d  ·  step    %s\n",
				ev.Seq, us, ev.Lane, ev.Name)
		default:
			fmt.Fprintf(&b, "%5d %6dµs  g%-2d  ?  corrupt kind %d\n",
				ev.Seq, us, ev.Lane, ev.Kind)
		}
	}
	return b.String()
}
