package trace_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hiconc/internal/histats"
	"hiconc/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestStatsTableGolden pins the -watch table rendering against a golden
// file: a deterministic set of counter and histogram events, rendered
// once with a previous snapshot (rate column) and once cumulatively.
// Regenerate with: go test ./internal/trace -run StatsTableGolden -update
func TestStatsTableGolden(t *testing.T) {
	r := histats.NewRecorder()
	r.Inc(histats.CtrHashInsert, 1000)
	r.Inc(histats.CtrHashLookup, 500)
	r.Inc(histats.CtrHashCASFail, 7)
	r.Inc(histats.CtrCombineBatch, 12)
	r.Inc(histats.CtrBoundedUpdate, 901)
	for v := uint64(1); v <= 8; v++ {
		for i := uint64(0); i < 9-v; i++ {
			r.Observe(histats.HistProbeLen, v)
		}
	}
	for i, ns := range []uint64{90, 110, 130, 250, 600, 1500, 4000, 21000} {
		for j := 0; j <= i; j++ {
			r.Observe(histats.HistUpdateNanos, ns)
		}
	}

	t0 := time.Date(2024, 7, 1, 12, 0, 0, 0, time.UTC)
	prev := &histats.Snapshot{Taken: t0}
	cur := r.Snapshot()
	cur.Taken = t0.Add(2 * time.Second)

	got := "-- live view (2s since previous snapshot) --\n" +
		trace.StatsTable(cur, prev) +
		"\n-- cumulative view --\n" +
		trace.StatsTable(cur, nil)

	golden := filepath.Join("testdata", "stats_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("StatsTable drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestStatsTableSuppressesZeroRows: an idle recorder renders only the
// headers — the table shows what the workload exercised, nothing else —
// except the read-path retry metrics, whose zero rows are the E26
// signal (no lookup ever retried) and must always render.
func TestStatsTableSuppressesZeroRows(t *testing.T) {
	r := histats.NewRecorder()
	out := trace.StatsTable(r.Snapshot(), nil)
	for _, c := range []histats.Counter{histats.CtrHashInsert, histats.CtrHeadRetry} {
		if containsRow(out, c.String()) {
			t.Errorf("zero counter %v rendered:\n%s", c, out)
		}
	}
	for _, c := range []histats.Counter{histats.CtrLookupRetry, histats.CtrLookupHelp} {
		if !containsRow(out, c.String()) {
			t.Errorf("read-path counter %v suppressed at zero:\n%s", c, out)
		}
	}
	if !containsRow(out, histats.HistLookupRetry.String()) {
		t.Errorf("read-path histogram %v suppressed at zero:\n%s", histats.HistLookupRetry, out)
	}
}

func containsRow(out, name string) bool {
	for _, line := range splitLines(out) {
		if len(line) >= len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return append(lines, s[start:])
}
