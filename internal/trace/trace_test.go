package trace_test

import (
	"strings"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/llsc"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
	"hiconc/internal/universal"
)

func TestFigure1Rendering(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	scripts := [][]core.Op{
		{{Name: spec.OpWrite, Arg: 2}},
		{{Name: spec.OpRead}},
	}
	tr := h.BuildScripts(scripts).Run(&sim.RoundRobin{}, 200)
	out := trace.Figure1(tr)
	for _, needle := range []string{"(initial)", "invokes", "returns", "A1 A2 A3"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Figure1 output missing %q:\n%s", needle, out)
		}
	}
	// A write is pending mid-execution: at least one P-class configuration.
	if !strings.Contains(out, " P ") {
		t.Error("expected at least one P (perfect-only) configuration")
	}
	if !strings.Contains(out, " Q ") {
		t.Error("expected at least one quiescent configuration")
	}
}

func TestHeadModesRendering(t *testing.T) {
	h := universal.CounterHarness(2, 2, llsc.CASFactory{}, universal.Full)
	inc := core.Op{Name: spec.OpInc}
	tr := h.BuildScripts([][]core.Op{{inc}, {inc}}).Run(&sim.RoundRobin{}, 2000)
	out := trace.HeadModes(tr)
	if !strings.Contains(out, "head") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Two increments: head passes through <1,...> and <2,...>.
	if !strings.Contains(out, "<1,") || !strings.Contains(out, "<2,") {
		t.Errorf("expected both increment transitions:\n%s", out)
	}
}

func TestHeadModesNoHead(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	tr := h.BuildScripts([][]core.Op{{{Name: spec.OpWrite, Arg: 2}}, nil}).Run(&sim.RoundRobin{}, 100)
	if out := trace.HeadModes(tr); !strings.Contains(out, "no head object") {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestSummary(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	scripts := [][]core.Op{{{Name: spec.OpWrite, Arg: 3}}, {{Name: spec.OpRead}}}
	tr := h.BuildScripts(scripts).Run(sim.FixedSchedule{0, 0, 0, 1, 1, 1, 1, 1}, 200)
	out := trace.Summary(tr)
	if !strings.Contains(out, "write(3) = 0") {
		t.Errorf("missing write in summary:\n%s", out)
	}
	if !strings.Contains(out, "read() = 3") {
		t.Errorf("missing read in summary:\n%s", out)
	}
}
