package trace

import (
	"fmt"
	"strings"

	"hiconc/internal/histats"
)

// alwaysShow lists the metrics StatsTable renders even at zero: for
// the E26 read path, absence is the information — a read-heavy run
// whose lookup-retry and lookup-help rows read 0 is the headline (no
// lookup ever needed a second collect), and hiding the rows would make
// that indistinguishable from the metric not being wired at all.
var alwaysShowCounters = map[histats.Counter]bool{
	histats.CtrLookupRetry: true,
	histats.CtrLookupHelp:  true,
}

var alwaysShowHists = map[histats.Hist]bool{
	histats.HistLookupRetry: true,
}

// StatsTable renders a histats snapshot as the live protocol-metrics
// table of `hibench -watch`: one row per non-zero counter (total, and
// events/sec against prev when given), then one row per non-zero
// histogram with count, mean, p50/p90/p99 and max. Zero counters and
// empty histograms are suppressed — except the read-path retry metrics
// (alwaysShowCounters/alwaysShowHists), whose zeros are meaningful —
// so the table only shows what the workload actually exercised; pass
// prev = nil for a since-start view without the rate column.
func StatsTable(cur, prev *histats.Snapshot) string {
	var b strings.Builder
	withRate := prev != nil
	var secs float64
	if withRate {
		secs = cur.Taken.Sub(prev.Taken).Seconds()
	}

	if withRate {
		fmt.Fprintf(&b, "%-16s %12s %14s\n", "counter", "total", "/s")
	} else {
		fmt.Fprintf(&b, "%-16s %12s\n", "counter", "total")
	}
	for c := histats.Counter(0); c < histats.NumCounters; c++ {
		total := cur.Counters[c]
		if total == 0 && !alwaysShowCounters[c] {
			continue
		}
		if withRate {
			rate := 0.0
			if secs > 0 {
				rate = float64(total-prev.Counters[c]) / secs
			}
			fmt.Fprintf(&b, "%-16s %12d %14.0f\n", c, total, rate)
		} else {
			fmt.Fprintf(&b, "%-16s %12d\n", c, total)
		}
	}

	fmt.Fprintf(&b, "\n%-14s %10s %10s %8s %8s %8s %8s\n",
		"hist", "count", "mean", "p50", "p90", "p99", "max")
	for h := histats.Hist(0); h < histats.NumHists; h++ {
		hs := &cur.Hists[h]
		if hs.Count == 0 && !alwaysShowHists[h] {
			continue
		}
		fmt.Fprintf(&b, "%-14s %10d %10.1f %8d %8d %8d %8d\n",
			h, hs.Count, hs.Mean(),
			hs.Quantile(0.50), hs.Quantile(0.90), hs.Quantile(0.99), hs.Max())
	}
	return b.String()
}
