// Package trace renders executions in the style of the paper's figures:
// Figure 1's annotated timeline with observation-point classes, and
// Figure 3's head-mode transitions of the universal construction.
package trace

import (
	"fmt"
	"strings"

	"hiconc/internal/sim"
)

// Figure1 renders the execution as a step timeline, marking after each
// configuration which observation classes admit it:
//
//	P — admitted by perfect HI only (some state-changing op pending)
//	S — state-quiescent (admitted by perfect and state-quiescent HI)
//	Q — quiescent (admitted by all three definitions)
//
// mirroring the ①②③④ observation points of Figure 1.
func Figure1(t *sim.Trace) string {
	var b strings.Builder
	configs := t.Configs()
	classOf := func(c sim.Config) string {
		switch {
		case c.Quiescent():
			return "Q"
		case c.StateQuiescent():
			return "S"
		default:
			return "P"
		}
	}
	fmt.Fprintf(&b, "objects: %s\n", strings.Join(t.ObjNames, " "))
	fmt.Fprintf(&b, "%4s %-3s %-28s %-8s %s\n", "k", "cls", "step", "result", "mem(C_k)")
	fmt.Fprintf(&b, "%4d %-3s %-28s %-8s %s\n", 0, classOf(configs[0]), "(initial)", "", strings.Join(t.Initial, " "))
	evIdx := 0
	emit := func(upto int) {
		for evIdx < len(t.Events) && t.Events[evIdx].StepIndex <= upto {
			ev := t.Events[evIdx]
			switch ev.Kind {
			case sim.EvInvoke:
				fmt.Fprintf(&b, "     >>> p%d invokes %v\n", ev.PID, ev.Op)
			case sim.EvReturn:
				fmt.Fprintf(&b, "     <<< p%d returns %d from %v\n", ev.PID, ev.Resp, ev.Op)
			}
			evIdx++
		}
	}
	emit(0)
	for k, s := range t.Steps {
		for evIdx < len(t.Events) && t.Events[evIdx].StepIndex == k+1 && t.Events[evIdx].Kind == sim.EvInvoke {
			fmt.Fprintf(&b, "     >>> p%d invokes %v\n", t.Events[evIdx].PID, t.Events[evIdx].Op)
			evIdx++
		}
		fmt.Fprintf(&b, "%4d %-3s p%d: %-24s %-8v %s\n",
			k+1, classOf(configs[k+1]), s.PID, s.Prim.String(), s.Result, strings.Join(s.Mem, " "))
		emit(k + 1)
	}
	emit(len(t.Steps) + 1)
	return b.String()
}

// HeadModes renders the Figure 3 mode transitions: the sequence of values
// written to the base object named "head", which under Invariant 22
// alternates between mode A (⟨q,⊥⟩) and mode B (⟨q',⟨r,j⟩⟩).
func HeadModes(t *sim.Trace) string {
	headIdx := -1
	for i, name := range t.ObjNames {
		if name == "head" {
			headIdx = i
			break
		}
	}
	if headIdx < 0 {
		return "no head object in this trace\n"
	}
	var b strings.Builder
	prev := t.Initial[headIdx]
	fmt.Fprintf(&b, "%4s %-4s %s\n", "k", "by", "head")
	fmt.Fprintf(&b, "%4d %-4s %s\n", 0, "", prev)
	for k, s := range t.Steps {
		cur := s.Mem[headIdx]
		if cur != prev {
			fmt.Fprintf(&b, "%4d p%-3d %s\n", k+1, s.PID, cur)
			prev = cur
		}
	}
	return b.String()
}

// Summary renders one line per completed operation, useful for quick looks
// at histories.
func Summary(t *sim.Trace) string {
	var b strings.Builder
	for _, ev := range t.Events {
		if ev.Kind == sim.EvReturn {
			fmt.Fprintf(&b, "p%d %v = %d\n", ev.PID, ev.Op, ev.Resp)
		}
	}
	return b.String()
}
