package obj_test

import (
	"math/rand"
	"testing"

	"hiconc/internal/hihash"
	"hiconc/internal/obj"
	"hiconc/internal/shard"
)

// This file is the API-layer history-independence property test: equal
// abstract states reached by different operation orders must yield
// byte-identical Snapshot() strings, equal to the pure canonical-snapshot
// functions. It is direct SQHI evidence at the public surface,
// complementing the machine checks that internal/hicheck runs against the
// simulated twins.

// targetSet draws a random subset of {1..domain}.
func targetSet(rng *rand.Rand, domain int) []int {
	var out []int
	for k := 1; k <= domain; k++ {
		if rng.Intn(3) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// shuffled returns a copy of keys in random order.
func shuffled(rng *rand.Rand, keys []int) []int {
	out := append([]int(nil), keys...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func inSet(keys []int, k int) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// TestShardedSetSnapshotCanonicalProperty: for random target sets, two
// random histories (different insertion orders, different churn of
// non-target keys, different invoking processes) must leave the sharded
// set's composite memory byte-identical and equal to
// shard.CanonicalSetSnapshot.
func TestShardedSetSnapshotCanonicalProperty(t *testing.T) {
	const n, domain, nShards, trials = 4, 48, 4, 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := targetSet(rng, domain)
		history := func(seed int64) string {
			hrng := rand.New(rand.NewSource(seed))
			s := obj.NewShardedSet(n, domain, nShards)
			handles := make([]*obj.ShardedSetHandle, n)
			for pid := range handles {
				handles[pid] = s.Handle(pid)
			}
			for _, k := range shuffled(hrng, target) {
				h := handles[hrng.Intn(n)]
				// Churn a non-target key around the real insert.
				decoy := hrng.Intn(domain) + 1
				for inSet(target, decoy) {
					decoy = decoy%domain + 1
				}
				h.Insert(decoy)
				h.Insert(k)
				handles[hrng.Intn(n)].Remove(decoy)
			}
			return s.Snapshot()
		}
		a, b := history(int64(1000+trial)), history(int64(2000+trial))
		if a != b {
			t.Fatalf("trial %d: same state, different composite memories:\n a: %s\n b: %s", trial, a, b)
		}
		if want := shard.CanonicalSetSnapshot(n, domain, nShards, target); a != want {
			t.Fatalf("trial %d: memory not canonical:\n got:  %s\n want: %s", trial, a, want)
		}
	}
}

// TestShardedMapSnapshotCanonicalProperty: random target counts reached
// through different inc/dec orders must leave identical composite
// memories equal to shard.CanonicalMapSnapshot.
func TestShardedMapSnapshotCanonicalProperty(t *testing.T) {
	const n, keys, nShards, trials = 4, 24, 4, 20
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		counts := map[int]int{}
		for k := 1; k <= keys; k++ {
			if rng.Intn(3) == 0 {
				counts[k] = rng.Intn(4) + 1
			}
		}
		history := func(seed int64) string {
			hrng := rand.New(rand.NewSource(seed))
			m := obj.NewShardedMap(n, keys, nShards)
			handles := make([]*obj.ShardedMapHandle, n)
			for pid := range handles {
				handles[pid] = m.Handle(pid)
			}
			// Emit the needed increments in random order, with extra
			// inc/dec churn that cancels out.
			var steps []func()
			for k, v := range counts {
				k := k
				for i := 0; i < v; i++ {
					steps = append(steps, func() { handles[hrng.Intn(n)].Inc(k) })
				}
			}
			for i := 0; i < keys/2; i++ {
				k := hrng.Intn(keys) + 1
				steps = append(steps, func() { handles[hrng.Intn(n)].Inc(k) })
				steps = append(steps, func() { handles[hrng.Intn(n)].Dec(k) })
			}
			// Churn pairs must both run; shuffle whole steps only.
			hrng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
			for _, st := range steps {
				st()
			}
			return m.Snapshot()
		}
		a, b := history(int64(3000+trial)), history(int64(4000+trial))
		if a != b {
			t.Fatalf("trial %d: same counts, different composite memories:\n a: %s\n b: %s", trial, a, b)
		}
		if want := shard.CanonicalMapSnapshot(n, keys, nShards, counts); a != want {
			t.Fatalf("trial %d: memory not canonical:\n got:  %s\n want: %s", trial, a, want)
		}
	}
}

// TestHashSetSnapshotCanonicalProperty: the same property for the direct
// HICHT table, whose snapshot must additionally match
// hihash.CanonicalSetSnapshot for the realized key set.
func TestHashSetSnapshotCanonicalProperty(t *testing.T) {
	const domain, trials = 48, 20
	nGroups := hihash.DefaultGroups(domain)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := targetSet(rng, domain)
		history := func(seed int64) string {
			hrng := rand.New(rand.NewSource(seed))
			s := obj.NewHashSet(domain)
			for _, k := range shuffled(hrng, target) {
				decoy := hrng.Intn(domain) + 1
				for inSet(target, decoy) {
					decoy = decoy%domain + 1
				}
				s.Insert(decoy)
				s.Insert(k)
				s.Remove(decoy)
			}
			if g := s.NumGroups(); g != nGroups {
				t.Fatalf("trial %d: table grew to %d groups under a balanced set", trial, g)
			}
			return s.Snapshot()
		}
		a, b := history(int64(5000+trial)), history(int64(6000+trial))
		if a != b {
			t.Fatalf("trial %d: same state, different memories:\n a: %s\n b: %s", trial, a, b)
		}
		if want := hihash.CanonicalSetSnapshot(domain, nGroups, target); a != want {
			t.Fatalf("trial %d: memory not canonical:\n got:  %s\n want: %s", trial, a, want)
		}
	}
}

// TestHashMapSnapshotMatchesShardedMapSemantics: the two map backends
// must agree on counts for identical operation sequences, and the hash
// map's memory must be canonical.
func TestHashMapSnapshotMatchesShardedMapSemantics(t *testing.T) {
	const keys = 24
	sharded := obj.NewShardedMap(1, keys, 4)
	hashed := obj.NewHashMap(keys)
	h := sharded.Handle(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		k := rng.Intn(keys) + 1
		if rng.Intn(2) == 0 {
			if a, b := h.Inc(k), hashed.Inc(k); a != b {
				t.Fatalf("Inc(%d) responses diverge: %d vs %d", k, a, b)
			}
		} else {
			if a, b := h.Dec(k), hashed.Dec(k); a != b {
				t.Fatalf("Dec(%d) responses diverge: %d vs %d", k, a, b)
			}
		}
	}
	sc, hc := sharded.Counts(), hashed.Counts()
	if len(sc) != len(hc) {
		t.Fatalf("counts diverge: %v vs %v", sc, hc)
	}
	for k, v := range sc {
		if hc[k] != v {
			t.Fatalf("count for key %d diverges: %d vs %d", k, v, hc[k])
		}
	}
	if want := hihash.CanonicalMapSnapshot(keys, 6, hc); hashed.Snapshot() != want {
		t.Fatalf("hash map memory not canonical:\n got:  %s\n want: %s", hashed.Snapshot(), want)
	}
}
