package obj

import (
	"hiconc/internal/shard"
)

// ShardedSet is a wait-free, state-quiescent history-independent set over
// {1..domain}, hash-partitioned across independent universal-construction
// shards so that operations on keys of different shards do not contend.
// Combining additionally folds commuting same-shard operations into batched
// head updates under contention.
type ShardedSet struct {
	s *shard.Set
}

// NewShardedSet creates a sharded set for n processes over keys {1..domain}
// with nShards shards.
func NewShardedSet(n, domain, nShards int) *ShardedSet {
	return &ShardedSet{s: shard.NewSet(n, domain, nShards)}
}

// NewCombiningShardedSet creates a sharded set whose shards also combine
// commuting operations under contention.
func NewCombiningShardedSet(n, domain, nShards int) *ShardedSet {
	return &ShardedSet{s: shard.NewCombiningSet(n, domain, nShards)}
}

// Handle returns process pid's handle.
func (s *ShardedSet) Handle(pid int) *ShardedSetHandle {
	return &ShardedSetHandle{s: s.s, pid: pid}
}

// Elements returns the sorted members; composite reads are only atomic at
// quiescence.
func (s *ShardedSet) Elements() []int { return s.s.Elements() }

// Snapshot returns the composite memory representation (for HI inspection).
func (s *ShardedSet) Snapshot() string { return s.s.Snapshot() }

// ShardedSetHandle is one process's view of a ShardedSet.
type ShardedSetHandle struct {
	s   *shard.Set
	pid int
}

// Insert adds v to the set.
func (h *ShardedSetHandle) Insert(v int) { h.s.Insert(h.pid, v) }

// Remove deletes v from the set.
func (h *ShardedSetHandle) Remove(v int) { h.s.Remove(h.pid, v) }

// Contains reports whether v is in the set.
func (h *ShardedSetHandle) Contains(v int) bool { return h.s.Contains(h.pid, v) }

// ShardedMap is a wait-free, state-quiescent history-independent
// multi-counter over keys {1..keys}, hash-partitioned across independent
// universal-construction shards.
type ShardedMap struct {
	m *shard.Map
}

// NewShardedMap creates a sharded multi-counter for n processes over keys
// {1..keys} with nShards shards.
func NewShardedMap(n, keys, nShards int) *ShardedMap {
	return &ShardedMap{m: shard.NewMap(n, keys, nShards)}
}

// NewCombiningShardedMap creates a sharded multi-counter whose shards also
// combine commuting operations under contention.
func NewCombiningShardedMap(n, keys, nShards int) *ShardedMap {
	return &ShardedMap{m: shard.NewCombiningMap(n, keys, nShards)}
}

// Handle returns process pid's handle.
func (m *ShardedMap) Handle(pid int) *ShardedMapHandle {
	return &ShardedMapHandle{m: m.m, pid: pid}
}

// Counts returns the nonzero counts keyed by key; composite reads are only
// atomic at quiescence.
func (m *ShardedMap) Counts() map[int]int { return m.m.Counts() }

// Snapshot returns the composite memory representation (for HI inspection).
func (m *ShardedMap) Snapshot() string { return m.m.Snapshot() }

// ShardedMapHandle is one process's view of a ShardedMap.
type ShardedMapHandle struct {
	m   *shard.Map
	pid int
}

// Inc increments key's count and returns the previous count.
func (h *ShardedMapHandle) Inc(key int) int { return h.m.Inc(h.pid, key) }

// Dec decrements key's count and returns the previous count.
func (h *ShardedMapHandle) Dec(key int) int { return h.m.Dec(h.pid, key) }

// Get returns key's current count.
func (h *ShardedMapHandle) Get(key int) int { return h.m.Get(h.pid, key) }
