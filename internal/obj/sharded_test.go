package obj_test

import (
	"sync"
	"testing"

	"hiconc/internal/obj"
)

func TestShardedSetHandles(t *testing.T) {
	const n = 4
	s := obj.NewShardedSet(n, 128, 8)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := s.Handle(pid)
			for k := pid + 1; k <= 128; k += n {
				h.Insert(k)
			}
		}(pid)
	}
	wg.Wait()
	if got := len(s.Elements()); got != 128 {
		t.Fatalf("set holds %d elements, want 128", got)
	}
	h := s.Handle(0)
	h.Remove(64)
	if h.Contains(64) {
		t.Error("set contains 64 after remove")
	}
	if !h.Contains(1) {
		t.Error("set lost 1")
	}
}

func TestShardedMapHandles(t *testing.T) {
	const n = 4
	m := obj.NewCombiningShardedMap(n, 32, 4)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := m.Handle(pid)
			for i := 0; i < 250; i++ {
				h.Inc(i%32 + 1)
			}
		}(pid)
	}
	wg.Wait()
	total := 0
	for _, v := range m.Counts() {
		total += v
	}
	if total != n*250 {
		t.Fatalf("total count = %d, want %d", total, n*250)
	}
	if got := m.Handle(0).Get(1); got <= 0 {
		t.Errorf("Get(1) = %d, want positive", got)
	}
}
