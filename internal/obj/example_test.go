package obj_test

import (
	"fmt"

	"hiconc/internal/obj"
)

// A counter shared by two processes: handles are per-goroutine, the object
// is wait-free and history independent.
func ExampleNewCounter() {
	c := obj.NewCounter(2)
	h0, h1 := c.Handle(0), c.Handle(1)
	h0.Inc()
	h1.Inc()
	h0.Dec()
	fmt.Println(c.Value())
	// Output: 1
}

// The memory representation depends only on the abstract state: two queues
// with different histories but equal contents have identical snapshots.
func ExampleQueue_Snapshot() {
	a := obj.NewQueue(2)
	ha := a.Handle(0)
	ha.Enqueue(1)
	ha.Enqueue(2)
	ha.Dequeue()

	b := obj.NewQueue(2)
	b.Handle(1).Enqueue(2)

	fmt.Println(a.Snapshot() == b.Snapshot())
	// Output: true
}

func ExampleSetHandle_Contains() {
	s := obj.NewSet(2)
	h := s.Handle(0)
	h.Insert(7)
	h.Remove(7)
	h.Insert(9)
	fmt.Println(h.Contains(7), h.Contains(9))
	// Output: false true
}

func ExampleNewMaxRegister() {
	r := obj.NewMaxRegister(2, 1)
	h := r.Handle(0)
	h.Write(5)
	h.Write(3) // absorbed: 3 < 5
	fmt.Println(h.Read())
	// Output: 5
}
