package obj

import (
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
)

// HashSet is the user-facing HICHT table: a lock-free, history-
// independent hash set over {1..domain} built on per-bucket CAS words
// (internal/hihash) instead of the universal construction. Unlike the
// Handle-based objects it needs no per-process handles — any number of
// goroutines may call it directly — and its throughput is not bounded
// by a per-object or per-shard serialization point.
//
// The table is unbounded: keys that overflow their home bucket group
// displace into neighbouring groups (ordered Robin Hood), and the group
// array grows online under insert pressure, so Insert always succeeds —
// there is no full response to handle. The memory representation is the
// canonical displaced layout of the key set whenever no update is in
// flight (state-quiescent HI).
type HashSet struct {
	s *hihash.Set
}

// NewHashSet creates a hash set over keys {1..domain}, initially sized
// at roughly twice the domain in slot capacity (it grows online if a
// skewed key set outruns that).
func NewHashSet(domain int) *HashSet {
	return &HashSet{s: hihash.NewDisplaceSet(domain, hihash.DefaultGroups(domain))}
}

// NewHashSetWithGroups creates a hash set with an explicit initial group
// count (capacity = 4 * nGroups slots before any growth). Small initial
// counts are fine: the table doubles online as keys arrive.
func NewHashSetWithGroups(domain, nGroups int) *HashSet {
	return &HashSet{s: hihash.NewDisplaceSet(domain, nGroups)}
}

// Insert adds v. It cannot fail: a full home group displaces, a full
// table grows. The API-layer observation sites — the histats operation
// counters and the hirec invoke/return events — live here rather than
// inside the table, so direct hihash users pay no per-operation sites
// at all.
func (h *HashSet) Insert(v int) {
	histats.Inc(histats.CtrHashInsert)
	t := hirec.OpStart(spec.OpInsert, v)
	h.s.Insert(v)
	hirec.OpEnd(t, 0)
}

// Remove deletes v.
func (h *HashSet) Remove(v int) {
	histats.Inc(histats.CtrHashRemove)
	t := hirec.OpStart(spec.OpRemove, v)
	h.s.Remove(v)
	hirec.OpEnd(t, 0)
}

// Contains reports whether v is in the set.
func (h *HashSet) Contains(v int) bool {
	histats.Inc(histats.CtrHashLookup)
	t := hirec.OpStart(spec.OpLookup, v)
	in := h.s.Contains(v)
	if in {
		hirec.OpEnd(t, 1)
	} else {
		hirec.OpEnd(t, 0)
	}
	return in
}

// Grow doubles the table's group array now (it also grows by itself
// under insert pressure).
func (h *HashSet) Grow() { h.s.Grow() }

// NumGroups returns the current bucket-group count (it grows online).
func (h *HashSet) NumGroups() int { return h.s.NumGroups() }

// Elements returns the sorted members; composite reads are only atomic at
// quiescence.
func (h *HashSet) Elements() []int { return h.s.Elements() }

// Snapshot returns the memory representation (for HI inspection): the
// canonical displaced layout at quiescence.
func (h *HashSet) Snapshot() string { return h.s.Snapshot() }

// HashMap is the user-facing lock-free history-independent multi-counter
// over keys {1..keys}, built on per-bucket atomic pointers to canonical
// immutable entry lists (internal/hihash). Like HashSet it needs no
// per-process handles and no capacity planning: the bucket array grows
// online when buckets lengthen.
type HashMap struct {
	m *hihash.Map
}

// NewHashMap creates a hash map over keys {1..keys}.
func NewHashMap(keys int) *HashMap {
	nBuckets := keys / 4
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &HashMap{m: hihash.NewMap(keys, nBuckets)}
}

// Inc increments key's count and returns the previous count.
func (h *HashMap) Inc(key int) int {
	t := hirec.OpStart(spec.OpInc, key)
	prev := h.m.Inc(key)
	hirec.OpEnd(t, prev)
	return prev
}

// Dec decrements key's count and returns the previous count.
func (h *HashMap) Dec(key int) int {
	t := hirec.OpStart(spec.OpDec, key)
	prev := h.m.Dec(key)
	hirec.OpEnd(t, prev)
	return prev
}

// Get returns key's current count (one atomic load).
func (h *HashMap) Get(key int) int { return h.m.Get(key) }

// Counts returns the nonzero counts keyed by key; composite reads are
// only atomic at quiescence.
func (h *HashMap) Counts() map[int]int { return h.m.Counts() }

// Snapshot returns the logical memory representation (for HI inspection).
func (h *HashMap) Snapshot() string { return h.m.Snapshot() }
