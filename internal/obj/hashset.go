package obj

import (
	"hiconc/internal/hihash"
)

// HashSet is the user-facing HICHT table: a lock-free, perfectly
// history-independent hash set over {1..domain} built on per-bucket CAS
// words (internal/hihash) instead of the universal construction. Unlike
// the Handle-based objects it needs no per-process handles — any number
// of goroutines may call it directly — and its throughput is not bounded
// by a per-object or per-shard serialization point.
//
// The table has fixed capacity: Insert returns false when the key's
// bucket group is full (see internal/hihash). Use ShardedSet when
// unbounded capacity matters more than the direct-table fast path.
type HashSet struct {
	s *hihash.Set
}

// NewHashSet creates a hash set over keys {1..domain} with roughly twice
// the domain in slot capacity.
func NewHashSet(domain int) *HashSet {
	return &HashSet{s: hihash.NewSet(domain, hihash.DefaultGroups(domain))}
}

// NewHashSetWithGroups creates a hash set with an explicit group count
// (capacity = 4 * nGroups slots).
func NewHashSetWithGroups(domain, nGroups int) *HashSet {
	return &HashSet{s: hihash.NewSet(domain, nGroups)}
}

// Insert adds v. It reports whether v is in the set afterwards (false
// only when v's bucket group is at capacity).
func (h *HashSet) Insert(v int) bool { return h.s.Insert(v) != hihash.RspFull }

// Remove deletes v.
func (h *HashSet) Remove(v int) { h.s.Remove(v) }

// Contains reports whether v is in the set (one atomic load).
func (h *HashSet) Contains(v int) bool { return h.s.Contains(v) }

// Elements returns the sorted members; composite reads are only atomic at
// quiescence.
func (h *HashSet) Elements() []int { return h.s.Elements() }

// Snapshot returns the memory representation (for HI inspection). For
// this object it is canonical at every instant, not only at quiescence.
func (h *HashSet) Snapshot() string { return h.s.Snapshot() }

// HashMap is the user-facing lock-free history-independent multi-counter
// over keys {1..keys}, built on per-bucket atomic pointers to canonical
// immutable entry lists (internal/hihash). Like HashSet it needs no
// per-process handles; unlike HashSet it has no capacity bound.
type HashMap struct {
	m *hihash.Map
}

// NewHashMap creates a hash map over keys {1..keys}.
func NewHashMap(keys int) *HashMap {
	nBuckets := keys / 4
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &HashMap{m: hihash.NewMap(keys, nBuckets)}
}

// Inc increments key's count and returns the previous count.
func (h *HashMap) Inc(key int) int { return h.m.Inc(key) }

// Dec decrements key's count and returns the previous count.
func (h *HashMap) Dec(key int) int { return h.m.Dec(key) }

// Get returns key's current count (one atomic load).
func (h *HashMap) Get(key int) int { return h.m.Get(key) }

// Counts returns the nonzero counts keyed by key; composite reads are
// only atomic at quiescence.
func (h *HashMap) Counts() map[int]int { return h.m.Counts() }

// Snapshot returns the logical memory representation (for HI inspection).
func (h *HashMap) Snapshot() string { return h.m.Snapshot() }
