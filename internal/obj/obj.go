// Package obj provides ready-to-use history-independent concurrent objects
// built on the native universal construction (Algorithm 5 over Algorithm 6
// style R-LLSC cells): Counter, Register, MaxRegister, Queue, Stack and Set.
//
// Each object is created for a fixed number of processes n; a goroutine
// obtains a Handle for its process id (0 <= pid < n) and performs operations
// through it. Handles are not safe for sharing between goroutines, but
// distinct handles of the same object are.
//
// All objects are linearizable, wait-free, and state-quiescent history
// independent: whenever no update is in flight, the shared memory
// representation is a canonical function of the abstract state — it reveals
// nothing about how the object got there (Theorem 32).
package obj

import (
	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Counter is a wait-free history-independent counter.
type Counter struct {
	u *conc.Universal
}

// NewCounter creates a counter for n processes.
func NewCounter(n int) *Counter {
	return &Counter{u: conc.NewUniversal(conc.CounterObj{}, n)}
}

// Handle returns process pid's handle.
func (c *Counter) Handle(pid int) *CounterHandle {
	return &CounterHandle{u: c.u, pid: pid}
}

// Value returns the current value.
func (c *Counter) Value() int { return c.u.State().(int) }

// Snapshot returns the memory representation (for HI inspection).
func (c *Counter) Snapshot() string { return c.u.Snapshot() }

// CounterHandle is one process's view of a Counter.
type CounterHandle struct {
	u   *conc.Universal
	pid int
}

// Inc increments the counter and returns the previous value.
func (h *CounterHandle) Inc() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpInc}) }

// Dec decrements the counter and returns the previous value.
func (h *CounterHandle) Dec() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpDec}) }

// Read returns the current value.
func (h *CounterHandle) Read() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpRead}) }

// Register is a wait-free history-independent multi-valued register,
// readable and writable by all n processes.
type Register struct {
	u *conc.Universal
}

// NewRegister creates a register for n processes with initial value v0.
func NewRegister(n, v0 int) *Register {
	return &Register{u: conc.NewUniversal(conc.RegisterObj{V0: v0}, n)}
}

// Handle returns process pid's handle.
func (r *Register) Handle(pid int) *RegisterHandle {
	return &RegisterHandle{u: r.u, pid: pid}
}

// Snapshot returns the memory representation.
func (r *Register) Snapshot() string { return r.u.Snapshot() }

// RegisterHandle is one process's view of a Register.
type RegisterHandle struct {
	u   *conc.Universal
	pid int
}

// Write stores v.
func (h *RegisterHandle) Write(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpWrite, Arg: v}) }

// Read returns the last written value.
func (h *RegisterHandle) Read() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpRead}) }

// MaxRegister is a wait-free history-independent max register.
type MaxRegister struct {
	u *conc.Universal
}

// NewMaxRegister creates a max register for n processes with initial value v0.
func NewMaxRegister(n, v0 int) *MaxRegister {
	return &MaxRegister{u: conc.NewUniversal(conc.MaxRegisterObj{V0: v0}, n)}
}

// Handle returns process pid's handle.
func (r *MaxRegister) Handle(pid int) *MaxRegisterHandle {
	return &MaxRegisterHandle{u: r.u, pid: pid}
}

// Snapshot returns the memory representation.
func (r *MaxRegister) Snapshot() string { return r.u.Snapshot() }

// MaxRegisterHandle is one process's view of a MaxRegister.
type MaxRegisterHandle struct {
	u   *conc.Universal
	pid int
}

// Write raises the register to v if v exceeds the current maximum.
func (h *MaxRegisterHandle) Write(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpWrite, Arg: v}) }

// Read returns the maximum value ever written.
func (h *MaxRegisterHandle) Read() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpRead}) }

// Queue is a wait-free history-independent FIFO queue with Peek.
type Queue struct {
	u *conc.Universal
}

// NewQueue creates a queue for n processes.
func NewQueue(n int) *Queue {
	return &Queue{u: conc.NewUniversal(conc.QueueObj{}, n)}
}

// Handle returns process pid's handle.
func (q *Queue) Handle(pid int) *QueueHandle {
	return &QueueHandle{u: q.u, pid: pid}
}

// Snapshot returns the memory representation.
func (q *Queue) Snapshot() string { return q.u.Snapshot() }

// Len returns the current queue length.
func (q *Queue) Len() int { return len(q.u.State().([]int)) }

// QueueHandle is one process's view of a Queue.
type QueueHandle struct {
	u   *conc.Universal
	pid int
}

// Enqueue appends v.
func (h *QueueHandle) Enqueue(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpEnq, Arg: v}) }

// Dequeue removes and returns the first element (0 if empty).
func (h *QueueHandle) Dequeue() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpDeq}) }

// Peek returns the first element without removing it (0 if empty).
func (h *QueueHandle) Peek() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpPeek}) }

// Stack is a wait-free history-independent LIFO stack with Top.
type Stack struct {
	u *conc.Universal
}

// NewStack creates a stack for n processes.
func NewStack(n int) *Stack {
	return &Stack{u: conc.NewUniversal(conc.StackObj{}, n)}
}

// Handle returns process pid's handle.
func (s *Stack) Handle(pid int) *StackHandle {
	return &StackHandle{u: s.u, pid: pid}
}

// Snapshot returns the memory representation.
func (s *Stack) Snapshot() string { return s.u.Snapshot() }

// StackHandle is one process's view of a Stack.
type StackHandle struct {
	u   *conc.Universal
	pid int
}

// Push appends v.
func (h *StackHandle) Push(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpPush, Arg: v}) }

// Pop removes and returns the top element (0 if empty).
func (h *StackHandle) Pop() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpPop}) }

// Top returns the top element without removing it (0 if empty).
func (h *StackHandle) Top() int { return h.u.Apply(h.pid, core.Op{Name: spec.OpTop}) }

// Set is a wait-free history-independent set over {1..64}.
type Set struct {
	u *conc.Universal
}

// NewSet creates a set for n processes.
func NewSet(n int) *Set {
	return &Set{u: conc.NewUniversal(conc.SetObj{}, n)}
}

// Handle returns process pid's handle.
func (s *Set) Handle(pid int) *SetHandle {
	return &SetHandle{u: s.u, pid: pid}
}

// Snapshot returns the memory representation.
func (s *Set) Snapshot() string { return s.u.Snapshot() }

// SetHandle is one process's view of a Set.
type SetHandle struct {
	u   *conc.Universal
	pid int
}

// Insert adds v to the set.
func (h *SetHandle) Insert(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpInsert, Arg: v}) }

// Remove deletes v from the set.
func (h *SetHandle) Remove(v int) { h.u.Apply(h.pid, core.Op{Name: spec.OpRemove, Arg: v}) }

// Contains reports whether v is in the set.
func (h *SetHandle) Contains(v int) bool {
	return h.u.Apply(h.pid, core.Op{Name: spec.OpLookup, Arg: v}) == 1
}
