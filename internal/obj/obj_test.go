package obj_test

import (
	"sync"
	"testing"

	"hiconc/internal/obj"
)

func TestCounterConcurrent(t *testing.T) {
	const n, m = 4, 250
	c := obj.NewCounter(n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := c.Handle(pid)
			for i := 0; i < m; i++ {
				h.Inc()
			}
			for i := 0; i < m/2; i++ {
				h.Dec()
			}
		}(pid)
	}
	wg.Wait()
	want := n * (m - m/2)
	if got := c.Value(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := c.Handle(0).Read(); got != want {
		t.Fatalf("read = %d, want %d", got, want)
	}
}

func TestCounterHISnapshots(t *testing.T) {
	// Two different histories reaching the same value leave identical
	// memory.
	a := obj.NewCounter(2)
	ah := a.Handle(0)
	ah.Inc()
	ah.Inc()
	ah.Dec()
	b := obj.NewCounter(2)
	b.Handle(1).Inc()
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ for equal states:\n a: %s\n b: %s", a.Snapshot(), b.Snapshot())
	}
}

func TestRegister(t *testing.T) {
	r := obj.NewRegister(2, 7)
	if got := r.Handle(0).Read(); got != 7 {
		t.Fatalf("initial read = %d", got)
	}
	r.Handle(1).Write(42)
	if got := r.Handle(0).Read(); got != 42 {
		t.Fatalf("read = %d, want 42", got)
	}
}

func TestMaxRegister(t *testing.T) {
	r := obj.NewMaxRegister(2, 1)
	h := r.Handle(0)
	h.Write(5)
	h.Write(3) // absorbed
	if got := h.Read(); got != 5 {
		t.Fatalf("max = %d, want 5", got)
	}
}

func TestQueue(t *testing.T) {
	q := obj.NewQueue(2)
	h := q.Handle(0)
	h.Enqueue(1)
	h.Enqueue(2)
	if got := h.Peek(); got != 1 {
		t.Fatalf("peek = %d", got)
	}
	if got := h.Dequeue(); got != 1 {
		t.Fatalf("deq = %d", got)
	}
	if got := h.Dequeue(); got != 2 {
		t.Fatalf("deq = %d", got)
	}
	if got := h.Dequeue(); got != 0 {
		t.Fatalf("deq empty = %d", got)
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestStack(t *testing.T) {
	s := obj.NewStack(2)
	h := s.Handle(1)
	h.Push(1)
	h.Push(2)
	if got := h.Top(); got != 2 {
		t.Fatalf("top = %d", got)
	}
	if got := h.Pop(); got != 2 {
		t.Fatalf("pop = %d", got)
	}
	if got := h.Pop(); got != 1 {
		t.Fatalf("pop = %d", got)
	}
}

func TestSetHI(t *testing.T) {
	a := obj.NewSet(2)
	ha := a.Handle(0)
	ha.Insert(3)
	ha.Insert(9)
	ha.Remove(3)
	b := obj.NewSet(2)
	b.Handle(1).Insert(9)
	if !a.Handle(1).Contains(9) || a.Handle(1).Contains(3) {
		t.Fatal("set contents wrong")
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ for equal sets:\n a: %s\n b: %s", a.Snapshot(), b.Snapshot())
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	const items = 300
	q := obj.NewQueue(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := q.Handle(0)
		for i := 1; i <= items; i++ {
			h.Enqueue(i)
		}
	}()
	var got []int
	go func() {
		defer wg.Done()
		h := q.Handle(1)
		for len(got) < items {
			if v := h.Dequeue(); v != 0 {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("FIFO violated at %d: %d", i, v)
		}
	}
}
