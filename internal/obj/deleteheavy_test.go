package obj_test

import (
	"math/rand"
	"sync"
	"testing"

	"hiconc/internal/hihash"
	"hiconc/internal/obj"
)

// Delete-heavy concurrent snapshot coverage: the displacing table's
// interesting windows (restore flags, backward shifts, pull-backs) open
// on deletes, so a remove-dominated concurrent workload stresses exactly
// the repair machinery. At every quiescent point the composite memory
// must be the canonical layout of whatever key set the race realized —
// regardless of which removes won.

// TestHashSetDeleteHeavyQuiescentCanonical races workers that remove
// roughly 60% of the time against a fixed key pool, then checks at
// quiescence that the snapshot is canonical for the realized elements
// and that membership answers agree with it.
func TestHashSetDeleteHeavyQuiescentCanonical(t *testing.T) {
	const domain, workers = 48, 8
	rounds, opsPerWorker := 12, 400
	if testing.Short() {
		rounds, opsPerWorker = 4, 150
	}
	h := obj.NewHashSet(domain)
	for round := 0; round < rounds; round++ {
		// Refill so removes have something to chew on, then race.
		for k := 1; k <= domain; k++ {
			if k%3 != 0 {
				h.Insert(k)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerWorker; i++ {
					k := rng.Intn(domain) + 1
					if rng.Intn(10) < 6 {
						h.Remove(k)
					} else {
						h.Insert(k)
					}
				}
			}(int64(round*workers + w + 1))
		}
		wg.Wait()
		elems := h.Elements()
		if got, want := h.Snapshot(), hihash.CanonicalSetSnapshot(domain, h.NumGroups(), elems); got != want {
			t.Fatalf("round %d: quiescent memory not canonical for %v:\n got:  %s\n want: %s", round, elems, got, want)
		}
		in := map[int]bool{}
		for _, k := range elems {
			in[k] = true
		}
		for k := 1; k <= domain; k++ {
			if h.Contains(k) != in[k] {
				t.Fatalf("round %d: Contains(%d) = %v disagrees with Elements %v", round, k, h.Contains(k), elems)
			}
		}
	}
}

// TestHashMapDecHeavyQuiescentCanonical is the map counterpart: workers
// skew toward Dec so counts keep hitting zero (zero-count entries must
// vanish from the representation, not linger as tombstones).
func TestHashMapDecHeavyQuiescentCanonical(t *testing.T) {
	const keys, workers = 24, 8
	rounds, opsPerWorker := 12, 300
	if testing.Short() {
		rounds, opsPerWorker = 4, 100
	}
	h := obj.NewHashMap(keys)
	nBuckets := keys / 4 // NewHashMap's bucket sizing; dist stays under bucketLimit
	for round := 0; round < rounds; round++ {
		for k := 1; k <= keys; k++ {
			if k%2 == 0 {
				h.Inc(k)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerWorker; i++ {
					k := rng.Intn(keys) + 1
					if rng.Intn(10) < 6 {
						h.Dec(k)
					} else {
						h.Inc(k)
					}
				}
			}(int64(1000 + round*workers + w))
		}
		wg.Wait()
		counts := h.Counts()
		if got, want := h.Snapshot(), hihash.CanonicalMapSnapshot(keys, nBuckets, counts); got != want {
			t.Fatalf("round %d: quiescent memory not canonical for %v:\n got:  %s\n want: %s", round, counts, got, want)
		}
		for k := 1; k <= keys; k++ {
			if got := h.Get(k); got != counts[k] {
				t.Fatalf("round %d: Get(%d) = %d disagrees with Counts %v", round, k, got, counts)
			}
		}
		// Drive the odd keys exactly to zero: a zeroed count must vanish
		// from the representation entirely, not linger as a tombstone.
		for k := 1; k <= keys; k += 2 {
			for h.Get(k) > 0 {
				h.Dec(k)
			}
			for h.Get(k) < 0 {
				h.Inc(k)
			}
		}
		counts = h.Counts()
		for k := 1; k <= keys; k += 2 {
			if v, ok := counts[k]; ok {
				t.Fatalf("round %d: zeroed key %d lingers with count %d", round, k, v)
			}
		}
		if got, want := h.Snapshot(), hihash.CanonicalMapSnapshot(keys, nBuckets, counts); got != want {
			t.Fatalf("round %d: memory not canonical after zeroing odd keys:\n got:  %s\n want: %s", round, got, want)
		}
	}
}
