// Package linearize checks histories against sequential specifications
// (Herlihy–Wing linearizability, Section 2 of the paper) using a Wing–Gong
// style search with memoization.
package linearize

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

// OpRecord is one high-level operation extracted from a history.
type OpRecord struct {
	// PID is the invoking process; OpIndex numbers its operations.
	PID, OpIndex int
	// Op is the abstract operation.
	Op core.Op
	// Resp is the response (meaningful only when Completed).
	Resp int
	// Completed reports whether the operation returned in the history.
	Completed bool
	// Inv and Ret are positions in the event list; Ret is len(events) for
	// pending operations. An operation a precedes b in real time iff
	// a.Ret < b.Inv.
	Inv, Ret int
}

// String renders the record for diagnostics.
func (r OpRecord) String() string {
	if r.Completed {
		return fmt.Sprintf("p%d:%v=>%d", r.PID, r.Op, r.Resp)
	}
	return fmt.Sprintf("p%d:%v=>pending", r.PID, r.Op)
}

// FromEvents pairs invocation and response events into operation records.
func FromEvents(events []sim.Event) []OpRecord {
	type key struct{ pid, opIdx int }
	index := map[key]int{}
	var recs []OpRecord
	for i, ev := range events {
		k := key{ev.PID, ev.OpIndex}
		switch ev.Kind {
		case sim.EvInvoke:
			index[k] = len(recs)
			recs = append(recs, OpRecord{
				PID: ev.PID, OpIndex: ev.OpIndex, Op: ev.Op,
				Inv: i, Ret: len(events),
			})
		case sim.EvReturn:
			j, ok := index[k]
			if !ok {
				panic(fmt.Sprintf("linearize: return without invoke (p%d op %d)", ev.PID, ev.OpIndex))
			}
			recs[j].Completed = true
			recs[j].Resp = ev.Resp
			recs[j].Ret = i
		}
	}
	return recs
}

// memoKey identifies a search node: which operations have been linearized
// and the abstract state reached.
type memoKey struct {
	mask  uint64
	state string
}

type searcher struct {
	spec core.Spec
	recs []OpRecord
	memo map[memoKey]bool
	// completed is the mask of completed operations; success requires
	// linearizing all of them (pending operations are optional).
	completed uint64
	// collect, when non-nil, receives every state reachable at a node
	// where all completed operations have been linearized.
	collect map[string]bool
}

// eligible reports whether op i can be linearized next given mask: i is not
// yet linearized and no unlinearized operation returned before i's
// invocation.
func (s *searcher) eligible(i int, mask uint64) bool {
	if mask&(1<<uint(i)) != 0 {
		return false
	}
	for j, r := range s.recs {
		if j == i || mask&(1<<uint(j)) != 0 {
			continue
		}
		if r.Ret < s.recs[i].Inv {
			return false
		}
	}
	return true
}

// search explores linearizations from (mask, state); it returns true if some
// extension linearizes every completed operation. When collecting final
// states it always explores exhaustively.
func (s *searcher) search(mask uint64, state string) bool {
	k := memoKey{mask, state}
	if done, ok := s.memo[k]; ok {
		return done
	}
	ok := false
	if mask&s.completed == s.completed {
		ok = true
		if s.collect != nil {
			s.collect[state] = true
		}
	}
	for i, r := range s.recs {
		if !s.eligible(i, mask) {
			continue
		}
		next, resp := s.spec.Apply(state, r.Op)
		if r.Completed && resp != r.Resp {
			continue
		}
		if s.search(mask|1<<uint(i), next) {
			ok = true
			if s.collect == nil {
				break // existence is enough
			}
		}
	}
	s.memo[k] = ok
	return ok
}

// Check reports whether the history given by events is linearizable with
// respect to spec; it returns nil on success and a descriptive error
// otherwise. At most 64 operations are supported.
func Check(spec core.Spec, events []sim.Event) error {
	return CheckRecords(spec, FromEvents(events))
}

// CheckRecords is Check over already-paired operation records — the entry
// point for histories that did not come from the simulator, such as
// native flight recordings extracted by internal/hirec. Records need
// only consistent Inv/Ret positions (a precedes b in real time iff
// a.Ret < b.Inv); pending records are optional to linearize.
func CheckRecords(spec core.Spec, recs []OpRecord) error {
	if len(recs) > 64 {
		return fmt.Errorf("linearize: history too large (%d ops)", len(recs))
	}
	s := &searcher{spec: spec, recs: recs, memo: map[memoKey]bool{}}
	for i, r := range recs {
		if r.Completed {
			s.completed |= 1 << uint(i)
		}
	}
	if s.search(0, spec.Init()) {
		return nil
	}
	return fmt.Errorf("linearize: history not linearizable for %s:\n%s", spec.Name(), Render(recs))
}

// FinalStates returns every abstract state in which some linearization of
// the history can end: all completed operations are linearized (with
// matching responses) and pending operations may be linearized or dropped.
// The result is empty iff the history is not linearizable.
func FinalStates(spec core.Spec, events []sim.Event) map[string]bool {
	recs := FromEvents(events)
	if len(recs) > 64 {
		panic(fmt.Sprintf("linearize: history too large (%d ops)", len(recs)))
	}
	s := &searcher{
		spec: spec, recs: recs,
		memo:    map[memoKey]bool{},
		collect: map[string]bool{},
	}
	for i, r := range recs {
		if r.Completed {
			s.completed |= 1 << uint(i)
		}
	}
	s.search(0, spec.Init())
	return s.collect
}

// Render formats operation records one per line, for error messages.
func Render(recs []OpRecord) string {
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "  %v [inv@%d ret@%d]\n", r, r.Inv, r.Ret)
	}
	return b.String()
}
