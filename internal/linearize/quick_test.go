package linearize_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hiconc/internal/core"
	"hiconc/internal/linearize"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// genSequentialHistory builds a random sequential history honestly derived
// from the spec — such a history is linearizable by construction.
func genSequentialHistory(s core.Spec, rng *rand.Rand, nOps int) []sim.Event {
	var events []sim.Event
	state := s.Init()
	step := 0
	opIdx := make(map[int]int)
	for i := 0; i < nOps; i++ {
		pid := rng.Intn(3)
		ops := s.Ops(state)
		op := ops[rng.Intn(len(ops))]
		var resp int
		state, resp = s.Apply(state, op)
		sc := !s.ReadOnly(op)
		step++
		events = append(events,
			sim.Event{Kind: sim.EvInvoke, PID: pid, OpIndex: opIdx[pid], Op: op, StateChanging: sc, StepIndex: step},
			sim.Event{Kind: sim.EvReturn, PID: pid, OpIndex: opIdx[pid], Op: op, StateChanging: sc, Resp: resp, StepIndex: step + 1},
		)
		step += 2
		opIdx[pid]++
	}
	return events
}

// TestQuickSequentialHistoriesLinearizable: every honestly generated
// sequential history passes the checker.
func TestQuickSequentialHistoriesLinearizable(t *testing.T) {
	specs := []core.Spec{
		spec.NewRegister(3, 1),
		spec.NewCounter(4, 2),
		spec.NewQueue(2, 3),
		spec.NewStack(2, 3),
		spec.NewSet(3),
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := specs[rng.Intn(len(specs))]
		events := genSequentialHistory(s, rng, int(n%10))
		return linearize.Check(s, events) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickResponseMutationDetected: corrupting the response of a completed
// state-observing operation in a sequential register history makes it
// non-linearizable (register reads pin the exact state).
func TestQuickResponseMutationDetected(t *testing.T) {
	s := spec.NewRegister(4, 1)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := genSequentialHistory(s, rng, 6)
		// Find a read and corrupt its response.
		for i := range events {
			ev := &events[i]
			if ev.Kind == sim.EvReturn && ev.Op.Name == spec.OpRead {
				ev.Resp = ev.Resp%4 + 1 // a different value in 1..4
				return linearize.Check(s, events) != nil
			}
		}
		return true // no read generated: vacuously fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFinalStatesContainTrueState: the set of linearization-consistent
// final states always contains the state actually reached by the sequential
// history.
func TestQuickFinalStatesContainTrueState(t *testing.T) {
	s := spec.NewQueue(2, 2)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := genSequentialHistory(s, rng, int(n%8))
		var ops []core.Op
		for _, ev := range events {
			if ev.Kind == sim.EvReturn {
				ops = append(ops, ev.Op)
			}
		}
		want, _ := core.ApplySeq(s, s.Init(), ops)
		states := linearize.FinalStates(s, events)
		return states[want]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
