package linearize_test

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/linearize"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// ev builds a history event.
func inv(pid, opIdx int, op core.Op, sc bool, step int) sim.Event {
	return sim.Event{Kind: sim.EvInvoke, PID: pid, OpIndex: opIdx, Op: op, StateChanging: sc, StepIndex: step}
}

func ret(pid, opIdx int, op core.Op, sc bool, resp, step int) sim.Event {
	return sim.Event{Kind: sim.EvReturn, PID: pid, OpIndex: opIdx, Op: op, StateChanging: sc, Resp: resp, StepIndex: step}
}

var (
	rd = core.Op{Name: spec.OpRead}
	w  = func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
)

func TestSequentialHistory(t *testing.T) {
	s := spec.NewRegister(3, 1)
	events := []sim.Event{
		inv(0, 0, w(2), true, 1), ret(0, 0, w(2), true, 0, 2),
		inv(1, 0, rd, false, 3), ret(1, 0, rd, false, 2, 4),
	}
	if err := linearize.Check(s, events); err != nil {
		t.Error(err)
	}
}

func TestStaleReadRejected(t *testing.T) {
	s := spec.NewRegister(3, 1)
	// Write(2) completes strictly before a read that returns the old value.
	events := []sim.Event{
		inv(0, 0, w(2), true, 1), ret(0, 0, w(2), true, 0, 2),
		inv(1, 0, rd, false, 3), ret(1, 0, rd, false, 1, 4),
	}
	if err := linearize.Check(s, events); err == nil {
		t.Error("stale read should not be linearizable")
	}
}

func TestOverlappingReadMayReturnEitherValue(t *testing.T) {
	s := spec.NewRegister(3, 1)
	for _, resp := range []int{1, 2} {
		events := []sim.Event{
			inv(0, 0, w(2), true, 1),
			inv(1, 0, rd, false, 1),
			ret(1, 0, rd, false, resp, 2),
			ret(0, 0, w(2), true, 0, 3),
		}
		if err := linearize.Check(s, events); err != nil {
			t.Errorf("read overlapping write returning %d: %v", resp, err)
		}
	}
	// But not a value never written.
	events := []sim.Event{
		inv(0, 0, w(2), true, 1),
		inv(1, 0, rd, false, 1),
		ret(1, 0, rd, false, 3, 2),
		ret(0, 0, w(2), true, 0, 3),
	}
	if err := linearize.Check(s, events); err == nil {
		t.Error("read of unwritten value should not be linearizable")
	}
}

func TestPendingOpMayTakeEffect(t *testing.T) {
	s := spec.NewRegister(3, 1)
	// A pending write whose value is observed by a completed read: the
	// write must be linearized even though it never returned.
	events := []sim.Event{
		inv(0, 0, w(3), true, 1),
		inv(1, 0, rd, false, 2),
		ret(1, 0, rd, false, 3, 3),
	}
	if err := linearize.Check(s, events); err != nil {
		t.Error(err)
	}
}

func TestPendingOpMayBeDropped(t *testing.T) {
	s := spec.NewRegister(3, 1)
	events := []sim.Event{
		inv(0, 0, w(3), true, 1),
		inv(1, 0, rd, false, 2),
		ret(1, 0, rd, false, 1, 3),
	}
	if err := linearize.Check(s, events); err != nil {
		t.Error(err)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	s := spec.NewQueue(3, 3)
	enq := func(v int) core.Op { return core.Op{Name: spec.OpEnq, Arg: v} }
	deq := core.Op{Name: spec.OpDeq}
	ok := []sim.Event{
		inv(0, 0, enq(1), true, 1), ret(0, 0, enq(1), true, 0, 2),
		inv(0, 1, enq(2), true, 3), ret(0, 1, enq(2), true, 0, 4),
		inv(1, 0, deq, true, 5), ret(1, 0, deq, true, 1, 6),
		inv(1, 1, deq, true, 7), ret(1, 1, deq, true, 2, 8),
	}
	if err := linearize.Check(s, ok); err != nil {
		t.Error(err)
	}
	bad := []sim.Event{
		inv(0, 0, enq(1), true, 1), ret(0, 0, enq(1), true, 0, 2),
		inv(0, 1, enq(2), true, 3), ret(0, 1, enq(2), true, 0, 4),
		inv(1, 0, deq, true, 5), ret(1, 0, deq, true, 2, 6), // LIFO: wrong
	}
	if err := linearize.Check(s, bad); err == nil {
		t.Error("LIFO dequeue should not be linearizable")
	}
}

func TestFinalStates(t *testing.T) {
	s := spec.NewRegister(3, 1)
	// A completed write(2) concurrent with a pending write(3): final state
	// can be 2 (pending dropped or before) or 3 (pending after).
	events := []sim.Event{
		inv(0, 0, w(2), true, 1),
		inv(1, 0, w(3), true, 1),
		ret(0, 0, w(2), true, 0, 2),
	}
	states := linearize.FinalStates(s, events)
	if !states["2"] || !states["3"] {
		t.Errorf("final states = %v, want {2,3}", states)
	}
	if states["1"] {
		t.Errorf("state 1 impossible: write(2) completed; got %v", states)
	}
}

func TestFinalStatesEmptyForNonLinearizable(t *testing.T) {
	s := spec.NewRegister(3, 1)
	events := []sim.Event{
		inv(1, 0, rd, false, 1), ret(1, 0, rd, false, 3, 2), // reads unwritten 3
	}
	if states := linearize.FinalStates(s, events); len(states) != 0 {
		t.Errorf("final states = %v, want empty", states)
	}
}

func TestRealTimeOrderAcrossProcs(t *testing.T) {
	s := spec.NewCounter(5, 0)
	incOp := core.Op{Name: spec.OpInc}
	// Two sequential incs must return 0 then 1; returning 0 twice is only
	// possible if they overlap.
	bad := []sim.Event{
		inv(0, 0, incOp, true, 1), ret(0, 0, incOp, true, 0, 2),
		inv(1, 0, incOp, true, 3), ret(1, 0, incOp, true, 0, 4),
	}
	if err := linearize.Check(s, bad); err == nil {
		t.Error("second sequential inc returning 0 should not be linearizable")
	}
	good := []sim.Event{
		inv(0, 0, incOp, true, 1),
		inv(1, 0, incOp, true, 1),
		ret(0, 0, incOp, true, 0, 2),
		ret(1, 0, incOp, true, 1, 2),
	}
	if err := linearize.Check(s, good); err != nil {
		t.Error(err)
	}
}
