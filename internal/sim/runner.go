package sim

import (
	"fmt"
	"sync"
)

// Runner executes a set of programs over a shared memory in lock step: at
// every point each live process is parked at its next primitive step, and
// Step(pid) executes exactly that step. The runner is single-threaded; all
// base-object mutation happens on the caller's goroutine.
type Runner struct {
	mem         *Memory
	progs       []Program
	snapshotMem bool

	started bool
	stopped bool
	quit    chan struct{}
	wg      sync.WaitGroup
	procs   []*procState
	trace   *Trace
}

type procState struct {
	proc      *Proc
	pending   *Prim
	paused    bool
	done      bool
	bufInvoke *Event
	opIndex   int
	inOp      bool
	curOp     Event // invoke event of the current operation
}

// Option configures a Runner.
type Option func(*Runner)

// WithSnapshots controls whether the runner records a memory snapshot after
// every step (default true). Disable for long fuzzing runs that only need
// histories.
func WithSnapshots(on bool) Option {
	return func(r *Runner) { r.snapshotMem = on }
}

// NewRunner creates a runner for the given memory and per-process programs.
// Process i runs progs[i].
func NewRunner(mem *Memory, progs []Program, opts ...Option) *Runner {
	r := &Runner{mem: mem, progs: progs, snapshotMem: true}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Mem returns the runner's memory.
func (r *Runner) Mem() *Memory { return r.mem }

// Start resets the memory, spawns the process goroutines and parks each
// process at its first primitive step. It must be called exactly once.
func (r *Runner) Start() {
	if r.started {
		panic("sim: Runner.Start called twice")
	}
	r.started = true
	r.mem.Reset()
	r.quit = make(chan struct{})
	r.trace = &Trace{
		NumProcs: len(r.progs),
		ObjNames: r.mem.Names(),
		Initial:  r.mem.Snapshot(),
	}
	r.procs = make([]*procState, len(r.progs))
	for i, prog := range r.progs {
		p := &Proc{
			ID:    i,
			N:     len(r.progs),
			out:   make(chan procMsg),
			grant: make(chan Value),
			quit:  r.quit,
		}
		r.procs[i] = &procState{proc: p}
		r.wg.Add(1)
		go func(prog Program, p *Proc) {
			defer r.wg.Done()
			prog(p)
			// Program finished: report completion (or exit if stopped).
			select {
			case p.out <- procMsg{kind: msgDone}:
			case <-r.quit:
			}
		}(prog, p)
	}
	for i := range r.procs {
		r.drain(i)
	}
}

// drain consumes messages from process pid until it parks at a primitive
// request, pauses, or finishes.
func (r *Runner) drain(pid int) {
	ps := r.procs[pid]
	for {
		m := <-ps.proc.out
		switch m.kind {
		case msgPrim:
			prim := m.prim
			ps.pending = &prim
			return
		case msgPause:
			ps.paused = true
			return
		case msgDone:
			ps.done = true
			return
		case msgInvoke:
			ev := Event{
				Kind:          EvInvoke,
				PID:           pid,
				OpIndex:       ps.opIndex,
				Op:            m.op,
				StateChanging: m.stateChanging,
			}
			ps.opIndex++
			ps.bufInvoke = &ev
		case msgReturn:
			r.flushInvoke(ps, len(r.trace.Steps))
			if !ps.inOp {
				panic(fmt.Sprintf("sim: p%d returned without a pending operation", pid))
			}
			ret := ps.curOp
			ret.Kind = EvReturn
			ret.Resp = m.resp
			ret.StepIndex = len(r.trace.Steps)
			r.trace.Events = append(r.trace.Events, ret)
			ps.inOp = false
		default:
			panic("sim: unknown message kind")
		}
	}
}

// flushInvoke materializes a buffered invocation event at configuration idx.
func (r *Runner) flushInvoke(ps *procState, idx int) {
	if ps.bufInvoke == nil {
		return
	}
	ev := *ps.bufInvoke
	ev.StepIndex = idx
	r.trace.Events = append(r.trace.Events, ev)
	ps.curOp = ev
	ps.inOp = true
	ps.bufInvoke = nil
}

// Runnable returns the ids of processes parked at a primitive step.
func (r *Runner) Runnable() []int {
	var out []int
	for i, ps := range r.procs {
		if ps.pending != nil {
			out = append(out, i)
		}
	}
	return out
}

// Paused returns the ids of paused processes.
func (r *Runner) Paused() []int {
	var out []int
	for i, ps := range r.procs {
		if ps.paused {
			out = append(out, i)
		}
	}
	return out
}

// Done reports whether every process has finished.
func (r *Runner) Done() bool {
	for _, ps := range r.procs {
		if !ps.done {
			return false
		}
	}
	return true
}

// ProcDone reports whether process pid has finished its program.
func (r *Runner) ProcDone(pid int) bool { return r.procs[pid].done }

// PendingPrim returns the primitive process pid is parked at.
func (r *Runner) PendingPrim(pid int) (Prim, bool) {
	ps := r.procs[pid]
	if ps.pending == nil {
		return Prim{}, false
	}
	return *ps.pending, true
}

// Step executes the pending primitive of process pid, records the resulting
// configuration, and parks pid at its next request. It panics if pid is not
// runnable (a scheduler bug).
func (r *Runner) Step(pid int) {
	ps := r.procs[pid]
	if ps.pending == nil {
		panic(fmt.Sprintf("sim: Step(%d) on non-runnable process", pid))
	}
	prim := *ps.pending
	ps.pending = nil
	if r.mem.IndexOf(prim.Obj) < 0 {
		panic(fmt.Sprintf("sim: p%d accessed unregistered object %s", pid, prim.Obj.Name()))
	}
	// The invocation of the operation this step belongs to becomes visible
	// at the configuration this step produces.
	r.flushInvoke(ps, len(r.trace.Steps)+1)
	result := prim.Obj.apply(pid, prim)
	step := Step{PID: pid, Prim: prim, Result: result}
	if r.snapshotMem {
		step.Mem = r.mem.Snapshot()
	}
	r.trace.Steps = append(r.trace.Steps, step)
	// Unblock the process and park it again.
	select {
	case ps.proc.grant <- result:
	case <-r.quit:
		return
	}
	r.drain(pid)
}

// Resume wakes a paused process and parks it at its next request. It panics
// if pid is not paused.
func (r *Runner) Resume(pid int) {
	ps := r.procs[pid]
	if !ps.paused {
		panic(fmt.Sprintf("sim: Resume(%d) on non-paused process", pid))
	}
	ps.paused = false
	select {
	case ps.proc.grant <- nil:
	case <-r.quit:
		return
	}
	r.drain(pid)
}

// Trace returns the execution recorded so far.
func (r *Runner) Trace() *Trace { return r.trace }

// Stop terminates all process goroutines and waits for them to exit. It is
// safe to call multiple times; the runner cannot be reused afterwards.
func (r *Runner) Stop() {
	if !r.started || r.stopped {
		r.stopped = true
		return
	}
	r.stopped = true
	close(r.quit)
	r.wg.Wait()
}

// Run drives the runner with the scheduler until every process finishes or
// maxSteps primitive steps have executed, then stops it and returns the
// trace. Paused processes are resumed automatically.
func (r *Runner) Run(s Scheduler, maxSteps int) *Trace {
	r.Start()
	defer r.Stop()
	for len(r.trace.Steps) < maxSteps {
		for _, pid := range r.Paused() {
			r.Resume(pid)
		}
		runnable := r.Runnable()
		if len(runnable) == 0 {
			return r.trace
		}
		r.Step(s.Next(len(r.trace.Steps), runnable))
	}
	if len(r.Runnable()) > 0 {
		r.trace.Truncated = true
	}
	return r.trace
}
