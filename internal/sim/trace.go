package sim

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
)

// EventKind distinguishes invocation and response events in a history.
type EventKind int

// Event kinds.
const (
	EvInvoke EventKind = iota + 1
	EvReturn
)

// Event is an invocation or response of a high-level operation (the entries
// of the history H(α) in Section 2).
type Event struct {
	Kind EventKind
	// PID is the invoking process.
	PID int
	// OpIndex numbers the operations of each process from 0.
	OpIndex int
	// Op is the abstract operation (set on both invoke and return events).
	Op core.Op
	// StateChanging reports the operation's classification (Section 3).
	StateChanging bool
	// Resp is the operation's response (return events only).
	Resp int
	// StepIndex is the number of primitive steps executed before this
	// event: the event happens in configuration C_{StepIndex}.
	StepIndex int
}

// Step is one primitive step of the execution together with the memory
// representation of the configuration it produces.
type Step struct {
	// PID is the process that took the step.
	PID int
	// Prim is the primitive executed.
	Prim Prim
	// Result is the primitive's result.
	Result Value
	// Mem is the memory representation after the step (nil when snapshots
	// are disabled).
	Mem []string
}

// Trace records an execution α: the initial memory representation, every
// step with its resulting configuration, and the history of invocations and
// responses.
type Trace struct {
	// NumProcs is the number of processes.
	NumProcs int
	// ObjNames are the base object names, in memory-index order.
	ObjNames []string
	// Initial is mem(C_0).
	Initial []string
	// Steps are the executed primitive steps, in order.
	Steps []Step
	// Events is the history H(α), in real-time order.
	Events []Event
	// Truncated reports that the run hit its step bound with runnable
	// processes remaining.
	Truncated bool
}

// MemAt returns the memory representation of configuration C_k (after k
// steps); k = 0 is the initial configuration.
func (t *Trace) MemAt(k int) []string {
	if k == 0 {
		return t.Initial
	}
	return t.Steps[k-1].Mem
}

// NumConfigs returns the number of configurations in the trace (steps + 1).
func (t *Trace) NumConfigs() int { return len(t.Steps) + 1 }

// Config describes one configuration of the execution for history-
// independence checking.
type Config struct {
	// Index is k for configuration C_k.
	Index int
	// Mem is mem(C_k).
	Mem []string
	// Pending is the number of pending operations.
	Pending int
	// PendingSC is the number of pending state-changing operations.
	PendingSC int
}

// Quiescent reports whether no operation is pending (Definition 8's
// observation class).
func (c Config) Quiescent() bool { return c.Pending == 0 }

// StateQuiescent reports whether no state-changing operation is pending
// (Definition 7's observation class).
func (c Config) StateQuiescent() bool { return c.PendingSC == 0 }

// Configs computes the per-configuration pending-operation counts of the
// trace. The result has NumConfigs entries.
func (t *Trace) Configs() []Config {
	n := t.NumConfigs()
	configs := make([]Config, n)
	// Delta arrays: changes to pending counts at each configuration index.
	dPending := make([]int, n+1)
	dSC := make([]int, n+1)
	for _, ev := range t.Events {
		idx := ev.StepIndex
		if idx >= n {
			idx = n - 1
		}
		switch ev.Kind {
		case EvInvoke:
			dPending[idx]++
			if ev.StateChanging {
				dSC[idx]++
			}
		case EvReturn:
			dPending[idx]--
			if ev.StateChanging {
				dSC[idx]--
			}
		}
	}
	pending, sc := 0, 0
	for k := 0; k < n; k++ {
		pending += dPending[k]
		sc += dSC[k]
		configs[k] = Config{Index: k, Mem: t.MemAt(k), Pending: pending, PendingSC: sc}
	}
	return configs
}

// CompletedOps returns, in response order, the operations that completed in
// the trace, belonging to the given process (or all processes if pid < 0).
func (t *Trace) CompletedOps(pid int) []core.Op {
	var ops []core.Op
	for _, ev := range t.Events {
		if ev.Kind == EvReturn && (pid < 0 || ev.PID == pid) {
			ops = append(ops, ev.Op)
		}
	}
	return ops
}

// Responses returns the responses of process pid's completed operations in
// order.
func (t *Trace) Responses(pid int) []int {
	var resps []int
	for _, ev := range t.Events {
		if ev.Kind == EvReturn && ev.PID == pid {
			resps = append(resps, ev.Resp)
		}
	}
	return resps
}

// StepsBy returns the number of primitive steps taken by process pid.
func (t *Trace) StepsBy(pid int) int {
	n := 0
	for _, s := range t.Steps {
		if s.PID == pid {
			n++
		}
	}
	return n
}

// Schedule returns the sequence of process ids that took steps, which
// replays this trace when passed to a fresh runner via FixedSchedule.
func (t *Trace) Schedule() []int {
	sched := make([]int, len(t.Steps))
	for i, s := range t.Steps {
		sched[i] = s.PID
	}
	return sched
}

// String renders the trace compactly for debugging.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial: %s\n", Fingerprint(t.Initial))
	evIdx := 0
	emit := func(upto int) {
		for evIdx < len(t.Events) && t.Events[evIdx].StepIndex <= upto {
			ev := t.Events[evIdx]
			switch ev.Kind {
			case EvInvoke:
				fmt.Fprintf(&b, "  p%d invokes %v\n", ev.PID, ev.Op)
			case EvReturn:
				fmt.Fprintf(&b, "  p%d returns %d from %v\n", ev.PID, ev.Resp, ev.Op)
			}
			evIdx++
		}
	}
	emit(-1)
	for k, s := range t.Steps {
		// Invokes attached to step k+1 happen before the step executes.
		for evIdx < len(t.Events) && t.Events[evIdx].StepIndex == k+1 && t.Events[evIdx].Kind == EvInvoke {
			fmt.Fprintf(&b, "  p%d invokes %v\n", t.Events[evIdx].PID, t.Events[evIdx].Op)
			evIdx++
		}
		fmt.Fprintf(&b, "%4d p%d %v = %v | %s\n", k+1, s.PID, s.Prim, s.Result, Fingerprint(s.Mem))
		emit(k + 1)
	}
	emit(len(t.Steps) + 1)
	return b.String()
}
