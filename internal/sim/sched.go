package sim

import (
	"math/rand"
)

// Scheduler chooses which runnable process takes the next step; it is the
// adversary of the asynchronous model.
type Scheduler interface {
	// Next returns the pid to step, chosen from runnable (never empty).
	Next(stepIdx int, runnable []int) int
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(stepIdx int, runnable []int) int

// Next implements Scheduler.
func (f SchedulerFunc) Next(stepIdx int, runnable []int) int { return f(stepIdx, runnable) }

// RoundRobin cycles through the runnable processes starting from the lowest
// pid, giving each quantum consecutive steps (quantum 1 is a fair
// alternation). The zero value is ready to use.
type RoundRobin struct {
	// Quantum is the number of consecutive steps per process (>= 1).
	Quantum int

	next  int // lowest pid eligible for the next pick
	last  int
	count int
}

// Next implements Scheduler.
func (rr *RoundRobin) Next(_ int, runnable []int) int {
	q := rr.Quantum
	if q < 1 {
		q = 1
	}
	// Continue with the same process while its quantum lasts.
	if rr.count > 0 && rr.count < q {
		for _, pid := range runnable {
			if pid == rr.last {
				rr.count++
				return pid
			}
		}
	}
	// Pick the first runnable pid at or after next, wrapping around.
	pick := runnable[0]
	for _, pid := range runnable {
		if pid >= rr.next {
			pick = pid
			break
		}
	}
	rr.next = pick + 1
	rr.last = pick
	rr.count = 1
	return pick
}

// RandomSched picks a uniformly random runnable process at every step,
// deterministically from its seed.
type RandomSched struct {
	rng *rand.Rand
}

// NewRandomSched returns a seeded random scheduler.
func NewRandomSched(seed int64) *RandomSched {
	return &RandomSched{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Scheduler.
func (s *RandomSched) Next(_ int, runnable []int) int {
	return runnable[s.rng.Intn(len(runnable))]
}

// FixedSchedule replays an explicit pid sequence; once the sequence is
// exhausted it falls back to the first runnable process. If the scheduled
// pid is not runnable it also falls back to the first runnable process.
type FixedSchedule []int

// Next implements Scheduler.
func (f FixedSchedule) Next(stepIdx int, runnable []int) int {
	if stepIdx < len(f) {
		want := f[stepIdx]
		for _, pid := range runnable {
			if pid == want {
				return pid
			}
		}
	}
	return runnable[0]
}

// Phase is one segment of a Phases schedule: PID runs for Steps steps.
type Phase struct {
	// PID takes the steps of this phase.
	PID int
	// Steps is the phase length in primitive steps.
	Steps int
}

// Phases runs an explicit sequence of per-process step quotas, then falls
// back to the first runnable process. If the phase's process is not runnable
// the phase is skipped. Phases is the workhorse for hand-crafted adversarial
// schedules reproducing the paper's proof scenarios (Figures 2, 4, 5).
type Phases struct {
	// List is the phase sequence.
	List []Phase

	idx  int
	used int
}

// Next implements Scheduler.
func (p *Phases) Next(_ int, runnable []int) int {
	for p.idx < len(p.List) {
		ph := p.List[p.idx]
		if p.used >= ph.Steps {
			p.idx++
			p.used = 0
			continue
		}
		for _, pid := range runnable {
			if pid == ph.PID {
				p.used++
				return pid
			}
		}
		p.idx++
		p.used = 0
	}
	return runnable[0]
}

// SoloThen schedules process solo for steps steps, then delegates to next.
// It is a convenient building block for adversarial schedules.
type SoloThen struct {
	// PID runs alone for the first Steps steps.
	PID int
	// Steps is the length of the solo prefix.
	Steps int
	// Then schedules the remainder.
	Then Scheduler
}

// Next implements Scheduler.
func (s *SoloThen) Next(stepIdx int, runnable []int) int {
	if stepIdx < s.Steps {
		for _, pid := range runnable {
			if pid == s.PID {
				return pid
			}
		}
	}
	return s.Then.Next(stepIdx, runnable)
}
