package sim

import (
	"runtime"

	"hiconc/internal/core"
)

// Program is the code a single process runs: a sequence of high-level
// operations implemented in terms of primitive steps on base objects via the
// Proc handle. A Program returns when the process has no more operations to
// perform.
type Program func(p *Proc)

type msgKind int

const (
	msgPrim msgKind = iota + 1
	msgInvoke
	msgReturn
	msgPause
	msgDone
)

type procMsg struct {
	kind          msgKind
	prim          Prim
	op            core.Op
	stateChanging bool
	resp          int
}

// Proc is the handle through which a program issues primitive steps and
// operation bookkeeping. Every primitive method blocks until the scheduler
// grants the process a step, so the runner controls the interleaving
// exactly. Proc methods must only be called from the program's goroutine.
type Proc struct {
	// ID is the process index p_i, 0-based.
	ID int
	// N is the total number of processes in the system.
	N int

	out   chan procMsg
	grant chan Value
	quit  <-chan struct{}
}

// send delivers a message to the runner, or terminates the goroutine if the
// runner has stopped.
func (p *Proc) send(m procMsg) {
	select {
	case p.out <- m:
	case <-p.quit:
		runtime.Goexit()
	}
}

// await blocks until the runner grants the pending request.
func (p *Proc) await() Value {
	select {
	case v := <-p.grant:
		return v
	case <-p.quit:
		runtime.Goexit()
		return nil
	}
}

// exec performs one primitive step and returns its result.
func (p *Proc) exec(pr Prim) Value {
	p.send(procMsg{kind: msgPrim, prim: pr})
	return p.await()
}

// Read performs an atomic read of register r.
func (p *Proc) Read(r *Reg) Value {
	return p.exec(Prim{Kind: PrimRead, Obj: r})
}

// ReadInt reads register r and returns its value as an int.
func (p *Proc) ReadInt(r *Reg) int {
	return p.Read(r).(int)
}

// Write performs an atomic write of v to register r.
func (p *Proc) Write(r *Reg, v Value) {
	p.exec(Prim{Kind: PrimWrite, Obj: r, Arg1: v})
}

// ReadCAS performs an atomic read of CAS object c.
func (p *Proc) ReadCAS(c *CASObj) Value {
	return p.exec(Prim{Kind: PrimRead, Obj: c})
}

// WriteCAS performs an atomic write of v to CAS object c.
func (p *Proc) WriteCAS(c *CASObj, v Value) {
	p.exec(Prim{Kind: PrimWrite, Obj: c, Arg1: v})
}

// CAS performs an atomic compare-and-swap on c: if c holds old it is set to
// new and CAS returns true; otherwise c is unchanged and CAS returns false.
func (p *Proc) CAS(c *CASObj, old, new Value) bool {
	return p.exec(Prim{Kind: PrimCAS, Obj: c, Arg1: old, Arg2: new}).(bool)
}

// LL load-links cell c: it adds this process to c's context and returns c's
// value.
func (p *Proc) LL(c *LLSCCell) Value {
	return p.exec(Prim{Kind: PrimLL, Obj: c})
}

// VL validates the link: it reports whether this process is in c's context.
func (p *Proc) VL(c *LLSCCell) bool {
	return p.exec(Prim{Kind: PrimVL, Obj: c}).(bool)
}

// SC store-conditionally writes v to c: it succeeds iff this process is in
// c's context, in which case the context is reset.
func (p *Proc) SC(c *LLSCCell, v Value) bool {
	return p.exec(Prim{Kind: PrimSC, Obj: c, Arg1: v}).(bool)
}

// RL releases this process's link on c (removes it from the context).
func (p *Proc) RL(c *LLSCCell) {
	p.exec(Prim{Kind: PrimRL, Obj: c})
}

// Load reads c's value without touching the context.
func (p *Proc) Load(c *LLSCCell) Value {
	return p.exec(Prim{Kind: PrimLoad, Obj: c})
}

// Store writes v to c and resets the context.
func (p *Proc) Store(c *LLSCCell, v Value) {
	p.exec(Prim{Kind: PrimStore, Obj: c, Arg1: v})
}

// Invoke records the invocation of a high-level operation. The invocation is
// attached to the process's next primitive step, so a process with no steps
// taken yet on an operation is not considered pending in earlier
// configurations. stateChanging must reflect the operation's classification
// per Section 3 (used to identify state-quiescent configurations).
func (p *Proc) Invoke(op core.Op, stateChanging bool) {
	p.send(procMsg{kind: msgInvoke, op: op, stateChanging: stateChanging})
}

// Return records the response of the process's current operation.
func (p *Proc) Return(resp int) {
	p.send(procMsg{kind: msgReturn, resp: resp})
}

// Pause parks the process until the controller resumes it. While paused the
// process is not runnable. Pause is used by adaptive drivers (for example
// the Theorem 17 adversary) that decide a process's next operations on the
// fly.
func (p *Proc) Pause() {
	p.send(procMsg{kind: msgPause})
	p.await()
}
