package sim_test

import (
	"testing"
	"testing/quick"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

// TestQuickScheduleDeterminism: for any seed, running the same random
// schedule twice produces identical traces — the property the whole
// replay-based exploration stack rests on.
func TestQuickScheduleDeterminism(t *testing.T) {
	build := func() *sim.Runner {
		mem := sim.NewMemory()
		x := mem.NewReg("x", 0)
		y := mem.NewCAS("y", 0)
		prog := func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Invoke(core.Op{Name: "op"}, true)
				v := p.ReadInt(x)
				p.Write(x, v+1)
				p.CAS(y, v, v+1)
				p.Return(v)
			}
		}
		return sim.NewRunner(mem, []sim.Program{prog, prog, prog})
	}
	f := func(seed int64) bool {
		t1 := build().Run(sim.NewRandomSched(seed), 200)
		t2 := build().Run(sim.NewRandomSched(seed), 200)
		if len(t1.Steps) != len(t2.Steps) {
			return false
		}
		for k := range t1.Steps {
			if t1.Steps[k].PID != t2.Steps[k].PID {
				return false
			}
			if sim.Fingerprint(t1.Steps[k].Mem) != sim.Fingerprint(t2.Steps[k].Mem) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickScheduleReplay: replaying the pid sequence extracted from any
// random trace reproduces that trace exactly.
func TestQuickScheduleReplay(t *testing.T) {
	build := func() *sim.Runner {
		mem := sim.NewMemory()
		x := mem.NewReg("x", 0)
		prog := func(v int) sim.Program {
			return func(p *sim.Proc) {
				for i := 0; i < 4; i++ {
					p.Invoke(core.Op{Name: "w"}, true)
					p.Write(x, v*10+i)
					p.Return(0)
				}
			}
		}
		return sim.NewRunner(mem, []sim.Program{prog(1), prog(2)})
	}
	f := func(seed int64) bool {
		orig := build().Run(sim.NewRandomSched(seed), 100)
		replay := build().Run(sim.FixedSchedule(orig.Schedule()), 100)
		return sim.Fingerprint(orig.MemAt(len(orig.Steps))) ==
			sim.Fingerprint(replay.MemAt(len(replay.Steps))) &&
			len(orig.Steps) == len(replay.Steps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickConfigCountsNonNegative: pending-operation counters never go
// negative and end at zero on completed runs.
func TestQuickConfigCountsNonNegative(t *testing.T) {
	build := func() *sim.Runner {
		mem := sim.NewMemory()
		x := mem.NewReg("x", 0)
		prog := func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Invoke(core.Op{Name: "rmw"}, i%2 == 0)
				v := p.ReadInt(x)
				p.Write(x, v+1)
				p.Return(v)
			}
		}
		return sim.NewRunner(mem, []sim.Program{prog, prog})
	}
	f := func(seed int64) bool {
		tr := build().Run(sim.NewRandomSched(seed), 200)
		configs := tr.Configs()
		for _, c := range configs {
			if c.Pending < 0 || c.PendingSC < 0 || c.PendingSC > c.Pending {
				return false
			}
		}
		last := configs[len(configs)-1]
		return last.Pending == 0 && last.PendingSC == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
