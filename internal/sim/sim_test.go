package sim_test

import (
	"reflect"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

// incProgram reads a register and writes back the value plus one, n times,
// as one operation per round trip. Two such processes racing exhibit lost
// updates depending on the interleaving — a convenient determinism probe.
func incProgram(r *sim.Reg, n int) sim.Program {
	return func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Invoke(core.Op{Name: "inc"}, true)
			v := p.ReadInt(r)
			p.Write(r, v+1)
			p.Return(v)
		}
	}
}

func buildIncRunner() *sim.Runner {
	mem := sim.NewMemory()
	r := mem.NewReg("x", 0)
	return sim.NewRunner(mem, []sim.Program{incProgram(r, 1), incProgram(r, 1)})
}

func TestLockStepBasics(t *testing.T) {
	r := buildIncRunner()
	tr := r.Run(&sim.RoundRobin{}, 100)
	if len(tr.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(tr.Steps))
	}
	// Alternating schedule: both read 0, both write 1 => lost update.
	if got := tr.MemAt(4)[0]; got != "1" {
		t.Errorf("final x = %s, want 1 (lost update)", got)
	}
	if len(tr.Events) != 4 {
		t.Errorf("events = %d, want 4", len(tr.Events))
	}
}

func TestSequentialScheduleNoLostUpdate(t *testing.T) {
	r := buildIncRunner()
	tr := r.Run(sim.FixedSchedule{0, 0, 1, 1}, 100)
	if got := tr.MemAt(4)[0]; got != "2" {
		t.Errorf("final x = %s, want 2", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() *sim.Trace {
		return buildIncRunner().Run(sim.FixedSchedule{0, 1, 1, 0}, 100)
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1.Schedule(), t2.Schedule()) {
		t.Fatal("schedules differ")
	}
	for k := 0; k <= len(t1.Steps); k++ {
		if sim.Fingerprint(t1.MemAt(k)) != sim.Fingerprint(t2.MemAt(k)) {
			t.Errorf("config %d differs between identical replays", k)
		}
	}
	if !reflect.DeepEqual(t1.Events, t2.Events) {
		t.Error("events differ between identical replays")
	}
}

func TestExploreCountsInterleavings(t *testing.T) {
	// Two processes with 2 steps each: C(4,2) = 6 maximal interleavings.
	n, err := sim.Explore(buildIncRunner, 100, 10000, func(*sim.Trace) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("explored %d interleavings, want 6", n)
	}
}

func TestExploreBudget(t *testing.T) {
	_, err := sim.Explore(buildIncRunner, 100, 3, func(*sim.Trace) error { return nil })
	if err != sim.ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestConfigPendingCounts(t *testing.T) {
	r := buildIncRunner()
	tr := r.Run(sim.FixedSchedule{0, 0, 1, 1}, 100)
	configs := tr.Configs()
	if len(configs) != 5 {
		t.Fatalf("configs = %d, want 5", len(configs))
	}
	wantPending := []int{0, 1, 0, 1, 0}
	for k, cfg := range configs {
		if cfg.Pending != wantPending[k] {
			t.Errorf("C_%d pending = %d, want %d", k, cfg.Pending, wantPending[k])
		}
		if (cfg.Pending == 0) != cfg.Quiescent() {
			t.Errorf("C_%d quiescence inconsistent", k)
		}
	}
}

func TestReadOnlyOpsAndStateQuiescence(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 7)
	reader := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "read"}, false)
		v := p.ReadInt(x)
		p.Return(v)
	}
	writer := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "write", Arg: 9}, true)
		p.Write(x, 9)
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{writer, reader})
	tr := r.Run(sim.FixedSchedule{1, 0}, 100)
	configs := tr.Configs()
	// C_1: read completed, nothing pending; C_0 state-quiescent trivially.
	for _, cfg := range configs {
		if !cfg.StateQuiescent() && cfg.Index != 0 {
			// Only a configuration during the write could be non-state-
			// quiescent, but the write is a single step here, so the
			// configuration after it is already complete.
			t.Errorf("C_%d unexpectedly not state-quiescent", cfg.Index)
		}
	}
	if got := tr.Responses(1); len(got) != 1 || got[0] != 7 {
		t.Errorf("reader responses = %v, want [7]", got)
	}
}

func TestCASSemantics(t *testing.T) {
	mem := sim.NewMemory()
	c := mem.NewCAS("c", "a")
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "op"}, true)
		if !p.CAS(c, "a", "b") {
			p.Return(1)
			return
		}
		if p.CAS(c, "a", "x") {
			p.Return(2)
			return
		}
		if v := p.ReadCAS(c); v != "b" {
			p.Return(3)
			return
		}
		p.WriteCAS(c, "z")
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{prog})
	tr := r.Run(&sim.RoundRobin{}, 100)
	if got := tr.Responses(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("CAS semantics violated: responses %v", got)
	}
	if got := tr.MemAt(len(tr.Steps))[0]; got != "z" {
		t.Errorf("final value = %q, want z", got)
	}
}

func TestLLSCCellSemantics(t *testing.T) {
	mem := sim.NewMemory()
	c := mem.NewLLSC("c", 10)
	resps := []int{}
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "op"}, true)
		v := p.LL(c).(int)
		resps = append(resps, v)
		if !p.VL(c) {
			p.Return(1)
			return
		}
		if !p.SC(c, 11) {
			p.Return(2)
			return
		}
		// Context must now be empty: VL fails, SC fails.
		if p.VL(c) {
			p.Return(3)
			return
		}
		if p.SC(c, 12) {
			p.Return(4)
			return
		}
		p.Store(c, 13)
		p.RL(c)
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{prog})
	tr := r.Run(&sim.RoundRobin{}, 100)
	if got := tr.Responses(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("LLSC semantics violated: responses %v", got)
	}
	if got := tr.MemAt(len(tr.Steps))[0]; got != "(13|ctx=0)" {
		t.Errorf("final state = %q", got)
	}
}

func TestLLSCContextInState(t *testing.T) {
	mem := sim.NewMemory()
	c := mem.NewLLSC("c", 1)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "op"}, true)
		p.LL(c)
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{prog, prog})
	tr := r.Run(sim.FixedSchedule{0, 1}, 100)
	// Both processes linked: context bits 0 and 1 set.
	if got := tr.MemAt(2)[0]; got != "(1|ctx=11)" {
		t.Errorf("state = %q, want (1|ctx=11)", got)
	}
}

func TestBinRegDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("writing 2 to a binary register should panic")
		}
	}()
	mem := sim.NewMemory()
	b := mem.NewBinReg("b", 0)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "op"}, true)
		p.Write(b, 2)
		p.Return(0)
	}
	sim.NewRunner(mem, []sim.Program{prog}).Run(&sim.RoundRobin{}, 10)
}

func TestPauseResume(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "a"}, true)
		p.Write(x, 1)
		p.Return(0)
		p.Pause()
		p.Invoke(core.Op{Name: "b"}, true)
		p.Write(x, 2)
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{prog})
	r.Start()
	defer r.Stop()
	r.Step(0)
	if len(r.Runnable()) != 0 {
		t.Fatal("process should be paused, not runnable")
	}
	if got := r.Paused(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("paused = %v", got)
	}
	r.Resume(0)
	if len(r.Runnable()) != 1 {
		t.Fatal("process should be runnable after resume")
	}
	r.Step(0)
	if got := r.Mem().Snapshot()[0]; got != "2" {
		t.Errorf("x = %s, want 2", got)
	}
	if !r.Done() {
		t.Error("process should be done")
	}
}

func TestStopKillsBlockedProcs(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	spin := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "spin"}, false)
		for {
			p.Read(x) // never returns; must be killable
		}
	}
	r := sim.NewRunner(mem, []sim.Program{spin})
	r.Start()
	r.Step(0)
	r.Step(0)
	r.Stop() // must not hang
}

func TestRunnerMisusePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := buildIncRunner()
	r.Start()
	defer r.Stop()
	mustPanic("double Start", r.Start)
	mustPanic("Resume of non-paused process", func() { r.Resume(0) })
	r.Step(0)
	r.Step(0) // p0 finished its single op and program
	mustPanic("Step of non-runnable process", func() { r.Step(0) })
}

func TestWithSnapshotsDisabled(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "w"}, true)
		p.Write(x, 1)
		p.Return(0)
	}
	r := sim.NewRunner(mem, []sim.Program{prog}, sim.WithSnapshots(false))
	tr := r.Run(&sim.RoundRobin{}, 10)
	if tr.Steps[0].Mem != nil {
		t.Error("snapshots recorded despite WithSnapshots(false)")
	}
	if len(tr.Events) != 2 {
		t.Errorf("events = %d, want 2 (history still recorded)", len(tr.Events))
	}
}

func TestTruncatedFlag(t *testing.T) {
	r := buildIncRunner()
	tr := r.Run(&sim.RoundRobin{}, 2)
	if !tr.Truncated {
		t.Error("trace should be marked truncated")
	}
}

func TestDistance(t *testing.T) {
	if d := sim.Distance([]string{"a", "b", "c"}, []string{"a", "x", "y"}); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestPhasesScheduler(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	mk := func(val int) sim.Program {
		return func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				p.Invoke(core.Op{Name: "w"}, true)
				p.Write(x, val)
				p.Return(0)
			}
		}
	}
	r := sim.NewRunner(mem, []sim.Program{mk(1), mk(2)})
	tr := r.Run(&sim.Phases{List: []sim.Phase{{PID: 1, Steps: 2}, {PID: 0, Steps: 3}}}, 100)
	want := []int{1, 1, 0, 0, 0, 1}
	if got := tr.Schedule(); !reflect.DeepEqual(got, want) {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

func TestSequentialOps(t *testing.T) {
	tr := sim.SequentialOps(buildIncRunner, 100, func(opIdx int, runnable []int) int {
		return opIdx % 2
	})
	if tr.Truncated {
		t.Fatal("sequential run truncated")
	}
	if got := tr.MemAt(len(tr.Steps))[0]; got != "2" {
		t.Errorf("x = %s, want 2 (no lost update in sequential run)", got)
	}
}
