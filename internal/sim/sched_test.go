package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

func writerProg(x *sim.Reg, val, n int) sim.Program {
	return func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Invoke(core.Op{Name: "w"}, true)
			p.Write(x, val)
			p.Return(0)
		}
	}
}

func TestRoundRobinQuantum(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	r := sim.NewRunner(mem, []sim.Program{writerProg(x, 1, 4), writerProg(x, 2, 4)})
	tr := r.Run(&sim.RoundRobin{Quantum: 2}, 100)
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	if got := tr.Schedule(); !reflect.DeepEqual(got, want) {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

func TestSoloThen(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	r := sim.NewRunner(mem, []sim.Program{writerProg(x, 1, 3), writerProg(x, 2, 3)})
	s := &sim.SoloThen{PID: 1, Steps: 2, Then: &sim.RoundRobin{}}
	tr := r.Run(s, 100)
	got := tr.Schedule()
	if got[0] != 1 || got[1] != 1 {
		t.Errorf("solo prefix not respected: %v", got)
	}
}

func TestSchedulerFunc(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	r := sim.NewRunner(mem, []sim.Program{writerProg(x, 1, 2), writerProg(x, 2, 2)})
	always1 := sim.SchedulerFunc(func(_ int, runnable []int) int {
		return runnable[len(runnable)-1]
	})
	tr := r.Run(always1, 100)
	// The last runnable pid goes first until it finishes.
	if got := tr.Schedule(); !reflect.DeepEqual(got[:2], []int{1, 1}) {
		t.Errorf("schedule = %v", got)
	}
}

func TestFixedScheduleFallback(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	r := sim.NewRunner(mem, []sim.Program{writerProg(x, 1, 2), writerProg(x, 2, 2)})
	// Schedule names pid 1 beyond its available steps; the fallback picks
	// the first runnable process so the run still completes.
	tr := r.Run(sim.FixedSchedule{1, 1, 1, 1, 1, 1}, 100)
	if tr.Truncated {
		t.Fatal("run did not complete")
	}
	if got := len(tr.Steps); got != 4 {
		t.Errorf("steps = %d, want 4", got)
	}
}

func TestTraceString(t *testing.T) {
	mem := sim.NewMemory()
	x := mem.NewReg("x", 0)
	r := sim.NewRunner(mem, []sim.Program{writerProg(x, 1, 1)})
	tr := r.Run(&sim.RoundRobin{}, 100)
	out := tr.String()
	for _, needle := range []string{"initial:", "p0 invokes", "p0 returns", "write(x, 1)"} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace rendering missing %q:\n%s", needle, out)
		}
	}
}
