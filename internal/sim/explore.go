package sim

import (
	"errors"
	"fmt"
)

// ErrBudget is returned by Explore when the run budget is exhausted before
// the schedule space was covered.
var ErrBudget = errors.New("sim: exploration budget exhausted")

// Builder constructs a fresh runner (fresh memory, fresh programs). Every
// runner built must be deterministic: the trace must be a function of the
// schedule alone.
type Builder func() *Runner

// Explore enumerates every schedule of the runner built by build, up to
// maxSteps primitive steps, and calls visit on each maximal trace (a trace
// in which either all processes finished or the step bound was reached).
// Exploration is stateless: each schedule is replayed from scratch, as in
// CHESS-style model checking. At most budget runs are performed; if the
// budget is exhausted Explore returns ErrBudget. It returns the number of
// maximal traces visited.
//
// Paused processes are resumed automatically (exhaustive exploration is not
// used with adaptive drivers).
func Explore(build Builder, maxSteps, budget int, visit func(*Trace) error) (int, error) {
	visited := 0
	runs := 0

	// replay builds a runner and applies the schedule prefix.
	replay := func(prefix []int) (*Runner, error) {
		if runs >= budget {
			return nil, ErrBudget
		}
		runs++
		r := build()
		r.Start()
		for _, pid := range prefix {
			for _, p := range r.Paused() {
				r.Resume(p)
			}
			r.Step(pid)
		}
		for _, p := range r.Paused() {
			r.Resume(p)
		}
		return r, nil
	}

	var dfs func(prefix []int) error
	dfs = func(prefix []int) error {
		r, err := replay(prefix)
		if err != nil {
			return err
		}
		runnable := r.Runnable()
		if len(runnable) == 0 || len(prefix) >= maxSteps {
			t := r.Trace()
			if len(runnable) > 0 {
				t.Truncated = true
			}
			r.Stop()
			visited++
			return visit(t)
		}
		r.Stop()
		for _, pid := range runnable {
			if err := dfs(append(prefix, pid)); err != nil {
				return err
			}
		}
		return nil
	}

	err := dfs(nil)
	return visited, err
}

// RandomTraces runs n random schedules (seeded seed, seed+1, ...) of the
// runner built by build, each up to maxSteps steps, and calls visit on every
// trace. It stops at the first visit error.
func RandomTraces(build Builder, n int, seed int64, maxSteps int, visit func(*Trace) error) error {
	for i := 0; i < n; i++ {
		r := build()
		t := r.Run(NewRandomSched(seed+int64(i)), maxSteps)
		if err := visit(t); err != nil {
			return fmt.Errorf("seed %d: %w", seed+int64(i), err)
		}
	}
	return nil
}

// SequentialOps runs the runner built by build under a scheduler that never
// interleaves operations: it repeatedly picks a runnable process and runs it
// until its current operation completes. The order of operations is chosen
// by pick (given the number of completed operations so far and the runnable
// pids). This produces the sequential executions over which canonical
// memory representations are defined.
func SequentialOps(build Builder, maxSteps int, pick func(opIdx int, runnable []int) int) *Trace {
	r := build()
	r.Start()
	defer r.Stop()
	opIdx := 0
	for len(r.Trace().Steps) < maxSteps {
		for _, p := range r.Paused() {
			r.Resume(p)
		}
		runnable := r.Runnable()
		if len(runnable) == 0 {
			return r.Trace()
		}
		pid := pick(opIdx, runnable)
		// Run pid until its current operation returns (or it finishes).
		completed := len(r.Trace().Events)
		for {
			if _, ok := r.PendingPrim(pid); !ok {
				break
			}
			r.Step(pid)
			done := false
			for _, ev := range r.Trace().Events[completed:] {
				if ev.Kind == EvReturn && ev.PID == pid {
					done = true
				}
			}
			if done || len(r.Trace().Steps) >= maxSteps {
				break
			}
		}
		opIdx++
	}
	r.Trace().Truncated = len(r.Runnable()) > 0
	return r.Trace()
}
