// Package sim implements the asynchronous shared-memory model of Section 2:
// n processes communicate through shared base objects, each step of a process
// applies exactly one primitive operation to one base object, and a
// configuration records the state of every base object (the memory
// representation mem(C)).
//
// The simulator runs each process as a goroutine in lock step with a single
// runner: a process blocks until the scheduler grants it a step, so every
// interleaving of primitive steps can be produced, replayed and inspected.
// After every step the runner snapshots the memory representation, which is
// exactly the object of the history-independence definitions (Definitions
// 4, 5, 7 and 8).
package sim

import (
	"fmt"
	"strings"
)

// Value is the state of (or an argument to) a base object. The dynamic type
// must be comparable (the CAS and SC primitives compare values with ==).
type Value any

// PrimKind enumerates the primitive operations supported by base objects.
type PrimKind int

// Primitive kinds. PrimRead/PrimWrite apply to registers and CAS objects;
// PrimCAS applies to CAS objects; the LL/VL/SC/RL/Load/Store kinds apply to
// the hardware R-LLSC cell (Section 6.1).
const (
	PrimRead PrimKind = iota + 1
	PrimWrite
	PrimCAS
	PrimLL
	PrimVL
	PrimSC
	PrimRL
	PrimLoad
	PrimStore
)

var primNames = map[PrimKind]string{
	PrimRead:  "read",
	PrimWrite: "write",
	PrimCAS:   "cas",
	PrimLL:    "LL",
	PrimVL:    "VL",
	PrimSC:    "SC",
	PrimRL:    "RL",
	PrimLoad:  "Load",
	PrimStore: "Store",
}

// String implements fmt.Stringer.
func (k PrimKind) String() string {
	if s, ok := primNames[k]; ok {
		return s
	}
	return fmt.Sprintf("prim(%d)", int(k))
}

// Prim is a single primitive step: a kind, a target object and up to two
// arguments (e.g. the old and new values of a CAS).
type Prim struct {
	Kind PrimKind
	Obj  BaseObject
	Arg1 Value
	Arg2 Value
}

// String renders the primitive for traces, e.g. "cas(head, a, b)".
func (p Prim) String() string {
	switch p.Kind {
	case PrimRead, PrimLL, PrimVL, PrimRL, PrimLoad:
		return fmt.Sprintf("%v(%s)", p.Kind, p.Obj.Name())
	case PrimWrite, PrimSC, PrimStore:
		return fmt.Sprintf("%v(%s, %v)", p.Kind, p.Obj.Name(), p.Arg1)
	case PrimCAS:
		return fmt.Sprintf("%v(%s, %v, %v)", p.Kind, p.Obj.Name(), p.Arg1, p.Arg2)
	default:
		return fmt.Sprintf("%v(%s)", p.Kind, p.Obj.Name())
	}
}

// BaseObject is a shared base object. Only the runner applies primitives;
// process goroutines merely describe the primitive they want to execute.
// Implementations live in this package so that application stays single-
// threaded and race-free by construction.
type BaseObject interface {
	// Name returns the object's name, used in traces and diagnostics.
	Name() string
	// State encodes the object's current state for the memory
	// representation. Two states are equal iff their encodings are equal.
	State() string

	apply(pid int, pr Prim) Value
	reset()
}

// Reg is an atomic read/write register. An optional domain restricts the
// values it may hold (NewBinReg restricts to {0,1} to model the paper's
// binary registers).
type Reg struct {
	name   string
	init   Value
	cur    Value
	domain func(Value) bool
}

var _ BaseObject = (*Reg)(nil)

// Name implements BaseObject.
func (r *Reg) Name() string { return r.name }

// State implements BaseObject.
func (r *Reg) State() string { return fmt.Sprintf("%v", r.cur) }

func (r *Reg) apply(_ int, pr Prim) Value {
	switch pr.Kind {
	case PrimRead:
		return r.cur
	case PrimWrite:
		if r.domain != nil && !r.domain(pr.Arg1) {
			panic(fmt.Sprintf("sim: write of %v outside domain of register %s", pr.Arg1, r.name))
		}
		r.cur = pr.Arg1
		return nil
	default:
		panic(fmt.Sprintf("sim: register %s does not support %v", r.name, pr.Kind))
	}
}

func (r *Reg) reset() { r.cur = r.init }

// CASObj is an atomic compare-and-swap object supporting read, write and
// CAS(old, new), as defined in Section 2. The state of the object is the
// value stored in it.
type CASObj struct {
	name string
	init Value
	cur  Value
}

var _ BaseObject = (*CASObj)(nil)

// Name implements BaseObject.
func (c *CASObj) Name() string { return c.name }

// State implements BaseObject.
func (c *CASObj) State() string { return fmt.Sprintf("%v", c.cur) }

func (c *CASObj) apply(_ int, pr Prim) Value {
	switch pr.Kind {
	case PrimRead:
		return c.cur
	case PrimWrite:
		c.cur = pr.Arg1
		return nil
	case PrimCAS:
		if c.cur == pr.Arg1 {
			c.cur = pr.Arg2
			return true
		}
		return false
	default:
		panic(fmt.Sprintf("sim: CAS object %s does not support %v", c.name, pr.Kind))
	}
}

func (c *CASObj) reset() { c.cur = c.init }

// LLSCCell is a hardware context-aware releasable LL/SC cell (Section 6.1):
// its state is the pair (val, context) where context is the set of processes
// that have load-linked the cell since the last context reset. Every
// operation of the R-LLSC interface is a single primitive. It is used to
// test Algorithm 5 against an "ideal" R-LLSC base object, independently of
// the Algorithm 6 implementation from CAS.
type LLSCCell struct {
	name string
	init Value
	val  Value
	ctx  uint64
}

var _ BaseObject = (*LLSCCell)(nil)

// Name implements BaseObject.
func (c *LLSCCell) Name() string { return c.name }

// State implements BaseObject. The context is part of the object's state and
// therefore of the memory representation — this is exactly what forces
// Algorithm 5 to release links (Lemma 27).
func (c *LLSCCell) State() string { return fmt.Sprintf("(%v|ctx=%b)", c.val, c.ctx) }

func (c *LLSCCell) apply(pid int, pr Prim) Value {
	bit := uint64(1) << uint(pid)
	switch pr.Kind {
	case PrimLL:
		c.ctx |= bit
		return c.val
	case PrimVL:
		return c.ctx&bit != 0
	case PrimSC:
		if c.ctx&bit != 0 {
			c.val = pr.Arg1
			c.ctx = 0
			return true
		}
		return false
	case PrimRL:
		c.ctx &^= bit
		return true
	case PrimLoad:
		return c.val
	case PrimStore:
		c.val = pr.Arg1
		c.ctx = 0
		return true
	default:
		panic(fmt.Sprintf("sim: LLSC cell %s does not support %v", c.name, pr.Kind))
	}
}

func (c *LLSCCell) reset() {
	c.val = c.init
	c.ctx = 0
}

// Memory is the vector of base objects used by an implementation; the order
// of registration fixes the indexing of memory representations (mem(C)[i] in
// the paper).
type Memory struct {
	objs  []BaseObject
	index map[BaseObject]int
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{index: make(map[BaseObject]int)}
}

func (m *Memory) add(o BaseObject) {
	m.index[o] = len(m.objs)
	m.objs = append(m.objs, o)
}

// NewReg creates and registers a read/write register with the given initial
// value.
func (m *Memory) NewReg(name string, init Value) *Reg {
	r := &Reg{name: name, init: init, cur: init}
	m.add(r)
	return r
}

// NewBinReg creates and registers a binary register (values 0 and 1 only).
func (m *Memory) NewBinReg(name string, init int) *Reg {
	if init != 0 && init != 1 {
		panic(fmt.Sprintf("sim: binary register %s initialized to %d", name, init))
	}
	r := &Reg{
		name: name, init: init, cur: init,
		domain: func(v Value) bool { i, ok := v.(int); return ok && (i == 0 || i == 1) },
	}
	m.add(r)
	return r
}

// NewCAS creates and registers a CAS object with the given initial value.
func (m *Memory) NewCAS(name string, init Value) *CASObj {
	c := &CASObj{name: name, init: init, cur: init}
	m.add(c)
	return c
}

// NewLLSC creates and registers a hardware R-LLSC cell with the given initial
// value and an empty context.
func (m *Memory) NewLLSC(name string, init Value) *LLSCCell {
	c := &LLSCCell{name: name, init: init, val: init}
	m.add(c)
	return c
}

// Len returns the number of registered base objects.
func (m *Memory) Len() int { return len(m.objs) }

// Names returns the object names in index order.
func (m *Memory) Names() []string {
	names := make([]string, len(m.objs))
	for i, o := range m.objs {
		names[i] = o.Name()
	}
	return names
}

// IndexOf returns the memory index of o, or -1 if o is not registered.
func (m *Memory) IndexOf(o BaseObject) int {
	if i, ok := m.index[o]; ok {
		return i
	}
	return -1
}

// Snapshot returns the current memory representation as a vector of encoded
// object states.
func (m *Memory) Snapshot() []string {
	snap := make([]string, len(m.objs))
	for i, o := range m.objs {
		snap[i] = o.State()
	}
	return snap
}

// Fingerprint returns the current memory representation as a single string;
// two configurations have equal fingerprints iff they have equal memory
// representations.
func (m *Memory) Fingerprint() string { return Fingerprint(m.Snapshot()) }

// Reset restores every base object to its initial state.
func (m *Memory) Reset() {
	for _, o := range m.objs {
		o.reset()
	}
}

// Fingerprint joins a snapshot into a single comparable string.
func Fingerprint(snap []string) string { return strings.Join(snap, " | ") }

// Distance returns the number of indices at which the two memory
// representations differ (the distance of Proposition 6). It panics if the
// vectors have different lengths.
func Distance(a, b []string) int {
	if len(a) != len(b) {
		panic("sim: distance of unequal-length memories")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
