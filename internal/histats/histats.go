// Package histats is the observability layer of the native HICHT stack:
// per-goroutine-sharded atomic counters and log-bucketed latency
// histograms for the protocol events of internal/hihash, internal/shard,
// internal/conc and internal/obj.
//
// The whole layer hangs off one global atomic pointer (an
// internal/hook point, the same idiom as hihash.SetStepHook and the
// internal/hirec flight recorder): every instrumented site calls Inc,
// Add or Observe, whose disabled path is a single atomic load and a
// predicted branch (no recorder allocated, nothing written). Enabling
// installs a Recorder; events then land in per-goroutine shards of
// padded atomic cells, merged on demand by Snapshot. Experiment E24
// measures both paths and gates the disabled-path overhead.
//
// Metrics are history by definition — a probe-length histogram is a
// digest of the execution — so this package must live outside the
// history-independence boundary: it never touches the objects' shared
// representation, and the objects never read it. The E23/E24 twin
// checks machine-verify the separation by asserting that RawWords dumps
// of instrumented tables are bit-identical to uninstrumented runs (see
// DESIGN.md, "Observability outside the HI boundary").
//
// All functions are safe for concurrent use; Enable and Disable may
// race with instrumented traffic (sites that loaded the old pointer
// finish against the old recorder).
package histats

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"hiconc/internal/hook"
)

// Counter identifies one monotonically increasing event count.
type Counter uint8

// The counters, grouped by layer.
const (
	// Protocol steppoints of the native table (hihash): each mirrors one
	// hihash.Steppoint and is incremented by the table's stepAt, so the
	// count is exactly "how many times that protocol CAS landed".
	CtrBoundedUpdate Counter = iota
	CtrMarkSet
	CtrDestWritten
	CtrEvictSwap
	CtrSourceCleared
	CtrFlagPlaced
	CtrFlagCleared
	CtrGrowPublished
	CtrDrainCopied
	CtrDrainDropped
	CtrGonePlaced

	// hihash retry behaviour. All four are cold-path sites: their
	// disabled nil-check only executes when the contention they count
	// actually happened, so a quiet table pays nothing for them.
	CtrHashCASFail  // a CAS on a group word lost its race (one retry loop turn)
	CtrLookupRetry  // a validated double collect had to restart
	CtrHelpRelocate // a relocation completed on behalf of another operation
	CtrLookupHelp   // a lookup burned its retry budget and fell back to helping

	// API-layer operation counts (obj.HashSet — the table itself keeps
	// its single-load lookups instrumentation-free; see DESIGN.md).
	CtrHashInsert // Insert calls
	CtrHashRemove // Remove calls
	CtrHashLookup // Contains calls

	// hihash map update path (Get stays uninstrumented, like lookups).
	CtrMapUpdate  // Inc/Dec calls
	CtrMapCASFail // a bucket-pointer CAS lost its race
	CtrMapGrow    // a bucket-array doubling was published

	// Universal construction (conc).
	CtrHeadRetry     // an SC on head failed (contention)
	CtrUniversalHelp // a process applied another process's announced op
	CtrCombineBatch  // a combining batch was installed by one SC

	// Composition layers.
	CtrShardOp // an operation routed through a sharded object

	// NumCounters bounds the enumeration.
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrBoundedUpdate: "bounded-update",
	CtrMarkSet:       "mark-set",
	CtrDestWritten:   "dest-written",
	CtrEvictSwap:     "evict-swap",
	CtrSourceCleared: "source-cleared",
	CtrFlagPlaced:    "flag-placed",
	CtrFlagCleared:   "flag-cleared",
	CtrGrowPublished: "grow-published",
	CtrDrainCopied:   "drain-copied",
	CtrDrainDropped:  "drain-dropped",
	CtrGonePlaced:    "gone-placed",
	CtrHashInsert:    "hash-insert",
	CtrHashRemove:    "hash-remove",
	CtrHashLookup:    "hash-lookup",
	CtrHashCASFail:   "hash-cas-fail",
	CtrLookupRetry:   "lookup-retry",
	CtrHelpRelocate:  "help-relocate",
	CtrLookupHelp:    "lookup-help",
	CtrMapUpdate:     "map-update",
	CtrMapCASFail:    "map-cas-fail",
	CtrMapGrow:       "map-grow",
	CtrHeadRetry:     "head-retry",
	CtrUniversalHelp: "universal-help",
	CtrCombineBatch:  "combine-batch",
	CtrShardOp:       "shard-op",
}

// String implements fmt.Stringer.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "counter(?)"
}

// Hist identifies one value distribution (log-bucketed histogram).
type Hist uint8

// The histograms. Small values (< 64) land in exact buckets, so
// structural distributions (probe lengths, batch sizes, shard indices)
// are recorded precisely; larger values (latencies in nanoseconds) fall
// into eight sub-buckets per power of two, ±12.5% resolution.
const (
	HistProbeLen    Hist = iota // groups walked by a displacing placement
	HistRelocDist               // landing distance of a completed relocation
	HistLookupRetry             // validation retries of a lookup that retried at all
	HistBatchSize               // operations folded into one combining SC
	HistShardIndex              // which shard an operation routed to
	HistBucketLen               // map bucket length after an update
	HistUpdateNanos             // workload-side update latency (ns)
	HistLookupNanos             // workload-side lookup latency (ns)

	// NumHists bounds the enumeration.
	NumHists
)

var histNames = [NumHists]string{
	HistProbeLen:    "probe-len",
	HistRelocDist:   "reloc-dist",
	HistLookupRetry: "lookup-retries",
	HistBatchSize:   "batch-size",
	HistShardIndex:  "shard-index",
	HistBucketLen:   "bucket-len",
	HistUpdateNanos: "update-ns",
	HistLookupNanos: "lookup-ns",
}

// String implements fmt.Stringer.
func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "hist(?)"
}

// active is the installed recorder (an internal/hook point), empty when
// metrics are disabled. It is the single global the whole layer hangs
// off: the disabled path of every instrumented site is this load plus a
// nil check.
var active hook.Point[Recorder]

// Enable installs a fresh Recorder as the global sink and returns it.
// Any previously installed recorder stops receiving events (sites that
// already loaded it finish their current write against it).
func Enable() *Recorder {
	r := NewRecorder()
	active.Install(r)
	return r
}

// EnableWith installs r (which may be shared with direct Recorder use).
func EnableWith(r *Recorder) { active.Install(r) }

// Disable uninstalls the global recorder and returns it (nil if metrics
// were already disabled), so callers can still snapshot what was
// gathered.
func Disable() *Recorder { return active.Uninstall() }

// Active returns the installed recorder, nil when disabled.
func Active() *Recorder { return active.Load() }

// Enabled reports whether a recorder is installed. Drivers use it to
// skip building values that only exist to be observed (e.g. timing an
// operation costs two clock reads — don't pay them to observe nothing).
func Enabled() bool { return active.Enabled() }

// Inc adds 1 to counter c. Disabled cost: one atomic load + branch.
func Inc(c Counter) {
	if r := active.Load(); r != nil {
		r.shard().counters[c].Add(1)
	}
}

// Add adds n to counter c.
func Add(c Counter, n uint64) {
	if r := active.Load(); r != nil {
		r.shard().counters[c].Add(n)
	}
}

// Observe records value v into histogram h.
func Observe(h Hist, v uint64) {
	if r := active.Load(); r != nil {
		r.observe(h, v)
	}
}

// cacheLine separates neighbouring shards' hot words.
const cacheLine = 64

// histShard is one goroutine-shard's view of one histogram.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// shard is one goroutine-shard: a padded block of counters followed by
// the histogram arrays. The pads keep the counter block (the hottest
// words) off the cache lines of the neighbouring shard's tail.
type shard struct {
	counters [NumCounters]atomic.Uint64
	_        [cacheLine]byte
	hists    [NumHists]histShard
	_        [cacheLine]byte
}

// Recorder accumulates events into per-goroutine shards. All methods
// are safe for concurrent use; Snapshot merges the shards into one
// consistent-enough view (each cell is read atomically, the composite
// is not — totals lag in-flight writers by at most a few events).
type Recorder struct {
	shards []shard
	mask   uint64
}

// NewRecorder returns a recorder sized to the machine: the shard count
// is GOMAXPROCS rounded up to a power of two, capped at 64.
func NewRecorder() *Recorder {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n *= 2
	}
	return &Recorder{shards: make([]shard, n), mask: uint64(n - 1)}
}

// shard picks the calling goroutine's shard by hashing a stack address:
// distinct goroutines live on distinct stacks, so concurrent writers
// spread across shards without any goroutine-local storage. The mapping
// is only a contention-spreading heuristic (a stack growth moves it);
// every cell is atomic regardless.
func (r *Recorder) shard() *shard {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h ^= h >> 12
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &r.shards[h&r.mask]
}

// Inc adds n to counter c.
func (r *Recorder) Inc(c Counter, n uint64) { r.shard().counters[c].Add(n) }

// Observe records value v into histogram h.
func (r *Recorder) Observe(h Hist, v uint64) { r.observe(h, v) }

func (r *Recorder) observe(h Hist, v uint64) {
	hs := &r.shard().hists[h]
	hs.buckets[bucketOf(v)].Add(1)
	hs.count.Add(1)
	hs.sum.Add(v)
}

// NumShards returns the recorder's shard count (for tests).
func (r *Recorder) NumShards() int { return len(r.shards) }
