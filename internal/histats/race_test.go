package histats

import (
	"sync"
	"testing"
)

// TestEnableDisableUnderTraffic drives the global hook from many
// goroutines while another flips Enable/Disable and a third snapshots
// continuously — the install/uninstall path must be race-free (the
// atomic pointer is the only coordination) and every event must land in
// whichever recorder was active when its site loaded the pointer.
func TestEnableDisableUnderTraffic(t *testing.T) {
	defer Disable()
	flips := 200
	if testing.Short() {
		flips = 50
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				Inc(CtrHashInsert)
				Add(CtrHashCASFail, 2)
				Observe(HistProbeLen, uint64(i%16))
				Observe(HistUpdateNanos, uint64(i))
			}
		}()
	}
	wg.Add(1)
	go func() { // snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if r := Active(); r != nil {
				s := r.Snapshot()
				_ = s.Map()
				_ = s.Total()
			}
		}
	}()
	var recorders []*Recorder
	for i := 0; i < flips; i++ {
		recorders = append(recorders, Enable())
		if i%3 == 2 {
			Disable()
		}
	}
	close(stop)
	wg.Wait()
	// Post-quiescence: every recorder's totals are internally consistent
	// (histogram bucket sums equal their counts).
	for _, r := range recorders {
		s := r.Snapshot()
		for h := Hist(0); h < NumHists; h++ {
			var sum uint64
			for _, b := range s.Hists[h].Buckets {
				sum += b
			}
			if sum != s.Hists[h].Count {
				t.Fatalf("hist %v: bucket sum %d != count %d", h, sum, s.Hists[h].Count)
			}
		}
	}
}
