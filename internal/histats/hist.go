package histats

import "math/bits"

// The bucket scheme (HDR-style, hard-coded): values below linearMax get
// an exact bucket each, so the structural distributions (probe lengths,
// batch sizes, shard indices, retry counts) lose nothing; values above
// fall into subCount sub-buckets per power of two, a fixed ±12.5%
// relative resolution that holds from 64 ns to the full uint64 range —
// the usual HDR trade for constant-time, allocation-free recording.

const (
	// linearMax is the first non-exact value: buckets 0..linearMax-1
	// hold their value exactly.
	linearMax = 64
	// subBits is the log2 of the sub-bucket count per octave.
	subBits = 3
	// linearExp is log2(linearMax): the first log-bucketed octave.
	linearExp = 6
	// NumBuckets is the bucket array length: 64 exact buckets plus
	// 8 sub-buckets for each of the 58 octaves from 2^6 up to 2^63.
	NumBuckets = linearMax + (64-linearExp)*(1<<subBits)
)

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < linearMax {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 6..63
	sub := int(v>>(uint(exp)-subBits)) & (1<<subBits - 1)
	return linearMax + (exp-linearExp)<<subBits + sub
}

// bucketBounds returns the inclusive value range covered by bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < linearMax {
		return uint64(i), uint64(i)
	}
	exp := uint(linearExp + (i-linearMax)>>subBits)
	sub := uint64((i - linearMax) & (1<<subBits - 1))
	width := uint64(1) << (exp - subBits)
	lo = uint64(1)<<exp + sub*width
	return lo, lo + width - 1
}

// HistSnapshot is one merged histogram: bucket counts plus the exact
// total count and sum of observed values.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     uint64
}

// Quantile returns (an estimate of) the q-quantile of the observed
// values, 0 <= q <= 1. Exact for values below 64; within the bucket
// resolution (±12.5%, reported as the bucket midpoint) above. Returns 0
// for an empty histogram.
func (h *HistSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// Max returns the midpoint of the highest non-empty bucket (exact below
// 64), 0 for an empty histogram.
func (h *HistSnapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] != 0 {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// Mean returns the exact mean of the observed values (the sum is
// tracked exactly, not reconstructed from buckets), 0 when empty.
func (h *HistSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Sub returns the histogram of events recorded after prev was taken
// (elementwise difference; both snapshots must come from the same
// recorder, counts are monotone).
func (h *HistSnapshot) Sub(prev *HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return out
}
