package histats

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestBucketOfExactBelowLinearMax: small structural values (probe
// lengths, batch sizes, shard indices) must be recorded exactly.
func TestBucketOfExactBelowLinearMax(t *testing.T) {
	for v := uint64(0); v < linearMax; v++ {
		if b := bucketOf(v); b != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact", v, b)
		}
		lo, hi := bucketBounds(int(v))
		if lo != v || hi != v {
			t.Fatalf("bucketBounds(%d) = [%d,%d], want exact", v, lo, hi)
		}
	}
}

// TestBucketBoundsCoverAndNest: every value must land in a bucket whose
// bounds contain it, bucket indices must be monotone in the value, and
// the relative bucket width must stay within the documented 12.5%.
func TestBucketBoundsCoverAndNest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(v uint64) {
		b := bucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		lo, hi := bucketBounds(b)
		if v < lo || v > hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d]", v, b, lo, hi)
		}
		if v >= linearMax {
			if width := hi - lo + 1; float64(width)/float64(lo) > 0.125+1e-9 {
				t.Fatalf("bucket %d width %d too coarse for lo %d", b, width, lo)
			}
		}
	}
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		check(v)
		if b := bucketOf(v); b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		} else {
			prev = b
		}
	}
	for i := 0; i < 10000; i++ {
		check(rng.Uint64())
	}
	check(^uint64(0))
}

// TestQuantilesExactSmall: for values below 64 the quantiles are exact.
func TestQuantilesExactSmall(t *testing.T) {
	r := NewRecorder()
	// 100 observations of value i for i in 0..9: p50 is in the middle.
	for v := uint64(0); v < 10; v++ {
		for i := 0; i < 100; i++ {
			r.Observe(HistProbeLen, v)
		}
	}
	h := &r.Snapshot().Hists[HistProbeLen]
	if h.Count != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0, 0}, {0.05, 0}, {0.55, 5}, {0.95, 9}, {1.0, 9}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Max(); got != 9 {
		t.Errorf("Max = %d, want 9", got)
	}
	if got := h.Mean(); got != 4.5 {
		t.Errorf("Mean = %v, want 4.5", got)
	}
}

// TestQuantileResolutionLarge: latency-scale values resolve within the
// bucket's 12.5% band.
func TestQuantileResolutionLarge(t *testing.T) {
	r := NewRecorder()
	const v = 1_000_000 // 1ms in ns
	for i := 0; i < 100; i++ {
		r.Observe(HistUpdateNanos, v)
	}
	h := &r.Snapshot().Hists[HistUpdateNanos]
	got := h.Quantile(0.5)
	if got < v-v/8 || got > v+v/8 {
		t.Fatalf("Quantile(0.5) = %d, want within 12.5%% of %d", got, v)
	}
}

// TestEmptyHistogram: zero-count histograms answer zeros, not panics.
func TestEmptyHistogram(t *testing.T) {
	var h HistSnapshot
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestEnableDisableAndGlobals: the package-level hooks write to the
// active recorder only.
func TestEnableDisableAndGlobals(t *testing.T) {
	Disable()
	Inc(CtrHashInsert) // disabled: must be dropped, not crash
	Observe(HistProbeLen, 3)
	r := Enable()
	defer Disable()
	if !Enabled() || Active() != r {
		t.Fatal("Enable did not install the recorder")
	}
	Inc(CtrHashInsert)
	Add(CtrHashCASFail, 5)
	Observe(HistProbeLen, 3)
	s := r.Snapshot()
	if s.Counters[CtrHashInsert] != 1 || s.Counters[CtrHashCASFail] != 5 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Hists[HistProbeLen].Count != 1 || s.Hists[HistProbeLen].Quantile(0.5) != 3 {
		t.Fatalf("hist = %+v", s.Hists[HistProbeLen])
	}
	if got := Disable(); got != r {
		t.Fatal("Disable must return the recorder that was active")
	}
	Inc(CtrHashInsert)
	if s := r.Snapshot(); s.Counters[CtrHashInsert] != 1 {
		t.Fatal("events after Disable must be dropped")
	}
}

// TestSnapshotSub: deltas between two snapshots isolate the window.
func TestSnapshotSub(t *testing.T) {
	r := NewRecorder()
	r.Inc(CtrShardOp, 10)
	r.Observe(HistShardIndex, 2)
	a := r.Snapshot()
	r.Inc(CtrShardOp, 7)
	r.Observe(HistShardIndex, 2)
	r.Observe(HistShardIndex, 5)
	d := r.Snapshot().Sub(a)
	if d.Counters[CtrShardOp] != 7 {
		t.Fatalf("delta counter = %d, want 7", d.Counters[CtrShardOp])
	}
	if h := d.Hists[HistShardIndex]; h.Count != 2 || h.Buckets[2] != 1 || h.Buckets[5] != 1 {
		t.Fatalf("delta hist = %+v", h)
	}
	if d.Total() == 0 {
		t.Fatal("Total of a nonzero delta must be nonzero")
	}
}

// TestShardSpread: concurrent writers all land, whatever shard the
// stack-address hash picks, and the merged totals are exact at
// quiescence.
func TestShardSpread(t *testing.T) {
	r := NewRecorder()
	const gs, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc(CtrHashInsert, 1)
				r.Observe(HistProbeLen, uint64(i%8))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[CtrHashInsert] != gs*per {
		t.Fatalf("merged counter = %d, want %d", s.Counters[CtrHashInsert], gs*per)
	}
	if s.Hists[HistProbeLen].Count != gs*per {
		t.Fatalf("merged hist count = %d, want %d", s.Hists[HistProbeLen].Count, gs*per)
	}
}

// TestWriteText: the exposition is stable, parseable line-per-metric.
func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.Inc(CtrMarkSet, 42)
	r.Observe(HistProbeLen, 2)
	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`histats_counter{name="mark-set"} 42`,
		`histats_hist_count{name="probe-len"} 1`,
		`histats_hist{name="probe-len",stat="p50"} 2`,
		`histats_counter{name="shard-op"} 0`, // zeros included: stable line set
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	wantLines := int(NumCounters) + int(NumHists)*6
	if lines != wantLines {
		t.Errorf("exposition has %d lines, want %d", lines, wantLines)
	}
}

// TestPublishExpvar: the expvar tree marshals and tracks enablement.
func TestPublishExpvar(t *testing.T) {
	PublishExpvar("histats-test")
	PublishExpvar("histats-test") // idempotent, must not panic
	v := expvar.Get("histats-test")
	if v == nil {
		t.Fatal("not published")
	}
	Disable()
	var disabled map[string]any
	if err := json.Unmarshal([]byte(v.String()), &disabled); err != nil {
		t.Fatalf("disabled expvar does not marshal: %v", err)
	}
	if on, ok := disabled["enabled"].(bool); !ok || on {
		t.Fatalf("disabled expvar = %v", disabled)
	}
	Enable()
	defer Disable()
	Inc(CtrShardOp)
	var enabled struct {
		Counters map[string]uint64 `json:"counters"`
		Hists    map[string]any    `json:"hists"`
	}
	if err := json.Unmarshal([]byte(v.String()), &enabled); err != nil {
		t.Fatalf("enabled expvar does not marshal: %v", err)
	}
	if enabled.Counters["shard-op"] != 1 {
		t.Fatalf("expvar counters = %v", enabled.Counters)
	}
	if len(enabled.Hists) != int(NumHists) {
		t.Fatalf("expvar hists = %v", enabled.Hists)
	}
}

// TestNames: every enum value has a distinct name (the exposition and
// the watch table key on them).
func TestNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "counter(?)" || seen[n] {
			t.Fatalf("counter %d has bad or duplicate name %q", c, n)
		}
		seen[n] = true
	}
	for h := Hist(0); h < NumHists; h++ {
		n := h.String()
		if n == "" || n == "hist(?)" || seen[n] {
			t.Fatalf("hist %d has bad or duplicate name %q", h, n)
		}
		seen[n] = true
	}
	if Counter(200).String() != "counter(?)" || Hist(200).String() != "hist(?)" {
		t.Fatal("out-of-range values must render as unknown")
	}
}

// BenchmarkIncDisabled is the disabled-path cost every instrumented
// protocol step pays: one atomic load plus a predicted branch. E24
// multiplies this by the measured sites-per-operation to bound the
// disabled overhead.
func BenchmarkIncDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		Inc(CtrHashInsert)
	}
}

// BenchmarkIncEnabled is the enabled counter cost (shard hash + one
// atomic add).
func BenchmarkIncEnabled(b *testing.B) {
	Enable()
	defer Disable()
	for i := 0; i < b.N; i++ {
		Inc(CtrHashInsert)
	}
}

// BenchmarkObserveEnabled is the enabled histogram cost.
func BenchmarkObserveEnabled(b *testing.B) {
	Enable()
	defer Disable()
	for i := 0; i < b.N; i++ {
		Observe(HistUpdateNanos, uint64(i))
	}
}
