package histats

import (
	"expvar"
	"fmt"
	"io"
)

// Exposition — how the live numbers leave the process.
//
// PublishExpvar hangs a snapshot function off the standard expvar
// registry, so any process that serves http (cmd/hibench -http, or a
// future cmd/hiserve) exports the full metrics tree at /debug/vars with
// zero extra wiring. WriteText is the plain-text form of the same tree,
// one metric per line, for terminals and scrape jobs.

// PublishExpvar registers the global recorder under name in the expvar
// registry (idempotent — a second call with the same name is a no-op,
// since expvar panics on duplicates). The published function snapshots
// whatever recorder is active at read time; while metrics are disabled
// it reports {"enabled": false}.
func PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		r := Active()
		if r == nil {
			return map[string]any{"enabled": false}
		}
		return r.Snapshot().Map()
	}))
}

// WriteText writes the snapshot in a flat one-metric-per-line text
// exposition:
//
//	histats_counter{name="mark-set"} 42
//	histats_hist_count{name="probe-len"} 1000
//	histats_hist{name="probe-len",stat="p99"} 3
//
// Every counter and histogram is emitted (zeros included), so the line
// set is stable across snapshots and diffs cleanly.
func WriteText(w io.Writer, s *Snapshot) error {
	for c := Counter(0); c < NumCounters; c++ {
		if _, err := fmt.Fprintf(w, "histats_counter{name=%q} %d\n", c.String(), s.Counters[c]); err != nil {
			return err
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		hs := &s.Hists[h]
		name := h.String()
		if _, err := fmt.Fprintf(w, "histats_hist_count{name=%q} %d\nhistats_hist_sum{name=%q} %d\n",
			name, hs.Count, name, hs.Sum); err != nil {
			return err
		}
		for _, st := range []struct {
			label string
			value uint64
		}{
			{"p50", hs.Quantile(0.50)},
			{"p90", hs.Quantile(0.90)},
			{"p99", hs.Quantile(0.99)},
			{"max", hs.Max()},
		} {
			if _, err := fmt.Fprintf(w, "histats_hist{name=%q,stat=%q} %d\n", name, st.label, st.value); err != nil {
				return err
			}
		}
	}
	return nil
}
