package histats

import "time"

// Snapshot is one merged view of a Recorder: every counter and every
// histogram summed over the goroutine shards.
type Snapshot struct {
	// Taken is when the snapshot was merged (for rate computation).
	Taken time.Time
	// Counters holds the merged event counts, indexed by Counter.
	Counters [NumCounters]uint64
	// Hists holds the merged histograms, indexed by Hist.
	Hists [NumHists]HistSnapshot
}

// Snapshot merges the recorder's shards. Each cell is read atomically
// but the composite is not: with writers in flight the totals are a
// consistent-enough lagging view, exact at quiescence.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Taken: time.Now()}
	for i := range r.shards {
		sh := &r.shards[i]
		for c := range s.Counters {
			s.Counters[c] += sh.counters[c].Load()
		}
		for h := range s.Hists {
			hs := &sh.hists[h]
			dst := &s.Hists[h]
			for b := range dst.Buckets {
				dst.Buckets[b] += hs.buckets[b].Load()
			}
			dst.Count += hs.count.Load()
			dst.Sum += hs.sum.Load()
		}
	}
	return s
}

// Sub returns the events recorded between prev and s (both from the
// same recorder; counts are monotone so plain differences are exact at
// quiescence and lag-bounded in flight).
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	out := &Snapshot{Taken: s.Taken}
	for c := range s.Counters {
		out.Counters[c] = s.Counters[c] - prev.Counters[c]
	}
	for h := range s.Hists {
		out.Hists[h] = s.Hists[h].Sub(&prev.Hists[h])
	}
	return out
}

// Total returns the sum of all counters — a quick "did anything happen"
// scalar for gates and tests.
func (s *Snapshot) Total() uint64 {
	var t uint64
	for _, c := range s.Counters {
		t += c
	}
	return t
}

// Map renders the snapshot as a JSON-encodable tree: counter name →
// count, plus per-histogram count/sum/mean/p50/p90/p99/max. It is the
// expvar shape (and generally useful for ad-hoc JSON export).
func (s *Snapshot) Map() map[string]any {
	counters := map[string]uint64{}
	for c := Counter(0); c < NumCounters; c++ {
		counters[c.String()] = s.Counters[c]
	}
	hists := map[string]any{}
	for h := Hist(0); h < NumHists; h++ {
		hs := &s.Hists[h]
		hists[h.String()] = map[string]any{
			"count": hs.Count,
			"sum":   hs.Sum,
			"mean":  hs.Mean(),
			"p50":   hs.Quantile(0.50),
			"p90":   hs.Quantile(0.90),
			"p99":   hs.Quantile(0.99),
			"max":   hs.Max(),
		}
	}
	return map[string]any{"counters": counters, "hists": hists}
}
