package spec

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
)

// Set is a set over the domain {1..T} with insert, remove and lookup,
// following Section 5.1: insert and remove are blind updates acknowledged
// with the default response 0, and lookup returns membership (1 or 0).
// The paper observes that the set is *not* in the class C_t — its operations
// return only two responses — and admits a simple wait-free perfect HI
// implementation from T binary registers (provided in internal/registers:
// one binary register per element, written blindly).
type Set struct {
	// T is the domain size; elements are 1..T.
	T int
}

var _ core.Spec = Set{}

// NewSet returns a set specification over {1..T}.
func NewSet(t int) Set {
	if t < 1 {
		panic(fmt.Sprintf("spec: invalid set domain t=%d", t))
	}
	return Set{T: t}
}

// Name implements core.Spec.
func (s Set) Name() string { return fmt.Sprintf("set[t=%d]", s.T) }

// Init implements core.Spec. The initial state is the empty set, encoded as
// a bit string of length T ("000...").
func (s Set) Init() string { return strings.Repeat("0", s.T) }

// Apply implements core.Spec.
func (s Set) Apply(state string, op core.Op) (string, int) {
	if len(state) != s.T {
		panic("spec: bad set state " + state)
	}
	if op.Arg < 1 || op.Arg > s.T {
		panic(fmt.Sprintf("spec: set op %v out of range 1..%d", op, s.T))
	}
	i := op.Arg - 1
	member := state[i] == '1'
	switch op.Name {
	case OpInsert:
		if member {
			return state, 0
		}
		return state[:i] + "1" + state[i+1:], 0
	case OpRemove:
		if !member {
			return state, 0
		}
		return state[:i] + "0" + state[i+1:], 0
	case OpLookup:
		if member {
			return state, 1
		}
		return state, 0
	default:
		panic("spec: set: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (s Set) ReadOnly(op core.Op) bool { return op.Name == OpLookup }

// Ops implements core.Spec.
func (s Set) Ops(string) []core.Op {
	ops := make([]core.Op, 0, 3*s.T)
	for v := 1; v <= s.T; v++ {
		ops = append(ops,
			core.Op{Name: OpInsert, Arg: v},
			core.Op{Name: OpRemove, Arg: v},
			core.Op{Name: OpLookup, Arg: v},
		)
	}
	return ops
}
