package spec_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

func TestRegister(t *testing.T) {
	r := spec.NewRegister(4, 2)
	cases := []struct {
		state string
		op    core.Op
		next  string
		resp  int
	}{
		{"2", core.Op{Name: spec.OpRead}, "2", 2},
		{"2", core.Op{Name: spec.OpWrite, Arg: 4}, "4", 0},
		{"4", core.Op{Name: spec.OpRead}, "4", 4},
		{"4", core.Op{Name: spec.OpWrite, Arg: 1}, "1", 0},
	}
	for _, tc := range cases {
		next, resp := r.Apply(tc.state, tc.op)
		if next != tc.next || resp != tc.resp {
			t.Errorf("Apply(%q, %v) = (%q, %d), want (%q, %d)", tc.state, tc.op, next, resp, tc.next, tc.resp)
		}
	}
	if got := len(r.Ops("")); got != 5 {
		t.Errorf("register has %d ops, want 5", got)
	}
}

func TestMaxRegister(t *testing.T) {
	r := spec.NewMaxRegister(5, 2)
	cases := []struct {
		state string
		op    core.Op
		next  string
		resp  int
	}{
		{"2", core.Op{Name: spec.OpWrite, Arg: 4}, "4", 0},
		{"4", core.Op{Name: spec.OpWrite, Arg: 3}, "4", 0}, // smaller write is absorbed
		{"4", core.Op{Name: spec.OpRead}, "4", 4},
		{"4", core.Op{Name: spec.OpWrite, Arg: 5}, "5", 0},
	}
	for _, tc := range cases {
		next, resp := r.Apply(tc.state, tc.op)
		if next != tc.next || resp != tc.resp {
			t.Errorf("Apply(%q, %v) = (%q, %d), want (%q, %d)", tc.state, tc.op, next, resp, tc.next, tc.resp)
		}
	}
}

func TestCounter(t *testing.T) {
	c := spec.NewCounter(2, 0)
	s := c.Init()
	var resp int
	s, resp = c.Apply(s, core.Op{Name: spec.OpInc})
	if s != "1" || resp != 0 {
		t.Fatalf("inc from 0: (%q, %d)", s, resp)
	}
	s, resp = c.Apply(s, core.Op{Name: spec.OpInc})
	if s != "2" || resp != 1 {
		t.Fatalf("inc from 1: (%q, %d)", s, resp)
	}
	s, resp = c.Apply(s, core.Op{Name: spec.OpInc}) // saturates
	if s != "2" || resp != 2 {
		t.Fatalf("inc from max: (%q, %d)", s, resp)
	}
	s, resp = c.Apply(s, core.Op{Name: spec.OpDec})
	if s != "1" || resp != 2 {
		t.Fatalf("dec from 2: (%q, %d)", s, resp)
	}
}

// TestQueueAgainstModel drives the queue spec with random operations and
// compares it against a plain slice model.
func TestQueueAgainstModel(t *testing.T) {
	const T, C = 3, 4
	q := spec.NewQueue(T, C)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		state := q.Init()
		var model []int
		for i := 0; i < int(n%64); i++ {
			ops := q.Ops(state)
			op := ops[rng.Intn(len(ops))]
			var want int
			switch op.Name {
			case spec.OpEnq:
				if len(model) < C {
					model = append(model, op.Arg)
				}
			case spec.OpDeq:
				if len(model) > 0 {
					want = model[0]
					model = model[1:]
				}
			case spec.OpPeek:
				if len(model) > 0 {
					want = model[0]
				}
			}
			var resp int
			state, resp = q.Apply(state, op)
			if resp != want {
				t.Logf("op %v: resp %d, want %d", op, resp, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStackAgainstModel drives the stack spec against a slice model.
func TestStackAgainstModel(t *testing.T) {
	const T, C = 3, 4
	s := spec.NewStack(T, C)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		state := s.Init()
		var model []int
		for i := 0; i < int(n%64); i++ {
			ops := s.Ops(state)
			op := ops[rng.Intn(len(ops))]
			var want int
			switch op.Name {
			case spec.OpPush:
				if len(model) < C {
					model = append(model, op.Arg)
				}
			case spec.OpPop:
				if len(model) > 0 {
					want = model[len(model)-1]
					model = model[:len(model)-1]
				}
			case spec.OpTop:
				if len(model) > 0 {
					want = model[len(model)-1]
				}
			}
			var resp int
			state, resp = s.Apply(state, op)
			if resp != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSetAgainstModel drives the set spec against a map model.
func TestSetAgainstModel(t *testing.T) {
	const T = 5
	s := spec.NewSet(T)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		state := s.Init()
		model := map[int]bool{}
		for i := 0; i < int(n%64); i++ {
			v := rng.Intn(T) + 1
			var op core.Op
			switch rng.Intn(3) {
			case 0:
				op = core.Op{Name: spec.OpInsert, Arg: v}
				model[v] = true
			case 1:
				op = core.Op{Name: spec.OpRemove, Arg: v}
				delete(model, v)
			case 2:
				op = core.Op{Name: spec.OpLookup, Arg: v}
			}
			var resp int
			state, resp = s.Apply(state, op)
			if op.Name == spec.OpLookup {
				want := 0
				if model[v] {
					want = 1
				}
				if resp != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism checks that Apply is a pure function: applying the same op
// to the same state twice yields identical results.
func TestDeterminism(t *testing.T) {
	specs := []core.Spec{
		spec.NewRegister(4, 1),
		spec.NewMaxRegister(4, 2),
		spec.NewCounter(3, 1),
		spec.NewQueue(2, 3),
		spec.NewStack(2, 3),
		spec.NewSet(3),
	}
	for _, s := range specs {
		states, err := core.Reachable(s, 10000)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, q := range states {
			for _, op := range s.Ops(q) {
				n1, r1 := s.Apply(q, op)
				n2, r2 := s.Apply(q, op)
				if n1 != n2 || r1 != r2 {
					t.Errorf("%s: Apply(%q, %v) nondeterministic", s.Name(), q, op)
				}
			}
		}
	}
}
