// Package spec provides deterministic sequential specifications (Section 2)
// for the abstract objects studied in the paper: multi-valued registers and
// max registers (Section 4, Section 5.1), sets (Section 5.1), queues with
// Peek (Section 5.4), and counters and stacks used to exercise the universal
// construction (Section 6).
//
// All states are encoded as strings so they are comparable and printable.
// Values and elements are drawn from 1..K (the paper's convention); response
// 0 plays the role of the default/empty response r0 = ∅.
package spec

import (
	"fmt"
	"strconv"

	"hiconc/internal/core"
)

// Common operation names used across specifications.
const (
	OpRead   = "read"
	OpWrite  = "write"
	OpInc    = "inc"
	OpDec    = "dec"
	OpEnq    = "enq"
	OpDeq    = "deq"
	OpPeek   = "peek"
	OpInsert = "insert"
	OpRemove = "remove"
	OpLookup = "lookup"
	OpGrow   = "grow"
	OpPush   = "push"
	OpPop    = "pop"
	OpTop    = "top"
)

// Register is a K-valued read/write register with values 1..K. It is the
// canonical example of an object in the class C_t with t = K (Section 5.1):
// read distinguishes all K states and write moves between any two states.
type Register struct {
	// K is the number of values; states are "1".."K".
	K int
	// V0 is the initial value (1 <= V0 <= K).
	V0 int
}

var _ core.Spec = Register{}

// NewRegister returns a K-valued register specification with initial value v0.
func NewRegister(k, v0 int) Register {
	if k < 2 || v0 < 1 || v0 > k {
		panic(fmt.Sprintf("spec: invalid register parameters K=%d v0=%d", k, v0))
	}
	return Register{K: k, V0: v0}
}

// Name implements core.Spec.
func (r Register) Name() string { return fmt.Sprintf("register[K=%d]", r.K) }

// Init implements core.Spec.
func (r Register) Init() string { return strconv.Itoa(r.V0) }

// Apply implements core.Spec.
func (r Register) Apply(state string, op core.Op) (string, int) {
	switch op.Name {
	case OpRead:
		return state, mustAtoi(state)
	case OpWrite:
		if op.Arg < 1 || op.Arg > r.K {
			panic(fmt.Sprintf("spec: write(%d) out of range 1..%d", op.Arg, r.K))
		}
		return strconv.Itoa(op.Arg), 0
	default:
		panic("spec: register: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (r Register) ReadOnly(op core.Op) bool { return op.Name == OpRead }

// Ops implements core.Spec.
func (r Register) Ops(string) []core.Op {
	ops := make([]core.Op, 0, r.K+1)
	ops = append(ops, core.Op{Name: OpRead})
	for v := 1; v <= r.K; v++ {
		ops = append(ops, core.Op{Name: OpWrite, Arg: v})
	}
	return ops
}

// MaxRegister is a K-valued max register (Aspnes, Attiya, Censor [6]): read
// returns the maximum value ever written. Its state space is not
// well-connected (once at m it can never return below m), so it is *not* in
// the class C_t and escapes the Theorem 17 impossibility; Section 5.1
// sketches a wait-free state-quiescent HI implementation from binary
// registers, which internal/registers provides.
type MaxRegister struct {
	// K is the largest value; states are "1".."K".
	K int
	// V0 is the initial value.
	V0 int
}

var _ core.Spec = MaxRegister{}

// NewMaxRegister returns a K-valued max-register specification.
func NewMaxRegister(k, v0 int) MaxRegister {
	if k < 2 || v0 < 1 || v0 > k {
		panic(fmt.Sprintf("spec: invalid max register parameters K=%d v0=%d", k, v0))
	}
	return MaxRegister{K: k, V0: v0}
}

// Name implements core.Spec.
func (r MaxRegister) Name() string { return fmt.Sprintf("maxreg[K=%d]", r.K) }

// Init implements core.Spec.
func (r MaxRegister) Init() string { return strconv.Itoa(r.V0) }

// Apply implements core.Spec.
func (r MaxRegister) Apply(state string, op core.Op) (string, int) {
	cur := mustAtoi(state)
	switch op.Name {
	case OpRead:
		return state, cur
	case OpWrite:
		if op.Arg < 1 || op.Arg > r.K {
			panic(fmt.Sprintf("spec: write(%d) out of range 1..%d", op.Arg, r.K))
		}
		if op.Arg > cur {
			return strconv.Itoa(op.Arg), 0
		}
		return state, 0
	default:
		panic("spec: maxreg: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec. Per Section 3 an operation is read-only iff
// it changes the state from *no* state: for a max register initialized to V0
// every reachable state is at least V0, so write(v) with v <= V0 can never
// change the state and is read-only.
func (r MaxRegister) ReadOnly(op core.Op) bool {
	return op.Name == OpRead || (op.Name == OpWrite && op.Arg <= r.V0)
}

// Ops implements core.Spec.
func (r MaxRegister) Ops(string) []core.Op {
	ops := make([]core.Op, 0, r.K+1)
	ops = append(ops, core.Op{Name: OpRead})
	for v := 1; v <= r.K; v++ {
		ops = append(ops, core.Op{Name: OpWrite, Arg: v})
	}
	return ops
}

func mustAtoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic("spec: bad state encoding " + strconv.Quote(s))
	}
	return v
}
