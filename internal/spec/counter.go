package spec

import (
	"fmt"
	"strconv"

	"hiconc/internal/core"
)

// Counter is a bounded counter supporting fetch-and-increment,
// fetch-and-decrement and read. Increments saturate at Max and decrements at
// 0, which keeps the state space finite for model checking. The fetch
// operations return the *previous* value, as in the fetch-and-increment /
// fetch-and-decrement counter discussed in Section 6.1 of the paper.
type Counter struct {
	// Max is the largest attainable value; states are "0".."Max".
	Max int
	// V0 is the initial value.
	V0 int
}

var _ core.Spec = Counter{}

// NewCounter returns a bounded counter specification.
func NewCounter(max, v0 int) Counter {
	if max < 1 || v0 < 0 || v0 > max {
		panic(fmt.Sprintf("spec: invalid counter parameters max=%d v0=%d", max, v0))
	}
	return Counter{Max: max, V0: v0}
}

// Name implements core.Spec.
func (c Counter) Name() string { return fmt.Sprintf("counter[max=%d]", c.Max) }

// Init implements core.Spec.
func (c Counter) Init() string { return strconv.Itoa(c.V0) }

// Apply implements core.Spec.
func (c Counter) Apply(state string, op core.Op) (string, int) {
	cur := mustAtoi(state)
	switch op.Name {
	case OpRead:
		return state, cur
	case OpInc:
		if cur < c.Max {
			return strconv.Itoa(cur + 1), cur
		}
		return state, cur
	case OpDec:
		if cur > 0 {
			return strconv.Itoa(cur - 1), cur
		}
		return state, cur
	default:
		panic("spec: counter: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (c Counter) ReadOnly(op core.Op) bool { return op.Name == OpRead }

// Ops implements core.Spec.
func (c Counter) Ops(string) []core.Op {
	return []core.Op{{Name: OpRead}, {Name: OpInc}, {Name: OpDec}}
}
