package spec

import (
	"fmt"
	"strconv"
	"strings"

	"hiconc/internal/core"
)

// Queue is a bounded FIFO queue with a Peek operation, over the element
// domain {1..T}, exactly as in Section 5.4: Enqueue(v) appends v (a no-op
// when the queue is full, to keep the state space bounded), Dequeue removes
// and returns the first element (response r0 = 0 when empty), and Peek
// returns the first element without removing it (response 0 when empty).
// Enqueue returns the default response r0 = 0.
type Queue struct {
	// T is the element domain size; elements are 1..T.
	T int
	// Cap bounds the queue length.
	Cap int
}

var _ core.Spec = Queue{}

// NewQueue returns a bounded queue-with-Peek specification.
func NewQueue(t, capacity int) Queue {
	if t < 1 || capacity < 1 {
		panic(fmt.Sprintf("spec: invalid queue parameters t=%d cap=%d", t, capacity))
	}
	return Queue{T: t, Cap: capacity}
}

// Name implements core.Spec.
func (q Queue) Name() string { return fmt.Sprintf("queue[t=%d,cap=%d]", q.T, q.Cap) }

// Init implements core.Spec. The initial state is the empty queue.
func (q Queue) Init() string { return "" }

// Apply implements core.Spec.
func (q Queue) Apply(state string, op core.Op) (string, int) {
	elems := decodeSeq(state)
	switch op.Name {
	case OpEnq:
		if op.Arg < 1 || op.Arg > q.T {
			panic(fmt.Sprintf("spec: enq(%d) out of range 1..%d", op.Arg, q.T))
		}
		if len(elems) >= q.Cap {
			return state, 0
		}
		return encodeSeq(append(elems, op.Arg)), 0
	case OpDeq:
		if len(elems) == 0 {
			return state, 0
		}
		return encodeSeq(elems[1:]), elems[0]
	case OpPeek:
		if len(elems) == 0 {
			return state, 0
		}
		return state, elems[0]
	default:
		panic("spec: queue: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (q Queue) ReadOnly(op core.Op) bool { return op.Name == OpPeek }

// Ops implements core.Spec.
func (q Queue) Ops(string) []core.Op {
	ops := make([]core.Op, 0, q.T+2)
	ops = append(ops, core.Op{Name: OpPeek}, core.Op{Name: OpDeq})
	for v := 1; v <= q.T; v++ {
		ops = append(ops, core.Op{Name: OpEnq, Arg: v})
	}
	return ops
}

// Stack is a bounded LIFO stack over the element domain {1..T}, used as an
// additional client of the universal construction. Push on a full stack is a
// no-op; Pop and Top return 0 on an empty stack.
type Stack struct {
	// T is the element domain size; elements are 1..T.
	T int
	// Cap bounds the stack depth.
	Cap int
}

var _ core.Spec = Stack{}

// NewStack returns a bounded stack specification.
func NewStack(t, capacity int) Stack {
	if t < 1 || capacity < 1 {
		panic(fmt.Sprintf("spec: invalid stack parameters t=%d cap=%d", t, capacity))
	}
	return Stack{T: t, Cap: capacity}
}

// Name implements core.Spec.
func (s Stack) Name() string { return fmt.Sprintf("stack[t=%d,cap=%d]", s.T, s.Cap) }

// Init implements core.Spec.
func (s Stack) Init() string { return "" }

// Apply implements core.Spec.
func (s Stack) Apply(state string, op core.Op) (string, int) {
	elems := decodeSeq(state)
	switch op.Name {
	case OpPush:
		if op.Arg < 1 || op.Arg > s.T {
			panic(fmt.Sprintf("spec: push(%d) out of range 1..%d", op.Arg, s.T))
		}
		if len(elems) >= s.Cap {
			return state, 0
		}
		return encodeSeq(append(elems, op.Arg)), 0
	case OpPop:
		if len(elems) == 0 {
			return state, 0
		}
		return encodeSeq(elems[:len(elems)-1]), elems[len(elems)-1]
	case OpTop:
		if len(elems) == 0 {
			return state, 0
		}
		return state, elems[len(elems)-1]
	default:
		panic("spec: stack: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (s Stack) ReadOnly(op core.Op) bool { return op.Name == OpTop }

// Ops implements core.Spec.
func (s Stack) Ops(string) []core.Op {
	ops := make([]core.Op, 0, s.T+2)
	ops = append(ops, core.Op{Name: OpTop}, core.Op{Name: OpPop})
	for v := 1; v <= s.T; v++ {
		ops = append(ops, core.Op{Name: OpPush, Arg: v})
	}
	return ops
}

// decodeSeq parses a comma-separated element sequence ("" = empty).
func decodeSeq(state string) []int {
	if state == "" {
		return nil
	}
	parts := strings.Split(state, ",")
	elems := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			panic("spec: bad sequence state " + strconv.Quote(state))
		}
		elems[i] = v
	}
	return elems
}

// encodeSeq renders an element sequence as a comma-separated string.
func encodeSeq(elems []int) string {
	if len(elems) == 0 {
		return ""
	}
	var b strings.Builder
	for i, v := range elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}
