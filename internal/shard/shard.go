// Package shard composes independent instances of the history-independent
// universal construction into hash-partitioned, scale-out objects.
//
// Algorithm 5 serializes every update through a single R-LLSC head, so one
// instance is a sequential bottleneck no matter how many processes call it.
// A sharded object splits the key space over S independent instances:
// operation on key k routes to shard ShardOf(k, S), so updates on keys of
// different shards proceed in parallel and throughput scales with S until
// the workload's key skew concentrates on one shard.
//
// Sharding preserves history independence. The composite memory
// representation is the tuple of shard representations; each shard is
// state-quiescent HI (Theorem 32), so at any point with no pending
// state-changing operation each shard's memory is the canonical function of
// its sub-state — and the sub-states are themselves a function of the
// composite abstract state (the partition is fixed at construction). The
// composite representation is therefore canonical in the abstract state,
// which is exactly state-quiescent HI for the composite object. The same
// argument is machine-checked through internal/hicheck by the lock-step
// simulator harness in this package (NewSimSetHarness).
//
// Each shard may independently enable operation combining
// (conc.NewCombiningUniversal), stacking the two scale mechanisms: sharding
// removes cross-key serialization, combining collapses same-shard
// contention into batched SCs.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
)

// ShardOf returns the shard (0..nShards-1) responsible for key. It is
// the same splitmix64-style mixer as hihash.GroupOf (delegated, so the
// two can never drift apart), spreading contiguous key ranges evenly.
func ShardOf(key, nShards int) int {
	return hihash.GroupOf(key, nShards)
}

// slot locates one key: its shard and its element index inside the shard's
// 64-element set object.
type slot struct {
	shard int
	local int
}

// Set is a hash-partitioned, wait-free, state-quiescent history-independent
// set over {1..Domain}: S independent universal-construction big sets, each
// holding the keys that hash to it. Sharding scales the set twice over: it
// removes cross-shard serialization, and it divides the per-update state
// copy (an immutable multi-word bitmask) by the shard count.
type Set struct {
	n       int
	domain  int
	shards  []*conc.Universal
	route   []slot  // route[key-1] locates key
	keysOf  [][]int // keysOf[shard][local-1] is the global key
	combine bool
}

// routing assigns every key of {1..domain} a shard and a shard-local
// element index (in increasing key order), as a pure function of
// (domain, nShards).
func routing(domain, nShards int) (route []slot, keysOf [][]int) {
	route = make([]slot, domain)
	keysOf = make([][]int, nShards)
	for key := 1; key <= domain; key++ {
		sh := ShardOf(key, nShards)
		keysOf[sh] = append(keysOf[sh], key)
		route[key-1] = slot{shard: sh, local: len(keysOf[sh])}
	}
	return route, keysOf
}

// shardWords returns the bitmask length of a shard holding nKeys keys.
func shardWords(nKeys int) int {
	if nKeys == 0 {
		return 1
	}
	return (nKeys + 63) / 64
}

var _ conc.Applier = (*Set)(nil)

// NewSet creates a sharded set for n processes over keys {1..domain} split
// across nShards shards.
func NewSet(n, domain, nShards int) *Set {
	return newSet(n, domain, nShards, false)
}

// NewCombiningSet creates a sharded set whose shards additionally combine
// commuting announced operations under contention.
func NewCombiningSet(n, domain, nShards int) *Set {
	return newSet(n, domain, nShards, true)
}

func newSet(n, domain, nShards int, combine bool) *Set {
	if domain < 1 {
		panic(fmt.Sprintf("shard: invalid set domain %d", domain))
	}
	if nShards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", nShards))
	}
	s := &Set{
		n:       n,
		domain:  domain,
		shards:  make([]*conc.Universal, nShards),
		combine: combine,
	}
	s.route, s.keysOf = routing(domain, nShards)
	for sh := range s.shards {
		o := conc.BigSetObj{Words: shardWords(len(s.keysOf[sh]))}
		if combine {
			s.shards[sh] = conc.NewCombiningUniversal(o, n)
		} else {
			s.shards[sh] = conc.NewUniversal(o, n)
		}
	}
	return s
}

// Name implements conc.Applier.
func (s *Set) Name() string {
	if s.combine {
		return fmt.Sprintf("sharded-set-combining[S=%d]", len(s.shards))
	}
	return fmt.Sprintf("sharded-set[S=%d]", len(s.shards))
}

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.shards) }

// Apply implements conc.Applier: op.Arg is the global key; the operation is
// routed to its shard with the shard-local element index.
func (s *Set) Apply(pid int, op core.Op) int {
	if op.Arg < 1 || op.Arg > s.domain {
		panic(fmt.Sprintf("shard: set key %d out of range 1..%d", op.Arg, s.domain))
	}
	sl := s.route[op.Arg-1]
	histats.Inc(histats.CtrShardOp)
	histats.Observe(histats.HistShardIndex, uint64(sl.shard))
	// The flight recorder sees the caller's view of the operation (the
	// global key), not the shard-local remapping.
	t := hirec.OpStart(op.Name, op.Arg)
	rsp := s.shards[sl.shard].Apply(pid, core.Op{Name: op.Name, Arg: sl.local})
	hirec.OpEnd(t, rsp)
	return rsp
}

// Insert adds key on behalf of process pid.
func (s *Set) Insert(pid, key int) { s.Apply(pid, core.Op{Name: spec.OpInsert, Arg: key}) }

// Remove deletes key on behalf of process pid.
func (s *Set) Remove(pid, key int) { s.Apply(pid, core.Op{Name: spec.OpRemove, Arg: key}) }

// Contains reports membership of key on behalf of process pid.
func (s *Set) Contains(pid, key int) bool {
	return s.Apply(pid, core.Op{Name: spec.OpLookup, Arg: key}) == 1
}

// Elements returns the sorted members. The per-shard reads are atomic but
// the composite read is not; call it only at quiescence (as in tests and
// HI checks).
func (s *Set) Elements() []int {
	var out []int
	for sh, u := range s.shards {
		mask := u.State().([]uint64)
		for local, key := range s.keysOf[sh] {
			if mask[local/64]&(1<<uint(local%64)) != 0 {
				out = append(out, key)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Snapshot renders the composite memory representation: every shard's
// representation in shard order.
func (s *Set) Snapshot() string {
	return joinShardSnapshots(s.shards)
}

// CanonicalSetSnapshot returns the canonical composite representation of
// the abstract state elems for an (n, domain, nShards) sharded set: each
// shard canonically represents its own sub-state.
func CanonicalSetSnapshot(n, domain, nShards int, elems []int) string {
	route, keysOf := routing(domain, nShards)
	masks := make([][]uint64, nShards)
	for sh := range masks {
		masks[sh] = make([]uint64, shardWords(len(keysOf[sh])))
	}
	for _, key := range elems {
		if key < 1 || key > domain {
			panic(fmt.Sprintf("shard: canonical element %d out of range 1..%d", key, domain))
		}
		sl := route[key-1]
		masks[sl.shard][(sl.local-1)/64] |= 1 << uint((sl.local-1)%64)
	}
	parts := make([]string, nShards)
	for sh := range parts {
		o := conc.BigSetObj{Words: len(masks[sh])}
		parts[sh] = fmt.Sprintf("s%d{%s}", sh, conc.CanonicalSnapshot(o, n, masks[sh]))
	}
	return strings.Join(parts, " || ")
}

// Map is a hash-partitioned, wait-free, state-quiescent history-independent
// multi-counter (a map from keys {1..Keys} to int counts): S independent
// universal-construction multi-counters, each holding the keys that hash to
// it.
type Map struct {
	n       int
	keys    int
	shards  []*conc.Universal
	combine bool
}

var _ conc.Applier = (*Map)(nil)

// NewMap creates a sharded multi-counter for n processes over keys
// {1..keys} split across nShards shards.
func NewMap(n, keys, nShards int) *Map {
	return newMap(n, keys, nShards, false)
}

// NewCombiningMap creates a sharded multi-counter whose shards additionally
// combine commuting announced operations under contention.
func NewCombiningMap(n, keys, nShards int) *Map {
	return newMap(n, keys, nShards, true)
}

func newMap(n, keys, nShards int, combine bool) *Map {
	if keys < 1 {
		panic(fmt.Sprintf("shard: invalid key count %d", keys))
	}
	if nShards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", nShards))
	}
	m := &Map{n: n, keys: keys, shards: make([]*conc.Universal, nShards), combine: combine}
	for sh := range m.shards {
		if combine {
			m.shards[sh] = conc.NewCombiningUniversal(conc.MultiCounterObj{}, n)
		} else {
			m.shards[sh] = conc.NewUniversal(conc.MultiCounterObj{}, n)
		}
	}
	return m
}

// Name implements conc.Applier.
func (m *Map) Name() string {
	if m.combine {
		return fmt.Sprintf("sharded-map-combining[S=%d]", len(m.shards))
	}
	return fmt.Sprintf("sharded-map[S=%d]", len(m.shards))
}

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.shards) }

// Apply implements conc.Applier: op.Arg is the key, kept global — each
// shard's multi-counter state is keyed by the original key.
func (m *Map) Apply(pid int, op core.Op) int {
	if op.Arg < 1 || op.Arg > m.keys {
		panic(fmt.Sprintf("shard: map key %d out of range 1..%d", op.Arg, m.keys))
	}
	sh := ShardOf(op.Arg, len(m.shards))
	histats.Inc(histats.CtrShardOp)
	histats.Observe(histats.HistShardIndex, uint64(sh))
	t := hirec.OpStart(op.Name, op.Arg)
	rsp := m.shards[sh].Apply(pid, op)
	hirec.OpEnd(t, rsp)
	return rsp
}

// Inc increments key's count on behalf of pid, returning the previous count.
func (m *Map) Inc(pid, key int) int { return m.Apply(pid, core.Op{Name: spec.OpInc, Arg: key}) }

// Dec decrements key's count on behalf of pid, returning the previous count.
func (m *Map) Dec(pid, key int) int { return m.Apply(pid, core.Op{Name: spec.OpDec, Arg: key}) }

// Get returns key's current count on behalf of pid.
func (m *Map) Get(pid, key int) int { return m.Apply(pid, core.Op{Name: spec.OpRead, Arg: key}) }

// Counts returns the nonzero counts keyed by key. The per-shard reads are
// atomic but the composite read is not; call it only at quiescence.
func (m *Map) Counts() map[int]int {
	out := map[int]int{}
	for _, u := range m.shards {
		for _, kv := range u.State().([]conc.KV) {
			out[kv.K] = kv.V
		}
	}
	return out
}

// Snapshot renders the composite memory representation.
func (m *Map) Snapshot() string {
	return joinShardSnapshots(m.shards)
}

// CanonicalMapSnapshot returns the canonical composite representation of
// the abstract state counts for an (n, keys, nShards) sharded multi-counter.
func CanonicalMapSnapshot(n, keys, nShards int, counts map[int]int) string {
	perShard := make([][]conc.KV, nShards)
	sorted := make([]int, 0, len(counts))
	for k := range counts {
		if k < 1 || k > keys {
			panic(fmt.Sprintf("shard: canonical key %d out of range 1..%d", k, keys))
		}
		if counts[k] != 0 {
			sorted = append(sorted, k)
		}
	}
	sort.Ints(sorted)
	for _, k := range sorted {
		sh := ShardOf(k, nShards)
		perShard[sh] = append(perShard[sh], conc.KV{K: k, V: counts[k]})
	}
	parts := make([]string, nShards)
	for sh := range parts {
		var st any = []conc.KV(nil)
		if len(perShard[sh]) > 0 {
			st = perShard[sh]
		}
		parts[sh] = fmt.Sprintf("s%d{%s}", sh, conc.CanonicalSnapshot(conc.MultiCounterObj{}, n, st))
	}
	return strings.Join(parts, " || ")
}

// joinShardSnapshots renders per-shard representations in shard order.
func joinShardSnapshots(shards []*conc.Universal) string {
	parts := make([]string, len(shards))
	for sh, u := range shards {
		parts[sh] = fmt.Sprintf("s%d{%s}", sh, u.Snapshot())
	}
	return strings.Join(parts, " || ")
}
