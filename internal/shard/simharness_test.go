package shard_test

import (
	"errors"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/llsc"
	"hiconc/internal/shard"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

func insOp(v int) core.Op  { return core.Op{Name: spec.OpInsert, Arg: v} }
func remOp(v int) core.Op  { return core.Op{Name: spec.OpRemove, Arg: v} }
func lookOp(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }

// TestSimShardedSetSequentialCanon builds the canonical map of the sharded
// set under the lock-step simulator: every sequential execution reaching
// the same abstract set must leave the same composite memory. This is the
// sequential half of the SQHI regression for shard.Set.
func TestSimShardedSetSequentialCanon(t *testing.T) {
	h := shard.NewSimSetHarness(2, 2, 2, llsc.CASFactory{}, universal.Full)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	if len(c.ByState) != 4 {
		t.Errorf("canonical map covers %d states, want 4 (subsets of {1,2})", len(c.ByState))
	}
}

// TestSimShardedSetStateQuiescentHI is the concurrent SQHI regression: at
// every state-quiescent configuration of every explored interleaving, the
// composite memory of the sharded set must be the canonical representation
// of a linearization-consistent abstract state.
func TestSimShardedSetStateQuiescentHI(t *testing.T) {
	h := shard.NewSimSetHarness(2, 2, 2, llsc.CASFactory{}, universal.Full)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	scripts := [][][]core.Op{
		{{insOp(1)}, {insOp(2)}}, // distinct shards in parallel
		{{insOp(1)}, {insOp(1)}}, // same shard, same key
		{{insOp(1)}, {remOp(1)}}, // same shard, conflicting
		{{insOp(2), remOp(2)}, {insOp(1)}},
		{{insOp(1), lookOp(2)}, {insOp(2)}},
	}
	// Bounded-depth exhaustive pass over every interleaving prefix.
	maxSteps := 12
	if !testing.Short() {
		maxSteps = 14
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, maxSteps, 400000, true); err != nil && !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("%s: %v", h.Name, err)
	}
	// Deep randomized pass over full executions.
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 200, 41, 3000, true); err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
}

// TestSimShardedSetAblationFails: the sharded composition of the
// no-announce-clear mutant must fail sequential HI exactly as the single
// instance does — sharding cannot mask a leaky shard.
func TestSimShardedSetAblationFails(t *testing.T) {
	h := shard.NewSimSetHarness(2, 2, 2, llsc.CASFactory{}, universal.NoAnnounceClear)
	_, err := hicheck.BuildCanon(h, 2, 4000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("BuildCanon err = %v, want a sequential HI violation", err)
	}
}
