package shard

import (
	"fmt"
	"sort"
	"strings"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/spec"
)

// HashSet is the direct-table backend for the sharded set: the same
// ShardOf routing and shard-local key remapping as Set, but each shard is
// an internal/hihash displacing table instead of a universal-construction
// instance. This removes the per-shard serialization point entirely —
// within a shard, operations on keys of different bucket groups also
// proceed in parallel — while the composite memory stays a pure function
// of the abstract key set (each shard is history independent, and the
// partition is fixed at construction, the same composition argument as
// for Set).
//
// Since PR 4 the shards are unbounded: a key that overflows its bucket
// group displaces into neighbouring groups, and a shard whose probe runs
// lengthen grows its group array online, so Insert always succeeds —
// the RspFull plumbing of the bounded table is gone.
type HashSet struct {
	n      int
	domain int
	shards []*hihash.Set
	route  []slot
	keysOf [][]int
}

var _ conc.Applier = (*HashSet)(nil)

// NewHashSet creates a hash-table-backed sharded set for n processes over
// keys {1..domain} split across nShards shards.
func NewHashSet(n, domain, nShards int) *HashSet {
	if domain < 1 {
		panic(fmt.Sprintf("shard: invalid set domain %d", domain))
	}
	if nShards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", nShards))
	}
	s := &HashSet{n: n, domain: domain, shards: make([]*hihash.Set, nShards)}
	s.route, s.keysOf = routing(domain, nShards)
	for sh := range s.shards {
		local := len(s.keysOf[sh])
		if local == 0 {
			local = 1
		}
		s.shards[sh] = hihash.NewDisplaceSet(local, hihash.DefaultGroups(local))
	}
	return s
}

// Name implements conc.Applier.
func (s *HashSet) Name() string { return fmt.Sprintf("sharded-hihash[S=%d]", len(s.shards)) }

// NumShards returns the shard count.
func (s *HashSet) NumShards() int { return len(s.shards) }

// Apply implements conc.Applier: op.Arg is the global key, routed to its
// shard with the shard-local element index.
func (s *HashSet) Apply(pid int, op core.Op) int {
	if op.Arg < 1 || op.Arg > s.domain {
		panic(fmt.Sprintf("shard: set key %d out of range 1..%d", op.Arg, s.domain))
	}
	sl := s.route[op.Arg-1]
	t := hirec.OpStart(op.Name, op.Arg)
	rsp := s.shards[sl.shard].Apply(pid, core.Op{Name: op.Name, Arg: sl.local})
	hirec.OpEnd(t, rsp)
	return rsp
}

// Insert adds key. It cannot fail: a full bucket group displaces, a full
// shard grows.
func (s *HashSet) Insert(pid, key int) int {
	return s.Apply(pid, core.Op{Name: spec.OpInsert, Arg: key})
}

// Remove deletes key.
func (s *HashSet) Remove(pid, key int) { s.Apply(pid, core.Op{Name: spec.OpRemove, Arg: key}) }

// Contains reports membership of key.
func (s *HashSet) Contains(pid, key int) bool {
	return s.Apply(pid, core.Op{Name: spec.OpLookup, Arg: key}) == 1
}

// Elements returns the sorted members. Per-shard reads are atomic but the
// composite read is not; call it only at quiescence.
func (s *HashSet) Elements() []int {
	var out []int
	for sh, t := range s.shards {
		for _, local := range t.Elements() {
			out = append(out, s.keysOf[sh][local-1])
		}
	}
	sort.Ints(out)
	return out
}

// Snapshot renders the composite memory representation in shard order.
func (s *HashSet) Snapshot() string {
	parts := make([]string, len(s.shards))
	for sh, t := range s.shards {
		parts[sh] = fmt.Sprintf("s%d{%s}", sh, t.Snapshot())
	}
	return strings.Join(parts, " || ")
}

// CanonicalHashSetSnapshot returns the canonical composite representation
// of the abstract state elems for a (domain, nShards) hash-backed sharded
// set whose shards still hold their initial geometry (balanced key sets
// never trigger a grow at the default 2x sizing).
func CanonicalHashSetSnapshot(domain, nShards int, elems []int) string {
	route, keysOf := routing(domain, nShards)
	perShard := make([][]int, nShards)
	for _, key := range elems {
		if key < 1 || key > domain {
			panic(fmt.Sprintf("shard: canonical element %d out of range 1..%d", key, domain))
		}
		sl := route[key-1]
		perShard[sl.shard] = append(perShard[sl.shard], sl.local)
	}
	parts := make([]string, nShards)
	for sh := range parts {
		local := len(keysOf[sh])
		if local == 0 {
			local = 1
		}
		parts[sh] = fmt.Sprintf("s%d{%s}", sh,
			hihash.CanonicalSetSnapshot(local, hihash.DefaultGroups(local), perShard[sh]))
	}
	return strings.Join(parts, " || ")
}
