package shard_test

import (
	"sync"
	"testing"

	"hiconc/internal/shard"
)

func TestHashSetSequentialSemantics(t *testing.T) {
	s := shard.NewHashSet(1, 100, 4)
	for _, k := range []int{1, 7, 42, 99, 100} {
		if s.Contains(0, k) {
			t.Errorf("fresh set contains %d", k)
		}
		if rsp := s.Insert(0, k); rsp != 0 {
			t.Errorf("Insert(%d) = %d", k, rsp)
		}
		if !s.Contains(0, k) {
			t.Errorf("set missing %d after insert", k)
		}
	}
	s.Remove(0, 42)
	if s.Contains(0, 42) {
		t.Error("set contains 42 after remove")
	}
	want := []int{1, 7, 99, 100}
	if got := s.Elements(); !equalInts(got, want) {
		t.Errorf("Elements() = %v, want %v", got, want)
	}
}

// TestHashSetConcurrentCanonical: concurrent churn must leave the
// composite memory canonical at quiescence (the displacing shards accept
// every insert, so the final key set is exactly the even-index keys).
func TestHashSetConcurrentCanonical(t *testing.T) {
	const n, domain, perProc = 8, 200, 20
	s := shard.NewHashSet(n, domain, 4)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				key := pid*perProc + i + 1
				if rsp := s.Insert(pid, key); rsp != 0 {
					t.Errorf("Insert(%d) = %d, want 0", key, rsp)
					continue
				}
				if i%2 == 1 {
					s.Remove(pid, key)
				}
			}
		}(pid)
	}
	wg.Wait()
	got := s.Elements()
	canon := shard.CanonicalHashSetSnapshot(domain, s.NumShards(), got)
	if snap := s.Snapshot(); snap != canon {
		t.Fatalf("composite memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
	}
}

// TestHashSetMatchesUniversalBackend: the two backends implement the same
// abstract set — identical operation sequences must yield identical
// element sets.
func TestHashSetMatchesUniversalBackend(t *testing.T) {
	const domain, nShards = 64, 4
	uni := shard.NewSet(1, domain, nShards)
	hash := shard.NewHashSet(1, domain, nShards)
	script := []struct {
		insert bool
		key    int
	}{
		{true, 5}, {true, 17}, {true, 5}, {false, 17}, {true, 60},
		{true, 31}, {false, 5}, {true, 2}, {true, 17},
	}
	for _, st := range script {
		if st.insert {
			uni.Insert(0, st.key)
			if rsp := hash.Insert(0, st.key); rsp != 0 {
				t.Fatalf("hash backend rejected Insert(%d): %d", st.key, rsp)
			}
		} else {
			uni.Remove(0, st.key)
			hash.Remove(0, st.key)
		}
	}
	if a, b := uni.Elements(), hash.Elements(); !equalInts(a, b) {
		t.Fatalf("backends diverge: universal %v, hihash %v", a, b)
	}
}
