package shard_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"hiconc/internal/shard"
	"hiconc/internal/workload"
)

// TestShardOfRangeAndDeterminism: the router must be a pure function into
// [0, S) covering every shard for a reasonable domain.
func TestShardOfRangeAndDeterminism(t *testing.T) {
	for _, nShards := range []int{1, 2, 4, 16} {
		hit := make([]int, nShards)
		for key := 1; key <= 1024; key++ {
			sh := shard.ShardOf(key, nShards)
			if sh < 0 || sh >= nShards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", key, nShards, sh)
			}
			if sh != shard.ShardOf(key, nShards) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", key, nShards)
			}
			hit[sh]++
		}
		for sh, c := range hit {
			if c == 0 {
				t.Errorf("S=%d: shard %d receives no keys out of 1024", nShards, sh)
			}
		}
	}
}

func TestSetSequentialSemantics(t *testing.T) {
	s := shard.NewSet(1, 100, 4)
	for _, k := range []int{1, 7, 42, 99, 100} {
		if s.Contains(0, k) {
			t.Errorf("fresh set contains %d", k)
		}
		s.Insert(0, k)
		if !s.Contains(0, k) {
			t.Errorf("set missing %d after insert", k)
		}
	}
	s.Remove(0, 42)
	if s.Contains(0, 42) {
		t.Error("set contains 42 after remove")
	}
	want := []int{1, 7, 99, 100}
	if got := s.Elements(); !equalInts(got, want) {
		t.Errorf("Elements() = %v, want %v", got, want)
	}
}

func TestMapSequentialSemantics(t *testing.T) {
	m := shard.NewMap(1, 50, 4)
	if rsp := m.Inc(0, 10); rsp != 0 {
		t.Errorf("first inc returned %d", rsp)
	}
	if rsp := m.Inc(0, 10); rsp != 1 {
		t.Errorf("second inc returned %d", rsp)
	}
	m.Inc(0, 33)
	m.Dec(0, 33)
	if got := m.Get(0, 10); got != 2 {
		t.Errorf("Get(10) = %d, want 2", got)
	}
	counts := m.Counts()
	if len(counts) != 1 || counts[10] != 2 {
		t.Errorf("Counts() = %v, want {10: 2} (zero counts elided)", counts)
	}
}

// TestSetConcurrentDisjointKeys: processes touching disjoint keys must all
// land, and the composite memory must be canonical at quiescence.
func TestSetConcurrentDisjointKeys(t *testing.T) {
	const n, domain, perProc = 8, 200, 20
	for _, mk := range []func() *shard.Set{
		func() *shard.Set { return shard.NewSet(n, domain, 4) },
		func() *shard.Set { return shard.NewCombiningSet(n, domain, 4) },
	} {
		s := mk()
		t.Run(s.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < perProc; i++ {
						key := pid*perProc + i + 1
						s.Insert(pid, key)
						if i%2 == 1 {
							s.Remove(pid, key)
						}
					}
				}(pid)
			}
			wg.Wait()
			var want []int
			for pid := 0; pid < n; pid++ {
				for i := 0; i < perProc; i += 2 {
					want = append(want, pid*perProc+i+1)
				}
			}
			sort.Ints(want)
			if got := s.Elements(); !equalInts(got, want) {
				t.Fatalf("Elements() = %v, want %v", got, want)
			}
			canon := shard.CanonicalSetSnapshot(n, domain, s.NumShards(), want)
			if snap := s.Snapshot(); snap != canon {
				t.Fatalf("composite memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
			}
		})
	}
}

// TestSetHistoryIndependenceAcrossHistories: two different operation
// histories reaching the same abstract set must leave byte-identical
// composite representations at quiescence.
func TestSetHistoryIndependenceAcrossHistories(t *testing.T) {
	const n, domain, nShards = 4, 64, 4
	run := func(ops func(s *shard.Set)) string {
		s := shard.NewSet(n, domain, nShards)
		ops(s)
		return s.Snapshot()
	}
	a := run(func(s *shard.Set) {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for k := pid + 1; k <= domain; k += n {
					s.Insert(pid, k)
				}
				for k := pid + 1; k <= domain; k += n {
					if k%2 == 0 {
						s.Remove(pid, k)
					}
				}
			}(pid)
		}
		wg.Wait()
	})
	b := run(func(s *shard.Set) {
		// Same final state {odd keys}, entirely different history: inserts
		// of odd keys only, single process, plus decoy lookups.
		for k := 1; k <= domain; k += 2 {
			s.Insert(0, k)
			s.Contains(1, k)
		}
	})
	if a != b {
		t.Fatalf("same abstract state, different composite memories:\n a: %s\n b: %s", a, b)
	}
}

// TestMapConcurrentSharedKeys: concurrent increments on shared keys sum
// correctly and the composite memory is canonical at quiescence, with and
// without combining.
func TestMapConcurrentSharedKeys(t *testing.T) {
	const n, keys, perProc = 8, 16, 500
	for _, mk := range []func() *shard.Map{
		func() *shard.Map { return shard.NewMap(n, keys, 4) },
		func() *shard.Map { return shard.NewCombiningMap(n, keys, 4) },
	} {
		m := mk()
		t.Run(m.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					g := workload.NewGen(int64(pid))
					for i := 0; i < perProc; i++ {
						key := g.ZipfKey(keys, 1.2)
						m.Inc(pid, key)
					}
				}(pid)
			}
			wg.Wait()
			counts := m.Counts()
			total := 0
			for _, v := range counts {
				total += v
			}
			if total != n*perProc {
				t.Fatalf("total count = %d, want %d", total, n*perProc)
			}
			canon := shard.CanonicalMapSnapshot(n, keys, m.NumShards(), counts)
			if snap := m.Snapshot(); snap != canon {
				t.Fatalf("composite memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
			}
		})
	}
}

// TestSetThroughputScalesAcrossShards is a smoke check (not a benchmark)
// that S>1 actually distributes keys: with 16 shards and 64 keys, no shard
// may hold more than half the keys.
func TestSetRoutingBalance(t *testing.T) {
	const domain, nShards = 64, 16
	perShard := make([]int, nShards)
	for k := 1; k <= domain; k++ {
		perShard[shard.ShardOf(k, nShards)]++
	}
	for sh, c := range perShard {
		if c > domain/2 {
			t.Errorf("shard %d holds %d of %d keys — router is degenerate", sh, c, domain)
		}
	}
}

// TestSetLargeDomain: the sharded set must support domains far beyond one
// 64-bit word, including the degenerate single-shard configuration, and
// stay canonical at quiescence.
func TestSetLargeDomain(t *testing.T) {
	const domain = 1000
	for _, nShards := range []int{1, 16} {
		s := shard.NewSet(2, domain, nShards)
		var want []int
		for k := 3; k <= domain; k += 97 {
			s.Insert(0, k)
			want = append(want, k)
		}
		if got := s.Elements(); !equalInts(got, want) {
			t.Fatalf("S=%d: Elements() = %v, want %v", nShards, got, want)
		}
		if !s.Contains(1, 3) || s.Contains(1, 4) {
			t.Fatalf("S=%d: membership wrong", nShards)
		}
		canon := shard.CanonicalSetSnapshot(2, domain, nShards, want)
		if snap := s.Snapshot(); snap != canon {
			t.Fatalf("S=%d: large-domain memory not canonical:\n got:  %s\n want: %s", nShards, snap, canon)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ExampleSet() {
	s := shard.NewSet(2, 100, 4)
	s.Insert(0, 42)
	s.Insert(1, 7)
	s.Remove(0, 7)
	fmt.Println(s.Elements())
	// Output: [42]
}
