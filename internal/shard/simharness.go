package shard

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

// NewSimSetHarness builds a lock-step-simulator harness for a sharded set
// over {1..domain}: nShards independent Algorithm 5 instances (each over
// the full-domain set specification, holding only the keys that hash to it)
// in one shared memory, with every operation routed by ShardOf. The harness
// plugs into internal/hicheck, which verifies that the composite memory
// representation is canonical at every admitted configuration — the
// machine-checked form of the argument that sharding preserves
// state-quiescent history independence.
func NewSimSetHarness(domain, nShards, n int, f llsc.Factory, variant universal.Variant) *harness.Harness {
	sp := spec.NewSet(domain)
	allOps := sp.Ops(sp.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("sharded-%v[%s,%s,S=%d,n=%d]", variant, sp.Name(), f.Name(), nShards, n),
		Spec:    sp,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			shards := make([]*universal.Universal, nShards)
			for sh := range shards {
				shards[sh] = universal.NewNamed(sp, n, f, variant, mem, fmt.Sprintf("s%d.", sh))
			}
			progs := make([]sim.Program, n)
			for pid := 0; pid < n; pid++ {
				pid, src := pid, srcs[pid]
				progs[pid] = func(p *sim.Proc) {
					// One helping-priority counter per shard, as each shard
					// is an independent instance of the construction.
					prios := make([]int, nShards)
					for i := range prios {
						prios[i] = pid
					}
					for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
						sh := ShardOf(op.Arg, nShards)
						shards[sh].RunOp(p, op, &prios[sh])
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}
