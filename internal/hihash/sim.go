package hihash

import (
	"fmt"
	"sort"
	"strings"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// Variant selects the simulated twin's group layout discipline.
type Variant int

const (
	// VariantCanonical keeps every group in priority order (ascending
	// keys) — the history-independent layout.
	VariantCanonical Variant = iota
	// VariantAppend is the ablation: inserts append at the end of the
	// group, so the slot order leaks insertion order. hicheck must refute
	// it already at the sequential level (BuildCanon returns a
	// SeqHIViolation).
	VariantAppend
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == VariantAppend {
		return "append"
	}
	return "canonical"
}

// NewSimHarness builds the lock-step-simulator twin of the table for n
// processes under geometry p: one CAS base object per bucket group, whose
// value is the group's EncodeGroup rendering. Every operation is the same
// code the native port runs — an atomic read for lookups, a read/CAS retry
// loop for updates — so each primitive step is one scheduler step and
// internal/hicheck can machine-check linearizability and history
// independence over every interleaving within its bounds.
func NewSimHarness(p Params, n int, variant Variant) *harness.Harness {
	p.Validate()
	sp := NewSpec(p)
	allOps := sp.Ops(sp.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("hihash-sim-%v[%v,n=%d]", variant, p, n),
		Spec:    sp,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			groups := make([]*sim.CASObj, p.G)
			for g := range groups {
				groups[g] = mem.NewCAS(fmt.Sprintf("g%d", g), EncodeGroup(nil))
			}
			progs := make([]sim.Program, n)
			for pid := 0; pid < n; pid++ {
				src := srcs[pid]
				progs[pid] = func(pr *sim.Proc) {
					for op, ok := src.Next(pr); ok; op, ok = src.Next(pr) {
						runSimOp(pr, groups, p, variant, op)
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

// runSimOp executes one table operation against the simulated groups.
// Lookups are a single read; updates are the lock-free read/CAS retry
// loop of the native port. Inserts of present keys, removes of absent
// keys and inserts into full groups linearize at the read that observed
// the condition and leave the memory untouched.
func runSimOp(pr *sim.Proc, groups []*sim.CASObj, p Params, variant Variant, op core.Op) {
	g := groups[GroupOf(op.Arg, p.G)]
	pr.Invoke(op, op.Name != spec.OpLookup)
	for {
		cur := pr.ReadCAS(g).(string)
		keys := DecodeGroup(cur)
		idx := indexOf(keys, op.Arg)
		switch op.Name {
		case spec.OpLookup:
			if idx >= 0 {
				pr.Return(1)
			} else {
				pr.Return(0)
			}
			return
		case spec.OpInsert:
			if idx >= 0 {
				pr.Return(0)
				return
			}
			if len(keys) >= p.B {
				pr.Return(RspFull)
				return
			}
			var next []int
			if variant == VariantAppend {
				next = append(append([]int(nil), keys...), op.Arg)
			} else {
				next = insertSorted(keys, op.Arg)
			}
			if pr.CAS(g, cur, encodeRaw(next)) {
				pr.Return(0)
				return
			}
		case spec.OpRemove:
			if idx < 0 {
				pr.Return(0)
				return
			}
			next := append(append([]int(nil), keys[:idx]...), keys[idx+1:]...)
			if pr.CAS(g, cur, encodeRaw(next)) {
				pr.Return(0)
				return
			}
		default:
			panic("hihash: sim: unknown op " + op.Name)
		}
	}
}

// encodeRaw renders keys in their given order (EncodeGroup would re-sort,
// masking the append ablation).
func encodeRaw(keys []int) string {
	if len(keys) == 0 {
		return "{}"
	}
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(k)
	}
	return s + "}"
}

// indexOf returns the position of key in keys, or -1.
func indexOf(keys []int, key int) int {
	for i, k := range keys {
		if k == key {
			return i
		}
	}
	return -1
}

// insertSorted returns a copy of keys with key added in ascending
// (priority) order.
func insertSorted(keys []int, key int) []int {
	i := 0
	for i < len(keys) && keys[i] < key {
		i++
	}
	out := make([]int, 0, len(keys)+1)
	out = append(out, keys[:i]...)
	out = append(out, key)
	out = append(out, keys[i:]...)
	return out
}

// --- the displacing twin ------------------------------------------------

// DisplaceVariant selects the displacing twin's delete discipline.
type DisplaceVariant int

const (
	// DisplaceCanonical is the faithful protocol: deletes flag the hole
	// they open and run the backward shift, so the layout converges to
	// the canonical displaced one.
	DisplaceCanonical DisplaceVariant = iota
	// DisplaceNoShift is the ablation: deletes skip the backward shift,
	// leaving displaced keys stranded beyond holes — the slot a key ends
	// in then depends on the deletion history, which the checker must
	// refute already at the sequential level.
	DisplaceNoShift
)

// String implements fmt.Stringer.
func (v DisplaceVariant) String() string {
	if v == DisplaceNoShift {
		return "noshift"
	}
	return "canonical"
}

// simSlot is one slot of a simulated group: a key with its relocation
// mark, or a restore flag.
type simSlot struct {
	key    int
	marked bool
	flag   bool
}

// simGone is the drained-group sentinel of the simulated twin.
const simGone = "gone"

// encodeSlots renders a simulated group canonically: keys ascending
// (marks rendered "k*"), restore flags ("+") after them.
func encodeSlots(slots []simSlot) string {
	sorted := append([]simSlot(nil), slots...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].flag != sorted[j].flag {
			return !sorted[i].flag
		}
		return sorted[i].key < sorted[j].key
	})
	parts := make([]string, len(sorted))
	for i, sl := range sorted {
		switch {
		case sl.flag:
			parts[i] = "+"
		case sl.marked:
			parts[i] = fmt.Sprintf("%d*", sl.key)
		default:
			parts[i] = fmt.Sprint(sl.key)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// decodeSlots parses an encodeSlots rendering.
func decodeSlots(s string) []simSlot {
	if s == simGone {
		panic("hihash: decodeSlots on a drained group")
	}
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		panic("hihash: bad group encoding " + s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil
	}
	var out []simSlot
	for _, part := range strings.Split(body, ",") {
		switch {
		case part == "+":
			out = append(out, simSlot{flag: true})
		case strings.HasSuffix(part, "*"):
			var k int
			if _, err := fmt.Sscan(part[:len(part)-1], &k); err != nil {
				panic("hihash: bad group encoding " + s)
			}
			out = append(out, simSlot{key: k, marked: true})
		default:
			var k int
			if _, err := fmt.Sscan(part, &k); err != nil {
				panic("hihash: bad group encoding " + s)
			}
			out = append(out, simSlot{key: k})
		}
	}
	return out
}

// NewDisplaceHarness builds the lock-step-simulator twin of the
// displacing, resizable table for n processes: one CAS base object per
// bucket group of both geometries (level 0: p.G groups; level 1: 2*p.G
// groups) plus a level register, running the same marked-relocation and
// cooperative-migration protocol as the native port (displace.go,
// resize.go), one primitive step per shared-memory access. Because a
// cross-group relocation spans two CAS words, the twin is checked for
// state-quiescent HI (the class the HICHT paper proves) and
// linearizability; perfect HI fails by Proposition 6 and the checker
// exhibits the witness.
func NewDisplaceHarness(p Params, n int, variant DisplaceVariant) *harness.Harness {
	p.Validate()
	sp := NewDisplaceSpec(p)
	allOps := sp.Ops(sp.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("hihash-displace-%v[%v,n=%d]", variant, p, n),
		Spec:    sp,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			lvl := mem.NewCAS("lvl", "0")
			arrs := [2][]*sim.CASObj{make([]*sim.CASObj, p.G), make([]*sim.CASObj, 2*p.G)}
			for g := range arrs[0] {
				arrs[0][g] = mem.NewCAS(fmt.Sprintf("g%d", g), encodeSlots(nil))
			}
			for g := range arrs[1] {
				arrs[1][g] = mem.NewCAS(fmt.Sprintf("n%d", g), encodeSlots(nil))
			}
			progs := make([]sim.Program, n)
			for pid := 0; pid < n; pid++ {
				src := srcs[pid]
				progs[pid] = func(pr *sim.Proc) {
					t := &simTable{pr: pr, p: p, variant: variant, lvl: lvl, arrs: arrs}
					for op, ok := src.Next(pr); ok; op, ok = src.Next(pr) {
						t.runOp(op)
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

// DisplaceCanonicalMemory returns the canonical memory representation of
// a displace-spec state for geometry p, in base-object order (lvl,
// level-0 groups, level-1 groups) — what the twin's memory must equal
// whenever no state-changing operation is pending.
func DisplaceCanonicalMemory(p Params, elems []int, level int) []string {
	out := make([]string, 0, 1+3*p.G)
	out = append(out, fmt.Sprint(level))
	if level == 0 {
		for _, keys := range DisplacedGroups(p, elems) {
			out = append(out, plainSlots(keys))
		}
		for g := 0; g < 2*p.G; g++ {
			out = append(out, encodeSlots(nil))
		}
		return out
	}
	for g := 0; g < p.G; g++ {
		out = append(out, simGone)
	}
	grown := Params{T: p.T, G: 2 * p.G, B: p.B}
	for _, keys := range DisplacedGroups(grown, elems) {
		out = append(out, plainSlots(keys))
	}
	return out
}

// plainSlots encodes sorted keys as an unmarked simulated group.
func plainSlots(keys []int) string {
	slots := make([]simSlot, len(keys))
	for i, k := range keys {
		slots[i] = simSlot{key: k}
	}
	return encodeSlots(slots)
}

// simTable is one process's handle on the simulated displacing table.
type simTable struct {
	pr      *sim.Proc
	p       Params
	variant DisplaceVariant
	lvl     *sim.CASObj
	arrs    [2][]*sim.CASObj
}

// simStatus mirrors the native wstatus for the simulated protocol.
type simStatus int

const (
	simDone simStatus = iota
	simFullStatus
	simRestart
	simLost
)

func (t *simTable) level() int {
	if t.pr.ReadCAS(t.lvl).(string) == "1" {
		return 1
	}
	return 0
}

func (t *simTable) read(lv, g int) (string, []simSlot, bool) {
	s := t.pr.ReadCAS(t.arrs[lv][g]).(string)
	if s == simGone {
		return s, nil, true
	}
	return s, decodeSlots(s), false
}

func (t *simTable) cas(lv, g int, old string, slots []simSlot) bool {
	return t.pr.CAS(t.arrs[lv][g], old, encodeSlots(slots))
}

// groupsAt returns the group count of a level.
func (t *simTable) groupsAt(lv int) int { return t.p.G << lv }

// runOp executes one table operation.
func (t *simTable) runOp(op core.Op) {
	t.pr.Invoke(op, op.Name != spec.OpLookup)
	switch op.Name {
	case spec.OpInsert:
		t.pr.Return(t.insert(op.Arg))
	case spec.OpRemove:
		t.pr.Return(t.remove(op.Arg))
	case spec.OpLookup:
		t.pr.Return(t.lookup(op.Arg))
	case spec.OpGrow:
		t.pr.Return(t.grow())
	default:
		panic("hihash: displace sim: unknown op " + op.Name)
	}
}

// insert places key, responding RspFull only after a validated double
// collect confirmed the table is full at the current level (a transient
// full-looking walk — extra in-flight relocation copies — must not
// produce an unlinearizable RspFull).
func (t *simTable) insert(key int) int {
	for {
		lv := t.level()
		if lv == 1 {
			t.drainGroup(GroupOf(key, t.p.G))
		}
		switch st, _ := t.placeKey(lv, key, -1); st {
		case simDone:
			return 0
		case simFullStatus:
			if full, ok := t.confirmFull(lv, key); ok {
				if full {
					return RspFull
				}
			}
		case simRestart:
		}
	}
}

// confirmFull double-collects the whole level: ok means the two passes
// matched (and key was absent), full means the distinct resident keys
// fill the capacity.
func (t *simTable) confirmFull(lv, key int) (full, ok bool) {
	G := t.groupsAt(lv)
	words := make([]string, G)
	keys := map[int]bool{}
	for g := 0; g < G; g++ {
		s := t.pr.ReadCAS(t.arrs[lv][g]).(string)
		if s == simGone {
			return false, false
		}
		words[g] = s
		for _, sl := range decodeSlots(s) {
			if !sl.flag {
				if sl.key == key {
					return false, false
				}
				keys[sl.key] = true
			}
		}
	}
	for g := 0; g < G; g++ {
		if t.pr.ReadCAS(t.arrs[lv][g]).(string) != words[g] {
			return false, false
		}
	}
	return len(keys) >= G*t.p.B, true
}

// placeKey is the simulated displacement walk: identical decisions to
// the native Set.placeKey, one scheduler step per shared access.
func (t *simTable) placeKey(lv, c, exclude int) (simStatus, int) {
	G := t.groupsAt(lv)
	g := GroupOf(c, G)
	for dist := 0; dist < G; {
		s, slots, isGone := t.read(lv, g)
		if isGone {
			return simRestart, dist
		}
		// At the excluded group c's own marked copy is invisible for
		// priority decisions and must never be helped from here (that
		// would recurse into this very call), mirroring the native
		// placeKey.
		view := slots
		if g == exclude {
			view = maskOwnMark(slots, c)
		}
		if i := slotIndex(view, c); i >= 0 {
			if !view[i].marked {
				return simDone, dist
			}
			if st := t.relocateOut(lv, c, g); st != simDone {
				return st, dist
			}
			continue
		}
		if len(slots) < t.p.B {
			if t.cas(lv, g, s, append(append([]simSlot(nil), slots...), simSlot{key: c})) {
				return t.placed(lv, c, dist), dist
			}
			continue
		}
		if i := flagIndex(slots); i >= 0 {
			next := append([]simSlot(nil), slots...)
			next[i] = simSlot{key: c}
			if t.cas(lv, g, s, next) {
				return t.placed(lv, c, dist), dist
			}
			continue
		}
		if g == exclude {
			if m := maxUnmarkedSlot(view); m != 0 && c < m {
				// The relocation is obsolete (a larger key claimed a
				// freed slot while the mark was parked): cancel it in
				// place, which is the placement.
				i := slotIndex(slots, c)
				if i < 0 || !slots[i].marked {
					continue
				}
				next := append([]simSlot(nil), slots...)
				next[i] = simSlot{key: c}
				if t.cas(lv, g, s, next) {
					return simDone, dist
				}
				continue
			}
		} else if m := maxUnmarkedSlot(slots); m != 0 && c < m && markedCount(slots) == 0 {
			next := markSlot(slots, m)
			if !t.cas(lv, g, s, next) {
				continue
			}
			st := t.finishEvict(lv, c, m, g)
			if st == simDone {
				return t.placed(lv, c, dist), dist
			}
			if st == simLost {
				continue
			}
			return st, dist
		}
		if c < maxAnySlot(view) {
			if mk := anyMarkedSlot(view); mk != 0 && mk != c {
				if st := t.relocateOut(lv, mk, g); st != simDone {
					return st, dist
				}
				continue
			}
			if g != exclude {
				continue
			}
		}
		g = (g + 1) % G
		dist++
	}
	return simFullStatus, G
}

// maskOwnMark returns slots with c's marked copy removed (the invisible
// stale source of the relocation being completed).
func maskOwnMark(slots []simSlot, c int) []simSlot {
	for i, sl := range slots {
		if !sl.flag && sl.key == c && sl.marked {
			return append(append([]simSlot(nil), slots[:i]...), slots[i+1:]...)
		}
	}
	return slots
}

// finishEvict mirrors the native finishEvict.
func (t *simTable) finishEvict(lv, c, m, g int) simStatus {
	if st, _ := t.placeKey(lv, m, g); st != simDone {
		if st == simFullStatus {
			t.unmark(lv, m, g)
			return simFullStatus
		}
		return st
	}
	for {
		s, slots, isGone := t.read(lv, g)
		if isGone {
			return simRestart
		}
		if i := slotIndex(slots, m); i >= 0 && slots[i].marked {
			next := append([]simSlot(nil), slots...)
			next[i] = simSlot{key: c}
			if t.cas(lv, g, s, next) {
				return simDone
			}
			continue
		}
		return simLost
	}
}

// placed is the simulated post-placement validation, mirroring the
// native Set.placed: a key placed at displacement distance > 0 must be
// reachable by a standard probe scan — a racing delete can strand it
// beyond a freed group. The repair loop helps pending restores before
// it, or pulls the key back itself when a settled hole precedes it.
func (t *simTable) placed(lv, c, dist int) simStatus {
	if dist == 0 {
		return simDone
	}
	G := t.groupsAt(lv)
	for {
		g := GroupOf(c, G)
		foundAt, cleanAt := -1, -1
		var flagged []int
		for d := 0; d < G; d++ {
			_, slots, isGone := t.read(lv, g)
			if isGone {
				return simRestart
			}
			if slotIndex(slots, c) >= 0 {
				foundAt = g
				break
			}
			if flagIndex(slots) >= 0 {
				flagged = append(flagged, g)
			}
			if cleanSlots(slots, t.p.B) {
				cleanAt = g
				break
			}
			g = (g + 1) % G
		}
		switch {
		case foundAt >= 0 && len(flagged) == 0:
			return simDone
		case foundAt >= 0:
			for _, f := range flagged {
				if st := t.restore(lv, f); st != simDone {
					return st
				}
			}
		case cleanAt >= 0:
			at := t.findKey(lv, c)
			if at < 0 {
				return simDone
			}
			s, slots, isGone := t.read(lv, at)
			if isGone {
				return simRestart
			}
			i := slotIndex(slots, c)
			if i < 0 || slots[i].marked {
				continue
			}
			next := append([]simSlot(nil), slots...)
			next[i] = simSlot{key: c, marked: true}
			if !t.cas(lv, at, s, next) {
				continue
			}
			if st := t.relocateOut(lv, c, at); st != simDone {
				return st
			}
		}
	}
}

// findKey scans every group of a level for c.
func (t *simTable) findKey(lv, c int) int {
	for g := 0; g < t.groupsAt(lv); g++ {
		s := t.pr.ReadCAS(t.arrs[lv][g]).(string)
		if s != simGone && slotIndex(decodeSlots(s), c) >= 0 {
			return g
		}
	}
	return -1
}

// unmark cancels an eviction with no destination.
func (t *simTable) unmark(lv, m, g int) {
	for {
		s, slots, isGone := t.read(lv, g)
		if isGone {
			return
		}
		i := slotIndex(slots, m)
		if i < 0 || !slots[i].marked {
			return
		}
		next := append([]simSlot(nil), slots...)
		next[i] = simSlot{key: m}
		if t.cas(lv, g, s, next) {
			return
		}
	}
}

// relocateOut mirrors the native relocateOut: complete marked key m's
// relocation at group j, releasing the stale slot into a restore flag.
func (t *simTable) relocateOut(lv, m, j int) simStatus {
	for {
		s, slots, isGone := t.read(lv, j)
		if isGone {
			return simRestart
		}
		i := slotIndex(slots, m)
		if i < 0 || !slots[i].marked {
			return simDone
		}
		if st, _ := t.placeKey(lv, m, j); st != simDone {
			if st == simFullStatus {
				next := append([]simSlot(nil), slots...)
				next[i] = simSlot{key: m}
				if t.cas(lv, j, s, next) {
					return simDone
				}
				continue
			}
			return st
		}
		next := append([]simSlot(nil), slots...)
		next[i] = simSlot{flag: true}
		if t.cas(lv, j, s, next) {
			return t.restore(lv, j)
		}
	}
}

// restore mirrors the native backward shift.
func (t *simTable) restore(lv, g int) simStatus {
	G := t.groupsAt(lv)
	for {
		s, slots, isGone := t.read(lv, g)
		if isGone {
			return simRestart
		}
		if flagIndex(slots) < 0 {
			return simDone
		}
		best, bestAt := 0, -1
		j := (g + 1) % G
		for dist := 1; dist < G; dist++ {
			_, js, jGone := t.read(lv, j)
			if jGone {
				break
			}
			for _, sl := range js {
				if sl.flag || sl.marked {
					continue
				}
				if probeCrosses(sl.key, j, g, G) && (best == 0 || sl.key < best) {
					best, bestAt = sl.key, j
				}
			}
			if cleanSlots(js, t.p.B) {
				break
			}
			j = (j + 1) % G
		}
		if best == 0 {
			next := removeFlag(slots)
			if t.cas(lv, g, s, next) {
				return simDone
			}
			continue
		}
		js, jslots, jGone := t.read(lv, bestAt)
		if jGone {
			continue
		}
		i := slotIndex(jslots, best)
		if i < 0 || jslots[i].marked {
			continue
		}
		next := append([]simSlot(nil), jslots...)
		next[i] = simSlot{key: best, marked: true}
		if !t.cas(lv, bestAt, js, next) {
			continue
		}
		if st := t.relocateOut(lv, best, bestAt); st != simDone {
			return st
		}
	}
}

// remove deletes key, flagging the hole and running the backward shift
// (skipped under the DisplaceNoShift ablation).
func (t *simTable) remove(key int) int {
	for {
		lv := t.level()
		if lv == 1 {
			// The key may sit displaced anywhere along its old-array
			// run; finish the whole drain before judging absence.
			for g := 0; g < t.p.G; g++ {
				t.drainGroup(g)
			}
		}
		found, foundAt, marked, words, groups, sawGone := t.scan(lv, key, false)
		if sawGone {
			continue
		}
		if !found {
			if t.validate(lv, groups, words) && t.level() == lv {
				return 0
			}
			continue
		}
		if marked {
			t.relocateOut(lv, key, foundAt)
			continue
		}
		s, slots, isGone := t.read(lv, foundAt)
		if isGone {
			continue
		}
		i := slotIndex(slots, key)
		if i < 0 || slots[i].marked {
			continue
		}
		next := append([]simSlot(nil), slots...)
		if t.variant == DisplaceNoShift {
			next = append(next[:i], next[i+1:]...)
			if t.cas(lv, foundAt, s, next) {
				return 0
			}
			continue
		}
		next[i] = simSlot{flag: true}
		if t.cas(lv, foundAt, s, next) {
			// Keep looping: a migration drain or relocation racing this
			// removal may have copied the key elsewhere; only a
			// validated clean scan on a stable level confirms it is
			// gone everywhere.
			t.restore(lv, foundAt)
		}
	}
}

// simLookupRetryLimit is the sim twin's K, mirroring the native
// lookupRetryLimit: after this many failed validations the reader stops
// spinning and helps (lookupSlow). It is smaller than the native budget
// so the exhaustive checker reaches the slow path within its schedule
// bounds.
const simLookupRetryLimit = 2

// lookup is the bounded-retry validated double collect, old array first
// during a migration, mirroring the native displaceContains: a positive
// answer needs no validation, "absent" must read the same clean words
// twice on a stable level, and after simLookupRetryLimit failed
// validations the reader helps the interference instead (lookupSlow).
func (t *simTable) lookup(key int) int {
	for try := 0; try < simLookupRetryLimit; try++ {
		lv := t.level()
		if lv == 1 {
			found, _, _, oldWords, oldGroups, _ := t.scan(0, key, true)
			if found {
				return 1
			}
			nfound, _, _, words, groups, sawGone := t.scan(1, key, false)
			if nfound {
				return 1
			}
			if sawGone {
				continue
			}
			if t.validate(1, groups, words) && t.validate(0, oldGroups, oldWords) && t.level() == 1 {
				return 0
			}
			continue
		}
		found, _, _, words, groups, sawGone := t.scan(0, key, false)
		if found {
			return 1
		}
		if sawGone {
			continue
		}
		if t.validate(0, groups, words) && t.level() == 0 {
			return 0
		}
	}
	return t.lookupSlow(key)
}

// lookupSlow is the sim mirror of the native containsSlow: drive any
// in-flight migration to completion first (like updates do), then scan
// the run, help every relocation mark and restore flag met, and answer
// once a pass finds the key or validates clean on a stable level.
func (t *simTable) lookupSlow(key int) int {
	for {
		lv := t.level()
		if lv == 1 {
			// The key may sit displaced anywhere along its old-array run;
			// finish the whole drain before judging absence (the native
			// slow path's current() does the same).
			for g := 0; g < t.p.G; g++ {
				t.drainGroup(g)
			}
		}
		found, _, _, words, groups, sawGone := t.scan(lv, key, false)
		if found {
			return 1
		}
		if sawGone {
			continue
		}
		helped := false
		for i, g := range groups {
			if words[i] == simGone {
				continue
			}
			for _, sl := range decodeSlots(words[i]) {
				if sl.marked {
					t.relocateOut(lv, sl.key, g)
					helped = true
					break
				}
				if sl.flag {
					t.restore(lv, g)
					helped = true
					break
				}
			}
		}
		if helped {
			continue
		}
		if t.validate(lv, groups, words) && t.level() == lv {
			return 0
		}
	}
}

// scan is one probe-run pass at a level; treatGoneFull keeps scanning
// past drained groups (old array during migration).
func (t *simTable) scan(lv, key int, treatGoneFull bool) (found bool, foundAt int, marked bool, words []string, groups []int, sawGone bool) {
	G := t.groupsAt(lv)
	g := GroupOf(key, G)
	for dist := 0; dist < G; dist++ {
		s := t.pr.ReadCAS(t.arrs[lv][g]).(string)
		words = append(words, s)
		groups = append(groups, g)
		if s == simGone {
			sawGone = true
			if !treatGoneFull {
				return
			}
			g = (g + 1) % G
			continue
		}
		slots := decodeSlots(s)
		if i := slotIndex(slots, key); i >= 0 {
			found, foundAt, marked = true, g, slots[i].marked
			return
		}
		if cleanSlots(slots, t.p.B) {
			return
		}
		g = (g + 1) % G
	}
	return
}

// validate re-reads a scan's words.
func (t *simTable) validate(lv int, groups []int, words []string) bool {
	for i, g := range groups {
		if t.pr.ReadCAS(t.arrs[lv][g]).(string) != words[i] {
			return false
		}
	}
	return true
}

// grow flips the level register and migrates every level-0 group.
func (t *simTable) grow() int {
	if t.level() == 1 {
		return 0
	}
	if !t.pr.CAS(t.lvl, "0", "1") {
		return 0
	}
	for g := 0; g < t.p.G; g++ {
		t.drainGroup(g)
	}
	return 0
}

// drainGroup migrates one level-0 group: destination first, then drop,
// then stamp gone. Restore flags are dropped, marked keys moved like
// plain ones.
func (t *simTable) drainGroup(g int) {
	for {
		s := t.pr.ReadCAS(t.arrs[0][g]).(string)
		if s == simGone {
			return
		}
		slots := decodeSlots(s)
		if i := flagIndex(slots); i >= 0 {
			next := append([]simSlot(nil), slots...)
			next = append(next[:i], next[i+1:]...)
			t.cas(0, g, s, next)
			continue
		}
		if len(slots) == 0 {
			t.pr.CAS(t.arrs[0][g], s, simGone)
			continue
		}
		key := slots[0].key
		if st, _ := t.placeKey(1, key, -1); st != simDone {
			continue
		}
		next := append([]simSlot(nil), slots[1:]...)
		t.cas(0, g, s, next)
	}
}

// --- simSlot helpers ----------------------------------------------------

func slotIndex(slots []simSlot, key int) int {
	for i, sl := range slots {
		if !sl.flag && sl.key == key {
			return i
		}
	}
	return -1
}

func flagIndex(slots []simSlot) int {
	for i, sl := range slots {
		if sl.flag {
			return i
		}
	}
	return -1
}

func maxUnmarkedSlot(slots []simSlot) int {
	max := 0
	for _, sl := range slots {
		if !sl.flag && !sl.marked && sl.key > max {
			max = sl.key
		}
	}
	return max
}

func maxAnySlot(slots []simSlot) int {
	max := 0
	for _, sl := range slots {
		if !sl.flag && sl.key > max {
			max = sl.key
		}
	}
	return max
}

func anyMarkedSlot(slots []simSlot) int {
	for _, sl := range slots {
		if sl.marked {
			return sl.key
		}
	}
	return 0
}

func markedCount(slots []simSlot) int {
	n := 0
	for _, sl := range slots {
		if sl.marked {
			n++
		}
	}
	return n
}

func markSlot(slots []simSlot, key int) []simSlot {
	out := append([]simSlot(nil), slots...)
	for i, sl := range out {
		if !sl.flag && sl.key == key {
			out[i].marked = true
		}
	}
	return out
}

func removeFlag(slots []simSlot) []simSlot {
	out := append([]simSlot(nil), slots...)
	for i, sl := range out {
		if sl.flag {
			return append(out[:i], out[i+1:]...)
		}
	}
	return out
}

// cleanSlots reports a settled, non-full simulated group: no marks, no
// flags, spare capacity.
func cleanSlots(slots []simSlot, capacity int) bool {
	if len(slots) >= capacity {
		return false
	}
	for _, sl := range slots {
		if sl.flag || sl.marked {
			return false
		}
	}
	return true
}
