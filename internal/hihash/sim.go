package hihash

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// Variant selects the simulated twin's group layout discipline.
type Variant int

const (
	// VariantCanonical keeps every group in priority order (ascending
	// keys) — the history-independent layout.
	VariantCanonical Variant = iota
	// VariantAppend is the ablation: inserts append at the end of the
	// group, so the slot order leaks insertion order. hicheck must refute
	// it already at the sequential level (BuildCanon returns a
	// SeqHIViolation).
	VariantAppend
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == VariantAppend {
		return "append"
	}
	return "canonical"
}

// NewSimHarness builds the lock-step-simulator twin of the table for n
// processes under geometry p: one CAS base object per bucket group, whose
// value is the group's EncodeGroup rendering. Every operation is the same
// code the native port runs — an atomic read for lookups, a read/CAS retry
// loop for updates — so each primitive step is one scheduler step and
// internal/hicheck can machine-check linearizability and history
// independence over every interleaving within its bounds.
func NewSimHarness(p Params, n int, variant Variant) *harness.Harness {
	p.Validate()
	sp := NewSpec(p)
	allOps := sp.Ops(sp.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("hihash-sim-%v[%v,n=%d]", variant, p, n),
		Spec:    sp,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			groups := make([]*sim.CASObj, p.G)
			for g := range groups {
				groups[g] = mem.NewCAS(fmt.Sprintf("g%d", g), EncodeGroup(nil))
			}
			progs := make([]sim.Program, n)
			for pid := 0; pid < n; pid++ {
				src := srcs[pid]
				progs[pid] = func(pr *sim.Proc) {
					for op, ok := src.Next(pr); ok; op, ok = src.Next(pr) {
						runSimOp(pr, groups, p, variant, op)
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

// runSimOp executes one table operation against the simulated groups.
// Lookups are a single read; updates are the lock-free read/CAS retry
// loop of the native port. Inserts of present keys, removes of absent
// keys and inserts into full groups linearize at the read that observed
// the condition and leave the memory untouched.
func runSimOp(pr *sim.Proc, groups []*sim.CASObj, p Params, variant Variant, op core.Op) {
	g := groups[GroupOf(op.Arg, p.G)]
	pr.Invoke(op, op.Name != spec.OpLookup)
	for {
		cur := pr.ReadCAS(g).(string)
		keys := DecodeGroup(cur)
		idx := indexOf(keys, op.Arg)
		switch op.Name {
		case spec.OpLookup:
			if idx >= 0 {
				pr.Return(1)
			} else {
				pr.Return(0)
			}
			return
		case spec.OpInsert:
			if idx >= 0 {
				pr.Return(0)
				return
			}
			if len(keys) >= p.B {
				pr.Return(RspFull)
				return
			}
			var next []int
			if variant == VariantAppend {
				next = append(append([]int(nil), keys...), op.Arg)
			} else {
				next = insertSorted(keys, op.Arg)
			}
			if pr.CAS(g, cur, encodeRaw(next)) {
				pr.Return(0)
				return
			}
		case spec.OpRemove:
			if idx < 0 {
				pr.Return(0)
				return
			}
			next := append(append([]int(nil), keys[:idx]...), keys[idx+1:]...)
			if pr.CAS(g, cur, encodeRaw(next)) {
				pr.Return(0)
				return
			}
		default:
			panic("hihash: sim: unknown op " + op.Name)
		}
	}
}

// encodeRaw renders keys in their given order (EncodeGroup would re-sort,
// masking the append ablation).
func encodeRaw(keys []int) string {
	if len(keys) == 0 {
		return "{}"
	}
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(k)
	}
	return s + "}"
}

// indexOf returns the position of key in keys, or -1.
func indexOf(keys []int, key int) int {
	for i, k := range keys {
		if k == key {
			return i
		}
	}
	return -1
}

// insertSorted returns a copy of keys with key added in ascending
// (priority) order.
func insertSorted(keys []int, key int) []int {
	i := 0
	for i < len(keys) && keys[i] < key {
		i++
	}
	out := make([]int, 0, len(keys)+1)
	out = append(out, keys[:i]...)
	out = append(out, key)
	out = append(out, keys[i:]...)
	return out
}
