package hihash_test

import (
	"sync"
	"testing"

	"hiconc/internal/hihash"
	"hiconc/internal/workload"
)

func TestMapSequentialSemantics(t *testing.T) {
	m := hihash.NewMap(50, 8)
	if rsp := m.Inc(10); rsp != 0 {
		t.Errorf("first inc returned %d", rsp)
	}
	if rsp := m.Inc(10); rsp != 1 {
		t.Errorf("second inc returned %d", rsp)
	}
	m.Inc(33)
	m.Dec(33)
	if got := m.Get(10); got != 2 {
		t.Errorf("Get(10) = %d, want 2", got)
	}
	counts := m.Counts()
	if len(counts) != 1 || counts[10] != 2 {
		t.Errorf("Counts() = %v, want {10: 2} (zero counts elided)", counts)
	}
}

// TestMapZeroElision: a key decremented back to zero must vanish from the
// representation entirely, leaving the memory identical to one that never
// touched the key.
func TestMapZeroElision(t *testing.T) {
	fresh := hihash.NewMap(20, 4)
	churned := hihash.NewMap(20, 4)
	for k := 1; k <= 20; k++ {
		churned.Inc(k)
		churned.Dec(k)
	}
	if fresh.Snapshot() != churned.Snapshot() {
		t.Fatalf("empty maps differ:\n fresh:   %s\n churned: %s", fresh.Snapshot(), churned.Snapshot())
	}
	if want := hihash.CanonicalMapSnapshot(20, 4, nil); churned.Snapshot() != want {
		t.Fatalf("empty map not canonical:\n got:  %s\n want: %s", churned.Snapshot(), want)
	}
}

// TestMapConcurrentSharedKeys: concurrent Zipf-skewed increments sum
// correctly and the logical memory is canonical at quiescence.
func TestMapConcurrentSharedKeys(t *testing.T) {
	const n, keys, perProc = 8, 16, 500
	m := hihash.NewMap(keys, 4)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			g := workload.NewGen(int64(pid))
			for i := 0; i < perProc; i++ {
				m.Inc(g.ZipfKey(keys, 1.2))
			}
		}(pid)
	}
	wg.Wait()
	counts := m.Counts()
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != n*perProc {
		t.Fatalf("total count = %d, want %d", total, n*perProc)
	}
	if want := hihash.CanonicalMapSnapshot(keys, m.NumBuckets(), counts); m.Snapshot() != want {
		t.Fatalf("memory not canonical at quiescence:\n got:  %s\n want: %s", m.Snapshot(), want)
	}
}

// TestMapCanonicalAcrossHistories: two histories reaching the same counts
// leave byte-identical logical memories.
func TestMapCanonicalAcrossHistories(t *testing.T) {
	const keys, buckets = 12, 3
	a := hihash.NewMap(keys, buckets)
	for i := 0; i < 3; i++ {
		a.Inc(5)
	}
	a.Inc(7)
	a.Inc(2)
	a.Dec(2)

	b := hihash.NewMap(keys, buckets)
	b.Inc(7)
	b.Dec(7)
	b.Inc(7)
	b.Inc(5)
	b.Dec(5)
	for i := 0; i < 3; i++ {
		b.Inc(5)
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("same counts, different memories:\n a: %s\n b: %s", a.Snapshot(), b.Snapshot())
	}
	if want := hihash.CanonicalMapSnapshot(keys, buckets, map[int]int{5: 3, 7: 1}); a.Snapshot() != want {
		t.Fatalf("memory not canonical:\n got:  %s\n want: %s", a.Snapshot(), want)
	}
}
