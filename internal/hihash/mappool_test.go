package hihash

// Tests of the Map bucket pool (E26 satellite): recycling is restricted
// to never-published buckets, so concurrent readers must never observe
// a bucket being rebuilt. The churn test is the -race witness: balanced
// Inc/Dec pairs under concurrent Get traffic and a forced mid-flight
// grow must end at exactly zero counts and the canonical empty layout.

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMapPoolChurnUnderRace churns Get/Inc/Dec across goroutines.
// Every writer increments and decrements the same keys equally often,
// so the final state is all-zero; any use-after-recycle of a published
// bucket would surface as a race report, a torn read, or a non-empty
// final snapshot.
func TestMapPoolChurnUnderRace(t *testing.T) {
	const keys, writers, readers = 128, 4, 4
	rounds := 4000
	if testing.Short() {
		rounds = 500
	}
	m := NewMap(keys, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					m.Get(rng.Intn(keys) + 1)
				}
			}
		}(int64(g))
	}
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < rounds; i++ {
				k := rng.Intn(keys) + 1
				m.Inc(k)
				if i == rounds/2 {
					m.Grow() // migration mid-churn: pooled rebuilds must survive it
				}
				m.Dec(k)
			}
		}(int64(g))
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	for k := 1; k <= keys; k++ {
		if v := m.Get(k); v != 0 {
			t.Fatalf("Get(%d) = %d after balanced churn, want 0", k, v)
		}
	}
	if got, canon := m.Snapshot(), CanonicalMapSnapshot(keys, m.NumBuckets(), nil); got != canon {
		t.Fatalf("memory not canonical after churn:\n got:  %s\n want: %s", got, canon)
	}
}
