package hihash

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"

	"hiconc/internal/conc"
)

// Raw memory dumps — the adversarial observer's view of the native Set.
//
// Snapshot renders the table through its own accessors; an attacker who
// scrapes a core dump does not get that courtesy. RawWords and RawDump
// read the live group array directly through unsafe, exactly as a crash
// dump or a compromised process would, so the E23 experiments can assert
// history independence on the bits themselves: two tables holding the
// same key set must dump identically (bounded mode) or within the
// Proposition 6 word distance (displacing mode). The reads are plain,
// non-atomic memory reads — take dumps only when no operation is in
// flight (quiescence, or after every injected goroutine has been killed
// or parked), which is also what keeps the race detector quiet.

// RawWords copies the table's live group words straight out of memory:
// the current array first and, if an online resize is still draining,
// the old array after it. Each word packs SlotsPerGroup 16-bit slots.
func (s *Set) RawWords() []uint64 {
	st := s.st.Load()
	out := rawCopy(st.groups)
	if p := st.prev.Load(); p != nil {
		out = append(out, rawCopy(p.groups)...)
	}
	return out
}

// rawCopy snapshots a group array by reinterpreting it as raw uint64s.
// atomic.Uint64 is exactly one machine word (its extra fields are
// zero-size), so the element layout is that of a plain []uint64.
func rawCopy(groups []atomic.Uint64) []uint64 {
	if len(groups) == 0 {
		return nil
	}
	raw := unsafe.Slice((*uint64)(unsafe.Pointer(&groups[0])), len(groups))
	return append([]uint64(nil), raw...)
}

// RawDump returns the byte image of the table's group array(s), in
// machine byte order — the form two history twins are compared in.
func (s *Set) RawDump() []byte {
	words := s.RawWords()
	if len(words) == 0 {
		return nil
	}
	raw := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), 8*len(words))
	return append([]byte(nil), raw...)
}

// Domain returns the table's key domain (keys are 1..Domain).
func (s *Set) Domain() int { return s.domain }

// RawDump returns the byte image of the map's reachable heap data: per
// bucket of the current array, the entry count followed by the raw bytes
// of its canonical KV array, read through unsafe. Bucket pointers
// themselves are heap addresses and never compared — what two history
// twins must agree on is every word those pointers reach. Take dumps
// only at quiescence.
func (m *Map) RawDump() []byte {
	st := m.st.Load()
	var out []byte
	for b := range st.buckets {
		p := st.buckets[b].Load()
		var kvs []conc.KV
		if p != nil && p != uninit {
			kvs = p.kvs
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(len(kvs)))
		out = append(out, hdr[:]...)
		if len(kvs) > 0 {
			raw := unsafe.Slice((*byte)(unsafe.Pointer(&kvs[0])), int(unsafe.Sizeof(kvs[0]))*len(kvs))
			out = append(out, raw...)
		}
	}
	return out
}

// CanonicalWords returns the packed group words of the canonical
// displaced layout of elems at geometry (domain, nGroups): what RawWords
// of a quiescent table holding elems must read. For states where no home
// group overflows this is also the bounded table's canonical image.
func CanonicalWords(domain, nGroups int, elems []int) []uint64 {
	layout := DisplacedGroups(Params{T: domain, G: nGroups, B: SlotsPerGroup}, elems)
	out := make([]uint64, nGroups)
	for g, keys := range layout {
		var arr [SlotsPerGroup]int
		n := copy(arr[:], keys)
		out[g] = pack(&arr, n)
	}
	return out
}
