package hihash_test

import (
	"errors"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/hihash"
	"hiconc/internal/sim"
)

// TestSimSequentialCanon: every sequential execution reaching the same
// abstract key set must leave the same memory (the canonical per-group
// priority layout), and the canonical map must cover exactly the states
// reachable under the bounded spec.
func TestSimSequentialCanon(t *testing.T) {
	p := hihash.Params{T: 3, G: 2, B: 2}
	h := hihash.NewSimHarness(p, 2, hihash.VariantCanonical)
	c, err := hicheck.BuildCanon(h, 3, 2000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	states, err := core.Reachable(h.Spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ByState) != len(states) {
		t.Errorf("canonical map covers %d states, want %d", len(c.ByState), len(states))
	}
	// Every canonical memory must be the CanonicalGroups rendering.
	for st, mem := range c.ByState {
		want := hihash.CanonicalGroups(p, hihash.StateElems(st))
		if sim.Fingerprint(mem) != sim.Fingerprint(want) {
			t.Errorf("state %q: canonical memory %v, want %v", st, mem, want)
		}
	}
}

// TestSimPerfectHIAndLinearizable is the headline machine check: because
// every update is a single CAS on one group word, the simulated twin is
// perfectly history independent — the strongest class of Definition 5 —
// and linearizable, over every explored interleaving. Perfect HI implies
// state-quiescent HI; both classes are checked explicitly.
func TestSimPerfectHIAndLinearizable(t *testing.T) {
	p := hihash.Params{T: 3, G: 2, B: 1}
	h := hihash.NewSimHarness(p, 2, hihash.VariantCanonical)
	c, err := hicheck.BuildCanon(h, 3, 2000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	a, b := sameGroupKeys(t, p.T, p.G)
	other := 1
	for other == a || other == b {
		other++
	}
	scripts := [][][]core.Op{
		{{ins(a)}, {ins(b)}},              // same group: contention + Full race
		{{ins(a)}, {ins(other)}},          // distinct groups in parallel
		{{ins(a)}, {rem(a)}},              // conflicting updates on one key
		{{ins(a), rem(a)}, {ins(b)}},      // churn against a Full-prone insert
		{{ins(a), look(b)}, {ins(other)}}, // reads interleaved with updates
		{{rem(a), ins(b)}, {ins(a)}},      // remove-first races
	}
	maxSteps := 12
	if !testing.Short() {
		maxSteps = 16
	}
	for _, class := range []hicheck.ObsClass{hicheck.Perfect, hicheck.StateQuiescent} {
		if _, err := hicheck.CheckExhaustive(c, h, scripts, class, maxSteps, 400000, true); err != nil && !errors.Is(err, sim.ErrBudget) {
			t.Fatalf("%s [%v]: %v", h.Name, class, err)
		}
	}
	// Deep randomized pass over full executions.
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Perfect, 300, 17, 3000, true); err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
}

// TestSimRandomWideGeometry fuzzes a roomier geometry (B=2, three keys)
// where inserts, removes and Full responses all occur.
func TestSimRandomWideGeometry(t *testing.T) {
	p := hihash.Params{T: 3, G: 2, B: 2}
	h := hihash.NewSimHarness(p, 3, hihash.VariantCanonical)
	c, err := hicheck.BuildCanon(h, 3, 2000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	scripts := [][][]core.Op{
		{{ins(1), rem(2)}, {ins(2), look(1)}, {ins(3)}},
		{{ins(1), ins(2)}, {rem(1), ins(3)}, {look(2), rem(3)}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Perfect, 150, 99, 4000, true); err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
}

// TestSimAppendAblationFails: when inserts append instead of keeping
// priority order, two insertion orders of the same pair leave different
// slot layouts — the checker must refute history independence already at
// the sequential level.
func TestSimAppendAblationFails(t *testing.T) {
	h := hihash.NewSimHarness(hihash.Params{T: 3, G: 2, B: 2}, 2, hihash.VariantAppend)
	_, err := hicheck.BuildCanon(h, 2, 2000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("BuildCanon err = %v, want a sequential HI violation", err)
	}
}
