package hihash_test

// The hihash spec fuzzers: go test -fuzz=FuzzDisplacedLayout (or
// FuzzDisplaceSetOps) ./internal/hihash. The seed corpora run as plain
// tests, and CI runs each fuzzer briefly (-fuzztime) as a smoke.

import (
	"testing"

	"hiconc/internal/hihash"
)

// FuzzDisplacedLayout feeds arbitrary operation strings to the
// sequential displaced model and checks the canonical-layout property:
// whatever the history, the layout equals DisplacedGroups of the
// surviving key set, every key is findable by the probe rule, and no key
// is duplicated.
func FuzzDisplacedLayout(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(3), uint8(2))
	f.Add([]byte{7, 1, 7, 130, 9, 9, 2}, uint8(4), uint8(1))
	f.Add([]byte{255, 0, 13, 40, 41, 42, 170, 5}, uint8(5), uint8(4))
	f.Fuzz(func(t *testing.T, ops []byte, gRaw, bRaw uint8) {
		p := hihash.Params{T: 24, G: int(gRaw%6) + 2, B: int(bRaw%4) + 1}
		m := newSeqModel(p)
		live := map[int]bool{}
		for _, b := range ops {
			key := int(b%uint8(p.T)) + 1
			if b >= 128 {
				if countKeys(m.layout) >= p.G*p.B && !live[key] {
					continue // at capacity: skip the insert, as the table would
				}
				m.insert(key)
				live[key] = true
			} else {
				m.remove(key)
				delete(live, key)
			}
		}
		var elems []int
		for k := range live {
			elems = append(elems, k)
		}
		want := hihash.DisplacedGroups(p, elems)
		if !layoutEqual(m.layout, want) {
			t.Fatalf("history-dependent layout for %v:\n got:  %v\n want: %v", elems, m.layout, want)
		}
		// Probe-rule reachability: every key findable scanning from home
		// until a non-full group.
		for k := range live {
			g := hihash.GroupOf(k, p.G)
			found := false
			for d := 0; d < p.G; d++ {
				if inSet(m.layout[g], k) {
					found = true
					break
				}
				if len(m.layout[g]) < p.B {
					break
				}
				g = (g + 1) % p.G
			}
			if !found {
				t.Fatalf("key %d unreachable by probe rule in %v", k, m.layout)
			}
		}
	})
}

// FuzzDisplaceSetOps replays arbitrary operation strings against the
// native displacing table (with growth pinned small so resizes trigger)
// and a plain map model: membership answers and the final canonical
// snapshot must match.
func FuzzDisplaceSetOps(f *testing.F) {
	f.Add([]byte{200, 201, 202, 13, 200, 140})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 129, 1, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const domain = 40
		s := hihash.NewDisplaceSet(domain, 2)
		model := map[int]bool{}
		for _, b := range ops {
			key := int(b%domain) + 1
			switch {
			case b >= 170:
				if rsp := s.Insert(key); rsp != 0 {
					t.Fatalf("Insert(%d) = %d", key, rsp)
				}
				model[key] = true
			case b >= 85:
				s.Remove(key)
				delete(model, key)
			default:
				if got, want := s.Contains(key), model[key]; got != want {
					t.Fatalf("Contains(%d) = %v, want %v", key, got, want)
				}
			}
		}
		var elems []int
		for k := range model {
			elems = append(elems, k)
		}
		if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), elems); got != want {
			t.Fatalf("final memory not canonical:\n got:  %s\n want: %s", got, want)
		}
	})
}
