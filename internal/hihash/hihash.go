// Package hihash implements the HICHT subsystem: a lock-free,
// history-independent concurrent hash table with open addressing, in the
// spirit of "History-Independent Concurrent Hash Tables" (Attiya, Bender,
// Farach-Colton, Oshman, Schiller; arXiv:2503.21016), carried out in the
// SQHI framework of the source PODC 2024 paper.
//
// The table is a fixed-capacity array of G bucket groups of B slots each;
// a key k probes exactly one group, GroupOf(k, G). The design invariant is
// a canonical layout: within its group a key occupies the slot determined
// solely by priority order (ascending key order, empties packed high), so
// the memory representation is a pure function of the current key set —
// never of the insertion or deletion order. Deletion is tombstone-free:
// removing a key immediately restores the canonical layout of the group.
//
// The concurrency scheme is the crux. A whole group — all B slots — lives
// in one CAS word, so every relocation that an insert or a tombstone-free
// delete requires (shifting keys to keep the priority order) is folded
// into a single atomic compare-and-swap. Operations are lock-free
// single-word CAS retry loops and lookups are a single atomic load. As a
// consequence the table is not merely state-quiescent HI like the
// universal construction of Algorithm 5: every reachable configuration,
// including configurations with update operations mid-flight, holds a
// canonical memory — the table is perfectly history independent
// (Definition 5). This does not contradict Theorem 13: a set's operations
// return too few distinct responses to place it in the class C_t, exactly
// the escape hatch the paper exploits for the binary-register set of
// Section 5.1. The hihash table is the CAS-word, hash-partitioned
// production analogue of that construction.
//
// Capacity is fixed at construction, as in open addressing: an insert
// into a group that already holds B other keys returns RspFull and leaves
// the state unchanged (a deterministic response of the bounded
// specification, so history independence is preserved). Unbounded
// cross-group displacement chains (full Robin Hood relocation) are future
// work tracked in ROADMAP.md.
//
// The package ships the subsystem in both of the repository's worlds:
//
//   - a simulated twin (NewSimHarness) driven through internal/sim and
//     internal/harness, machine-checked by internal/hicheck for
//     linearizability and for HI under the Perfect and StateQuiescent
//     observation classes, plus an append-order ablation (VariantAppend)
//     that the checker must refute;
//   - a native port (Set, Map) over sync/atomic words, exposed through
//     internal/obj as HashSet/HashMap and through internal/shard as the
//     direct table backend replacing the per-shard universal construction.
package hihash

import (
	"fmt"
	"sort"
	"strings"
)

// RspFull is the response of an insert that found the key's group already
// holding its maximum number of keys. It is distinct from the acknowledge
// response 0 and the membership responses 0/1.
const RspFull = 2

// GroupOf returns the group (0..groups-1) that key probes, using a fixed
// splitmix64-style mixer so contiguous key ranges spread evenly. It is
// the hash function h of the canonical-layout invariant, shared by the
// specification, the simulated twin and the native port, and delegated to
// by shard.ShardOf so shard routing uses the identical mixer.
func GroupOf(key, groups int) int {
	z := uint64(key) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(groups))
}

// Params fixes one table geometry: keys are {1..T}, hashed into G groups
// of B slots each. The capacity of the table is G*B.
type Params struct {
	// T is the key domain size; keys are 1..T.
	T int
	// G is the number of bucket groups.
	G int
	// B is the number of slots per group (the group capacity).
	B int
}

// Validate panics if the geometry is malformed.
func (p Params) Validate() {
	if p.T < 1 {
		panic(fmt.Sprintf("hihash: invalid domain T=%d", p.T))
	}
	if p.G < 1 {
		panic(fmt.Sprintf("hihash: invalid group count G=%d", p.G))
	}
	if p.B < 1 {
		panic(fmt.Sprintf("hihash: invalid group capacity B=%d", p.B))
	}
}

// String renders the geometry for harness and implementation names.
func (p Params) String() string { return fmt.Sprintf("t=%d,g=%d,b=%d", p.T, p.G, p.B) }

// EncodeGroup renders a group's key set in canonical priority order:
// ascending keys inside braces, e.g. "{1,3}" ("{}" when empty). It is the
// slot layout of the simulated twin and the reference form for snapshot
// checks of the native port.
func EncodeGroup(keys []int) string {
	sorted := append([]int(nil), keys...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, k := range sorted {
		parts[i] = fmt.Sprint(k)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// DecodeGroup parses an EncodeGroup rendering back into its sorted keys.
func DecodeGroup(s string) []int {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		panic("hihash: bad group encoding " + s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil
	}
	parts := strings.Split(body, ",")
	keys := make([]int, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscan(p, &keys[i]); err != nil {
			panic("hihash: bad group encoding " + s)
		}
	}
	return keys
}

// groupsOf partitions elems (keys of {1..T}) into per-group sorted key
// lists under the geometry p.
func groupsOf(p Params, elems []int) [][]int {
	out := make([][]int, p.G)
	sorted := append([]int(nil), elems...)
	sort.Ints(sorted)
	for _, k := range sorted {
		if k < 1 || k > p.T {
			panic(fmt.Sprintf("hihash: element %d out of range 1..%d", k, p.T))
		}
		g := GroupOf(k, p.G)
		out[g] = append(out[g], k)
	}
	return out
}

// CanonicalGroups returns the canonical per-group encodings of the
// abstract state elems under geometry p — the unique memory representation
// the table holds whenever its key set is elems. It panics if elems does
// not fit the geometry (some group over capacity), since such a state is
// unreachable.
func CanonicalGroups(p Params, elems []int) []string {
	p.Validate()
	groups := groupsOf(p, elems)
	out := make([]string, p.G)
	for g, keys := range groups {
		if len(keys) > p.B {
			panic(fmt.Sprintf("hihash: state %v overfills group %d (cap %d)", elems, g, p.B))
		}
		out[g] = EncodeGroup(keys)
	}
	return out
}
