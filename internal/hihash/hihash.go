// Package hihash implements the HICHT subsystem: a lock-free,
// history-independent concurrent hash table with open addressing, in the
// spirit of "History-Independent Concurrent Hash Tables" (Attiya, Bender,
// Farach-Colton, Oshman, Schiller; arXiv:2503.21016), carried out in the
// SQHI framework of the source PODC 2024 paper.
//
// The table is an array of G bucket groups of B slots each; a key k homes
// at group GroupOf(k, G) and probes the cyclic run GroupOf(k, G),
// GroupOf(k, G)+1, ... The design invariant is a canonical layout: the
// placement of every key is determined solely by the current key set,
// never by the insertion or deletion order. Two disciplines coexist:
//
//   - Bounded (the PR-2 stepping stone, retained): a key lives only in
//     its home group, in ascending-key slot order. A whole group is one
//     CAS word, so every relocation an insert or a tombstone-free delete
//     requires is folded into a single atomic compare-and-swap, and the
//     table is perfectly history independent (Definition 5) — every
//     reachable configuration holds a canonical memory. The cost is
//     fixed capacity: an insert into a full home group returns RspFull.
//
//   - Displacing (unbounded): keys spill into neighbouring groups in
//     ordered Robin Hood priority — smaller keys claim earlier groups of
//     their probe run — so a home group can carry load factor above 1,
//     and the group array grows online when probe runs get long. The
//     canonical layout (DisplacedGroups) is the one ascending-order
//     insertion produces, which is independent of the actual history.
//     Cross-group relocation spans two CAS words, so it cannot be atomic:
//     relocations plant per-slot marks, deletions plant a restore flag in
//     the hole they open, and every operation helps complete the
//     relocations it encounters. Perfect HI is provably out of reach for
//     this variant — adjacent canonical layouts differ in two or more
//     group words, which Proposition 6 forbids for single-word steps —
//     and the checker refutes it with a concrete witness; the variant is
//     state-quiescent HI (Definition 7), the class the HICHT paper itself
//     proves, machine-checked together with linearizability.
//
// The package ships the subsystem in both of the repository's worlds:
//
//   - simulated twins (NewSimHarness, NewDisplaceHarness) driven through
//     internal/sim and internal/harness, machine-checked by
//     internal/hicheck: the bounded twin for Perfect+StateQuiescent HI,
//     the displacing twin for StateQuiescent HI + linearizability
//     (including schedules that cross an online resize), plus ablations
//     the checker must refute (VariantAppend and DisplaceNoShift);
//   - a native port (Set, Map) over sync/atomic words, exposed through
//     internal/obj as HashSet/HashMap and through internal/shard as the
//     direct table backend replacing the per-shard universal construction.
package hihash

import (
	"fmt"
	"sort"
	"strings"
)

// RspFull is the response of an insert that found the key's group already
// holding its maximum number of keys. It is distinct from the acknowledge
// response 0 and the membership responses 0/1.
const RspFull = 2

// GroupOf returns the group (0..groups-1) that key probes, using a fixed
// splitmix64-style mixer so contiguous key ranges spread evenly. It is
// the hash function h of the canonical-layout invariant, shared by the
// specification, the simulated twin and the native port, and delegated to
// by shard.ShardOf so shard routing uses the identical mixer.
func GroupOf(key, groups int) int {
	z := uint64(key) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(groups))
}

// Params fixes one table geometry: keys are {1..T}, hashed into G groups
// of B slots each. The capacity of the table is G*B.
type Params struct {
	// T is the key domain size; keys are 1..T.
	T int
	// G is the number of bucket groups.
	G int
	// B is the number of slots per group (the group capacity).
	B int
}

// Validate panics if the geometry is malformed.
func (p Params) Validate() {
	if p.T < 1 {
		panic(fmt.Sprintf("hihash: invalid domain T=%d", p.T))
	}
	if p.G < 1 {
		panic(fmt.Sprintf("hihash: invalid group count G=%d", p.G))
	}
	if p.B < 1 {
		panic(fmt.Sprintf("hihash: invalid group capacity B=%d", p.B))
	}
}

// String renders the geometry for harness and implementation names.
func (p Params) String() string { return fmt.Sprintf("t=%d,g=%d,b=%d", p.T, p.G, p.B) }

// EncodeGroup renders a group's key set in canonical priority order:
// ascending keys inside braces, e.g. "{1,3}" ("{}" when empty). It is the
// slot layout of the simulated twin and the reference form for snapshot
// checks of the native port.
func EncodeGroup(keys []int) string {
	sorted := append([]int(nil), keys...)
	sort.Ints(sorted)
	parts := make([]string, len(sorted))
	for i, k := range sorted {
		parts[i] = fmt.Sprint(k)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// DecodeGroup parses an EncodeGroup rendering back into its sorted keys.
func DecodeGroup(s string) []int {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		panic("hihash: bad group encoding " + s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil
	}
	parts := strings.Split(body, ",")
	keys := make([]int, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscan(p, &keys[i]); err != nil {
			panic("hihash: bad group encoding " + s)
		}
	}
	return keys
}

// groupsOf partitions elems (keys of {1..T}) into per-group sorted key
// lists under the geometry p.
func groupsOf(p Params, elems []int) [][]int {
	out := make([][]int, p.G)
	sorted := append([]int(nil), elems...)
	sort.Ints(sorted)
	for _, k := range sorted {
		if k < 1 || k > p.T {
			panic(fmt.Sprintf("hihash: element %d out of range 1..%d", k, p.T))
		}
		g := GroupOf(k, p.G)
		out[g] = append(out[g], k)
	}
	return out
}

// CanonicalGroups returns the canonical per-group encodings of the
// abstract state elems under geometry p for the bounded (non-displacing)
// discipline — the unique memory representation the bounded table holds
// whenever its key set is elems. It panics if elems does not fit the
// geometry (some home group over capacity), since such a state is
// unreachable for the bounded table.
func CanonicalGroups(p Params, elems []int) []string {
	p.Validate()
	groups := groupsOf(p, elems)
	out := make([]string, p.G)
	for g, keys := range groups {
		if len(keys) > p.B {
			panic(fmt.Sprintf("hihash: state %v overfills group %d (cap %d)", elems, g, p.B))
		}
		out[g] = EncodeGroup(keys)
	}
	return out
}

// DisplacedGroups returns the canonical displaced layout of the abstract
// state elems under geometry p: the per-group sorted key lists that
// ascending-order insertion with ordered Robin Hood displacement
// produces. This is the unique memory representation of the displacing
// table (BuildCanon machine-checks order independence); when no home
// group holds more than B keys it coincides with the bounded layout of
// CanonicalGroups. It panics if elems exceeds the total capacity G*B.
func DisplacedGroups(p Params, elems []int) [][]int {
	p.Validate()
	sorted := append([]int(nil), elems...)
	sort.Ints(sorted)
	if len(sorted) > p.G*p.B {
		panic(fmt.Sprintf("hihash: state %v exceeds capacity %d", elems, p.G*p.B))
	}
	layout := make([][]int, p.G)
	for _, k := range sorted {
		if k < 1 || k > p.T {
			panic(fmt.Sprintf("hihash: element %d out of range 1..%d", k, p.T))
		}
		seqPlace(layout, p, k)
	}
	return layout
}

// seqPlace inserts key c into the sequential displaced layout: walk c's
// probe run; take the first free slot; at a full group, a key smaller
// than the group's maximum evicts it (the ordered Robin Hood priority)
// and the evicted key continues the walk from the next group.
func seqPlace(layout [][]int, p Params, c int) {
	g := GroupOf(c, p.G)
	for hops := 0; hops <= p.G*(p.B+1); hops++ {
		keys := layout[g]
		if idx := indexOf(keys, c); idx >= 0 {
			return
		}
		if len(keys) < p.B {
			layout[g] = insertSorted(keys, c)
			return
		}
		if m := keys[len(keys)-1]; c < m {
			layout[g] = insertSorted(keys[:len(keys)-1], c)
			c = m
		}
		g = (g + 1) % p.G
	}
	panic("hihash: displaced placement did not terminate")
}

// probeCrosses reports whether key c, residing at group at, passed
// through group through on its probe run — i.e. through lies strictly
// before at in cyclic order starting at c's home group. It is the
// condition deciding which displaced keys a backward shift may pull into
// a freed slot.
func probeCrosses(c, at, through, groups int) bool {
	home := GroupOf(c, groups)
	return (through-home+groups)%groups < (at-home+groups)%groups
}

// DisplacedSnapshot renders the canonical displaced layout of elems for a
// (domain, nGroups) table in the Snapshot format of the native Set.
func DisplacedSnapshot(domain, nGroups int, elems []int) string {
	layout := DisplacedGroups(Params{T: domain, G: nGroups, B: SlotsPerGroup}, elems)
	parts := make([]string, nGroups)
	for g, keys := range layout {
		parts[g] = fmt.Sprintf("g%d=%s", g, EncodeGroup(keys))
	}
	return strings.Join(parts, " | ")
}
