package hihash_test

import (
	"math/rand"
	"testing"

	"hiconc/internal/hihash"
)

// seqModel is the obvious sequential displaced table: insert walks the
// probe run evicting larger keys (ordered Robin Hood), delete pulls the
// smallest crossing key back into the hole and cascades. It exists to
// cross-check that DisplacedGroups — defined as ascending-order
// insertion — is what any insertion/deletion history converges to.
type seqModel struct {
	p      hihash.Params
	layout [][]int
}

func newSeqModel(p hihash.Params) *seqModel {
	return &seqModel{p: p, layout: make([][]int, p.G)}
}

func (m *seqModel) insert(c int) {
	g := hihash.GroupOf(c, m.p.G)
	for {
		keys := m.layout[g]
		for _, k := range keys {
			if k == c {
				return
			}
		}
		if len(keys) < m.p.B {
			m.layout[g] = sortedInsert(keys, c)
			return
		}
		if max := keys[len(keys)-1]; c < max {
			m.layout[g] = sortedInsert(keys[:len(keys)-1], c)
			c = max
		}
		g = (g + 1) % m.p.G
	}
}

func (m *seqModel) remove(c int) {
	g := hihash.GroupOf(c, m.p.G)
	for dist := 0; dist < m.p.G; dist++ {
		keys := m.layout[g]
		for i, k := range keys {
			if k == c {
				m.layout[g] = append(append([]int(nil), keys[:i]...), keys[i+1:]...)
				m.restore(g)
				return
			}
		}
		if len(keys) < m.p.B {
			return
		}
		g = (g + 1) % m.p.G
	}
}

// restore is the sequential backward shift: pull the smallest key whose
// probe run crossed the hole, cascade from its old group.
func (m *seqModel) restore(g int) {
	for {
		if len(m.layout[g]) >= m.p.B {
			return
		}
		best, bestAt := 0, -1
		j := (g + 1) % m.p.G
		for dist := 1; dist < m.p.G; dist++ {
			for _, k := range m.layout[j] {
				if probeCrossesTest(k, j, g, m.p.G) && (best == 0 || k < best) {
					best, bestAt = k, j
				}
			}
			if len(m.layout[j]) < m.p.B {
				break
			}
			j = (j + 1) % m.p.G
		}
		if best == 0 {
			return
		}
		keys := m.layout[bestAt]
		for i, k := range keys {
			if k == best {
				m.layout[bestAt] = append(append([]int(nil), keys[:i]...), keys[i+1:]...)
				break
			}
		}
		m.layout[g] = sortedInsert(m.layout[g], best)
		g = bestAt
	}
}

func probeCrossesTest(c, at, through, groups int) bool {
	home := hihash.GroupOf(c, groups)
	return (through-home+groups)%groups < (at-home+groups)%groups
}

func sortedInsert(keys []int, c int) []int {
	i := 0
	for i < len(keys) && keys[i] < c {
		i++
	}
	out := make([]int, 0, len(keys)+1)
	out = append(out, keys[:i]...)
	out = append(out, c)
	out = append(out, keys[i:]...)
	return out
}

func layoutEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for g := range a {
		if len(a[g]) != len(b[g]) {
			return false
		}
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				return false
			}
		}
	}
	return true
}

// TestDisplacedGroupsOrderIndependent: every insertion order (and
// interleaved deletions through the sequential model) converges to the
// ascending-order layout DisplacedGroups defines. This is the sequential
// half of the canonical-layout claim, over random trials on geometries
// where home groups overflow.
func TestDisplacedGroupsOrderIndependent(t *testing.T) {
	for _, p := range []hihash.Params{
		{T: 12, G: 3, B: 2},
		{T: 20, G: 5, B: 2},
		{T: 9, G: 2, B: 4},
	} {
		for trial := 0; trial < 50; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)))
			var target []int
			for k := 1; k <= p.T; k++ {
				if rng.Intn(2) == 0 && len(target) < p.G*p.B {
					target = append(target, k)
				}
			}
			want := hihash.DisplacedGroups(p, target)

			// Random insertion order with churn of non-target keys.
			m := newSeqModel(p)
			order := append([]int(nil), target...)
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, k := range order {
				if decoy := rng.Intn(p.T) + 1; !inSet(target, decoy) && countKeys(m.layout) < p.G*p.B-1 {
					m.insert(decoy)
					m.remove(decoy)
				}
				m.insert(k)
			}
			if !layoutEqual(m.layout, want) {
				t.Fatalf("%v trial %d: order %v\n got:  %v\n want: %v", p, trial, order, m.layout, want)
			}
		}
	}
}

func countKeys(layout [][]int) int {
	n := 0
	for _, g := range layout {
		n += len(g)
	}
	return n
}

func inSet(keys []int, k int) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// TestDisplacedGroupsBoundedAgreement: on states where no home group
// overflows, the displaced layout coincides with the bounded one — the
// compatibility that lets CanonicalSetSnapshot serve both disciplines.
func TestDisplacedGroupsBoundedAgreement(t *testing.T) {
	p := hihash.Params{T: 24, G: 12, B: 4}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var elems []int
		for k := 1; k <= p.T; k++ {
			if rng.Intn(3) == 0 {
				elems = append(elems, k)
			}
		}
		perHome := map[int]int{}
		over := false
		for _, k := range elems {
			perHome[hihash.GroupOf(k, p.G)]++
			if perHome[hihash.GroupOf(k, p.G)] > p.B {
				over = true
			}
		}
		if over {
			continue
		}
		bounded := hihash.CanonicalGroups(p, elems)
		displaced := hihash.DisplacedGroups(p, elems)
		for g := range bounded {
			if bounded[g] != hihash.EncodeGroup(displaced[g]) {
				t.Fatalf("trial %d group %d: bounded %s, displaced %v", trial, g, bounded[g], displaced[g])
			}
		}
	}
}

// TestDisplaceSetSpill: with a single home group receiving more than
// SlotsPerGroup keys, the displacing table spills to the neighbour
// instead of answering RspFull, and the memory is the canonical
// displaced layout.
func TestDisplaceSetSpill(t *testing.T) {
	s := hihash.NewDisplaceSet(10, 2)
	var keys []int
	for k := 1; k <= 6; k++ {
		if rsp := s.Insert(k); rsp != 0 {
			t.Fatalf("Insert(%d) = %d, want 0 (no RspFull in the displacing table)", k, rsp)
		}
		keys = append(keys, k)
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("missing %d after spill inserts", k)
		}
	}
	if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(10, s.NumGroups(), keys); got != want {
		t.Fatalf("snapshot after spills:\n got:  %s\n want: %s", got, want)
	}
}

// TestDisplaceSetRemoveRestores: deleting a key pulls displaced keys
// back (tombstone-free backward shift), leaving the canonical layout of
// the remaining set.
func TestDisplaceSetRemoveRestores(t *testing.T) {
	s := hihash.NewDisplaceSet(12, 2)
	for k := 1; k <= 7; k++ {
		s.Insert(k)
	}
	for _, k := range []int{3, 6, 1} {
		s.Remove(k)
		if s.Contains(k) {
			t.Fatalf("contains %d after remove", k)
		}
		if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(12, s.NumGroups(), s.Elements()); got != want {
			t.Fatalf("snapshot after Remove(%d):\n got:  %s\n want: %s", k, got, want)
		}
	}
}

// TestDisplaceSetCanonicalAcrossHistories: random histories reaching the
// same key set leave byte-identical memories equal to the canonical
// displaced snapshot, at load factors the bounded table cannot reach.
func TestDisplaceSetCanonicalAcrossHistories(t *testing.T) {
	const domain, nGroups = 64, 10 // capacity 40, load pushed past 1 per home group
	target := []int{3, 9, 10, 11, 17, 25, 31, 38, 40, 44, 52, 57, 60, 64}
	run := func(seed int64) string {
		s := hihash.NewDisplaceSet(domain, nGroups)
		rng := rand.New(rand.NewSource(seed))
		keys := append([]int(nil), target...)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			decoy := rng.Intn(domain) + 1
			for inSet(target, decoy) {
				decoy = decoy%domain + 1
			}
			s.Insert(decoy)
			s.Remove(decoy)
			if rsp := s.Insert(k); rsp != 0 {
				t.Fatalf("Insert(%d) = %d", k, rsp)
			}
		}
		for k := 1; k <= domain; k++ {
			if !inSet(target, k) {
				s.Remove(k)
			}
		}
		return s.Snapshot()
	}
	a, b := run(1), run(2)
	if a != b {
		t.Fatalf("same key set, different memories:\n a: %s\n b: %s", a, b)
	}
	s := hihash.NewDisplaceSet(domain, nGroups)
	for _, k := range target {
		s.Insert(k)
	}
	if want := hihash.CanonicalSetSnapshot(domain, s.NumGroups(), target); a != want && s.NumGroups() == nGroups {
		t.Fatalf("memory not canonical:\n got:  %s\n want: %s", a, want)
	}
}

// TestDisplaceSetGrow: the table grows online — explicitly and under
// insert pressure — and the post-resize memory is the canonical layout
// of the doubled geometry with every key retained.
func TestDisplaceSetGrow(t *testing.T) {
	s := hihash.NewDisplaceSet(200, 4) // capacity 16
	var keys []int
	for k := 1; k <= 60; k++ {
		if rsp := s.Insert(k); rsp != 0 {
			t.Fatalf("Insert(%d) = %d", k, rsp)
		}
		keys = append(keys, k)
	}
	if s.NumGroups() <= 4 {
		t.Fatalf("table did not grow under pressure: %d groups for %d keys", s.NumGroups(), len(keys))
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("missing %d after growth", k)
		}
	}
	if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(200, s.NumGroups(), keys); got != want {
		t.Fatalf("snapshot after growth:\n got:  %s\n want: %s", got, want)
	}
	before := s.NumGroups()
	s.Grow()
	if s.NumGroups() != 2*before {
		t.Fatalf("explicit Grow: %d groups, want %d", s.NumGroups(), 2*before)
	}
	if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(200, s.NumGroups(), keys); got != want {
		t.Fatalf("snapshot after explicit Grow:\n got:  %s\n want: %s", got, want)
	}
}

// TestDisplaceSetHomeOverload: a home group loaded past its slot
// capacity (load factor > 1 for that group) keeps absorbing inserts with
// zero RspFull — the acceptance condition of E22.
func TestDisplaceSetHomeOverload(t *testing.T) {
	const domain = 400
	s := hihash.NewDisplaceSet(domain, 16)
	home := hihash.GroupOf(1, 16)
	var mates []int
	for k := 1; k <= domain && len(mates) < 3*hihash.SlotsPerGroup; k++ {
		if hihash.GroupOf(k, 16) == home {
			mates = append(mates, k)
		}
	}
	if len(mates) < 2*hihash.SlotsPerGroup {
		t.Skipf("domain too small to overload a home group: %d mates", len(mates))
	}
	for _, k := range mates {
		if rsp := s.Insert(k); rsp != 0 {
			t.Fatalf("Insert(%d) = %d, want 0", k, rsp)
		}
	}
	for _, k := range mates {
		if !s.Contains(k) {
			t.Fatalf("missing %d with overloaded home group", k)
		}
	}
	if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), mates); got != want {
		t.Fatalf("snapshot with overloaded home group:\n got:  %s\n want: %s", got, want)
	}
}
