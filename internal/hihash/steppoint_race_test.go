package hihash

import (
	"sync"
	"sync/atomic"
	"testing"

	"hiconc/internal/hirec"
	"hiconc/internal/histats"
)

// TestHookChurnUnderTraffic races the three observer install paths — the
// steppoint hook, the histats recorder and the hirec flight recorder —
// against live table traffic.
// Sites that loaded an old pointer finish against the old observer, so
// churning both while four goroutines insert, remove, look up and grow
// must be race-clean (this test exists for -race) and must never lose
// table operations.
func TestHookChurnUnderTraffic(t *testing.T) {
	const (
		workers = 4
		domain  = 64
		opsPer  = 3000
		flips   = 300
	)
	s := NewDisplaceSet(domain, 4)
	var fired atomic.Uint64
	hook := func(Steppoint) { fired.Add(1) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := (w*opsPer+i)%domain + 1
				s.Insert(k)
				s.Contains(k)
				if i%3 == 0 {
					s.Remove(k)
				}
				if w == 0 && i == opsPer/2 {
					s.Grow()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // churn both observers while the table runs
		defer wg.Done()
		for i := 0; i < flips; i++ {
			SetStepHook(hook)
			histats.Enable()
			hirec.Enable(1 << 12)
			SetStepHook(nil)
			histats.Disable()
			hirec.Disable()
		}
	}()
	wg.Wait()
	SetStepHook(nil)
	histats.Disable()
	hirec.Disable()

	// The table itself must be unharmed: every key whose last op was an
	// insert is present.
	for k := 1; k <= domain; k++ {
		s.Insert(k)
	}
	for k := 1; k <= domain; k++ {
		if !s.Contains(k) {
			t.Fatalf("key %d lost after hook churn", k)
		}
	}
	// Sanity-check the wiring with the hook held installed: the racing
	// windows above may all miss a step on a loaded single-core machine,
	// so don't require fired > 0 from the churn itself.
	SetStepHook(hook)
	before := fired.Load()
	s.Remove(1)
	s.Insert(1)
	SetStepHook(nil)
	if fired.Load() == before {
		t.Error("the hook never observed a step while installed")
	}
}
