package hihash_test

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/spec"
)

func ins(v int) core.Op  { return core.Op{Name: spec.OpInsert, Arg: v} }
func rem(v int) core.Op  { return core.Op{Name: spec.OpRemove, Arg: v} }
func look(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }

// sameGroupKeys returns two distinct keys of {1..T} hashing to the same
// group, which must exist whenever T > G.
func sameGroupKeys(t *testing.T, T, G int) (int, int) {
	t.Helper()
	byGroup := map[int]int{}
	for k := 1; k <= T; k++ {
		g := hihash.GroupOf(k, G)
		if prev, ok := byGroup[g]; ok {
			return prev, k
		}
		byGroup[g] = k
	}
	t.Fatalf("no two keys of 1..%d share a group for G=%d", T, G)
	return 0, 0
}

func TestGroupOfRange(t *testing.T) {
	for _, groups := range []int{1, 2, 3, 16} {
		hit := make([]int, groups)
		for key := 1; key <= 4096; key++ {
			g := hihash.GroupOf(key, groups)
			if g < 0 || g >= groups {
				t.Fatalf("GroupOf(%d, %d) = %d out of range", key, groups, g)
			}
			hit[g]++
		}
		for g, c := range hit {
			if c == 0 {
				t.Errorf("G=%d: group %d receives no keys out of 4096", groups, g)
			}
		}
	}
}

func TestGroupEncoding(t *testing.T) {
	cases := [][]int{nil, {3}, {1, 2, 7}}
	for _, keys := range cases {
		enc := hihash.EncodeGroup(keys)
		got := hihash.DecodeGroup(enc)
		if len(got) != len(keys) {
			t.Fatalf("DecodeGroup(%q) = %v, want %v", enc, got, keys)
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("DecodeGroup(%q) = %v, want %v", enc, got, keys)
			}
		}
	}
	if enc := hihash.EncodeGroup([]int{7, 1, 2}); enc != "{1,2,7}" {
		t.Errorf("EncodeGroup sorts to %q, want {1,2,7}", enc)
	}
}

func TestSpecFullResponse(t *testing.T) {
	p := hihash.Params{T: 4, G: 2, B: 1}
	sp := hihash.NewSpec(p)
	a, b := sameGroupKeys(t, p.T, p.G)
	st, rsp := sp.Apply(sp.Init(), ins(a))
	if rsp != 0 {
		t.Fatalf("first insert responded %d", rsp)
	}
	st2, rsp := sp.Apply(st, ins(b))
	if rsp != hihash.RspFull || st2 != st {
		t.Fatalf("insert into full group: (%q, %d), want unchanged state and RspFull", st2, rsp)
	}
	// Removing a frees the slot for b.
	st3, _ := sp.Apply(st, rem(a))
	if _, rsp := sp.Apply(st3, ins(b)); rsp != 0 {
		t.Fatalf("insert after remove responded %d", rsp)
	}
}

func TestSpecReadOnlyAndReversible(t *testing.T) {
	sp := hihash.NewSpec(hihash.Params{T: 3, G: 2, B: 2})
	if err := core.VerifyReadOnly(sp, 100); err != nil {
		t.Fatal(err)
	}
	rev, err := core.Reversible(sp, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rev {
		t.Error("bounded hash table spec should be reversible")
	}
}

func TestCanonicalGroupsMatchesSpecStates(t *testing.T) {
	p := hihash.Params{T: 3, G: 2, B: 2}
	sp := hihash.NewSpec(p)
	states, err := core.Reachable(sp, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		encs := hihash.CanonicalGroups(p, hihash.StateElems(st))
		if len(encs) != p.G {
			t.Fatalf("state %q: %d group encodings, want %d", st, len(encs), p.G)
		}
	}
}
