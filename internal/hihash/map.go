package hihash

import (
	"fmt"
	"strings"
	"sync/atomic"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Map is the native HICHT multi-counter: a lock-free, history-independent
// map from keys {1..keys} to int counts, hash-partitioned into buckets.
// Each bucket holds an atomic pointer to an immutable slice of conc.KV
// pairs sorted by key with zero counts elided — the canonical form — and
// every update replaces the bucket with a freshly built canonical slice
// via one pointer CAS. The logical memory representation (Snapshot) is
// therefore a pure function of the abstract state at every instant, and
// reads are a single atomic load. Unlike Set there is no capacity bound:
// buckets grow with their live key count.
//
// It mirrors shard.Map's interface (Inc/Dec/Get with previous-count
// responses) so the two backends are interchangeable in benchmarks, but
// needs no per-process handles.
type Map struct {
	keys    int
	buckets []atomic.Pointer[[]conc.KV]
}

var _ conc.Applier = (*Map)(nil)

// NewMap creates a multi-counter over keys {1..keys} with nBuckets
// buckets.
func NewMap(keys, nBuckets int) *Map {
	if keys < 1 {
		panic(fmt.Sprintf("hihash: invalid key count %d", keys))
	}
	if nBuckets < 1 {
		panic(fmt.Sprintf("hihash: invalid bucket count %d", nBuckets))
	}
	return &Map{keys: keys, buckets: make([]atomic.Pointer[[]conc.KV], nBuckets)}
}

// Name implements conc.Applier.
func (m *Map) Name() string { return fmt.Sprintf("hihash-map[g=%d]", len(m.buckets)) }

// NumBuckets returns the bucket count.
func (m *Map) NumBuckets() int { return len(m.buckets) }

func (m *Map) checkKey(key int) {
	if key < 1 || key > m.keys {
		panic(fmt.Sprintf("hihash: map key %d out of range 1..%d", key, m.keys))
	}
}

// load returns the bucket's canonical KV slice (nil when empty).
func (m *Map) load(b int) []conc.KV {
	if p := m.buckets[b].Load(); p != nil {
		return *p
	}
	return nil
}

// Get returns key's current count with a single atomic load.
func (m *Map) Get(key int) int {
	m.checkKey(key)
	for _, kv := range m.load(GroupOf(key, len(m.buckets))) {
		if kv.K == key {
			return kv.V
		}
	}
	return 0
}

// add applies delta to key's count and returns the previous count.
func (m *Map) add(key, delta int) int {
	m.checkKey(key)
	b := GroupOf(key, len(m.buckets))
	for {
		old := m.buckets[b].Load()
		var kvs []conc.KV
		if old != nil {
			kvs = *old
		}
		i := 0
		for i < len(kvs) && kvs[i].K < key {
			i++
		}
		cur := 0
		present := i < len(kvs) && kvs[i].K == key
		if present {
			cur = kvs[i].V
		}
		next := cur + delta
		out := make([]conc.KV, 0, len(kvs)+1)
		out = append(out, kvs[:i]...)
		if next != 0 {
			out = append(out, conc.KV{K: key, V: next})
		}
		if present {
			out = append(out, kvs[i+1:]...)
		} else {
			out = append(out, kvs[i:]...)
		}
		// Canonical empty bucket is the nil pointer, never a pointer to an
		// empty slice.
		var repl *[]conc.KV
		if len(out) > 0 {
			repl = &out
		}
		if m.buckets[b].CompareAndSwap(old, repl) {
			return cur
		}
	}
}

// Inc increments key's count, returning the previous count.
func (m *Map) Inc(key int) int { return m.add(key, 1) }

// Dec decrements key's count, returning the previous count.
func (m *Map) Dec(key int) int { return m.add(key, -1) }

// Apply implements conc.Applier (the pid is unused).
func (m *Map) Apply(_ int, op core.Op) int {
	switch op.Name {
	case spec.OpInc:
		return m.Inc(op.Arg)
	case spec.OpDec:
		return m.Dec(op.Arg)
	case spec.OpRead:
		return m.Get(op.Arg)
	default:
		panic("hihash: map: unknown op " + op.Name)
	}
}

// Counts returns the nonzero counts keyed by key. Per-bucket reads are
// atomic but the composite read is not; call it only at quiescence.
func (m *Map) Counts() map[int]int {
	out := map[int]int{}
	for b := range m.buckets {
		for _, kv := range m.load(b) {
			out[kv.K] = kv.V
		}
	}
	return out
}

// Snapshot renders the logical memory representation: every bucket's
// canonical KV list.
func (m *Map) Snapshot() string {
	parts := make([]string, len(m.buckets))
	for b := range m.buckets {
		parts[b] = fmt.Sprintf("g%d=%s", b, encodeKVs(m.load(b)))
	}
	return strings.Join(parts, " | ")
}

// CanonicalMapSnapshot returns the canonical logical representation of
// the abstract state counts for a (keys, nBuckets) map.
func CanonicalMapSnapshot(keys, nBuckets int, counts map[int]int) string {
	perBucket := make([][]conc.KV, nBuckets)
	for k := 1; k <= keys; k++ {
		if v, ok := counts[k]; ok && v != 0 {
			b := GroupOf(k, nBuckets)
			perBucket[b] = append(perBucket[b], conc.KV{K: k, V: v})
		}
	}
	for k := range counts {
		if k < 1 || k > keys {
			panic(fmt.Sprintf("hihash: canonical key %d out of range 1..%d", k, keys))
		}
	}
	parts := make([]string, nBuckets)
	for b := range parts {
		parts[b] = fmt.Sprintf("g%d=%s", b, encodeKVs(perBucket[b]))
	}
	return strings.Join(parts, " | ")
}

// encodeKVs renders a canonical KV list, e.g. "{3:2,7:-1}".
func encodeKVs(kvs []conc.KV) string {
	if len(kvs) == 0 {
		return "{}"
	}
	parts := make([]string, len(kvs))
	for i, kv := range kvs {
		parts[i] = fmt.Sprintf("%d:%d", kv.K, kv.V)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
