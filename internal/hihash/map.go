package hihash

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
)

// Map is the native HICHT multi-counter: a lock-free, history-independent
// map from keys {1..keys} to int counts, hash-partitioned into buckets.
// Each bucket holds an atomic pointer to an immutable slice of conc.KV
// pairs sorted by key with zero counts elided — the canonical form — and
// every update replaces the bucket with a freshly built canonical slice
// via one pointer CAS. The logical memory representation (Snapshot) is
// therefore a pure function of the abstract state at every instant, and
// reads are a single atomic load.
//
// Unlike Set there is no per-bucket capacity bound — buckets grow with
// their live key count — but long buckets cost linear scans, so the
// bucket array resizes online: when a bucket's entry list outgrows
// bucketLimit the array doubles and the old buckets drain cooperatively
// (freeze, then copy-initialize, exactly once per bucket) into the new
// one. As with Set, the bucket count is a deterministic function of the
// load the map has seen, so the representation stays a pure function of
// (counts, current bucket count).
//
// It mirrors shard.Map's interface (Inc/Dec/Get with previous-count
// responses) so the two backends are interchangeable in benchmarks, but
// needs no per-process handles.
type Map struct {
	keys int
	st   atomic.Pointer[mapState]
}

// bucket is one immutable bucket value: a canonical sorted KV list, plus
// the frozen flag the migration protocol sets on every old bucket before
// any entry moves (a frozen bucket rejects updates, so its contents can
// be copied exactly once).
type bucket struct {
	kvs    []conc.KV
	frozen bool
}

// uninit is the sentinel value of a new-array bucket whose initial
// contents (the frozen old entries hashing to it) have not been computed
// yet. It is distinct from nil, which canonically encodes an empty
// bucket.
var uninit = &bucket{}

// mapState is one geometry of the map, with migration bookkeeping.
type mapState struct {
	buckets []atomic.Pointer[bucket]
	// prev is the frozen state being copied into this one; nil when
	// migration is complete.
	prev atomic.Pointer[mapState]
	// left counts this state's buckets still uninitialized during a
	// migration into it.
	left atomic.Int64
}

var _ conc.Applier = (*Map)(nil)

// bucketLimit is the bucket length that triggers an online doubling of
// the bucket array.
const bucketLimit = 8

// NewMap creates a multi-counter over keys {1..keys} with nBuckets
// buckets; the bucket array doubles online when buckets outgrow
// bucketLimit entries.
func NewMap(keys, nBuckets int) *Map {
	if keys < 1 {
		panic(fmt.Sprintf("hihash: invalid key count %d", keys))
	}
	if nBuckets < 1 {
		panic(fmt.Sprintf("hihash: invalid bucket count %d", nBuckets))
	}
	m := &Map{keys: keys}
	m.st.Store(&mapState{buckets: make([]atomic.Pointer[bucket], nBuckets)})
	return m
}

// Name implements conc.Applier.
func (m *Map) Name() string { return fmt.Sprintf("hihash-map[g=%d]", m.NumBuckets()) }

// NumBuckets returns the current bucket count.
func (m *Map) NumBuckets() int { return len(m.st.Load().buckets) }

func (m *Map) checkKey(key int) {
	if key < 1 || key > m.keys {
		panic(fmt.Sprintf("hihash: map key %d out of range 1..%d", key, m.keys))
	}
}

// kvsOf returns the canonical KV list of bucket b in st, nil when empty
// or uninitialized.
func kvsOf(st *mapState, b int) []conc.KV {
	if p := st.buckets[b].Load(); p != nil {
		return p.kvs
	}
	return nil
}

// Get returns key's current count. During a migration an uninitialized
// new bucket defers to the frozen old array, so reads never block on the
// copy.
func (m *Map) Get(key int) int {
	m.checkKey(key)
	for {
		st := m.st.Load()
		b := GroupOf(key, len(st.buckets))
		p := st.buckets[b].Load()
		if p == uninit {
			old := st.prev.Load()
			if old == nil {
				continue
			}
			return lookupKV(kvsOf(old, GroupOf(key, len(old.buckets))), key)
		}
		if p == nil {
			return 0
		}
		return lookupKV(p.kvs, key)
	}
}

func lookupKV(kvs []conc.KV, key int) int {
	for _, kv := range kvs {
		if kv.K == key {
			return kv.V
		}
	}
	return 0
}

// bucketPool recycles bucket values (and, through their kvs capacity,
// the entry arrays) across updates. Only buckets that were NEVER
// published may be recycled: a bucket that won its pointer CAS is
// reachable by concurrent readers indefinitely, so add returns a bucket
// to the pool exactly on the two paths where no other goroutine can
// have seen it — the canonical-empty result (repl stays nil) and the
// lost CAS. Under churn the steady state is one pooled bucket per
// concurrent updater, each carrying a grown entry array, so most
// updates allocate nothing.
var bucketPool = sync.Pool{New: func() any { return new(bucket) }}

// add applies delta to key's count and returns the previous count,
// helping any migration initialize the key's bucket first.
func (m *Map) add(key, delta int) int {
	m.checkKey(key)
	for {
		st := m.st.Load()
		b := GroupOf(key, len(st.buckets))
		old := st.buckets[b].Load()
		if old == uninit {
			m.initBucket(st, b)
			continue
		}
		if old != nil && old.frozen {
			// This state is being drained into a larger one; move over.
			m.helpGrow(st)
			continue
		}
		var kvs []conc.KV
		if old != nil {
			kvs = old.kvs
		}
		i := 0
		for i < len(kvs) && kvs[i].K < key {
			i++
		}
		cur := 0
		present := i < len(kvs) && kvs[i].K == key
		if present {
			cur = kvs[i].V
		}
		next := cur + delta
		nb := bucketPool.Get().(*bucket)
		out := append(nb.kvs[:0], kvs[:i]...)
		if next != 0 {
			out = append(out, conc.KV{K: key, V: next})
		}
		if present {
			out = append(out, kvs[i+1:]...)
		} else {
			out = append(out, kvs[i:]...)
		}
		nb.kvs = out
		nb.frozen = false
		// Canonical empty bucket is the nil pointer, never a pointer to
		// an empty list.
		var repl *bucket
		if len(out) > 0 {
			repl = nb
		} else {
			bucketPool.Put(nb)
		}
		// The whole update is this one CAS of a complete canonical
		// bucket — the Map analogue of SpBoundedUpdate, with no
		// intermediate window to label; Map crash exposure is covered by
		// the E23 raw-dump twin checks rather than the Set's steppoint
		// matrix.
		//hilint:allow steppoint (single-CAS canonical bucket replace: no intermediate window; covered by E23 map twins)
		if st.buckets[b].CompareAndSwap(old, repl) {
			histats.Inc(histats.CtrMapUpdate)
			histats.Observe(histats.HistBucketLen, uint64(len(out)))
			if len(out) > bucketLimit {
				m.grow(st)
			}
			return cur
		}
		if repl != nil {
			// Lost the race: repl was never published, no reader holds it.
			bucketPool.Put(repl)
		}
		histats.Inc(histats.CtrMapCASFail)
	}
}

// Inc increments key's count, returning the previous count.
func (m *Map) Inc(key int) int { return m.add(key, 1) }

// Dec decrements key's count, returning the previous count.
func (m *Map) Dec(key int) int { return m.add(key, -1) }

// Grow doubles the bucket array (migrating all entries) and returns when
// the migration is complete.
func (m *Map) Grow() { m.grow(m.st.Load()) }

// grow doubles the bucket array if st is still current: freeze every old
// bucket, publish the new state (all buckets uninitialized), then
// initialize every new bucket from the frozen old entries. The frozen
// old array is immutable, so initialization is a pure function and any
// number of helpers may race it.
func (m *Map) grow(st *mapState) {
	cur := m.st.Load()
	if p := cur.prev.Load(); p != nil {
		m.finishGrow(cur, p)
	}
	if cur != st {
		return
	}
	if len(cur.buckets) >= m.keys {
		// At one bucket per possible key further doubling cannot shorten
		// buckets (collisions are collisions); refuse, like Set's
		// maxGroups cap, so adversarial hashes cannot drive runaway
		// growth.
		return
	}
	// Freeze the old buckets so their contents are final.
	for b := range cur.buckets {
		for {
			p := cur.buckets[b].Load()
			if p != nil && p.frozen {
				break
			}
			var kvs []conc.KV
			if p != nil {
				kvs = p.kvs
			}
			// Freezing republishes the same canonical kvs with the
			// frozen bit set: the reachable representation is unchanged,
			// so there is no crash window distinct from pre-freeze.
			//hilint:allow steppoint (freeze republishes identical kvs; representation unchanged, covered by E23 map twins)
			if cur.buckets[b].CompareAndSwap(p, &bucket{kvs: kvs, frozen: true}) {
				break
			}
		}
	}
	next := &mapState{buckets: make([]atomic.Pointer[bucket], 2*len(cur.buckets))}
	for b := range next.buckets {
		// next is private until the m.st CAS below publishes it; a
		// pre-publication Store is not a shared-memory transition.
		//hilint:allow steppoint (pre-publication initialization of a private array)
		next.buckets[b].Store(uninit)
	}
	next.left.Store(int64(len(next.buckets)))
	next.prev.Store(cur)
	if m.st.CompareAndSwap(cur, next) {
		histats.Inc(histats.CtrMapGrow)
		m.finishGrow(next, cur)
	} else {
		m.helpGrow(m.st.Load())
	}
}

// helpGrow pushes an in-flight migration forward (or starts the grow a
// frozen bucket implies if the new state is not yet published).
func (m *Map) helpGrow(st *mapState) {
	cur := m.st.Load()
	if p := cur.prev.Load(); p != nil {
		m.finishGrow(cur, p)
		return
	}
	if cur == st {
		// Frozen buckets but no successor yet: a grow is between freeze
		// and publish; retrying the caller's loop lets it land.
		m.grow(st)
	}
}

// finishGrow initializes every uninitialized bucket of next from the
// frozen old state, then detaches prev.
func (m *Map) finishGrow(next, old *mapState) {
	for b := range next.buckets {
		m.initFrom(next, old, b)
	}
	if next.left.Load() == 0 {
		next.prev.CompareAndSwap(old, nil)
	}
}

// initBucket initializes one uninitialized bucket of st during a
// migration.
func (m *Map) initBucket(st *mapState, b int) {
	old := st.prev.Load()
	if old == nil {
		return
	}
	m.initFrom(st, old, b)
	if st.left.Load() == 0 {
		st.prev.CompareAndSwap(old, nil)
	}
}

// initFrom computes new bucket b's canonical initial contents — the
// frozen old entries hashing to it — and installs them with a single
// CAS from the uninit sentinel. Losing the CAS means another helper
// installed the identical value.
func (m *Map) initFrom(next, old *mapState, b int) {
	if next.buckets[b].Load() != uninit {
		return
	}
	var kvs []conc.KV
	for ob := range old.buckets {
		for _, kv := range kvsOf(old, ob) {
			if GroupOf(kv.K, len(next.buckets)) == b {
				kvs = append(kvs, kv)
			}
		}
	}
	sortKVs(kvs)
	var repl *bucket
	if len(kvs) > 0 {
		repl = &bucket{kvs: kvs}
	}
	// Copy-initialization is idempotent (every helper computes the same
	// canonical kvs from the frozen old array, and only the first CAS
	// lands): a crash mid-copy leaves uninit, which the next reader or
	// helper resolves identically — covered by the E23 map twin checks.
	//hilint:allow steppoint (idempotent copy-init from frozen buckets; covered by E23 map twins)
	if next.buckets[b].CompareAndSwap(uninit, repl) {
		next.left.Add(-1)
	}
}

func sortKVs(kvs []conc.KV) {
	for i := 1; i < len(kvs); i++ {
		for j := i; j > 0 && kvs[j].K < kvs[j-1].K; j-- {
			kvs[j], kvs[j-1] = kvs[j-1], kvs[j]
		}
	}
}

// Apply implements conc.Applier (the pid is unused).
func (m *Map) Apply(_ int, op core.Op) int {
	switch op.Name {
	case spec.OpInc:
		return m.Inc(op.Arg)
	case spec.OpDec:
		return m.Dec(op.Arg)
	case spec.OpRead:
		return m.Get(op.Arg)
	default:
		panic("hihash: map: unknown op " + op.Name)
	}
}

// Counts returns the nonzero counts keyed by key. Per-bucket reads are
// atomic but the composite read is not; call it only at quiescence.
func (m *Map) Counts() map[int]int {
	out := map[int]int{}
	st := m.st.Load()
	old := st.prev.Load()
	for b := range st.buckets {
		p := st.buckets[b].Load()
		if p == uninit {
			continue
		}
		if p != nil {
			for _, kv := range p.kvs {
				out[kv.K] = kv.V
			}
		}
	}
	if old != nil {
		for b := range old.buckets {
			for _, kv := range kvsOf(old, b) {
				if st.buckets[GroupOf(kv.K, len(st.buckets))].Load() == uninit {
					out[kv.K] = kv.V
				}
			}
		}
	}
	return out
}

// Snapshot renders the logical memory representation: every bucket's
// canonical KV list. At quiescence (migration complete) it equals
// CanonicalMapSnapshot of the current counts and bucket count.
func (m *Map) Snapshot() string {
	st := m.st.Load()
	parts := make([]string, len(st.buckets))
	for b := range st.buckets {
		p := st.buckets[b].Load()
		switch {
		case p == uninit:
			parts[b] = fmt.Sprintf("g%d=?", b)
		case p == nil:
			parts[b] = fmt.Sprintf("g%d={}", b)
		default:
			parts[b] = fmt.Sprintf("g%d=%s", b, encodeKVs(p.kvs))
		}
	}
	return strings.Join(parts, " | ")
}

// CanonicalMapSnapshot returns the canonical logical representation of
// the abstract state counts for a (keys, nBuckets) map.
func CanonicalMapSnapshot(keys, nBuckets int, counts map[int]int) string {
	perBucket := make([][]conc.KV, nBuckets)
	for k := 1; k <= keys; k++ {
		if v, ok := counts[k]; ok && v != 0 {
			b := GroupOf(k, nBuckets)
			perBucket[b] = append(perBucket[b], conc.KV{K: k, V: v})
		}
	}
	for k := range counts {
		if k < 1 || k > keys {
			panic(fmt.Sprintf("hihash: canonical key %d out of range 1..%d", k, keys))
		}
	}
	parts := make([]string, nBuckets)
	for b := range parts {
		parts[b] = fmt.Sprintf("g%d=%s", b, encodeKVs(perBucket[b]))
	}
	return strings.Join(parts, " | ")
}

// encodeKVs renders a canonical KV list, e.g. "{3:2,7:-1}".
func encodeKVs(kvs []conc.KV) string {
	if len(kvs) == 0 {
		return "{}"
	}
	parts := make([]string, len(kvs))
	for i, kv := range kvs {
		parts[i] = fmt.Sprintf("%d:%d", kv.K, kv.V)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
