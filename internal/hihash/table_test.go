package hihash_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hiconc/internal/hihash"
)

func TestSetSequentialSemantics(t *testing.T) {
	s := hihash.NewSet(1000, hihash.DefaultGroups(1000))
	for _, k := range []int{1, 7, 42, 999, 1000} {
		if s.Contains(k) {
			t.Errorf("fresh set contains %d", k)
		}
		if rsp := s.Insert(k); rsp != 0 {
			t.Errorf("Insert(%d) = %d", k, rsp)
		}
		if !s.Contains(k) {
			t.Errorf("set missing %d after insert", k)
		}
		if rsp := s.Insert(k); rsp != 0 {
			t.Errorf("duplicate Insert(%d) = %d", k, rsp)
		}
	}
	s.Remove(42)
	if s.Contains(42) {
		t.Error("set contains 42 after remove")
	}
	want := []int{1, 7, 999, 1000}
	if got := s.Elements(); !equalInts(got, want) {
		t.Errorf("Elements() = %v, want %v", got, want)
	}
}

// TestSetFullGroup: with a single group the fifth distinct key must be
// rejected with RspFull, and a remove must free the slot — tombstone-free,
// so the freed capacity is immediately reusable.
func TestSetFullGroup(t *testing.T) {
	s := hihash.NewSet(10, 1)
	for k := 1; k <= 4; k++ {
		if rsp := s.Insert(k); rsp != 0 {
			t.Fatalf("Insert(%d) = %d", k, rsp)
		}
	}
	if rsp := s.Insert(5); rsp != hihash.RspFull {
		t.Fatalf("Insert(5) into full group = %d, want RspFull", rsp)
	}
	if s.Contains(5) {
		t.Fatal("rejected key 5 is present")
	}
	s.Remove(2)
	if rsp := s.Insert(5); rsp != 0 {
		t.Fatalf("Insert(5) after remove = %d", rsp)
	}
	if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(10, 1, []int{1, 3, 4, 5}); got != want {
		t.Fatalf("snapshot after churn:\n got:  %s\n want: %s", got, want)
	}
}

// TestSetCanonicalAcrossHistories: different histories reaching the same
// key set leave byte-identical memories.
func TestSetCanonicalAcrossHistories(t *testing.T) {
	const domain = 64
	nGroups := hihash.DefaultGroups(domain)
	target := []int{3, 9, 10, 31, 64}
	run := func(seed int64) string {
		s := hihash.NewSet(domain, nGroups)
		rng := rand.New(rand.NewSource(seed))
		keys := append([]int(nil), target...)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		for _, k := range keys {
			// Churn around each real insert with a non-target decoy (a
			// target decoy would remove a key already inserted).
			decoy := rng.Intn(domain) + 1
			for contains(target, decoy) {
				decoy = decoy%domain + 1
			}
			s.Insert(decoy)
			s.Remove(decoy)
			if rsp := s.Insert(k); rsp != 0 {
				t.Fatalf("Insert(%d) = %d", k, rsp)
			}
		}
		// Remove any decoys that happened to be re-inserted (none should
		// remain, but keep the histories honest).
		for k := 1; k <= domain; k++ {
			if !contains(target, k) {
				s.Remove(k)
			}
		}
		return s.Snapshot()
	}
	a, b := run(1), run(2)
	if a != b {
		t.Fatalf("same key set, different memories:\n a: %s\n b: %s", a, b)
	}
	if want := hihash.CanonicalSetSnapshot(domain, nGroups, target); a != want {
		t.Fatalf("memory not canonical:\n got:  %s\n want: %s", a, want)
	}
}

// TestSetConcurrentDisjointKeys: goroutines on disjoint keys must all
// land and the memory must be canonical at quiescence.
func TestSetConcurrentDisjointKeys(t *testing.T) {
	const n, perProc = 8, 50
	domain := n * perProc
	nGroups := hihash.DefaultGroups(domain)
	s := hihash.NewSet(domain, nGroups)
	var wg sync.WaitGroup
	var full [8]int
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				key := pid*perProc + i + 1
				if s.Insert(key) == hihash.RspFull {
					full[pid]++
					continue
				}
				if i%2 == 1 {
					s.Remove(key)
				}
			}
		}(pid)
	}
	wg.Wait()
	// Recompute the expected set from what actually landed (a rare
	// unlucky hash could fill a group; the canonical check must still
	// hold for the realized set).
	got := s.Elements()
	if want := hihash.CanonicalSetSnapshot(domain, nGroups, got); s.Snapshot() != want {
		t.Fatalf("memory not canonical at quiescence:\n got:  %s\n want: %s", s.Snapshot(), want)
	}
	totalFull := 0
	for _, f := range full {
		totalFull += f
	}
	if wantLen := n*perProc/2 - totalFull; len(got) < wantLen {
		t.Fatalf("Elements() has %d keys, want at least %d", len(got), wantLen)
	}
}

// TestSetConcurrentSharedChurn hammers a small hot key range from many
// goroutines; at quiescence the memory must be canonical for whatever set
// remains.
func TestSetConcurrentSharedChurn(t *testing.T) {
	const n, domain, iters = 8, 32, 2000
	nGroups := hihash.DefaultGroups(domain)
	s := hihash.NewSet(domain, nGroups)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(domain) + 1
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
			}
		}(pid)
	}
	wg.Wait()
	if want := hihash.CanonicalSetSnapshot(domain, nGroups, s.Elements()); s.Snapshot() != want {
		t.Fatalf("memory not canonical at quiescence:\n got:  %s\n want: %s", s.Snapshot(), want)
	}
}

func contains(xs []int, k int) bool {
	for _, x := range xs {
		if x == k {
			return true
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSetElementsSorted(t *testing.T) {
	s := hihash.NewSet(100, 8)
	for _, k := range []int{50, 3, 99, 21} {
		s.Insert(k)
	}
	got := s.Elements()
	if !sort.IntsAreSorted(got) {
		t.Errorf("Elements() = %v not sorted", got)
	}
}

func ExampleSet() {
	s := hihash.NewSet(100, hihash.DefaultGroups(100))
	s.Insert(42)
	s.Insert(7)
	s.Remove(7)
	fmt.Println(s.Elements())
	// Output: [42]
}
