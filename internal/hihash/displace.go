package hihash

// The cross-group relocation protocol of the displacing table.
//
// A key k homes at GroupOf(k, G) and may reside anywhere along its cyclic
// probe run. The canonical layout is the ordered Robin Hood one
// (DisplacedGroups): smaller keys claim earlier groups of their runs, so
// the layout is the one ascending-order insertion produces, independent
// of history. Because a cross-group relocation touches two CAS words it
// cannot be atomic; the protocol keeps every intermediate window safe
// with two in-word annotations:
//
//   - a mark bit on a slot (key k with slotMark set) says "k is being
//     relocated; it is still logically present here until its new copy
//     lands and this slot is released". Relocations are destination-
//     first: the new copy is placed before the marked copy is removed,
//     so a marked key is physically findable at every instant.
//
//   - a restore flag (flagSlot) fills a hole a delete or a relocation
//     release opened. The backward shift (restore) pulls the smallest
//     displaced key whose probe run crossed the hole back into it, then
//     cascades. A flagged group reads as full to probe scans, so a
//     lookup never concludes "absent" from a hole that is still being
//     shifted; an insert may claim the flagged slot directly, which
//     cancels that branch of the shift exactly when the canonical layout
//     says the hole belongs to the new key.
//
// Every operation helps complete the relocations it encounters
// (relocateOut), so a parked relocation cannot wedge the table.
// Lookups are validated double collects with a bounded retry budget: a
// scan that answers "absent" must read the same clean words twice, and
// after lookupRetryLimit failed validations the reader stops spinning
// and helps complete the interfering relocations itself (containsSlow),
// then answers from the stable view it produced. Slot matching inside
// every scan is word-parallel (swar.go): all four slots of a group word
// are classified in a handful of ALU ops. The helping and the flags
// make the layout self-repairing: whenever no update is pending the
// memory is exactly DisplacedGroups of the key set — state-quiescent
// history independence, machine-checked on the simulated twin (sim.go).
//
// Metrics discipline: the successful protocol CASes are counted by
// stepAt (steppoint.go); this file only adds cold-path sites — CAS
// losses, helping, lookup restarts — whose disabled nil-check executes
// exactly when the contention they count happened, plus one probe-length
// observation per displacing insert. Lookups that succeed first pass
// stay instrumentation-free and allocation-free (the collect records
// live in a fixed-size stack buffer; TestLookupAllocs pins this).

import (
	"math/bits"

	"hiconc/internal/histats"
)

// wstatus is the outcome of one protocol step.
type wstatus int

const (
	// wsDone: the step completed.
	wsDone wstatus = iota
	// wsFull: no slot is reachable — the table (at this geometry) is
	// full; the caller grows or reports RspFull.
	wsFull
	// wsRestart: the walk hit a drained (gone) group — the table has
	// been resized under us; the operation restarts against the current
	// state.
	wsRestart
	// wsLost: a helper completed the step first; re-examine the group.
	wsLost
)

// slotLess orders slots canonically: keys ascending by key value
// (marked or not), restore flags after them.
func slotLess(a, b uint64) bool {
	if af, bf := a == flagSlot, b == flagSlot; af != bf {
		return !af
	}
	return a&slotKey < b&slotKey
}

// packWord rebuilds a canonical word from n slot values: key slots
// sorted ascending in the low slots, restore flags above them, empties
// on top. Allocation-free — these repacks sit on every CAS attempt of
// the displacing hot paths.
func packWord(slots *[SlotsPerGroup]uint64, n int) uint64 {
	for i := 1; i < n; i++ {
		for j := i; j > 0 && slotLess(slots[j], slots[j-1]); j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	var w uint64
	for i := 0; i < n; i++ {
		w |= slots[i] << (16 * i)
	}
	return w
}

// wordReplace returns w with the first slot equal to old replaced by new
// (new == 0 deletes the slot), canonically repacked. It returns w
// unchanged if old is absent.
func wordReplace(w, old, new uint64) uint64 {
	var slots [SlotsPerGroup]uint64
	n, replaced := 0, false
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		if sl == 0 {
			continue
		}
		if !replaced && sl == old {
			replaced = true
			if new == 0 {
				continue
			}
			sl = new
		}
		slots[n] = sl
		n++
	}
	if !replaced {
		return w
	}
	return packWord(&slots, n)
}

// wordAdd returns w with slot new added (caller ensures a zero slot).
func wordAdd(w, new uint64) uint64 {
	var slots [SlotsPerGroup]uint64
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		if sl := slotAt(w, i); sl != 0 {
			slots[n] = sl
			n++
		}
	}
	slots[n] = new
	return packWord(&slots, n+1)
}

// wordFind returns the slot index of key in w (marked or not), or -1.
// Probe loops that test many words against one key hoist the broadcast
// and call swarFind directly.
func wordFind(w uint64, key int) int {
	return swarFind(w, swarBroadcast(key))
}

// wordZeros counts the empty slots of w.
func wordZeros(w uint64) int {
	return bits.OnesCount64(swarEmptyLanes(w))
}

// wordFlags counts the restore flags of w.
func wordFlags(w uint64) int {
	return bits.OnesCount64(swarFlagLanes(w))
}

// wordMarks counts the marked keys of w.
func wordMarks(w uint64) int {
	return bits.OnesCount64(swarMarkLanes(w))
}

// wordMaxUnmarked returns the largest unmarked key of w, or 0.
func wordMaxUnmarked(w uint64) int {
	max := 0
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		if sl != 0 && sl != flagSlot && sl&slotMark == 0 && int(sl) > max {
			max = int(sl)
		}
	}
	return max
}

// wordMaxKey returns the largest key of w, marked or not, or 0.
func wordMaxKey(w uint64) int {
	max := 0
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		if sl != 0 && sl != flagSlot && int(sl&slotKey) > max {
			max = int(sl & slotKey)
		}
	}
	return max
}

// wordAnyMarked returns the lowest-slot marked key of w, or 0.
func wordAnyMarked(w uint64) int {
	m := swarMarkLanes(w)
	if m == 0 {
		return 0
	}
	return int(slotAt(w, bits.TrailingZeros64(m)>>4) & slotKey)
}

// wordClean reports whether w is a settled, non-full group: no marks, no
// flags, at least one empty slot. A probe scan may end at a clean group;
// anything else means the run (or an in-flight relocation) may extend
// further. Branch-free: a clean word has no lane-high (mark/flag) bits
// at all — which also rules out gone — and some all-zero lane.
func wordClean(w uint64) bool {
	return w&swarHigh == 0 && swarZeroLanes(w) != 0
}

// probeLimit is the walk length that triggers an online grow of the
// displacing table: once an insert has to probe this many groups the
// load is high enough that doubling the array is cheaper than longer
// runs.
const probeLimit = 4

// placeKey walks key c's probe run in st and ensures c is present,
// evicting larger residents in ordered Robin Hood priority as needed. A
// marked copy of c at group exclude (the stale source of a relocation
// being completed) is treated as invisible and never re-placed there.
// It returns the walk distance of the decisive group.
func (s *Set) placeKey(st *tableState, c, exclude int) (wstatus, int) {
	G := len(st.groups)
	g := GroupOf(c, G)
	for dist := 0; dist < G; {
		w := st.groups[g].Load()
		if w == gone {
			return wsRestart, dist
		}
		// At the excluded group (the stale source of the relocation
		// being completed) c's own marked copy is invisible for every
		// priority decision — but it still occupies its slot, and it
		// must never be "helped" from here: helping it is this very
		// call, and recursing into it would never terminate.
		view := w
		if g == exclude {
			view = wordReplace(w, uint64(c)|slotMark, 0)
		}
		if i := wordFind(view, c); i >= 0 {
			// An unmarked copy (or, away from the excluded group, any
			// copy) of c: it is placed, or its relocation is someone
			// we may help.
			if slotAt(view, i)&slotMark == 0 {
				return wsDone, dist
			}
			if exclude >= 0 {
				// This walk is already completing a relocation of c out
				// of exclude, yet c has a second marked copy here — an
				// abandoned relocation (a crashed or long-parked thread)
				// whose source a later insert refilled. Helping it would
				// recurse into helping ourselves forever; cancel it in
				// place instead — the twin becomes c's landed copy and
				// the caller releases the copy at exclude.
				if st.groups[g].CompareAndSwap(w, wordReplace(w, uint64(c)|slotMark, uint64(c))) {
					stepAt(SpEvictSwap)
					return wsDone, dist
				}
				histats.Inc(histats.CtrHashCASFail)
				continue
			}
			// c is itself mid-relocation here: help it land, then
			// re-examine.
			histats.Inc(histats.CtrHelpRelocate)
			if rs := s.relocateOut(st, c, g); rs != wsDone {
				return rs, dist
			}
			continue
		}
		if wordZeros(w) > 0 {
			if st.groups[g].CompareAndSwap(w, wordAdd(w, uint64(c))) {
				stepAt(SpDestWritten)
				return s.placed(st, c, dist), dist
			}
			histats.Inc(histats.CtrHashCASFail)
			continue
		}
		if wordFlags(w) > 0 {
			// A flagged hole is free for placement; claiming it cancels
			// that branch of the backward shift (the canonical layout
			// gives the hole to c).
			if st.groups[g].CompareAndSwap(w, wordReplace(w, flagSlot, uint64(c))) {
				stepAt(SpDestWritten)
				return s.placed(st, c, dist), dist
			}
			histats.Inc(histats.CtrHashCASFail)
			continue
		}
		if g == exclude {
			if m := wordMaxUnmarked(view); m != 0 && c < m {
				// c outranks an unmarked resident of the very group its
				// stale copy sits in: the relocation is obsolete (a
				// larger key claimed a freed slot while the mark was
				// parked) — cancel it in place, which is the placement.
				if st.groups[g].CompareAndSwap(w, wordReplace(w, uint64(c)|slotMark, uint64(c))) {
					stepAt(SpEvictSwap)
					return wsDone, dist
				}
				histats.Inc(histats.CtrHashCASFail)
				continue
			}
		} else if m := wordMaxUnmarked(w); m != 0 && c < m && wordMarks(w) == 0 {
			// Ordered Robin Hood eviction: mark the largest resident,
			// place it further along its run, then swap the stale mark
			// for c in one CAS on this word.
			if !st.groups[g].CompareAndSwap(w, wordReplace(w, uint64(m), uint64(m)|slotMark)) {
				histats.Inc(histats.CtrHashCASFail)
				continue
			}
			stepAt(SpMarkSet)
			rs := s.finishEvict(st, c, m, g)
			if rs == wsDone {
				return s.placed(st, c, dist), dist
			}
			if rs == wsLost {
				continue
			}
			return rs, dist
		}
		if c < wordMaxKey(view) {
			// The group is jammed by an in-flight relocation that c has
			// priority over: help it resolve before deciding — but
			// never c's own mark (invisible in view at the excluded
			// group).
			if mk := wordAnyMarked(view); mk != 0 && mk != c {
				histats.Inc(histats.CtrHelpRelocate)
				if rs := s.relocateOut(st, mk, g); rs != wsDone {
					return rs, dist
				}
				continue
			}
			if g != exclude {
				continue
			}
		}
		g = (g + 1) % G
		dist++
	}
	return wsFull, G
}

// finishEvict completes an eviction begun by placeKey: m is marked at
// group g and must land beyond, after which the stale mark is swapped
// for c in a single CAS. wsLost means a helper released the mark first
// and c still needs a slot.
func (s *Set) finishEvict(st *tableState, c, m, g int) wstatus {
	if rs, _ := s.placeKey(st, m, g); rs != wsDone {
		if rs == wsFull {
			// Nowhere for m to land: cancel the eviction so the mark
			// cannot dangle, then report full.
			s.unmark(st, m, g)
			return wsFull
		}
		return rs
	}
	for {
		w := st.groups[g].Load()
		if w == gone {
			return wsRestart
		}
		if i := wordFind(w, m); i >= 0 && slotAt(w, i)&slotMark != 0 {
			if st.groups[g].CompareAndSwap(w, wordReplace(w, uint64(m)|slotMark, uint64(c))) {
				stepAt(SpEvictSwap)
				return wsDone
			}
			histats.Inc(histats.CtrHashCASFail)
			continue
		}
		return wsLost
	}
}

// placed is the post-placement validation: a key placed at displacement
// distance > 0 must stay reachable by a standard probe scan. A racing
// delete may have emptied (or be restoring) an earlier group of the run
// after the walk passed it, stranding the key beyond a free slot where
// scans would miss it. The repair loop re-scans the run: a settled free
// group before the key means the key itself must be pulled back (its
// relocation walk lands in that hole); a restore flag before it means a
// backward shift is deciding concurrently — help it to completion so its
// candidate scan cannot have missed the fresh placement. The loop ends
// only on a pass that finds the key with no holes or flags before it.
func (s *Set) placed(st *tableState, c, dist int) wstatus {
	if dist == 0 {
		// A key in its home group is always reachable.
		return wsDone
	}
	G := len(st.groups)
	for {
		g := GroupOf(c, G)
		foundAt, cleanAt := -1, -1
		var flagged []int
		for d := 0; d < G; d++ {
			w := st.groups[g].Load()
			if w == gone {
				return wsRestart
			}
			if wordFind(w, c) >= 0 {
				foundAt = g
				break
			}
			if wordFlags(w) > 0 {
				flagged = append(flagged, g)
			}
			if wordClean(w) {
				cleanAt = g
				break
			}
			g = (g + 1) % G
		}
		switch {
		case foundAt >= 0 && len(flagged) == 0:
			return wsDone
		case foundAt >= 0:
			// A backward shift is pending before c: drive it so it sees
			// c (or clears), then re-validate.
			for _, f := range flagged {
				if rs := s.restore(st, f); rs != wsDone {
					return rs
				}
			}
		case cleanAt >= 0:
			// c stranded beyond a settled free group: pull it back
			// ourselves via a marked relocation.
			at := s.findKey(st, c)
			if at < 0 {
				// A racing remove took c; nothing left to repair.
				return wsDone
			}
			w := st.groups[at].Load()
			if w == gone {
				return wsRestart
			}
			if i := wordFind(w, c); i < 0 || slotAt(w, i)&slotMark != 0 {
				continue
			}
			if !st.groups[at].CompareAndSwap(w, wordReplace(w, uint64(c), uint64(c)|slotMark)) {
				histats.Inc(histats.CtrHashCASFail)
				continue
			}
			stepAt(SpMarkSet)
			if rs := s.relocateOut(st, c, at); rs != wsDone {
				return rs
			}
		}
	}
}

// findKey scans every group for c, returning its group or -1. The
// broadcast is hoisted: the whole sweep is one load, one XOR-mask and
// one zero-lane test per group. (gone cannot false-match: its lanes
// carry the reserved key 0x7FFF, which no probe key equals.)
func (s *Set) findKey(st *tableState, c int) int {
	bcast := swarBroadcast(c)
	for g := range st.groups {
		if swarKeyLanes(st.groups[g].Load(), bcast) != 0 {
			return g
		}
	}
	return -1
}

// unmark restores a marked key in place (used to cancel an eviction that
// found no destination).
func (s *Set) unmark(st *tableState, m, g int) {
	for {
		w := st.groups[g].Load()
		if w == gone {
			return
		}
		i := wordFind(w, m)
		if i < 0 || slotAt(w, i)&slotMark == 0 {
			return
		}
		// Cancellation restores the exact pre-mark word, so a crash here
		// is indistinguishable from one before SpMarkSet fired — no new
		// window for the E23 matrix to cover.
		//hilint:allow steppoint (cancel CAS restores the pre-SpMarkSet word; no new crash window)
		if st.groups[g].CompareAndSwap(w, wordReplace(w, uint64(m)|slotMark, uint64(m))) {
			return
		}
	}
}

// relocateOut completes the relocation of marked key m at group j on
// behalf of any helper: place m's new copy (destination first), then
// release the stale slot into a restore flag and run the backward shift
// it may enable. It is idempotent — whoever's release CAS wins, the
// others observe the mark gone and stand down.
func (s *Set) relocateOut(st *tableState, m, j int) wstatus {
	for {
		w := st.groups[j].Load()
		if w == gone {
			return wsRestart
		}
		i := wordFind(w, m)
		if i < 0 || slotAt(w, i)&slotMark == 0 {
			return wsDone
		}
		rs, dist := s.placeKey(st, m, j)
		if rs != wsDone {
			if rs == wsFull {
				// No destination (table momentarily full): cancel by
				// restoring the mark. Like unmark, this rewinds to the
				// exact pre-SpMarkSet word, so crashing here opens no
				// window the matrix does not already sweep.
				//hilint:allow steppoint (cancel CAS restores the pre-SpMarkSet word; no new crash window)
				if st.groups[j].CompareAndSwap(w, wordReplace(w, uint64(m)|slotMark, uint64(m))) {
					return wsDone
				}
				continue
			}
			return rs
		}
		if st.groups[j].CompareAndSwap(w, wordReplace(w, uint64(m)|slotMark, flagSlot)) {
			stepAt(SpSourceCleared)
			histats.Observe(histats.HistRelocDist, uint64(dist))
			return s.restore(st, j)
		}
		histats.Inc(histats.CtrHashCASFail)
	}
}

// restore runs the backward shift for a restore flag at group g: find
// the smallest key beyond g whose probe run crossed g, pull it back into
// the hole (via a marked relocation whose walk lands exactly there), and
// cascade. If no key crossed the hole the flag is simply cleared — the
// layout was already canonical.
func (s *Set) restore(st *tableState, g int) wstatus {
	G := len(st.groups)
	for {
		w := st.groups[g].Load()
		if w == gone {
			return wsRestart
		}
		if wordFlags(w) == 0 {
			return wsDone
		}
		best, bestAt := 0, -1
		j := (g + 1) % G
		for dist := 1; dist < G; dist++ {
			wj := st.groups[j].Load()
			if wj == gone {
				// The table is being drained under us; migration
				// supersedes restoration.
				break
			}
			for i := 0; i < SlotsPerGroup; i++ {
				sl := slotAt(wj, i)
				if sl == 0 || sl == flagSlot || sl&slotMark != 0 {
					continue
				}
				c := int(sl)
				if probeCrosses(c, j, g, G) && (best == 0 || c < best) {
					best, bestAt = c, j
				}
			}
			if wordClean(wj) {
				break
			}
			j = (j + 1) % G
		}
		if best == 0 {
			if st.groups[g].CompareAndSwap(w, wordReplace(w, flagSlot, 0)) {
				stepAt(SpFlagCleared)
				return wsDone
			}
			histats.Inc(histats.CtrHashCASFail)
			continue
		}
		// Pull best back: mark it, and complete the relocation — its
		// placement walk starts at its home group, so it lands in the
		// flagged hole here (or an even earlier one), then cascades.
		wj := st.groups[bestAt].Load()
		if wj == gone {
			continue
		}
		if i := wordFind(wj, best); i < 0 || slotAt(wj, i)&slotMark != 0 {
			continue
		}
		if !st.groups[bestAt].CompareAndSwap(wj, wordReplace(wj, uint64(best), uint64(best)|slotMark)) {
			histats.Inc(histats.CtrHashCASFail)
			continue
		}
		stepAt(SpMarkSet)
		if rs := s.relocateOut(st, best, bestAt); rs != wsDone {
			return rs
		}
	}
}

// scanCap is the record capacity of the fast-path probe scan: probe
// runs stay far shorter than this in practice (an insert that walks
// probeLimit groups already grows the table), so the common case
// records into fixed stack buffers and the lookup fast path allocates
// nothing. A pathological run longer than scanCap sets long instead —
// the fast path then cannot validate and falls through to the slow
// path, whose slice-based collect has no length cap.
const scanCap = 32

// probeScan is one fixed-buffer pass of a probe-run scan for key on the
// lookup fast path: it reads along key's run until a clean group (or a
// full cycle), recording every word read for validation. found reports
// the key seen (marked counts — a marked key is logically present).
// The buffers are plain arrays indexed by n — never self-referential
// slices, which would defeat escape analysis and put the record on the
// heap (TestLookupAllocs pins this at zero).
type probeScan struct {
	n       int
	found   bool
	sawGone bool
	long    bool
	groups  [scanCap]int32
	words   [scanCap]uint64
}

// fastScan scans key's probe run in st into r (caller-provided so the
// record lives on the caller's stack). bcast must be
// swarBroadcast(key) — hoisted so the whole run shares one broadcast.
// treatGoneFull makes drained groups read as full (used on the old
// table during migration, where the run logically continues past
// drained groups); drained groups are not recorded, since gone is
// final and re-validates trivially.
func fastScan(st *tableState, key int, bcast uint64, treatGoneFull bool, r *probeScan) {
	r.n = 0
	r.found = false
	r.sawGone = false
	r.long = false
	G := len(st.groups)
	g := GroupOf(key, G)
	for dist := 0; dist < G; dist++ {
		w := st.groups[g].Load()
		if w == gone {
			r.sawGone = true
			if !treatGoneFull {
				return
			}
			g = (g + 1) % G
			continue
		}
		if r.n < scanCap {
			r.groups[r.n] = int32(g)
			r.words[r.n] = w
			r.n++
		} else {
			r.long = true
		}
		if swarKeyLanes(w, bcast) != 0 {
			r.found = true
			return
		}
		if wordClean(w) {
			return
		}
		g = (g + 1) % G
	}
}

// fastMatches re-reads the words of a fast scan and reports whether the
// memory is unchanged — the validation pass of the double collect. A
// scan that outgrew its record buffer cannot be validated.
func fastMatches(st *tableState, r *probeScan) bool {
	if r.long {
		return false
	}
	for i := 0; i < r.n; i++ {
		if st.groups[r.groups[i]].Load() != r.words[i] {
			return false
		}
	}
	return true
}

// runScan is one slice-collecting pass of a probe-run scan for key,
// used by the update and slow lookup paths (where a cold allocation is
// fine and runs must have no length cap). found reports the key seen
// (marked counts — a marked key is logically present);
// foundAt/foundMarked locate it.
type runScan struct {
	groups      []int
	words       []uint64
	found       bool
	foundAt     int
	foundMarked bool
	sawGone     bool
}

// scanRun scans key's probe run in st. treatGoneFull makes drained
// groups read as full (used on the old table during migration, where the
// run logically continues past drained groups).
func scanRun(st *tableState, key int, treatGoneFull bool) runScan {
	var r runScan
	bcast := swarBroadcast(key)
	G := len(st.groups)
	g := GroupOf(key, G)
	for dist := 0; dist < G; dist++ {
		w := st.groups[g].Load()
		r.groups = append(r.groups, g)
		r.words = append(r.words, w)
		if w == gone {
			r.sawGone = true
			if !treatGoneFull {
				return r
			}
			g = (g + 1) % G
			continue
		}
		if i := swarFind(w, bcast); i >= 0 {
			r.found = true
			r.foundAt = g
			r.foundMarked = slotAt(w, i)&slotMark != 0
			return r
		}
		if wordClean(w) {
			return r
		}
		g = (g + 1) % G
	}
	return r
}

// rescanMatches re-reads the words of a scan and reports whether the
// memory is unchanged — the validation pass of the double collect.
func rescanMatches(st *tableState, r runScan) bool {
	for i, g := range r.groups {
		if st.groups[g].Load() != r.words[i] {
			return false
		}
	}
	return true
}

// displaceInsert is Insert for the displacing table: place the key,
// growing the group array when the walk reports the table full or the
// probe run has grown past probeLimit. It never returns RspFull.
func (s *Set) displaceInsert(key int) int {
	for {
		st := s.current()
		rs, dist := s.placeKey(st, key, -1)
		switch rs {
		case wsDone:
			histats.Observe(histats.HistProbeLen, uint64(dist))
			if dist >= probeLimit {
				s.grow(st) // capped at maxGroups; a no-op at the ceiling
			}
			return 0
		case wsFull:
			s.grow(st)
		case wsRestart:
		}
	}
}

// displaceRemove is Remove for the displacing table: resolve any
// in-flight relocation of the key, release its slot into a restore flag
// and run the backward shift. The operation returns only after a
// validated double collect confirms absence on a stable table state —
// removing one copy is not enough, because a migration drain (or a
// relocation) racing the removal can have copied the key elsewhere; the
// loop chases every copy until a clean pass finds none.
func (s *Set) displaceRemove(key int) int {
	for {
		st := s.current()
		r := scanRun(st, key, false)
		if r.sawGone {
			continue
		}
		if !r.found {
			if at := s.findKey(st, key); at >= 0 {
				// A physical copy beyond the validated probe run: the
				// ghost of a relocation whose owner died after the
				// destination copy was separately removed. Scans can
				// never reach it, but a drain would faithfully migrate
				// (resurrect) it — chase it like a found copy.
				w := st.groups[at].Load()
				i := wordFind(w, key)
				if i < 0 {
					continue
				}
				r.found, r.foundAt = true, at
				r.foundMarked = slotAt(w, i)&slotMark != 0
			} else if st.prev.Load() == nil && rescanMatches(st, r) && s.st.Load() == st {
				// Migration in flight would let the key hide in the old
				// table; current drains it first, so once prev is gone a
				// validated clean scan over a ghost-free table confirms
				// absence.
				return 0
			} else {
				continue
			}
		}
		if r.foundMarked {
			// Resolve the in-flight relocation first: removing a copy
			// while a marked twin survives could resurrect the key.
			histats.Inc(histats.CtrHelpRelocate)
			s.relocateOut(st, key, r.foundAt)
			continue
		}
		w := st.groups[r.foundAt].Load()
		if w == gone {
			continue
		}
		if i := wordFind(w, key); i < 0 || slotAt(w, i)&slotMark != 0 {
			continue
		}
		if st.groups[r.foundAt].CompareAndSwap(w, wordReplace(w, uint64(key), flagSlot)) {
			stepAt(SpFlagPlaced)
			s.restore(st, r.foundAt)
		} else {
			histats.Inc(histats.CtrHashCASFail)
		}
	}
}

// lookupRetryLimit is K, the fast-path retry budget of a displacing
// lookup: a validated double collect that fails this many validations
// is being actively interfered with, and the reader switches from
// spinning to helping (containsSlow). It is a var, not a const, only so
// the whitebox tests can reach the slow path without manufacturing K
// real interferences.
var lookupRetryLimit = 4

// LookupRetryLimit reports K, the fast-path retry budget of a
// displacing lookup. The E26 gate checks the observed retry histogram
// never exceeds it.
func LookupRetryLimit() int { return lookupRetryLimit }

// displaceContains is Contains for the displacing table: a read-only
// validated double collect over the probe run — and, during a resize,
// over the old table first, since keys migrate old-to-new destination
// first and a source-first scan cannot miss a migrating key. A positive
// answer needs no validation (a marked key is logically present, and
// keys move destination first, so anything seen is or was just now a
// member); "absent" must read the same clean words twice on a stable
// state. After lookupRetryLimit failed validations the retry loop ends
// and the lookup helps the interference to completion instead.
func (s *Set) displaceContains(key int) bool {
	bcast := swarBroadcast(key)
	var r, oldScan probeScan
	for try := 0; try < lookupRetryLimit; try++ {
		st := s.st.Load()
		p := st.prev.Load()
		if p != nil {
			fastScan(p, key, bcast, true, &oldScan)
			if oldScan.found {
				if try > 0 {
					histats.Observe(histats.HistLookupRetry, uint64(try))
				}
				return true
			}
		}
		fastScan(st, key, bcast, false, &r)
		if r.found {
			if try > 0 {
				histats.Observe(histats.HistLookupRetry, uint64(try))
			}
			return true
		}
		if !r.sawGone && fastMatches(st, &r) &&
			(p == nil || fastMatches(p, &oldScan)) &&
			s.st.Load() == st && st.prev.Load() == p {
			if try > 0 {
				histats.Observe(histats.HistLookupRetry, uint64(try))
			}
			return false
		}
		histats.Inc(histats.CtrLookupRetry)
	}
	return s.containsSlow(key)
}

// containsSlow is the helping fallback of the read path: the fast path
// burned its retry budget against live interference, so instead of
// spinning further the reader completes the interference itself. It
// drives any in-flight migration to completion (current), then
// repeatedly scans the key's run, helping every relocation mark and
// restore flag it recorded — the same relocateOut/restore machinery the
// update paths use — until a pass either finds the key or validates
// clean on a stable state. Every non-terminal pass retires protocol
// work some update already started, so the loop inherits the update
// paths' lock-free progress argument instead of spinning on validation.
//
// Helping writes to the table, but only the transitions pending updates
// already own — it can never reach this path without live interference
// (at quiescence the first validation succeeds), so a read in isolation
// stays write-free and the raw-dump twin checks keep holding with
// readers present (DESIGN.md, "The read path").
func (s *Set) containsSlow(key int) bool {
	histats.Inc(histats.CtrLookupHelp)
	histats.Observe(histats.HistLookupRetry, uint64(lookupRetryLimit))
	for {
		st := s.current()
		r := scanRun(st, key, false)
		if r.found {
			return true
		}
		if r.sawGone {
			continue
		}
		helped := false
		for i, g := range r.groups {
			w := r.words[i]
			if m := wordAnyMarked(w); m != 0 {
				histats.Inc(histats.CtrHelpRelocate)
				s.relocateOut(st, m, g)
				helped = true
			} else if swarFlagLanes(w) != 0 {
				s.restore(st, g)
				helped = true
			}
		}
		if helped {
			continue
		}
		if rescanMatches(st, r) && s.st.Load() == st && st.prev.Load() == nil {
			return false
		}
	}
}
