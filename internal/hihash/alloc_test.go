package hihash

// Allocation guards for the read path (E26): lookups must allocate
// nothing — the collect records of the displacing double collect live
// in stack buffers, the bounded table's match is pure ALU work, and
// Map.Get is one atomic load plus a slice walk. CI runs this file as a
// dedicated gate (TestLookupAllocs) so a future change cannot put
// allocations back on the hot path silently.

import (
	"testing"

	"hiconc/internal/hilint/escape"
)

// TestLookupAllocs pins every lookup surface at zero allocations per
// operation, at quiescence, over states that include displaced keys
// (probe runs longer than one group) and a table that has grown online.
func TestLookupAllocs(t *testing.T) {
	const domain = 2000

	t.Run("bounded-contains", func(t *testing.T) {
		s := NewSet(domain, DefaultGroups(domain))
		for k := 1; k <= 64; k++ {
			s.Insert(k)
		}
		hit, miss := 1, 65
		if avg := testing.AllocsPerRun(1000, func() {
			s.Contains(hit)
			s.Contains(miss)
		}); avg != 0 {
			t.Fatalf("bounded Contains allocates %.1f per run, want 0", avg)
		}
	})

	t.Run("displace-contains", func(t *testing.T) {
		const G = 4
		s := NewDisplaceSet(domain, G)
		// Overfill one home group so its run displaces across groups:
		// SlotsPerGroup+2 keys homing at group 0 force cross-group
		// probe runs on both hits and misses.
		ks := keysHomingAt(t, domain, G, 0, SlotsPerGroup+3)
		for _, k := range ks[:SlotsPerGroup+2] {
			s.Insert(k)
		}
		displacedHit, miss := ks[SlotsPerGroup+1], ks[SlotsPerGroup+2]
		if !s.Contains(displacedHit) || s.Contains(miss) {
			t.Fatal("displaced fixture is wrong")
		}
		if avg := testing.AllocsPerRun(1000, func() {
			s.Contains(displacedHit)
			s.Contains(miss)
		}); avg != 0 {
			t.Fatalf("displacing Contains allocates %.1f per run, want 0", avg)
		}
	})

	t.Run("displace-contains-after-grow", func(t *testing.T) {
		s := NewDisplaceSet(domain, 2)
		for k := 1; k <= 256; k++ {
			s.Insert(k) // grows the group array online several times
		}
		if s.NumGroups() <= 2 {
			t.Fatal("fixture did not grow")
		}
		if avg := testing.AllocsPerRun(1000, func() {
			s.Contains(128)
			s.Contains(257)
		}); avg != 0 {
			t.Fatalf("post-grow Contains allocates %.1f per run, want 0", avg)
		}
	})

	t.Run("map-get", func(t *testing.T) {
		m := NewMap(256, 8)
		for k := 1; k <= 64; k++ {
			m.Inc(k)
		}
		if avg := testing.AllocsPerRun(1000, func() {
			m.Get(1)
			m.Get(200)
		}); avg != 0 {
			t.Fatalf("Map.Get allocates %.1f per run, want 0", avg)
		}
	})
}

// TestLookupAllocsMatchesEscapeGate ties this guard to the static
// escape-audit gate (internal/hilint/escape): every entry point the
// runs above measure must be on the gate's declared hot-path list, so
// the dynamic zero-alloc check and the compiler-proof static check
// cannot drift apart — a function measured here but dropped from the
// gate would lose its per-commit escape proof silently.
func TestLookupAllocsMatchesEscapeGate(t *testing.T) {
	declared := map[string]bool{}
	for _, fn := range escape.HotFuncs("./internal/hihash") {
		declared[fn] = true
	}
	if len(declared) == 0 {
		t.Fatal("escape gate declares no hot paths for ./internal/hihash")
	}
	// The surfaces TestLookupAllocs drives, spelled the way the gate
	// spells them.
	for _, fn := range []string{"Set.Contains", "Set.displaceContains", "Map.Get"} {
		if !declared[fn] {
			t.Errorf("alloc guard measures %s but the escape gate does not declare it (internal/hilint/escape.HotPaths)", fn)
		}
	}
}
