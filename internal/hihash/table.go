package hihash

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// SlotsPerGroup is the native group capacity B: four 16-bit key slots
// packed into one uint64 CAS word, so every insert, tombstone-free delete
// and the relocation either implies is one atomic compare-and-swap.
const SlotsPerGroup = 4

// Set is the native HICHT table: a lock-free, perfectly history-
// independent hash set over {1..domain} (domain <= 65535). The table is a
// fixed array of uint64 groups; each group packs up to four keys in
// canonical priority order (ascending, low slots first, empty slots zero
// above them), so the memory is a pure function of the key set at every
// instant. Lookups are one atomic load; updates are single-word CAS retry
// loops — no announce cells, no helping, no per-shard serialization
// point. Inserts into a full group return RspFull (the bounded
// open-addressing capacity; see the package comment).
//
// Unlike the universal-construction objects, a Set needs no per-process
// handles: any number of goroutines may call it directly.
type Set struct {
	domain int
	groups []atomic.Uint64
}

var _ conc.Applier = (*Set)(nil)

// DefaultGroups returns a group count giving the table roughly twice the
// domain in slot capacity — ample headroom against per-group overflow for
// balanced key sets.
func DefaultGroups(domain int) int {
	g := (2*domain + SlotsPerGroup - 1) / SlotsPerGroup
	if g < 1 {
		g = 1
	}
	return g
}

// NewSet creates a table over keys {1..domain} with nGroups groups of
// SlotsPerGroup slots each.
func NewSet(domain, nGroups int) *Set {
	if domain < 1 || domain > 0xFFFF {
		panic(fmt.Sprintf("hihash: set domain %d out of range 1..65535", domain))
	}
	if nGroups < 1 {
		panic(fmt.Sprintf("hihash: invalid group count %d", nGroups))
	}
	return &Set{domain: domain, groups: make([]atomic.Uint64, nGroups)}
}

// Name implements conc.Applier.
func (s *Set) Name() string { return fmt.Sprintf("hihash-set[g=%d]", len(s.groups)) }

// NumGroups returns the group count.
func (s *Set) NumGroups() int { return len(s.groups) }

// Capacity returns the total slot capacity of the table.
func (s *Set) Capacity() int { return len(s.groups) * SlotsPerGroup }

// unpack extracts the keys of a group word in slot (priority) order.
func unpack(w uint64, keys *[SlotsPerGroup]int) int {
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		k := int(w >> (16 * i) & 0xFFFF)
		if k == 0 {
			break
		}
		keys[i] = k
		n++
	}
	return n
}

// pack builds a group word from n keys already in priority order.
func pack(keys *[SlotsPerGroup]int, n int) uint64 {
	var w uint64
	for i := 0; i < n; i++ {
		w |= uint64(keys[i]) << (16 * i)
	}
	return w
}

func (s *Set) checkKey(key int) {
	if key < 1 || key > s.domain {
		panic(fmt.Sprintf("hihash: key %d out of range 1..%d", key, s.domain))
	}
}

// Insert adds key. It returns 0 on success (or if key was already
// present) and RspFull if key's group is at capacity.
func (s *Set) Insert(key int) int {
	s.checkKey(key)
	g := &s.groups[GroupOf(key, len(s.groups))]
	for {
		w := g.Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		pos := n
		for i := 0; i < n; i++ {
			if keys[i] == key {
				return 0
			}
			if keys[i] > key {
				pos = i
				break
			}
		}
		if n == SlotsPerGroup {
			return RspFull
		}
		// Shift lower-priority keys up one slot and place key — the
		// Robin-Hood-style relocation, folded into one CAS.
		copy(keys[pos+1:n+1], keys[pos:n])
		keys[pos] = key
		if g.CompareAndSwap(w, pack(&keys, n+1)) {
			return 0
		}
	}
}

// Remove deletes key (tombstone-free: the canonical layout is restored by
// the same CAS that removes the key). It always returns 0.
func (s *Set) Remove(key int) int {
	s.checkKey(key)
	g := &s.groups[GroupOf(key, len(s.groups))]
	for {
		w := g.Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		pos := -1
		for i := 0; i < n; i++ {
			if keys[i] == key {
				pos = i
				break
			}
		}
		if pos < 0 {
			return 0
		}
		copy(keys[pos:n-1], keys[pos+1:n])
		keys[n-1] = 0
		if g.CompareAndSwap(w, pack(&keys, n-1)) {
			return 0
		}
	}
}

// Contains reports membership of key with a single atomic load.
func (s *Set) Contains(key int) bool {
	s.checkKey(key)
	w := s.groups[GroupOf(key, len(s.groups))].Load()
	var keys [SlotsPerGroup]int
	n := unpack(w, &keys)
	for i := 0; i < n; i++ {
		if keys[i] == key {
			return true
		}
	}
	return false
}

// Apply implements conc.Applier (the pid is unused — the table needs no
// per-process state).
func (s *Set) Apply(_ int, op core.Op) int {
	switch op.Name {
	case spec.OpInsert:
		return s.Insert(op.Arg)
	case spec.OpRemove:
		return s.Remove(op.Arg)
	case spec.OpLookup:
		if s.Contains(op.Arg) {
			return 1
		}
		return 0
	default:
		panic("hihash: set: unknown op " + op.Name)
	}
}

// Elements returns the sorted members. Per-group reads are atomic but the
// composite read is not; call it only at quiescence.
func (s *Set) Elements() []int {
	var out []int
	for g := range s.groups {
		w := s.groups[g].Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		out = append(out, keys[:n]...)
	}
	sort.Ints(out)
	return out
}

// Snapshot renders the memory representation: every group's keys in slot
// order.
func (s *Set) Snapshot() string {
	parts := make([]string, len(s.groups))
	for g := range s.groups {
		w := s.groups[g].Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		parts[g] = fmt.Sprintf("g%d=%s", g, EncodeGroup(keys[:n]))
	}
	return strings.Join(parts, " | ")
}

// CanonicalSetSnapshot returns the canonical memory representation of the
// abstract state elems for a (domain, nGroups) table: each group holds its
// keys in priority order. Snapshot must equal it at quiescence (and, for
// this table, at every other instant too).
func CanonicalSetSnapshot(domain, nGroups int, elems []int) string {
	encs := CanonicalGroups(Params{T: domain, G: nGroups, B: SlotsPerGroup}, elems)
	parts := make([]string, len(encs))
	for g, e := range encs {
		parts[g] = fmt.Sprintf("g%d=%s", g, e)
	}
	return strings.Join(parts, " | ")
}
