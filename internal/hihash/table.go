package hihash

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
)

// SlotsPerGroup is the native group capacity B: four 16-bit slots packed
// into one uint64 CAS word. Each slot holds a 15-bit key plus a
// relocation mark bit, so a within-group relocation (the shift that keeps
// slots in priority order on insert and delete) is one atomic
// compare-and-swap, and a cross-group relocation is a short marked
// protocol over two words (see displace.go).
const SlotsPerGroup = 4

// MaxDomain is the largest key the native tables accept: 15 bits minus
// the top key value, which is reserved so the migration sentinel (the
// all-ones word) can never collide with a real packed group.
const MaxDomain = 0x7FFE

// tableState is one geometry of the native table: a group array, plus
// migration bookkeeping while the previous (half-sized) array drains.
// The current tableState is reached through Set.st; during an online
// resize prev points at the old state until every old group is gone.
type tableState struct {
	groups []atomic.Uint64
	// prev is the state being drained into this one, nil when migration
	// is complete (or never happened).
	prev atomic.Pointer[tableState]
}

func newTableState(nGroups int) *tableState {
	return &tableState{groups: make([]atomic.Uint64, nGroups)}
}

// Set is the native HICHT table: a lock-free, history-independent hash
// set over {1..domain} (domain <= MaxDomain). The group array is an
// array of uint64 CAS words of four slots each, holding keys in
// canonical priority order (ascending, low slots first, empty slots zero
// above them). Two disciplines are available:
//
//   - NewSet builds the bounded table (the PR-2 design): a key lives
//     only in its home group, every update is a single CAS on that
//     word, lookups are one atomic load, and the memory is canonical at
//     every instant — perfect HI. Inserts into a full home group return
//     RspFull.
//
//   - NewDisplaceSet builds the unbounded table: keys displace into
//     neighbouring groups in ordered Robin Hood priority (smaller keys
//     claim earlier groups of their probe run) via the marked
//     relocation protocol of displace.go, and the group array grows
//     online (resize.go) when probe runs lengthen, so Insert never
//     returns RspFull. The layout is the canonical displaced layout
//     (DisplacedGroups) whenever no update is pending — state-quiescent
//     HI, the class the HICHT paper proves; perfect HI is impossible
//     here because one insert can relocate keys across two group words
//     (Proposition 6).
//
// Unlike the universal-construction objects, a Set needs no per-process
// handles: any number of goroutines may call it directly.
type Set struct {
	domain    int
	displaced bool
	st        atomic.Pointer[tableState]
}

var _ conc.Applier = (*Set)(nil)

// DefaultGroups returns a group count giving the table roughly twice the
// domain in slot capacity — ample headroom against per-group overflow for
// balanced key sets.
func DefaultGroups(domain int) int {
	g := (2*domain + SlotsPerGroup - 1) / SlotsPerGroup
	if g < 1 {
		g = 1
	}
	return g
}

// NewSet creates a bounded table over keys {1..domain} with nGroups
// groups of SlotsPerGroup slots each.
func NewSet(domain, nGroups int) *Set {
	if domain < 1 || domain > MaxDomain {
		panic(fmt.Sprintf("hihash: set domain %d out of range 1..%d", domain, MaxDomain))
	}
	if nGroups < 1 {
		panic(fmt.Sprintf("hihash: invalid group count %d", nGroups))
	}
	s := &Set{domain: domain}
	s.st.Store(newTableState(nGroups))
	return s
}

// NewDisplaceSet creates an unbounded displacing table over keys
// {1..domain} starting from nGroups groups; the group array doubles
// online under insert pressure, so the table sustains home-group load
// factors above 1 with no RspFull responses.
func NewDisplaceSet(domain, nGroups int) *Set {
	s := NewSet(domain, nGroups)
	s.displaced = true
	return s
}

// Name implements conc.Applier.
func (s *Set) Name() string {
	kind := "set"
	if s.displaced {
		kind = "openset"
	}
	return fmt.Sprintf("hihash-%s[g=%d]", kind, s.NumGroups())
}

// NumGroups returns the current group count.
func (s *Set) NumGroups() int { return len(s.st.Load().groups) }

// Capacity returns the current total slot capacity of the table.
func (s *Set) Capacity() int { return s.NumGroups() * SlotsPerGroup }

// Displacing reports whether the table uses the unbounded displacing
// discipline.
func (s *Set) Displacing() bool { return s.displaced }

// --- slot encoding -----------------------------------------------------
//
// A slot is 16 bits: the low 15 bits hold the key (0 = empty slot) and
// bit 15 is the relocation mark. The slot value flagSlot (mark bit with
// key 0) is the restore flag: a hole opened by a delete that the
// backward shift has not yet refilled. gone is the migration sentinel
// for a fully drained old group; reserving key MaxDomain+1 guarantees no
// packed group can equal it.

const (
	slotMark = 0x8000
	slotKey  = 0x7FFF
	flagSlot = uint64(slotMark)
	gone     = ^uint64(0)
)

// slotAt extracts slot i of word w.
func slotAt(w uint64, i int) uint64 { return w >> (16 * i) & 0xFFFF }

// unpack extracts the unmarked keys of a group word in slot (priority)
// order, skipping marked keys and flags.
func unpack(w uint64, keys *[SlotsPerGroup]int) int {
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		s := slotAt(w, i)
		if s == 0 || s == flagSlot || s&slotMark != 0 {
			continue
		}
		keys[n] = int(s)
		n++
	}
	return n
}

// pack builds a group word from n keys already in priority order.
func pack(keys *[SlotsPerGroup]int, n int) uint64 {
	var w uint64
	for i := 0; i < n; i++ {
		w |= uint64(keys[i]) << (16 * i)
	}
	return w
}

func (s *Set) checkKey(key int) {
	if key < 1 || key > s.domain {
		panic(fmt.Sprintf("hihash: key %d out of range 1..%d", key, s.domain))
	}
}

// Insert adds key. It returns 0 on success (or if key was already
// present); the bounded table returns RspFull if key's home group is at
// capacity, the displacing table grows instead and never returns
// RspFull.
func (s *Set) Insert(key int) int {
	s.checkKey(key)
	if s.displaced {
		return s.displaceInsert(key)
	}
	st := s.st.Load()
	g := &st.groups[GroupOf(key, len(st.groups))]
	for {
		w := g.Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		pos := n
		for i := 0; i < n; i++ {
			if keys[i] == key {
				return 0
			}
			if keys[i] > key {
				pos = i
				break
			}
		}
		if n == SlotsPerGroup {
			return RspFull
		}
		// Shift lower-priority keys up one slot and place key — the
		// within-group relocation, folded into one CAS.
		copy(keys[pos+1:n+1], keys[pos:n])
		keys[pos] = key
		if g.CompareAndSwap(w, pack(&keys, n+1)) {
			stepAt(SpBoundedUpdate)
			return 0
		}
		histats.Inc(histats.CtrHashCASFail)
	}
}

// Remove deletes key (tombstone-free: for the bounded table the same CAS
// that removes the key restores the canonical layout of its group; for
// the displacing table the backward shift of displace.go refills the
// hole). It always returns 0.
func (s *Set) Remove(key int) int {
	s.checkKey(key)
	if s.displaced {
		return s.displaceRemove(key)
	}
	st := s.st.Load()
	g := &st.groups[GroupOf(key, len(st.groups))]
	for {
		w := g.Load()
		var keys [SlotsPerGroup]int
		n := unpack(w, &keys)
		pos := -1
		for i := 0; i < n; i++ {
			if keys[i] == key {
				pos = i
				break
			}
		}
		if pos < 0 {
			return 0
		}
		copy(keys[pos:n-1], keys[pos+1:n])
		keys[n-1] = 0
		if g.CompareAndSwap(w, pack(&keys, n-1)) {
			stepAt(SpBoundedUpdate)
			return 0
		}
		histats.Inc(histats.CtrHashCASFail)
	}
}

// Contains reports membership of key: a single atomic load plus a
// branch-free word-parallel match (swar.go) for the bounded table, a
// validated probe-run scan with a bounded retry budget for the
// displacing table. (The bounded table never marks slots, so matching
// marked-or-not is exact for it.)
func (s *Set) Contains(key int) bool {
	s.checkKey(key)
	if s.displaced {
		return s.displaceContains(key)
	}
	st := s.st.Load()
	w := st.groups[GroupOf(key, len(st.groups))].Load()
	return swarKeyLanes(w, swarBroadcast(key)) != 0
}

// Apply implements conc.Applier (the pid is unused — the table needs no
// per-process state).
func (s *Set) Apply(_ int, op core.Op) int {
	switch op.Name {
	case spec.OpInsert:
		return s.Insert(op.Arg)
	case spec.OpRemove:
		return s.Remove(op.Arg)
	case spec.OpLookup:
		if s.Contains(op.Arg) {
			return 1
		}
		return 0
	case spec.OpGrow:
		s.Grow()
		return 0
	default:
		panic("hihash: set: unknown op " + op.Name)
	}
}

// Elements returns the sorted members. Per-group reads are atomic but the
// composite read is not; call it only at quiescence.
func (s *Set) Elements() []int {
	var out []int
	seen := map[int]bool{}
	st := s.st.Load()
	collect := func(t *tableState) {
		for g := range t.groups {
			w := t.groups[g].Load()
			if w == gone {
				continue
			}
			for i := 0; i < SlotsPerGroup; i++ {
				sl := slotAt(w, i)
				if k := int(sl & slotKey); k != 0 && !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
		}
	}
	collect(st)
	if p := st.prev.Load(); p != nil {
		collect(p)
	}
	sort.Ints(out)
	return out
}

// Snapshot renders the memory representation: every group's slots in
// order, with relocation marks ("*" suffix) and restore flags ("+")
// visible. At quiescence it is the canonical layout of the key set
// (DisplacedSnapshot for the displacing table, CanonicalSetSnapshot for
// the bounded one) with no marks or flags.
func (s *Set) Snapshot() string {
	st := s.st.Load()
	parts := make([]string, len(st.groups))
	for g := range st.groups {
		parts[g] = fmt.Sprintf("g%d=%s", g, renderWord(st.groups[g].Load()))
	}
	snap := strings.Join(parts, " | ")
	if p := st.prev.Load(); p != nil {
		old := make([]string, len(p.groups))
		for g := range p.groups {
			old[g] = fmt.Sprintf("o%d=%s", g, renderWord(p.groups[g].Load()))
		}
		snap = strings.Join(old, " | ") + " || " + snap
	}
	return snap
}

// renderWord renders one group word in the EncodeGroup style, annotating
// marked keys with "*" and restore flags with "+".
func renderWord(w uint64) string {
	if w == gone {
		return "gone"
	}
	var parts []string
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		switch {
		case sl == 0:
		case sl == flagSlot:
			parts = append(parts, "+")
		case sl&slotMark != 0:
			parts = append(parts, fmt.Sprintf("%d*", sl&slotKey))
		default:
			parts = append(parts, fmt.Sprint(sl))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CanonicalSetSnapshot returns the canonical memory representation of the
// abstract state elems for a (domain, nGroups) table: each group holds
// its keys in priority order, with overflowing home groups spilled in
// displaced order (for states where no home group overflows — every
// state the bounded table can reach — this coincides with the bounded
// layout). Snapshot must equal it at quiescence.
func CanonicalSetSnapshot(domain, nGroups int, elems []int) string {
	return DisplacedSnapshot(domain, nGroups, elems)
}
