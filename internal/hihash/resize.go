package hihash

// Online resize of the displacing table.
//
// grow publishes a fresh tableState with twice the groups whose prev
// pointer holds the old state, then drains every old group into the new
// array. Draining is cooperative and idempotent: each key is placed in
// the new table first (destination first, so the key is findable at
// every instant) and only then dropped from its old group; a fully
// drained group is stamped with the gone sentinel. Every update
// operation entering the table drives the whole drain to completion
// before operating (current), which pins two invariants at once: an
// update's key can never hide in the old array when the update decides,
// and the new array cannot overfill while the old one still holds keys
// (a second grow cannot start before the first finishes). Lookups stay
// read-only and scan the old array source-first instead. When every old
// group is stamped gone, prev is detached and the resize is over.
//
// The operation that triggered the grow drains the whole old array
// before returning, so a completed resize cannot leave a half-migrated
// table behind at quiescence: the memory at every update-quiescent
// configuration is the canonical displaced layout of the new geometry.
//
// Capacity grows only (no shrink): the group count is a deterministic
// function of the insert pressure the table has seen, so the memory
// representation is a pure function of (key set, current capacity). The
// capacity itself reveals at most the high-watermark of the table's
// load — the standard residual leak of grow-only history-independent
// hash tables, stated in DESIGN.md.

import "math/bits"

// maxGroupsFactor caps growth at roughly four slots per domain key:
// beyond that no insert can fail for lack of room (keys are distinct and
// at most domain of them exist), so further doubling would only burn
// memory and drain sweeps.
const maxGroupsFactor = 4

// maxGroups is the growth ceiling for this table's domain.
func (s *Set) maxGroups() int {
	mg := (maxGroupsFactor*s.domain + SlotsPerGroup - 1) / SlotsPerGroup
	if mg < 1 {
		mg = 1
	}
	return mg
}

// Grow doubles the displacing table's group array (migrating all
// resident keys) and returns when the migration is complete. It is a
// no-op for the bounded table, whose geometry is fixed.
func (s *Set) Grow() {
	if !s.displaced {
		return
	}
	s.grow(s.st.Load())
}

// grow doubles the group array if st is still the current state,
// finishing any migration already in flight first. All callers observe
// a fully drained table on return.
func (s *Set) grow(st *tableState) {
	cur := s.st.Load()
	if p := cur.prev.Load(); p != nil {
		s.drainAll(p, cur)
	}
	if cur != st {
		// Someone already grew past the state we judged too small.
		return
	}
	if len(cur.groups) >= s.maxGroups() {
		// At the ceiling every key fits with room to spare; a walk that
		// still reported full was a transient of in-flight relocation
		// copies and resolves on retry. But no fresh array will ever
		// drain this one, so the rebuild a grow promises must happen in
		// place: repair whatever parked annotations remain. (A crashed
		// remove's restore flag in a group no surviving operation's probe
		// run crosses would otherwise outlive quiescence forever.)
		s.sweep(cur)
		return
	}
	next := newTableState(2 * len(cur.groups))
	next.prev.Store(cur)
	if s.st.CompareAndSwap(cur, next) {
		stepAt(SpGrowPublished)
		s.drainAll(cur, next)
	} else if p := s.st.Load().prev.Load(); p != nil {
		s.drainAll(p, s.st.Load())
	}
}

// sweep repairs every parked annotation of st in place: it completes
// marked relocations and runs the backward shift of every restore flag,
// group by group. It is the rebuild path of a grow at the capacity
// ceiling, where draining into a doubled array is no longer available.
func (s *Set) sweep(st *tableState) {
	for g := range st.groups {
		for {
			w := st.groups[g].Load()
			if w == gone {
				break
			}
			if m := wordAnyMarked(w); m != 0 {
				if s.relocateOut(st, m, g) == wsRestart {
					return
				}
				continue
			}
			if wordFlags(w) > 0 {
				if s.restore(st, g) == wsRestart {
					return
				}
				continue
			}
			break
		}
	}
}

// current returns the table state an update must operate in, driving
// any in-flight migration to completion first (see the package comment
// for why updates pay for the whole drain).
func (s *Set) current() *tableState {
	for {
		st := s.st.Load()
		p := st.prev.Load()
		if p == nil {
			return st
		}
		s.drainAll(p, st)
		if s.st.Load() == st {
			return st
		}
	}
}

// drainAll drains every old group into cur, then detaches prev —
// drainGroup returns only once its group is stamped gone, so after the
// sweep the old array is certainly empty.
func (s *Set) drainAll(p *tableState, cur *tableState) {
	for g := range p.groups {
		s.drainGroup(p, g, cur)
	}
	cur.prev.CompareAndSwap(p, nil)
}

// drainGroup moves every key of old group g into the current table and
// stamps the group gone. Restore flags are dropped (the old layout no
// longer needs repairing) and marked keys are moved like plain ones (the
// migration supersedes their old-array relocation; placement in the new
// table is idempotent, so racing helpers are harmless).
func (s *Set) drainGroup(p *tableState, g int, cur *tableState) {
	for {
		w := p.groups[g].Load()
		if w == gone {
			return
		}
		if wordFlags(w) > 0 {
			if p.groups[g].CompareAndSwap(w, wordReplace(w, flagSlot, 0)) {
				stepAt(SpDrainDropped)
			}
			continue
		}
		// First occupied slot, word-parallel (swar.go): the busy-lane
		// mask is zero exactly when the group is fully drained.
		var sl uint64
		if busy := swarBusyLanes(w); busy != 0 {
			sl = slotAt(w, bits.TrailingZeros64(busy)>>4)
		}
		if sl == 0 {
			if p.groups[g].CompareAndSwap(w, gone) {
				stepAt(SpGonePlaced)
			}
			continue
		}
		key := int(sl & slotKey)
		// Destination first: the key must live in the new table before
		// its old copy disappears.
		if rs, _ := s.placeKey(cur, key, -1); rs != wsDone {
			// wsFull cannot normally happen (the new array is twice the
			// old), and wsRestart means cur itself was resized — reload
			// and retry via the caller's loop.
			if rs == wsRestart {
				cur = s.st.Load()
			}
			continue
		}
		stepAt(SpDrainCopied)
		if p.groups[g].CompareAndSwap(w, wordReplace(w, sl, 0)) {
			stepAt(SpDrainDropped)
		}
	}
}
