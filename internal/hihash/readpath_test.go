package hihash

// White-box tests of the bounded-retry read path (E26): the helping
// fallback must answer correctly from crafted interference windows and
// leave the layout canonical, and the whole lookup surface must stay
// correct when every lookup is forced through the slow path.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiconc/internal/histats"
)

// keysHomingAt returns n distinct keys of {1..domain} homing at group
// home of a G-group table.
func keysHomingAt(t *testing.T, domain, G, home, n int) []int {
	t.Helper()
	var ks []int
	for k := 1; k <= domain && len(ks) < n; k++ {
		if GroupOf(k, G) == home {
			ks = append(ks, k)
		}
	}
	if len(ks) < n {
		t.Fatalf("only %d keys of 1..%d home at group %d of %d", len(ks), domain, home, G)
	}
	return ks
}

// TestContainsSlowResolvesParkedMark pins the helping fallback against
// a crafted parked relocation: a marked key with no owning operation.
// The slow path must (1) report the marked key present without helping
// anything — a marked key is logically present and found directly; and
// (2) for an absent key probing the same run, complete the parked
// relocation itself and then answer from the stable view it produced,
// leaving the memory canonical.
func TestContainsSlowResolvesParkedMark(t *testing.T) {
	const domain, G = 2000, 4
	ks := keysHomingAt(t, domain, G, 0, 5)
	x1, x2, mk, a := ks[0], ks[1], ks[3], ks[4]
	craft := func() *Set {
		s := NewDisplaceSet(domain, G)
		crafted := [SlotsPerGroup]uint64{uint64(x1), uint64(x2), uint64(a), uint64(mk) | slotMark}
		s.st.Load().groups[0].Store(packWord(&crafted, 4))
		return s
	}

	s := craft()
	within(t, 20*time.Second, "containsSlow wedged on a present marked key", func() {
		if !s.containsSlow(mk) {
			t.Error("containsSlow(marked key) = false")
		}
	})

	// An absent key homing at the crafted group: driven into the slow
	// path directly, the lookup must complete the parked relocation
	// itself and conclude absence from the stable view it produced.
	s = craft()
	absent := keysHomingAt(t, domain, G, 0, 6)[5]
	within(t, 20*time.Second, "containsSlow wedged helping a parked mark", func() {
		if s.containsSlow(absent) {
			t.Errorf("containsSlow(%d) = true for an absent key", absent)
		}
	})
	// Helping completed the parked relocation: every key still present,
	// memory canonical — reads repaired the layout without changing the
	// abstract state.
	want := []int{x1, x2, mk, a}
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after slow-path helping", k)
		}
	}
	if got, canon := s.Snapshot(), CanonicalSetSnapshot(domain, s.NumGroups(), want); got != canon {
		t.Fatalf("memory not canonical after slow-path helping:\n got:  %s\n want: %s", got, canon)
	}
}

// TestContainsSlowResolvesRestoreFlag drives the slow path through a
// crafted restore flag (a parked backward shift): the scan reads the
// flagged group as full, so an absent key cannot be judged from it; the
// slow path must run the shift and answer from the repaired layout.
func TestContainsSlowResolvesRestoreFlag(t *testing.T) {
	const domain, G = 2000, 4
	ks := keysHomingAt(t, domain, G, 0, 5)
	x1, x2, x3 := ks[0], ks[1], ks[2]
	s := NewDisplaceSet(domain, G)
	// Group 0 full-with-flag: three residents and a parked hole.
	crafted := [SlotsPerGroup]uint64{uint64(x1), uint64(x2), uint64(x3), flagSlot}
	s.st.Load().groups[0].Store(packWord(&crafted, 4))
	absent := ks[4]
	within(t, 20*time.Second, "containsSlow wedged on a parked restore flag", func() {
		if s.containsSlow(absent) {
			t.Errorf("containsSlow(%d) = true for an absent key", absent)
		}
	})
	want := []int{x1, x2, x3}
	if got, canon := s.Snapshot(), CanonicalSetSnapshot(domain, s.NumGroups(), want); got != canon {
		t.Fatalf("memory not canonical after flag repair:\n got:  %s\n want: %s", got, canon)
	}
}

// TestLookupSlowPathOnly forces every displacing lookup through the
// helping fallback (retry budget zero) and replays a randomized
// single-goroutine history against a model set, across enough inserts
// to cross several online resizes. The slow path is not a degraded
// approximation — it must be exactly Contains.
func TestLookupSlowPathOnly(t *testing.T) {
	defer func(old int) { lookupRetryLimit = old }(lookupRetryLimit)
	lookupRetryLimit = 0

	const domain = 512
	s := NewDisplaceSet(domain, 2) // tiny: grows online under the churn
	model := map[int]bool{}
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 20000; i++ {
		k := rng.Intn(domain) + 1
		switch rng.Intn(3) {
		case 0:
			s.Insert(k)
			model[k] = true
		case 1:
			s.Remove(k)
			delete(model, k)
		default:
			if got := s.Contains(k); got != model[k] {
				t.Fatalf("step %d: Contains(%d) = %v, model %v", i, k, got, model[k])
			}
		}
	}
	for k := 1; k <= domain; k++ {
		if got := s.Contains(k); got != model[k] {
			t.Fatalf("final: Contains(%d) = %v, model %v", k, got, model[k])
		}
	}
}

// TestLookupMetricsWired pins the metrics contract of the slow path
// deterministically: with a zero retry budget every displacing lookup
// lands in the helping fallback, so the help counter and the
// full-budget retry observation must both record. (CtrLookupRetry
// itself only counts genuine validation races, which no
// single-goroutine schedule can force — the churn test below covers
// it statistically.)
func TestLookupMetricsWired(t *testing.T) {
	defer func(old int) { lookupRetryLimit = old }(lookupRetryLimit)
	lookupRetryLimit = 0
	r := histats.Enable()
	defer histats.Disable()
	s := NewDisplaceSet(64, 4)
	s.Insert(1)
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("slow-path lookup answered wrong")
	}
	snap := r.Snapshot()
	if got := snap.Counters[histats.CtrLookupHelp]; got != 2 {
		t.Fatalf("CtrLookupHelp = %d after two slow lookups, want 2", got)
	}
	if got := snap.Hists[histats.HistLookupRetry].Count; got != 2 {
		t.Fatalf("HistLookupRetry count = %d after two slow lookups, want 2", got)
	}
}

// TestLookupRetriesBoundedUnderChurn hammers a displacing table with
// update churn and concurrent readers, then checks the E26 contract on
// the retry metrics: every lookup that retried resolved within the
// budget (the HistLookupRetry maximum never exceeds lookupRetryLimit),
// and stable keys never misread. Readers run a fixed op count; writers
// churn the volatile key range until the readers are done.
func TestLookupRetriesBoundedUnderChurn(t *testing.T) {
	const domain, stable, readers, writers = 1024, 64, 4, 4
	readerOps := 50000
	if testing.Short() {
		readerOps = 5000
	}
	r := histats.Enable()
	defer histats.Disable()

	s := NewDisplaceSet(domain, 8)
	for k := 1; k <= stable; k++ {
		s.Insert(k)
	}
	stop := make(chan struct{})
	var writersWG, readersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := stable + 1 + rng.Intn(domain-stable)
				if rng.Intn(2) == 0 {
					s.Insert(k)
				} else {
					s.Remove(k)
				}
			}
		}(int64(w))
	}
	var misread atomic.Int64
	for g := 0; g < readers; g++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < readerOps; i++ {
				if k := rng.Intn(stable) + 1; !s.Contains(k) {
					misread.Store(int64(k))
					return
				}
				s.Contains(stable + 1 + rng.Intn(domain-stable))
			}
		}(int64(g))
	}
	readersWG.Wait()
	close(stop)
	writersWG.Wait()
	if k := misread.Load(); k != 0 {
		t.Fatalf("stable key misread under churn: Contains(%d) = false", k)
	}

	snap := r.Snapshot()
	if max, lim := snap.Hists[histats.HistLookupRetry].Max(), uint64(lookupRetryLimit); max > lim {
		t.Fatalf("HistLookupRetry max = %d, want <= %d", max, lim)
	}
	t.Logf("lookup retries: %d, help fallbacks: %d, retried-lookup max: %d",
		snap.Counters[histats.CtrLookupRetry],
		snap.Counters[histats.CtrLookupHelp],
		snap.Hists[histats.HistLookupRetry].Max())
}
