package hihash

// SWAR (SIMD-within-a-register) slot matching for the packed group word.
//
// A group is one uint64 of four 16-bit slots; each slot is a 15-bit key
// (0 = empty) plus the relocation mark in bit 15, and flagSlot (mark bit
// with key 0) is the restore flag. The read path classifies all four
// slots of a word in a handful of ALU operations instead of a
// four-iteration extract-and-compare loop:
//
//   - broadcast the probe key into every lane (one multiply by the
//     per-lane ones pattern), XOR against the word, and mask off the mark
//     bits: a lane is zero exactly where the slot's key matches;
//   - detect zero lanes borrow-free: every lane of y|swarHigh is at
//     least 0x8000, so subtracting 1 from each lane cannot borrow into
//     its neighbour, and the lane's high bit survives the subtraction
//     unless the lane was exactly 0x8000 — i.e. unless y's lane was 0.
//     ^((y|swarHigh) - swarLanes) & swarHigh is therefore the exact
//     zero-lane mask for any y with clear lane-high bits (which the
//     & swarLow above guarantees).
//
// The same zero-lane primitive classifies empties (low bits zero, mark
// clear), restore flags (low bits zero, mark set) and marked keys (low
// bits nonzero, mark set), which the probe-scan predicates (wordClean,
// wordZeros, ...) are built from in displace.go.
//
// Two encoding facts keep the matcher honest with no extra masking:
// probe keys are 1..MaxDomain (0x7FFE), so a key match can never hit an
// empty lane (key 0) or the reserved key 0x7FFF — and the migration
// sentinel gone (all ones, four lanes of key 0x7FFF) can never
// false-match either. The differential fuzz test FuzzSWARMatch pins all
// of this bit-for-bit against the scalar reference loop (reference.go).

import "math/bits"

const (
	// swarLanes has 1 in the low bit of every 16-bit lane; multiplying a
	// 16-bit value by it broadcasts the value into all four lanes.
	swarLanes = 0x0001_0001_0001_0001
	// swarHigh selects the mark bit of every lane.
	swarHigh = 0x8000_8000_8000_8000
	// swarLow selects the 15 key bits of every lane.
	swarLow = 0x7FFF_7FFF_7FFF_7FFF
)

// swarBroadcast replicates key into all four lanes. Callers hoist it out
// of probe loops: one multiply serves every word of the run.
func swarBroadcast(key int) uint64 { return uint64(key) * swarLanes }

// swarZeroLanes returns the mark-bit mask of the all-zero lanes of y.
// y must have the high bit of every lane clear (mask with swarLow
// first); the result is then exact — no false positives from borrows.
func swarZeroLanes(y uint64) uint64 {
	return ^((y | swarHigh) - swarLanes) & swarHigh
}

// swarKeyLanes returns the mark-bit mask of the lanes whose slot key
// equals the broadcast key (marked or not). bcast must be
// swarBroadcast(key) for a key in 1..MaxDomain.
func swarKeyLanes(w, bcast uint64) uint64 {
	return swarZeroLanes((w ^ bcast) & swarLow)
}

// swarFind returns the lowest slot index whose key matches bcast, or -1.
func swarFind(w, bcast uint64) int {
	m := swarKeyLanes(w, bcast)
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(m) >> 4
}

// swarEmptyLanes returns the mark-bit mask of the empty slots (key and
// mark both zero).
func swarEmptyLanes(w uint64) uint64 {
	return swarZeroLanes(w&swarLow) &^ w
}

// swarFlagLanes returns the mark-bit mask of the restore flags (key
// zero, mark set).
func swarFlagLanes(w uint64) uint64 {
	return swarZeroLanes(w&swarLow) & w
}

// swarMarkLanes returns the mark-bit mask of the marked keys (key
// nonzero, mark set).
func swarMarkLanes(w uint64) uint64 {
	return w & swarHigh &^ swarZeroLanes(w&swarLow)
}

// swarBusyLanes returns the mark-bit mask of the non-empty slots (any
// key, flag or mark).
func swarBusyLanes(w uint64) uint64 {
	return swarHigh &^ swarEmptyLanes(w)
}
