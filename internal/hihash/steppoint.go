package hihash

import (
	"hiconc/internal/hirec"
	"hiconc/internal/histats"
	"hiconc/internal/hook"
)

// Steppoints label the shared-memory transitions of the native table's
// protocols — the instants at which a crashing thread can abandon the
// table in an intermediate window. Each label fires immediately AFTER
// the corresponding CAS succeeds, so a fault injector that kills the
// goroutine at a steppoint leaves memory exactly as an adversarial crash
// would: the write is visible, the rest of the protocol never ran.
//
// The displacement protocol (displace.go) exposes the windows of a
// cross-group relocation: the mark planted, the destination written but
// the source not yet cleared, the source released into a restore flag
// but the backward shift not yet run. The resize protocol (resize.go)
// exposes the windows of a migration: the doubled array published, a key
// copied into it but not yet dropped from the old group, the old copy
// dropped, the gone sentinel stamped. The bounded table has a single
// steppoint — its one-CAS updates have no intermediate windows, which is
// exactly why it is perfectly HI.
//
// internal/faultinject builds on these hooks; see EXPERIMENTS.md E23.

// Steppoint identifies one labeled protocol step.
type Steppoint uint8

// The labeled steps, in rough protocol order.
const (
	// SpBoundedUpdate: a bounded-mode insert or remove CAS landed (the
	// whole update — there is no intermediate window to crash in).
	SpBoundedUpdate Steppoint = iota
	// SpMarkSet: a relocation mark was planted on a resident key (Robin
	// Hood eviction, stranded-key pull-back, or backward-shift pull-back).
	SpMarkSet
	// SpDestWritten: a displaced key's new copy landed in its destination
	// group (empty-slot claim or flagged-hole claim), before the
	// post-placement reachability validation ran.
	SpDestWritten
	// SpEvictSwap: an eviction's stale mark was swapped for the incoming
	// key in one CAS (finishEvict), or an obsolete relocation was
	// cancelled in place.
	SpEvictSwap
	// SpSourceCleared: a completed relocation released its stale source
	// slot into a restore flag, before the backward shift ran.
	SpSourceCleared
	// SpFlagPlaced: a remove released its key's slot into a restore flag,
	// before the backward shift ran.
	SpFlagPlaced
	// SpFlagCleared: a backward shift cleared a restore flag whose hole no
	// displaced key had crossed.
	SpFlagCleared
	// SpGrowPublished: a grow published the doubled group array, before
	// any old group drained.
	SpGrowPublished
	// SpDrainCopied: a migration drain placed an old key's copy in the
	// current array, before the old copy was dropped (the key is
	// momentarily in both arrays).
	SpDrainCopied
	// SpDrainDropped: a migration drain released an old-group slot (a
	// migrated key's stale copy, or a restore flag the migration
	// supersedes).
	SpDrainDropped
	// SpGonePlaced: a fully drained old group was stamped with the gone
	// sentinel.
	SpGonePlaced

	// NumSteppoints bounds the enumeration (for iterating crash matrices).
	NumSteppoints
)

var steppointNames = [NumSteppoints]string{
	SpBoundedUpdate: "bounded-update",
	SpMarkSet:       "mark-set",
	SpDestWritten:   "dest-written",
	SpEvictSwap:     "evict-swap",
	SpSourceCleared: "source-cleared",
	SpFlagPlaced:    "flag-placed",
	SpFlagCleared:   "flag-cleared",
	SpGrowPublished: "grow-published",
	SpDrainCopied:   "drain-copied",
	SpDrainDropped:  "drain-dropped",
	SpGonePlaced:    "gone-placed",
}

// String implements fmt.Stringer.
func (p Steppoint) String() string {
	if int(p) < len(steppointNames) {
		return steppointNames[p]
	}
	return "steppoint(?)"
}

// stepHook is the installed observer, empty when none. It is a
// hook.Point so tests can install and remove hooks while table
// goroutines run; the indirection through *func keeps the load
// race-free.
var stepHook hook.Point[func(Steppoint)]

// SetStepHook installs fn as the global steppoint observer (nil removes
// it). The hook is called synchronously on the goroutine that performed
// the protocol step, immediately after its CAS succeeded; it may block
// the goroutine (parking it in the window) or kill it via runtime.Goexit
// (crashing it there). Intended for fault-injection tests
// (internal/faultinject); production code leaves it nil, costing one
// atomic load per protocol step.
func SetStepHook(fn func(Steppoint)) {
	if fn == nil {
		stepHook.Uninstall()
		return
	}
	stepHook.Install(&fn)
}

// stepCounter maps each steppoint to its histats mirror, so the metrics
// layer counts protocol steps without a second enumeration. The
// observers are independent globals (each an internal/hook point):
// faultinject owns the step hook, histats owns its recorder pointer,
// hirec owns the flight recorder, and any may be installed without the
// others.
var stepCounter = [NumSteppoints]histats.Counter{
	SpBoundedUpdate: histats.CtrBoundedUpdate,
	SpMarkSet:       histats.CtrMarkSet,
	SpDestWritten:   histats.CtrDestWritten,
	SpEvictSwap:     histats.CtrEvictSwap,
	SpSourceCleared: histats.CtrSourceCleared,
	SpFlagPlaced:    histats.CtrFlagPlaced,
	SpFlagCleared:   histats.CtrFlagCleared,
	SpGrowPublished: histats.CtrGrowPublished,
	SpDrainCopied:   histats.CtrDrainCopied,
	SpDrainDropped:  histats.CtrDrainDropped,
	SpGonePlaced:    histats.CtrGonePlaced,
}

// stepAt reports a completed protocol step to the installed hook, the
// metrics layer and the flight recorder. The count and the recorded
// event land first: the CAS has already happened, and a fault-injection
// hook may kill the goroutine — the crash then shows up in the
// recording as a step with no following response, exactly what the
// post-hoc checker expects of a crashed operation.
func stepAt(p Steppoint) {
	histats.Inc(stepCounter[p])
	hirec.Step(steppointNames[p])
	if fn := stepHook.Load(); fn != nil {
		(*fn)(p)
	}
}
