package hihash

// White-box regression tests: states that only adversarial interleavings
// reach are crafted directly into the group words, so the exact windows
// the concurrent protocol must survive are pinned as deterministic
// tests.

import (
	"testing"
	"time"
)

// within runs fn to completion on its own goroutine, failing the test if
// it wedges for d. It is a watchdog against livelock regressions, not a
// synchronization point — completion is signaled by channel close, and a
// sweep of the test tree found no bare time.Sleep synchronization
// anywhere (cross-goroutine ordering is always a channel or WaitGroup).
func within(t *testing.T, d time.Duration, wedged string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal(wedged)
	}
}

// TestPlaceKeyParkedMarkNotMax pins the self-help recursion regression:
// a marked key that is no longer its group's maximum (a larger key
// claimed a slot freed while the mark was parked). A walk that outranks
// the larger key helps the parked relocation; the helper's placement
// walk must treat the key's own mark at the source group as invisible
// and cancel the obsolete relocation in place — naively "helping" it
// from its own completion path recursed forever and overflowed the
// stack.
func TestPlaceKeyParkedMarkNotMax(t *testing.T) {
	const domain, G = 2000, 4
	s := NewDisplaceSet(domain, G)
	var ks []int
	for k := 1; k <= domain && len(ks) < 5; k++ {
		if GroupOf(k, G) == 0 {
			ks = append(ks, k)
		}
	}
	if len(ks) < 5 {
		t.Fatalf("not enough keys homing at group 0: %v", ks)
	}
	x1, x2, c, mk, a := ks[0], ks[1], ks[2], ks[3], ks[4]
	// The adversarial window, crafted directly: mk is marked (its
	// eviction is parked) and a > mk occupies the slot a racing remove
	// freed, so the marked key is not the group max.
	st := s.st.Load()
	crafted := [SlotsPerGroup]uint64{uint64(x1), uint64(x2), uint64(a), uint64(mk) | slotMark}
	st.groups[0].Store(packWord(&crafted, 4))
	var rsp int
	within(t, 20*time.Second, "Insert wedged helping a parked, outranked mark", func() {
		rsp = s.Insert(c)
	})
	if rsp != 0 {
		t.Fatalf("Insert(%d) = %d", c, rsp)
	}
	// The cancel-in-place resolution must leave every key present and
	// the layout canonical.
	want := []int{x1, x2, c, mk, a}
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after recovery", k)
		}
	}
	if got, canon := s.Snapshot(), CanonicalSetSnapshot(domain, s.NumGroups(), want); got != canon {
		t.Fatalf("memory not canonical after recovery:\n got:  %s\n want: %s", got, canon)
	}
}

// TestRemoveWithParkedOutrankedMark drives Remove through the same
// crafted window: removing the marked key itself, and removing a plain
// resident, must both resolve the parked relocation rather than spin or
// resurrect.
func TestRemoveWithParkedOutrankedMark(t *testing.T) {
	const domain, G = 2000, 4
	var ks []int
	for k := 1; k <= domain && len(ks) < 5; k++ {
		if GroupOf(k, G) == 0 {
			ks = append(ks, k)
		}
	}
	x1, x2, mk, a := ks[0], ks[1], ks[3], ks[4]
	craft := func() *Set {
		s := NewDisplaceSet(domain, G)
		crafted := [SlotsPerGroup]uint64{uint64(x1), uint64(x2), uint64(a), uint64(mk) | slotMark}
		s.st.Load().groups[0].Store(packWord(&crafted, 4))
		return s
	}
	for _, victim := range []int{mk, x1, a} {
		s := craft()
		within(t, 20*time.Second, "Remove wedged on the parked mark", func() {
			s.Remove(victim)
		})
		if s.Contains(victim) {
			t.Fatalf("Contains(%d) = true after Remove", victim)
		}
		// A crafted mark has no owning operation to complete it, so a
		// remove of an unrelated key may leave it parked (in real
		// executions the owner finishes it). A grow's drain supersedes
		// any parked relocation; after it the memory must be canonical.
		s.Grow()
		if got, canon := s.Snapshot(), CanonicalSetSnapshot(domain, s.NumGroups(), s.Elements()); got != canon {
			t.Fatalf("Remove(%d): memory not canonical:\n got:  %s\n want: %s", victim, got, canon)
		}
	}
}
