package hihash

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Spec is the sequential specification of the bounded hash table: a set
// over {1..T} whose insert additionally respects the fixed geometry — an
// insert into a group already holding B other keys responds RspFull and
// leaves the state unchanged. States are encoded as membership bit strings
// exactly like spec.Set, so the spec stays bounded and hicheck-friendly;
// the geometry only shows up in Δ through the RspFull branch.
type Spec struct {
	// P is the table geometry shared with the implementations.
	P Params
}

var _ core.Spec = Spec{}

// NewSpec returns the bounded hash-table specification for geometry p.
func NewSpec(p Params) Spec {
	p.Validate()
	return Spec{P: p}
}

// Name implements core.Spec.
func (s Spec) Name() string { return fmt.Sprintf("hihash[%v]", s.P) }

// Init implements core.Spec: the empty table.
func (s Spec) Init() string { return strings.Repeat("0", s.P.T) }

// groupLoad counts the members of state hashing to group g.
func (s Spec) groupLoad(state string, g int) int {
	n := 0
	for k := 1; k <= s.P.T; k++ {
		if state[k-1] == '1' && GroupOf(k, s.P.G) == g {
			n++
		}
	}
	return n
}

// Apply implements core.Spec.
func (s Spec) Apply(state string, op core.Op) (string, int) {
	if len(state) != s.P.T {
		panic("hihash: bad spec state " + state)
	}
	if op.Arg < 1 || op.Arg > s.P.T {
		panic(fmt.Sprintf("hihash: spec op %v out of range 1..%d", op, s.P.T))
	}
	i := op.Arg - 1
	member := state[i] == '1'
	switch op.Name {
	case spec.OpInsert:
		if member {
			return state, 0
		}
		if s.groupLoad(state, GroupOf(op.Arg, s.P.G)) >= s.P.B {
			return state, RspFull
		}
		return state[:i] + "1" + state[i+1:], 0
	case spec.OpRemove:
		if !member {
			return state, 0
		}
		return state[:i] + "0" + state[i+1:], 0
	case spec.OpLookup:
		if member {
			return state, 1
		}
		return state, 0
	default:
		panic("hihash: spec: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (s Spec) ReadOnly(op core.Op) bool { return op.Name == spec.OpLookup }

// Ops implements core.Spec.
func (s Spec) Ops(string) []core.Op {
	ops := make([]core.Op, 0, 3*s.P.T)
	for v := 1; v <= s.P.T; v++ {
		ops = append(ops,
			core.Op{Name: spec.OpInsert, Arg: v},
			core.Op{Name: spec.OpRemove, Arg: v},
			core.Op{Name: spec.OpLookup, Arg: v},
		)
	}
	return ops
}

// StateElems decodes a spec state back into its sorted elements.
func StateElems(state string) []int {
	var out []int
	for i, c := range state {
		if c == '1' {
			out = append(out, i+1)
		}
	}
	return out
}
