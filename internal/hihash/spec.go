package hihash

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Spec is the sequential specification of the bounded hash table: a set
// over {1..T} whose insert additionally respects the fixed geometry — an
// insert into a group already holding B other keys responds RspFull and
// leaves the state unchanged. States are encoded as membership bit strings
// exactly like spec.Set, so the spec stays bounded and hicheck-friendly;
// the geometry only shows up in Δ through the RspFull branch.
type Spec struct {
	// P is the table geometry shared with the implementations.
	P Params
}

var _ core.Spec = Spec{}

// NewSpec returns the bounded hash-table specification for geometry p.
func NewSpec(p Params) Spec {
	p.Validate()
	return Spec{P: p}
}

// Name implements core.Spec.
func (s Spec) Name() string { return fmt.Sprintf("hihash[%v]", s.P) }

// Init implements core.Spec: the empty table.
func (s Spec) Init() string { return strings.Repeat("0", s.P.T) }

// groupLoad counts the members of state hashing to group g.
func (s Spec) groupLoad(state string, g int) int {
	n := 0
	for k := 1; k <= s.P.T; k++ {
		if state[k-1] == '1' && GroupOf(k, s.P.G) == g {
			n++
		}
	}
	return n
}

// Apply implements core.Spec.
func (s Spec) Apply(state string, op core.Op) (string, int) {
	if len(state) != s.P.T {
		panic("hihash: bad spec state " + state)
	}
	if op.Arg < 1 || op.Arg > s.P.T {
		panic(fmt.Sprintf("hihash: spec op %v out of range 1..%d", op, s.P.T))
	}
	i := op.Arg - 1
	member := state[i] == '1'
	switch op.Name {
	case spec.OpInsert:
		if member {
			return state, 0
		}
		if s.groupLoad(state, GroupOf(op.Arg, s.P.G)) >= s.P.B {
			return state, RspFull
		}
		return state[:i] + "1" + state[i+1:], 0
	case spec.OpRemove:
		if !member {
			return state, 0
		}
		return state[:i] + "0" + state[i+1:], 0
	case spec.OpLookup:
		if member {
			return state, 1
		}
		return state, 0
	default:
		panic("hihash: spec: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (s Spec) ReadOnly(op core.Op) bool { return op.Name == spec.OpLookup }

// Ops implements core.Spec.
func (s Spec) Ops(string) []core.Op {
	ops := make([]core.Op, 0, 3*s.P.T)
	for v := 1; v <= s.P.T; v++ {
		ops = append(ops,
			core.Op{Name: spec.OpInsert, Arg: v},
			core.Op{Name: spec.OpRemove, Arg: v},
			core.Op{Name: spec.OpLookup, Arg: v},
		)
	}
	return ops
}

// StateElems decodes a spec state back into its sorted elements.
func StateElems(state string) []int {
	var out []int
	for i, c := range state {
		if c == '1' {
			out = append(out, i+1)
		}
	}
	return out
}

// DisplaceSpec is the sequential specification of the displacing,
// resizable hash table: a set over {1..T} together with the table's
// current level — 0 for the initial geometry (G groups), 1 after an
// explicit grow operation doubled the group array. Because the level is
// part of the abstract state, the memory representation stays a pure
// function of the state: same key set at the same level, same canonical
// displaced layout. States are encoded "<bits>|<level>". Displacement
// makes every free slot reachable, so insert responds RspFull only when
// the whole table is full at the current level.
type DisplaceSpec struct {
	// P is the level-0 geometry; level 1 doubles P.G.
	P Params
}

var _ core.Spec = DisplaceSpec{}

// NewDisplaceSpec returns the displacing hash-table specification for
// level-0 geometry p.
func NewDisplaceSpec(p Params) DisplaceSpec {
	p.Validate()
	return DisplaceSpec{P: p}
}

// Name implements core.Spec.
func (s DisplaceSpec) Name() string { return fmt.Sprintf("hihash-displace[%v]", s.P) }

// Init implements core.Spec: the empty table at level 0.
func (s DisplaceSpec) Init() string { return strings.Repeat("0", s.P.T) + "|0" }

// splitState decodes a spec state into its membership bits and level.
func (s DisplaceSpec) splitState(state string) (string, int) {
	if len(state) != s.P.T+2 || state[s.P.T] != '|' ||
		(state[s.P.T+1] != '0' && state[s.P.T+1] != '1') {
		panic("hihash: bad displace spec state " + state)
	}
	return state[:s.P.T], int(state[s.P.T+1] - '0')
}

// LevelGroups returns the group count at the given level.
func (s DisplaceSpec) LevelGroups(level int) int { return s.P.G << level }

// Apply implements core.Spec.
func (s DisplaceSpec) Apply(state string, op core.Op) (string, int) {
	bits, level := s.splitState(state)
	if op.Name == spec.OpGrow {
		// Growing an already-grown table is a no-op (the sim twin models
		// one doubling).
		return bits + "|1", 0
	}
	if op.Arg < 1 || op.Arg > s.P.T {
		panic(fmt.Sprintf("hihash: displace spec op %v out of range 1..%d", op, s.P.T))
	}
	i := op.Arg - 1
	member := bits[i] == '1'
	suffix := state[s.P.T:]
	switch op.Name {
	case spec.OpInsert:
		if member {
			return state, 0
		}
		if strings.Count(bits, "1") >= s.LevelGroups(level)*s.P.B {
			return state, RspFull
		}
		return bits[:i] + "1" + bits[i+1:] + suffix, 0
	case spec.OpRemove:
		if !member {
			return state, 0
		}
		return bits[:i] + "0" + bits[i+1:] + suffix, 0
	case spec.OpLookup:
		if member {
			return state, 1
		}
		return state, 0
	default:
		panic("hihash: displace spec: unknown op " + op.Name)
	}
}

// ReadOnly implements core.Spec.
func (s DisplaceSpec) ReadOnly(op core.Op) bool { return op.Name == spec.OpLookup }

// Ops implements core.Spec.
func (s DisplaceSpec) Ops(string) []core.Op {
	ops := make([]core.Op, 0, 3*s.P.T+1)
	for v := 1; v <= s.P.T; v++ {
		ops = append(ops,
			core.Op{Name: spec.OpInsert, Arg: v},
			core.Op{Name: spec.OpRemove, Arg: v},
			core.Op{Name: spec.OpLookup, Arg: v},
		)
	}
	return append(ops, core.Op{Name: spec.OpGrow})
}

// DisplaceStateElems decodes a displace spec state into its sorted
// elements and level.
func (s DisplaceSpec) DisplaceStateElems(state string) ([]int, int) {
	bits, level := s.splitState(state)
	return StateElems(bits), level
}
