package hihash_test

import (
	"errors"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/hihash"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

func growOp() core.Op { return core.Op{Name: spec.OpGrow} }

// displaceParams is the exhaustively checkable geometry: 3 keys over 2
// groups of 1 slot (capacity 2 at level 0, 4 at level 1), so
// displacement, RspFull-at-capacity and the online resize all occur
// within checker bounds.
var displaceParams = hihash.Params{T: 3, G: 2, B: 1}

// TestDisplaceSimSequentialCanon: every sequential execution of the
// displacing twin reaching the same abstract state (key set + level)
// leaves the same memory, and that memory is exactly the canonical
// displaced layout DisplaceCanonicalMemory computes. This is the
// machine-checked order-independence of the displaced layout, including
// across the resize boundary.
func TestDisplaceSimSequentialCanon(t *testing.T) {
	p := displaceParams
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	states, err := core.Reachable(h.Spec, 200)
	if err != nil {
		t.Fatal(err)
	}
	// All 15 reachable states except the full level-1 table, which needs
	// 4 operations (grow plus three inserts) — beyond the 3-op bound.
	if len(c.ByState) < len(states)-1 {
		t.Errorf("canonical map covers %d states, want >= %d", len(c.ByState), len(states)-1)
	}
	sp := hihash.NewDisplaceSpec(p)
	for st, mem := range c.ByState {
		elems, level := sp.DisplaceStateElems(st)
		want := hihash.DisplaceCanonicalMemory(p, elems, level)
		if sim.Fingerprint(mem) != sim.Fingerprint(want) {
			t.Errorf("state %q: canonical memory %v, want %v", st, mem, want)
		}
	}
}

// TestDisplaceSimSQHIAndLinearizable is the headline machine check for
// the displacing variant: cross-group relocation (marks, helping,
// restore flags) keeps the twin linearizable, and at every
// state-quiescent configuration the memory is the canonical displaced
// layout of a linearization-consistent state — state-quiescent HI, the
// class the HICHT paper proves. Exhaustive within budget, then deep
// randomized schedules.
func TestDisplaceSimSQHIAndLinearizable(t *testing.T) {
	p := displaceParams
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	a, b := sameGroupKeys(t, p.T, p.G)
	other := 1
	for other == a || other == b {
		other++
	}
	scripts := [][][]core.Op{
		{{ins(a)}, {ins(b)}},          // displacement race in one group
		{{ins(a)}, {ins(other)}},      // distinct groups in parallel
		{{ins(a), rem(a)}, {ins(b)}},  // delete + backward shift vs insert
		{{ins(a), look(b)}, {ins(b)}}, // lookup racing a displacement
		{{rem(a), ins(b)}, {ins(a)}},  // remove-first races
		{{ins(a), ins(b)}, {look(a)}}, // double collect under churn
	}
	maxSteps := 18
	budget := 120000
	if !testing.Short() {
		maxSteps = 26
		budget = 1200000
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, maxSteps, budget, true); err != nil && !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("%s: %v", h.Name, err)
	}
	// Deep randomized pass over full executions.
	fuzzN := 60
	fuzzSteps := 2500
	if !testing.Short() {
		fuzzN = 400
		fuzzSteps = 6000
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, fuzzN, 31, fuzzSteps, true); err != nil {
		t.Fatalf("%s fuzz: %v", h.Name, err)
	}
}

// TestDisplaceSimResizeSchedules drives schedules that cross the online
// resize: a grow racing inserts, removes and lookups must stay
// linearizable, and once the migration (and every other update) has
// completed, the memory must be the canonical layout of the doubled
// geometry.
func TestDisplaceSimResizeSchedules(t *testing.T) {
	p := displaceParams
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	a, b := sameGroupKeys(t, p.T, p.G)
	scripts := [][][]core.Op{
		{{growOp()}, {ins(a)}},          // grow vs a concurrent insert
		{{ins(a), growOp()}, {ins(b)}},  // migration of a displaced pair
		{{growOp(), look(a)}, {ins(a)}}, // lookup across the boundary
		{{ins(a), growOp()}, {rem(a)}},  // remove racing the drain
		{{growOp()}, {growOp()}},        // duelling grows
	}
	maxSteps := 20
	budget := 120000
	if !testing.Short() {
		maxSteps = 30
		budget = 1200000
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, maxSteps, budget, true); err != nil && !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("%s: %v", h.Name, err)
	}
	fuzzN := 60
	fuzzSteps := 3000
	if !testing.Short() {
		fuzzN = 400
		fuzzSteps = 8000
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, fuzzN, 97, fuzzSteps, true); err != nil {
		t.Fatalf("%s fuzz: %v", h.Name, err)
	}
}

// TestDisplaceSimWideGroups checks the displacing twin at B=2 — the
// geometry where a group can hold a marked key next to a larger
// unmarked one, the state class behind the parked-mark self-help
// regression (whitebox_test.go), which B=1 groups cannot express. Keys
// 2, 4 and 5 share home group 0 under this mixer, so three inserts
// overflow a two-slot group and displacement, eviction marks and the
// backward shift all run with multi-key groups.
func TestDisplaceSimWideGroups(t *testing.T) {
	p := hihash.Params{T: 5, G: 2, B: 2}
	if hihash.GroupOf(2, 2) != hihash.GroupOf(4, 2) || hihash.GroupOf(4, 2) != hihash.GroupOf(5, 2) {
		t.Fatal("geometry assumption broken: keys 2,4,5 no longer share a group")
	}
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	// Depth 3 is the floor: the scripts overflow a two-slot group, so
	// the canonical map must cover three-key states.
	c, err := hicheck.BuildCanon(h, 3, 6000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	sp := hihash.NewDisplaceSpec(p)
	for st, mem := range c.ByState {
		elems, level := sp.DisplaceStateElems(st)
		want := hihash.DisplaceCanonicalMemory(p, elems, level)
		if sim.Fingerprint(mem) != sim.Fingerprint(want) {
			t.Errorf("state %q: canonical memory %v, want %v", st, mem, want)
		}
	}
	scripts := [][][]core.Op{
		{{ins(2), ins(4)}, {ins(5)}},          // overflow a two-slot group
		{{ins(4), ins(5)}, {ins(2), rem(4)}},  // eviction mark vs delete
		{{ins(2), rem(2)}, {ins(4), ins(5)}},  // backward shift vs spill
		{{ins(5), look(2)}, {ins(2), ins(4)}}, // lookup across a wide-group relocation
	}
	maxSteps := 18
	budget := 120000
	if !testing.Short() {
		maxSteps = 24
		budget = 800000
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, maxSteps, budget, true); err != nil && !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("%s: %v", h.Name, err)
	}
	fuzzN := 80
	fuzzSteps := 3000
	if !testing.Short() {
		fuzzN = 400
		fuzzSteps = 8000
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, fuzzN, 53, fuzzSteps, true); err != nil {
		t.Fatalf("%s fuzz: %v", h.Name, err)
	}
}

// TestDisplaceSimPerfectHIRefuted: perfect HI is impossible for the
// displacing variant — one insert can canonically relocate a key across
// two group words, so adjacent canonical layouts are at Hamming distance
// >= 2 and Proposition 6 rules the class out for single-word steps. The
// checker must exhibit a concrete mid-relocation witness, and the
// canonical map must show the distance obstruction.
func TestDisplaceSimPerfectHIRefuted(t *testing.T) {
	p := displaceParams
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	if d := c.MaxCanonDistance(); d < 2 {
		t.Fatalf("MaxCanonDistance = %d, want >= 2 (the Proposition 6 obstruction)", d)
	}
	a, b := sameGroupKeys(t, p.T, p.G)
	scripts := [][][]core.Op{
		{{ins(a)}, {ins(b)}},
		{{ins(a), rem(a)}, {ins(b)}},
	}
	v := hicheck.FindViolation(c, h, scripts, hicheck.Perfect, 22, 400000)
	if v == nil {
		t.Fatal("no perfect-HI violation found, but Proposition 6 demands one")
	}
}

// TestDisplaceSimNoShiftAblationFails: without the backward shift, a
// deletion strands displaced keys beyond holes, so two histories
// reaching the same key set leave different layouts — refuted already at
// the sequential level, like the append ablation of the bounded twin.
func TestDisplaceSimNoShiftAblationFails(t *testing.T) {
	h := hihash.NewDisplaceHarness(displaceParams, 2, hihash.DisplaceNoShift)
	_, err := hicheck.BuildCanon(h, 3, 4000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("BuildCanon err = %v, want a sequential HI violation", err)
	}
}
