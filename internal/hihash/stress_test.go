package hihash_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hiconc/internal/hihash"
)

// modelSet is the mutex-guarded reference model the stress tests compare
// against: it applies the same operations under a lock, so at quiescence
// the native tables must hold exactly its key set — and, canonically,
// exactly its layout.
type modelSet struct {
	mu sync.Mutex
	m  map[int]bool
}

func newModelSet() *modelSet { return &modelSet{m: map[int]bool{}} }

func (ms *modelSet) apply(op, key int, table *hihash.Set) {
	// Model and table mutate under one lock so their op sequences agree;
	// the interesting concurrency is across goroutines' lock-free table
	// calls in the non-locked variant below.
	switch op {
	case 0:
		table.Insert(key)
		ms.mu.Lock()
		ms.m[key] = true
		ms.mu.Unlock()
	case 1:
		table.Remove(key)
		ms.mu.Lock()
		delete(ms.m, key)
		ms.mu.Unlock()
	}
}

func (ms *modelSet) elems() []int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	var out []int
	for k := range ms.m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TestStressDisplaceSetRandomized hammers the displacing table from N
// goroutines with a mixed insert/remove/contains workload on disjoint
// key ranges (so the final set is deterministic per goroutine), plus
// forced concurrent resizes, and checks the final Snapshot against the
// canonical displaced layout of a mutex-guarded model. Run it with
// -race: the relocation protocol's marks, helping and migration all get
// exercised.
func TestStressDisplaceSetRandomized(t *testing.T) {
	const n = 8
	perProc := 400
	iters := 3000
	if testing.Short() {
		perProc = 120
		iters = 800
	}
	domain := n * perProc
	s := hihash.NewDisplaceSet(domain, 8) // tiny initial table: growth is forced
	model := newModelSet()
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			lo := pid * perProc
			for i := 0; i < iters; i++ {
				key := lo + rng.Intn(perProc) + 1
				switch rng.Intn(4) {
				case 0, 1:
					model.apply(0, key, s)
				case 2:
					model.apply(1, key, s)
				default:
					s.Contains(key)
				}
				if i%1000 == 999 && pid == 0 {
					s.Grow() // force migrations under full churn
				}
			}
		}(pid)
	}
	wg.Wait()
	want := model.elems()
	got := s.Elements()
	if !equalInts(got, want) {
		t.Fatalf("final elements diverge from model:\n got:  %v\n want: %v", got, want)
	}
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false for a member", k)
		}
	}
	if snap, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), want); snap != canon {
		t.Fatalf("memory not canonical at quiescence (groups=%d):\n got:  %s\n want: %s", s.NumGroups(), snap, canon)
	}
}

// TestStressDisplaceSetSharedKeys drives fully shared hot keys (no
// disjoint ranges, so inserts and removes of the same key race) and
// checks only the invariants that survive nondeterminism: Snapshot is
// the canonical layout of whatever key set landed, and no key is
// duplicated or stranded.
func TestStressDisplaceSetSharedKeys(t *testing.T) {
	const n, domain = 8, 48
	iters := 4000
	if testing.Short() {
		iters = 1000
	}
	s := hihash.NewDisplaceSet(domain, 2) // two groups: maximal displacement pressure
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + pid)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(domain) + 1
				switch rng.Intn(3) {
				case 0:
					s.Insert(k)
				case 1:
					s.Remove(k)
				default:
					s.Contains(k)
				}
				if i%1500 == 1499 {
					s.Grow()
				}
			}
		}(pid)
	}
	wg.Wait()
	elems := s.Elements()
	if snap, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), elems); snap != canon {
		t.Fatalf("memory not canonical at quiescence (groups=%d):\n got:  %s\n want: %s", s.NumGroups(), snap, canon)
	}
	for _, k := range elems {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false for a member", k)
		}
	}
}

// TestStressMapRandomizedResize hammers hihash.Map (disjoint key ranges
// per goroutine plus forced grows) and checks final counts against a
// mutex-guarded model and the canonical snapshot.
func TestStressMapRandomizedResize(t *testing.T) {
	const n, perProc = 8, 64
	iters := 3000
	if testing.Short() {
		iters = 800
	}
	keys := n * perProc
	m := hihash.NewMap(keys, 2) // tiny: bucketLimit growth plus forced grows
	var mu sync.Mutex
	model := map[int]int{}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			lo := pid * perProc
			for i := 0; i < iters; i++ {
				key := lo + rng.Intn(perProc) + 1
				switch rng.Intn(3) {
				case 0:
					m.Inc(key)
					mu.Lock()
					model[key]++
					mu.Unlock()
				case 1:
					m.Dec(key)
					mu.Lock()
					model[key]--
					mu.Unlock()
				default:
					m.Get(key)
				}
				if i%1000 == 999 && pid == 0 {
					m.Grow()
				}
			}
		}(pid)
	}
	wg.Wait()
	for k, v := range model {
		if v == 0 {
			delete(model, k)
		}
	}
	got := m.Counts()
	if len(got) != len(model) {
		t.Fatalf("final counts: %d keys, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("count[%d] = %d, model %d", k, got[k], v)
		}
	}
	if snap, canon := m.Snapshot(), hihash.CanonicalMapSnapshot(keys, m.NumBuckets(), model); snap != canon {
		t.Fatalf("map memory not canonical at quiescence (buckets=%d):\n got:  %s\n want: %s", m.NumBuckets(), snap, canon)
	}
}
