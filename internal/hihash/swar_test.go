package hihash

// Differential tests of the SWAR word classifiers (swar.go) against the
// scalar reference loops (reference.go). The classifiers are specified
// for every uint64 whatsoever — well-formed packed groups, the gone
// sentinel, and garbage alike — so the tests quantify over arbitrary
// words: exhaustively over all four-slot combinations of a boundary
// slot alphabet, and by fuzz over random words and keys.

import (
	"math/rand"
	"testing"
)

// slotAlphabet is the boundary slot vocabulary of the exhaustive sweep:
// empty, restore flag, minimum and maximum legal keys (marked and not),
// the reserved key 0x7FFF that only the gone sentinel carries, and a
// mid-range key.
var slotAlphabet = []uint64{
	0,
	flagSlot,
	1, 1 | slotMark,
	0x7FFE, 0x7FFE | slotMark,
	0x7FFF, 0x7FFF | slotMark,
	0x1234, 0x1234 | slotMark,
}

// checkWord cross-checks every SWAR classifier against its scalar
// reference on one word/key pair.
func checkWord(t *testing.T, w uint64, key int) {
	t.Helper()
	bcast := swarBroadcast(key)
	if got, want := swarFind(w, bcast), scalarFind(w, key); got != want {
		t.Fatalf("swarFind(%#x, key=%d) = %d, scalar %d", w, key, got, want)
	}
	if got, want := wordZeros(w), scalarZeros(w); got != want {
		t.Fatalf("wordZeros(%#x) = %d, scalar %d", w, got, want)
	}
	if got, want := wordFlags(w), scalarFlags(w); got != want {
		t.Fatalf("wordFlags(%#x) = %d, scalar %d", w, got, want)
	}
	if got, want := wordMarks(w), scalarMarks(w); got != want {
		t.Fatalf("wordMarks(%#x) = %d, scalar %d", w, got, want)
	}
	if got, want := wordAnyMarked(w), scalarAnyMarked(w); got != want {
		t.Fatalf("wordAnyMarked(%#x) = %d, scalar %d", w, got, want)
	}
	if got, want := wordClean(w), scalarClean(w); got != want {
		t.Fatalf("wordClean(%#x) = %v, scalar %v", w, got, want)
	}
	// The busy-lane mask (drain scan) must complement the empty lanes
	// and pick the same first occupied slot a scalar walk picks.
	busy := swarBusyLanes(w)
	for i := 0; i < SlotsPerGroup; i++ {
		lane := busy >> (16*i + 15) & 1
		if (slotAt(w, i) != 0) != (lane == 1) {
			t.Fatalf("swarBusyLanes(%#x) lane %d = %d", w, i, lane)
		}
	}
}

// TestSWARExhaustiveSlotPatterns sweeps every four-slot combination of
// the boundary alphabet (10^4 words) against boundary keys.
func TestSWARExhaustiveSlotPatterns(t *testing.T) {
	keys := []int{1, 2, 0x1234, 0x7FFD, 0x7FFE}
	for _, a := range slotAlphabet {
		for _, b := range slotAlphabet {
			for _, c := range slotAlphabet {
				for _, d := range slotAlphabet {
					w := a | b<<16 | c<<32 | d<<48
					for _, k := range keys {
						checkWord(t, w, k)
					}
				}
			}
		}
	}
	for _, k := range keys {
		checkWord(t, gone, k)
	}
}

// TestSWARRandomWords cross-checks fully random words (not just packed
// alphabet combinations) so garbage bit patterns are covered too.
func TestSWARRandomWords(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 200000; i++ {
		w := rng.Uint64()
		checkWord(t, w, rng.Intn(MaxDomain)+1)
	}
}

// FuzzSWARMatch is the differential fuzz target of the ISSUE-9 matcher:
// an arbitrary word and key must classify bit-identically under SWAR
// and the scalar reference. Seeds covering the structural boundaries
// are committed under testdata/fuzz/FuzzSWARMatch.
func FuzzSWARMatch(f *testing.F) {
	f.Add(uint64(0), uint16(1))
	f.Add(gone, uint16(0x7FFE))
	f.Add(uint64(1)|flagSlot<<16|(0x7FFE|slotMark)<<32, uint16(0x7FFE))
	f.Add(uint64(0x1234)*swarLanes, uint16(0x1234))
	f.Fuzz(func(t *testing.T, w uint64, key uint16) {
		k := int(key)%MaxDomain + 1
		checkWord(t, w, k)
	})
}
