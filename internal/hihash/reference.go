package hihash

// The scalar reference read path, kept alongside the SWAR one for two
// jobs: the differential tests (FuzzSWARMatch and the exhaustive pattern
// tests pin every SWAR classifier bit-for-bit against these loops), and
// experiment E26, which measures the pre-SWAR unbounded-retry lookup as
// its baseline. Nothing on the hot path calls into this file.

// scalarFind is the reference slot matcher: the slot index of key in w
// (marked or not), or -1, by extract-and-compare.
func scalarFind(w uint64, key int) int {
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		if sl != 0 && sl != flagSlot && int(sl&slotKey) == key {
			return i
		}
	}
	return -1
}

// scalarZeros is the reference empty-slot count.
func scalarZeros(w uint64) int {
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		if slotAt(w, i) == 0 {
			n++
		}
	}
	return n
}

// scalarFlags is the reference restore-flag count.
func scalarFlags(w uint64) int {
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		if slotAt(w, i) == flagSlot {
			n++
		}
	}
	return n
}

// scalarMarks is the reference marked-key count.
func scalarMarks(w uint64) int {
	n := 0
	for i := 0; i < SlotsPerGroup; i++ {
		if sl := slotAt(w, i); sl != 0 && sl != flagSlot && sl&slotMark != 0 {
			n++
		}
	}
	return n
}

// scalarAnyMarked is the reference marked-key pick: the lowest-slot
// marked key of w, or 0.
func scalarAnyMarked(w uint64) int {
	for i := 0; i < SlotsPerGroup; i++ {
		sl := slotAt(w, i)
		if sl != 0 && sl != flagSlot && sl&slotMark != 0 {
			return int(sl & slotKey)
		}
	}
	return 0
}

// scalarClean is the reference settled-group predicate: no marks, no
// flags, at least one empty slot, not drained.
func scalarClean(w uint64) bool {
	return w != gone && scalarZeros(w) > 0 && scalarFlags(w) == 0 && scalarMarks(w) == 0
}

// referenceScan is one slice-collecting pass of the pre-E26 probe scan:
// it reads along key's run until a clean group (or a full cycle),
// recording every word for validation.
func referenceScan(st *tableState, key int, treatGoneFull bool) (groups []int, words []uint64, found, sawGone bool) {
	G := len(st.groups)
	g := GroupOf(key, G)
	for dist := 0; dist < G; dist++ {
		w := st.groups[g].Load()
		groups = append(groups, g)
		words = append(words, w)
		if w == gone {
			sawGone = true
			if !treatGoneFull {
				return
			}
			g = (g + 1) % G
			continue
		}
		if scalarFind(w, key) >= 0 {
			found = true
			return
		}
		if scalarClean(w) {
			return
		}
		g = (g + 1) % G
	}
	return
}

// referenceMatches re-reads a referenceScan's words.
func referenceMatches(st *tableState, groups []int, words []uint64) bool {
	for i, g := range groups {
		if st.groups[g].Load() != words[i] {
			return false
		}
	}
	return true
}

// ContainsReference is the pre-E26 read path of the displacing table — a
// scalar-matching, slice-collecting, unbounded-retry validated double
// collect — retained verbatim as the measured baseline of experiment
// E26. It is correct (the E26 sweep answers from it too) but slower: it
// allocates its collect records, compares slots one at a time, and
// under update churn retries without bound instead of helping. It
// panics for the bounded table, which never had this path.
func (s *Set) ContainsReference(key int) bool {
	s.checkKey(key)
	if !s.displaced {
		panic("hihash: ContainsReference on a bounded table")
	}
	for {
		st := s.st.Load()
		p := st.prev.Load()
		var oldGroups []int
		var oldWords []uint64
		if p != nil {
			var found bool
			oldGroups, oldWords, found, _ = referenceScan(p, key, true)
			if found {
				return true
			}
		}
		groups, words, found, sawGone := referenceScan(st, key, false)
		if found {
			return true
		}
		if sawGone || !referenceMatches(st, groups, words) {
			continue
		}
		if p != nil && !referenceMatches(p, oldGroups, oldWords) {
			continue
		}
		if s.st.Load() != st || st.prev.Load() != p {
			continue
		}
		return false
	}
}
