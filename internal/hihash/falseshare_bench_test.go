package hihash

// False-sharing audit of the group array (E26). The displacing table
// keeps its groups as a packed []atomic.Uint64 — eight groups share a
// 64-byte cache line — which is exactly the layout the HI raw dump
// exposes, so padding it is not a free tweak: one group per cache line
// would change RawDump, the twin-identity adversary, and rawCopy's
// migration arithmetic. The benchmark quantifies what packing costs
// under the traffic mixes the table actually sees, so the layout
// decision in DESIGN.md ("The read path") rests on a measurement
// instead of a cache-line reflex: pad only where it measurably helps.
//
// Run with: go test -bench GroupArrayLayout -benchtime 100ms ./internal/hihash/

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// fsGroups is sized like a mid-resize production table (1024 groups =
// 8 KiB packed), large enough that random traffic spreads across many
// cache lines yet small enough to stay cache-resident — the regime
// where false sharing, if it matters, shows.
const fsGroups = 1024

// paddedWord is the prototype layout: one group word per cache line.
type paddedWord struct {
	w atomic.Uint64
	_ [56]byte
}

// benchLayout drives one layout with parallel goroutines at the given
// write fraction: a load per op, plus a CAS on writes (the table's
// word-CAS idiom — every update is one CAS on the key's group).
func benchLayout(b *testing.B, load func(g int) uint64, cas func(g int, old, new uint64) bool, writeFrac float64) {
	writeIn := int(writeFrac * 1000)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(b.N)))
		var sink uint64
		for pb.Next() {
			g := rng.Intn(fsGroups)
			w := load(g)
			if rng.Intn(1000) < writeIn {
				cas(g, w, w+1)
			} else {
				sink += w
			}
		}
		_ = sink
	})
}

func BenchmarkGroupArrayLayout(b *testing.B) {
	packed := make([]atomic.Uint64, fsGroups)
	padded := make([]paddedWord, fsGroups)
	layouts := []struct {
		name string
		load func(g int) uint64
		cas  func(g int, old, new uint64) bool
	}{
		{"packed",
			func(g int) uint64 { return packed[g].Load() },
			func(g int, old, new uint64) bool { return packed[g].CompareAndSwap(old, new) }},
		{"padded",
			func(g int) uint64 { return padded[g].w.Load() },
			func(g int, old, new uint64) bool { return padded[g].w.CompareAndSwap(old, new) }},
	}
	mixes := []struct {
		name      string
		writeFrac float64
	}{
		{"read-only", 0},
		{"mixed-10pct-writes", 0.10},
		{"write-heavy-50pct", 0.50},
	}
	for _, mix := range mixes {
		for _, l := range layouts {
			b.Run(mix.name+"/"+l.name, func(b *testing.B) {
				benchLayout(b, l.load, l.cas, mix.writeFrac)
			})
		}
	}
}
