package conc

import (
	"strings"
	"sync/atomic"
)

// BitSet is the native port of the Section 5.1 set: one atomic bit per
// element of {1..t}, inserts and removes as blind stores and lookups as
// loads. Every operation is a single atomic primitive, so the
// implementation is wait-free and *perfect* HI for any number of
// goroutines: at every instant the memory representation is exactly the
// characteristic vector of the set.
type BitSet struct {
	bits []int32
}

// NewBitSet returns an empty set over {1..t}.
func NewBitSet(t int) *BitSet {
	return &BitSet{bits: make([]int32, t)}
}

// Insert adds v to the set.
func (s *BitSet) Insert(v int) { atomic.StoreInt32(&s.bits[v-1], 1) }

// Remove deletes v from the set.
func (s *BitSet) Remove(v int) { atomic.StoreInt32(&s.bits[v-1], 0) }

// Contains reports whether v is in the set.
func (s *BitSet) Contains(v int) bool { return atomic.LoadInt32(&s.bits[v-1]) == 1 }

// Len returns the number of elements currently in the set (not atomic with
// respect to concurrent updates; exact at quiescence).
func (s *BitSet) Len() int {
	n := 0
	for i := range s.bits {
		if atomic.LoadInt32(&s.bits[i]) == 1 {
			n++
		}
	}
	return n
}

// Snapshot renders the memory representation: the characteristic bit
// vector, nothing else.
func (s *BitSet) Snapshot() string {
	var b strings.Builder
	for i := range s.bits {
		if atomic.LoadInt32(&s.bits[i]) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
