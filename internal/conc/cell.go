// Package conc is the native port of the paper's constructions to real Go
// concurrency: goroutines synchronizing through sync/atomic instead of
// simulated processes. It provides
//
//   - Cell: the R-LLSC object of Section 6.1, implemented from pointer CAS
//     in the style of Algorithm 6;
//   - Universal: Algorithm 5 over Cells, with the Leaky ablation;
//   - the SWSR register algorithms of Section 4 over atomic int32 arrays;
//   - baselines (mutex-guarded object, lock-free CAS loop without helping)
//     used by the benchmark suite.
//
// Substitution note (see DESIGN.md): Go has no wide value CAS, so a Cell
// packs (val, context) into an immutable node behind atomic.Pointer. CAS on
// the pointer is strictly stronger than value CAS (no ABA), so all of
// Algorithm 6's correctness arguments carry over. The memory representation
// of the abstract construction is the logical (val, context) pair, exposed
// via Snapshot for history-independence checks at quiescent barriers.
package conc

import (
	"fmt"
	"sync/atomic"
)

// node is one immutable version of a cell's state.
type node struct {
	val any
	ctx uint64
}

// Cell is a context-aware releasable LL/SC cell: the native counterpart of
// Algorithm 6. All methods are safe for concurrent use; pid identifies the
// calling process (0..63) and must be unique per concurrent caller.
type Cell struct {
	p atomic.Pointer[node]
}

// NewCell returns a cell holding val with an empty context.
func NewCell(val any) *Cell {
	c := &Cell{}
	c.p.Store(&node{val: val})
	return c
}

func pidBit(pid int) uint64 {
	if pid < 0 || pid >= 64 {
		panic(fmt.Sprintf("conc: pid %d out of range 0..63", pid))
	}
	return uint64(1) << uint(pid)
}

// Load returns the value without touching the context (Algorithm 6 line 21).
func (c *Cell) Load() any { return c.p.Load().val }

// Snapshot returns the logical state (val, context) of the cell; it is the
// cell's memory representation for history-independence checking.
func (c *Cell) Snapshot() (any, uint64) {
	n := c.p.Load()
	return n.val, n.ctx
}

// Store sets the value and resets the context (Algorithm 6 line 23).
func (c *Cell) Store(val any) { c.p.Store(&node{val: val}) }

// LL load-links: it adds pid to the context and returns the value
// (Algorithm 6 lines 1-6). Lock-free.
func (c *Cell) LL(pid int) any {
	v, _ := c.LLWithAbort(pid, nil)
	return v
}

// LLWithAbort is LL with an escape hatch: between a failed attempt and the
// next, abort is polled; if it reports true the LL is abandoned with no
// context change and ok = false. This realizes the ∥ interleavings of
// Algorithm 5's lines 6, 18 and 25.
func (c *Cell) LLWithAbort(pid int, abort func() bool) (val any, ok bool) {
	bit := pidBit(pid)
	for {
		n := c.p.Load()
		if n.ctx&bit != 0 {
			// Already linked (an idempotent re-LL): return the value.
			return n.val, true
		}
		if c.p.CompareAndSwap(n, &node{val: n.val, ctx: n.ctx | bit}) {
			return n.val, true
		}
		if abort != nil && abort() {
			return nil, false
		}
	}
}

// VL reports whether pid is linked (Algorithm 6 lines 12-13).
func (c *Cell) VL(pid int) bool {
	return c.p.Load().ctx&pidBit(pid) != 0
}

// SC store-conditionally writes val (Algorithm 6 lines 7-11): it succeeds
// iff pid is still linked, resetting the context.
func (c *Cell) SC(pid int, val any) bool {
	bit := pidBit(pid)
	for {
		n := c.p.Load()
		if n.ctx&bit == 0 {
			return false
		}
		if c.p.CompareAndSwap(n, &node{val: val}) {
			return true
		}
	}
}

// RL releases pid's link (Algorithm 6 lines 14-20).
func (c *Cell) RL(pid int) {
	bit := pidBit(pid)
	for {
		n := c.p.Load()
		if n.ctx&bit == 0 {
			return
		}
		if c.p.CompareAndSwap(n, &node{val: n.val, ctx: n.ctx &^ bit}) {
			return
		}
	}
}
