package conc

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hiconc/internal/core"
)

// Applier is the common interface of the native universal construction and
// its baselines: a linearizable shared object accepting abstract operations.
// pid identifies the calling process and must be unique per concurrent
// caller (0 <= pid < n).
type Applier interface {
	// Apply executes op on behalf of process pid and returns its response.
	Apply(pid int, op core.Op) int
	// Name identifies the implementation in benchmark output.
	Name() string
}

// headState mirrors the paper's ⟨state, r⟩ head value: the abstract state
// plus the response record ⟨rsp, proc⟩ (⊥ when hasRsp is false).
type headState struct {
	state  any
	hasRsp bool
	rsp    int
	proc   int
}

type annKind int

const (
	annBot annKind = iota
	annOp
	annRsp
)

// annState mirrors the announce cell contents: ⊥, an operation, or a
// response.
type annState struct {
	kind annKind
	op   core.Op
	rsp  int
}

// pad keeps per-process fields on distinct cache lines.
type pad struct {
	v int
	_ [56]byte
}

// Universal is the native Algorithm 5: a wait-free, state-quiescent
// history-independent universal construction over R-LLSC Cells. When Leaky
// is set the clearing steps (line 28's announce reset and the red RL lines)
// are skipped — the construction remains linearizable and wait-free but
// retains responses and contexts, the ablation measured by experiment E12.
type Universal struct {
	obj   Object
	n     int
	leaky bool
	head  *Cell
	ann   []*Cell
	prio  []pad
}

var _ Applier = (*Universal)(nil)

// NewUniversal returns a fresh instance of the construction for n processes.
func NewUniversal(obj Object, n int) *Universal {
	return newUniversal(obj, n, false)
}

// NewLeakyUniversal returns the non-clearing ablation.
func NewLeakyUniversal(obj Object, n int) *Universal {
	return newUniversal(obj, n, true)
}

func newUniversal(obj Object, n int, leaky bool) *Universal {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("conc: n = %d out of range 1..64", n))
	}
	u := &Universal{
		obj:   obj,
		n:     n,
		leaky: leaky,
		head:  NewCell(headState{state: obj.Init()}),
		ann:   make([]*Cell, n),
		prio:  make([]pad, n),
	}
	for i := range u.ann {
		u.ann[i] = NewCell(annState{})
		u.prio[i].v = i
	}
	return u
}

// Name implements Applier.
func (u *Universal) Name() string {
	if u.leaky {
		return "universal-leaky"
	}
	return "universal-hi"
}

// N returns the number of processes.
func (u *Universal) N() int { return u.n }

func (u *Universal) loadAnn(j int) annState { return u.ann[j].Load().(annState) }

// Apply implements Applier; it is Algorithm 5's Apply/ApplyReadOnly
// dispatch.
func (u *Universal) Apply(pid int, op core.Op) int {
	if u.obj.ReadOnly(op) {
		st := u.head.Load().(headState).state
		_, rsp := u.obj.Apply(st, op)
		return rsp
	}
	return u.applyUpdate(pid, op)
}

// applyUpdate is the state-changing path (Algorithm 5 lines 4-29), with the
// same line structure as the simulated implementation in
// internal/universal.
func (u *Universal) applyUpdate(i int, op core.Op) int {
	u.ann[i].Store(annState{kind: annOp, op: op}) // Line 4
	prio := &u.prio[i].v
	done := func() bool { return u.loadAnn(i).kind == annRsp }

	for !done() { // Line 5
		hv, ok := u.head.LLWithAbort(i, done) // Line 6 (+6R escape)
		if !ok {
			break
		}
		h := hv.(headState)
		if !h.hasRsp { // Line 7: mode A
			var applyOp core.Op
			var j int
			if help := u.loadAnn(*prio); help.kind == annOp { // Lines 8-9
				applyOp, j = help.op, *prio
			} else {
				if u.loadAnn(i).kind != annOp { // Line 11
					continue
				}
				applyOp, j = op, i // Line 12
			}
			st, rsp := u.obj.Apply(h.state, applyOp)                                 // Line 13
			if u.head.SC(i, headState{state: st, hasRsp: true, rsp: rsp, proc: j}) { // Line 14
				*prio = (*prio + 1) % u.n // Line 15
			}
			continue
		}
		rsp, j := h.rsp, h.proc                 // Line 17
		av, ok := u.ann[j].LLWithAbort(i, done) // Line 18 (+18R escape)
		if !ok {
			u.ann[j].RL(i) // Line 18R.2
			break
		}
		a := av.(annState)
		if u.head.VL(i) { // Line 19
			if a.kind == annOp { // Line 20
				u.ann[j].SC(i, annState{kind: annRsp, rsp: rsp})
			}
			u.head.SC(i, headState{state: h.state}) // Line 21
		}
		if a.kind == annBot && !u.leaky { // Line 22 (red)
			u.ann[j].RL(i)
		}
	}

	response := u.loadAnn(i) // Line 24
	if response.kind != annRsp {
		panic(fmt.Sprintf("conc: p%d reached line 24 without a response", i))
	}
	// Line 25 (+25R escape).
	hv, ok := u.head.LLWithAbort(i, func() bool {
		h := u.head.Load().(headState)
		return !(h.hasRsp && h.proc == i)
	})
	if !ok {
		if !u.leaky {
			u.head.RL(i) // Line 27 (red)
		}
	} else if h := hv.(headState); h.hasRsp && h.proc == i { // Line 26
		u.head.SC(i, headState{state: h.state})
	} else if !u.leaky {
		u.head.RL(i) // Line 27 (red)
	}
	if !u.leaky {
		u.ann[i].Store(annState{}) // Line 28
	}
	return response.rsp // Line 29
}

// State returns the current abstract state (the val component of head).
func (u *Universal) State() any { return u.head.Load().(headState).state }

// Snapshot renders the logical memory representation — every cell's
// (val, context) pair — for history-independence checks at quiescent
// barriers.
func (u *Universal) Snapshot() string {
	var b strings.Builder
	renderCell(&b, "head", u.head)
	for i, a := range u.ann {
		b.WriteString(" | ")
		renderCell(&b, fmt.Sprintf("ann%d", i), a)
	}
	return b.String()
}

func renderCell(b *strings.Builder, name string, c *Cell) {
	v, ctx := c.Snapshot()
	switch t := v.(type) {
	case headState:
		if t.hasRsp {
			fmt.Fprintf(b, "%s=<%v,<%d,p%d>>/ctx=%b", name, t.state, t.rsp, t.proc, ctx)
		} else {
			fmt.Fprintf(b, "%s=<%v,_>/ctx=%b", name, t.state, ctx)
		}
	case annState:
		switch t.kind {
		case annBot:
			fmt.Fprintf(b, "%s=_/ctx=%b", name, ctx)
		case annOp:
			fmt.Fprintf(b, "%s=%v/ctx=%b", name, t.op, ctx)
		case annRsp:
			fmt.Fprintf(b, "%s=r%d/ctx=%b", name, t.rsp, ctx)
		}
	default:
		fmt.Fprintf(b, "%s=%v/ctx=%b", name, v, ctx)
	}
}

// CanonicalSnapshot returns the canonical memory representation of abstract
// state q for an n-process instance: head holds ⟨q,⊥⟩ with an empty context
// and every announce cell holds ⊥ with an empty context.
func CanonicalSnapshot(obj Object, n int, q any) string {
	u := newUniversal(obj, n, false)
	u.head.Store(headState{state: q})
	return u.Snapshot()
}

// MutexObject is the coarse-grained baseline: the abstract state behind a
// single mutex. It is trivially history independent but blocking.
type MutexObject struct {
	mu    sync.Mutex
	obj   Object
	state any
}

var _ Applier = (*MutexObject)(nil)

// NewMutexObject returns a mutex-guarded instance of obj.
func NewMutexObject(obj Object) *MutexObject {
	return &MutexObject{obj: obj, state: obj.Init()}
}

// Name implements Applier.
func (m *MutexObject) Name() string { return "mutex" }

// Apply implements Applier.
func (m *MutexObject) Apply(_ int, op core.Op) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rsp int
	m.state, rsp = m.obj.Apply(m.state, op)
	return rsp
}

// NoHelpUniversal is the Herlihy-style lock-free baseline: a bare CAS loop
// on the state with no announcing and no helping. It is linearizable and
// trivially HI at quiescence (only the state is stored) but not wait-free —
// a process can fail its CAS forever.
type NoHelpUniversal struct {
	obj   Object
	state atomic.Pointer[any]
}

var _ Applier = (*NoHelpUniversal)(nil)

// NewNoHelpUniversal returns a fresh lock-free baseline instance.
func NewNoHelpUniversal(obj Object) *NoHelpUniversal {
	l := &NoHelpUniversal{obj: obj}
	init := obj.Init()
	l.state.Store(&init)
	return l
}

// Name implements Applier.
func (l *NoHelpUniversal) Name() string { return "cas-nohelp" }

// Apply implements Applier.
func (l *NoHelpUniversal) Apply(_ int, op core.Op) int {
	if l.obj.ReadOnly(op) {
		_, rsp := l.obj.Apply(*l.state.Load(), op)
		return rsp
	}
	for {
		cur := l.state.Load()
		st, rsp := l.obj.Apply(*cur, op)
		if l.state.CompareAndSwap(cur, &st) {
			return rsp
		}
	}
}

// State returns the current abstract state.
func (l *NoHelpUniversal) State() any { return *l.state.Load() }
