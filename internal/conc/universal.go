package conc

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hiconc/internal/core"
	"hiconc/internal/hirec"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
)

// Applier is the common interface of the native universal construction and
// its baselines: a linearizable shared object accepting abstract operations.
// pid identifies the calling process and must be unique per concurrent
// caller (0 <= pid < n).
type Applier interface {
	// Apply executes op on behalf of process pid and returns its response.
	Apply(pid int, op core.Op) int
	// Name identifies the implementation in benchmark output.
	Name() string
}

// rspRec is one response record ⟨rsp, proc⟩ of a head value.
type rspRec struct {
	rsp  int
	proc int
}

// headState mirrors the paper's ⟨state, r⟩ head value: the abstract state
// plus the response records (⊥ when recs is empty). Algorithm 5 stores at
// most one record; the combining extension installs a batch of records, one
// per folded operation, linearized in slice order at the installing SC.
type headState struct {
	state any
	recs  []rspRec
}

// containsProc reports whether recs holds a record for process i.
func containsProc(recs []rspRec, i int) bool {
	for _, r := range recs {
		if r.proc == i {
			return true
		}
	}
	return false
}

type annKind int

const (
	annBot annKind = iota
	annOp
	annRsp
)

// annState mirrors the announce cell contents: ⊥, an operation, or a
// response.
type annState struct {
	kind annKind
	op   core.Op
	rsp  int
}

// pad keeps per-process fields on distinct cache lines.
type pad struct {
	v int
	_ [56]byte
}

// Combiner is an optional extension of Object enabling operation combining:
// when a process detects contention on head, it may fold several announced
// operations into a single SC, provided the object vouches that they commute
// as state updates. Responses need not commute — the batch is linearized in
// a fixed order and each response is computed from that order.
type Combiner interface {
	// Combinable reports whether a and b commute as state transformations
	// (Δ(Δ(q,a),b) and Δ(Δ(q,b),a) reach the same state for every q), so
	// both may be folded into one linearization batch. It is only called
	// for state-changing operations and must be symmetric.
	Combinable(a, b core.Op) bool
}

// pendingOp is an announced operation selected for a batch.
type pendingOp struct {
	op   core.Op
	proc int
}

// Universal is the native Algorithm 5: a wait-free, state-quiescent
// history-independent universal construction over R-LLSC Cells. When Leaky
// is set the clearing steps (line 28's announce reset and the red RL lines)
// are skipped — the construction remains linearizable and wait-free but
// retains responses and contexts, the ablation measured by experiment E12.
// When comb is set (NewCombiningUniversal), a process whose SC on head
// failed folds all announced mutually-commuting operations into its next
// attempt, installing a batch of response records with one SC.
type Universal struct {
	obj   Object
	n     int
	leaky bool
	comb  Combiner
	head  *Cell
	ann   []*Cell
	prio  []pad
}

var _ Applier = (*Universal)(nil)

// NewUniversal returns a fresh instance of the construction for n processes.
func NewUniversal(obj Object, n int) *Universal {
	return newUniversal(obj, n, false, nil)
}

// NewLeakyUniversal returns the non-clearing ablation.
func NewLeakyUniversal(obj Object, n int) *Universal {
	return newUniversal(obj, n, true, nil)
}

// NewCombiningUniversal returns an instance with operation combining
// enabled; obj must implement Combiner. Combining preserves linearizability,
// wait-freedom and state-quiescent HI: batches are applied atomically by the
// same head SC that Algorithm 5 uses for a single operation, and every
// clearing step still runs per announced operation.
func NewCombiningUniversal(obj Object, n int) *Universal {
	comb, ok := obj.(Combiner)
	if !ok {
		panic(fmt.Sprintf("conc: object %s does not implement Combiner", obj.Name()))
	}
	return newUniversal(obj, n, false, comb)
}

func newUniversal(obj Object, n int, leaky bool, comb Combiner) *Universal {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("conc: n = %d out of range 1..64", n))
	}
	u := &Universal{
		obj:   obj,
		n:     n,
		leaky: leaky,
		comb:  comb,
		head:  NewCell(headState{state: obj.Init()}),
		ann:   make([]*Cell, n),
		prio:  make([]pad, n),
	}
	for i := range u.ann {
		u.ann[i] = NewCell(annState{})
		u.prio[i].v = i
	}
	return u
}

// Name implements Applier.
func (u *Universal) Name() string {
	switch {
	case u.leaky:
		return "universal-leaky"
	case u.comb != nil:
		return "universal-hi-combining"
	default:
		return "universal-hi"
	}
}

// N returns the number of processes.
func (u *Universal) N() int { return u.n }

func (u *Universal) loadAnn(j int) annState { return u.ann[j].Load().(annState) }

// Apply implements Applier; it is Algorithm 5's Apply/ApplyReadOnly
// dispatch.
func (u *Universal) Apply(pid int, op core.Op) int {
	if u.obj.ReadOnly(op) {
		st := u.head.Load().(headState).state
		_, rsp := u.obj.Apply(st, op)
		return rsp
	}
	return u.applyUpdate(pid, op)
}

// applyUpdate is the state-changing path (Algorithm 5 lines 4-29), with the
// same line structure as the simulated implementation in
// internal/universal. The batch generalization: head may carry several
// response records, all of which are posted (lines 17-20, once per record)
// before the head is cleared (line 21).
func (u *Universal) applyUpdate(i int, op core.Op) int {
	u.ann[i].Store(annState{kind: annOp, op: op}) // Line 4
	prio := &u.prio[i].v
	done := func() bool { return u.loadAnn(i).kind == annRsp }
	contended := false

	for !done() { // Line 5
		hv, ok := u.head.LLWithAbort(i, done) // Line 6 (+6R escape)
		if !ok {
			break
		}
		h := hv.(headState)
		if len(h.recs) == 0 { // Line 7: mode A
			var st any
			var recs []rspRec
			combined, helped := false, false
			if u.comb != nil && contended {
				batch, ok := u.gatherBatch(i, op, *prio)
				if !ok { // Line 11
					continue
				}
				st = h.state
				recs = make([]rspRec, len(batch))
				for k, b := range batch {
					var rsp int
					st, rsp = u.obj.Apply(st, b.op) // Line 13
					recs[k] = rspRec{rsp: rsp, proc: b.proc}
				}
				combined = true
			} else {
				var applyOp core.Op
				var j int
				if help := u.loadAnn(*prio); help.kind == annOp { // Lines 8-9
					applyOp, j = help.op, *prio
					helped = j != i
				} else {
					if u.loadAnn(i).kind != annOp { // Line 11
						continue
					}
					applyOp, j = op, i // Line 12
				}
				var rsp int
				st, rsp = u.obj.Apply(h.state, applyOp) // Line 13
				recs = []rspRec{{rsp: rsp, proc: j}}
			}
			if u.head.SC(i, headState{state: st, recs: recs}) { // Line 14
				if combined {
					histats.Inc(histats.CtrCombineBatch)
					histats.Observe(histats.HistBatchSize, uint64(len(recs)))
					hirec.Step("combine-batch")
				}
				if helped {
					histats.Inc(histats.CtrUniversalHelp)
					hirec.Step("universal-help")
				}
				*prio = (*prio + 1) % u.n // Line 15
				contended = false
			} else {
				histats.Inc(histats.CtrHeadRetry)
				hirec.Step("head-retry")
				contended = true
			}
			continue
		}
		posted, escaped := u.postRecs(i, h, done, false) // Lines 17-20 per record
		if escaped {
			break
		}
		if posted {
			u.head.SC(i, headState{state: h.state}) // Line 21
		}
	}

	response := u.loadAnn(i) // Line 24
	if response.kind != annRsp {
		panic(fmt.Sprintf("conc: p%d reached line 24 without a response", i))
	}
	// Line 25 (+25R escape).
	hv, ok := u.head.LLWithAbort(i, func() bool {
		return !containsProc(u.head.Load().(headState).recs, i)
	})
	cleared := false
	if ok {
		if h := hv.(headState); containsProc(h.recs, i) { // Line 26
			// Before erasing a record that may cover other processes'
			// operations, post their responses (the caller already holds its
			// own); abandon if the head moves under us — whoever moved it
			// posted everything first.
			posted := true
			if len(h.recs) > 1 {
				posted, _ = u.postRecs(i, h, func() bool { return !u.head.VL(i) }, true)
			}
			if posted {
				cleared = u.head.SC(i, headState{state: h.state})
			}
		}
	}
	if !cleared && !u.leaky {
		u.head.RL(i) // Line 27 (red)
	}
	if !u.leaky {
		u.ann[i].Store(annState{}) // Line 28
	}
	return response.rsp // Line 29
}

// postRecs runs lines 17-20 (and the line 22 release) once per response
// record of h: each pending response is SC'd into its announce cell under a
// valid head link. It reports posted = true when every record was handled
// with the head link intact (so the caller may attempt the line 21 clearing
// SC), and escaped = true when the abort condition fired mid-LL (line 18R:
// the caller proceeds to line 24). skipSelf omits the caller's own record,
// used on the line 26 path where the caller already consumed its response.
func (u *Universal) postRecs(i int, h headState, abort func() bool, skipSelf bool) (posted, escaped bool) {
	for _, rec := range h.recs {
		if skipSelf && rec.proc == i {
			continue
		}
		av, ok := u.ann[rec.proc].LLWithAbort(i, abort) // Line 18 (+18R escape)
		if !ok {
			u.ann[rec.proc].RL(i) // Line 18R.2
			return false, true
		}
		a := av.(annState)
		if !u.head.VL(i) { // Line 19
			if a.kind == annBot && !u.leaky { // Line 22 (red)
				u.ann[rec.proc].RL(i)
			}
			return false, false
		}
		if a.kind == annOp { // Line 20
			u.ann[rec.proc].SC(i, annState{kind: annRsp, rsp: rec.rsp})
		}
		if a.kind == annBot && !u.leaky { // Line 22 (red)
			u.ann[rec.proc].RL(i)
		}
	}
	return true, false
}

// gatherBatch selects the operations folded into the next SC on head when
// combining is armed (the caller's previous SC attempt failed), in
// linearization order. The mandatory Algorithm 5 choice comes first: the
// priority process's announced operation if one is pending, otherwise the
// caller's own (lines 8-12; ok = false reproduces the line 11 recheck).
// Every other announced operation that commutes with the whole batch is
// appended in ascending process order.
func (u *Universal) gatherBatch(i int, op core.Op, prio int) ([]pendingOp, bool) {
	var first pendingOp
	if help := u.loadAnn(prio); help.kind == annOp { // Lines 8-9
		first = pendingOp{op: help.op, proc: prio}
	} else {
		if u.loadAnn(i).kind != annOp { // Line 11
			return nil, false
		}
		first = pendingOp{op: op, proc: i} // Line 12
	}
	batch := append(make([]pendingOp, 0, u.n), first)
	for j := 0; j < u.n; j++ {
		if j == first.proc {
			continue
		}
		a := u.loadAnn(j)
		if a.kind != annOp {
			continue
		}
		fits := true
		for _, b := range batch {
			if !u.comb.Combinable(b.op, a.op) {
				fits = false
				break
			}
		}
		if fits {
			batch = append(batch, pendingOp{op: a.op, proc: j})
		}
	}
	return batch, true
}

// State returns the current abstract state (the val component of head).
func (u *Universal) State() any { return u.head.Load().(headState).state }

// Snapshot renders the logical memory representation — every cell's
// (val, context) pair — for history-independence checks at quiescent
// barriers.
func (u *Universal) Snapshot() string {
	var b strings.Builder
	renderCell(&b, "head", u.head)
	for i, a := range u.ann {
		b.WriteString(" | ")
		renderCell(&b, fmt.Sprintf("ann%d", i), a)
	}
	return b.String()
}

func renderCell(b *strings.Builder, name string, c *Cell) {
	v, ctx := c.Snapshot()
	switch t := v.(type) {
	case headState:
		switch len(t.recs) {
		case 0:
			fmt.Fprintf(b, "%s=<%v,_>/ctx=%b", name, t.state, ctx)
		case 1:
			fmt.Fprintf(b, "%s=<%v,<%d,p%d>>/ctx=%b", name, t.state, t.recs[0].rsp, t.recs[0].proc, ctx)
		default:
			fmt.Fprintf(b, "%s=<%v,[", name, t.state)
			for k, r := range t.recs {
				if k > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(b, "<%d,p%d>", r.rsp, r.proc)
			}
			fmt.Fprintf(b, "]>/ctx=%b", ctx)
		}
	case annState:
		switch t.kind {
		case annBot:
			fmt.Fprintf(b, "%s=_/ctx=%b", name, ctx)
		case annOp:
			fmt.Fprintf(b, "%s=%v/ctx=%b", name, t.op, ctx)
		case annRsp:
			fmt.Fprintf(b, "%s=r%d/ctx=%b", name, t.rsp, ctx)
		}
	default:
		fmt.Fprintf(b, "%s=%v/ctx=%b", name, v, ctx)
	}
}

// CanonicalSnapshot returns the canonical memory representation of abstract
// state q for an n-process instance: head holds ⟨q,⊥⟩ with an empty context
// and every announce cell holds ⊥ with an empty context.
func CanonicalSnapshot(obj Object, n int, q any) string {
	u := newUniversal(obj, n, false, nil)
	u.head.Store(headState{state: q})
	return u.Snapshot()
}

// MutexObject is the coarse-grained baseline: the abstract state behind a
// single mutex. It is trivially history independent but blocking.
type MutexObject struct {
	mu    sync.Mutex
	obj   Object
	state any
}

var _ Applier = (*MutexObject)(nil)

// NewMutexObject returns a mutex-guarded instance of obj.
func NewMutexObject(obj Object) *MutexObject {
	return &MutexObject{obj: obj, state: obj.Init()}
}

// Name implements Applier.
func (m *MutexObject) Name() string { return "mutex" }

// Apply implements Applier.
func (m *MutexObject) Apply(_ int, op core.Op) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rsp int
	m.state, rsp = m.obj.Apply(m.state, op)
	return rsp
}

// SyncMapSet adapts sync.Map to the set Applier interface as the
// standard-library baseline for the E21 hash-table benchmarks. It is
// linearizable and lock-free in the common case but not history
// independent: sync.Map's internal read/dirty structure depends on the
// operation history, not only on the key set.
type SyncMapSet struct{ m sync.Map }

var _ Applier = (*SyncMapSet)(nil)

// NewSyncMapSet returns a fresh baseline instance.
func NewSyncMapSet() *SyncMapSet { return &SyncMapSet{} }

// Name implements Applier.
func (s *SyncMapSet) Name() string { return "sync.Map" }

// Apply implements Applier.
func (s *SyncMapSet) Apply(_ int, op core.Op) int {
	switch op.Name {
	case spec.OpInsert:
		s.m.Store(op.Arg, struct{}{})
		return 0
	case spec.OpRemove:
		s.m.Delete(op.Arg)
		return 0
	case spec.OpLookup:
		if _, ok := s.m.Load(op.Arg); ok {
			return 1
		}
		return 0
	default:
		panic("conc: sync.Map set: unknown op " + op.Name)
	}
}

// NoHelpUniversal is the Herlihy-style lock-free baseline: a bare CAS loop
// on the state with no announcing and no helping. It is linearizable and
// trivially HI at quiescence (only the state is stored) but not wait-free —
// a process can fail its CAS forever.
type NoHelpUniversal struct {
	obj   Object
	state atomic.Pointer[any]
}

var _ Applier = (*NoHelpUniversal)(nil)

// NewNoHelpUniversal returns a fresh lock-free baseline instance.
func NewNoHelpUniversal(obj Object) *NoHelpUniversal {
	l := &NoHelpUniversal{obj: obj}
	init := obj.Init()
	l.state.Store(&init)
	return l
}

// Name implements Applier.
func (l *NoHelpUniversal) Name() string { return "cas-nohelp" }

// Apply implements Applier.
func (l *NoHelpUniversal) Apply(_ int, op core.Op) int {
	if l.obj.ReadOnly(op) {
		_, rsp := l.obj.Apply(*l.state.Load(), op)
		return rsp
	}
	for {
		cur := l.state.Load()
		st, rsp := l.obj.Apply(*cur, op)
		if l.state.CompareAndSwap(cur, &st) {
			return rsp
		}
	}
}

// State returns the current abstract state.
func (l *NoHelpUniversal) State() any { return *l.state.Load() }
