package conc

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Object is a deterministic sequential object for the native universal
// construction: the (Q, q0, O, R, Δ) of Section 2 with states represented
// as immutable Go values (shared freely between goroutines, never mutated).
type Object interface {
	// Name identifies the object type.
	Name() string
	// Init returns the initial state q0.
	Init() any
	// Apply is Δ: it returns the successor state and the response. It must
	// not mutate state.
	Apply(state any, op core.Op) (any, int)
	// ReadOnly reports whether op never changes any state.
	ReadOnly(op core.Op) bool
}

// CounterObj is an unbounded counter: inc/dec return the previous value,
// read returns the current value.
type CounterObj struct{}

var _ Object = CounterObj{}

// Name implements Object.
func (CounterObj) Name() string { return "counter" }

// Init implements Object.
func (CounterObj) Init() any { return 0 }

// Apply implements Object.
func (CounterObj) Apply(state any, op core.Op) (any, int) {
	v := state.(int)
	switch op.Name {
	case spec.OpRead:
		return state, v
	case spec.OpInc:
		return v + 1, v
	case spec.OpDec:
		return v - 1, v
	default:
		panic("conc: counter: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (CounterObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpRead }

// Combinable implements Combiner: increments and decrements always commute.
func (CounterObj) Combinable(a, b core.Op) bool {
	return isCounterUpdate(a) && isCounterUpdate(b)
}

func isCounterUpdate(op core.Op) bool { return op.Name == spec.OpInc || op.Name == spec.OpDec }

// RegisterObj is an integer register.
type RegisterObj struct {
	// V0 is the initial value.
	V0 int
}

var _ Object = RegisterObj{}

// Name implements Object.
func (RegisterObj) Name() string { return "register" }

// Init implements Object.
func (r RegisterObj) Init() any { return r.V0 }

// Apply implements Object.
func (RegisterObj) Apply(state any, op core.Op) (any, int) {
	switch op.Name {
	case spec.OpRead:
		return state, state.(int)
	case spec.OpWrite:
		return op.Arg, 0
	default:
		panic("conc: register: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (RegisterObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpRead }

// MaxRegisterObj is an integer max register.
type MaxRegisterObj struct {
	// V0 is the initial value.
	V0 int
}

var _ Object = MaxRegisterObj{}

// Name implements Object.
func (MaxRegisterObj) Name() string { return "maxreg" }

// Init implements Object.
func (r MaxRegisterObj) Init() any { return r.V0 }

// Apply implements Object.
func (MaxRegisterObj) Apply(state any, op core.Op) (any, int) {
	v := state.(int)
	switch op.Name {
	case spec.OpRead:
		return state, v
	case spec.OpWrite:
		if op.Arg > v {
			return op.Arg, 0
		}
		return state, 0
	default:
		panic("conc: maxreg: unknown op " + op.Name)
	}
}

// ReadOnly implements Object. Unlike the bounded model-checking spec, the
// native max register treats every write as potentially state-changing
// (the domain is unbounded).
func (MaxRegisterObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpRead }

// QueueObj is a FIFO queue of ints with Peek. States are immutable slices.
type QueueObj struct{}

var _ Object = QueueObj{}

// Name implements Object.
func (QueueObj) Name() string { return "queue" }

// Init implements Object.
func (QueueObj) Init() any { return []int(nil) }

// Apply implements Object.
func (QueueObj) Apply(state any, op core.Op) (any, int) {
	q := state.([]int)
	switch op.Name {
	case spec.OpEnq:
		next := make([]int, len(q)+1)
		copy(next, q)
		next[len(q)] = op.Arg
		return next, 0
	case spec.OpDeq:
		if len(q) == 0 {
			return state, 0
		}
		next := make([]int, len(q)-1)
		copy(next, q[1:])
		return next, q[0]
	case spec.OpPeek:
		if len(q) == 0 {
			return state, 0
		}
		return state, q[0]
	default:
		panic("conc: queue: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (QueueObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpPeek }

// StackObj is a LIFO stack of ints with Top. States are immutable slices.
type StackObj struct{}

var _ Object = StackObj{}

// Name implements Object.
func (StackObj) Name() string { return "stack" }

// Init implements Object.
func (StackObj) Init() any { return []int(nil) }

// Apply implements Object.
func (StackObj) Apply(state any, op core.Op) (any, int) {
	s := state.([]int)
	switch op.Name {
	case spec.OpPush:
		next := make([]int, len(s)+1)
		copy(next, s)
		next[len(s)] = op.Arg
		return next, 0
	case spec.OpPop:
		if len(s) == 0 {
			return state, 0
		}
		next := make([]int, len(s)-1)
		copy(next, s[:len(s)-1])
		return next, s[len(s)-1]
	case spec.OpTop:
		if len(s) == 0 {
			return state, 0
		}
		return state, s[len(s)-1]
	default:
		panic("conc: stack: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (StackObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpTop }

// SetObj is a set over {1..64} stored as a bitmask. Insert and remove are
// acknowledged with 0; lookup returns membership.
type SetObj struct{}

var _ Object = SetObj{}

// Name implements Object.
func (SetObj) Name() string { return "set" }

// Init implements Object.
func (SetObj) Init() any { return uint64(0) }

// Apply implements Object.
func (SetObj) Apply(state any, op core.Op) (any, int) {
	m := state.(uint64)
	if op.Arg < 1 || op.Arg > 64 {
		panic(fmt.Sprintf("conc: set element %d out of range 1..64", op.Arg))
	}
	b := uint64(1) << uint(op.Arg-1)
	switch op.Name {
	case spec.OpInsert:
		return m | b, 0
	case spec.OpRemove:
		return m &^ b, 0
	case spec.OpLookup:
		if m&b != 0 {
			return state, 1
		}
		return state, 0
	default:
		panic("conc: set: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (SetObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpLookup }

// Combinable implements Combiner: inserts and removes commute unless they
// are an insert/remove pair on the same element.
func (SetObj) Combinable(a, b core.Op) bool {
	if a.Name == spec.OpLookup || b.Name == spec.OpLookup {
		return false
	}
	return a.Arg != b.Arg || a.Name == b.Name
}

// BigSetObj is a set over {1..64*Words} stored as an immutable []uint64
// bitmask — the production-shaped counterpart of SetObj for domains beyond
// one word. Every update copies the mask (the state must be an immutable
// value), so update cost grows with the domain; sharding a big set divides
// that cost by the shard count.
type BigSetObj struct {
	// Words is the mask length; the domain is {1..64*Words}.
	Words int
}

var _ Object = BigSetObj{}
var _ Combiner = BigSetObj{}

// Name implements Object.
func (o BigSetObj) Name() string { return fmt.Sprintf("bigset[%d]", 64*o.Words) }

// Init implements Object.
func (o BigSetObj) Init() any { return make([]uint64, o.Words) }

// Apply implements Object.
func (o BigSetObj) Apply(state any, op core.Op) (any, int) {
	m := state.([]uint64)
	if op.Arg < 1 || op.Arg > 64*o.Words {
		panic(fmt.Sprintf("conc: bigset element %d out of range 1..%d", op.Arg, 64*o.Words))
	}
	w, b := (op.Arg-1)/64, uint64(1)<<uint((op.Arg-1)%64)
	switch op.Name {
	case spec.OpInsert, spec.OpRemove:
		next := make([]uint64, len(m))
		copy(next, m)
		if op.Name == spec.OpInsert {
			next[w] |= b
		} else {
			next[w] &^= b
		}
		return next, 0
	case spec.OpLookup:
		if m[w]&b != 0 {
			return state, 1
		}
		return state, 0
	default:
		panic("conc: bigset: unknown op " + op.Name)
	}
}

// ReadOnly implements Object.
func (BigSetObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpLookup }

// Combinable implements Combiner: same rule as SetObj.
func (BigSetObj) Combinable(a, b core.Op) bool { return SetObj{}.Combinable(a, b) }

// KV is one entry of a MultiCounterObj state: the count of one key.
type KV struct {
	// K is the key; V its current (nonzero) count.
	K, V int
}

// MultiCounterObj is a multi-counter (a map from int keys to int counts):
// inc/dec on a key return the key's previous count, read returns its current
// count. The state is an immutable slice of KV pairs sorted by key with
// zero counts elided, so every abstract state has exactly one
// representation — the canonical form required for history independence.
type MultiCounterObj struct{}

var _ Object = MultiCounterObj{}
var _ Combiner = MultiCounterObj{}

// Name implements Object.
func (MultiCounterObj) Name() string { return "multicounter" }

// Init implements Object.
func (MultiCounterObj) Init() any { return []KV(nil) }

// Apply implements Object. Op.Arg is the key.
func (MultiCounterObj) Apply(state any, op core.Op) (any, int) {
	kvs := state.([]KV)
	i := 0
	for i < len(kvs) && kvs[i].K < op.Arg {
		i++
	}
	cur := 0
	present := i < len(kvs) && kvs[i].K == op.Arg
	if present {
		cur = kvs[i].V
	}
	var next int
	switch op.Name {
	case spec.OpRead:
		return state, cur
	case spec.OpInc:
		next = cur + 1
	case spec.OpDec:
		next = cur - 1
	default:
		panic("conc: multicounter: unknown op " + op.Name)
	}
	out := make([]KV, 0, len(kvs)+1)
	out = append(out, kvs[:i]...)
	if next != 0 {
		out = append(out, KV{K: op.Arg, V: next})
	}
	if present {
		out = append(out, kvs[i+1:]...)
	} else {
		out = append(out, kvs[i:]...)
	}
	if len(out) == 0 {
		return []KV(nil), cur
	}
	return out, cur
}

// ReadOnly implements Object.
func (MultiCounterObj) ReadOnly(op core.Op) bool { return op.Name == spec.OpRead }

// Combinable implements Combiner: per-key additions commute on every key.
func (MultiCounterObj) Combinable(a, b core.Op) bool {
	return isCounterUpdate(a) && isCounterUpdate(b)
}
