package conc

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// The native SWSR K-valued registers of Section 4 over atomic int32 arrays.
// One goroutine may write and one may read, concurrently. The memory
// representation is the array contents, exposed via Snapshot for
// history-independence checks at quiescent barriers.

// Alg1Register is Vidyasankar's wait-free register (Algorithm 1): correct
// but not history independent — stale 1s above the current value persist.
type Alg1Register struct {
	k int
	a []int32
}

// NewAlg1Register returns a K-valued register initialized to v0.
func NewAlg1Register(k, v0 int) *Alg1Register {
	r := &Alg1Register{k: k, a: make([]int32, k)}
	r.a[v0-1] = 1
	return r
}

// Write implements Algorithm 1's Write: set A[v], clear downward.
func (r *Alg1Register) Write(v int) {
	atomic.StoreInt32(&r.a[v-1], 1)
	for j := v - 1; j >= 1; j-- {
		atomic.StoreInt32(&r.a[j-1], 0)
	}
}

// Read implements Algorithm 1's Read: scan up to the first 1, then scan
// down. Wait-free: at most 2K-1 loads.
func (r *Alg1Register) Read() int {
	j := 1
	for atomic.LoadInt32(&r.a[j-1]) == 0 {
		j++
	}
	val := j
	for j2 := val - 1; j2 >= 1; j2-- {
		if atomic.LoadInt32(&r.a[j2-1]) == 1 {
			val = j2
		}
	}
	return val
}

// Snapshot renders the memory representation.
func (r *Alg1Register) Snapshot() string { return renderBits(r.a) }

// Alg2Register is the lock-free state-quiescent HI register (Algorithm 2):
// Write additionally clears upward, so the array is one-hot whenever no
// Write is pending; Read retries TryRead and can starve under a write storm.
type Alg2Register struct {
	k int
	a []int32
}

// NewAlg2Register returns a K-valued register initialized to v0.
func NewAlg2Register(k, v0 int) *Alg2Register {
	r := &Alg2Register{k: k, a: make([]int32, k)}
	r.a[v0-1] = 1
	return r
}

// Write implements Algorithm 2's Write: set A[v], clear downward, then clear
// upward.
func (r *Alg2Register) Write(v int) {
	atomic.StoreInt32(&r.a[v-1], 1)
	for j := v - 1; j >= 1; j-- {
		atomic.StoreInt32(&r.a[j-1], 0)
	}
	for j := v + 1; j <= r.k; j++ {
		atomic.StoreInt32(&r.a[j-1], 0)
	}
}

// TryRead is Algorithm 3: one scan attempt; ok is false when no 1 was seen.
func (r *Alg2Register) TryRead() (val int, ok bool) {
	for j := 1; j <= r.k; j++ {
		if atomic.LoadInt32(&r.a[j-1]) == 1 {
			val = j
			for j2 := val - 1; j2 >= 1; j2-- {
				if atomic.LoadInt32(&r.a[j2-1]) == 1 {
					val = j2
				}
			}
			return val, true
		}
	}
	return 0, false
}

// Read retries TryRead until it succeeds; it is lock-free, not wait-free.
// Retries returns the number of failed attempts via the second result.
func (r *Alg2Register) Read() (val, retries int) {
	for {
		if v, ok := r.TryRead(); ok {
			return v, retries
		}
		retries++
	}
}

// Snapshot renders the memory representation.
func (r *Alg2Register) Snapshot() string { return renderBits(r.a) }

// Alg4Register is the wait-free quiescent HI register (Algorithm 4): the
// reader announces itself through flag[1] and the writer helps through the
// array B; all helping state is cleared before operations return.
type Alg4Register struct {
	k       int
	a, b    []int32
	flag    [2]int32
	lastVal int // writer-local
}

// NewAlg4Register returns a K-valued register initialized to v0.
func NewAlg4Register(k, v0 int) *Alg4Register {
	r := &Alg4Register{k: k, a: make([]int32, k), b: make([]int32, k), lastVal: v0}
	r.a[v0-1] = 1
	return r
}

// Write implements Algorithm 4's Write (lines 11-19).
func (r *Alg4Register) Write(v int) {
	allZero := true
	for j := 1; j <= r.k; j++ { // Line 11
		if atomic.LoadInt32(&r.b[j-1]) == 1 {
			allZero = false
			break
		}
	}
	if allZero && atomic.LoadInt32(&r.flag[0]) == 1 { // Line 12
		atomic.StoreInt32(&r.b[r.lastVal-1], 1) // Line 13
		f2 := atomic.LoadInt32(&r.flag[1])      // Line 14
		f1 := atomic.LoadInt32(&r.flag[0])
		if f2 == 1 || f1 == 0 {
			atomic.StoreInt32(&r.b[r.lastVal-1], 0) // Line 15
		}
	}
	atomic.StoreInt32(&r.a[v-1], 1) // Line 16
	for j := v - 1; j >= 1; j-- {   // Line 17
		atomic.StoreInt32(&r.a[j-1], 0)
	}
	for j := v + 1; j <= r.k; j++ { // Line 18
		atomic.StoreInt32(&r.a[j-1], 0)
	}
	r.lastVal = v // Line 19
}

// Read implements Algorithm 4's Read (lines 1-10). Wait-free: at most two
// TryRead attempts, then the helping array is guaranteed to hold a value.
func (r *Alg4Register) Read() int {
	atomic.StoreInt32(&r.flag[0], 1) // Line 1
	val := 0
	for it := 0; it < 2 && val == 0; it++ { // Lines 2-4
		val = r.tryRead()
	}
	if val == 0 { // Lines 5-6
		for j := 1; j <= r.k; j++ {
			if atomic.LoadInt32(&r.b[j-1]) == 1 {
				val = j
			}
		}
	}
	atomic.StoreInt32(&r.flag[1], 1) // Line 7
	for j := 1; j <= r.k; j++ {      // Line 8
		atomic.StoreInt32(&r.b[j-1], 0)
	}
	atomic.StoreInt32(&r.flag[0], 0) // Line 9
	atomic.StoreInt32(&r.flag[1], 0)
	if val == 0 {
		panic("conc: Algorithm 4 read found no value, contradicting Lemma 10")
	}
	return val
}

func (r *Alg4Register) tryRead() int {
	for j := 1; j <= r.k; j++ {
		if atomic.LoadInt32(&r.a[j-1]) == 1 {
			val := j
			for j2 := val - 1; j2 >= 1; j2-- {
				if atomic.LoadInt32(&r.a[j2-1]) == 1 {
					val = j2
				}
			}
			return val
		}
	}
	return 0
}

// Snapshot renders the memory representation (A, B and the flags).
func (r *Alg4Register) Snapshot() string {
	return fmt.Sprintf("A=%s B=%s f=%d%d",
		renderBits(r.a), renderBits(r.b),
		atomic.LoadInt32(&r.flag[0]), atomic.LoadInt32(&r.flag[1]))
}

func renderBits(a []int32) string {
	var b strings.Builder
	for i := range a {
		if atomic.LoadInt32(&a[i]) == 1 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
