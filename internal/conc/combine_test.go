package conc_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// TestCombiningSequentialCounter: with a single process the combining
// construction must behave exactly like Algorithm 5.
func TestCombiningSequentialCounter(t *testing.T) {
	u := conc.NewCombiningUniversal(conc.CounterObj{}, 1)
	for i := 0; i < 10; i++ {
		if rsp := u.Apply(0, core.Op{Name: spec.OpInc}); rsp != i {
			t.Fatalf("inc %d returned %d", i, rsp)
		}
	}
	if rsp := u.Apply(0, core.Op{Name: spec.OpDec}); rsp != 10 {
		t.Fatalf("dec returned %d, want 10", rsp)
	}
	if got := u.State().(int); got != 9 {
		t.Fatalf("state = %d, want 9", got)
	}
}

// TestCombiningCounterResponsesArePermutation drives n goroutines of
// increments through the combining construction. Every inc returns the
// previous counter value, so across all operations the responses must be
// exactly {0, ..., total-1}: any lost, duplicated or double-applied
// operation breaks the permutation.
func TestCombiningCounterResponsesArePermutation(t *testing.T) {
	const n, per = 8, 2000
	for _, mk := range []func() *conc.Universal{
		func() *conc.Universal { return conc.NewUniversal(conc.CounterObj{}, n) },
		func() *conc.Universal { return conc.NewCombiningUniversal(conc.CounterObj{}, n) },
	} {
		u := mk()
		t.Run(u.Name(), func(t *testing.T) {
			rsps := make([][]int, n)
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					out := make([]int, 0, per)
					for i := 0; i < per; i++ {
						out = append(out, u.Apply(pid, core.Op{Name: spec.OpInc}))
					}
					rsps[pid] = out
				}(pid)
			}
			wg.Wait()
			var all []int
			for _, r := range rsps {
				all = append(all, r...)
			}
			sort.Ints(all)
			for i, v := range all {
				if v != i {
					t.Fatalf("response multiset is not a permutation: index %d holds %d", i, v)
				}
			}
			if got := u.State().(int); got != n*per {
				t.Fatalf("final state = %d, want %d", got, n*per)
			}
		})
	}
}

// TestCombiningStateQuiescentHI: at quiescence the combining construction
// must leave the same canonical memory representation as Algorithm 5 —
// head ⟨q,⊥⟩, all announce cells ⊥, all contexts empty.
func TestCombiningStateQuiescentHI(t *testing.T) {
	const n = 6
	u := conc.NewCombiningUniversal(conc.CounterObj{}, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				op := core.Op{Name: spec.OpInc}
				if i%3 == 0 {
					op = core.Op{Name: spec.OpDec}
				}
				u.Apply(pid, op)
			}
		}(pid)
	}
	wg.Wait()
	want := u.State()
	canon := conc.CanonicalSnapshot(conc.CounterObj{}, n, want)
	if snap := u.Snapshot(); snap != canon {
		t.Fatalf("combining memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
	}
}

// TestCombiningSetMixedKeys stresses the set under combining with
// conflicting (same-key insert/remove) and commuting operations, checking
// the final membership against a sequentially-counted model per key and the
// canonical representation at quiescence.
func TestCombiningSetMixedKeys(t *testing.T) {
	const n = 4
	u := conc.NewCombiningUniversal(conc.SetObj{}, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			// Each process owns two keys, so per-key order is sequential.
			k1, k2 := 2*pid+1, 2*pid+2
			for i := 0; i < 300; i++ {
				u.Apply(pid, core.Op{Name: spec.OpInsert, Arg: k1})
				u.Apply(pid, core.Op{Name: spec.OpRemove, Arg: k2})
				u.Apply(pid, core.Op{Name: spec.OpInsert, Arg: k2})
			}
		}(pid)
	}
	wg.Wait()
	mask := u.State().(uint64)
	for pid := 0; pid < n; pid++ {
		k1, k2 := 2*pid+1, 2*pid+2
		if mask&(1<<(k1-1)) == 0 {
			t.Errorf("key %d missing from final set", k1)
		}
		if mask&(1<<(k2-1)) == 0 {
			t.Errorf("key %d missing from final set (last op was insert)", k2)
		}
	}
	canon := conc.CanonicalSnapshot(conc.SetObj{}, n, mask)
	if snap := u.Snapshot(); snap != canon {
		t.Fatalf("set memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
	}
}

// TestMultiCounterObjSemantics checks the sequential multi-counter object:
// responses are previous counts and the state stays in canonical form
// (sorted keys, no zero entries).
func TestMultiCounterObjSemantics(t *testing.T) {
	o := conc.MultiCounterObj{}
	st := o.Init()
	var rsp int
	st, rsp = o.Apply(st, core.Op{Name: spec.OpInc, Arg: 5})
	if rsp != 0 {
		t.Errorf("first inc(5) returned %d", rsp)
	}
	st, rsp = o.Apply(st, core.Op{Name: spec.OpInc, Arg: 2})
	if rsp != 0 {
		t.Errorf("first inc(2) returned %d", rsp)
	}
	st, rsp = o.Apply(st, core.Op{Name: spec.OpInc, Arg: 5})
	if rsp != 1 {
		t.Errorf("second inc(5) returned %d, want 1", rsp)
	}
	if got := fmt.Sprintf("%v", st); got != "[{2 1} {5 2}]" {
		t.Errorf("state = %s, want sorted [{2 1} {5 2}]", got)
	}
	st, _ = o.Apply(st, core.Op{Name: spec.OpDec, Arg: 2})
	if got := fmt.Sprintf("%v", st); got != "[{5 2}]" {
		t.Errorf("state after dec(2) = %s, want zero entry elided", got)
	}
	_, rsp = o.Apply(st, core.Op{Name: spec.OpRead, Arg: 5})
	if rsp != 2 {
		t.Errorf("read(5) = %d, want 2", rsp)
	}
	_, rsp = o.Apply(st, core.Op{Name: spec.OpRead, Arg: 9})
	if rsp != 0 {
		t.Errorf("read(9) = %d, want 0", rsp)
	}
	// Canonical form: two different histories reaching the same abstract
	// state must yield identical representations.
	a := o.Init()
	a, _ = o.Apply(a, core.Op{Name: spec.OpInc, Arg: 1})
	a, _ = o.Apply(a, core.Op{Name: spec.OpInc, Arg: 3})
	b := o.Init()
	b, _ = o.Apply(b, core.Op{Name: spec.OpInc, Arg: 3})
	b, _ = o.Apply(b, core.Op{Name: spec.OpInc, Arg: 1})
	b, _ = o.Apply(b, core.Op{Name: spec.OpInc, Arg: 2})
	b, _ = o.Apply(b, core.Op{Name: spec.OpDec, Arg: 2})
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Errorf("multi-counter representation not canonical: %v vs %v", a, b)
	}
}

// TestMultiCounterPerKeyPermutation: concurrent increments on a shared key
// through the combining construction must return each previous count exactly
// once.
func TestMultiCounterPerKeyPermutation(t *testing.T) {
	const n, per = 6, 800
	u := conc.NewCombiningUniversal(conc.MultiCounterObj{}, n)
	rsps := make([][]int, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			out := make([]int, 0, per)
			for i := 0; i < per; i++ {
				out = append(out, u.Apply(pid, core.Op{Name: spec.OpInc, Arg: 7}))
			}
			rsps[pid] = out
		}(pid)
	}
	wg.Wait()
	var all []int
	for _, r := range rsps {
		all = append(all, r...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("per-key responses are not a permutation at index %d: %d", i, v)
		}
	}
	canon := conc.CanonicalSnapshot(conc.MultiCounterObj{}, n, u.State())
	if snap := u.Snapshot(); snap != canon {
		t.Fatalf("multi-counter memory not canonical at quiescence:\n got:  %s\n want: %s", snap, canon)
	}
}
