package conc

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

var (
	incOp = core.Op{Name: spec.OpInc}
	decOp = core.Op{Name: spec.OpDec}
)

func ins(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
func rem(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }

// TestGatherBatchRechecksOwnAnnounce: gatherBatch reproduces the line 11
// recheck — with nothing announced it must refuse to build a batch.
func TestGatherBatchRechecksOwnAnnounce(t *testing.T) {
	u := NewCombiningUniversal(CounterObj{}, 4)
	if batch, ok := u.gatherBatch(0, incOp, 0); ok {
		t.Fatalf("batch = %v with no announced operations; want ok = false", batch)
	}
}

// TestGatherBatchContended checks that after a failed SC every announced
// commuting operation is folded in, priority process first.
func TestGatherBatchContended(t *testing.T) {
	u := NewCombiningUniversal(CounterObj{}, 4)
	for j := 0; j < 4; j++ {
		u.ann[j].Store(annState{kind: annOp, op: incOp})
	}
	batch, ok := u.gatherBatch(0, incOp, 2)
	if !ok || len(batch) != 4 {
		t.Fatalf("contended batch = %v, ok = %v; want all 4", batch, ok)
	}
	if batch[0].proc != 2 {
		t.Errorf("batch head = p%d, want priority process p2", batch[0].proc)
	}
	seen := map[int]bool{}
	for _, b := range batch {
		if seen[b.proc] {
			t.Fatalf("process p%d batched twice: %v", b.proc, batch)
		}
		seen[b.proc] = true
	}
}

// TestGatherBatchRespectsCombinable checks that a non-commuting announced
// operation is left out: an insert/remove pair on the same set element must
// not be folded, while operations on distinct elements must be.
func TestGatherBatchRespectsCombinable(t *testing.T) {
	u := NewCombiningUniversal(SetObj{}, 3)
	u.ann[0].Store(annState{kind: annOp, op: ins(1)})
	u.ann[1].Store(annState{kind: annOp, op: rem(1)}) // conflicts with p0
	u.ann[2].Store(annState{kind: annOp, op: ins(2)}) // commutes with p0
	batch, ok := u.gatherBatch(0, ins(1), 0)
	if !ok || len(batch) != 2 {
		t.Fatalf("batch = %v, ok = %v; want p0+p2", batch, ok)
	}
	if batch[0].proc != 0 || batch[1].proc != 2 {
		t.Errorf("batch = %v, want [p0 p2]", batch)
	}
}

// TestBatchRecordAppliesInOrder installs a batch by hand and checks that the
// responses recorded by the SC are the sequential responses in batch order,
// and that a helper posts every record before clearing head.
func TestBatchRecordAppliesInOrder(t *testing.T) {
	u := NewCombiningUniversal(CounterObj{}, 3)
	// All three processes announce an inc; p0 fails one SC to arm combining.
	for j := 0; j < 3; j++ {
		u.ann[j].Store(annState{kind: annOp, op: incOp})
	}
	batch, ok := u.gatherBatch(0, incOp, 0)
	if !ok || len(batch) != 3 {
		t.Fatalf("batch = %v", batch)
	}
	h := u.head.LL(0).(headState)
	st := h.state
	recs := make([]rspRec, len(batch))
	for k, b := range batch {
		var rsp int
		st, rsp = u.obj.Apply(st, b.op)
		recs[k] = rspRec{rsp: rsp, proc: b.proc}
	}
	if !u.head.SC(0, headState{state: st, recs: recs}) {
		t.Fatal("SC failed with no contention")
	}
	for k, rec := range recs {
		if rec.rsp != k {
			t.Errorf("rec %d rsp = %d, want %d (sequential order)", k, rec.rsp, k)
		}
	}
	// A helper in mode B must post all three responses, then clear head.
	hv := u.head.LL(1).(headState)
	posted, escaped := u.postRecs(1, hv, nil, false)
	if !posted || escaped {
		t.Fatalf("postRecs = (%v, %v), want (true, false)", posted, escaped)
	}
	if !u.head.SC(1, headState{state: hv.state}) {
		t.Fatal("clearing SC failed")
	}
	for j := 0; j < 3; j++ {
		a := u.loadAnn(j)
		if a.kind != annRsp || a.rsp != j {
			t.Errorf("ann[%d] = %+v, want response %d", j, a, j)
		}
	}
	if got := u.head.Load().(headState); len(got.recs) != 0 || got.state.(int) != 3 {
		t.Errorf("head after clear = %+v, want <3,_>", got)
	}
}
