package conc_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

var (
	inc = core.Op{Name: spec.OpInc}
	dec = core.Op{Name: spec.OpDec}
	rd  = core.Op{Name: spec.OpRead}
)

func TestCellBasics(t *testing.T) {
	c := conc.NewCell(10)
	if c.Load() != 10 {
		t.Fatal("Load")
	}
	if c.SC(0, 99) {
		t.Fatal("SC without LL must fail")
	}
	if got := c.LL(0); got != 10 {
		t.Fatalf("LL = %v", got)
	}
	if !c.VL(0) {
		t.Fatal("VL after LL")
	}
	if !c.SC(0, 11) {
		t.Fatal("SC after LL must succeed")
	}
	if c.VL(0) {
		t.Fatal("context must reset after SC")
	}
	c.LL(1)
	c.RL(1)
	if c.SC(1, 12) {
		t.Fatal("SC after RL must fail")
	}
	c.LL(2)
	c.Store(13)
	if c.SC(2, 14) {
		t.Fatal("SC after Store must fail")
	}
	if v, ctx := c.Snapshot(); v != 13 || ctx != 0 {
		t.Fatalf("snapshot = (%v, %b)", v, ctx)
	}
}

func TestCellConcurrentSC(t *testing.T) {
	// n goroutines perform LL;SC increments; every increment must
	// eventually succeed exactly once (retry on failure), so the final
	// value is n*m.
	const n, m = 8, 200
	c := conc.NewCell(0)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < m; i++ {
				for {
					v := c.LL(pid).(int)
					if c.SC(pid, v+1) {
						break
					}
				}
			}
		}(pid)
	}
	wg.Wait()
	if got := c.Load().(int); got != n*m {
		t.Fatalf("final value %d, want %d", got, n*m)
	}
	if _, ctx := c.Snapshot(); ctx != 0 {
		t.Fatalf("context not empty at quiescence: %b", ctx)
	}
}

func TestCellLLWithAbort(t *testing.T) {
	c := conc.NewCell(1)
	calls := 0
	// An abort that fires on the first poll: LL must give up without
	// linking once its CAS fails; with no contention the CAS succeeds
	// before the abort is consulted, so force contention via a pre-link.
	v, ok := c.LLWithAbort(0, func() bool { calls++; return true })
	if !ok || v != 1 {
		t.Fatalf("uncontended LL aborted (ok=%v v=%v calls=%d)", ok, v, calls)
	}
}

// applyCounterConcurrently drives an Applier with n goroutines doing incs
// and decs and returns the expected and actual final values.
func applyCounterConcurrently(t *testing.T, a conc.Applier, n, opsPer int, seed int64) (want, got int) {
	t.Helper()
	deltas := make([]int, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(pid)))
			d := 0
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(3) {
				case 0:
					a.Apply(pid, inc)
					d++
				case 1:
					a.Apply(pid, dec)
					d--
				case 2:
					a.Apply(pid, rd)
				}
			}
			deltas[pid] = d
		}(pid)
	}
	wg.Wait()
	for _, d := range deltas {
		want += d
	}
	return want, a.Apply(0, rd)
}

func TestUniversalCounter(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		u := conc.NewUniversal(conc.CounterObj{}, n)
		want, got := applyCounterConcurrently(t, u, n, 500, 42)
		if got != want {
			t.Errorf("n=%d: counter = %d, want %d", n, got, want)
		}
	}
}

func TestUniversalCounterFetchSemantics(t *testing.T) {
	// inc returns the previous value: across n goroutines doing only incs,
	// the returned values must be a permutation of 0..n*m-1.
	const n, m = 4, 100
	u := conc.NewUniversal(conc.CounterObj{}, n)
	results := make([][]int, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < m; i++ {
				results[pid] = append(results[pid], u.Apply(pid, inc))
			}
		}(pid)
	}
	wg.Wait()
	var all []int
	for _, r := range results {
		all = append(all, r...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("fetch-and-inc results not a permutation: position %d holds %d", i, v)
		}
	}
}

func TestUniversalHIAtQuiescence(t *testing.T) {
	// After any concurrent run, the memory representation must equal the
	// canonical representation of the final abstract state — regardless of
	// schedule, operation mix, or which processes did the work.
	const n = 4
	for seed := int64(0); seed < 20; seed++ {
		u := conc.NewUniversal(conc.CounterObj{}, n)
		want, got := applyCounterConcurrently(t, u, n, 200, seed)
		if got != want {
			t.Fatalf("seed %d: counter = %d, want %d", seed, got, want)
		}
		canon := conc.CanonicalSnapshot(conc.CounterObj{}, n, want)
		if snap := u.Snapshot(); snap != canon {
			t.Fatalf("seed %d: memory not canonical at quiescence:\n got %s\nwant %s", seed, snap, canon)
		}
	}
}

func TestLeakyUniversalLeaks(t *testing.T) {
	// The ablation: without clearing, announce cells keep responses, so
	// the memory depends on the history, not just the state.
	const n = 2
	u := conc.NewLeakyUniversal(conc.CounterObj{}, n)
	u.Apply(0, inc)
	u.Apply(1, inc)
	u.Apply(1, dec)
	// State is 1; the canonical representation has empty announce cells.
	canon := conc.CanonicalSnapshot(conc.CounterObj{}, n, 1)
	if snap := u.Snapshot(); snap == canon {
		t.Fatalf("leaky universal left canonical memory %s; the ablation should leak", snap)
	}
	if got := u.Apply(0, rd); got != 1 {
		t.Fatalf("leaky universal value = %d, want 1", got)
	}
}

func TestUniversalQueueFIFOPerProcess(t *testing.T) {
	// Each producer enqueues an ascending sequence tagged with its id; each
	// consumer's dequeues must preserve every producer's order, and the
	// union of all dequeued values must equal the enqueued multiset.
	const producers, consumers, m = 2, 2, 150
	n := producers + consumers
	u := conc.NewUniversal(conc.QueueObj{}, n)
	var wg sync.WaitGroup
	dequeued := make([][]int, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 1; i <= m; i++ {
				u.Apply(p, core.Op{Name: spec.OpEnq, Arg: p*1000 + i})
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pid := producers + c
			got := 0
			for got < m*producers/consumers {
				if v := u.Apply(pid, core.Op{Name: spec.OpDeq}); v != 0 {
					dequeued[c] = append(dequeued[c], v)
					got++
				}
			}
		}(c)
	}
	wg.Wait()
	// Per-producer FIFO order within each consumer's stream.
	for c, stream := range dequeued {
		last := map[int]int{}
		for _, v := range stream {
			p := v / 1000
			if v%1000 <= last[p] {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, p, v%1000, last[p])
			}
			last[p] = v % 1000
		}
	}
	// Multiset equality.
	var all []int
	for _, s := range dequeued {
		all = append(all, s...)
	}
	if len(all) != producers*m {
		t.Fatalf("dequeued %d values, want %d", len(all), producers*m)
	}
	sort.Ints(all)
	idx := 0
	for p := 0; p < producers; p++ {
		for i := 1; i <= m; i++ {
			if all[idx] != p*1000+i {
				t.Fatalf("missing value %d", p*1000+i)
			}
			idx++
		}
	}
}

func TestUniversalQueueHIAtQuiescence(t *testing.T) {
	// Queue states are slices; the snapshot must still be canonical — two
	// different interleaved histories leaving the same queue contents leave
	// the same memory.
	const n = 2
	a := conc.NewUniversal(conc.QueueObj{}, n)
	a.Apply(0, core.Op{Name: spec.OpEnq, Arg: 5})
	a.Apply(1, core.Op{Name: spec.OpEnq, Arg: 6})
	a.Apply(0, core.Op{Name: spec.OpDeq})
	b := conc.NewUniversal(conc.QueueObj{}, n)
	b.Apply(1, core.Op{Name: spec.OpEnq, Arg: 6})
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ for equal queues:\n a: %s\n b: %s", a.Snapshot(), b.Snapshot())
	}
}

func TestBaselinesAgree(t *testing.T) {
	const n, opsPer = 4, 300
	appliers := []conc.Applier{
		conc.NewUniversal(conc.CounterObj{}, n),
		conc.NewLeakyUniversal(conc.CounterObj{}, n),
		conc.NewMutexObject(conc.CounterObj{}),
		conc.NewNoHelpUniversal(conc.CounterObj{}),
	}
	for _, a := range appliers {
		want, got := applyCounterConcurrently(t, a, n, opsPer, 7)
		if got != want {
			t.Errorf("%s: counter = %d, want %d", a.Name(), got, want)
		}
	}
}

// --- native registers ---

func TestAlg1RegisterSWSR(t *testing.T) {
	testRegister(t, func(k, v0 int) swsr { return alg1Adapter{conc.NewAlg1Register(k, v0)} })
}

func TestAlg2RegisterSWSR(t *testing.T) {
	testRegister(t, func(k, v0 int) swsr { return alg2Adapter{conc.NewAlg2Register(k, v0)} })
}

func TestAlg4RegisterSWSR(t *testing.T) {
	testRegister(t, func(k, v0 int) swsr { return alg4Adapter{conc.NewAlg4Register(k, v0)} })
}

type swsr interface {
	Write(int)
	Read() int
}

type alg1Adapter struct{ r *conc.Alg1Register }

func (a alg1Adapter) Write(v int) { a.r.Write(v) }
func (a alg1Adapter) Read() int   { return a.r.Read() }

type alg2Adapter struct{ r *conc.Alg2Register }

func (a alg2Adapter) Write(v int) { a.r.Write(v) }
func (a alg2Adapter) Read() int   { v, _ := a.r.Read(); return v }

type alg4Adapter struct{ r *conc.Alg4Register }

func (a alg4Adapter) Write(v int) { a.r.Write(v) }
func (a alg4Adapter) Read() int   { return a.r.Read() }

// testRegister checks regularity-style sanity under real concurrency: every
// read returns a value that was written (or the initial value), and once the
// writer is quiescent, reads return the last written value.
func testRegister(t *testing.T, mk func(k, v0 int) swsr) {
	t.Helper()
	const k, v0, writes = 8, 1, 3000
	r := mk(k, v0)
	written := make([]int32, k+1)
	written[v0] = 1
	valid := func(v int) bool { return v >= 1 && v <= k && atomic.LoadInt32(&written[v]) == 1 }
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < writes; i++ {
			v := rng.Intn(k) + 1
			atomic.StoreInt32(&written[v], 1) // published before the write's stores
			r.Write(v)
		}
		close(stop)
	}()
	wg.Add(1)
	var badRead int
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := r.Read(); !valid(v) {
				badRead = v
				return
			}
		}
	}()
	wg.Wait()
	if badRead != 0 {
		t.Fatalf("read returned %d, never written", badRead)
	}
	r.Write(5)
	if got := r.Read(); got != 5 {
		t.Fatalf("quiescent read = %d, want 5", got)
	}
}

func TestAlg2RegisterHIAtQuiescence(t *testing.T) {
	r := conc.NewAlg2Register(6, 1)
	seqs := [][]int{
		{3, 5, 2},
		{2},
		{5, 2},
		{1, 6, 4, 3, 2},
	}
	want := ""
	for i, seq := range seqs {
		r2 := conc.NewAlg2Register(6, 1)
		for _, v := range seq {
			r2.Write(v)
		}
		snap := r2.Snapshot()
		if i == 0 {
			want = snap
			continue
		}
		if snap != want {
			t.Fatalf("sequence %v left %s; want the canonical %s", seq, snap, want)
		}
	}
	_ = r
}

func TestAlg1RegisterNotHI(t *testing.T) {
	a := conc.NewAlg1Register(4, 1)
	a.Write(3)
	a.Write(1)
	b := conc.NewAlg1Register(4, 1)
	b.Write(1)
	if a.Snapshot() == b.Snapshot() {
		t.Fatal("Algorithm 1 left identical memory for different histories; expected the Section 4 leak")
	}
	if x, y := a.Read(), b.Read(); x != y || x != 1 {
		t.Fatalf("both registers should read 1 (got %d, %d)", x, y)
	}
}

func TestAlg4RegisterHIAtQuiescence(t *testing.T) {
	a := conc.NewAlg4Register(5, 2)
	a.Write(4)
	a.Write(2)
	b := conc.NewAlg4Register(5, 2)
	b.Write(2)
	// Histories differ; memory must not.
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("Algorithm 4 memory differs at quiescence:\n a: %s\n b: %s", a.Snapshot(), b.Snapshot())
	}
}

func TestCanonicalSnapshotShape(t *testing.T) {
	got := conc.CanonicalSnapshot(conc.CounterObj{}, 2, 5)
	want := "head=<5,_>/ctx=0 | ann0=_/ctx=0 | ann1=_/ctx=0"
	if got != want {
		t.Fatalf("canonical snapshot = %q, want %q", got, want)
	}
}

func TestObjectsPure(t *testing.T) {
	// Apply must not mutate its input state (states are shared immutably).
	q := conc.QueueObj{}
	s0 := q.Init()
	s1, _ := q.Apply(s0, core.Op{Name: spec.OpEnq, Arg: 1})
	s2, _ := q.Apply(s1, core.Op{Name: spec.OpEnq, Arg: 2})
	if fmt.Sprint(s1) != "[1]" {
		t.Fatalf("enqueue mutated its input: %v", s1)
	}
	s3, v := q.Apply(s2, core.Op{Name: spec.OpDeq})
	if v != 1 || fmt.Sprint(s3) != "[2]" || fmt.Sprint(s2) != "[1 2]" {
		t.Fatalf("dequeue wrong or mutating: v=%d s3=%v s2=%v", v, s3, s2)
	}
}
