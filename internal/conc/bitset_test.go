package conc_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hiconc/internal/conc"
)

func TestBitSetBasics(t *testing.T) {
	s := conc.NewBitSet(8)
	if s.Contains(3) {
		t.Fatal("empty set contains 3")
	}
	s.Insert(3)
	s.Insert(7)
	if !s.Contains(3) || !s.Contains(7) || s.Contains(4) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Remove(3)
	if s.Contains(3) {
		t.Fatal("removed element still present")
	}
	if got := s.Snapshot(); got != "00000010" {
		t.Fatalf("snapshot = %s", got)
	}
}

// TestBitSetPerfectHIQuick: the memory representation is always exactly the
// characteristic vector — for any operation sequence, the snapshot equals
// the snapshot of any other sequence reaching the same set.
func TestBitSetPerfectHIQuick(t *testing.T) {
	const domain = 10
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := conc.NewBitSet(domain)
		model := map[int]bool{}
		for i := 0; i < int(n%64); i++ {
			v := rng.Intn(domain) + 1
			if rng.Intn(2) == 0 {
				s.Insert(v)
				model[v] = true
			} else {
				s.Remove(v)
				delete(model, v)
			}
		}
		// Rebuild canonically from the model.
		canon := conc.NewBitSet(domain)
		for v := range model {
			canon.Insert(v)
		}
		return s.Snapshot() == canon.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitSetConcurrent(t *testing.T) {
	const domain, n = 64, 8
	s := conc.NewBitSet(domain)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			// Each goroutine owns a disjoint slice of the domain.
			lo := pid*domain/n + 1
			hi := (pid + 1) * domain / n
			for v := lo; v <= hi; v++ {
				s.Insert(v)
			}
			for v := lo; v <= hi; v += 2 {
				s.Remove(v)
			}
		}(pid)
	}
	wg.Wait()
	for v := 1; v <= domain; v++ {
		lo := ((v - 1) / (domain / n)) * (domain / n) // owner's slice start - 1
		want := (v-lo)%2 == 0
		if s.Contains(v) != want {
			t.Fatalf("element %d: contains = %v, want %v", v, s.Contains(v), want)
		}
	}
}
