package conc_test

import (
	"testing"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// TestObjectsSoloAgainstUniversal drives every native Object through a
// single-process universal construction and checks responses against a
// direct sequential fold of Apply — the construction must be a transparent
// wrapper in the absence of concurrency.
func TestObjectsSoloAgainstUniversal(t *testing.T) {
	cases := []struct {
		obj conc.Object
		ops []core.Op
	}{
		{conc.CounterObj{}, []core.Op{
			{Name: spec.OpInc}, {Name: spec.OpInc}, {Name: spec.OpRead},
			{Name: spec.OpDec}, {Name: spec.OpRead},
		}},
		{conc.RegisterObj{V0: 3}, []core.Op{
			{Name: spec.OpRead}, {Name: spec.OpWrite, Arg: 7}, {Name: spec.OpRead},
		}},
		{conc.MaxRegisterObj{V0: 2}, []core.Op{
			{Name: spec.OpWrite, Arg: 5}, {Name: spec.OpWrite, Arg: 3}, {Name: spec.OpRead},
		}},
		{conc.QueueObj{}, []core.Op{
			{Name: spec.OpEnq, Arg: 4}, {Name: spec.OpEnq, Arg: 5}, {Name: spec.OpPeek},
			{Name: spec.OpDeq}, {Name: spec.OpDeq}, {Name: spec.OpDeq},
		}},
		{conc.StackObj{}, []core.Op{
			{Name: spec.OpPush, Arg: 4}, {Name: spec.OpPush, Arg: 5}, {Name: spec.OpTop},
			{Name: spec.OpPop}, {Name: spec.OpPop}, {Name: spec.OpPop},
		}},
		{conc.SetObj{}, []core.Op{
			{Name: spec.OpInsert, Arg: 9}, {Name: spec.OpLookup, Arg: 9},
			{Name: spec.OpRemove, Arg: 9}, {Name: spec.OpLookup, Arg: 9},
		}},
	}
	for _, tc := range cases {
		u := conc.NewUniversal(tc.obj, 1)
		state := tc.obj.Init()
		for i, op := range tc.ops {
			var want int
			state, want = tc.obj.Apply(state, op)
			if got := u.Apply(0, op); got != want {
				t.Errorf("%s op %d (%v): got %d, want %d", tc.obj.Name(), i, op, got, want)
			}
		}
	}
}

func TestMaxRegisterObjAbsorbs(t *testing.T) {
	o := conc.MaxRegisterObj{V0: 4}
	s, _ := o.Apply(o.Init(), core.Op{Name: spec.OpWrite, Arg: 2})
	if s.(int) != 4 {
		t.Fatalf("smaller write changed state to %v", s)
	}
}

func TestObjectNames(t *testing.T) {
	objs := []conc.Object{
		conc.CounterObj{}, conc.RegisterObj{}, conc.MaxRegisterObj{},
		conc.QueueObj{}, conc.StackObj{}, conc.SetObj{},
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if o.Name() == "" || seen[o.Name()] {
			t.Errorf("bad or duplicate object name %q", o.Name())
		}
		seen[o.Name()] = true
	}
}
