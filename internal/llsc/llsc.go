// Package llsc provides the context-aware releasable LL/SC (R-LLSC) object
// of Section 6.1. The state of an R-LLSC object is the pair (val, context)
// where context is the set of processes whose load-link is still valid.
// Operations (performed by process p_i):
//
//	LL     adds p_i to the context and returns val
//	VL     reports whether p_i is in the context
//	SC(v)  if p_i is in the context: val = v, context = ∅, return true
//	RL     removes p_i from the context (the "releasable" extension)
//	Load   returns val without touching the context
//	Store  sets val = v and resets the context
//
// Two implementations are provided: a hardware-backed variant in which every
// operation is a single primitive on a sim.LLSCCell base object, and
// Algorithm 6, which implements the object from a single atomic CAS base
// object in a lock-free, perfect HI manner (Theorem 28).
package llsc

import (
	"fmt"

	"hiconc/internal/sim"
)

// Packed is the CAS-cell encoding used by Algorithm 6: the value together
// with the context as a bitmask (bit i set iff p_i is in the context). The
// dynamic type of Val must be comparable.
type Packed struct {
	// Val is the R-LLSC value.
	Val sim.Value
	// Ctx is the context bitmask.
	Ctx uint64
}

// String renders the packed state; it appears verbatim in memory snapshots.
func (pk Packed) String() string { return fmt.Sprintf("(%v|ctx=%b)", pk.Val, pk.Ctx) }

// LLAttempt is a resumable LL operation: Step executes one primitive step
// and reports completion; Value returns the loaded value once complete.
// Resumability is what lets Algorithm 5 interleave an LL with the polling
// reads of its escape hatches (the ∥ notation in lines 6, 18 and 25).
type LLAttempt interface {
	// Step executes one primitive step; it returns true once the LL has
	// taken effect.
	Step() bool
	// Value returns the loaded value; valid only after Step returned true.
	Value() sim.Value
}

// Var is an R-LLSC variable usable from simulator programs.
type Var interface {
	// Name returns the underlying base object's name.
	Name() string
	// Load returns the value without changing the context.
	Load(p *sim.Proc) sim.Value
	// Store sets the value and resets the context; it always succeeds.
	Store(p *sim.Proc, v sim.Value)
	// LL load-links: it adds the calling process to the context and
	// returns the value. It may block (Algorithm 6's LL is lock-free).
	LL(p *sim.Proc) sim.Value
	// BeginLL starts a resumable LL.
	BeginLL(p *sim.Proc) LLAttempt
	// VL reports whether the calling process is in the context.
	VL(p *sim.Proc) bool
	// SC store-conditionally writes v; it succeeds iff the calling process
	// is in the context, resetting the context.
	SC(p *sim.Proc, v sim.Value) bool
	// RL releases the calling process's link.
	RL(p *sim.Proc)
}

// Factory creates R-LLSC variables over a memory; it abstracts the choice
// between hardware cells and Algorithm 6.
type Factory interface {
	// New creates a variable named name with initial value init.
	New(mem *sim.Memory, name string, init sim.Value) Var
	// Name identifies the factory in test and harness names.
	Name() string
}

// HardwareFactory builds R-LLSC variables directly on sim.LLSCCell base
// objects: every operation is one atomic primitive.
type HardwareFactory struct{}

var _ Factory = HardwareFactory{}

// Name implements Factory.
func (HardwareFactory) Name() string { return "hw" }

// New implements Factory.
func (HardwareFactory) New(mem *sim.Memory, name string, init sim.Value) Var {
	return &hwVar{c: mem.NewLLSC(name, init)}
}

type hwVar struct {
	c *sim.LLSCCell
}

var _ Var = (*hwVar)(nil)

func (v *hwVar) Name() string                     { return v.c.Name() }
func (v *hwVar) Load(p *sim.Proc) sim.Value       { return p.Load(v.c) }
func (v *hwVar) Store(p *sim.Proc, val sim.Value) { p.Store(v.c, val) }
func (v *hwVar) LL(p *sim.Proc) sim.Value         { return p.LL(v.c) }
func (v *hwVar) VL(p *sim.Proc) bool              { return p.VL(v.c) }
func (v *hwVar) SC(p *sim.Proc, val sim.Value) bool {
	return p.SC(v.c, val)
}
func (v *hwVar) RL(p *sim.Proc) { p.RL(v.c) }

func (v *hwVar) BeginLL(p *sim.Proc) LLAttempt {
	return &hwLLAttempt{v: v, p: p}
}

type hwLLAttempt struct {
	v      *hwVar
	p      *sim.Proc
	done   bool
	result sim.Value
}

func (a *hwLLAttempt) Step() bool {
	if a.done {
		return true
	}
	a.result = a.p.LL(a.v.c)
	a.done = true
	return true
}

func (a *hwLLAttempt) Value() sim.Value { return a.result }
