package llsc_test

import (
	"fmt"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
)

// runSolo executes prog as a single process and returns the trace.
func runSolo(build func(mem *sim.Memory) sim.Program) *sim.Trace {
	mem := sim.NewMemory()
	prog := build(mem)
	return sim.NewRunner(mem, []sim.Program{prog}).Run(&sim.RoundRobin{}, 1000)
}

// soloSemantics exercises the full R-LLSC interface from one process and
// reports a numbered failure via the operation response (0 = all good).
func soloSemantics(f llsc.Factory) func(mem *sim.Memory) sim.Program {
	return func(mem *sim.Memory) sim.Program {
		v := f.New(mem, "x", 10)
		return func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "solo"}, true)
			fail := func(code int) { p.Return(code) }
			if v.Load(p) != 10 {
				fail(1)
				return
			}
			if v.VL(p) {
				fail(2) // not linked yet
				return
			}
			if v.SC(p, 99) {
				fail(3) // SC without LL must fail
				return
			}
			if got := v.LL(p); got != 10 {
				fail(4)
				return
			}
			if !v.VL(p) {
				fail(5)
				return
			}
			if !v.SC(p, 11) {
				fail(6)
				return
			}
			if v.VL(p) {
				fail(7) // SC reset the context
				return
			}
			if v.Load(p) != 11 {
				fail(8)
				return
			}
			// RL after LL: the link disappears, so SC fails.
			v.LL(p)
			v.RL(p)
			if v.SC(p, 12) {
				fail(9)
				return
			}
			// Store always succeeds and resets the context.
			v.LL(p)
			v.Store(p, 13)
			if v.SC(p, 14) {
				fail(10)
				return
			}
			if v.Load(p) != 13 {
				fail(11)
				return
			}
			// LL is idempotent for the same process.
			v.LL(p)
			v.LL(p)
			if !v.SC(p, 15) {
				fail(12)
				return
			}
			p.Return(0)
		}
	}
}

func TestSoloSemantics(t *testing.T) {
	for _, f := range []llsc.Factory{llsc.HardwareFactory{}, llsc.CASFactory{}} {
		tr := runSolo(soloSemantics(f))
		if got := tr.Responses(0); len(got) != 1 || got[0] != 0 {
			t.Errorf("%s: solo semantics failed with code %v", f.Name(), got)
		}
	}
}

func TestStoreInterferesWithSC(t *testing.T) {
	// A Store between LL and SC makes the SC fail (context reset).
	for _, f := range []llsc.Factory{llsc.HardwareFactory{}, llsc.CASFactory{}} {
		mem := sim.NewMemory()
		v := f.New(mem, "x", 1)
		llsc0 := func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "llsc"}, true)
			v.LL(p)
			if v.SC(p, 2) {
				p.Return(1) // must fail
				return
			}
			p.Return(0)
		}
		storer := func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "store"}, true)
			v.Store(p, 7)
			p.Return(0)
		}
		r := sim.NewRunner(mem, []sim.Program{llsc0, storer})
		// p0 completes its LL, then p1 stores, then p0 attempts SC.
		steps := 2
		if f.Name() == "hw" {
			steps = 1
		}
		sch := &sim.Phases{List: []sim.Phase{{PID: 0, Steps: steps}, {PID: 1, Steps: 1}, {PID: 0, Steps: 100}}}
		tr := r.Run(sch, 1000)
		if got := tr.Responses(0); len(got) != 1 || got[0] != 0 {
			t.Errorf("%s: SC after interfering Store: responses %v", f.Name(), got)
		}
		if fp := sim.Fingerprint(tr.MemAt(len(tr.Steps))); fp != "(7|ctx=0)" {
			t.Errorf("%s: final memory %s, want (7|ctx=0)", f.Name(), fp)
		}
	}
}

// TestSCExclusivity explores all interleavings of two LL;SC pairs on the
// Algorithm 6 implementation and checks, on every trace, that each
// successful SC was preceded by a state carrying the caller's context bit
// and that it resets the context (the linearization invariants behind
// Theorem 28).
func TestSCExclusivity(t *testing.T) {
	build := func() *sim.Runner {
		mem := sim.NewMemory()
		v := llsc.CASFactory{}.New(mem, "x", 0)
		prog := func(val int) sim.Program {
			return func(p *sim.Proc) {
				p.Invoke(core.Op{Name: fmt.Sprintf("llsc%d", val)}, true)
				v.LL(p)
				if v.SC(p, val) {
					p.Return(1)
				} else {
					p.Return(0)
				}
			}
		}
		return sim.NewRunner(mem, []sim.Program{prog(1), prog(2)})
	}
	n, err := sim.Explore(build, 40, 500000, func(tr *sim.Trace) error {
		succ := 0
		for _, s := range tr.Steps {
			if s.Prim.Kind != sim.PrimCAS || s.Result != true {
				continue
			}
			oldV := s.Prim.Arg1.(llsc.Packed)
			newV := s.Prim.Arg2.(llsc.Packed)
			if newV.Ctx == oldV.Ctx|uint64(1)<<uint(s.PID) && newV.Val == oldV.Val {
				continue // an LL's context CAS
			}
			// An SC's CAS: caller must have been linked, context resets.
			if oldV.Ctx&(uint64(1)<<uint(s.PID)) == 0 {
				return fmt.Errorf("SC by p%d succeeded without a link (old %v)", s.PID, oldV)
			}
			if newV.Ctx != 0 {
				return fmt.Errorf("SC left a non-empty context %v", newV)
			}
			succ++
		}
		if succ == 0 {
			return fmt.Errorf("no SC succeeded")
		}
		// Final value must come from a successful SC, and the responses
		// must agree with the number of successes.
		wins := 0
		for pid := 0; pid < 2; pid++ {
			r := tr.Responses(pid)
			if len(r) == 1 && r[0] == 1 {
				wins++
			}
		}
		if wins != succ {
			return fmt.Errorf("%d successful SC steps but %d reported wins", succ, wins)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d interleavings", n)
}

// TestOverlappingLLSCOneWinner pins the classic scenario: both processes
// load-link before either stores conditionally; exactly one SC wins.
func TestOverlappingLLSCOneWinner(t *testing.T) {
	mem := sim.NewMemory()
	v := llsc.CASFactory{}.New(mem, "x", 0)
	prog := func(val int) sim.Program {
		return func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "op"}, true)
			v.LL(p)
			if v.SC(p, val) {
				p.Return(1)
			} else {
				p.Return(0)
			}
		}
	}
	r := sim.NewRunner(mem, []sim.Program{prog(1), prog(2)})
	// Each LL is read+CAS (2 steps); run both LLs, then both SCs.
	sch := &sim.Phases{List: []sim.Phase{
		{PID: 0, Steps: 2}, {PID: 1, Steps: 2}, {PID: 0, Steps: 100}, {PID: 1, Steps: 100},
	}}
	tr := r.Run(sch, 1000)
	r0, r1 := tr.Responses(0), tr.Responses(1)
	if len(r0) != 1 || len(r1) != 1 || r0[0]+r1[0] != 1 {
		t.Fatalf("wins: p0=%v p1=%v; want exactly one", r0, r1)
	}
	if r0[0] != 1 {
		t.Errorf("p0 performed its SC first and should win (p0=%v p1=%v)", r0, r1)
	}
	if fp := sim.Fingerprint(tr.MemAt(len(tr.Steps))); fp != "(1|ctx=0)" {
		t.Errorf("final memory %s, want (1|ctx=0)", fp)
	}
}

// TestRLUnderContention checks that RL terminates and removes only the
// caller's bit even when racing with another process's LL.
func TestRLUnderContention(t *testing.T) {
	build := func() *sim.Runner {
		mem := sim.NewMemory()
		v := llsc.CASFactory{}.New(mem, "x", 0)
		releaser := func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "rl"}, true)
			v.LL(p)
			v.RL(p)
			p.Return(0)
		}
		linker := func(p *sim.Proc) {
			p.Invoke(core.Op{Name: "ll"}, true)
			v.LL(p)
			p.Return(0)
		}
		return sim.NewRunner(mem, []sim.Program{releaser, linker})
	}
	_, err := sim.Explore(build, 30, 200000, func(tr *sim.Trace) error {
		if tr.Truncated {
			return fmt.Errorf("RL or LL did not terminate")
		}
		// p0 released itself; p1 remains linked: ctx must be exactly 10b.
		if fp := sim.Fingerprint(tr.MemAt(len(tr.Steps))); fp != "(0|ctx=10)" {
			return fmt.Errorf("final memory %s, want (0|ctx=10)", fp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBeginLLAbandonLeavesNoTrace checks the property Algorithm 5 relies on
// for its escape hatches: abandoning an LL attempt whose last step was a
// read (or failed CAS) leaves the context unchanged.
func TestBeginLLAbandonLeavesNoTrace(t *testing.T) {
	mem := sim.NewMemory()
	v := llsc.CASFactory{}.New(mem, "x", 5)
	prog := func(p *sim.Proc) {
		p.Invoke(core.Op{Name: "abandon"}, true)
		att := v.BeginLL(p)
		att.Step() // the read step only
		p.Return(0)
	}
	tr := sim.NewRunner(mem, []sim.Program{prog}).Run(&sim.RoundRobin{}, 100)
	if fp := sim.Fingerprint(tr.MemAt(len(tr.Steps))); fp != "(5|ctx=0)" {
		t.Errorf("abandoned LL left %s, want (5|ctx=0)", fp)
	}
}

func TestPackedString(t *testing.T) {
	pk := llsc.Packed{Val: 3, Ctx: 5}
	if got := pk.String(); got != "(3|ctx=101)" {
		t.Errorf("Packed.String() = %q", got)
	}
}
