package llsc

import (
	"fmt"

	"hiconc/internal/sim"
)

// CASFactory builds R-LLSC variables using Algorithm 6: the object's state
// (val, context) is packed into a single atomic CAS base object. The
// implementation is linearizable, perfect HI, and lock-free (LL, SC and RL
// may retry under contention); Load, VL and Store are wait-free
// (Theorem 28).
type CASFactory struct{}

var _ Factory = CASFactory{}

// Name implements Factory.
func (CASFactory) Name() string { return "cas" }

// New implements Factory.
func (CASFactory) New(mem *sim.Memory, name string, init sim.Value) Var {
	return &casVar{x: mem.NewCAS(name, Packed{Val: init})}
}

type casVar struct {
	x *sim.CASObj
}

var _ Var = (*casVar)(nil)

func (v *casVar) Name() string { return v.x.Name() }

func bit(p *sim.Proc) uint64 {
	if p.ID >= 64 {
		panic(fmt.Sprintf("llsc: pid %d exceeds the 64-process context bitmask", p.ID))
	}
	return uint64(1) << uint(p.ID)
}

func (v *casVar) read(p *sim.Proc) Packed { return p.ReadCAS(v.x).(Packed) }

// Load is Algorithm 6 lines 21-22.
func (v *casVar) Load(p *sim.Proc) sim.Value { return v.read(p).Val }

// Store is Algorithm 6 lines 23-24: write the value with an empty context.
func (v *casVar) Store(p *sim.Proc, val sim.Value) {
	p.WriteCAS(v.x, Packed{Val: val})
}

// LL is Algorithm 6 lines 1-6: repeatedly read and CAS-in the caller's
// context bit. Lock-free: concurrent context changes force retries.
func (v *casVar) LL(p *sim.Proc) sim.Value {
	a := v.BeginLL(p)
	for !a.Step() {
	}
	return a.Value()
}

// VL is Algorithm 6 lines 12-13.
func (v *casVar) VL(p *sim.Proc) bool {
	return v.read(p).Ctx&bit(p) != 0
}

// SC is Algorithm 6 lines 7-11: while the caller's bit is set, try to
// install (v, ∅); once the bit is observed clear, fail.
func (v *casVar) SC(p *sim.Proc, val sim.Value) bool {
	cur := v.read(p)
	for cur.Ctx&bit(p) != 0 {
		if p.CAS(v.x, cur, Packed{Val: val}) {
			return true
		}
		cur = v.read(p)
	}
	return false
}

// RL is Algorithm 6 lines 14-20: while the caller's bit is set, try to clear
// it; it always returns true.
func (v *casVar) RL(p *sim.Proc) {
	cur := v.read(p)
	for cur.Ctx&bit(p) != 0 {
		next := cur
		next.Ctx &^= bit(p)
		if p.CAS(v.x, cur, next) {
			return
		}
		cur = v.read(p)
	}
}

// BeginLL returns the resumable form of LL.
func (v *casVar) BeginLL(p *sim.Proc) LLAttempt {
	return &casLLAttempt{v: v, p: p}
}

type casLLAttempt struct {
	v       *casVar
	p       *sim.Proc
	cur     Packed
	haveCur bool
	done    bool
	result  sim.Value
}

func (a *casLLAttempt) Step() bool {
	if a.done {
		return true
	}
	if !a.haveCur {
		a.cur = a.v.read(a.p)
		a.haveCur = true
		return false
	}
	next := a.cur
	next.Ctx |= bit(a.p)
	if a.p.CAS(a.v.x, a.cur, next) {
		a.result = a.cur.Val
		a.done = true
		return true
	}
	a.haveCur = false
	return false
}

func (a *casLLAttempt) Value() sim.Value { return a.result }
