package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRoundTrip: recorded rows survive write + read with the committed
// schema intact.
func TestRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Ops = 5000
	r.Record("E21", "set/a", "ns/op", 53.5)
	r.RecordPerOp("E21", "set/b", 100*time.Millisecond, 1000)
	r.Record("E22", "storm/x", "count", 0)
	names, err := r.WriteFiles(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "BENCH_E21.json" || names[1] != "BENCH_E22.json" {
		t.Fatalf("wrote %v", names)
	}
	dir := t.TempDir()
	if _, err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(filepath.Join(dir, "BENCH_E21.json"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Exp != "E21" || f.Ops != 5000 || len(f.Results) != 2 {
		t.Fatalf("read back %+v", f)
	}
	if row := f.Find("set/b", "ns/op"); row == nil || row.Value != 100000 {
		t.Fatalf("per-op row = %+v", row)
	}
	if got := r.Families(); len(got) != 2 || got[0] != "E21" {
		t.Fatalf("families = %v", got)
	}
}

// TestReadFileRejectsGarbage: a truncated or foreign JSON file is an
// error, not a silently empty baseline.
func TestReadFileRejectsGarbage(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestCompare: the gate passes within tolerance, fails beyond it, fails
// on missing cases, and ignores non-latency metrics.
func TestCompare(t *testing.T) {
	committed := File{Exp: "E21", Results: []Row{
		{Case: "a", Metric: "ns/op", Value: 100},
		{Case: "b", Metric: "ns/op", Value: 100},
		{Case: "c", Metric: "ns/op", Value: 100},
		{Case: "d", Metric: "count", Value: 7}, // not gated
	}}
	fresh := File{Exp: "E21", Results: []Row{
		{Case: "a", Metric: "ns/op", Value: 120},  // within 50%
		{Case: "b", Metric: "ns/op", Value: 200},  // regressed
		{Case: "d", Metric: "count", Value: 9000}, // ignored
		// c missing entirely
	}}
	deltas, regressions := Compare(committed, fresh, 0.5)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (b regressed, c missing)", regressions)
	}
	byCase := map[string]Delta{}
	for _, d := range deltas {
		byCase[d.Case] = d
	}
	if byCase["a"].Regressed || !byCase["b"].Regressed || !byCase["c"].Missing {
		t.Fatalf("verdicts wrong: %+v", byCase)
	}
	var sb strings.Builder
	WriteDeltas(&sb, "E21", deltas, 0.5)
	out := sb.String()
	for _, want := range []string{"ok   a", "FAIL b", "missing from fresh run", "tolerance 50%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
