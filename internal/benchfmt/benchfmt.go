// Package benchfmt is the machine-readable side of cmd/hibench: the
// BENCH_<exp>.json document shape, a recorder that accumulates
// measurement rows per experiment family, and the regression comparison
// the -check gate runs against committed documents.
//
// The document schema is fixed (it is committed to the repository and
// diffed across commits):
//
//	{"exp": "E21", "ops": 200000, "results": [
//	  {"case": "set/zipf=1.01/hihash/load=0.5", "metric": "ns/op", "value": 53.6},
//	  ...]}
//
// A case name identifies the implementation and parameters; the metric
// names the unit. Only "ns/op" rows participate in regression gating —
// counts, rates and distribution rows are informational.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Row is one measurement of one case.
type Row struct {
	// Case identifies the measurement (impl and parameters).
	Case string `json:"case"`
	// Metric names the unit, e.g. "ns/op" or "reads/sec".
	Metric string `json:"metric"`
	// Value is the measurement.
	Value float64 `json:"value"`
}

// File is one BENCH_<exp>.json document.
type File struct {
	Exp     string `json:"exp"`
	Ops     int    `json:"ops"`
	Results []Row  `json:"results"`
}

// Filename returns the canonical file name of the document.
func (f *File) Filename() string { return "BENCH_" + f.Exp + ".json" }

// Find returns the first row matching (kase, metric), or nil.
func (f *File) Find(kase, metric string) *Row {
	for i := range f.Results {
		if f.Results[i].Case == kase && f.Results[i].Metric == metric {
			return &f.Results[i]
		}
	}
	return nil
}

// Recorder accumulates rows per experiment family. It is not safe for
// concurrent use — experiments record from the driver goroutine.
type Recorder struct {
	// Ops is the -ops setting stamped into every written document.
	Ops      int
	families map[string][]Row
	order    []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{families: map[string][]Row{}}
}

// Record stores one measurement row under experiment family exp.
func (r *Recorder) Record(exp, kase, metric string, value float64) {
	if _, ok := r.families[exp]; !ok {
		r.order = append(r.order, exp)
	}
	r.families[exp] = append(r.families[exp], Row{Case: kase, Metric: metric, Value: value})
}

// RecordPerOp stores a ns/op row computed from a duration over n ops.
func (r *Recorder) RecordPerOp(exp, kase string, d time.Duration, n int) {
	r.Record(exp, kase, "ns/op", float64(d.Nanoseconds())/float64(n))
}

// Families returns the recorded experiment names in first-recorded order.
func (r *Recorder) Families() []string {
	return append([]string(nil), r.order...)
}

// File assembles the document of one recorded family.
func (r *Recorder) File(exp string) File {
	return File{Exp: exp, Ops: r.Ops, Results: append([]Row(nil), r.families[exp]...)}
}

// WriteFiles emits one BENCH_<exp>.json per recorded family into dir,
// returning the written file names.
func (r *Recorder) WriteFiles(dir string) ([]string, error) {
	var names []string
	for _, exp := range r.order {
		f := r.File(exp)
		buf, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return names, err
		}
		name := f.Filename()
		if err := os.WriteFile(filepath.Join(dir, name), append(buf, '\n'), 0o644); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}

// ReadFile parses one BENCH_<exp>.json document.
func ReadFile(path string) (File, error) {
	var f File
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Exp == "" {
		return f, fmt.Errorf("%s: missing exp field", path)
	}
	return f, nil
}

// sortRows orders rows by (case, metric) for stable comparison output.
func sortRows(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Case != out[j].Case {
			return out[i].Case < out[j].Case
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
