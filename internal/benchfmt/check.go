package benchfmt

import (
	"fmt"
	"io"
)

// The regression gate: a fresh run of an experiment family is compared
// row-by-row against the committed BENCH_<exp>.json. Only latency rows
// ("ns/op", lower is better) gate; other metrics (counts, rates,
// distribution stats) ride along as context. A gated row regresses when
// fresh > committed * (1 + tol); a gated committed row with no fresh
// counterpart (a renamed or dropped case) also fails, so the gate cannot
// be dodged by renaming.

// Delta is one compared row.
type Delta struct {
	Case   string
	Metric string
	// Old is the committed value, New the fresh one.
	Old, New float64
	// Ratio is New/Old (0 when Old is 0).
	Ratio float64
	// Missing marks a committed gated row absent from the fresh run.
	Missing bool
	// Regressed marks a gated row beyond tolerance (or missing).
	Regressed bool
}

// gated reports whether a metric participates in regression gating.
func gated(metric string) bool { return metric == "ns/op" }

// Compare evaluates fresh against committed with relative tolerance tol
// (0.5 = fresh may be up to 50% slower). It returns every gated delta
// (stable order) and the count of regressions.
func Compare(committed, fresh File, tol float64) (deltas []Delta, regressions int) {
	for _, old := range sortRows(committed.Results) {
		if !gated(old.Metric) {
			continue
		}
		d := Delta{Case: old.Case, Metric: old.Metric, Old: old.Value}
		if row := fresh.Find(old.Case, old.Metric); row == nil {
			d.Missing = true
			d.Regressed = true
		} else {
			d.New = row.Value
			if old.Value > 0 {
				d.Ratio = row.Value / old.Value
			}
			d.Regressed = d.Ratio > 1+tol
		}
		if d.Regressed {
			regressions++
		}
		deltas = append(deltas, d)
	}
	return deltas, regressions
}

// WriteDeltas renders a comparison table, marking regressed rows.
func WriteDeltas(w io.Writer, exp string, deltas []Delta, tol float64) {
	fmt.Fprintf(w, "    %s vs committed (tolerance %.0f%%):\n", exp, 100*tol)
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "      FAIL %-50s committed %.1f, missing from fresh run\n", d.Case, d.Old)
		case d.Regressed:
			fmt.Fprintf(w, "      FAIL %-50s %.1f -> %.1f ns/op (%.2fx)\n", d.Case, d.Old, d.New, d.Ratio)
		default:
			fmt.Fprintf(w, "      ok   %-50s %.1f -> %.1f ns/op (%.2fx)\n", d.Case, d.Old, d.New, d.Ratio)
		}
	}
}
