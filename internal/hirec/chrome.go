package hirec

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace event format (the JSON
// chrome://tracing and Perfetto load): B/E duration pairs for
// operations, instant events for protocol steps. Timestamps are
// microseconds relative to the recording's first event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the recording in Chrome trace event format:
// one track per lane, an operation as a B/E duration slice named
// "insert(5)", a protocol step as a thread-scoped instant event.
// Recordings with drops export fine (the trace just has holes); only
// history extraction refuses them.
func WriteChromeTrace(w io.Writer, rec Recording) error {
	var base int64
	for i, ev := range rec.Events {
		if i == 0 || ev.TS < base {
			base = ev.TS
		}
	}
	evs := make([]chromeEvent, 0, len(rec.Events))
	for _, ev := range rec.Events {
		ce := chromeEvent{
			TS:  float64(ev.TS-base) / 1e3,
			PID: 0,
			TID: int(ev.Lane),
		}
		switch ev.Kind {
		case KInvoke:
			ce.Name = fmt.Sprintf("%s(%d)", ev.Name, ev.Arg)
			ce.Ph = "B"
			ce.Args = map[string]any{"seq": ev.Seq, "op": ev.Index}
		case KReturn:
			ce.Name = fmt.Sprintf("%s(%d)", ev.Name, ev.Arg)
			ce.Ph = "E"
			ce.Args = map[string]any{"seq": ev.Seq, "resp": ev.Resp}
		case KStep:
			ce.Name = ev.Name
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = map[string]any{"seq": ev.Seq}
		default:
			continue
		}
		evs = append(evs, ce)
	}
	doc := struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata,omitempty"`
	}{
		TraceEvents: evs,
		Metadata: map[string]any{
			"recorder": "hiconc/internal/hirec",
			"dropped":  rec.Dropped,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
