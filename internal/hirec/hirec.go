// Package hirec is the flight recorder of the native HICHT stack: it
// captures what goroutines actually did — operation invocations and
// responses at the API layer (internal/obj, internal/shard) and labeled
// protocol steps inside internal/hihash and internal/conc — so that real
// executions, not just their simulated twins, can be machine-checked
// after the fact (post-hoc linearizability via internal/linearize,
// experiment E25) and rendered as timelines (trace.NativeTimeline, a
// Chrome-trace export).
//
// The layer hangs off one global atomic hook pointer (internal/hook),
// the same idiom as hihash.SetStepHook and histats: the disabled path of
// every recording site is a single atomic load and a predicted branch.
// Enabled, events land in per-goroutine lanes of preallocated buffers —
// a slot is claimed with one atomic add, stamped with a global sequence
// number and a coarse wall-clock timestamp, and sealed with one atomic
// store — so recording never takes a lock and never blocks the recorded
// protocol. A lane that fills up drops further events and counts them;
// extraction to a checkable history refuses recordings with drops
// (a history with holes proves nothing), while the trace exporters
// accept them.
//
// Like histats, the recorder is history by definition and must live
// outside the history-independence boundary: it never touches the
// objects' shared representation, and the objects never read it. The
// E23/E24-style twin gates are rerun with the recorder installed
// (TestInstrumentedDumpsIdentical, the E25 driver) to machine-check
// that raw dumps stay bit-identical.
//
// All functions are safe for concurrent use. Enable and Disable may race
// with recorded traffic: an operation whose OpStart loaded the old
// recorder finishes against it (the Token pins the recorder), so
// invoke/return pairs never split across recorders.
package hirec

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"hiconc/internal/hook"
)

// Kind distinguishes the recorded event types.
type Kind uint8

// The event kinds.
const (
	// KInvoke marks an operation invocation (OpStart).
	KInvoke Kind = iota + 1
	// KReturn marks the matching response (OpEnd).
	KReturn
	// KStep marks a labeled protocol step the goroutine performed
	// between some invocation and its response (Step).
	KStep
)

// Event is one recorded event. Events are pure observations: they carry
// the operation or step label, never any table memory.
type Event struct {
	// Seq is the global sequence number (from 1), the recording's total
	// order. Two events are concurrent in real time only if neither's
	// operation interval separates them — Seq just fixes one
	// interleaving consistent with each goroutine's program order.
	Seq uint64
	// TS is a coarse wall-clock timestamp (UnixNano) for timelines;
	// ordering authority rests with Seq.
	TS int64
	// Kind is the event type.
	Kind Kind
	// Lane is the recorder lane (the history's process id). Two
	// goroutines may share a lane; (Lane, Index) still pairs uniquely.
	Lane int32
	// Index numbers the lane's operations from 0 (KInvoke/KReturn);
	// it is -1 for KStep events.
	Index int32
	// Name is the operation name (spec.OpInsert, ...) or step label.
	Name string
	// Arg is the operation argument (KInvoke/KReturn).
	Arg int32
	// Resp is the operation response (KReturn only).
	Resp int32
}

// Token pairs an OpEnd with its OpStart: it pins the recorder and lane
// the invocation was recorded on, so the response lands on the same lane
// with the same index even if the goroutine's stack moved or the global
// recorder churned in between. The zero Token (disabled OpStart) makes
// OpEnd a no-op.
type Token struct {
	r    *Recorder
	ln   *lane
	idx  int32
	name string
	arg  int32
}

// cacheLine separates neighbouring lanes' hot words.
const cacheLine = 64

// lane is one per-goroutine-sharded event buffer. Slot i of buf is
// written exactly once, by the goroutine that claimed i via cursor, and
// becomes visible once seal[i] holds its sequence number — so Snapshot
// may run concurrently with writers and sees only complete events.
type lane struct {
	id      int32
	cursor  atomic.Int64  // next free slot of buf
	ops     atomic.Int32  // next operation index
	dropped atomic.Uint64 // events lost to a full buf
	_       [cacheLine]byte
	buf     []Event
	seal    []atomic.Uint64 // seal[i] = buf[i].Seq once slot i is complete
}

// Recorder accumulates events into per-goroutine lanes.
type Recorder struct {
	lanes []lane
	mask  uint64
	_     [cacheLine]byte
	gseq  atomic.Uint64
}

// NewRecorder returns a recorder with capPerLane event slots per lane;
// the lane count is GOMAXPROCS rounded up to a power of two, capped at
// 64 (the histats shard sizing). Total capacity is bounded and
// preallocated — recording allocates nothing.
func NewRecorder(capPerLane int) *Recorder {
	if capPerLane < 1 {
		capPerLane = 1
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n *= 2
	}
	r := &Recorder{lanes: make([]lane, n), mask: uint64(n - 1)}
	for i := range r.lanes {
		r.lanes[i].id = int32(i)
		r.lanes[i].buf = make([]Event, capPerLane)
		r.lanes[i].seal = make([]atomic.Uint64, capPerLane)
	}
	return r
}

// NumLanes returns the recorder's lane count (for tests).
func (r *Recorder) NumLanes() int { return len(r.lanes) }

// active is the installed recorder (internal/hook); nil when recording
// is disabled.
var active hook.Point[Recorder]

// Enable installs a fresh recorder with capPerLane slots per lane as the
// global sink and returns it.
func Enable(capPerLane int) *Recorder {
	r := NewRecorder(capPerLane)
	active.Install(r)
	return r
}

// EnableWith installs r (which may be shared with direct Recorder use).
func EnableWith(r *Recorder) { active.Install(r) }

// Disable uninstalls the global recorder and returns it (nil if
// recording was already disabled), so callers can still snapshot what
// was captured. In-flight operations whose OpStart saw the old recorder
// record their response against it.
func Disable() *Recorder { return active.Uninstall() }

// Active returns the installed recorder, nil when disabled.
func Active() *Recorder { return active.Load() }

// Enabled reports whether a recorder is installed.
func Enabled() bool { return active.Enabled() }

// OpStart records an operation invocation and returns the token its
// OpEnd must present. Disabled cost: one atomic load + branch.
func OpStart(name string, arg int) Token {
	if r := active.Load(); r != nil {
		return r.OpStart(name, arg)
	}
	return Token{}
}

// OpEnd records the response of the operation t identifies. It is a
// no-op for the zero Token, so call sites need no enabled check.
func OpEnd(t Token, resp int) {
	if t.r != nil {
		t.r.opEnd(t, resp)
	}
}

// Step records a labeled protocol step performed by the calling
// goroutine. Disabled cost: one atomic load + branch.
func Step(name string) {
	if r := active.Load(); r != nil {
		r.Step(name)
	}
}

// lane picks the calling goroutine's lane by hashing a stack address
// (distinct goroutines live on distinct stacks — the histats idiom; Go
// has no goroutine-local storage). The mapping is a contention-spreading
// heuristic: a stack growth may move a goroutine, and two goroutines may
// collide, neither of which hurts correctness because operations are
// paired by Token, not by lane.
func (r *Recorder) lane() *lane {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe)))
	h ^= h >> 12
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &r.lanes[h&r.mask]
}

// emit claims a slot on ln, stamps ev and seals it. A full lane counts
// the event as dropped instead of wrapping: overwriting old slots would
// race with concurrent snapshots and silently punch holes in the
// history, and extraction fails loudly on drops instead.
func (r *Recorder) emit(ln *lane, ev Event) {
	i := ln.cursor.Add(1) - 1
	if i >= int64(len(ln.buf)) {
		ln.dropped.Add(1)
		return
	}
	ev.Seq = r.gseq.Add(1)
	ev.TS = time.Now().UnixNano()
	ev.Lane = ln.id
	ln.buf[i] = ev
	ln.seal[i].Store(ev.Seq)
}

// OpStart records an invocation directly on r.
func (r *Recorder) OpStart(name string, arg int) Token {
	ln := r.lane()
	idx := ln.ops.Add(1) - 1
	r.emit(ln, Event{Kind: KInvoke, Index: idx, Name: name, Arg: int32(arg)})
	return Token{r: r, ln: ln, idx: idx, name: name, arg: int32(arg)}
}

func (r *Recorder) opEnd(t Token, resp int) {
	r.emit(t.ln, Event{Kind: KReturn, Index: t.idx, Name: t.name, Arg: t.arg, Resp: int32(resp)})
}

// Step records a protocol step directly on r.
func (r *Recorder) Step(name string) {
	r.emit(r.lane(), Event{Kind: KStep, Index: -1, Name: name})
}

// Recording is an extracted recording: all sealed events in sequence
// order, plus the drop count. The recorded interval of every operation
// contains its actual interval (the invocation is recorded before the
// operation starts, the response after it finished), so a verdict
// computed on the recording is sound: a linearizable recorded history
// only loosens real-time constraints, never invents them.
type Recording struct {
	Events  []Event
	Dropped uint64
}

// Snapshot extracts the recording. It is safe concurrently with
// recording (in-flight unsealed slots are skipped), though a consistent
// end-of-run recording requires the recorded workload to have drained.
func (r *Recorder) Snapshot() Recording {
	var out Recording
	for li := range r.lanes {
		ln := &r.lanes[li]
		out.Dropped += ln.dropped.Load()
		n := ln.cursor.Load()
		if n > int64(len(ln.buf)) {
			n = int64(len(ln.buf))
		}
		for i := int64(0); i < n; i++ {
			if ln.seal[i].Load() != 0 {
				out.Events = append(out.Events, ln.buf[i])
			}
		}
	}
	sort.Slice(out.Events, func(i, j int) bool { return out.Events[i].Seq < out.Events[j].Seq })
	return out
}
