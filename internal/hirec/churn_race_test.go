package hirec_test

import (
	"sort"
	"sync"
	"testing"

	"hiconc/internal/hirec"
	"hiconc/internal/obj"
)

// TestRecorderChurnUnderTraffic mirrors hihash's hook-churn race test one
// layer up: four goroutines hammer a HashSet (recorded at the obj layer,
// stepping inside hihash) — including a mid-run Grow — while a fifth
// installs and uninstalls the global flight recorder in a tight loop.
// The point is the race detector: Enable/Disable must be safe against
// concurrent OpStart/OpEnd/Step traffic, in-flight tokens must finish
// against the recorder they started on, and the table must come out
// intact. Run with -race.
func TestRecorderChurnUnderTraffic(t *testing.T) {
	defer hirec.Disable()
	const workers = 4
	opsPer := 3000
	if testing.Short() {
		opsPer = 500
	}
	const domain = 64
	s := obj.NewHashSetWithGroups(domain, 4)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := (w*opsPer+i)%domain + 1
				switch i % 3 {
				case 0:
					s.Insert(key)
				case 1:
					s.Contains(key)
				case 2:
					s.Remove(key)
				}
				if w == 0 && i == opsPer/2 {
					s.Grow()
				}
			}
		}(w)
	}

	flips := 300
	if testing.Short() {
		flips = 50
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			r := hirec.Enable(1 << 12)
			if hirec.Active() != r {
				// Another flip may already have swapped it, but in this
				// test we are the only installer.
				t.Error("Active disagrees with the recorder just installed")
				return
			}
			hirec.Disable()
		}
	}()
	wg.Wait()

	// Table integrity: every key was last inserted or removed by some
	// deterministic interleaving; just check membership is coherent.
	elems := s.Elements()
	if !sort.IntsAreSorted(elems) {
		t.Fatal("Elements not sorted")
	}
	for _, v := range elems {
		if v < 1 || v > domain {
			t.Fatalf("element %d out of domain", v)
		}
		if !s.Contains(v) {
			t.Fatalf("Elements reports %d but Contains denies it", v)
		}
	}

	// Held-recorder sanity: with churn over, a recorded burst must
	// extract cleanly.
	r := hirec.Enable(1 << 12)
	for v := 1; v <= 16; v++ {
		s.Insert(v)
	}
	hirec.Disable()
	recs, err := hirec.Records(r.Snapshot())
	if err != nil {
		t.Fatalf("post-churn extraction: %v", err)
	}
	if len(recs) != 16 {
		t.Fatalf("recorded %d ops, want 16", len(recs))
	}
}
