package hirec

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/linearize"
)

// Records converts a recording into linearize operation records so a
// native execution can be checked for linearizability post hoc
// (linearize.CheckRecords against the object's spec). The lane becomes
// the history's process id and the lane-local operation index pairs each
// response with its invocation; real-time precedence comes from the
// positions of the events in sequence order. Operations whose response
// was never recorded — a goroutine killed mid-operation by
// internal/faultinject, or an operation still in flight at Snapshot —
// become pending records, which the checker may linearize or drop.
//
// Records rejects recordings it cannot vouch for: any dropped events
// (the history has holes), a response without a matching invocation, a
// duplicate invocation or response for the same (lane, index), or a
// corrupt event kind. A rejected recording must not be fed to the
// checker — a verdict on a broken history proves nothing.
func Records(rec Recording) ([]linearize.OpRecord, error) {
	if rec.Dropped > 0 {
		return nil, fmt.Errorf("hirec: recording dropped %d events; raise the per-lane capacity or shorten the run", rec.Dropped)
	}
	type key struct{ lane, idx int32 }
	index := map[key]int{}
	var recs []linearize.OpRecord
	pos := 0 // position among op events (steps carry no ordering of their own)
	for _, ev := range rec.Events {
		switch ev.Kind {
		case KStep:
			continue
		case KInvoke:
			k := key{ev.Lane, ev.Index}
			if _, dup := index[k]; dup {
				return nil, fmt.Errorf("hirec: duplicate invocation for g%d op %d (seq %d)", ev.Lane, ev.Index, ev.Seq)
			}
			index[k] = len(recs)
			recs = append(recs, linearize.OpRecord{
				PID: int(ev.Lane), OpIndex: int(ev.Index),
				Op:  core.Op{Name: ev.Name, Arg: int(ev.Arg)},
				Inv: pos, Ret: -1,
			})
			pos++
		case KReturn:
			j, ok := index[key{ev.Lane, ev.Index}]
			if !ok {
				return nil, fmt.Errorf("hirec: response without an invocation for g%d op %d (seq %d)", ev.Lane, ev.Index, ev.Seq)
			}
			if recs[j].Completed {
				return nil, fmt.Errorf("hirec: duplicate response for g%d op %d (seq %d)", ev.Lane, ev.Index, ev.Seq)
			}
			recs[j].Completed = true
			recs[j].Resp = int(ev.Resp)
			recs[j].Ret = pos
			pos++
		default:
			return nil, fmt.Errorf("hirec: corrupt event kind %d (seq %d)", ev.Kind, ev.Seq)
		}
	}
	// Pending operations return after everything recorded.
	for i := range recs {
		if !recs[i].Completed {
			recs[i].Ret = pos
		}
	}
	return recs, nil
}
