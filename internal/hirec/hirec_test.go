package hirec

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hiconc/internal/spec"
)

// drain guards against a previous test leaving a recorder installed.
func drain(t *testing.T) {
	t.Helper()
	Disable()
	t.Cleanup(func() { Disable() })
}

func TestDisabledNoops(t *testing.T) {
	drain(t)
	if Enabled() || Active() != nil {
		t.Fatal("recorder installed at test start")
	}
	tok := OpStart(spec.OpInsert, 7)
	if tok.r != nil {
		t.Fatal("disabled OpStart returned a live token")
	}
	OpEnd(tok, 0) // must not panic
	Step("mark-set")
}

func TestRecordAndExtract(t *testing.T) {
	drain(t)
	r := Enable(1 << 10)
	const workers, opsPer = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				tok := OpStart(spec.OpInsert, w*opsPer+i+1)
				Step("bounded-update")
				OpEnd(tok, 0)
			}
		}(w)
	}
	wg.Wait()
	if Disable() != r {
		t.Fatal("Disable returned a different recorder")
	}
	rec := r.Snapshot()
	if rec.Dropped != 0 {
		t.Fatalf("dropped %d events with ample capacity", rec.Dropped)
	}
	wantEvents := workers * opsPer * 3 // invoke + step + return
	if len(rec.Events) != wantEvents {
		t.Fatalf("got %d events, want %d", len(rec.Events), wantEvents)
	}
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Seq <= rec.Events[i-1].Seq {
			t.Fatalf("events not in strict Seq order at %d", i)
		}
	}
	recs, err := Records(rec)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != workers*opsPer {
		t.Fatalf("got %d op records, want %d", len(recs), workers*opsPer)
	}
	for _, op := range recs {
		if !op.Completed {
			t.Fatalf("op %v not completed after a drained run", op.Op)
		}
		if op.Inv >= op.Ret {
			t.Fatalf("op %v has Inv %d >= Ret %d", op.Op, op.Inv, op.Ret)
		}
	}
}

func TestPendingOperation(t *testing.T) {
	r := NewRecorder(16)
	tok := r.OpStart(spec.OpInsert, 3)
	_ = tok // response never recorded: a crashed or in-flight operation
	recs, err := Records(r.Snapshot())
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 1 || recs[0].Completed {
		t.Fatalf("want one pending record, got %+v", recs)
	}
	if recs[0].Ret != 1 {
		t.Fatalf("pending op must return after everything recorded, Ret=%d", recs[0].Ret)
	}
}

func TestTokenPinsRecorderAcrossDisable(t *testing.T) {
	drain(t)
	Enable(16)
	tok := OpStart(spec.OpInc, 1)
	old := Disable()
	Enable(16)     // a different recorder takes over
	OpEnd(tok, 42) // must land on old, not the new one
	fresh := Disable()
	if n := len(fresh.Snapshot().Events); n != 0 {
		t.Fatalf("new recorder captured %d events from an old token", n)
	}
	recs, err := Records(old.Snapshot())
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != 1 || !recs[0].Completed || recs[0].Resp != 42 {
		t.Fatalf("old recorder should hold the completed op, got %+v", recs)
	}
}

func TestFullLaneDropsAndExtractionRefuses(t *testing.T) {
	r := NewRecorder(1) // one slot per lane
	for i := 0; i < 8; i++ {
		tok := r.OpStart(spec.OpInsert, i+1)
		r.opEnd(tok, 0)
	}
	rec := r.Snapshot()
	if rec.Dropped == 0 {
		t.Fatal("full lane did not count drops")
	}
	if _, err := Records(rec); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("Records accepted a recording with drops: %v", err)
	}
}

func TestExtractionRejectsCorruptRecordings(t *testing.T) {
	inv := Event{Seq: 1, Kind: KInvoke, Lane: 0, Index: 0, Name: spec.OpInsert, Arg: 1}
	ret := Event{Seq: 2, Kind: KReturn, Lane: 0, Index: 0, Name: spec.OpInsert, Arg: 1}
	cases := []struct {
		name string
		rec  Recording
		frag string
	}{
		{"orphan return", Recording{Events: []Event{ret}}, "without an invocation"},
		{"duplicate invocation", Recording{Events: []Event{inv, inv}}, "duplicate invocation"},
		{"duplicate response", Recording{Events: []Event{inv, ret, ret}}, "duplicate response"},
		{"corrupt kind", Recording{Events: []Event{{Seq: 1, Kind: 99}}}, "corrupt event kind"},
	}
	for _, tc := range cases {
		if _, err := Records(tc.rec); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.frag, err)
		}
	}
}

func TestChromeExport(t *testing.T) {
	r := NewRecorder(64)
	tok := r.OpStart(spec.OpInsert, 5)
	r.Step("mark-set")
	r.opEnd(tok, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Snapshot()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	if phases["B"] != 1 || phases["E"] != 1 || phases["i"] != 1 {
		t.Fatalf("unexpected phase mix %v", phases)
	}
	if doc.TraceEvents[0].Name != "insert(5)" {
		t.Fatalf("B event name %q", doc.TraceEvents[0].Name)
	}
}
