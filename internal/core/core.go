// Package core defines the abstract-object model from Section 2 of
// "History-Independent Concurrent Objects" (Attiya, Bender, Farach-Colton,
// Oshman, Schiller; PODC 2024).
//
// An abstract object is a tuple (Q, q0, O, R, Δ): a set of states Q, an
// initial state q0, a set of operations O, a set of responses R, and a
// deterministic transition function Δ : Q × O → Q × R. The package encodes
// states as strings (so they are comparable, hashable and printable),
// operations as Op values, and responses as ints.
package core

import (
	"fmt"
	"sort"
)

// Op is a single abstract operation o ∈ O, identified by a name and an
// optional integer argument (for example {"write", 3} or {"deq", 0}).
// The zero Op is not a valid operation.
type Op struct {
	// Name identifies the operation family (e.g. "read", "write", "enq").
	Name string
	// Arg is the operation argument; 0 when the operation takes none.
	Arg int
}

// String renders the operation in the conventional form name(arg).
func (o Op) String() string {
	if o.Arg == 0 {
		return o.Name + "()"
	}
	return fmt.Sprintf("%s(%d)", o.Name, o.Arg)
}

// Spec is a deterministic sequential specification of an abstract object.
// Implementations must be pure: Apply must not mutate any shared state and
// must return the same result for the same inputs.
type Spec interface {
	// Name identifies the object type (e.g. "register[K=4]").
	Name() string

	// Init returns the encoded initial state q0.
	Init() string

	// Apply is the transition function Δ. It returns the successor state
	// and the response of op when applied in state.
	Apply(state string, op Op) (next string, resp int)

	// ReadOnly reports whether op is a read-only operation, i.e. there is
	// no state q ∈ Q in which op changes the state (Section 3). Operations
	// that change the state from at least one state are state-changing.
	ReadOnly(op Op) bool

	// Ops enumerates every operation applicable in state. For all the
	// bounded objects in this repository the operation set is
	// state-independent, but the signature allows state-dependent sets.
	Ops(state string) []Op
}

// ApplySeq applies ops in order starting from state and returns the final
// state along with the responses, in order.
func ApplySeq(s Spec, state string, ops []Op) (string, []int) {
	resps := make([]int, 0, len(ops))
	for _, op := range ops {
		var r int
		state, r = s.Apply(state, op)
		resps = append(resps, r)
	}
	return state, resps
}

// Reachable enumerates states reachable from the initial state by breadth-
// first search, visiting at most limit states. The result is sorted for
// determinism. It returns an error if the limit is exceeded, which usually
// indicates an unbounded specification.
func Reachable(s Spec, limit int) ([]string, error) {
	seen := map[string]bool{s.Init(): true}
	frontier := []string{s.Init()}
	for len(frontier) > 0 {
		var next []string
		for _, q := range frontier {
			for _, op := range s.Ops(q) {
				q2, _ := s.Apply(q, op)
				if seen[q2] {
					continue
				}
				if len(seen) >= limit {
					return nil, fmt.Errorf("core: %s has more than %d reachable states", s.Name(), limit)
				}
				seen[q2] = true
				next = append(next, q2)
			}
		}
		frontier = next
	}
	states := make([]string, 0, len(seen))
	for q := range seen {
		states = append(states, q)
	}
	sort.Strings(states)
	return states, nil
}

// VerifyReadOnly checks that the ReadOnly flags of s are consistent with Δ
// over all states reachable within limit: an operation flagged read-only must
// never change the state, and an operation flagged state-changing must change
// the state from at least one reachable state.
func VerifyReadOnly(s Spec, limit int) error {
	states, err := Reachable(s, limit)
	if err != nil {
		return err
	}
	changes := map[Op]bool{}
	for _, q := range states {
		for _, op := range s.Ops(q) {
			q2, _ := s.Apply(q, op)
			if q2 != q {
				if s.ReadOnly(op) {
					return fmt.Errorf("core: %s: read-only op %v changes state %q -> %q", s.Name(), op, q, q2)
				}
				changes[op] = true
			}
		}
	}
	for _, q := range states {
		for _, op := range s.Ops(q) {
			if !s.ReadOnly(op) && !changes[op] {
				return fmt.Errorf("core: %s: op %v flagged state-changing but never changes any reachable state", s.Name(), op)
			}
		}
	}
	return nil
}

// Reversible reports whether every reachable state can reach every other
// reachable state (the paper's notion of a reversible object, footnote 1).
// It explores at most limit states.
func Reversible(s Spec, limit int) (bool, error) {
	states, err := Reachable(s, limit)
	if err != nil {
		return false, err
	}
	index := make(map[string]int, len(states))
	for i, q := range states {
		index[q] = i
	}
	// Floyd-Warshall-style reachability via BFS from every state.
	for _, from := range states {
		seen := map[string]bool{from: true}
		frontier := []string{from}
		for len(frontier) > 0 {
			var next []string
			for _, q := range frontier {
				for _, op := range s.Ops(q) {
					q2, _ := s.Apply(q, op)
					if !seen[q2] {
						seen[q2] = true
						next = append(next, q2)
					}
				}
			}
			frontier = next
		}
		if len(seen) != len(states) {
			return false, nil
		}
	}
	return true, nil
}
