package core_test

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

func TestApplySeq(t *testing.T) {
	r := spec.NewRegister(4, 1)
	state, resps := core.ApplySeq(r, r.Init(), []core.Op{
		{Name: spec.OpWrite, Arg: 3},
		{Name: spec.OpRead},
		{Name: spec.OpWrite, Arg: 2},
		{Name: spec.OpRead},
	})
	if state != "2" {
		t.Errorf("final state = %q, want %q", state, "2")
	}
	want := []int{0, 3, 0, 2}
	for i, r := range resps {
		if r != want[i] {
			t.Errorf("resp[%d] = %d, want %d", i, r, want[i])
		}
	}
}

func TestReachableRegister(t *testing.T) {
	r := spec.NewRegister(5, 2)
	states, err := core.Reachable(r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 5 {
		t.Errorf("register reachable states = %d, want 5", len(states))
	}
}

func TestReachableQueue(t *testing.T) {
	q := spec.NewQueue(2, 2)
	states, err := core.Reachable(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Empty + 2 singletons + 4 pairs = 7 states.
	if len(states) != 7 {
		t.Errorf("queue reachable states = %d, want 7: %v", len(states), states)
	}
}

func TestReachableLimit(t *testing.T) {
	q := spec.NewQueue(3, 3)
	if _, err := core.Reachable(q, 5); err == nil {
		t.Error("Reachable with tiny limit should fail")
	}
}

func TestVerifyReadOnly(t *testing.T) {
	for _, s := range []core.Spec{
		spec.NewRegister(4, 1),
		spec.NewMaxRegister(4, 1),
		spec.NewCounter(3, 0),
		spec.NewQueue(2, 3),
		spec.NewStack(2, 3),
		spec.NewSet(3),
	} {
		if err := core.VerifyReadOnly(s, 10000); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestReversible(t *testing.T) {
	cases := []struct {
		spec core.Spec
		want bool
	}{
		{spec.NewRegister(3, 1), true},     // registers are reversible
		{spec.NewMaxRegister(3, 1), false}, // max registers are not (footnote 1)
		{spec.NewCounter(3, 0), true},
		{spec.NewSet(3), true},
		{spec.NewQueue(2, 2), true},
	}
	for _, tc := range cases {
		got, err := core.Reversible(tc.spec, 10000)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec.Name(), err)
		}
		if got != tc.want {
			t.Errorf("Reversible(%s) = %v, want %v", tc.spec.Name(), got, tc.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if got := (core.Op{Name: "write", Arg: 3}).String(); got != "write(3)" {
		t.Errorf("Op.String() = %q", got)
	}
	if got := (core.Op{Name: "read"}).String(); got != "read()" {
		t.Errorf("Op.String() = %q", got)
	}
}
