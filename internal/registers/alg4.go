package registers

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// Alg4Variant selects the faithful Algorithm 4 or one of its deliberately
// broken mutants, used for failure injection.
type Alg4Variant int

const (
	// Alg4Full is the faithful Algorithm 4.
	Alg4Full Alg4Variant = iota + 1
	// Alg4ReaderSilent removes every reader write (flags and the B-clear).
	// Proposition 19 proves the reader must write; this mutant either
	// returns Bot (breaking linearizability) or leaks state.
	Alg4ReaderSilent
	// Alg4NoWriterBClear removes the writer's line 14-15 clean-up of B, so
	// a helping value can survive into a quiescent configuration,
	// violating quiescent HI.
	Alg4NoWriterBClear
	// Alg4NoHelp removes the writer's helping (lines 11-15) entirely; a
	// Read overlapping two Writes can fail to find any value and returns
	// Bot.
	Alg4NoHelp
)

func (v Alg4Variant) String() string {
	switch v {
	case Alg4Full:
		return "alg4"
	case Alg4ReaderSilent:
		return "alg4-reader-silent"
	case Alg4NoWriterBClear:
		return "alg4-no-writer-bclear"
	case Alg4NoHelp:
		return "alg4-no-help"
	default:
		return fmt.Sprintf("alg4-variant(%d)", int(v))
	}
}

// NewAlg4 returns the Algorithm 4 harness: the wait-free quiescent HI SWSR
// K-valued register from binary registers. The reader announces itself via
// flag[1]; a writer that sees a concurrent reader and an empty helping array
// B writes its previous value into B so the reader always finds a value
// within two TryRead attempts. Both sides carefully clear B and the flags so
// that every quiescent configuration is canonical.
func NewAlg4(k, v0 int) *harness.Harness {
	return newAlg4(k, v0, Alg4Full)
}

// NewAlg4Mutant returns a broken Algorithm 4 variant for failure injection.
func NewAlg4Mutant(k, v0 int, variant Alg4Variant) *harness.Harness {
	return newAlg4(k, v0, variant)
}

func newAlg4(k, v0 int, variant Alg4Variant) *harness.Harness {
	s := spec.NewRegister(k, v0)
	return &harness.Harness{
		Name:    fmt.Sprintf("%v[K=%d]", variant, k),
		Spec:    s,
		ProcOps: [][]core.Op{writerOps(k), readerOps()},
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem, a := regMem(k, v0)
			b := make([]*sim.Reg, k)
			for j := 1; j <= k; j++ {
				b[j-1] = mem.NewBinReg(fmt.Sprintf("B%d", j), 0)
			}
			flag1 := mem.NewBinReg("flag1", 0)
			flag2 := mem.NewBinReg("flag2", 0)

			writer := func(p *sim.Proc) {
				lastVal := v0
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					v := checkWrite(op, k)
					p.Invoke(op, true)
					if variant != Alg4NoHelp {
						// Line 11: check whether B is all zero.
						allZero := true
						for j := 1; j <= k; j++ {
							if p.ReadInt(b[j-1]) == 1 {
								allZero = false
								break
							}
						}
						if allZero && p.ReadInt(flag1) == 1 { // Line 12
							p.Write(b[lastVal-1], 1) // Line 13
							// Line 14: read flag[2], then flag[1].
							f2 := p.ReadInt(flag2)
							f1 := p.ReadInt(flag1)
							if variant != Alg4NoWriterBClear && (f2 == 1 || f1 == 0) {
								p.Write(b[lastVal-1], 0) // Line 15
							}
						}
					}
					p.Write(a[v-1], 1)  // Line 16
					clearDown(p, a, v)  // Line 17
					clearUp(p, a, v, k) // Line 18
					lastVal = v         // Line 19
					p.Return(0)
				}
			}

			reader := func(p *sim.Proc) {
				silent := variant == Alg4ReaderSilent
				for op, ok := srcs[1].Next(p); ok; op, ok = srcs[1].Next(p) {
					checkRead(op)
					p.Invoke(op, false)
					if !silent {
						p.Write(flag1, 1) // Line 1
					}
					val := Bot
					for it := 0; it < 2 && val == Bot; it++ { // Lines 2-4
						val = tryRead(p, k, a)
					}
					if val == Bot { // Lines 5-6
						for j := 1; j <= k; j++ {
							if p.ReadInt(b[j-1]) == 1 {
								val = j
							}
						}
					}
					if !silent {
						p.Write(flag2, 1)         // Line 7
						for j := 1; j <= k; j++ { // Line 8
							p.Write(b[j-1], 0)
						}
						p.Write(flag1, 0) // Line 9
						p.Write(flag2, 0) // Line 9
					}
					p.Return(val)
				}
			}
			return sim.NewRunner(mem, []sim.Program{writer, reader})
		},
	}
}
