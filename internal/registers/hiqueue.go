package registers

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// NewHIQueue returns a lock-free state-quiescent HI bounded queue-with-Peek
// from binary registers, for a single "changer" process (process 0, running
// Enqueue and Dequeue) and a single reader (process 1, running Peek). It is
// this repository's extension in the spirit of Algorithm 2, and the concrete
// demonstration target for the Theorem 20 adversary (Section 5.4): base
// objects are binary (2 states), the element domain has t values, and
// 2 < t+1 for every t >= 2, so the theorem rules out wait-free Peek —
// indeed Peek here is only lock-free.
//
// Memory layout: cell[pos][v] is a binary register that is 1 iff the queue
// currently holds element v at position pos, plus a "nonempty" binary flag.
// The canonical representation of a queue state is left-justified one-hot
// rows with the flag reflecting emptiness, so every state-quiescent
// configuration is canonical: the implementation is state-quiescent HI (the
// reader never writes).
//
// Dequeue shifts each position leftward, always writing the new 1 before
// clearing the old 1 within a position, so position 0 is never observably
// empty while the queue is logically nonempty. The nonempty flag is raised
// before the first element appears on Enqueue-from-empty (flag first, then
// cell) and cleared after the last element disappears on Dequeue-to-empty
// (cell first, then flag), so flag = 0 is only observable while the cells
// are genuinely all clear — which makes a Peek that reads flag = 0
// linearizable as reading an empty queue.
func NewHIQueue(t, capacity int) *harness.Harness {
	s := spec.NewQueue(t, capacity)
	changerOps := make([]core.Op, 0, t+1)
	for v := 1; v <= t; v++ {
		changerOps = append(changerOps, core.Op{Name: spec.OpEnq, Arg: v})
	}
	changerOps = append(changerOps, core.Op{Name: spec.OpDeq})
	return &harness.Harness{
		Name:    fmt.Sprintf("hiqueue[t=%d,cap=%d]", t, capacity),
		Spec:    s,
		ProcOps: [][]core.Op{changerOps, {core.Op{Name: spec.OpPeek}}},
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			cell := make([][]*sim.Reg, capacity)
			for pos := 0; pos < capacity; pos++ {
				cell[pos] = make([]*sim.Reg, t)
				for v := 1; v <= t; v++ {
					cell[pos][v-1] = mem.NewBinReg(fmt.Sprintf("c%d_%d", pos, v), 0)
				}
			}
			nonempty := mem.NewBinReg("nonempty", 0)

			changer := func(p *sim.Proc) {
				var q []int // the changer's local copy of the queue contents
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					switch op.Name {
					case spec.OpEnq:
						v := op.Arg
						if v < 1 || v > t {
							panic(fmt.Sprintf("registers: hiqueue enq(%d) out of range", v))
						}
						p.Invoke(op, true)
						if len(q) < capacity {
							// The flag is raised before the element appears:
							// a Peek that reads flag = 0 can then only do so
							// while the cells are genuinely all clear, which
							// makes its "empty" response linearizable. (The
							// converse order admits a non-linearizable race:
							// one Peek sees the new element via its cell,
							// forcing the Enqueue to linearize, while a later
							// Peek still reads flag = 0 and reports empty.)
							if len(q) == 0 {
								p.Write(nonempty, 1)
							}
							p.Write(cell[len(q)][v-1], 1)
							q = append(q, v)
						} else {
							// A full-queue Enqueue is a no-op but still takes
							// one (memory-neutral) step.
							p.Read(nonempty)
						}
						p.Return(0)
					case spec.OpDeq:
						p.Invoke(op, true)
						if len(q) == 0 {
							// An empty-queue Dequeue is a no-op but still
							// takes one (memory-neutral) step.
							p.Read(nonempty)
							p.Return(0)
							continue
						}
						head := q[0]
						// Shift every surviving element one position left,
						// writing the new 1 before clearing the old 1.
						for pos := 0; pos+1 < len(q); pos++ {
							if q[pos+1] != q[pos] {
								p.Write(cell[pos][q[pos+1]-1], 1)
								p.Write(cell[pos][q[pos]-1], 0)
							}
						}
						p.Write(cell[len(q)-1][q[len(q)-1]-1], 0)
						if len(q) == 1 {
							p.Write(nonempty, 0)
						}
						q = q[1:]
						p.Return(head)
					default:
						panic(fmt.Sprintf("registers: hiqueue changer got unexpected op %v", op))
					}
				}
			}

			reader := func(p *sim.Proc) {
				for op, ok := srcs[1].Next(p); ok; op, ok = srcs[1].Next(p) {
					if op.Name != spec.OpPeek {
						panic(fmt.Sprintf("registers: hiqueue reader got unexpected op %v", op))
					}
					p.Invoke(op, false)
					val := Bot
					for val == Bot {
						if p.ReadInt(nonempty) == 0 {
							val = 0 // linearize as a Peek of the empty queue
							break
						}
						for v := 1; v <= t; v++ {
							if p.ReadInt(cell[0][v-1]) == 1 {
								val = v
								break
							}
						}
						// No 1 found at position 0: a Dequeue/Enqueue raced
						// past us; retry (lock-free, as Theorem 20 demands).
					}
					p.Return(val)
				}
			}
			return sim.NewRunner(mem, []sim.Program{changer, reader})
		},
	}
}
