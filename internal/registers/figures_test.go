package registers_test

// Proof-scenario regression tests: the interleavings drawn in the paper's
// Figures 2, 4 and 5 pinned as explicit schedules.

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/linearize"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
)

// figure4Schedule is the Lemma 10 / Figure 4 interleaving for Algorithm 4
// with K=3, v0=3 and writer script [w1, w3, w1]: the reader announces
// itself, both TryReads fail because each Write lands the 1 behind the scan,
// and the value must come from the helping array B.
//
// Writer step counts: the first Write sees B empty and flag[1]=1, so it
// helps (3 B-reads + flag read + B write + 2 flag reads + 3 A-writes = 10
// steps); later Writes see B nonempty (B-scan finds the 1 at its third
// read) and skip helping (3 + 3 = 6 steps).
func figure4Schedule() []int {
	var sched []int
	sched = append(sched, 1)                            // flag[1] <- 1
	sched = append(sched, 1, 1)                         // TryRead1: A1, A2 (both 0)
	sched = append(sched, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // Write(1), helping: B[3] <- 1
	sched = append(sched, 1)                            // TryRead1: A3 = 0 -> ⊥
	sched = append(sched, 0, 0, 0, 0, 0, 0)             // Write(3)
	sched = append(sched, 1, 1)                         // TryRead2: A1, A2
	sched = append(sched, 0, 0, 0, 0, 0, 0)             // Write(1)
	sched = append(sched, 1)                            // TryRead2: A3 = 0 -> ⊥
	sched = append(sched, 1, 1, 1)                      // B scan: finds B[3] = 1
	sched = append(sched, 1, 1, 1, 1, 1, 1)             // flag[2], clear B, clear flags
	return sched
}

// TestFigure4HelpingPath runs the Figure 4 schedule on the faithful
// Algorithm 4: the read is saved by the writer's helping value and the
// execution stays linearizable and quiescent-HI.
func TestFigure4HelpingPath(t *testing.T) {
	h := registers.NewAlg4(3, 3)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd}}
	tr := h.BuildScripts(scripts).Run(sim.FixedSchedule(figure4Schedule()), 300)
	if tr.Truncated {
		t.Fatal("execution did not finish")
	}
	resps := tr.Responses(1)
	if len(resps) != 1 {
		t.Fatalf("reader responses: %v", resps)
	}
	if resps[0] != 3 {
		t.Fatalf("read returned %d; the helping path should deliver last-val = 3", resps[0])
	}
	if err := linearize.Check(h.Spec, tr.Events); err != nil {
		t.Fatal(err)
	}
	c := canonOrFatal(t, h, 3, 800)
	if err := hicheck.CheckTrace(c, tr, hicheck.Quiescent); err != nil {
		t.Fatal(err)
	}
}

// TestFigure5WriterCleansB pins the Lemma 35 / Figure 5 scenario on the
// faithful algorithm: the writer helps a reader that has already finished,
// observes flag[2]=0 ∧ flag[1]=0 and cleans B itself (line 15), so the
// quiescent memory stays canonical. (The mutant counterpart is
// TestAlg4NoWriterBClearViolatesQuiescentHI.)
func TestFigure5WriterCleansB(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	scripts := [][]core.Op{{w(2)}, {rd}}
	sch := &sim.Phases{List: []sim.Phase{
		{PID: 1, Steps: 1},  // reader: flag[1] <- 1
		{PID: 0, Steps: 4},  // writer: B scan + flag[1] read (sees the reader)
		{PID: 1, Steps: 50}, // reader completes entirely
		{PID: 0, Steps: 50}, // writer: B write, then line 14-15 clean-up
	}}
	tr := h.BuildScripts(scripts).Run(sch, 300)
	if tr.Truncated {
		t.Fatal("execution did not finish")
	}
	// The writer must have both written and cleared B[last-val] = B[1].
	wrote, cleared := false, false
	for _, s := range tr.Steps {
		if s.PID == 0 && s.Prim.Kind == sim.PrimWrite && s.Prim.Obj.Name() == "B1" {
			if s.Prim.Arg1 == 1 {
				wrote = true
			} else if wrote {
				cleared = true
			}
		}
	}
	if !wrote || !cleared {
		t.Fatalf("writer helping path not exercised (wrote=%v cleared=%v)", wrote, cleared)
	}
	c := canonOrFatal(t, h, 2, 800)
	if err := hicheck.CheckTrace(c, tr, hicheck.Quiescent); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2Scenarios covers the Theorem 12 linearization cases: a Read
// that returns from B (R1) followed by a Read from A (R2) — case (3) of the
// proof — must linearize R1 before R2 even though R1's value is older.
func TestFigure2Scenarios(t *testing.T) {
	h := registers.NewAlg4(3, 3)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd, rd}}
	// The first read runs the Figure 4 helping path (returns 3 from B);
	// the second read runs solo afterwards (returns the final value 1).
	sched := figure4Schedule()
	tr := h.BuildScripts(scripts).Run(sim.FixedSchedule(sched), 400)
	if tr.Truncated {
		t.Fatal("execution did not finish")
	}
	resps := tr.Responses(1)
	if len(resps) != 2 {
		t.Fatalf("reader responses: %v", resps)
	}
	if resps[0] != 3 || resps[1] != 1 {
		t.Fatalf("reads returned %v, want [3 1] (B read first, then the current value)", resps)
	}
	if err := linearize.Check(h.Spec, tr.Events); err != nil {
		t.Fatal(err)
	}
}

// TestFigure2ReadFromBConcurrentWrite is case (1)-flavoured: the B-read
// linearizes between the write it read from and that write's predecessor,
// which the global linearizability check certifies across an exhaustive
// family of interruption points.
func TestFigure2ReadFromBConcurrentWrite(t *testing.T) {
	h := registers.NewAlg4(3, 3)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd}}
	base := figure4Schedule()
	// Perturb the schedule: delay the reader's B scan by letting the
	// writer advance d extra steps first; every variant must stay
	// linearizable (the writer is done, so the read still returns 3).
	for d := 0; d <= 6; d++ {
		sched := append([]int(nil), base[:len(base)-9]...)
		for i := 0; i < d; i++ {
			sched = append(sched, 0)
		}
		sched = append(sched, base[len(base)-9:]...)
		tr := h.BuildScripts(scripts).Run(sim.FixedSchedule(sched), 400)
		if err := linearize.Check(h.Spec, tr.Events); err != nil {
			t.Fatalf("delay %d: %v", d, err)
		}
	}
}
