// Package registers implements the register-family algorithms of Sections 4
// and 5.1 over simulated binary registers:
//
//   - Algorithm 1: Vidyasankar's wait-free SWSR K-valued register — the
//     motivating example that is *not* history independent.
//   - Algorithm 2 (+ Algorithm 3 TryRead): the lock-free state-quiescent HI
//     register.
//   - Algorithm 4: the wait-free quiescent HI register with writer helping.
//   - The Section 5.1 wait-free state-quiescent HI max register.
//   - The Section 5.1 wait-free perfect HI set.
//   - A lock-free state-quiescent HI queue-with-Peek from binary registers
//     (our extension, the demonstration target for Theorem 20).
//
// Deliberately broken mutants used for failure-injection tests are provided
// alongside each algorithm.
package registers

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// Bot is the implementation-level ⊥ response, reported by mutants that reach
// states the correct algorithms prove unreachable (e.g. a Read with no value
// to return). It never appears in a specification, so any trace containing
// it fails linearizability.
const Bot = -1

// regMem creates the K binary registers A[1..K] of Algorithms 1 and 2.
func regMem(k, v0 int) (*sim.Memory, []*sim.Reg) {
	mem := sim.NewMemory()
	a := make([]*sim.Reg, k)
	for j := 1; j <= k; j++ {
		init := 0
		if j == v0 {
			init = 1
		}
		a[j-1] = mem.NewBinReg(fmt.Sprintf("A%d", j), init)
	}
	return mem, a
}

// writerOps enumerates write(1)..write(K).
func writerOps(k int) []core.Op {
	ops := make([]core.Op, k)
	for v := 1; v <= k; v++ {
		ops[v-1] = core.Op{Name: spec.OpWrite, Arg: v}
	}
	return ops
}

// readerOps is the reader's single operation.
func readerOps() []core.Op { return []core.Op{{Name: spec.OpRead}} }

// tryRead is Algorithm 3: scan up for the first index holding 1, then scan
// down re-checking lower indices; return Bot if no 1 was found at all.
func tryRead(p *sim.Proc, k int, a []*sim.Reg) int {
	for j := 1; j <= k; j++ {
		if p.ReadInt(a[j-1]) == 1 {
			val := j
			for j2 := val - 1; j2 >= 1; j2-- {
				if p.ReadInt(a[j2-1]) == 1 {
					val = j2
				}
			}
			return val
		}
	}
	return Bot
}

// clearDown writes 0 to A[v-1..1], the downward pass shared by Algorithms
// 1, 2 and 4.
func clearDown(p *sim.Proc, a []*sim.Reg, v int) {
	for j := v - 1; j >= 1; j-- {
		p.Write(a[j-1], 0)
	}
}

// clearUp writes 0 to A[v+1..K], the upward pass that makes Algorithms 2
// and 4 history independent.
func clearUp(p *sim.Proc, a []*sim.Reg, v, k int) {
	for j := v + 1; j <= k; j++ {
		p.Write(a[j-1], 0)
	}
}

// checkWrite panics unless op is write(v) with 1 <= v <= k.
func checkWrite(op core.Op, k int) int {
	if op.Name != spec.OpWrite || op.Arg < 1 || op.Arg > k {
		panic(fmt.Sprintf("registers: writer got unexpected op %v", op))
	}
	return op.Arg
}

// checkRead panics unless op is read().
func checkRead(op core.Op) {
	if op.Name != spec.OpRead {
		panic(fmt.Sprintf("registers: reader got unexpected op %v", op))
	}
}

// NewAlg1 returns the Algorithm 1 harness: Vidyasankar's wait-free SWSR
// K-valued register from binary registers, with initial value v0. Process 0
// is the writer, process 1 the reader. It is linearizable and wait-free but
// not history independent in any sense (Section 4).
func NewAlg1(k, v0 int) *harness.Harness {
	s := spec.NewRegister(k, v0)
	return &harness.Harness{
		Name:    fmt.Sprintf("alg1[K=%d]", k),
		Spec:    s,
		ProcOps: [][]core.Op{writerOps(k), readerOps()},
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem, a := regMem(k, v0)
			writer := func(p *sim.Proc) {
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					v := checkWrite(op, k)
					p.Invoke(op, true)
					p.Write(a[v-1], 1)
					clearDown(p, a, v)
					p.Return(0)
				}
			}
			reader := func(p *sim.Proc) {
				for op, ok := srcs[1].Next(p); ok; op, ok = srcs[1].Next(p) {
					checkRead(op)
					p.Invoke(op, false)
					// Scan up for the first 1 (Algorithm 1 lines 1-2).
					j := 1
					for p.ReadInt(a[j-1]) == 0 {
						j++
						if j > k {
							panic("registers: alg1 reader scanned past A[K]")
						}
					}
					val := j
					// Scan down (lines 4-5).
					for j2 := val - 1; j2 >= 1; j2-- {
						if p.ReadInt(a[j2-1]) == 1 {
							val = j2
						}
					}
					p.Return(val)
				}
			}
			return sim.NewRunner(mem, []sim.Program{writer, reader})
		},
	}
}

// NewAlg2 returns the Algorithm 2 harness: the lock-free state-quiescent HI
// SWSR K-valued register. The writer additionally clears the array upward,
// giving every value a canonical representation whenever no Write is
// pending; the price is that Read (a TryRead loop) is only lock-free.
func NewAlg2(k, v0 int) *harness.Harness {
	s := spec.NewRegister(k, v0)
	return &harness.Harness{
		Name:    fmt.Sprintf("alg2[K=%d]", k),
		Spec:    s,
		ProcOps: [][]core.Op{writerOps(k), readerOps()},
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem, a := regMem(k, v0)
			writer := func(p *sim.Proc) {
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					v := checkWrite(op, k)
					p.Invoke(op, true)
					p.Write(a[v-1], 1)
					clearDown(p, a, v)
					clearUp(p, a, v, k)
					p.Return(0)
				}
			}
			reader := func(p *sim.Proc) {
				for op, ok := srcs[1].Next(p); ok; op, ok = srcs[1].Next(p) {
					checkRead(op)
					p.Invoke(op, false)
					val := Bot
					for val == Bot {
						val = tryRead(p, k, a)
					}
					p.Return(val)
				}
			}
			return sim.NewRunner(mem, []sim.Program{writer, reader})
		},
	}
}

// NewMaxReg returns the Section 5.1 max register harness: Algorithm 1
// modified so the writer only touches memory when the new value exceeds
// every previously written value. The result is wait-free and
// state-quiescent HI — the max register escapes Theorem 17 because its state
// space is not well-connected (it is not in C_t).
func NewMaxReg(k, v0 int) *harness.Harness {
	s := spec.NewMaxRegister(k, v0)
	return &harness.Harness{
		Name:    fmt.Sprintf("maxreg[K=%d]", k),
		Spec:    s,
		ProcOps: [][]core.Op{writerOps(k), readerOps()},
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem, a := regMem(k, v0)
			writer := func(p *sim.Proc) {
				localMax := v0
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					v := checkWrite(op, k)
					p.Invoke(op, !s.ReadOnly(op))
					if v > localMax {
						p.Write(a[v-1], 1)
						clearDown(p, a, v)
						localMax = v
					} else {
						// Every operation takes at least one step; a write
						// that cannot raise the maximum re-reads the current
						// maximum's cell, which leaves memory untouched.
						p.Read(a[localMax-1])
					}
					p.Return(0)
				}
			}
			reader := func(p *sim.Proc) {
				for op, ok := srcs[1].Next(p); ok; op, ok = srcs[1].Next(p) {
					checkRead(op)
					p.Invoke(op, false)
					val := Bot
					// The 1 can only move upward, so a single upward scan
					// always finds one: the read is wait-free.
					for j := 1; j <= k; j++ {
						if p.ReadInt(a[j-1]) == 1 {
							val = j
							break
						}
					}
					p.Return(val)
				}
			}
			return sim.NewRunner(mem, []sim.Program{writer, reader})
		},
	}
}

// NewSet returns the Section 5.1 set harness: one binary register per
// element of {1..t}, insert/remove as blind writes and lookup as a read.
// Every operation takes a single primitive step, so the implementation is
// wait-free and perfect HI for any number of processes n.
func NewSet(t, n int) *harness.Harness {
	s := spec.NewSet(t)
	allOps := s.Ops("")
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("set[t=%d,n=%d]", t, n),
		Spec:    s,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			cells := make([]*sim.Reg, t)
			for v := 1; v <= t; v++ {
				cells[v-1] = mem.NewBinReg(fmt.Sprintf("S%d", v), 0)
			}
			progs := make([]sim.Program, n)
			for i := range progs {
				src := srcs[i]
				progs[i] = func(p *sim.Proc) {
					for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
						switch op.Name {
						case spec.OpInsert:
							p.Invoke(op, true)
							p.Write(cells[op.Arg-1], 1)
							p.Return(0)
						case spec.OpRemove:
							p.Invoke(op, true)
							p.Write(cells[op.Arg-1], 0)
							p.Return(0)
						case spec.OpLookup:
							p.Invoke(op, false)
							p.Return(p.ReadInt(cells[op.Arg-1]))
						default:
							panic(fmt.Sprintf("registers: set got unexpected op %v", op))
						}
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}
