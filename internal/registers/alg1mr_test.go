package registers_test

import (
	"fmt"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/linearize"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
)

func TestAlg1MultiReaderLinearizableFuzz(t *testing.T) {
	h := registers.NewAlg1MultiReader(3, 1, 2)
	scripts := [][]core.Op{{w(2), w(3), w(1)}, {rd, rd}, {rd, rd}}
	err := sim.RandomTraces(h.Builder(scripts), 500, 3, 300, func(tr *sim.Trace) error {
		return linearize.Check(h.Spec, tr.Events)
	})
	if err != nil {
		t.Error(err)
	}
}

func TestAlg1MultiReaderLinearizableExhaustive(t *testing.T) {
	h := registers.NewAlg1MultiReader(3, 3, 2)
	scripts := [][]core.Op{{w(1)}, {rd}, {rd}}
	_, err := sim.Explore(h.Builder(scripts), 12, 2_000_000, func(tr *sim.Trace) error {
		return linearize.Check(h.Spec, tr.Events)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlg1MultiReaderWaitFree(t *testing.T) {
	h := registers.NewAlg1MultiReader(4, 1, 3)
	scripts := [][]core.Op{{w(3), w(2), w(4)}, {rd, rd}, {rd, rd}, {rd, rd}}
	err := sim.RandomTraces(h.Builder(scripts), 300, 17, 400, func(tr *sim.Trace) error {
		for pid := 1; pid <= 3; pid++ {
			if got := len(tr.Responses(pid)); got != 2 {
				return fmt.Errorf("reader p%d completed %d of 2 reads", pid, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}
