package registers_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/hicheck"
	"hiconc/internal/linearize"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

var (
	rd = core.Op{Name: spec.OpRead}
	w  = func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
)

// canonOrFatal builds the canonical map, failing the test on any violation.
func canonOrFatal(t *testing.T, h *harness.Harness, maxOps, maxSteps int) *hicheck.Canon {
	t.Helper()
	c, err := hicheck.BuildCanon(h, maxOps, maxSteps)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	return c
}

// --- Algorithm 1 (Vidyasankar): correct but not history independent ---

func TestAlg1NotSequentiallyHI(t *testing.T) {
	h := registers.NewAlg1(3, 1)
	_, err := hicheck.BuildCanon(h, 2, 200)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("expected a sequential HI violation, got %v", err)
	}
	// The motivating example of Section 4: Write(2);Write(1) vs Write(1).
	t.Logf("witness: %v", v)
	if v.State == "" {
		t.Error("violation should name the duplicated state")
	}
}

func TestAlg1Linearizable(t *testing.T) {
	h := registers.NewAlg1(3, 1)
	scripts := [][]core.Op{{w(2), w(1), w(3)}, {rd, rd}}
	err := sim.RandomTraces(h.Builder(scripts), 300, 1, 120, func(tr *sim.Trace) error {
		return linearize.Check(h.Spec, tr.Events)
	})
	if err != nil {
		t.Error(err)
	}
}

func TestAlg1WaitFreeRead(t *testing.T) {
	// Algorithm 1's read is wait-free: the reader completes regardless of
	// schedule. Bound: up-scan K + down-scan K-1.
	h := registers.NewAlg1(4, 1)
	scripts := [][]core.Op{{w(3), w(2), w(4), w(1)}, {rd, rd, rd}}
	err := sim.RandomTraces(h.Builder(scripts), 300, 7, 400, func(tr *sim.Trace) error {
		if got := len(tr.Responses(1)); got != 3 {
			return fmt.Errorf("reader completed %d of 3 reads", got)
		}
		if steps := tr.StepsBy(1); steps > 3*(2*4-1) {
			return fmt.Errorf("reader took %d steps, exceeding the wait-free bound", steps)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

// --- Algorithm 2: lock-free, state-quiescent HI ---

func TestAlg2SequentialCanonical(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c := canonOrFatal(t, h, 3, 400)
	if len(c.ByState) != 3 {
		t.Fatalf("canonical map covers %d states, want 3", len(c.ByState))
	}
	for v := 1; v <= 3; v++ {
		mem := c.ByState[fmt.Sprint(v)]
		for j := 1; j <= 3; j++ {
			want := "0"
			if j == v {
				want = "1"
			}
			if mem[j-1] != want {
				t.Errorf("can(%d): A%d = %s, want %s (mem %v)", v, j, mem[j-1], want, mem)
			}
		}
	}
}

func TestAlg2StateQuiescentHIExhaustive(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c := canonOrFatal(t, h, 3, 400)
	scripts := hicheck.Scripts(h, []int{1, 1})
	n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, 14, 300000, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d interleavings (1 write, 1 read)", n)
}

func TestAlg2StateQuiescentHIExhaustiveTwoWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	h := registers.NewAlg2(3, 1)
	c := canonOrFatal(t, h, 3, 400)
	scripts := hicheck.Scripts(h, []int{2, 1})
	n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, 13, 1500000, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d interleavings (2 writes, 1 read)", n)
}

func TestAlg2StateQuiescentHIFuzz(t *testing.T) {
	h := registers.NewAlg2(4, 2)
	c := canonOrFatal(t, h, 4, 800)
	scripts := [][][]core.Op{
		{{w(3), w(1), w(4), w(2)}, {rd, rd, rd}},
		{{w(4), w(4), w(1)}, {rd, rd}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 400, 11, 300, true); err != nil {
		t.Fatal(err)
	}
}

func TestAlg2NotPerfectHI(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c := canonOrFatal(t, h, 3, 400)
	v := hicheck.FindViolation(c, h, hicheck.Scripts(h, []int{1, 0}), hicheck.Perfect, 10, 100000)
	if v == nil {
		t.Fatal("Algorithm 2 should violate perfect HI mid-write (Propositions 6/14)")
	}
	t.Logf("perfect-HI witness: %v", v)
}

func TestAlg2ReaderStarvation(t *testing.T) {
	// The reader of Algorithm 2 is only lock-free: a writer alternating
	// Write(1)/Write(3) at the right moments keeps every TryRead returning
	// ⊥, so the Read never returns (consistent with Theorem 17: wait-free
	// + state-quiescent HI from binary registers is impossible).
	const m = 12 // writer operations
	script0 := make([]core.Op, m)
	for i := range script0 {
		if i%2 == 0 {
			script0[i] = w(1)
		} else {
			script0[i] = w(3)
		}
	}
	h := registers.NewAlg2(3, 3)
	// Cycle: reader reads A1,A2 (both 0), writer does Write (3 steps)
	// landing the 1 where the reader already passed, reader reads A3 = 0.
	// One adversary block: the reader reads A1 and A2 (both 0 while the
	// value sits at 3), Write(1) moves the value below the reader's scan
	// position, the reader reads A3 = 0 and fails its TryRead, and
	// Write(3) moves the value back up before the next scan begins.
	var sched []int
	for i := 0; i < m/2; i++ {
		sched = append(sched, 1, 1, 0, 0, 0, 1, 0, 0, 0)
	}
	r := h.BuildScripts([][]core.Op{script0, {rd}})
	tr := r.Run(sim.FixedSchedule(sched), len(sched))
	if got := len(tr.Responses(1)); got != 0 {
		t.Fatalf("reader returned %d times; expected starvation", got)
	}
	if steps := tr.StepsBy(1); steps < 3*(m/2) {
		t.Fatalf("reader took only %d steps", steps)
	}
	t.Logf("reader took %d steps without returning across %d writes", tr.StepsBy(1), m)
}

// --- Algorithm 4: wait-free, quiescent HI ---

func TestAlg4SequentialCanonical(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	c := canonOrFatal(t, h, 3, 800)
	if len(c.ByState) != 3 {
		t.Fatalf("canonical map covers %d states, want 3", len(c.ByState))
	}
	// Canonical form: A one-hot, B all zero, flags zero.
	for v := 1; v <= 3; v++ {
		mem := c.ByState[fmt.Sprint(v)]
		fp := sim.Fingerprint(mem)
		if strings.Count(fp, "1") != 1 {
			t.Errorf("can(%d) = %s: expected exactly one 1", v, fp)
		}
	}
}

func TestAlg4QuiescentHIExhaustive(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	c := canonOrFatal(t, h, 3, 800)
	scripts := hicheck.Scripts(h, []int{1, 1})
	n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.Quiescent, 14, 600000, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d interleavings", n)
}

func TestAlg4QuiescentHIFuzz(t *testing.T) {
	h := registers.NewAlg4(3, 2)
	c := canonOrFatal(t, h, 4, 800)
	scripts := [][][]core.Op{
		{{w(3), w(1), w(2)}, {rd, rd, rd}},
		{{w(1), w(1), w(3)}, {rd, rd}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Quiescent, 400, 23, 400, true); err != nil {
		t.Fatal(err)
	}
}

func TestAlg4NotStateQuiescentHI(t *testing.T) {
	// While a Read is pending (flag[1] = 1) with no Write pending, the
	// memory is not canonical: Algorithm 4 is quiescent HI only.
	h := registers.NewAlg4(3, 1)
	c := canonOrFatal(t, h, 3, 800)
	v := hicheck.FindViolation(c, h, hicheck.Scripts(h, []int{0, 1}), hicheck.StateQuiescent, 6, 10000)
	if v == nil {
		t.Fatal("Algorithm 4 should violate state-quiescent HI while a read is pending")
	}
	t.Logf("state-quiescent witness: %v", v)
}

func TestAlg4WaitFreeRead(t *testing.T) {
	// Wait-freedom: under random adversarial schedules every read
	// completes, within a per-operation step bound.
	const k = 3
	h := registers.NewAlg4(k, 1)
	scripts := [][]core.Op{{w(3), w(1), w(2), w(3), w(1)}, {rd, rd, rd}}
	// Per-read bound: flag + 2 TryReads + B scan + flag + B clear + 2 flags.
	bound := 1 + 2*(2*k-1) + k + 1 + k + 2
	err := sim.RandomTraces(h.Builder(scripts), 500, 31, 600, func(tr *sim.Trace) error {
		if got := len(tr.Responses(1)); got != 3 {
			return fmt.Errorf("reader completed %d of 3 reads", got)
		}
		if steps := tr.StepsBy(1); steps > 3*bound {
			return fmt.Errorf("reader took %d steps (> 3×%d)", steps, bound)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

func TestAlg4LinearizableExhaustive(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	c := canonOrFatal(t, h, 2, 800)
	depth := 14
	if !testing.Short() {
		depth = 16
	}
	scripts := [][][]core.Op{{{w(2)}, {rd}}, {{w(3)}, {rd}}}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.Quiescent, depth, 600000, true); err != nil {
		t.Fatal(err)
	}
}

// --- Algorithm 4 mutants (failure injection) ---

func TestAlg4ReaderSilentViolatesCorrectness(t *testing.T) {
	// Proposition 19: the reader must write. With all reader writes
	// removed, a read overlapping two writes finds no value and returns ⊥.
	h := registers.NewAlg4Mutant(3, 3, registers.Alg4ReaderSilent)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd}}
	// Writer op = 3 B-reads + 1 flag read + 3 A-writes = 7 steps.
	var sched []int
	sched = append(sched, 1, 1)                // reader: A1, A2 (both 0)
	sched = append(sched, 0, 0, 0, 0, 0, 0, 0) // Write(1)
	sched = append(sched, 1)                   // reader: A3 = 0, TryRead ⊥
	sched = append(sched, 0, 0, 0, 0, 0, 0, 0) // Write(3)
	sched = append(sched, 1, 1)                // reader: A1, A2
	sched = append(sched, 0, 0, 0, 0, 0, 0, 0) // Write(1)
	sched = append(sched, 1)                   // reader: A3 = 0, TryRead ⊥
	sched = append(sched, 1, 1, 1)             // reader: B scan, all 0
	r := h.BuildScripts(scripts)
	tr := r.Run(sim.FixedSchedule(sched), 200)
	resps := tr.Responses(1)
	if len(resps) != 1 || resps[0] != registers.Bot {
		t.Fatalf("reader responses = %v; expected the ⊥ response %d", resps, registers.Bot)
	}
	if err := linearize.Check(h.Spec, tr.Events); err == nil {
		t.Fatal("history with a ⊥ read should not be linearizable")
	}
}

func TestAlg4NoHelpViolatesCorrectness(t *testing.T) {
	h := registers.NewAlg4Mutant(3, 3, registers.Alg4NoHelp)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd}}
	// Writer op without helping = 3 A-writes; reader starts with flag[1].
	var sched []int
	sched = append(sched, 1)       // flag[1] <- 1
	sched = append(sched, 1, 1)    // A1, A2
	sched = append(sched, 0, 0, 0) // Write(1)
	sched = append(sched, 1)       // A3 = 0 -> ⊥
	sched = append(sched, 0, 0, 0) // Write(3)
	sched = append(sched, 1, 1)    // A1, A2
	sched = append(sched, 0, 0, 0) // Write(1)
	sched = append(sched, 1)       // A3 = 0 -> ⊥
	sched = append(sched, 1, 1, 1) // B scan: empty, no helper
	r := h.BuildScripts(scripts)
	tr := r.Run(sim.FixedSchedule(sched), 200)
	// Let the reader finish its bookkeeping.
	if got := tr.Responses(1); len(got) == 0 {
		// Reader still mid-cleanup; drive it to completion.
		t.Fatalf("reader did not return (responses %v)", got)
	}
	if got := tr.Responses(1); got[0] != registers.Bot {
		t.Fatalf("reader returned %d; expected ⊥", got[0])
	}
}

func TestAlg4NoWriterBClearViolatesQuiescentHI(t *testing.T) {
	h := registers.NewAlg4Mutant(3, 1, registers.Alg4NoWriterBClear)
	c, err := hicheck.BuildCanon(h, 2, 800)
	if err != nil {
		t.Fatalf("sequential runs of the mutant are still canonical: %v", err)
	}
	// Reader announces, writer observes the flag, reader completes fully,
	// then the writer helps a reader that is long gone and (mutant) never
	// cleans up B.
	scripts := [][]core.Op{{w(2)}, {rd}}
	sch := &sim.Phases{List: []sim.Phase{
		{PID: 1, Steps: 1},  // flag[1] <- 1
		{PID: 0, Steps: 4},  // B scan (3) + flag[1] read
		{PID: 1, Steps: 50}, // reader completes entirely
		{PID: 0, Steps: 50}, // writer: B[last-val] <- 1, skipped clear, A writes
	}}
	tr := h.BuildScripts(scripts).Run(sch, 200)
	if tr.Truncated {
		t.Fatal("execution did not quiesce")
	}
	err = hicheck.CheckTrace(c, tr, hicheck.Quiescent)
	var v *hicheck.Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a quiescent HI violation, got %v", err)
	}
	t.Logf("mutant witness: %v", v)
}

func TestAlg4FullSurvivesBClearSchedule(t *testing.T) {
	// The same schedule on the faithful algorithm leaves canonical memory.
	h := registers.NewAlg4(3, 1)
	c := canonOrFatal(t, h, 2, 800)
	scripts := [][]core.Op{{w(2)}, {rd}}
	sch := &sim.Phases{List: []sim.Phase{
		{PID: 1, Steps: 1}, {PID: 0, Steps: 4}, {PID: 1, Steps: 50}, {PID: 0, Steps: 50},
	}}
	tr := h.BuildScripts(scripts).Run(sch, 200)
	if err := hicheck.CheckTrace(c, tr, hicheck.Quiescent); err != nil {
		t.Fatal(err)
	}
}

// --- Max register (Section 5.1) ---

func TestMaxRegStateQuiescentHI(t *testing.T) {
	h := registers.NewMaxReg(3, 1)
	c := canonOrFatal(t, h, 3, 400)
	scripts := hicheck.Scripts(h, []int{1, 1})
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, 12, 300000, true); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRegWaitFreeAndLinearizableFuzz(t *testing.T) {
	h := registers.NewMaxReg(4, 1)
	c := canonOrFatal(t, h, 4, 400)
	scripts := [][][]core.Op{
		{{w(2), w(4), w(1), w(3)}, {rd, rd, rd}},
		{{w(3), w(3), w(4)}, {rd, rd}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 400, 41, 300, true); err != nil {
		t.Fatal(err)
	}
	// Wait-freedom: the reader's scan is bounded by K per read.
	err := sim.RandomTraces(h.Builder(scripts[0]), 300, 43, 300, func(tr *sim.Trace) error {
		if got := len(tr.Responses(1)); got != 3 {
			return fmt.Errorf("reader completed %d of 3 reads", got)
		}
		if steps := tr.StepsBy(1); steps > 3*4 {
			return fmt.Errorf("reader took %d steps", steps)
		}
		return nil
	})
	if err != nil {
		t.Error(err)
	}
}

// --- Set (Section 5.1): wait-free perfect HI ---

func setOps(t int) (ins, rem, look func(v int) core.Op) {
	ins = func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	rem = func(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }
	look = func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	return
}

func TestSetPerfectHIExhaustive(t *testing.T) {
	h := registers.NewSet(2, 2)
	c := canonOrFatal(t, h, 3, 200)
	if d := c.MaxCanonDistance(); d > 1 {
		t.Errorf("adjacent canonical representations at distance %d; perfect HI needs <= 1 (Proposition 6)", d)
	}
	ins, rem, look := setOps(2)
	scripts := [][][]core.Op{
		{{ins(1), rem(1)}, {ins(1), look(1)}},
		{{ins(2), ins(1)}, {rem(2), look(2)}},
		{{rem(1), ins(2)}, {look(1), ins(2)}},
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.Perfect, 10, 200000, true); err != nil {
		t.Fatal(err)
	}
}

func TestSetPerfectHIFuzz(t *testing.T) {
	h := registers.NewSet(3, 3)
	c := canonOrFatal(t, h, 3, 200)
	ins, rem, look := setOps(3)
	scripts := [][][]core.Op{
		{
			{ins(1), ins(2), rem(1), look(2)},
			{ins(3), rem(2), look(1)},
			{rem(3), ins(1), look(3)},
		},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Perfect, 500, 53, 200, true); err != nil {
		t.Fatal(err)
	}
}

// --- Queue with Peek from binary registers (extension, Section 5.4 target) ---

func enq(v int) core.Op { return core.Op{Name: spec.OpEnq, Arg: v} }

var (
	deq  = core.Op{Name: spec.OpDeq}
	peek = core.Op{Name: spec.OpPeek}
)

func TestHIQueueSequentialCanonical(t *testing.T) {
	h := registers.NewHIQueue(2, 2)
	c := canonOrFatal(t, h, 4, 800)
	// All 7 queue states should be reachable and have canonical forms.
	if len(c.ByState) != 7 {
		t.Errorf("canonical map covers %d states, want 7", len(c.ByState))
	}
	// Canonical form of state "2,1": c0_2=1, c1_1=1, nonempty=1.
	mem, ok := c.ByState["2,1"]
	if !ok {
		t.Fatal("state 2,1 not covered")
	}
	if fp := sim.Fingerprint(mem); strings.Count(fp, "1") != 3 {
		t.Errorf("can(2,1) = %s", fp)
	}
}

func TestHIQueueStateQuiescentHIExhaustive(t *testing.T) {
	h := registers.NewHIQueue(2, 2)
	c := canonOrFatal(t, h, 4, 800)
	scripts := [][][]core.Op{
		{{enq(1), deq}, {peek}},
		{{enq(2), enq(1)}, {peek}},
		{{enq(1), enq(2), deq}, {peek}},
	}
	if _, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, 13, 900000, true); err != nil {
		t.Fatal(err)
	}
}

func TestHIQueueFuzz(t *testing.T) {
	h := registers.NewHIQueue(3, 3)
	c := canonOrFatal(t, h, 4, 1200)
	scripts := [][][]core.Op{
		{{enq(1), enq(2), deq, enq(3), deq}, {peek, peek, peek}},
		{{enq(2), deq, deq, enq(1)}, {peek, peek}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 400, 61, 400, true); err != nil {
		t.Fatal(err)
	}
}
