package registers

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// NewAlg1MultiReader returns Vidyasankar's register with multiple readers —
// the setting the original algorithm [46] was designed for (the paper
// specializes it to a single reader). Process 0 is the writer; processes
// 1..readers are readers. Like the single-reader version it is wait-free
// and linearizable but not history independent.
func NewAlg1MultiReader(k, v0, readers int) *harness.Harness {
	if readers < 1 {
		panic(fmt.Sprintf("registers: need at least one reader, got %d", readers))
	}
	s := spec.NewRegister(k, v0)
	procOps := make([][]core.Op, readers+1)
	procOps[0] = writerOps(k)
	for i := 1; i <= readers; i++ {
		procOps[i] = readerOps()
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("alg1mr[K=%d,r=%d]", k, readers),
		Spec:    s,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem, a := regMem(k, v0)
			progs := make([]sim.Program, readers+1)
			progs[0] = func(p *sim.Proc) {
				for op, ok := srcs[0].Next(p); ok; op, ok = srcs[0].Next(p) {
					v := checkWrite(op, k)
					p.Invoke(op, true)
					p.Write(a[v-1], 1)
					clearDown(p, a, v)
					p.Return(0)
				}
			}
			for i := 1; i <= readers; i++ {
				src := srcs[i]
				progs[i] = func(p *sim.Proc) {
					for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
						checkRead(op)
						p.Invoke(op, false)
						j := 1
						for p.ReadInt(a[j-1]) == 0 {
							j++
							if j > k {
								panic("registers: alg1mr reader scanned past A[K]")
							}
						}
						val := j
						for j2 := val - 1; j2 >= 1; j2-- {
							if p.ReadInt(a[j2-1]) == 1 {
								val = j2
							}
						}
						p.Return(val)
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}
