package workload_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

func TestDeterminism(t *testing.T) {
	a := workload.NewGen(7).CounterMix(100, 0.3)
	b := workload.NewGen(7).CounterMix(100, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
}

func TestCounterMixComposition(t *testing.T) {
	ops := workload.NewGen(1).CounterMix(10000, 0.5)
	reads := 0
	for _, op := range ops {
		switch op.Name {
		case spec.OpRead:
			reads++
		case spec.OpInc, spec.OpDec:
		default:
			t.Fatalf("unexpected op %v", op)
		}
	}
	if frac := float64(reads) / float64(len(ops)); frac < 0.45 || frac > 0.55 {
		t.Errorf("read fraction = %.3f, want ~0.5", frac)
	}
}

func TestQueueMixDomain(t *testing.T) {
	f := func(seed int64) bool {
		ops := workload.NewGen(seed).QueueMix(200, 0.2, 5)
		for _, op := range ops {
			switch op.Name {
			case spec.OpEnq:
				if op.Arg < 1 || op.Arg > 5 {
					return false
				}
			case spec.OpDeq, spec.OpPeek:
				if op.Arg != 0 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegisterWritesDomain(t *testing.T) {
	f := func(seed int64) bool {
		for _, op := range workload.NewGen(seed).RegisterWrites(100, 7) {
			if op.Name != spec.OpWrite || op.Arg < 1 || op.Arg > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetZipfDomain(t *testing.T) {
	f := func(seed int64) bool {
		for _, op := range workload.NewGen(seed).SetZipf(100, 16, 1.2, 0.3) {
			if op.Arg < 1 || op.Arg > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	ops := workload.NewGen(3).CounterMix(10, 0)
	parts := workload.Split(ops, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Fatalf("split lost operations: %d", total)
	}
	if len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Fatalf("unbalanced split: %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
}
