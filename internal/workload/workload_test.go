package workload_test

import (
	"reflect"
	"testing"
	"testing/quick"

	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

func TestDeterminism(t *testing.T) {
	a := workload.NewGen(7).CounterMix(100, 0.3)
	b := workload.NewGen(7).CounterMix(100, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different workloads")
	}
}

func TestCounterMixComposition(t *testing.T) {
	ops := workload.NewGen(1).CounterMix(10000, 0.5)
	reads := 0
	for _, op := range ops {
		switch op.Name {
		case spec.OpRead:
			reads++
		case spec.OpInc, spec.OpDec:
		default:
			t.Fatalf("unexpected op %v", op)
		}
	}
	if frac := float64(reads) / float64(len(ops)); frac < 0.45 || frac > 0.55 {
		t.Errorf("read fraction = %.3f, want ~0.5", frac)
	}
}

func TestQueueMixDomain(t *testing.T) {
	f := func(seed int64) bool {
		ops := workload.NewGen(seed).QueueMix(200, 0.2, 5)
		for _, op := range ops {
			switch op.Name {
			case spec.OpEnq:
				if op.Arg < 1 || op.Arg > 5 {
					return false
				}
			case spec.OpDeq, spec.OpPeek:
				if op.Arg != 0 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegisterWritesDomain(t *testing.T) {
	f := func(seed int64) bool {
		for _, op := range workload.NewGen(seed).RegisterWrites(100, 7) {
			if op.Name != spec.OpWrite || op.Arg < 1 || op.Arg > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSetZipfDomain(t *testing.T) {
	f := func(seed int64) bool {
		for _, op := range workload.NewGen(seed).SetZipf(100, 16, 1.2, 0.3) {
			if op.Arg < 1 || op.Arg > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapZipfDeterminism(t *testing.T) {
	a := workload.NewGen(11).MapZipf(200, 32, 1.3, 0.2)
	b := workload.NewGen(11).MapZipf(200, 32, 1.3, 0.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different MapZipf workloads")
	}
	c := workload.NewGen(12).MapZipf(200, 32, 1.3, 0.2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical MapZipf workloads")
	}
}

func TestMapZipfComposition(t *testing.T) {
	const n, keys, readFrac = 20000, 32, 0.3
	ops := workload.NewGen(5).MapZipf(n, keys, 1.2, readFrac)
	reads, incs, decs := 0, 0, 0
	hits := make([]int, keys+1)
	for _, op := range ops {
		if op.Arg < 1 || op.Arg > keys {
			t.Fatalf("key %d out of range 1..%d", op.Arg, keys)
		}
		hits[op.Arg]++
		switch op.Name {
		case spec.OpRead:
			reads++
		case spec.OpInc:
			incs++
		case spec.OpDec:
			decs++
		default:
			t.Fatalf("unexpected op %v", op)
		}
	}
	if frac := float64(reads) / float64(n); frac < readFrac-0.05 || frac > readFrac+0.05 {
		t.Errorf("read fraction = %.3f, want ~%.1f", frac, readFrac)
	}
	if ratio := float64(incs) / float64(decs); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("inc/dec ratio = %.3f, want ~1", ratio)
	}
	// Zipf skew: key 1 must be the hottest, and strictly hotter than the
	// median key.
	for k := 2; k <= keys; k++ {
		if hits[k] > hits[1] {
			t.Fatalf("key %d (%d hits) hotter than key 1 (%d hits)", k, hits[k], hits[1])
		}
	}
	if hits[1] <= hits[keys/2] {
		t.Errorf("no skew: key 1 has %d hits, key %d has %d", hits[1], keys/2, hits[keys/2])
	}
}

func TestZipfKeyRangeAndDeterminism(t *testing.T) {
	a, b := workload.NewGen(9), workload.NewGen(9)
	for i := 0; i < 500; i++ {
		ka, kb := a.ZipfKey(16, 1.5), b.ZipfKey(16, 1.5)
		if ka != kb {
			t.Fatal("same seed produced different ZipfKey streams")
		}
		if ka < 1 || ka > 16 {
			t.Fatalf("ZipfKey = %d out of range 1..16", ka)
		}
	}
}

func TestSplit(t *testing.T) {
	ops := workload.NewGen(3).CounterMix(10, 0)
	parts := workload.Split(ops, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Fatalf("split lost operations: %d", total)
	}
	if len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Fatalf("unbalanced split: %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
}
