// Package workload generates seeded operation sequences for the benchmark
// harness: operation mixes over counters, queues, registers and sets, with
// uniform or Zipf-distributed arguments.
package workload

import (
	"math/rand"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Gen is a deterministic workload generator.
type Gen struct {
	rng *rand.Rand
	// zipf caches the last ZipfKey generator so per-key callers do not pay
	// the Zipf initialization on every draw.
	zipf     *rand.Zipf
	zipfKeys int
	zipfS    float64
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// CounterMix returns n operations: readFrac of reads, the rest split evenly
// between inc and dec.
func (g *Gen) CounterMix(n int, readFrac float64) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		switch {
		case g.rng.Float64() < readFrac:
			ops[i] = core.Op{Name: spec.OpRead}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpInc}
		default:
			ops[i] = core.Op{Name: spec.OpDec}
		}
	}
	return ops
}

// QueueMix returns n operations: peekFrac of peeks, the rest split evenly
// between enqueues (uniform elements of 1..domain) and dequeues.
func (g *Gen) QueueMix(n int, peekFrac float64, domain int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		switch {
		case g.rng.Float64() < peekFrac:
			ops[i] = core.Op{Name: spec.OpPeek}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpEnq, Arg: g.rng.Intn(domain) + 1}
		default:
			ops[i] = core.Op{Name: spec.OpDeq}
		}
	}
	return ops
}

// RegisterWrites returns n uniform writes over 1..k.
func (g *Gen) RegisterWrites(n, k int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		ops[i] = core.Op{Name: spec.OpWrite, Arg: g.rng.Intn(k) + 1}
	}
	return ops
}

// SetZipf returns n set operations over elements 1..domain drawn from a
// Zipf distribution with exponent s > 1; lookupFrac of the operations are
// lookups, the rest split evenly between inserts and removes.
func (g *Gen) SetZipf(n, domain int, s, lookupFrac float64) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		v := g.ZipfKey(domain, s)
		switch {
		case g.rng.Float64() < lookupFrac:
			ops[i] = core.Op{Name: spec.OpLookup, Arg: v}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpInsert, Arg: v}
		default:
			ops[i] = core.Op{Name: spec.OpRemove, Arg: v}
		}
	}
	return ops
}

// ZipfKey draws one key from {1..keys} under a Zipf distribution with
// exponent s > 1 (small keys are hot). The generator is cached across calls
// with the same (keys, s).
func (g *Gen) ZipfKey(keys int, s float64) int {
	if g.zipf == nil || g.zipfKeys != keys || g.zipfS != s {
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(keys-1))
		g.zipfKeys, g.zipfS = keys, s
	}
	return int(g.zipf.Uint64()) + 1
}

// MapZipf returns n multi-counter operations over keys {1..keys} drawn from
// a Zipf distribution with exponent s > 1: readFrac of reads, the rest
// split evenly between per-key increments and decrements. It is the
// skewed-contention workload of the E20 shard-scaling experiments — with
// s close to 1 the keys spread across shards; raising s concentrates the
// load on the shard owning the hottest key.
func (g *Gen) MapZipf(n, keys int, s, readFrac float64) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		k := g.ZipfKey(keys, s)
		switch {
		case g.rng.Float64() < readFrac:
			ops[i] = core.Op{Name: spec.OpRead, Arg: k}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpInc, Arg: k}
		default:
			ops[i] = core.Op{Name: spec.OpDec, Arg: k}
		}
	}
	return ops
}

// Split deals ops round-robin to n processes.
func Split(ops []core.Op, n int) [][]core.Op {
	out := make([][]core.Op, n)
	for i, op := range ops {
		out[i%n] = append(out[i%n], op)
	}
	return out
}
