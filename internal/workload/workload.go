// Package workload generates seeded operation sequences for the benchmark
// harness: operation mixes over counters, queues, registers and sets, with
// uniform or Zipf-distributed arguments.
package workload

import (
	"math/rand"

	"hiconc/internal/core"
	"hiconc/internal/spec"
)

// Gen is a deterministic workload generator.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// CounterMix returns n operations: readFrac of reads, the rest split evenly
// between inc and dec.
func (g *Gen) CounterMix(n int, readFrac float64) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		switch {
		case g.rng.Float64() < readFrac:
			ops[i] = core.Op{Name: spec.OpRead}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpInc}
		default:
			ops[i] = core.Op{Name: spec.OpDec}
		}
	}
	return ops
}

// QueueMix returns n operations: peekFrac of peeks, the rest split evenly
// between enqueues (uniform elements of 1..domain) and dequeues.
func (g *Gen) QueueMix(n int, peekFrac float64, domain int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		switch {
		case g.rng.Float64() < peekFrac:
			ops[i] = core.Op{Name: spec.OpPeek}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpEnq, Arg: g.rng.Intn(domain) + 1}
		default:
			ops[i] = core.Op{Name: spec.OpDeq}
		}
	}
	return ops
}

// RegisterWrites returns n uniform writes over 1..k.
func (g *Gen) RegisterWrites(n, k int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		ops[i] = core.Op{Name: spec.OpWrite, Arg: g.rng.Intn(k) + 1}
	}
	return ops
}

// SetZipf returns n set operations over elements 1..domain drawn from a
// Zipf distribution with exponent s >= 1; lookupFrac of the operations are
// lookups, the rest split evenly between inserts and removes.
func (g *Gen) SetZipf(n, domain int, s, lookupFrac float64) []core.Op {
	z := rand.NewZipf(g.rng, s, 1, uint64(domain-1))
	ops := make([]core.Op, n)
	for i := range ops {
		v := int(z.Uint64()) + 1
		switch {
		case g.rng.Float64() < lookupFrac:
			ops[i] = core.Op{Name: spec.OpLookup, Arg: v}
		case g.rng.Intn(2) == 0:
			ops[i] = core.Op{Name: spec.OpInsert, Arg: v}
		default:
			ops[i] = core.Op{Name: spec.OpRemove, Arg: v}
		}
	}
	return ops
}

// Split deals ops round-robin to n processes.
func Split(ops []core.Op, n int) [][]core.Op {
	out := make([][]core.Op, n)
	for i, op := range ops {
		out[i%n] = append(out[i%n], op)
	}
	return out
}
