package faultinject_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
)

// The four protocol bugs the checkers caught in PR 4, replayed as crash
// schedules: each test reaches the adversarial window through real
// operations and an injected Kill/Park at a labeled steppoint, instead
// of crafting group words directly (whitebox_test.go still pins the raw
// states; these pin the executions that produce them).

// groupKeys returns the n smallest keys of {1..domain} homing at group g
// under the shared mixer, in ascending order.
func groupKeys(t *testing.T, domain, G, g, n int) []int {
	t.Helper()
	var ks []int
	for k := 1; k <= domain && len(ks) < n; k++ {
		if hihash.GroupOf(k, G) == g {
			ks = append(ks, k)
		}
	}
	if len(ks) < n {
		t.Fatalf("only %d keys home at group %d of %d (need %d)", len(ks), g, G, n)
	}
	sort.Ints(ks)
	return ks
}

// kill runs fn on its own goroutine under a Kill plan and waits for it
// to finish or die, failing the test if the plan never fired.
func kill(t *testing.T, point hihash.Steppoint, occurrence int, fn func()) {
	t.Helper()
	in := faultinject.Install(faultinject.Plan{Point: point, Occurrence: occurrence, Action: faultinject.Kill})
	defer in.Uninstall()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	wg.Wait()
	if !in.DidFire() {
		t.Fatalf("%s#%d never fired (%d hits); the script does not reach the window", point, occurrence, in.Hits())
	}
}

// TestCrashBugReplays drives each pinned bug's schedule.
func TestCrashBugReplays(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(t *testing.T)
	}{
		{"stranded-displacement", replayStrandedDisplacement},
		{"drain-resurrection", replayDrainResurrection},
		{"runaway-growth", replayRunawayGrowth},
		{"parked-mark-self-help", replayParkedMarkSelfHelp},
	} {
		t.Run(tc.name, tc.run)
	}
}

// replayStrandedDisplacement: an insert dies right after its displaced
// key lands (SpDestWritten), before the post-placement reachability
// validation. A remove then frees a slot earlier in the key's probe run;
// without the backward shift the key would sit stranded beyond a hole
// where scans stop — PR 4's first checker catch.
func replayStrandedDisplacement(t *testing.T) {
	ks := groupKeys(t, displaceDomain, displaceGroups, 0, hihash.SlotsPerGroup+1)
	s := hihash.NewDisplaceSet(displaceDomain, displaceGroups)
	// The first four inserts each claim an empty slot (one SpDestWritten
	// apiece); the fifth overflows the home group and lands displaced —
	// the fifth firing is the unvalidated placement.
	kill(t, hihash.SpDestWritten, len(ks), func() {
		for _, k := range ks {
			s.Insert(k)
		}
	})
	displacedKey := ks[len(ks)-1]
	if !s.Contains(displacedKey) {
		t.Fatalf("Contains(%d) = false right after the crash; the displaced copy must already be live", displacedKey)
	}
	// The hole opens before the displaced key; the remover's backward
	// shift must pull it back into reach.
	s.Remove(ks[0])
	if !s.Contains(displacedKey) {
		t.Fatalf("Contains(%d) = false after a hole opened before it: stranded displacement", displacedKey)
	}
	want := ks[1:]
	if d := faultinject.CanonicalDistance(s, want); d != 0 {
		t.Fatalf("post-recovery image at distance %d from canonical layout of %v", d, want)
	}
}

// replayDrainResurrection: a grow dies right after copying a key into
// the new array (SpDrainCopied) and before dropping the old copy, so the
// key is physically resident twice. A remove must chase both copies —
// deleting just one resurrects the key, PR 4's drain bug.
func replayDrainResurrection(t *testing.T) {
	ks := groupKeys(t, displaceDomain, displaceGroups, 0, 3)
	s := hihash.NewDisplaceSet(displaceDomain, displaceGroups)
	for _, k := range ks {
		s.Insert(k)
	}
	kill(t, hihash.SpDrainCopied, 1, func() { s.Grow() })
	// Mid-crash the image spans both arrays: no single-geometry layout
	// compares, but every key must still be findable.
	if d := faultinject.CanonicalDistance(s, ks); d != -1 {
		t.Fatalf("mid-drain image unexpectedly comparable (distance %d)", d)
	}
	for _, k := range ks {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false mid-drain", k)
		}
	}
	// The drain copies the home group's smallest key first; that is the
	// doubled one. Removing it must kill both copies.
	doubled := ks[0]
	s.Remove(doubled)
	if s.Contains(doubled) {
		t.Fatalf("Contains(%d) = true after Remove: the old-array copy resurrected it", doubled)
	}
	want := ks[1:]
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after recovery", k)
		}
	}
	s.Grow()
	if got, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(displaceDomain, s.NumGroups(), want); got != canon {
		t.Fatalf("memory not canonical after recovery:\n got:  %s\n want: %s", got, canon)
	}
}

// replayRunawayGrowth: a grow dies the instant the doubled array is
// published (SpGrowPublished), leaving the migration entirely to the
// survivors; an insert storm with repeated grows must still respect the
// capacity ceiling — PR 4's unbounded doubling bug.
func replayRunawayGrowth(t *testing.T) {
	ks := groupKeys(t, displaceDomain, displaceGroups, 0, hihash.SlotsPerGroup+1)
	s := hihash.NewDisplaceSet(displaceDomain, displaceGroups)
	kill(t, hihash.SpGrowPublished, 1, func() {
		for _, k := range ks {
			s.Insert(k)
		}
		s.Grow()
	})
	ceiling := (maxGroupsFactor*displaceDomain + hihash.SlotsPerGroup - 1) / hihash.SlotsPerGroup
	var all []int
	for rep := 0; rep < 3; rep++ {
		for k := 1; k <= displaceDomain; k++ {
			s.Insert(k)
		}
		s.Grow()
		if g := s.NumGroups(); g > ceiling {
			t.Fatalf("runaway growth: %d groups > ceiling %d", g, ceiling)
		}
	}
	for k := 1; k <= displaceDomain; k++ {
		all = append(all, k)
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after the storm", k)
		}
	}
	if got, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(displaceDomain, s.NumGroups(), all); got != canon {
		t.Fatalf("memory not canonical after the storm:\n got:  %s\n want: %s", got, canon)
	}
}

// maxGroupsFactor mirrors the unexported resize ceiling (resize.go); the
// replay fails loudly if the two drift.
const maxGroupsFactor = 4

// replayParkedMarkSelfHelp: an eviction parks right after planting its
// mark (SpMarkSet); a remove frees a slot and a larger key claims it, so
// the marked key is no longer its group's maximum. An insert that
// outranks the group must cancel the obsolete relocation in place —
// naively helping it recursed forever (stack overflow), PR 4's self-help
// bug. The parked eviction then resumes and must finish cleanly.
func replayParkedMarkSelfHelp(t *testing.T) {
	const domain, G = 2000, 4
	ks := groupKeys(t, domain, G, 0, 6)
	k0, k1, k2, k3, k4, k5 := ks[0], ks[1], ks[2], ks[3], ks[4], ks[5]
	s := hihash.NewDisplaceSet(domain, G)
	for _, k := range []int{k1, k2, k3, k4} {
		s.Insert(k)
	}
	// Insert(k0) outranks the full group: it marks the maximum k4 and —
	// parked there — leaves the mark dangling.
	in := faultinject.Install(faultinject.Plan{Point: hihash.SpMarkSet, Occurrence: 1, Action: faultinject.Park})
	defer in.Uninstall()
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		s.Insert(k0)
	}()
	select {
	case <-in.Fired():
	case <-time.After(20 * time.Second):
		t.Fatal("eviction mark never planted")
	}
	// A remove frees a slot, a larger key claims it: the parked mark is
	// now outranked.
	s.Remove(k1)
	s.Insert(k5)
	// The regression: this insert helps the parked relocation from its
	// own completion path; it must cancel in place, not recurse.
	helperDone := make(chan struct{})
	go func() {
		defer close(helperDone)
		s.Insert(k1)
	}()
	select {
	case <-helperDone:
	case <-time.After(20 * time.Second):
		t.Fatal("Insert wedged helping a parked, outranked mark")
	}
	in.Release()
	select {
	case <-victimDone:
	case <-time.After(20 * time.Second):
		t.Fatal("parked eviction never finished after release")
	}
	want := []int{k0, k1, k2, k3, k4, k5}
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after the schedule", k)
		}
	}
	s.Grow()
	if got, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), want); got != canon {
		t.Fatalf("memory not canonical after recovery:\n got:  %s\n want: %s", got, canon)
	}
}
