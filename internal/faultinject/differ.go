package faultinject

import "hiconc/internal/hihash"

// The raw-dump differ: measures how far a memory image is from the
// canonical layout, in whole CAS words — the distance of Proposition 6.
// Two quiescent twins of the same abstract set must measure 0; a crashed
// image measures the width of the protocol window the crash exposed.

// WordDistance returns the number of differing words between two images
// of equal length, or -1 when the lengths differ (incomparable
// geometries — e.g. one table grew and the other did not).
func WordDistance(a, b []uint64) int {
	if len(a) != len(b) {
		return -1
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// CanonicalDistance returns the word distance between the set's raw
// memory image and the canonical displaced layout of elems at the set's
// current geometry. It returns -1 while a resize is mid-drain (the
// image spans two arrays; no single-geometry canonical layout applies).
func CanonicalDistance(s *hihash.Set, elems []int) int {
	words := s.RawWords()
	g := s.NumGroups()
	if len(words) != g {
		return -1
	}
	return WordDistance(words, hihash.CanonicalWords(s.Domain(), g, elems))
}

// MinCanonicalDistance returns the smallest CanonicalDistance to any of
// the candidate abstract states — the right measure at a crash point,
// where the interrupted operation may or may not have taken effect yet.
// It returns -1 if no candidate is comparable.
func MinCanonicalDistance(s *hihash.Set, candidates [][]int) int {
	best := -1
	for _, elems := range candidates {
		d := CanonicalDistance(s, elems)
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}
