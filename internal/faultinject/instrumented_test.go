package faultinject_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/histats"
)

// TestInstrumentedDumpsIdentical extends the twin checks to the
// observability layer: with a histats recorder installed, a steppoint
// hook observing every protocol step AND the hirec flight recorder
// capturing events, the tables' raw memory must stay bit-identical to
// fully uninstrumented runs. Metrics, hooks and recordings observe the
// execution — which is history — so any influence on the representation
// would be an HI leak through the instrumentation itself.
func TestInstrumentedDumpsIdentical(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 20
	}
	r := histats.NewRecorder()
	flight := hirec.NewRecorder(1 << 12)
	var hookCalls int
	hook := func(hihash.Steppoint) { hookCalls++ }
	instrument := func(on bool) {
		if on {
			histats.EnableWith(r)
			hirec.EnableWith(flight)
			hihash.SetStepHook(hook)
		} else {
			histats.Disable()
			hirec.Disable()
			hihash.SetStepHook(nil)
		}
	}
	defer instrument(false)

	mk := func() *hihash.Set { return hihash.NewDisplaceSet(displaceDomain, displaceGroups) }
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := targetSet(rng, displaceDomain, 6)

		// Same history, instrumented vs bare: bit-identical words.
		instrument(true)
		a := mk()
		buildSet(t, a, displaceDomain, target, int64(5000+trial))
		instrument(false)
		bare := mk()
		buildSet(t, bare, displaceDomain, target, int64(5000+trial))
		wa, wb := a.RawWords(), bare.RawWords()
		if len(wa) != len(wb) {
			t.Fatalf("trial %d: instrumented table has %d words, bare %d", trial, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("trial %d: state %v: instrumentation changed word %d: %#x != %#x",
					trial, target, i, wa[i], wb[i])
			}
		}

		// Different histories, both instrumented: the usual twin check
		// still holds with the observers running.
		instrument(true)
		c := mk()
		buildSet(t, c, displaceDomain, target, int64(6000+trial))
		instrument(false)
		if da, dc := a.RawDump(), c.RawDump(); !bytes.Equal(da, dc) {
			t.Fatalf("trial %d: same state %v, different instrumented dumps:\n a: %x\n c: %x", trial, target, da, dc)
		}
	}
	if hookCalls == 0 {
		t.Fatal("the steppoint hook never fired; the workload exercised no protocol steps")
	}
	if r.Snapshot().Total() == 0 {
		t.Fatal("the recorder counted nothing; the metrics sites never fired")
	}
	if rec := flight.Snapshot(); len(rec.Events)+int(rec.Dropped) == 0 {
		t.Fatal("the flight recorder captured nothing; the step sites never fired")
	}
}
