package faultinject_test

import (
	"strconv"
	"sync"
	"testing"

	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
)

// The native crash matrix: for every steppoint and every occurrence of
// it that a fixed workload reaches, kill the worker goroutine right
// after that protocol CAS, photograph raw memory, and then let fresh
// operations recover. Two properties are checked at every cell:
//
//  1. Exposure: at crash points where the geometry is stable (not
//     mid-drain), the raw image is within 5 words of the canonical
//     layout of SOME abstract state the workload could have been in —
//     the observed counterpart of the distance bound measured in E21.
//  2. Recovery: after the survivors re-settle membership and force a
//     grow (whose drain supersedes parked marks and drops stale
//     flags), memory must be exactly the canonical layout again.
//
// The distance ceiling asserted here feeds the E23 report in hiverify.
const maxCrashDistance = 5

// crashOp is one step of the victim's script together with the abstract
// set it leaves behind.
type crashOp struct {
	do    func(s *hihash.Set)
	after []int
}

// displaceCrashScript builds the victim workload: fill group 0 past its
// slot budget (forcing eviction into group 1), churn one key (forcing a
// flagged remove and a backward-shift pull), then grow (forcing a
// drain). heavy is the overloaded key set the script converges to.
func displaceCrashScript(t *testing.T) (ops []crashOp, heavy []int) {
	t.Helper()
	for k := 1; k <= displaceDomain; k++ {
		if hihash.GroupOf(k, displaceGroups) == 0 {
			heavy = append(heavy, k)
		}
	}
	if len(heavy) <= hihash.SlotsPerGroup {
		t.Fatalf("group 0 homes only %d keys; need > %d to force displacement", len(heavy), hihash.SlotsPerGroup)
	}
	heavy = heavy[:hihash.SlotsPerGroup+1]
	cum := func(n int) []int { return append([]int(nil), heavy[:n]...) }
	for i := range heavy {
		k := heavy[i]
		ops = append(ops, crashOp{func(s *hihash.Set) { s.Insert(k) }, cum(i + 1)})
	}
	churn := heavy[2]
	without := make([]int, 0, len(heavy)-1)
	for _, k := range heavy {
		if k != churn {
			without = append(without, k)
		}
	}
	ops = append(ops,
		crashOp{func(s *hihash.Set) { s.Remove(churn) }, without},
		crashOp{func(s *hihash.Set) { s.Insert(churn) }, cum(len(heavy))},
		crashOp{func(s *hihash.Set) { s.Grow() }, cum(len(heavy))},
	)
	return ops, heavy
}

// runVictim executes the script on its own goroutine so a Kill plan can
// terminate it mid-script, and waits for it to finish or die.
func runVictim(s *hihash.Set, ops []crashOp) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, op := range ops {
			op.do(s)
		}
	}()
	wg.Wait()
}

// recoverAndCheck re-settles the target membership, forces a grow — the
// recovery operation whose drain certainly rebuilds every group — and
// requires the result to be byte-for-byte canonical.
func recoverAndCheck(t *testing.T, s *hihash.Set, target []int, cell string) {
	t.Helper()
	for _, k := range target {
		s.Insert(k)
	}
	s.Grow()
	want := hihash.CanonicalSetSnapshot(displaceDomain, s.NumGroups(), target)
	if got := s.Snapshot(); got != want {
		t.Fatalf("%s: recovery left non-canonical memory\n got: %s\nwant: %s", cell, got, want)
	}
	for k := 1; k <= displaceDomain; k++ {
		if s.Contains(k) != inSet(target, k) {
			t.Fatalf("%s: recovery broke membership of key %d", cell, k)
		}
	}
	if d := faultinject.CanonicalDistance(s, target); d != 0 {
		t.Fatalf("%s: recovered image at distance %d from canonical", cell, d)
	}
}

// TestCrashMatrixDisplace sweeps Kill plans over every (steppoint,
// occurrence) cell the displacing workload reaches.
func TestCrashMatrixDisplace(t *testing.T) {
	ops, heavy := displaceCrashScript(t)
	candidates := make([][]int, 0, len(ops)+1)
	candidates = append(candidates, nil)
	for _, op := range ops {
		candidates = append(candidates, op.after)
	}
	const maxOccurrences = 128
	maxDist, cells, incomparable := 0, 0, 0
	for sp := hihash.Steppoint(0); sp < hihash.NumSteppoints; sp++ {
		for occ := 1; occ <= maxOccurrences; occ++ {
			s := hihash.NewDisplaceSet(displaceDomain, displaceGroups)
			in := faultinject.Install(faultinject.Plan{Point: sp, Occurrence: occ, Action: faultinject.Kill})
			runVictim(s, ops)
			in.Uninstall()
			if !in.DidFire() {
				// The workload fires sp fewer than occ times; the matrix
				// row is exhausted.
				break
			}
			cells++
			cell := sp.String() + "#" + strconv.Itoa(occ)
			if d := faultinject.MinCanonicalDistance(s, candidates); d < 0 {
				incomparable++ // mid-drain image spans two arrays
			} else if d > maxCrashDistance {
				t.Errorf("%s: crash image at distance %d > %d from every reachable canonical layout", cell, d, maxCrashDistance)
			} else if d > maxDist {
				maxDist = d
			}
			recoverAndCheck(t, s, heavy, cell)
		}
	}
	t.Logf("crash matrix: %d cells, %d mid-drain (incomparable), max stable-geometry distance %d", cells, incomparable, maxDist)
	if cells < int(hihash.NumSteppoints) {
		t.Fatalf("only %d crash cells reached; the workload misses whole steppoints", cells)
	}
}

// TestCrashMatrixBounded kills the bounded table's single-CAS updates at
// every occurrence. Each update is one atomic word swap, so every crash
// image must be EXACTLY canonical for some prefix state (perfect HI has
// no window at all — Proposition 6 with distance 0 at the crash point).
func TestCrashMatrixBounded(t *testing.T) {
	keys := []int{1, 2, 3, 5, 7, 11, 13}
	var ops []crashOp
	var live []int
	for _, k := range keys {
		k := k
		live = append(live, k)
		ops = append(ops, crashOp{func(s *hihash.Set) { s.Insert(k) }, append([]int(nil), live...)})
	}
	for _, k := range []int{2, 7} {
		k := k
		next := make([]int, 0, len(live))
		for _, x := range live {
			if x != k {
				next = append(next, x)
			}
		}
		live = next
		ops = append(ops, crashOp{func(s *hihash.Set) { s.Remove(k) }, append([]int(nil), live...)})
	}
	candidates := make([][]int, 0, len(ops)+1)
	candidates = append(candidates, nil)
	for _, op := range ops {
		candidates = append(candidates, op.after)
	}
	for occ := 1; ; occ++ {
		s := hihash.NewSet(boundedDomain, boundedGroups)
		in := faultinject.Install(faultinject.Plan{Point: hihash.SpBoundedUpdate, Occurrence: occ, Action: faultinject.Kill})
		runVictim(s, ops)
		in.Uninstall()
		if !in.DidFire() {
			if occ <= len(ops) {
				t.Fatalf("bounded update #%d never fired; expected one per update", occ)
			}
			break
		}
		if d := faultinject.MinCanonicalDistance(s, candidates); d != 0 {
			t.Fatalf("bounded crash after update #%d: distance %d, want 0 (perfect HI leaves no window)", occ, d)
		}
	}
}
