package faultinject_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
)

// Dump-indistinguishability twins: two tables driven to the same
// abstract state by different histories must be indistinguishable to an
// adversary reading raw memory. For the bounded (perfect-HI) table the
// dumps must be byte-identical at every trial; for the displacing table
// at quiescence; for the map over its reachable heap words.
//
// Geometries are chosen so the workload cannot change the geometry
// mid-history (which would be a capacity side channel, not an HI
// failure): boundedDomain/boundedGroups puts at most 3 possible keys in
// any home group, so with one decoy in flight no insert ever sees a full
// group; displaceDomain/displaceGroups overloads one group (5 possible
// keys, 4 slots) to force real displacement while 6 target keys + 1
// decoy stay below the 8-slot total that could trigger a grow.

const (
	boundedDomain, boundedGroups   = 16, 8
	displaceDomain, displaceGroups = 8, 2
	mapKeys, mapBuckets            = 24, 6
)

// targetSet draws a random subset of {1..domain}, capped at maxLen keys.
func targetSet(rng *rand.Rand, domain, maxLen int) []int {
	var out []int
	for k := 1; k <= domain; k++ {
		if rng.Intn(3) == 0 {
			out = append(out, k)
		}
	}
	for len(out) > maxLen {
		out = append(out[:rng.Intn(len(out))], out[rng.Intn(len(out))+1:]...)
	}
	return out
}

func shuffled(rng *rand.Rand, keys []int) []int {
	out := append([]int(nil), keys...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func inSet(keys []int, k int) bool {
	for _, x := range keys {
		if x == k {
			return true
		}
	}
	return false
}

// buildSet drives a fresh table to exactly the target key set through a
// seed-dependent history: random insertion order with non-target decoy
// churn around every insert, plus remove/re-insert churn of target keys.
func buildSet(t *testing.T, s *hihash.Set, domain int, target []int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, k := range shuffled(rng, target) {
		if len(target) < domain {
			decoy := rng.Intn(domain) + 1
			for inSet(target, decoy) {
				decoy = decoy%domain + 1
			}
			s.Insert(decoy)
			s.Insert(k)
			s.Remove(decoy)
		} else {
			s.Insert(k)
		}
		if rng.Intn(2) == 0 {
			s.Remove(k)
			s.Insert(k)
		}
	}
}

// TwinSetDumps builds two tables for the same target set via different
// histories and returns their raw dumps. Exported to the E23 driver
// (hiverify) through the test binary would be awkward; the driver has
// its own copy of this loop — this one is the package's unit evidence.
func twinSetDumps(t *testing.T, mk func() *hihash.Set, domain int, target []int, seedA, seedB int64) ([]byte, []byte) {
	t.Helper()
	a, b := mk(), mk()
	buildSet(t, a, domain, target, seedA)
	buildSet(t, b, domain, target, seedB)
	return a.RawDump(), b.RawDump()
}

// TestBoundedTwinDumpsIdentical: the perfect-HI bounded table must dump
// byte-identically for every pair of histories of the same set, and the
// dump must equal the canonical packed words.
func TestBoundedTwinDumpsIdentical(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := targetSet(rng, boundedDomain, boundedDomain)
		mk := func() *hihash.Set { return hihash.NewSet(boundedDomain, boundedGroups) }
		da, db := twinSetDumps(t, mk, boundedDomain, target, int64(1000+trial), int64(2000+trial))
		if !bytes.Equal(da, db) {
			t.Fatalf("trial %d: same state %v, different raw dumps:\n a: %x\n b: %x", trial, target, da, db)
		}
		s := mk()
		buildSet(t, s, boundedDomain, target, int64(3000+trial))
		if d := faultinject.CanonicalDistance(s, target); d != 0 {
			t.Fatalf("trial %d: state %v: raw words at distance %d from canonical", trial, target, d)
		}
	}
}

// TestDisplaceTwinDumpsIdentical: the displacing table's quiescent dumps
// must also be byte-identical and canonical — including for states that
// overflow a home group and force cross-group displacement.
func TestDisplaceTwinDumpsIdentical(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	// Keys homed at group 0 under the shared mixer; an overloaded target
	// containing all of them forces cross-group displacement (5 keys, 4
	// slots).
	var heavy []int
	for k := 1; k <= displaceDomain; k++ {
		if hihash.GroupOf(k, displaceGroups) == 0 {
			heavy = append(heavy, k)
		}
	}
	if len(heavy) <= hihash.SlotsPerGroup {
		t.Fatalf("group 0 homes only %d keys; need > %d to force displacement", len(heavy), hihash.SlotsPerGroup)
	}
	heavy = heavy[:hihash.SlotsPerGroup+1]
	displaced := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := targetSet(rng, displaceDomain, 6)
		if trial%3 == 0 {
			target = append([]int(nil), heavy...)
		}
		mk := func() *hihash.Set { return hihash.NewDisplaceSet(displaceDomain, displaceGroups) }
		da, db := twinSetDumps(t, mk, displaceDomain, target, int64(1000+trial), int64(2000+trial))
		if !bytes.Equal(da, db) {
			t.Fatalf("trial %d: same state %v, different raw dumps:\n a: %x\n b: %x", trial, target, da, db)
		}
		s := mk()
		buildSet(t, s, displaceDomain, target, int64(3000+trial))
		if g := s.NumGroups(); g != displaceGroups {
			t.Fatalf("trial %d: table grew to %d groups; the workload must not trigger growth", trial, g)
		}
		if d := faultinject.CanonicalDistance(s, target); d != 0 {
			t.Fatalf("trial %d: state %v: raw words at distance %d from canonical", trial, target, d)
		}
		layout := hihash.DisplacedGroups(hihash.Params{T: displaceDomain, G: displaceGroups, B: hihash.SlotsPerGroup}, target)
	scan:
		for g, keys := range layout {
			for _, k := range keys {
				if hihash.GroupOf(k, displaceGroups) != g {
					displaced++
					break scan
				}
			}
		}
	}
	if displaced == 0 {
		t.Fatal("no trial exercised displacement; geometry too roomy")
	}
}

// TestMapTwinDumpsIdentical: two maps driven to the same counts by
// different inc/dec orders must agree on every heap word their buckets
// reach.
func TestMapTwinDumpsIdentical(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		counts := map[int]int{}
		for k := 1; k <= mapKeys; k++ {
			if rng.Intn(3) == 0 {
				counts[k] = rng.Intn(4) + 1
			}
		}
		history := func(seed int64) *hihash.Map {
			hrng := rand.New(rand.NewSource(seed))
			m := hihash.NewMap(mapKeys, mapBuckets)
			var steps []func()
			for k, v := range counts {
				k := k
				for i := 0; i < v; i++ {
					steps = append(steps, func() { m.Inc(k) })
				}
			}
			for i := 0; i < mapKeys/2; i++ {
				k := hrng.Intn(mapKeys) + 1
				steps = append(steps, func() { m.Inc(k) })
				steps = append(steps, func() { m.Dec(k) })
			}
			hrng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
			for _, st := range steps {
				st()
			}
			return m
		}
		a, b := history(int64(3000+trial)), history(int64(4000+trial))
		da, db := a.RawDump(), b.RawDump()
		if !bytes.Equal(da, db) {
			t.Fatalf("trial %d: same counts %v, different heap dumps:\n a: %x\n b: %x", trial, counts, da, db)
		}
	}
}

// TestWordDistance pins the differ's edge cases.
func TestWordDistance(t *testing.T) {
	if d := faultinject.WordDistance([]uint64{1, 2, 3}, []uint64{1, 9, 3}); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
	if d := faultinject.WordDistance([]uint64{1}, []uint64{1, 2}); d != -1 {
		t.Fatalf("mismatched lengths: distance = %d, want -1", d)
	}
	if d := faultinject.WordDistance(nil, nil); d != 0 {
		t.Fatalf("empty: distance = %d, want 0", d)
	}
}
