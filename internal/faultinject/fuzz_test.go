package faultinject_test

import (
	"sync"
	"testing"

	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
)

// FuzzCrashSchedule fuzzes the crash matrix itself: an arbitrary
// operation script (one byte per op), an arbitrary steppoint and an
// arbitrary occurrence of it define a crash schedule. The victim runs
// the script and is killed at the planned protocol step; the recovery
// then settles every key to the script's final abstract state and forces
// a grow. Whatever the crash exposed, the settled table must agree with
// the pure model on membership and be byte-for-byte canonical — any
// wedge, stack overflow, resurrection or non-canonical residue is a
// finding.
func FuzzCrashSchedule(f *testing.F) {
	// Seeds: a displacing overflow, a remove-heavy churn, a grow mid
	// script, and a schedule deep enough to crash inside the drain.
	f.Add([]byte{0x01, 0x02, 0x04, 0x05, 0x06}, uint8(hihash.SpDestWritten), uint8(4))
	f.Add([]byte{0x01, 0x02, 0x11, 0x03, 0x12}, uint8(hihash.SpFlagPlaced), uint8(1))
	f.Add([]byte{0x01, 0x02, 0x03, 0x20, 0x04}, uint8(hihash.SpDrainCopied), uint8(2))
	f.Add([]byte{0x05, 0x06, 0x07, 0x20, 0x15, 0x01, 0x20}, uint8(hihash.SpGonePlaced), uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, spByte, occByte uint8) {
		if len(script) > 64 {
			script = script[:64]
		}
		sp := hihash.Steppoint(spByte) % hihash.NumSteppoints
		occ := int(occByte%16) + 1
		// Decode: low nibble picks the key, high nibble the verb
		// (0 insert, 1 remove, 2 grow).
		model := map[int]bool{}
		type op struct {
			verb int
			key  int
		}
		var ops []op
		for _, b := range script {
			o := op{verb: int(b>>4) % 3, key: int(b&0x0F)%displaceDomain + 1}
			ops = append(ops, o)
			switch o.verb {
			case 0:
				model[o.key] = true
			case 1:
				delete(model, o.key)
			}
		}
		s := hihash.NewDisplaceSet(displaceDomain, displaceGroups)
		in := faultinject.Install(faultinject.Plan{Point: sp, Occurrence: occ, Action: faultinject.Kill})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, o := range ops {
				switch o.verb {
				case 0:
					s.Insert(o.key)
				case 1:
					s.Remove(o.key)
				case 2:
					s.Grow()
				}
			}
		}()
		wg.Wait()
		in.Uninstall()
		// Recovery: settle every key to the script's final state, then
		// rebuild through a grow so no group escapes repair.
		var want []int
		for k := 1; k <= displaceDomain; k++ {
			if model[k] {
				want = append(want, k)
				s.Insert(k)
			} else {
				s.Remove(k)
			}
		}
		s.Grow()
		for k := 1; k <= displaceDomain; k++ {
			if s.Contains(k) != model[k] {
				t.Fatalf("crash %s#%d, script %x: key %d membership disagrees with model", sp, occ, script, k)
			}
		}
		if got, canon := s.Snapshot(), hihash.CanonicalSetSnapshot(displaceDomain, s.NumGroups(), want); got != canon {
			t.Fatalf("crash %s#%d, script %x: memory not canonical after recovery:\n got:  %s\n want: %s", sp, occ, script, got, canon)
		}
	})
}
