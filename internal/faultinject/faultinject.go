// Package faultinject makes the adversary of the history-independence
// definitions executable against the native HICHT tables: it
// deterministically kills or parks goroutines at the labeled steppoints
// of the displacement and resize protocols (hihash.SetStepHook), and
// diffs raw memory dumps against canonical layouts.
//
// A Plan names one protocol window — the Nth firing of one steppoint —
// and an Injector arms it over the global hook. Kill terminates the
// goroutine right there via runtime.Goexit, leaving shared memory
// exactly as a thread crash would: the step's CAS is visible, the rest
// of the protocol never ran. Park blocks the goroutine in the window
// instead, modeling an unboundedly slow thread. Tests then run fresh
// goroutines to completion and check, through the differ and through
// internal/hicheck, that the survivors repair the image back to the
// canonical layout (EXPERIMENTS.md E23).
//
// The steppoint hook is a single global; install at most one Injector at
// a time and do not run injecting tests in parallel.
package faultinject

import (
	"runtime"
	"sync/atomic"

	"hiconc/internal/hihash"
)

// Action says what happens to the goroutine that reaches the planned
// steppoint occurrence.
type Action int

const (
	// Kill terminates the goroutine at the steppoint via runtime.Goexit —
	// the crashed thread of the adversarial model. Deferred calls still
	// run, so injected workers can signal their demise with defer.
	Kill Action = iota
	// Park blocks the goroutine at the steppoint until Release — a
	// thread stalled inside a protocol window for an unbounded stretch.
	Park
)

// String implements fmt.Stringer.
func (a Action) String() string {
	if a == Park {
		return "park"
	}
	return "kill"
}

// Plan selects one crash point: the Occurrence-th firing (1-based,
// counted across all goroutines) of Point.
type Plan struct {
	// Point is the protocol step to intercept.
	Point hihash.Steppoint
	// Occurrence is which firing of Point triggers the action (>= 1).
	Occurrence int
	// Action is what to do to the goroutine that triggers.
	Action Action
}

// Injector is one armed Plan. It fires at most once, on the exact
// planned occurrence; every other steppoint firing passes through
// untouched.
type Injector struct {
	plan    Plan
	hits    atomic.Int64
	fired   chan struct{}
	release chan struct{}
}

// Install arms plan on the global steppoint hook and returns the
// injector. Call Uninstall (and Release, for a fired Park) when done.
func Install(plan Plan) *Injector {
	if plan.Occurrence < 1 {
		plan.Occurrence = 1
	}
	in := &Injector{
		plan:    plan,
		fired:   make(chan struct{}),
		release: make(chan struct{}),
	}
	hihash.SetStepHook(in.hook)
	return in
}

// hook runs on the goroutine that completed a protocol step. The atomic
// counter hands the planned occurrence to exactly one goroutine.
func (in *Injector) hook(p hihash.Steppoint) {
	if p != in.plan.Point {
		return
	}
	if in.hits.Add(1) != int64(in.plan.Occurrence) {
		return
	}
	close(in.fired)
	if in.plan.Action == Park {
		<-in.release
		return
	}
	runtime.Goexit()
}

// Fired returns a channel closed when the plan triggers.
func (in *Injector) Fired() <-chan struct{} { return in.fired }

// DidFire reports whether the planned occurrence was reached.
func (in *Injector) DidFire() bool {
	select {
	case <-in.fired:
		return true
	default:
		return false
	}
}

// Hits returns how many times the planned steppoint has fired so far,
// whether or not the plan triggered.
func (in *Injector) Hits() int { return int(in.hits.Load()) }

// Release unblocks a goroutine parked by a fired Park plan. Call it
// exactly once.
func (in *Injector) Release() { close(in.release) }

// Uninstall removes the injector from the steppoint hook. A parked
// goroutine keeps waiting for Release.
func (in *Injector) Uninstall() { hihash.SetStepHook(nil) }
