package universal

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
)

// fkVal is the single-cell state of the Fatourou–Kallimanis-style baseline:
// the object state together with, per process, the sequence number and
// response of its most recently applied operation. Keeping the responses is
// what makes the construction efficient — and what breaks history
// independence, as Section 1 of the paper points out for [19].
type fkVal struct {
	State string
	Seqs  [8]int
	Rsps  [8]int
}

// fkAnn is an announce cell value: a pending request (sequence number +
// operation) or none.
type fkAnn struct {
	Seq int // 0 = no pending request
	Op  core.Op
}

// NewFKHarness builds the non-HI universal baseline: a wait-free universal
// construction in the style of Fatourou and Kallimanis [19], storing the
// full object state plus every process's last response in a single LL/SC
// cell. It is linearizable and wait-free but not even quiescent HI — the
// response and sequence-number fields survive operation completion, so the
// memory reveals which operations were ever applied. NewFKHarness exists as
// a baseline for the clearing mechanisms of Algorithm 5 (experiment E15).
func NewFKHarness(s core.Spec, n int, f llsc.Factory) *harness.Harness {
	if n > 8 {
		panic(fmt.Sprintf("universal: FK baseline supports up to 8 processes, got %d", n))
	}
	allOps := s.Ops(s.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("fk-universal[%s,%s,n=%d]", s.Name(), f.Name(), n),
		Spec:    s,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			head := f.New(mem, "head", fkVal{State: s.Init()})
			ann := make([]llsc.Var, n)
			for i := 0; i < n; i++ {
				ann[i] = f.New(mem, fmt.Sprintf("ann%d", i), fkAnn{})
			}
			progs := make([]sim.Program, n)
			for pid := range progs {
				progs[pid] = fkProgram(s, n, head, ann, pid, srcs[pid])
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

// fkProgram: every state-changing operation is announced with a fresh
// sequence number; any process that wins the SC applies *all* pending
// announced requests in one transition, recording their responses in the
// cell. The invoker returns once its sequence number appears in head.
func fkProgram(s core.Spec, n int, head llsc.Var, ann []llsc.Var, pid int, src harness.OpSource) sim.Program {
	return func(p *sim.Proc) {
		seq := 0
		for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
			if s.ReadOnly(op) {
				p.Invoke(op, false)
				q := head.Load(p).(fkVal).State
				_, rsp := s.Apply(q, op)
				p.Return(rsp)
				continue
			}
			p.Invoke(op, true)
			seq++
			ann[pid].Store(p, fkAnn{Seq: seq, Op: op})
			for {
				h := head.LL(p).(fkVal)
				if h.Seqs[pid] >= seq { // already applied by a helper
					p.Return(h.Rsps[pid])
					break
				}
				// Batch-apply every pending announced request.
				next := h
				for j := 0; j < n; j++ {
					a := ann[j].Load(p).(fkAnn)
					if a.Seq > next.Seqs[j] {
						var rsp int
						next.State, rsp = s.Apply(next.State, a.Op)
						next.Seqs[j] = a.Seq
						next.Rsps[j] = rsp
					}
				}
				if head.SC(p, next) && next.Seqs[pid] >= seq {
					p.Return(next.Rsps[pid])
					break
				}
			}
		}
	}
}
