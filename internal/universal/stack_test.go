package universal_test

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/llsc"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

func TestStateQuiescentHIFuzzStack(t *testing.T) {
	h := universal.NewHarness(spec.NewStack(2, 2), 2, llsc.CASFactory{}, universal.Full)
	c := canonOrFatal(t, h, 4, 3000)
	push := func(v int) core.Op { return core.Op{Name: spec.OpPush, Arg: v} }
	pop := core.Op{Name: spec.OpPop}
	top := core.Op{Name: spec.OpTop}
	scripts := [][][]core.Op{
		{{push(1), pop}, {push(2), top}},
		{{push(2), push(1)}, {pop, pop}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 300, 131, 1500, true); err != nil {
		t.Fatal(err)
	}
}

// TestHarnessNamesDistinct guards the experiment plumbing: every factory ×
// variant combination reports a distinct harness name.
func TestHarnessNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range factories {
		for _, v := range []universal.Variant{
			universal.Full, universal.NoRelease, universal.NoEscape, universal.NoAnnounceClear,
		} {
			h := universal.CounterHarness(2, 2, f, v)
			if seen[h.Name] {
				t.Fatalf("duplicate harness name %q", h.Name)
			}
			seen[h.Name] = true
		}
	}
}
