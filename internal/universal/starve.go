package universal

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// StarvationDemo drives a two-process counter instance of the given variant
// with the adversarial scheduler that exposes the role of the blue escape
// lines: whenever p0 is parked at a CAS on head that would succeed, p1 runs
// instead (invalidating p0's pending CAS); p1 executes p1Ops increments.
//
// For the NoEscape mutant, p0 spins in LL(head) forever while p1 makes
// progress — wait-freedom is lost (but lock-freedom holds, as Lemma 31
// promises). For the Full variant, p1's helping posts p0's response, p0's
// escape hatch fires and p0 completes while p1 is still running.
//
// It returns the number of operations each process completed and the number
// of steps p0 took before the adversary ran out of contention to schedule.
func StarvationDemo(variant Variant, p1Ops, budget int) (p0Done, p1Done, p0Steps int) {
	h := CounterHarness(p1Ops+4, 2, llsc.CASFactory{}, variant)
	script := make([]core.Op, p1Ops)
	for i := range script {
		script[i] = core.Op{Name: spec.OpInc}
	}
	r := h.BuildScripts([][]core.Op{{{Name: spec.OpInc}}, script})
	r.Start()
	defer r.Stop()
	const headIdx = 0 // head is the first object registered by New
	for steps := 0; steps < budget; steps++ {
		prim0, ok0 := r.PendingPrim(0)
		_, ok1 := r.PendingPrim(1)
		if !ok0 && !ok1 {
			break
		}
		danger := false
		if ok0 && prim0.Kind == sim.PrimCAS && prim0.Obj.Name() == "head" {
			if fmt.Sprintf("%v", prim0.Arg1) == r.Mem().Snapshot()[headIdx] {
				danger = true // p0's CAS would succeed: keep it starving
			}
		}
		switch {
		case ok0 && !danger:
			r.Step(0)
		case ok1:
			r.Step(1)
		default:
			// p1 finished while p0 is parked at a would-succeed CAS: the
			// adversary has no contention left to schedule.
			t := r.Trace()
			return len(t.Responses(0)), len(t.Responses(1)), t.StepsBy(0)
		}
	}
	t := r.Trace()
	return len(t.Responses(0)), len(t.Responses(1)), t.StepsBy(0)
}
