// Package universal implements Algorithm 5: the wait-free, state-quiescent
// history-independent universal construction from releasable LL/SC objects
// (Section 6). Combined with the Algorithm 6 R-LLSC implementation from
// atomic CAS (llsc.CASFactory), it realizes Theorem 32: a linearizable,
// wait-free, state-quiescent HI implementation of an arbitrary object whose
// base objects are single CAS cells with O(s + 2^n) states.
//
// Shared memory consists of the R-LLSC variable head, holding
// ⟨state, response-record⟩ (the response record is ⊥ between operations, or
// ⟨rsp, j⟩ right after p_j's operation was applied), and an announce array
// with one R-LLSC cell per process holding ⊥, a pending operation, or its
// response. Applying an operation has three stages, each executable by any
// process: (1) SC head from ⟨q,⊥⟩ to ⟨q',⟨r,j⟩⟩, (2) overwrite announce[j]
// with the response r, (3) SC head back to ⟨q',⊥⟩, erasing the response.
// Every helper trace — announce contents, the response record, and the
// contexts accumulated by load-links — is cleared before operations
// complete, which is exactly what makes the construction history
// independent; the mutants in this package remove individual clearing
// mechanisms and are used to show each is necessary.
//
// A note on the paper text: lines 6R.1 and 18R.1 of Algorithm 5 in the arXiv
// version read "wait until Load(announce[i]) ∉ R", which taken literally is
// immediately true (the cell holds the announced operation, which is not a
// response) and would skip the operation entirely; the proof of Lemma 31
// makes clear the intended escape condition is "announce[i] ∈ R", i.e. the
// operation's response has been posted by a helper. We implement the
// corrected condition; see DESIGN.md ("Erratum").
package universal

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

// Variant selects the faithful Algorithm 5 or a deliberately broken mutant.
type Variant int

const (
	// Full is the faithful Algorithm 5 (blue and red lines included).
	Full Variant = iota + 1
	// NoRelease removes the RL calls of lines 22 and 27 (the paper's red
	// lines): load-link contexts can survive into quiescent
	// configurations, violating quiescent HI (the Section 6.1 discussion
	// and Lemma 27).
	NoRelease
	// NoEscape removes the interleaved escape hatches of lines 6, 18 and
	// 25 (the paper's blue lines): an LL may spin forever while other
	// processes keep completing operations, violating wait-freedom.
	NoEscape
	// NoAnnounceClear removes line 28 (Store(announce[i], ⊥)): responses
	// of completed operations remain visible, violating HI already in
	// sequential executions.
	NoAnnounceClear
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "universal"
	case NoRelease:
		return "universal-no-release"
	case NoEscape:
		return "universal-no-escape"
	case NoAnnounceClear:
		return "universal-no-announce-clear"
	default:
		return fmt.Sprintf("universal-variant(%d)", int(v))
	}
}

// headVal is the value stored in head: the object's current state plus the
// response record ⟨Rsp, Proc⟩ (present iff HasRsp; the record is the ⊥ of
// the paper when HasRsp is false). Cleared fields are zeroed so that every
// abstract state has a single head encoding.
type headVal struct {
	State  string
	HasRsp bool
	Rsp    int
	Proc   int
}

func (h headVal) String() string {
	if !h.HasRsp {
		return fmt.Sprintf("<%s,⊥>", h.State)
	}
	return fmt.Sprintf("<%s,<%d,p%d>>", h.State, h.Rsp, h.Proc)
}

// annKind distinguishes the three contents of an announce cell.
type annKind int

const (
	annBot annKind = iota // ⊥
	annOp                 // a pending operation (∈ O)
	annRsp                // a response (∈ R)
)

// annVal is the value stored in announce[i].
type annVal struct {
	Kind annKind
	Op   core.Op
	Rsp  int
}

func (a annVal) String() string {
	switch a.Kind {
	case annBot:
		return "⊥"
	case annOp:
		return a.Op.String()
	case annRsp:
		return fmt.Sprintf("r:%d", a.Rsp)
	default:
		return "?"
	}
}

// Universal is one instance of the construction: the head and announce
// variables over a fresh memory, for n processes.
type Universal struct {
	spec    core.Spec
	n       int
	variant Variant
	head    llsc.Var
	ann     []llsc.Var
}

// New creates a fresh instance over mem.
func New(s core.Spec, n int, f llsc.Factory, variant Variant, mem *sim.Memory) *Universal {
	return NewNamed(s, n, f, variant, mem, "")
}

// NewNamed creates a fresh instance over mem whose base-object names carry
// the given prefix, so several instances (e.g. the shards of a partitioned
// object) can coexist in one memory with distinguishable representations.
func NewNamed(s core.Spec, n int, f llsc.Factory, variant Variant, mem *sim.Memory, prefix string) *Universal {
	u := &Universal{spec: s, n: n, variant: variant}
	u.head = f.New(mem, prefix+"head", headVal{State: s.Init()})
	u.ann = make([]llsc.Var, n)
	for i := 0; i < n; i++ {
		u.ann[i] = f.New(mem, fmt.Sprintf("%sann%d", prefix, i), annVal{Kind: annBot})
	}
	return u
}

// Program returns the process program drawing operations from src on behalf
// of process pid. The priority counter persists across the process's
// operations, as in the paper (it is part of the process's local state, not
// the memory).
func (u *Universal) Program(pid int, src harness.OpSource) sim.Program {
	return func(p *sim.Proc) {
		priority := pid
		for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
			u.RunOp(p, op, &priority)
		}
	}
}

// RunOp executes one operation through the construction on behalf of p,
// using and advancing the caller-owned helping priority counter. It lets a
// routing layer (e.g. a sharded object) dispatch individual operations to
// one of several instances.
func (u *Universal) RunOp(p *sim.Proc, op core.Op, priority *int) {
	if u.spec.ReadOnly(op) {
		u.applyReadOnly(p, op)
	} else {
		u.apply(p, op, priority)
	}
}

// applyReadOnly implements ApplyReadOnly (lines 1-3): read the state from
// head and answer from the sequential specification, leaving no trace.
func (u *Universal) applyReadOnly(p *sim.Proc, op core.Op) {
	p.Invoke(op, false)
	q := u.head.Load(p).(headVal).State
	_, rsp := u.spec.Apply(q, op)
	p.Return(rsp)
}

// escapesEnabled reports whether the blue lines (6R, 18R, 25R) are active.
func (u *Universal) escapesEnabled() bool { return u.variant != NoEscape }

// loadAnn reads announce[j].
func (u *Universal) loadAnn(p *sim.Proc, j int) annVal {
	return u.ann[j].Load(p).(annVal)
}

// apply implements Apply (lines 4-29) for a state-changing operation.
func (u *Universal) apply(p *sim.Proc, op core.Op, priority *int) {
	i := p.ID
	p.Invoke(op, true)
	u.ann[i].Store(p, annVal{Kind: annOp, Op: op}) // Line 4

	for {
		if u.loadAnn(p, i).Kind == annRsp { // Line 5
			break
		}
		// Line 6: LL(head) interleaved with the escape poll (6R).
		hv, escaped := u.llWithEscape(p, u.head, func() bool {
			return u.loadAnn(p, i).Kind == annRsp
		})
		if escaped {
			break // goto Line 24
		}
		h := hv.(headVal)
		if !h.HasRsp { // Line 7: in-between operations (mode A)
			var applyOp core.Op
			var j int
			help := u.loadAnn(p, *priority) // Line 8
			switch {
			case help.Kind == annOp: // Line 9
				applyOp, j = help.Op, *priority
			default:
				if u.loadAnn(p, i).Kind != annOp { // Line 11
					continue
				}
				applyOp, j = op, i // Line 12
			}
			state, rsp := u.spec.Apply(h.State, applyOp)                              // Line 13
			if u.head.SC(p, headVal{State: state, HasRsp: true, Rsp: rsp, Proc: j}) { // Line 14
				*priority = (*priority + 1) % u.n // Line 15
			}
			continue
		}
		// Lines 16-22: a response record is pending (mode B).
		rsp, j := h.Rsp, h.Proc // Line 17
		// Line 18: LL(announce[j]) interleaved with the escape poll (18R).
		av, escaped := u.llWithEscape(p, u.ann[j], func() bool {
			return u.loadAnn(p, i).Kind == annRsp
		})
		if escaped {
			u.ann[j].RL(p) // Line 18R.2 (always performed on escape)
			break          // goto Line 24
		}
		a := av.(annVal)
		if u.head.VL(p) { // Line 19
			if a.Kind == annOp { // Line 20
				u.ann[j].SC(p, annVal{Kind: annRsp, Rsp: rsp})
			}
			u.head.SC(p, headVal{State: h.State}) // Line 21
		}
		if a.Kind == annBot && u.variant != NoRelease { // Line 22 (red)
			u.ann[j].RL(p)
		}
	}

	// Line 24: the operation has been applied; read its response.
	response := u.loadAnn(p, i)
	if response.Kind != annRsp {
		panic(fmt.Sprintf("universal: p%d reached line 24 with announce = %v", i, response))
	}
	// Line 25: LL(head) interleaved with the 25R poll
	// (wait until Load(head) ≠ ⟨_,⟨_,i⟩⟩, then goto Line 27).
	hv, escaped := u.llWithEscape(p, u.head, func() bool {
		h := u.head.Load(p).(headVal)
		return !(h.HasRsp && h.Proc == i)
	})
	if escaped {
		if u.variant != NoRelease { // Line 27 (red)
			u.head.RL(p)
		}
	} else {
		h := hv.(headVal)
		if h.HasRsp && h.Proc == i { // Line 26
			u.head.SC(p, headVal{State: h.State})
		} else if u.variant != NoRelease { // Line 27 (red)
			u.head.RL(p)
		}
	}
	if u.variant != NoAnnounceClear {
		u.ann[i].Store(p, annVal{Kind: annBot}) // Line 28
	}
	p.Return(response.Rsp) // Line 29
}

// llWithEscape runs an LL on v, interleaving one escape poll between
// consecutive LL steps (a legal instantiation of the ∥ interleaving, which
// allows any finite number of steps per side). It returns the loaded value,
// or escaped = true if the poll fired before the LL took effect; an
// abandoned LL has performed no context change (its last step was a read or
// failed CAS), so no release is needed for it.
func (u *Universal) llWithEscape(p *sim.Proc, v llsc.Var, escape func() bool) (sim.Value, bool) {
	att := v.BeginLL(p)
	for {
		if att.Step() {
			return att.Value(), false
		}
		if u.escapesEnabled() && escape() {
			return nil, true
		}
	}
}

// NewHarness builds a test harness for the construction applied to spec s
// with n processes, base objects from f, and the given variant. Every
// process may invoke every operation of the object.
func NewHarness(s core.Spec, n int, f llsc.Factory, variant Variant) *harness.Harness {
	allOps := s.Ops(s.Init())
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = allOps
	}
	return &harness.Harness{
		Name:    fmt.Sprintf("%v[%s,%s,n=%d]", variant, s.Name(), f.Name(), n),
		Spec:    s,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			u := New(s, n, f, variant, mem)
			progs := make([]sim.Program, n)
			for pid := range progs {
				progs[pid] = u.Program(pid, srcs[pid])
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

// CounterHarness, a convenience for tests: the universal construction
// applied to a bounded counter.
func CounterHarness(max, n int, f llsc.Factory, variant Variant) *harness.Harness {
	return NewHarness(spec.NewCounter(max, 0), n, f, variant)
}
