package universal_test

import (
	"errors"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/linearize"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

var errTruncated = errors.New("execution did not finish")

// TestFKLinearizableFuzz: the Fatourou–Kallimanis-style baseline is a
// correct universal construction — linearizable under random schedules.
func TestFKLinearizableFuzz(t *testing.T) {
	h := universal.NewFKHarness(spec.NewCounter(3, 1), 3, llsc.CASFactory{})
	scripts := [][]core.Op{{inc, dec}, {inc, inc}, {dec, rd}}
	err := sim.RandomTraces(h.Builder(scripts), 400, 7, 2000, func(tr *sim.Trace) error {
		if tr.Truncated {
			return errTruncated
		}
		return linearize.Check(h.Spec, tr.Events)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFKNotHI: the baseline is not history independent, already
// sequentially — the sequence numbers and responses stored in head reveal
// how many operations each process performed (the Section 1 critique of
// [19] made concrete).
func TestFKNotHI(t *testing.T) {
	h := universal.NewFKHarness(spec.NewCounter(2, 1), 2, llsc.CASFactory{})
	_, err := hicheck.BuildCanon(h, 2, 2000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("expected a sequential HI violation, got %v", err)
	}
	t.Logf("witness: %v", v)
}

// TestFKWaitFreeBound: batch helping makes the baseline wait-free — every
// process completes all its operations under random schedules.
func TestFKWaitFreeBound(t *testing.T) {
	h := universal.NewFKHarness(spec.NewCounter(6, 0), 3, llsc.CASFactory{})
	scripts := [][]core.Op{{inc, inc}, {inc, inc}, {inc, inc}}
	err := sim.RandomTraces(h.Builder(scripts), 300, 19, 3000, func(tr *sim.Trace) error {
		if tr.Truncated {
			return errTruncated
		}
		for pid := 0; pid < 3; pid++ {
			if got := len(tr.Responses(pid)); got != 2 {
				return errTruncated
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFKVersusHIUniversalMemory contrasts the two constructions directly:
// after the same operation sequence, Algorithm 5 leaves canonical memory
// while the baseline's head still names every process's last operation.
func TestFKVersusHIUniversalMemory(t *testing.T) {
	run := func(h interface {
		BuildScripts(scripts [][]core.Op) *sim.Runner
	}) []string {
		tr := h.BuildScripts([][]core.Op{{inc}, {inc, dec}}).Run(&sim.RoundRobin{}, 5000)
		if tr.Truncated {
			t.Fatal("run truncated")
		}
		return tr.MemAt(len(tr.Steps))
	}
	fk1 := run(universal.NewFKHarness(spec.NewCounter(4, 0), 2, llsc.CASFactory{}))
	// A different history reaching the same state (value 1).
	fk2t := universal.NewFKHarness(spec.NewCounter(4, 0), 2, llsc.CASFactory{}).
		BuildScripts([][]core.Op{{inc}, nil}).Run(&sim.RoundRobin{}, 5000)
	fk2 := fk2t.MemAt(len(fk2t.Steps))
	if sim.Fingerprint(fk1) == sim.Fingerprint(fk2) {
		t.Fatal("FK baseline left identical memory for different histories; it should leak")
	}

	hi1 := run(universal.CounterHarness(4, 2, llsc.CASFactory{}, universal.Full))
	hi2t := universal.CounterHarness(4, 2, llsc.CASFactory{}, universal.Full).
		BuildScripts([][]core.Op{{inc}, nil}).Run(&sim.RoundRobin{}, 5000)
	hi2 := hi2t.MemAt(len(hi2t.Steps))
	if sim.Fingerprint(hi1) != sim.Fingerprint(hi2) {
		t.Fatalf("Algorithm 5 memory differs for equal states:\n %s\n %s",
			sim.Fingerprint(hi1), sim.Fingerprint(hi2))
	}
}
