package universal_test

import (
	"errors"
	"fmt"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/hicheck"
	"hiconc/internal/linearize"
	"hiconc/internal/llsc"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

var factories = []llsc.Factory{llsc.HardwareFactory{}, llsc.CASFactory{}}

var (
	inc  = core.Op{Name: spec.OpInc}
	dec  = core.Op{Name: spec.OpDec}
	rd   = core.Op{Name: spec.OpRead}
	enq  = func(v int) core.Op { return core.Op{Name: spec.OpEnq, Arg: v} }
	deq  = core.Op{Name: spec.OpDeq}
	peek = core.Op{Name: spec.OpPeek}
)

func canonOrFatal(t *testing.T, h *harness.Harness, maxOps, maxSteps int) *hicheck.Canon {
	t.Helper()
	c, err := hicheck.BuildCanon(h, maxOps, maxSteps)
	if err != nil {
		t.Fatalf("%s: %v", h.Name, err)
	}
	return c
}

func TestSequentialCanonicalCounter(t *testing.T) {
	for _, f := range factories {
		h := universal.CounterHarness(2, 2, f, universal.Full)
		c := canonOrFatal(t, h, 3, 2000)
		if len(c.ByState) != 3 {
			t.Errorf("%s: canonical map covers %d states, want 3", h.Name, len(c.ByState))
		}
	}
}

func TestSequentialCanonicalQueue(t *testing.T) {
	for _, f := range factories {
		h := universal.NewHarness(spec.NewQueue(2, 2), 2, f, universal.Full)
		c := canonOrFatal(t, h, 3, 2000)
		if len(c.ByState) != 7 {
			t.Errorf("%s: canonical map covers %d states, want 7", h.Name, len(c.ByState))
		}
	}
}

func TestStateQuiescentHIExhaustiveTruncated(t *testing.T) {
	// Bounded-depth exhaustive exploration: every execution prefix of up to
	// maxSteps steps is covered, including every admitted configuration.
	for _, f := range factories {
		h := universal.CounterHarness(2, 2, f, universal.Full)
		c := canonOrFatal(t, h, 3, 2000)
		scripts := [][][]core.Op{
			{{inc}, {inc}},
			{{inc}, {dec}},
			{{dec}, {inc}},
			{{inc}, {rd}},
		}
		maxSteps := 12
		if f.Name() == "hw" {
			maxSteps = 14 // hardware ops are shorter; go deeper
		}
		if !testing.Short() {
			maxSteps += 2
		}
		n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, maxSteps, 600000, true)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		t.Logf("%s: explored %d interleavings", h.Name, n)
	}
}

func TestStateQuiescentHIFuzzCounter(t *testing.T) {
	for _, f := range factories {
		h := universal.CounterHarness(3, 3, f, universal.Full)
		c := canonOrFatal(t, h, 4, 2000)
		scripts := [][][]core.Op{
			{{inc, inc}, {dec, rd}, {inc, dec}},
			{{inc, rd}, {inc, inc}, {dec, dec}},
		}
		if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 300, 71, 1500, true); err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
	}
}

func TestStateQuiescentHIFuzzQueue(t *testing.T) {
	h := universal.NewHarness(spec.NewQueue(2, 2), 2, llsc.CASFactory{}, universal.Full)
	c := canonOrFatal(t, h, 4, 3000)
	scripts := [][][]core.Op{
		{{enq(1), deq}, {enq(2), peek}},
		{{enq(2), enq(1)}, {deq, peek}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 300, 83, 1500, true); err != nil {
		t.Fatal(err)
	}
}

func TestLinearizableSetFuzz(t *testing.T) {
	h := universal.NewHarness(spec.NewSet(2), 2, llsc.CASFactory{}, universal.Full)
	c := canonOrFatal(t, h, 3, 2000)
	ins := func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	rem := func(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }
	look := func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	scripts := [][][]core.Op{
		{{ins(1), rem(2), look(1)}, {ins(2), rem(1), look(2)}},
	}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, 300, 97, 1500, true); err != nil {
		t.Fatal(err)
	}
}

// TestWaitFreedom measures the per-operation step bound of each process
// under random schedules: every operation must complete within a bound that
// does not depend on the schedule (here calibrated empirically with slack).
func TestWaitFreedom(t *testing.T) {
	const perOpBound = 400
	for _, f := range factories {
		h := universal.CounterHarness(4, 3, f, universal.Full)
		scripts := [][]core.Op{{inc, inc, rd}, {inc, dec, inc}, {dec, inc, inc}}
		err := sim.RandomTraces(h.Builder(scripts), 500, 101, 4000, func(tr *sim.Trace) error {
			if tr.Truncated {
				return fmt.Errorf("execution did not finish")
			}
			for pid := 0; pid < 3; pid++ {
				if got := len(tr.Responses(pid)); got != 3 {
					return fmt.Errorf("p%d completed %d of 3 ops", pid, got)
				}
			}
			// Per-operation step counts.
			steps := make(map[int]int)
			active := make(map[int]bool)
			evIdx := 0
			for k, s := range tr.Steps {
				for evIdx < len(tr.Events) && tr.Events[evIdx].StepIndex <= k {
					ev := tr.Events[evIdx]
					active[ev.PID] = ev.Kind == sim.EvInvoke
					evIdx++
				}
				if active[s.PID] {
					steps[s.PID]++
				}
			}
			for pid, n := range steps {
				if n > 3*perOpBound {
					return fmt.Errorf("p%d took %d steps for 3 ops", pid, n)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
	}
}

// TestModeAlternation verifies Invariant 22 (the A/B mode structure of
// Figure 3): successive values written to head alternate between ⟨q,⊥⟩ and
// ⟨q',⟨r,j⟩⟩, and a B→A transition preserves the state component.
func TestModeAlternation(t *testing.T) {
	h := universal.CounterHarness(3, 3, llsc.CASFactory{}, universal.Full)
	scripts := [][]core.Op{{inc, inc}, {dec, inc}, {inc, dec}}
	type headRec struct {
		hasRsp bool
		state  string
	}
	parse := func(v sim.Value) (headRec, bool) {
		pk, ok := v.(llsc.Packed)
		if !ok {
			return headRec{}, false
		}
		// The head value renders as <state,⊥> or <state,<r,pj>>.
		s := fmt.Sprintf("%v", pk.Val)
		if len(s) < 2 {
			return headRec{}, false
		}
		inner := s[1 : len(s)-1]
		for i := 0; i < len(inner); i++ {
			if inner[i] == ',' {
				return headRec{state: inner[:i], hasRsp: inner[i+1] != 0xE2 /* ⊥ first byte */}, true
			}
		}
		return headRec{}, false
	}
	err := sim.RandomTraces(h.Builder(scripts), 300, 113, 4000, func(tr *sim.Trace) error {
		prev := headRec{hasRsp: false, state: "0"}
		for _, s := range tr.Steps {
			if s.Prim.Obj.Name() != "head" {
				continue
			}
			var newVal sim.Value
			switch {
			case s.Prim.Kind == sim.PrimCAS && s.Result == true:
				// Skip context-only CASes (an LL adding a bit or an RL
				// removing one); only value writes are mode transitions.
				if s.Prim.Arg1.(llsc.Packed).Val == s.Prim.Arg2.(llsc.Packed).Val {
					continue
				}
				newVal = s.Prim.Arg2
			case s.Prim.Kind == sim.PrimWrite:
				newVal = s.Prim.Arg1
			default:
				continue
			}
			cur, ok := parse(newVal)
			if !ok {
				return fmt.Errorf("unparseable head value %v", newVal)
			}
			if prev.hasRsp == cur.hasRsp {
				return fmt.Errorf("head written twice in the same mode: %+v -> %+v", prev, cur)
			}
			if prev.hasRsp && prev.state != cur.state {
				return fmt.Errorf("B->A transition changed the state: %+v -> %+v", prev, cur)
			}
			prev = cur
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- Mutants ---

func TestNoAnnounceClearFailsSequentialHI(t *testing.T) {
	h := universal.CounterHarness(2, 2, llsc.CASFactory{}, universal.NoAnnounceClear)
	_, err := hicheck.BuildCanon(h, 2, 2000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		t.Fatalf("expected a sequential HI violation, got %v", err)
	}
	t.Logf("witness: %v", v)
}

// phaseSearch runs the two-process phase pattern [p1:a][p0:b][p1:*][p0:*]
// for all (a, b) in the grid and returns the first quiescent HI violation.
func phaseSearch(t *testing.T, variant universal.Variant, maxA, maxB int) *hicheck.Violation {
	t.Helper()
	h := universal.CounterHarness(3, 2, llsc.CASFactory{}, variant)
	// The canonical map of the mutant in sequential runs equals the full
	// algorithm's (the removed releases are no-ops solo for the counter).
	c, err := hicheck.BuildCanon(h, 2, 2000)
	if err != nil {
		t.Fatalf("mutant canonical map: %v", err)
	}
	scripts := [][]core.Op{{inc}, {inc}}
	for a := 1; a <= maxA; a++ {
		for b := 1; b <= maxB; b++ {
			sch := &sim.Phases{List: []sim.Phase{
				{PID: 1, Steps: a}, {PID: 0, Steps: b}, {PID: 1, Steps: 400}, {PID: 0, Steps: 400},
			}}
			tr := h.BuildScripts(scripts).Run(sch, 1000)
			if tr.Truncated {
				continue
			}
			if err := hicheck.CheckTrace(c, tr, hicheck.Quiescent); err != nil {
				var v *hicheck.Violation
				if errors.As(err, &v) {
					t.Logf("phase (a=%d,b=%d): %v", a, b, v)
					return v
				}
				t.Fatalf("phase (a=%d,b=%d): unexpected error %v", a, b, err)
			}
		}
	}
	return nil
}

func TestNoReleaseViolatesQuiescentHI(t *testing.T) {
	// The Section 6.1 discussion: without RL, a process that helped (or
	// tried to help) leaves its link in an announce cell or in head, and
	// the context survives into a quiescent configuration.
	if v := phaseSearch(t, universal.NoRelease, 30, 15); v == nil {
		t.Fatal("no quiescent HI violation found; the RL lines appear unnecessary, contradicting Lemma 27")
	}
}

func TestFullSurvivesPhaseGrid(t *testing.T) {
	if v := phaseSearch(t, universal.Full, 30, 15); v != nil {
		t.Fatalf("faithful Algorithm 5 violated quiescent HI: %v", v)
	}
}

func TestNoEscapeLosesWaitFreedom(t *testing.T) {
	p0Ops, p1Ops, p0Steps := universal.StarvationDemo(universal.NoEscape, 40, 4000)
	if p1Ops < 20 {
		t.Fatalf("adversary starved p1 too (%d ops); the schedule is wrong", p1Ops)
	}
	if p0Ops != 0 {
		t.Fatalf("p0 completed despite the adversary; NoEscape should starve it (p0Steps=%d)", p0Steps)
	}
	if p0Steps < 100 {
		t.Fatalf("p0 took only %d steps; starvation not demonstrated", p0Steps)
	}
	t.Logf("NoEscape: p0 starved after %d own steps while p1 completed %d ops", p0Steps, p1Ops)
}

func TestFullEscapesAdversary(t *testing.T) {
	p0Ops, p1Ops, p0Steps := universal.StarvationDemo(universal.Full, 40, 6000)
	if p0Ops != 1 {
		t.Fatalf("p0 completed %d ops (steps=%d, p1Ops=%d); the escape hatch should have freed it", p0Ops, p0Steps, p1Ops)
	}
	t.Logf("Full: p0 escaped after %d own steps (p1 completed %d ops)", p0Steps, p1Ops)
}

// TestReadOnlyLeavesNoTrace: a read-only operation must not change the
// memory representation at all (the paper's ApplyReadOnly).
func TestReadOnlyLeavesNoTrace(t *testing.T) {
	for _, f := range factories {
		h := universal.CounterHarness(2, 2, f, universal.Full)
		tr := h.BuildScripts([][]core.Op{{rd, rd}, {rd}}).Run(&sim.RoundRobin{}, 1000)
		if tr.Truncated {
			t.Fatalf("%s: reads did not finish", h.Name)
		}
		init := sim.Fingerprint(tr.Initial)
		for k := 1; k <= len(tr.Steps); k++ {
			if got := sim.Fingerprint(tr.MemAt(k)); got != init {
				t.Fatalf("%s: read-only op changed memory at step %d: %s", h.Name, k, got)
			}
		}
		if err := linearize.Check(h.Spec, tr.Events); err != nil {
			t.Fatal(err)
		}
	}
}
