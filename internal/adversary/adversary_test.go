package adversary_test

import (
	"strings"
	"testing"

	"hiconc/internal/adversary"
	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/llsc"
	"hiconc/internal/registers"
	"hiconc/internal/spec"
	"hiconc/internal/universal"
)

// TestTheorem17StarvesAlg2 runs the Lemma 16 adversary against Algorithm 2,
// which is state-quiescent HI from binary registers: the reader must starve,
// confirming that the implementation cannot be wait-free (Theorem 17).
func TestTheorem17StarvesAlg2(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		h := registers.NewAlg2(k, 1)
		canon, err := hicheck.BuildCanon(h, 1, 400)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 200
		res, err := adversary.Run(h, adversary.RegisterConfig(k), canon, rounds)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if !res.Starved {
			t.Fatalf("K=%d: %v; expected starvation", k, res)
		}
		if res.ReaderSteps != rounds {
			t.Errorf("K=%d: reader took %d steps in %d rounds", k, res.ReaderSteps, rounds)
		}
		t.Logf("K=%d: %v", k, res)
	}
}

// TestTheorem17RoundsScale demonstrates the unbounded nature of the
// construction: the reader survives any requested number of rounds.
func TestTheorem17RoundsScale(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	canon, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, rounds := range []int{10, 100, 1000} {
		res, err := adversary.Run(h, adversary.RegisterConfig(3), canon, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Starved || res.Rounds != rounds {
			t.Fatalf("rounds=%d: %v", rounds, res)
		}
	}
}

// TestAdversaryDefeatedByAlg4: Algorithm 4 is not state-quiescent HI (the
// helping array B and the flags break canonicity), so it lies outside
// Theorem 17 — the adversary must fail against it, either because the reader
// returns (helped by the writer) or because the executions diverge.
func TestAdversaryDefeatedByAlg4(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	canon, err := hicheck.BuildCanon(h, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversary.Run(h, adversary.RegisterConfig(3), canon, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Starved {
		t.Fatalf("adversary starved Algorithm 4's reader, contradicting its wait-freedom: %v", res)
	}
	if !res.Returned && !res.Diverged {
		t.Fatalf("inconclusive result: %v", res)
	}
	t.Logf("Algorithm 4 defeats the adversary: %v", res)
}

// TestAdversaryDefeatedByMaxReg: the max register is not in C_t (its states
// are not mutually reachable), so the adversary cannot even be configured
// for it — a register-style Move would have to lower the maximum. We run the
// register configuration against it anyway restricted to ascending moves
// being absorbed; the reader returns promptly.
func TestAdversaryDefeatedByMaxReg(t *testing.T) {
	h := registers.NewMaxReg(3, 1)
	canon, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversary.Run(h, adversary.RegisterConfig(3), canon, 200)
	if err != nil {
		// The canonical map cannot distinguish states the object cannot
		// reach; an error here is also an acceptable demonstration.
		t.Logf("adversary not applicable to the max register: %v", err)
		return
	}
	if res.Starved {
		t.Fatalf("adversary starved the wait-free max register reader: %v", res)
	}
	t.Logf("max register defeats the adversary: %v", res)
}

// TestTheorem20StarvesHIQueue runs the Appendix C adversary against the
// queue-with-Peek from binary registers: base objects have 2 < t+1 states,
// the implementation is state-quiescent HI, so Peek must starve.
func TestTheorem20StarvesHIQueue(t *testing.T) {
	for _, tt := range []int{2, 3} {
		h := registers.NewHIQueue(tt, 2)
		canon, err := hicheck.BuildCanon(h, 2, 800)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 150
		res, err := adversary.Run(h, adversary.QueueConfig(tt), canon, rounds)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if !res.Starved {
			t.Fatalf("t=%d: %v; expected starvation", tt, res)
		}
		t.Logf("t=%d: %v", tt, res)
	}
}

// TestAdversaryInapplicableToUniversal: Algorithm 5 stores the whole
// abstract state in one base object, so the pigeonhole step of Lemma 16
// finds no canonical collision — the hypothesis "base objects with fewer
// than t states" fails, which is exactly why the universal construction can
// be wait-free.
func TestRunErrorPaths(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	canon, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer than two representatives is a configuration error.
	cfg := adversary.RegisterConfig(3)
	cfg.Representatives = cfg.Representatives[:1]
	if _, err := adversary.Run(h, cfg, canon, 10); err == nil {
		t.Error("single representative accepted")
	}
	// A representative missing from the canonical map is an error.
	cfg = adversary.RegisterConfig(3)
	cfg.Representatives = append(cfg.Representatives, "99")
	if _, err := adversary.Run(h, cfg, canon, 10); err == nil {
		t.Error("uncovered representative accepted")
	}
}

func TestAdversaryInapplicableToUniversal(t *testing.T) {
	h := universal.CounterHarness(2, 2, llsc.CASFactory{}, universal.Full)
	canon, err := hicheck.BuildCanon(h, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := adversary.Config{
		Representatives: []string{"0", "1", "2"},
		Move: func(q, q2 string) []core.Op {
			from, to := int(q[0]-'0'), int(q2[0]-'0')
			var ops []core.Op
			for ; from < to; from++ {
				ops = append(ops, core.Op{Name: spec.OpInc})
			}
			for ; from > to; from-- {
				ops = append(ops, core.Op{Name: spec.OpDec})
			}
			return ops
		},
		ReadOp:     core.Op{Name: spec.OpRead},
		ChangerPID: 0,
		ReaderPID:  1,
	}
	_, err = adversary.Run(h, cfg, canon, 50)
	if err == nil {
		t.Fatal("adversary found canonical collisions against the universal construction; its base objects should be too large")
	}
	if !strings.Contains(err.Error(), "no canonical collision") {
		t.Fatalf("unexpected error: %v", err)
	}
	t.Logf("as expected: %v", err)
}
