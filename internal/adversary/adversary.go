// Package adversary implements the constructive content of the paper's
// impossibility proofs:
//
//   - Theorem 17 (via Lemmas 15 and 16): for any object in the class C_t
//     implemented from base objects with fewer than t states in a
//     state-quiescent HI manner, an adversarial scheduler can run t
//     indistinguishable executions in lock step and starve a read operation
//     forever, so the implementation cannot be wait-free.
//   - Theorem 20 (Appendix C): the queue-with-Peek variant, which replaces
//     the state partition with t+1 representative states connected by the
//     operation sequences S(i1, i2) of Section 5.4.
//
// The adversary maintains the t (or t+1) executions as parallel simulator
// instances. In every round it inspects the base object ℓ that the parked
// reader is about to access, uses the canonical map to find two
// representative states whose canonical representations agree at ℓ (the
// pigeonhole step of Lemma 16 — possible because the base object has fewer
// states than there are representatives), moves each execution's changer to
// a representative that execution must avoid... and grants the reader a
// single step, verifying that all copies of the reader remain
// indistinguishable (same primitive, same object, same result).
//
// Running the adversary against Algorithm 2 (which satisfies the theorem's
// hypotheses except wait-freedom) starves the reader for as many rounds as
// requested. Running it against Algorithm 4 — which is *not* state-quiescent
// HI, and therefore outside the theorem — makes the executions diverge or
// the reader return: the helping mechanism defeats the adversary, exhibiting
// exactly the boundary drawn by Table 1.
package adversary

import (
	"errors"
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/hicheck"
	"hiconc/internal/sim"
)

// Config describes how the adversary drives an object.
type Config struct {
	// Representatives are the representative states q_0, ..., q_t: the
	// read operation must return a distinct response from each, and the
	// implementation's base objects must have fewer states than there are
	// representatives.
	Representatives []string
	// Move returns the operation sequence taking the object from
	// representative state q to representative state q2 without passing
	// through a state whose read response differs from both endpoints'
	// (the o_change of Definition 13, or S(i1,i2) of Section 5.4).
	Move func(q, q2 string) []core.Op
	// ReadOp is the read-only operation the starved reader executes.
	ReadOp core.Op
	// ChangerPID and ReaderPID identify the two processes in the harness.
	ChangerPID, ReaderPID int
}

// RegisterConfig returns the C_t configuration of a K-valued register:
// every state is its own representative and a single Write moves between
// any two states.
func RegisterConfig(k int) Config {
	reps := make([]string, k)
	for v := 1; v <= k; v++ {
		reps[v-1] = fmt.Sprint(v)
	}
	return Config{
		Representatives: reps,
		Move: func(_, q2 string) []core.Op {
			return []core.Op{{Name: "write", Arg: atoi(q2)}}
		},
		ReadOp:     core.Op{Name: "read"},
		ChangerPID: 0,
		ReaderPID:  1,
	}
}

// QueueConfig returns the Theorem 20 configuration of a queue with Peek
// over elements {1..t}: representatives are the empty queue and the t
// singleton queues, connected by the S(i1, i2) sequences of Section 5.4.
func QueueConfig(t int) Config {
	reps := make([]string, t+1)
	reps[0] = "" // the empty queue
	for v := 1; v <= t; v++ {
		reps[v] = fmt.Sprint(v)
	}
	return Config{
		Representatives: reps,
		Move: func(q, q2 string) []core.Op {
			switch {
			case q == "": // S(0, i2) = Enqueue(i2)
				return []core.Op{{Name: "enq", Arg: atoi(q2)}}
			case q2 == "": // S(i1, 0) = Dequeue()
				return []core.Op{{Name: "deq"}}
			default: // S(i1, i2) = Enqueue(i2), Dequeue()
				return []core.Op{{Name: "enq", Arg: atoi(q2)}, {Name: "deq"}}
			}
		},
		ReadOp:     core.Op{Name: "peek"},
		ChangerPID: 0,
		ReaderPID:  1,
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			panic("adversary: non-numeric state " + s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// Result reports the outcome of an adversary run.
type Result struct {
	// Rounds is the number of completed adversary rounds (each grants the
	// reader exactly one step).
	Rounds int
	// ReaderSteps is the total number of steps the reader took.
	ReaderSteps int
	// Starved is true if the reader never returned within the round
	// budget: the wait-freedom violation of Theorem 17.
	Starved bool
	// Returned is true if some copy of the reader returned a value — the
	// adversary was defeated (possible only when the implementation is
	// outside the theorem's hypotheses).
	Returned bool
	// Response is the value returned (meaningful when Returned).
	Response int
	// Diverged is true if the reader copies became distinguishable: some
	// execution's memory failed to be canonical where the adversary
	// needed it (again, outside the theorem's hypotheses).
	Diverged bool
	// Detail describes the divergence.
	Detail string
}

// String summarizes the result.
func (r *Result) String() string {
	switch {
	case r.Starved:
		return fmt.Sprintf("reader starved: %d steps over %d rounds without returning", r.ReaderSteps, r.Rounds)
	case r.Returned:
		return fmt.Sprintf("adversary defeated: reader returned %d after %d rounds", r.Response, r.Rounds)
	case r.Diverged:
		return fmt.Sprintf("adversary defeated: executions diverged after %d rounds (%s)", r.Rounds, r.Detail)
	default:
		return fmt.Sprintf("inconclusive after %d rounds", r.Rounds)
	}
}

// execution is one of the t+1 parallel executions maintained by Lemma 16.
type execution struct {
	runner *sim.Runner
	feed   *harness.Feed
	state  string // current representative state
	avoid  int    // index of the representative this execution avoids
}

// Run drives the Lemma 16 adversary against the harness for at most
// maxRounds rounds. The canonical map must cover all representative states.
// It returns an error only on misuse (missing canonical entries, harness
// shape mismatch); theorem-relevant outcomes are reported in the Result.
func Run(h *harness.Harness, cfg Config, canon *hicheck.Canon, maxRounds int) (*Result, error) {
	reps := cfg.Representatives
	if len(reps) < 2 {
		return nil, errors.New("adversary: need at least two representative states")
	}
	canons := make([][]string, len(reps))
	for i, q := range reps {
		mem, ok := canon.ByState[q]
		if !ok {
			return nil, fmt.Errorf("adversary: canonical map does not cover state %q", q)
		}
		canons[i] = mem
	}

	// Start one execution per representative; execution i avoids reps[i].
	execs := make([]*execution, len(reps))
	for i := range execs {
		feed := harness.NewFeed()
		srcs := make([]harness.OpSource, h.NumProcs())
		for pid := range srcs {
			switch pid {
			case cfg.ChangerPID:
				srcs[pid] = feed
			case cfg.ReaderPID:
				srcs[pid] = harness.NewSliceSource([]core.Op{cfg.ReadOp})
			default:
				srcs[pid] = harness.NewSliceSource(nil)
			}
		}
		r := h.Build(srcs)
		r.Start()
		execs[i] = &execution{runner: r, feed: feed, state: canon.Spec.Init(), avoid: i}
	}
	defer func() {
		for _, e := range execs {
			e.runner.Stop()
		}
	}()

	res := &Result{}
	// Park every changer (it pauses on the empty feed); the reader is
	// parked at its first primitive.
	for _, e := range execs {
		if err := settleChanger(e, cfg.ChangerPID); err != nil {
			return nil, err
		}
	}

	for round := 0; round < maxRounds; round++ {
		// 1. All readers must be parked at the same memory index.
		objIdx := -1
		for i, e := range execs {
			prim, ok := e.runner.PendingPrim(cfg.ReaderPID)
			if !ok {
				res.Returned = true
				res.Rounds = round
				res.ReaderSteps = execs[0].runner.Trace().StepsBy(cfg.ReaderPID)
				if rs := e.runner.Trace().Responses(cfg.ReaderPID); len(rs) > 0 {
					res.Response = rs[0]
				}
				return res, nil
			}
			idx := e.runner.Mem().IndexOf(prim.Obj)
			if i == 0 {
				objIdx = idx
			} else if idx != objIdx {
				res.Diverged = true
				res.Rounds = round
				res.Detail = fmt.Sprintf("readers parked at different objects (%d vs %d)", objIdx, idx)
				return res, nil
			}
		}

		// 2. Pigeonhole (Lemma 16): find two representatives whose
		// canonical representations agree at objIdx.
		qa, qb := -1, -1
		for i := 0; i < len(reps) && qa < 0; i++ {
			for j := i + 1; j < len(reps); j++ {
				if canons[i][objIdx] == canons[j][objIdx] {
					qa, qb = i, j
					break
				}
			}
		}
		if qa < 0 {
			return nil, fmt.Errorf(
				"adversary: no canonical collision at object %d — base objects are not smaller than the representative count",
				objIdx)
		}

		// 3. Move each execution to a colliding representative it is
		// allowed to visit, running the changer to completion.
		for _, e := range execs {
			target := qa
			if e.avoid == qa {
				target = qb
			}
			if e.state != reps[target] {
				e.feed.Push(cfg.Move(e.state, reps[target])...)
				if err := driveChanger(e, cfg.ChangerPID); err != nil {
					return nil, err
				}
				e.state = reps[target]
			}
		}

		// 4. One reader step in each execution; all copies must observe
		// the same result (indistinguishability).
		var firstPrim sim.Prim
		var firstResult sim.Value
		for i, e := range execs {
			prim, _ := e.runner.PendingPrim(cfg.ReaderPID)
			e.runner.Step(cfg.ReaderPID)
			steps := e.runner.Trace().Steps
			result := steps[len(steps)-1].Result
			if i == 0 {
				firstPrim, firstResult = prim, result
				continue
			}
			if prim.Kind != firstPrim.Kind || result != firstResult {
				res.Diverged = true
				res.Rounds = round
				res.Detail = fmt.Sprintf("reader observed %v=%v vs %v=%v",
					firstPrim, firstResult, prim, result)
				return res, nil
			}
		}
		res.Rounds = round + 1
	}
	res.Starved = true
	res.ReaderSteps = execs[0].runner.Trace().StepsBy(cfg.ReaderPID)
	return res, nil
}

// settleChanger resumes the changer until it parks on the empty feed.
func settleChanger(e *execution, pid int) error {
	for i := 0; i < 1_000_000; i++ {
		if paused(e.runner, pid) || e.runner.ProcDone(pid) {
			return nil
		}
		if _, ok := e.runner.PendingPrim(pid); ok {
			e.runner.Step(pid)
			continue
		}
		return fmt.Errorf("adversary: changer p%d neither runnable nor paused", pid)
	}
	return errors.New("adversary: changer did not settle")
}

// driveChanger resumes a paused changer and runs it until it has drained its
// feed and parked again. The reader takes no steps meanwhile, exactly as in
// the α executions of Section 5.2.
func driveChanger(e *execution, pid int) error {
	if paused(e.runner, pid) {
		e.runner.Resume(pid)
	}
	return settleChanger(e, pid)
}

func paused(r *sim.Runner, pid int) bool {
	for _, p := range r.Paused() {
		if p == pid {
			return true
		}
	}
	return false
}
