package adversary_test

import (
	"fmt"

	"hiconc/internal/adversary"
	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
)

// The Theorem 17 adversary starves the reader of any state-quiescent HI
// register implementation from binary registers, here Algorithm 2 with
// K = 3 for 50 rounds (it would survive any number).
func ExampleRun() {
	h := registers.NewAlg2(3, 1)
	canon, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		panic(err)
	}
	res, err := adversary.Run(h, adversary.RegisterConfig(3), canon, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	// Output: reader starved: 50 steps over 50 rounds without returning
}
