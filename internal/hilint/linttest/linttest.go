// Package linttest is the suite's miniature analysistest: it runs one
// analyzer over a testdata package and checks its diagnostics against
// "// want" expectations in the fixture source, so every enforced idiom
// ships with a positive case (clean code stays silent) and a bug-shaped
// negative case (the rotted pattern is reported) that pin the analyzer's
// behavior.
//
// Expectation syntax, as in x/tools analysistest:
//
//	badCall() // want `regexp`
//
// Each want comment demands at least one diagnostic on its line whose
// message matches the (backquoted or double-quoted) regexp; diagnostics
// on lines without a want comment fail the test, as do unmatched wants.
package linttest

import (
	"go/token"
	"regexp"
	"testing"

	"hiconc/internal/hilint/analysis"
)

var wantRe = regexp.MustCompile("// want (?:`([^`]*)`|\"([^\"]*)\")")

// Run loads the package in dir and applies a, comparing diagnostics to
// the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, []string{dir})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	// Collect want expectations: file -> line -> regexp (unmatched yet).
	type want struct {
		re      *regexp.Regexp
		matched bool
		line    int
		file    string
	}
	var wants []*want
	for _, f := range pkgs[0].Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				expr := m[1]
				if expr == "" {
					expr = m[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", f.Path, expr, err)
				}
				wants = append(wants, &want{
					re:   re,
					line: fset.Position(c.Pos()).Line,
					file: f.Path,
				})
			}
		}
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
