package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load parses the packages named by patterns into Packages. Patterns
// are directories, optionally ending in "/..." for a recursive walk
// ("./..." walks the current directory). All .go files of a directory
// are parsed, test files included; directories named testdata, vendor,
// or starting with "." or "_" are skipped, exactly as the go tool
// skips them.
func Load(fset *token.FileSet, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if !seen[path] {
					seen[path] = true
					dirs = append(dirs, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			if !seen[pat] {
				seen[pat] = true
				dirs = append(dirs, pat)
			}
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// loadDir parses one directory's .go files, returning nil when the
// directory holds none.
func loadDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, &File{
			Path: filepath.ToSlash(path),
			AST:  f,
			Test: strings.HasSuffix(name, "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}
