// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface, just large enough to host
// the project's own analyzers (internal/hilint/...). The build
// environment bakes in no third-party modules, so the real x/tools
// driver cannot be imported; keeping the Analyzer/Pass/Diagnostic shape
// identical means swapping this package for the real one later is a
// mechanical import rewrite.
//
// The deliberate difference from x/tools: passes carry parsed syntax and
// per-file import tables only, no go/types information. Every analyzer
// in the suite is syntactic — the protocol idioms they enforce (atomic
// writes to group words, hook.Point loads, time.Sleep in tests) are
// recognizable from the AST plus the import table, and staying
// types-free keeps the whole suite runnable on any tree that parses,
// including the bug-shaped testdata fixtures whose imports do not
// resolve.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Analyzer describes one named check, mirroring x/tools analysis.Analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// File is one parsed source file of a package.
type File struct {
	Path string // slash-separated path as given to the loader
	AST  *ast.File
	Test bool // *_test.go
}

// Package is one directory's worth of parsed files (test files
// included — analyzers filter by File.Test as needed).
type Package struct {
	Dir   string // directory the files came from
	Name  string // package name of the first file
	Files []*File
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string // analyzer name
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one analyzer's view of one package, mirroring
// x/tools analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// allowRe matches the suite's suppression annotation:
//
//	//hilint:allow <analyzer> (reason)
//
// The reason is mandatory — an exemption without an argument is itself a
// finding, so every suppressed site records why the idiom does not
// apply.
var allowRe = regexp.MustCompile(`hilint:allow\s+([a-z]+)\s*(.*)`)

// Reportf records a diagnostic at pos unless an //hilint:allow
// annotation for this analyzer covers pos's line (same line or the line
// directly above). An annotation with an empty reason suppresses
// nothing and is reported instead.
func (p *Pass) Reportf(f *File, pos token.Pos, format string, args ...any) {
	where := p.Fset.Position(pos)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil || m[1] != p.Analyzer.Name {
				continue
			}
			cline := p.Fset.Position(c.End()).Line
			if cline != where.Line && cline != where.Line-1 {
				continue
			}
			reason := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(m[2]), "*/"))
			if reason == "" {
				p.diags = append(p.diags, Diagnostic{
					Pos:     where,
					Check:   p.Analyzer.Name,
					Message: "hilint:allow annotation without a reason — state why the idiom does not apply",
				})
				return
			}
			return // consciously exempted
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:     where,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ImportName returns the local name under which f imports path, and
// whether it imports it at all. A dot import returns ".".
func ImportName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// Inspect walks root in depth-first order calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false skips n's children.
func Inspect(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Still push: ast.Inspect will pop via the nil callback only
			// if we returned true. Skip children by returning false and
			// not pushing.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// RunAnalyzers applies each analyzer to each package and returns all
// diagnostics, sorted by position.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Dir, err)
			}
			all = append(all, pass.diags...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return all, nil
}
