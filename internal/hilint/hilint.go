// Package hilint is the registry of the project's static-invariant
// analyzers (DESIGN.md, "Static invariants"): each one machine-enforces
// a convention the HI guarantees rest on but the compiler cannot see.
// cmd/hilint drives them; each analyzer package documents and tests the
// idiom it pins.
package hilint

import (
	"fmt"
	"sort"
	"strings"

	"hiconc/internal/hilint/analysis"
	"hiconc/internal/hilint/hiboundary"
	"hiconc/internal/hilint/hookpoint"
	"hiconc/internal/hilint/sleepwait"
	"hiconc/internal/hilint/steppoint"
)

// Analyzers returns the full suite, in name order.
func Analyzers() []*analysis.Analyzer {
	all := []*analysis.Analyzer{
		hiboundary.Analyzer,
		hookpoint.Analyzer,
		sleepwait.Analyzer,
		steppoint.Analyzer,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ByNames resolves a comma-separated selection ("all" or a subset).
// Unknown names fail loudly with the known set, so a typo in a CI
// invocation cannot silently skip a check.
func ByNames(sel string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if sel == "" || sel == "all" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var known []string
	for _, a := range all {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s, or \"all\")", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
