package steppoint_test

import (
	"testing"

	"hiconc/internal/hilint/linttest"
	"hiconc/internal/hilint/steppoint"
)

// TestSteppoint pins the analyzer against the bug-shaped fixture: the
// labeled direct, negated and in-case CAS shapes stay silent, unlabeled
// writes (including through a word alias) are reported, and an
// //hilint:allow without a reason is itself a finding.
func TestSteppoint(t *testing.T) {
	linttest.Run(t, "testdata/src/hihash", steppoint.Analyzer)
}

// TestSteppointScopedToHihash pins the package scoping: histats'
// histogram shards have a field named "buckets" whose atomics are not
// protocol steps — the analyzer must stay silent outside package hihash.
func TestSteppointScopedToHihash(t *testing.T) {
	linttest.Run(t, "testdata/src/histats", steppoint.Analyzer)
}
