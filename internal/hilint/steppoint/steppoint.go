// Package steppoint enforces the crash-matrix labeling convention of
// the HI table protocols (internal/hihash): every atomic write to a
// group or bucket word — the CAS words whose intermediate states the
// E23 adversary crashes into — must be mapped to a labeled Steppoint,
// i.e. its success path must call stepAt, so internal/faultinject's
// (steppoint, occurrence) Kill matrix covers the new window. A protocol
// CAS that deliberately carries no label (a cancel that restores the
// exact pre-protocol word, a pre-publication initialization) must say
// so with an explicit annotation:
//
//	//hilint:allow steppoint (reason)
//
// The analyzer is what stops crash-matrix coverage from rotting as
// displace.go's CAS sites grow: a new unlabeled site is an error, not a
// reviewer's memory.
package steppoint

import (
	"go/ast"

	"hiconc/internal/hilint/analysis"
)

// Analyzer is the steppoint check.
var Analyzer = &analysis.Analyzer{
	Name: "steppoint",
	Doc:  "atomic writes to HI group/bucket words must map to a labeled Steppoint (stepAt on the success path) or carry an explicit exemption",
	Run:  run,
}

// atomicWriters are the mutating methods of atomic.Uint64 /
// atomic.Pointer the protocols use; Load is the only reader and is
// exempt by construction.
var atomicWriters = map[string]bool{
	"CompareAndSwap": true,
	"Store":          true,
	"Swap":           true,
	"Add":            true,
}

// wordFields are the struct fields holding the HI memory representation:
// tableState.groups and mapState.buckets. Any atomic write whose
// receiver reaches through one of these is a protocol step.
var wordFields = map[string]bool{
	"groups":  true,
	"buckets": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name != "hihash" {
		// The convention is the HI table's: other packages may name
		// fields "buckets" (histats' histogram shards do) without their
		// atomics being protocol steps.
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			// Tests craft adversarial words directly (whitebox fixtures);
			// the convention governs the protocol implementation only.
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, f, fn)
		}
	}
	return nil
}

// checkFunc flags unmapped atomic writes to word arrays inside fn.
func checkFunc(pass *analysis.Pass, f *analysis.File, fn *ast.FuncDecl) {
	tainted := taintedVars(fn.Body)
	analysis.Inspect(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !atomicWriters[sel.Sel.Name] {
			return true
		}
		if !touchesWordArray(sel.X, tainted) {
			return true
		}
		if mappedToSteppoint(call, stack) {
			return true
		}
		pass.Reportf(f, call.Pos(),
			"atomic %s on a group/bucket word has no Steppoint: call stepAt on the success path (so the E23 crash matrix covers the window) or annotate //hilint:allow steppoint (reason)",
			sel.Sel.Name)
		return true
	})
}

// taintedVars collects local variables bound to a group/bucket word
// (e.g. g := &st.groups[i]), so writes through the alias are caught too.
func taintedVars(body *ast.BlockStmt) map[string]bool {
	tainted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if touchesWordArray(rhs, nil) {
				tainted[id.Name] = true
			}
		}
		return true
	})
	return tainted
}

// touchesWordArray reports whether expr reaches into a groups/buckets
// element — an index into a selector named groups or buckets, or (when
// tainted is non-nil) a local alias of one.
func touchesWordArray(expr ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && wordFields[sel.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if tainted != nil && tainted[n.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// mappedToSteppoint reports whether the atomic-write call's success path
// calls stepAt. The two shapes the protocols use:
//
//	if w.CompareAndSwap(old, new) { stepAt(...); ... }   // body is the success path
//	if !w.CompareAndSwap(old, new) { ...; continue }     // fallthrough is the success path
//	stepAt(...)
func mappedToSteppoint(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]

	// Direct condition: if CAS(...) { ... }
	if ifs, ok := parent.(*ast.IfStmt); ok && ifs.Cond == ast.Expr(call) {
		return callsStepAt(ifs.Body)
	}

	// Negated condition: if !CAS(...) { ... } ; success continues below.
	if un, ok := parent.(*ast.UnaryExpr); ok && un.Op.String() == "!" && un.X == ast.Expr(call) {
		if len(stack) < 2 {
			return false
		}
		ifs, ok := stack[len(stack)-2].(*ast.IfStmt)
		if !ok || ifs.Cond != ast.Expr(un) {
			return false
		}
		if len(stack) < 3 {
			return false
		}
		var stmts []ast.Stmt
		switch blk := stack[len(stack)-3].(type) {
		case *ast.BlockStmt:
			stmts = blk.List
		case *ast.CaseClause:
			stmts = blk.Body
		case *ast.CommClause:
			stmts = blk.Body
		default:
			return false
		}
		after := false
		for _, st := range stmts {
			if st == ast.Stmt(ifs) {
				after = true
				continue
			}
			if after && callsStepAt(st) {
				return true
			}
		}
		return false
	}
	return false
}

// callsStepAt reports whether node contains a call to stepAt.
func callsStepAt(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "stepAt" {
				found = true
			}
		}
		return !found
	})
	return found
}
