// Package hihash is a bug-shaped fixture for the steppoint analyzer:
// the labeled CAS shapes the protocols use stay silent, the unlabeled
// ones are reported, and an exemption must state its reason.
package hihash

import "sync/atomic"

type tableState struct {
	groups  []atomic.Uint64
	buckets []atomic.Uint64
}

type Steppoint int

const (
	SpMarkSet Steppoint = iota
	SpGonePlaced
)

func stepAt(Steppoint) {}

// Labeled direct form: the if body is the success path.
func labeledDirect(st *tableState, old, next uint64) {
	if st.groups[0].CompareAndSwap(old, next) {
		stepAt(SpMarkSet)
	}
}

// Labeled negated form: the fallthrough after the retry branch is the
// success path.
func labeledNegated(st *tableState, old, next uint64) {
	for {
		if !st.groups[0].CompareAndSwap(old, next) {
			continue
		}
		stepAt(SpMarkSet)
		return
	}
}

// Labeled negated form inside a case body (the displace.go shape).
func labeledInCase(st *tableState, mode int, old, next uint64) {
	switch mode {
	case 0:
		if !st.buckets[0].CompareAndSwap(old, next) {
			return
		}
		stepAt(SpGonePlaced)
	}
}

// An exempted cancel: restores the pre-protocol word, no new window.
func exemptedCancel(st *tableState, old, next uint64) {
	st.groups[0].CompareAndSwap(next, old) //hilint:allow steppoint (cancel restores the pre-mark word; no new crash window)
}

// An unlabeled CAS is a crash window with no matrix coverage.
func unlabeledCAS(st *tableState, old, next uint64) {
	st.groups[0].CompareAndSwap(old, next) // want `no Steppoint`
}

// Writes through an alias of a group word are caught too.
func unlabeledAlias(st *tableState, v uint64) {
	g := &st.groups[1]
	g.Store(v) // want `no Steppoint`
}

// An exemption that states no reason suppresses nothing.
func exemptionWithoutReason(st *tableState, v uint64) {
	//hilint:allow steppoint
	st.buckets[1].Store(v) // want `annotation without a reason`
}

// Atomics that do not touch group/bucket words are out of scope.
func otherAtomics(c *atomic.Uint64) {
	c.Add(1)
}
