// Package histats is a scope fixture for the steppoint analyzer: a
// field merely named "buckets" outside package hihash (the metrics
// layer's histogram shards are the real instance) is not an HI word,
// and its atomics are not protocol steps. No diagnostics expected.
package histats

import "sync/atomic"

type shard struct {
	buckets [64]atomic.Uint64
}

func (sh *shard) observe(b int) {
	sh.buckets[b].Add(1)
}
