package hookpoint_test

import (
	"testing"

	"hiconc/internal/hilint/hookpoint"
	"hiconc/internal/hilint/linttest"
)

// TestHookpoint pins the analyzer against the bug-shaped fixture: the
// canonical, split, accessor, nil-comparison and function-literal load
// shapes stay silent; a load in a loop, a double load, and an unchecked
// use are reported.
func TestHookpoint(t *testing.T) {
	linttest.Run(t, "testdata/src/hookfix", hookpoint.Analyzer)
}
