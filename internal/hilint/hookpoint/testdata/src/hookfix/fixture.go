// Package hookfix is a bug-shaped fixture for the hookpoint analyzer:
// the accepted load shapes stay silent, the rotted ones — re-load in a
// loop, a TOCTOU load pair, an unchecked use — are reported.
package hookfix

import "hiconc/internal/hook"

type recorder struct{}

func (recorder) observe(int) {}

var active hook.Point[recorder]

// Canonical form: one load, nil-checked, used inside the check.
func goodCanonical(ev int) {
	if r := active.Load(); r != nil {
		r.observe(ev)
	}
}

// Split form: load into a local, nil-check in a following statement.
func goodSplit(ev int) {
	r := active.Load()
	if r != nil {
		r.observe(ev)
	}
}

// Accessor form: returning the load leaves the check to the caller.
func goodAccessor() *recorder {
	return active.Load()
}

// The nil comparison itself is the use.
func goodEnabled() bool {
	return active.Load() != nil
}

// A function literal is its own event site: a load inside it is not
// "inside the loop" that merely encloses the literal.
func goodFuncLit(n int) {
	for i := 0; i < n; i++ {
		emit := func(ev int) {
			if r := active.Load(); r != nil {
				r.observe(ev)
			}
		}
		emit(i)
	}
}

// Re-loading per iteration of one event's work: the disabled path pays
// an atomic load per spin instead of one per event.
func badLoop(ev int) {
	for tries := 0; tries < 3; tries++ {
		if r := active.Load(); r != nil { // want `re-loaded inside a loop`
			r.observe(ev)
		}
	}
}

// A TOCTOU pair: the observer can be uninstalled between the loads.
func badDouble(ev int) {
	if active.Load() != nil {
		active.Load().observe(ev) // want `second Load`
	}
}

// Using the loaded observer without any nil check.
func badNoCheck(ev int) {
	r := active.Load() // want `without a nil check`
	r.observe(ev)
}
