// Package hookpoint enforces the one-atomic-load disabled-path idiom of
// the observability layers (internal/hook): a hook.Point observer is
// loaded exactly once per event site, into a local, and nil-checked
// before use —
//
//	if r := active.Load(); r != nil { r.observe(...) }
//
// — which is what keeps the disabled path at one atomic load plus a
// predicted branch (the machine-checked ≤2% overhead gates of E24/E25).
// The analyzer reports the ways the idiom rots:
//
//   - a Load inside a loop body (the hook must be loaded per event, not
//     re-loaded per iteration of one event's work);
//   - two Loads of the same point in one function (a TOCTOU pair — the
//     observer can be uninstalled between them);
//   - a Load whose result is used without a nil check.
package hookpoint

import (
	"go/ast"

	"hiconc/internal/hilint/analysis"
)

// hookPkg is the import path of the observer-slot package; package-level
// vars of type hook.Point[T] are the points this analyzer tracks.
const hookPkg = "hiconc/internal/hook"

// Analyzer is the hookpoint check.
var Analyzer = &analysis.Analyzer{
	Name: "hookpoint",
	Doc:  "hook.Point observers must be loaded once into a nil-checked local (the one-atomic-load disabled-path idiom)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name == "hook" {
		// The implementation package itself wraps the raw atomic.Pointer.
		return nil
	}
	points := hookVars(pass.Pkg)
	if len(points) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			// Churn tests install/uninstall observers in loops on purpose;
			// the idiom governs the instrumented production sites.
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, f, fn.Body, points)
		}
	}
	return nil
}

// hookVars collects the package-level variables declared with type
// hook.Point[...] in any of the package's files.
func hookVars(pkg *analysis.Package) map[string]bool {
	points := map[string]bool{}
	for _, f := range pkg.Files {
		hookName, ok := analysis.ImportName(f.AST, hookPkg)
		if !ok {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil || !isPointType(vs.Type, hookName) {
					continue
				}
				for _, name := range vs.Names {
					points[name.Name] = true
				}
			}
		}
	}
	return points
}

// isPointType reports whether t is hook.Point[...] (under the file's
// local name for the hook import).
func isPointType(t ast.Expr, hookName string) bool {
	ix, ok := t.(*ast.IndexExpr)
	if !ok {
		return false
	}
	sel, ok := ix.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Point" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == hookName
}

// checkFunc validates every Load of a hook point inside one function
// body. Function literals are separate event sites and are checked
// independently (a Load inside a FuncLit is not "inside the loop" that
// merely encloses the literal).
func checkFunc(pass *analysis.Pass, f *analysis.File, body *ast.BlockStmt, points map[string]bool) {
	loads := 0
	analysis.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, f, fl.Body, points)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !points[id.Name] {
			return true
		}
		loads++
		if loads > 1 {
			pass.Reportf(f, call.Pos(),
				"second Load of hook point %s in one function: the observer can change between loads — load once into a local", id.Name)
			return true
		}
		if loopDepth(stack) > 0 {
			pass.Reportf(f, call.Pos(),
				"hook point %s re-loaded inside a loop: load it once into a local before the loop (one atomic load per event)", id.Name)
			return true
		}
		if !nilCheckedUse(call, stack) {
			pass.Reportf(f, call.Pos(),
				"hook point %s used without a nil check: the disabled path must be `if x := %s.Load(); x != nil { ... }`", id.Name, id.Name)
		}
		return true
	})
}

// loopDepth counts for/range statements on the stack.
func loopDepth(stack []ast.Node) int {
	d := 0
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			d++
		}
	}
	return d
}

// nilCheckedUse reports whether the Load call appears in one of the
// idiom's accepted shapes:
//
//	if x := H.Load(); x != nil { ... }      // canonical
//	x := H.Load(); ...; if x != nil { ... } // split form
//	return H.Load()                         // accessor
//	H.Load() != nil / == nil                // the check is the use
func nilCheckedUse(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BinaryExpr:
		// H.Load() != nil or == nil.
		if p.Op.String() == "!=" || p.Op.String() == "==" {
			if id, ok := p.Y.(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
			if id, ok := p.X.(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		if len(p.Lhs) != 1 {
			return false
		}
		lhs, ok := p.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		return nilCheckFollows(lhs.Name, p, stack)
	}
	return false
}

// nilCheckFollows reports whether the variable assigned from the Load is
// nil-checked: either the assignment is the init of an if whose
// condition tests it against nil, or a following statement of the
// enclosing block is such an if.
func nilCheckFollows(name string, assign *ast.AssignStmt, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	gp := stack[len(stack)-2]
	if ifs, ok := gp.(*ast.IfStmt); ok && ifs.Init == ast.Stmt(assign) {
		return testsNil(ifs.Cond, name)
	}
	block, ok := gp.(*ast.BlockStmt)
	if !ok {
		return false
	}
	after := false
	for _, st := range block.List {
		if st == ast.Stmt(assign) {
			after = true
			continue
		}
		if !after {
			continue
		}
		if ifs, ok := st.(*ast.IfStmt); ok && testsNil(ifs.Cond, name) {
			return true
		}
	}
	return false
}

// testsNil reports whether cond compares the named variable to nil.
func testsNil(cond ast.Expr, name string) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op.String() != "!=" && be.Op.String() != "==" {
		return false
	}
	xid, xok := be.X.(*ast.Ident)
	yid, yok := be.Y.(*ast.Ident)
	if !xok || !yok {
		return false
	}
	return (xid.Name == name && yid.Name == "nil") || (xid.Name == "nil" && yid.Name == name)
}
