package hiboundary_test

import (
	"testing"

	"hiconc/internal/hilint/hiboundary"
	"hiconc/internal/hilint/linttest"
)

// TestReadPath pins the write-free contract: a clean lookup stays
// silent; a Store, a CompareAndSwap, an off-allowlist function call and
// an off-allowlist method call inside declared read-path functions are
// reported; a non-read-path function may write freely.
func TestReadPath(t *testing.T) {
	linttest.Run(t, "testdata/src/hihash", hiboundary.Analyzer)
}

// TestUnsafeConfinement pins the unsafe perimeter: an unsafe import on
// a path outside UnsafeFiles is reported, and the annotation escape
// hatch (with a reason) suppresses it.
func TestUnsafeConfinement(t *testing.T) {
	linttest.Run(t, "testdata/src/rawdump", hiboundary.Analyzer)
}
