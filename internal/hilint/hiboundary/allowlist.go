package hiboundary

// The declared boundary. Editing these lists is a reviewed act: adding
// a function to ReadPathFuncs subjects it to the write-free contract,
// adding a callee to the allowlists widens what the read path may touch,
// and adding a file to UnsafeFiles admits a new raw-memory reader.

// ReadPathFuncs is the E26 lookup surface of internal/hihash: every
// function here must stay write-free and call only allowlisted callees.
// Keyed as "Recv.Name" for methods, bare "Name" for functions.
// containsSlow is deliberately absent — it is the helping fallback that
// may complete pending protocol transitions (DESIGN.md, "The read
// path").
var ReadPathFuncs = map[string]bool{
	// The API lookups.
	"Set.Contains":         true,
	"Set.displaceContains": true,
	"Map.Get":              true,
	// The probeScan (fast, fixed-buffer) half of the scan split.
	"fastScan":    true,
	"fastMatches": true,
	// The runScan (slice-collecting) half, shared with the update paths.
	"scanRun":       true,
	"rescanMatches": true,
	// Whole-table read-only sweeps.
	"Set.findKey": true,
	// Map read helpers.
	"lookupKV": true,
	"kvsOf":    true,
}

// AllowedCallees are the package-level functions, conversions and
// builtins a read-path function may call: the pure word/SWAR
// classifiers, layout arithmetic, the metrics layer (machine-checked to
// stay outside the HI boundary), and the language's own furniture.
var AllowedCallees = map[string]bool{
	// SWAR classifiers (pure ALU, swar.go).
	"swarBroadcast":  true,
	"swarZeroLanes":  true,
	"swarKeyLanes":   true,
	"swarFind":       true,
	"swarEmptyLanes": true,
	"swarFlagLanes":  true,
	"swarMarkLanes":  true,
	"swarBusyLanes":  true,
	// Word helpers and layout arithmetic (pure).
	"wordClean": true,
	"wordFind":  true,
	"slotAt":    true,
	"GroupOf":   true,
	// Metrics: outside the HI boundary by machine check (E24).
	"histats.Inc":     true,
	"histats.Observe": true,
	// Stdlib bit tricks.
	"bits.OnesCount64":     true,
	"bits.TrailingZeros64": true,
	// Builtins and conversions.
	"len": true, "cap": true, "append": true, "copy": true,
	"int": true, "int32": true, "int64": true,
	"uint64": true, "uint32": true, "uintptr": true,
}

// AllowedMethods are the methods a read-path function may invoke on any
// receiver. Load is the only atomic verb of a read; checkKey panics on
// malformed input before any shared state is touched.
var AllowedMethods = map[string]bool{
	"Load":     true,
	"checkKey": true,
	// The declared exit from the fast path: after the retry budget the
	// reader hands off to the helping fallback, whose writes are the
	// update paths' transitions (and which is deliberately outside
	// ReadPathFuncs).
	"containsSlow": true,
}

// UnsafeFiles are the files permitted to import "unsafe", matched as
// path suffixes. The inventory, with why each needs raw memory:
//
//	internal/hihash/dump.go    — RawWords/RawDump read the live group
//	                             arrays exactly as a core dump would;
//	                             the E23 twin checks compare these bits.
//	internal/histats/histats.go — goroutine-shard selection hashes a
//	                             stack address (no shared-state access).
//	internal/hirec/hirec.go    — lane selection, same stack-address
//	                             trick as histats.
var UnsafeFiles = []string{
	"internal/hihash/dump.go",
	"internal/histats/histats.go",
	"internal/hirec/hirec.go",
}
