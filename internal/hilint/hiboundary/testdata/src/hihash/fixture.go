// Package hihash is a bug-shaped fixture for the hiboundary analyzer:
// declared read-path functions are held to the write-free contract and
// the callee allowlist; everything else is the update paths' business.
package hihash

import "sync/atomic"

type tableState struct {
	groups []atomic.Uint64
}

type Set struct {
	st atomic.Pointer[tableState]
}

func swarBroadcast(key uint64) uint64 { return key * 0x0001000100010001 }

func wordFind(w, pat uint64) int { return int(w ^ pat) }

func GroupOf(key uint64, n int) int { return int(key) % n }

func helperOffPath() {}

func (s *Set) checkKey(key uint64) {}

func (s *Set) containsSlow(key uint64) bool { return false }

func (s *Set) mutate(key uint64) {}

// A clean lookup: loads, pure classifiers, the declared fallback.
func (s *Set) Contains(key uint64) bool {
	s.checkKey(key)
	st := s.st.Load()
	w := st.groups[GroupOf(key, len(st.groups))].Load()
	if wordFind(w, swarBroadcast(key)) >= 0 {
		return true
	}
	return s.containsSlow(key)
}

// A reader that quietly grew writes and an off-allowlist call.
func (s *Set) displaceContains(key uint64) bool {
	st := s.st.Load()
	st.groups[0].Store(key)                    // want `writes table state`
	helperOffPath()                            // want `not on the read-path allowlist`
	return st.groups[0].CompareAndSwap(key, 0) // want `writes table state`
}

// A read-path function calling a non-allowlisted method.
func lookupKV(s *Set, key uint64) bool {
	s.mutate(key) // want `calls method mutate`
	return false
}

// Not a declared read-path function: its writes are covered by the
// update paths' checks, not this analyzer.
func (s *Set) add(key uint64) {
	st := s.st.Load()
	st.groups[0].Store(key)
}
