// Package rawdump is a fixture for hiboundary's unsafe confinement:
// this path is not in the UnsafeFiles allowlist, so a bare unsafe
// import is reported, and an annotated one demonstrates the reviewed
// escape hatch.
package rawdump

import "unsafe" // want `unsafe imported outside the declared raw-dump files`

func addrOf(p *uint64) uintptr { return uintptr(unsafe.Pointer(p)) }
