package rawdump

import u "unsafe" //hilint:allow hiboundary (fixture demonstrating the reviewed escape hatch)

func sizeOf(x uint64) uintptr { return u.Sizeof(x) }
