// Package hiboundary polices the read path and the unsafe perimeter of
// the HI table (internal/hihash; DESIGN.md, "The read path").
//
// Declared read-path functions — the E26 lookup surface — must stay
// write-free: no atomic mutator (CompareAndSwap/Store/Swap/Add) on
// anything, and every call must name an allowlisted callee (the pure
// word/SWAR classifiers, the metrics layer, the other read-path
// functions). A reader that quietly grows a helping write would drag
// reads inside the HI boundary and break the raw-dump twin checks, the
// escape-analysis contract, or both. containsSlow, the deliberate
// helping fallback, is exactly the exception: it is NOT in the declared
// read-path set and its writes are covered by the update paths' checks.
//
// Separately, across the whole tree: importing "unsafe" is permitted
// only in the declared raw-dump/observer files (allowlist.go). The raw
// group-array reads of the E23 differ are confined there; a new unsafe
// import anywhere else fails the build, subsuming the reviewer half of
// the `go vet -unsafeptr` step.
package hiboundary

import (
	"go/ast"
	"strings"

	"hiconc/internal/hilint/analysis"
)

// Analyzer is the hiboundary check.
var Analyzer = &analysis.Analyzer{
	Name: "hiboundary",
	Doc:  "read-path functions must not write table state or call outside the allowlist; unsafe imports are confined to the declared raw-dump files",
	Run:  run,
}

// atomicMutators write shared state; a read-path function may Load and
// nothing else.
var atomicMutators = map[string]bool{
	"CompareAndSwap": true,
	"Store":          true,
	"Swap":           true,
	"Add":            true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		checkUnsafeImport(pass, f)
	}
	if pass.Pkg.Name != "hihash" {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := funcName(fn)
			if !ReadPathFuncs[name] {
				continue
			}
			checkReadPath(pass, f, fn, name)
		}
	}
	return nil
}

// checkUnsafeImport reports an unsafe import outside the declared files.
func checkUnsafeImport(pass *analysis.Pass, f *analysis.File) {
	for _, imp := range f.AST.Imports {
		if imp.Path.Value != `"unsafe"` {
			continue
		}
		allowed := false
		for _, suffix := range UnsafeFiles {
			if strings.HasSuffix(f.Path, suffix) {
				allowed = true
				break
			}
		}
		if !allowed {
			pass.Reportf(f, imp.Pos(),
				"unsafe imported outside the declared raw-dump files: add %s to hiboundary's UnsafeFiles allowlist (with a reason) or keep raw memory access in the dump/observer layers", f.Path)
		}
	}
}

// funcName renders a FuncDecl as the allowlist spells it: "Recv.Name"
// for methods (pointer receivers included), bare "Name" otherwise.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// checkReadPath enforces the write-free contract inside one declared
// read-path function.
func checkReadPath(pass *analysis.Pass, f *analysis.File, fn *ast.FuncDecl, name string) {
	analysis.Inspect(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, isMethod := calleeName(call)
		if isMethod && atomicMutators[callee] {
			pass.Reportf(f, call.Pos(),
				"read-path function %s writes table state (%s): lookups must stay outside the HI boundary — route writes through the update paths or the helping fallback", name, callee)
			return true
		}
		if isMethod {
			if !AllowedMethods[callee] && !readPathMethod(callee) {
				pass.Reportf(f, call.Pos(),
					"read-path function %s calls method %s, which is not on the read-path allowlist (hiboundary/allowlist.go)", name, callee)
			}
			return true
		}
		if !AllowedCallees[callee] && !ReadPathFuncs[callee] {
			pass.Reportf(f, call.Pos(),
				"read-path function %s calls %s, which is not on the read-path allowlist (hiboundary/allowlist.go)", name, callee)
		}
		return true
	})
}

// readPathMethod reports whether a bare method name is itself a declared
// read-path method (s.displaceContains from Set.Contains, say) — calls
// between read-path functions are always allowed.
func readPathMethod(callee string) bool {
	for name := range ReadPathFuncs {
		if i := strings.IndexByte(name, '.'); i >= 0 && name[i+1:] == callee {
			return true
		}
	}
	return false
}

// calleeName extracts a printable callee from a call expression:
// ("pkg.Fn", false) for qualified calls, ("Fn", false) for plain calls
// and conversions, (method, true) for method calls (anything selected
// from a non-package expression — receiver identity is not resolvable
// without types, the method name is what the allowlist keys on).
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, false
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			// Package-qualified or receiver-qualified: without types the
			// distinction is the allowlist's job — try the qualified name
			// first, fall back to treating it as a method.
			qualified := id.Name + "." + fun.Sel.Name
			if AllowedCallees[qualified] || ReadPathFuncs[qualified] {
				return qualified, false
			}
			// Methods on a local receiver ident (s.checkKey, st.prev):
			// key on the bare method name.
			return fun.Sel.Name, true
		}
		return fun.Sel.Name, true
	case *ast.ArrayType, *ast.MapType, *ast.FuncType:
		return "conversion", false
	case *ast.ParenExpr:
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args}
		return calleeName(inner)
	}
	return "unknown-callee", false
}
