// Package sleepwait bans bare time.Sleep as a synchronization
// primitive in tests, examples and the cmd binaries: sleeping "long
// enough" is how flaky schedules hide, and the tree has real
// alternatives — cross-goroutine ordering is a channel or WaitGroup,
// livelock protection is the within watchdog helper
// (internal/hihash/whitebox_test.go). A Sleep that is genuinely part of
// a workload (pacing a demo loop, not awaiting a goroutine) can say so:
//
//	//hilint:allow sleepwait (reason)
//
// PR 6's manual sweep covered internal/ only; this analyzer covers
// every test file plus everything under examples/ and cmd/, and runs on
// every commit.
package sleepwait

import (
	"go/ast"
	"strings"

	"hiconc/internal/hilint/analysis"
)

// Analyzer is the sleepwait check.
var Analyzer = &analysis.Analyzer{
	Name: "sleepwait",
	Doc:  "no bare time.Sleep as a synchronization primitive in tests, examples/ or cmd/ — use channels, WaitGroups or the watchdog helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Pkg.Files {
		if !f.Test && !strings.Contains(f.Path, "examples/") && !strings.Contains(f.Path, "cmd/") {
			continue
		}
		timeName, ok := analysis.ImportName(f.AST, "time")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
				pass.Reportf(f, call.Pos(),
					"bare time.Sleep: synchronize with a channel/WaitGroup or a watchdog (hihash within-style helper), or annotate //hilint:allow sleepwait (reason)")
			}
			return true
		})
	}
	return nil
}
