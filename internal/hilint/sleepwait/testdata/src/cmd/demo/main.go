// Command demo is a fixture: files under cmd/ are in sleepwait's scope
// even outside tests — the smoke-tested binaries must not sleep-wait.
package main

import "time"

func main() {
	time.Sleep(time.Second) // want `bare time.Sleep`
}
