package sleepy

import (
	"testing"
	clock "time"
)

// A renamed time import does not hide the Sleep.
func TestRenamedImport(t *testing.T) {
	clock.Sleep(clock.Millisecond) // want `bare time.Sleep`
}
