package sleepy

import "time"

// Non-test files outside examples/ and cmd/ are out of the analyzer's
// scope: a library sleeping is its caller's contract, not a test flake.
func pause() { time.Sleep(time.Millisecond) }
