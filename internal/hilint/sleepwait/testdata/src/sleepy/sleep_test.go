// Package sleepy is a fixture for the sleepwait analyzer: test files
// are in scope, bare Sleeps are reported, annotated pacing is not.
package sleepy

import (
	"testing"
	"time"
)

func TestSleepAsSync(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	time.Sleep(10 * time.Millisecond) // want `bare time.Sleep`
	<-done
}

func TestPacedWorkload(t *testing.T) {
	time.Sleep(time.Millisecond) //hilint:allow sleepwait (pacing a workload, not awaiting a goroutine)
}
