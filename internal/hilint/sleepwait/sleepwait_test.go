package sleepwait_test

import (
	"testing"

	"hiconc/internal/hilint/linttest"
	"hiconc/internal/hilint/sleepwait"
)

// TestTestFiles pins the test-file scope: bare Sleeps (including under
// a renamed time import) are reported, the pacing annotation is
// honored, and non-test library files in the same package are ignored.
func TestTestFiles(t *testing.T) {
	linttest.Run(t, "testdata/src/sleepy", sleepwait.Analyzer)
}

// TestCmdFiles pins the cmd/ path scope: a non-test main package under
// a cmd/ path is checked.
func TestCmdFiles(t *testing.T) {
	linttest.Run(t, "testdata/src/cmd/demo", sleepwait.Analyzer)
}
