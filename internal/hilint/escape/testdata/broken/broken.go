// Package broken is the escape gate's deliberately-broken fixture: the
// probe record's slice field aliases its own backing array — the exact
// shape that silently moved PR 9's lookup record to the heap — so the
// gate must report a moved-to-heap finding inside lookupRecord.
package broken

type record struct {
	buf   [32]uint64
	lanes []uint64
}

func (r *record) push(v uint64) {
	r.lanes = append(r.lanes, v)
}

func lookupRecord(key uint64) int {
	r := record{}
	r.lanes = r.buf[:0]
	for i := range r.buf {
		if r.buf[i] == key {
			r.push(r.buf[i])
		}
	}
	return len(r.lanes)
}

// cleanLookup keeps the record escape-free: the gate must stay silent
// about functions that are not declared hot, and about clean ones.
func cleanLookup(key uint64) int {
	var buf [32]uint64
	n := 0
	for i := range buf {
		if buf[i] == key {
			n++
		}
	}
	return n
}
