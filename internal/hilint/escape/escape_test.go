package escape_test

import (
	"strings"
	"testing"

	"hiconc/internal/hilint/escape"
)

// TestRepoHotPathsClean is the gate itself: every declared hot-path
// function in the repo compiles with zero allocation-shaped escapes.
// A failure here prints the compiler's own escape diagnostics.
func TestRepoHotPathsClean(t *testing.T) {
	findings, err := escape.Audit("../../..")
	if err != nil {
		t.Fatalf("escape audit: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestBrokenFixtureCaught runs the gate over the deliberately-broken
// module (a self-referential slice field, the PR 9 regression shape)
// and demands a moved-to-heap finding inside the declared function —
// proving the gate fails when it should, not only passes when it may.
func TestBrokenFixtureCaught(t *testing.T) {
	findings, err := escape.AuditPackage("testdata/broken", escape.Hot{
		Pkg:   ".",
		Funcs: []string{"lookupRecord", "cleanLookup"},
	})
	if err != nil {
		t.Fatalf("escape audit of broken fixture: %v", err)
	}
	var hit bool
	for _, f := range findings {
		if f.Func == "cleanLookup" {
			t.Errorf("clean function flagged: %s", f)
		}
		if f.Func == "lookupRecord" && strings.Contains(f.Detail, "moved to heap") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("gate missed the self-referential-slice escape in lookupRecord; findings: %v", findings)
	}
}

// TestDriftDetected pins the drift half of the contract: declaring a
// function the package no longer defines is a finding, so renames
// cannot silently shrink the audited surface.
func TestDriftDetected(t *testing.T) {
	findings, err := escape.AuditPackage("testdata/broken", escape.Hot{
		Pkg:   ".",
		Funcs: []string{"vanished"},
	})
	if err != nil {
		t.Fatalf("escape audit of broken fixture: %v", err)
	}
	var hit bool
	for _, f := range findings {
		if f.Func == "vanished" && f.Pos == "" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("gate missed the vanished declared function; findings: %v", findings)
	}
}

// TestHotFuncsAccessor pins the accessor the alloc guard ties into.
func TestHotFuncsAccessor(t *testing.T) {
	funcs := escape.HotFuncs("./internal/hihash")
	if len(funcs) == 0 {
		t.Fatal("HotFuncs(./internal/hihash) is empty")
	}
	want := map[string]bool{"Set.Contains": false, "Map.Get": false, "fastScan": false}
	for _, fn := range funcs {
		if _, ok := want[fn]; ok {
			want[fn] = true
		}
	}
	for fn, seen := range want {
		if !seen {
			t.Errorf("HotFuncs missing %s", fn)
		}
	}
	if escape.HotFuncs("./no/such/pkg") != nil {
		t.Error("HotFuncs of an undeclared package should be nil")
	}
}
