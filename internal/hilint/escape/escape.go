// Package escape is the static escape-audit gate of the read path: it
// parses the compiler's own escape analysis (`go build -gcflags=-m=2`)
// and asserts that a declared list of hot-path functions — the
// TestLookupAllocs surface and the probeScan/runScan split — compiles
// with zero heap escapes. TestLookupAllocs measures the paths a run
// happens to execute; this gate reads what the compiler proved about
// every path, and fails with the compiler's own escape trace when a
// refactor (the ROADMAP key-width work will churn exactly these
// functions) reintroduces one — the PR 9 regression, where a
// self-referential slice field silently moved the probe record to the
// heap, becomes a build error instead of a benchmark surprise.
//
// Noise discipline: inlined panic paths (checkKey's fmt.Sprintf
// arguments) "escape" at positions inside the hot functions without
// allocating on any non-panicking execution. The gate therefore counts
// only allocation-shaped diagnostics: locals moved to heap, and
// make/new/composite-literal/closure values escaping.
package escape

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Hot declares one package's escape-free function set.
type Hot struct {
	Pkg   string   // package pattern relative to the audit root, e.g. "./internal/hihash"
	Funcs []string // "Recv.Name" for methods, "Name" for functions
}

// HotPaths is the declared hot-path list: every lookup surface
// TestLookupAllocs pins at zero allocations, plus the fixed-buffer half
// of the probeScan/runScan split. internal/hihash's alloc guard imports
// this list and fails if the two drift apart.
func HotPaths() []Hot {
	return []Hot{{
		Pkg: "./internal/hihash",
		Funcs: []string{
			"Set.Contains",
			"Set.displaceContains",
			"fastScan",
			"fastMatches",
			"Map.Get",
			"lookupKV",
			"kvsOf",
			"Set.findKey",
		},
	}}
}

// HotFuncs returns the declared escape-free functions of pkg (as given
// to HotPaths, e.g. "./internal/hihash"), nil if the package is not
// declared.
func HotFuncs(pkg string) []string {
	for _, h := range HotPaths() {
		if h.Pkg == pkg {
			return append([]string(nil), h.Funcs...)
		}
	}
	return nil
}

// Finding is one gate violation.
type Finding struct {
	Func   string // the hot function the escape lies in ("" for a missing function)
	Pos    string // file:line:col of the compiler diagnostic
	Detail string // the compiler's message
}

func (f Finding) String() string {
	if f.Pos == "" {
		return fmt.Sprintf("escape gate: declared hot-path function %s not found — update internal/hilint/escape.HotPaths", f.Func)
	}
	return fmt.Sprintf("%s: escape in hot-path function %s: %s", f.Pos, f.Func, f.Detail)
}

// Audit runs the gate for every declared hot path, with root as the
// module root.
func Audit(root string) ([]Finding, error) {
	var all []Finding
	for _, h := range HotPaths() {
		fs, err := AuditPackage(root, h)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// diagRe matches one compiler diagnostic line; -m=2 repeats each
// diagnostic with a trailing colon and an indented explanation trace,
// which this anchored form skips.
var diagRe = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+?):?$`)

// AuditPackage compiles hot.Pkg under -m=2 and reports
// allocation-shaped escapes inside the declared functions, plus any
// declared function the package no longer defines.
func AuditPackage(root string, hot Hot) ([]Finding, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=2", hot.Pkg)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2 %s: %v\n%s", hot.Pkg, err, out)
	}

	ranges, err := funcRanges(filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(hot.Pkg, "./"))))
	if err != nil {
		return nil, err
	}

	declared := map[string]bool{}
	for _, fn := range hot.Funcs {
		declared[fn] = true
	}

	var findings []Finding
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !allocationShaped(msg) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		fn := enclosing(ranges, filepath.Base(m[1]), lineNo)
		if fn == "" || !declared[fn] {
			continue
		}
		pos := fmt.Sprintf("%s:%s:%s", m[1], m[2], m[3])
		if seen[pos+msg] {
			continue
		}
		seen[pos+msg] = true
		findings = append(findings, Finding{Func: fn, Pos: pos, Detail: msg})
	}

	for _, fn := range hot.Funcs {
		if !rangesDefine(ranges, fn) {
			findings = append(findings, Finding{Func: fn})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

// allocationShaped reports whether a -m diagnostic describes a real
// heap allocation, as opposed to a panic-path interface argument
// "escaping" at an inlined call site.
func allocationShaped(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap") {
		return true
	}
	subject, found := strings.CutSuffix(msg, " escapes to heap")
	if !found {
		return false
	}
	return strings.HasPrefix(subject, "make(") ||
		strings.HasPrefix(subject, "new(") ||
		strings.HasPrefix(subject, "&") ||
		strings.HasPrefix(subject, "[]") ||
		strings.Contains(subject, "literal")
}

// funcRange is one function's position span in its file.
type funcRange struct {
	file  string // base name
	name  string // Recv.Name or Name
	start int
	end   int
}

// funcRanges parses the package directory's non-test sources and
// returns every function declaration's line span.
func funcRanges(dir string) ([]funcRange, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []funcRange
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			out = append(out, funcRange{
				file:  name,
				name:  declName(fd),
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
	}
	return out, nil
}

// declName renders a FuncDecl the way HotPaths spells it.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// enclosing returns the function whose span covers (file base, line).
func enclosing(ranges []funcRange, file string, line int) string {
	for _, r := range ranges {
		if r.file == file && r.start <= line && line <= r.end {
			return r.name
		}
	}
	return ""
}

// rangesDefine reports whether the parsed package defines fn.
func rangesDefine(ranges []funcRange, fn string) bool {
	for _, r := range ranges {
		if r.name == fn {
			return true
		}
	}
	return false
}
