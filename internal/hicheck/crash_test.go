package hicheck

import (
	"strings"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/spec"
)

// Geometry shared by the crash tests: keys 1 and 3 home at group 1, key
// 2 at group 0, one slot per group — so ins3 then ins1 exercises the
// eviction protocol and a grow doubles to four groups.
var crashP = hihash.Params{T: 3, G: 2, B: 1}

func ins(v int) core.Op  { return core.Op{Name: spec.OpInsert, Arg: v} }
func rem(v int) core.Op  { return core.Op{Name: spec.OpRemove, Arg: v} }
func grow() core.Op      { return core.Op{Name: spec.OpGrow} }
func look(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }

// TestCrashRecoveryBounded enumerates crash schedules of the bounded
// twin: every update is one CAS, so every crash depth must leave (after
// the survivor's script) a canonical memory.
func TestCrashRecoveryBounded(t *testing.T) {
	h := hihash.NewSimHarness(crashP, 2, hihash.VariantCanonical)
	c, err := BuildCanon(h, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][][]core.Op{
		{{ins(1), ins(2)}, {rem(1), look(2)}},
		{{ins(2), rem(2)}, {ins(1)}},
	}
	n, err := CheckCrashRecovery(c, h, scripts, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("checked only %d crash schedules", n)
	}
}

// TestCrashRecoveryDisplace enumerates crash schedules of the displacing
// twin across its protocol windows — eviction marks, restore flags, and
// a mid-resize drain — and requires recovery to the canonical layout.
// Every recovery script ends with operations that certainly rebuild: a
// grow (drains everything when it wins the level CAS) followed by a
// remove (whose level-1 path drains every old group when the crash had
// already published the level).
func TestCrashRecoveryDisplace(t *testing.T) {
	if testing.Short() {
		t.Skip("displace crash enumeration is slow")
	}
	h := hihash.NewDisplaceHarness(crashP, 2, hihash.DisplaceCanonical)
	c, err := BuildCanon(h, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][][]core.Op{
		// Crash inside a displacing insert (3 then 1 evicts 3 from its
		// home group).
		{{ins(3), ins(1)}, {grow(), rem(2)}},
		// Crash inside a remove whose backward shift pulls 3 back.
		{{ins(3), ins(1), rem(1)}, {grow(), rem(2)}},
		// Crash inside the grow's drain, keys resident.
		{{ins(2), grow()}, {grow(), rem(1)}},
	}
	n, err := CheckCrashRecovery(c, h, scripts, 0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("checked %d crash schedules", n)
	if n < 20 {
		t.Fatalf("checked only %d crash schedules; expected the windows of three scripts", n)
	}
}

// TestCrashRecoveryCatchesNoShift replays a crash schedule against the
// no-backward-shift ablation: removing a key another key displaced past
// leaves a hole the ablation never refills, so recovery (without a
// rebuild) cannot reach the canonical layout and the checker must object.
func TestCrashRecoveryCatchesNoShift(t *testing.T) {
	if testing.Short() {
		t.Skip("displace crash enumeration is slow")
	}
	good := hihash.NewDisplaceHarness(crashP, 2, hihash.DisplaceCanonical)
	c, err := BuildCanon(good, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	bad := hihash.NewDisplaceHarness(crashP, 2, hihash.DisplaceNoShift)
	scripts := [][][]core.Op{
		{{ins(3), ins(1), rem(1)}, {look(3)}},
	}
	_, err = CheckCrashRecovery(c, bad, scripts, 0, 4000)
	if err == nil {
		t.Fatal("no-shift ablation survived crash-recovery checking")
	}
	if !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("unexpected failure: %v", err)
	}
}
