package hicheck

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/linearize"
	"hiconc/internal/sim"
)

// Scripts enumerates all per-process operation scripts where process i runs
// exactly lens[i] operations drawn from its permitted set. The result can be
// large; keep lens small.
func Scripts(h *harness.Harness, lens []int) [][][]core.Op {
	if len(lens) != h.NumProcs() {
		panic(fmt.Sprintf("hicheck: %d lengths for %d processes", lens, h.NumProcs()))
	}
	var out [][][]core.Op
	current := make([][]core.Op, h.NumProcs())
	var rec func(pid int)
	rec = func(pid int) {
		if pid == h.NumProcs() {
			cp := make([][]core.Op, len(current))
			for i := range current {
				cp[i] = append([]core.Op(nil), current[i]...)
			}
			out = append(out, cp)
			return
		}
		var seqs func(script []core.Op)
		seqs = func(script []core.Op) {
			if len(script) == lens[pid] {
				current[pid] = script
				rec(pid + 1)
				return
			}
			for _, op := range h.ProcOps[pid] {
				seqs(append(script[:len(script):len(script)], op))
			}
		}
		seqs(nil)
	}
	rec(0)
	return out
}

// CheckExhaustive explores every interleaving (up to maxSteps primitive
// steps and the run budget) of every given script set, verifying HI under
// class and, when checkLin is set, linearizability of every trace. It
// returns the number of traces inspected.
func CheckExhaustive(c *Canon, h *harness.Harness, scriptSets [][][]core.Op, class ObsClass, maxSteps, budget int, checkLin bool) (int, error) {
	total := 0
	for _, scripts := range scriptSets {
		if err := h.Validate(scripts); err != nil {
			return total, err
		}
		n, err := sim.Explore(h.Builder(scripts), maxSteps, budget, func(t *sim.Trace) error {
			if err := CheckTrace(c, t, class); err != nil {
				return fmt.Errorf("scripts %v: %w", scripts, err)
			}
			if checkLin {
				if err := linearize.Check(h.Spec, t.Events); err != nil {
					return fmt.Errorf("scripts %v: %w", scripts, err)
				}
			}
			return nil
		})
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CheckRandom fuzzes the implementation with n random schedules per script
// set, verifying HI under class and, when checkLin is set, linearizability.
func CheckRandom(c *Canon, h *harness.Harness, scriptSets [][][]core.Op, class ObsClass, n int, seed int64, maxSteps int, checkLin bool) error {
	for _, scripts := range scriptSets {
		if err := h.Validate(scripts); err != nil {
			return err
		}
		err := sim.RandomTraces(h.Builder(scripts), n, seed, maxSteps, func(t *sim.Trace) error {
			if err := CheckTrace(c, t, class); err != nil {
				return fmt.Errorf("scripts %v: %w", scripts, err)
			}
			if checkLin {
				if err := linearize.Check(h.Spec, t.Events); err != nil {
					return fmt.Errorf("scripts %v: %w", scripts, err)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// FindViolation explores interleavings of the script sets until it finds an
// HI violation under class; it returns nil if the budget is exhausted (or
// the space covered) with no violation. This is the refutation direction:
// for example Algorithm 2 under the Perfect class must yield a witness.
func FindViolation(c *Canon, h *harness.Harness, scriptSets [][][]core.Op, class ObsClass, maxSteps, budget int) *Violation {
	var found *Violation
	for _, scripts := range scriptSets {
		_, err := sim.Explore(h.Builder(scripts), maxSteps, budget, func(t *sim.Trace) error {
			if err := CheckTrace(c, t, class); err != nil {
				if v, ok := err.(*Violation); ok {
					found = v
					return err
				}
				return err
			}
			return nil
		})
		if found != nil {
			return found
		}
		if err != nil && err != sim.ErrBudget {
			return nil
		}
	}
	return nil
}
