package hicheck_test

import (
	"fmt"

	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
)

// BuildCanon enumerates bounded sequential executions and derives the
// canonical memory representation of every reachable state; for Algorithm 2
// the representation of value v is the one-hot array A with A[v] = 1.
func ExampleBuildCanon() {
	h := registers.NewAlg2(3, 1)
	canon, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		panic(err)
	}
	fmt.Println(canon.ByState["2"])
	// Output: [0 1 0]
}

// Algorithm 1 fails already on sequential executions: Write(2);Write(1)
// and Write(1) reach the same state with different memories.
func ExampleBuildCanon_violation() {
	h := registers.NewAlg1(3, 1)
	_, err := hicheck.BuildCanon(h, 2, 400)
	if v, ok := err.(*hicheck.SeqHIViolation); ok {
		fmt.Println("state:", v.State)
	}
	// Output: state: 1
}
