package hicheck_test

import (
	"errors"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
)

func TestCheckExhaustivePasses(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	n, err := hicheck.CheckExhaustive(c, h, hicheck.Scripts(h, []int{1, 1}), hicheck.StateQuiescent, 12, 500000, true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no traces explored")
	}
}

func TestCheckExhaustiveBudget(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	_, err = hicheck.CheckExhaustive(c, h, hicheck.Scripts(h, []int{1, 1}), hicheck.StateQuiescent, 12, 3, false)
	if !errors.Is(err, sim.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestCheckExhaustiveRejectsBadScripts(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][][]core.Op{{{rd}, {rd}}} // the writer cannot run read()
	if _, err := hicheck.CheckExhaustive(c, h, bad, hicheck.StateQuiescent, 12, 1000, false); err == nil {
		t.Fatal("invalid scripts accepted")
	}
}

func TestCheckRandomPasses(t *testing.T) {
	h := registers.NewAlg4(3, 1)
	c, err := hicheck.BuildCanon(h, 3, 800)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][][]core.Op{{{w(2), w(3)}, {rd, rd}}}
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Quiescent, 150, 5, 400, true); err != nil {
		t.Fatal(err)
	}
}

func TestFindViolationFindsPerfectHIWitness(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	v := hicheck.FindViolation(c, h, hicheck.Scripts(h, []int{1, 0}), hicheck.Perfect, 8, 10000)
	if v == nil {
		t.Fatal("no witness found for Algorithm 2 under perfect observation")
	}
	if v.Class != hicheck.Perfect {
		t.Errorf("witness class = %v", v.Class)
	}
}

func TestFindViolationReturnsNilWhenClean(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if v := hicheck.FindViolation(c, h, hicheck.Scripts(h, []int{1, 1}), hicheck.StateQuiescent, 12, 500000); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}
