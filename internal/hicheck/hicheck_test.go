package hicheck_test

import (
	"strings"
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

var (
	rd = core.Op{Name: spec.OpRead}
	w  = func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
)

func TestObsClassOrdering(t *testing.T) {
	// Perfect admits everything; quiescent admits the least.
	cfgs := []sim.Config{
		{Pending: 0, PendingSC: 0},
		{Pending: 1, PendingSC: 0},
		{Pending: 2, PendingSC: 1},
	}
	wantPerfect := []bool{true, true, true}
	wantSQ := []bool{true, true, false}
	wantQ := []bool{true, false, false}
	for i, cfg := range cfgs {
		if got := hicheck.Perfect.Admits(cfg); got != wantPerfect[i] {
			t.Errorf("perfect admits cfg %d = %v", i, got)
		}
		if got := hicheck.StateQuiescent.Admits(cfg); got != wantSQ[i] {
			t.Errorf("state-quiescent admits cfg %d = %v", i, got)
		}
		if got := hicheck.Quiescent.Admits(cfg); got != wantQ[i] {
			t.Errorf("quiescent admits cfg %d = %v", i, got)
		}
	}
}

func TestScriptsEnumeration(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	// Writer has 3 ops, reader 1: lengths (2, 1) => 9 * 1 = 9 script sets.
	got := hicheck.Scripts(h, []int{2, 1})
	if len(got) != 9 {
		t.Fatalf("Scripts(2,1) = %d sets, want 9", len(got))
	}
	seen := map[string]bool{}
	for _, s := range got {
		key := ""
		for _, ops := range s {
			for _, op := range ops {
				key += op.String() + ";"
			}
			key += "|"
		}
		if seen[key] {
			t.Fatalf("duplicate script set %s", key)
		}
		seen[key] = true
	}
}

func TestCanonCoversAllRegisterStates(t *testing.T) {
	h := registers.NewAlg2(4, 2)
	c, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	// One operation reaches every register state (write(v) for each v).
	if len(c.ByState) != 4 {
		t.Fatalf("covered %d states, want 4", len(c.ByState))
	}
	for state, mem := range c.ByState {
		if got := c.ByMem[sim.Fingerprint(mem)]; got != state {
			t.Errorf("ByMem inverse broken for state %q", state)
		}
	}
}

func TestMaxCanonDistanceRegister(t *testing.T) {
	// Algorithm 2's canonical representations are one-hot vectors: any two
	// distinct states differ in exactly 2 positions — which is why perfect
	// HI is impossible for it (Proposition 6 demands distance <= 1).
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.MaxCanonDistance(); d != 2 {
		t.Fatalf("max canonical distance = %d, want 2", d)
	}
}

func TestCheckTraceRejectsNonCanonicalMemory(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Stop a write mid-flight: the final configuration is state-quiescent
	// only if the write completed, so run 1 step and classify under
	// Perfect to force a violation.
	tr := h.BuildScripts([][]core.Op{{w(2)}, nil}).Run(&sim.RoundRobin{}, 1)
	err = hicheck.CheckTrace(c, tr, hicheck.Perfect)
	if err == nil {
		t.Fatal("mid-write memory accepted")
	}
	if !strings.Contains(err.Error(), "not the canonical representation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckTraceAcceptsCompleteRun(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	c, err := hicheck.BuildCanon(h, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	tr := h.BuildScripts([][]core.Op{{w(2)}, {rd}}).Run(&sim.RoundRobin{}, 200)
	if err := hicheck.CheckTrace(c, tr, hicheck.StateQuiescent); err != nil {
		t.Fatal(err)
	}
}

func TestSeqHIViolationMessage(t *testing.T) {
	h := registers.NewAlg1(3, 1)
	_, err := hicheck.BuildCanon(h, 2, 400)
	if err == nil {
		t.Fatal("Algorithm 1 must fail sequential HI")
	}
	msg := err.Error()
	for _, needle := range []string{"two representations", "seq1", "seq2"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("violation message missing %q: %s", needle, msg)
		}
	}
}
