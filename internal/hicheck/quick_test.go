package hicheck_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hiconc/internal/core"
	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
)

// TestQuickAlg2CanonicalUnderRandomHistories: for any random write sequence,
// the memory left by Algorithm 2 depends only on the final value — the
// canonical-representation property of Proposition 3 checked directly.
func TestQuickAlg2CanonicalUnderRandomHistories(t *testing.T) {
	const k = 4
	h := registers.NewAlg2(k, 1)
	run := func(writes []core.Op) ([]string, string) {
		tr := h.BuildScripts([][]core.Op{writes, nil}).Run(&sim.RoundRobin{}, 10000)
		state := "1"
		if len(writes) > 0 {
			state, _ = core.ApplySeq(h.Spec, h.Spec.Init(), writes)
		}
		return tr.MemAt(len(tr.Steps)), state
	}
	byState := map[string]string{}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		writes := make([]core.Op, int(n%12))
		for i := range writes {
			writes[i] = core.Op{Name: "write", Arg: rng.Intn(k) + 1}
		}
		mem, state := run(writes)
		fp := sim.Fingerprint(mem)
		if prev, ok := byState[state]; ok {
			return prev == fp
		}
		byState[state] = fp
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlg4CanonicalWithReads: the same property for Algorithm 4, with
// interleaved (sequential) reads thrown in — reads must not perturb the
// canonical memory either.
func TestQuickAlg4CanonicalWithReads(t *testing.T) {
	const k = 3
	h := registers.NewAlg4(k, 2)
	byState := map[string]string{}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var writes, reads []core.Op
		var all []hicheck.ProcOp
		for i := 0; i < int(n%10); i++ {
			if rng.Intn(3) == 0 {
				reads = append(reads, core.Op{Name: "read"})
				all = append(all, hicheck.ProcOp{PID: 1, Op: core.Op{Name: "read"}})
			} else {
				op := core.Op{Name: "write", Arg: rng.Intn(k) + 1}
				writes = append(writes, op)
				all = append(all, hicheck.ProcOp{PID: 0, Op: op})
			}
		}
		order := make([]int, len(all))
		for i, po := range all {
			order[i] = po.PID
		}
		tr := sim.SequentialOps(h.Builder([][]core.Op{writes, reads}), 10000, func(opIdx int, _ []int) int {
			return order[opIdx]
		})
		if tr.Truncated {
			return false
		}
		state := h.Spec.Init()
		for _, w := range writes {
			state, _ = h.Spec.Apply(state, w)
		}
		fp := sim.Fingerprint(tr.MemAt(len(tr.Steps)))
		if prev, ok := byState[state]; ok {
			return prev == fp
		}
		byState[state] = fp
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
