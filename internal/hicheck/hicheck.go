// Package hicheck verifies history independence of concurrent
// implementations, following the paper's definitions:
//
//   - Definition 4 parameterizes HI by the set of executions at whose final
//     configurations the observer may inspect the memory.
//   - Perfect HI (Definition 5) admits every configuration; state-quiescent
//     HI (Definition 7) admits configurations with no pending state-changing
//     operation; quiescent HI (Definition 8) admits configurations with no
//     pending operation at all.
//
// Checking proceeds in two phases. BuildCanon enumerates sequential
// executions and derives the canonical memory representation can(q) of every
// reachable state (for deterministic implementations, HI forces a canonical
// representation — Proposition 3). CheckTrace then verifies concurrent
// executions: at every observed configuration the memory must equal can(q)
// for a state q consistent with some linearization of the execution so far.
package hicheck

import (
	"fmt"
	"strings"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/linearize"
	"hiconc/internal/sim"
)

// ObsClass selects the observation class of Definition 4.
type ObsClass int

// Observation classes, strongest first.
const (
	// Perfect admits every configuration (Definition 5).
	Perfect ObsClass = iota + 1
	// StateQuiescent admits configurations with no pending state-changing
	// operation (Definition 7).
	StateQuiescent
	// Quiescent admits configurations with no pending operation
	// (Definition 8).
	Quiescent
)

// String implements fmt.Stringer.
func (c ObsClass) String() string {
	switch c {
	case Perfect:
		return "perfect"
	case StateQuiescent:
		return "state-quiescent"
	case Quiescent:
		return "quiescent"
	default:
		return fmt.Sprintf("obs-class(%d)", int(c))
	}
}

// Admits reports whether the class admits the configuration.
func (c ObsClass) Admits(cfg sim.Config) bool {
	switch c {
	case Perfect:
		return true
	case StateQuiescent:
		return cfg.StateQuiescent()
	case Quiescent:
		return cfg.Quiescent()
	default:
		panic("hicheck: unknown observation class")
	}
}

// ProcOp is an operation tagged with the process that runs it; a sequence of
// ProcOps describes a sequential execution.
type ProcOp struct {
	PID int
	Op  core.Op
}

// String implements fmt.Stringer.
func (po ProcOp) String() string { return fmt.Sprintf("p%d:%v", po.PID, po.Op) }

func renderSeq(seq []ProcOp) string {
	parts := make([]string, len(seq))
	for i, po := range seq {
		parts[i] = po.String()
	}
	return strings.Join(parts, ", ")
}

// Canon is the canonical-representation map of an implementation: for every
// abstract state reached by some bounded sequential execution, the unique
// memory representation left by all such executions.
type Canon struct {
	// Spec is the sequential specification.
	Spec core.Spec
	// ByState maps an abstract state to its canonical memory snapshot.
	ByState map[string][]string
	// ByMem maps a memory fingerprint back to the abstract state it
	// canonically represents.
	ByMem map[string]string
	// witness remembers one sequence per state, for error reporting.
	witness map[string][]ProcOp
}

// SeqHIViolation reports two sequential executions that reach the same
// abstract state but leave different memory representations — a violation of
// sequential (weak = strong, by Proposition 3) history independence.
type SeqHIViolation struct {
	State      string
	Seq1, Seq2 []ProcOp
	Mem1, Mem2 []string
}

// Error implements the error interface.
func (v *SeqHIViolation) Error() string {
	return fmt.Sprintf(
		"sequential HI violation: state %q has two representations\n  seq1: %s\n  mem1: %s\n  seq2: %s\n  mem2: %s",
		v.State, renderSeq(v.Seq1), sim.Fingerprint(v.Mem1), renderSeq(v.Seq2), sim.Fingerprint(v.Mem2))
}

// BuildCanon enumerates every sequential execution of up to maxOps
// operations (each operation chosen from any process's permitted set, run to
// completion before the next starts) and builds the canonical map. It
// returns a *SeqHIViolation as the error if two executions reaching the same
// state leave different memories, and a plain error if a sequential run
// misbehaves (wrong response or no termination within maxSteps).
func BuildCanon(h *harness.Harness, maxOps, maxSteps int) (*Canon, error) {
	c := &Canon{
		Spec:    h.Spec,
		ByState: map[string][]string{},
		ByMem:   map[string]string{},
		witness: map[string][]ProcOp{},
	}
	var rec func(seq []ProcOp) error
	rec = func(seq []ProcOp) error {
		if err := c.addSequential(h, seq, maxSteps); err != nil {
			return err
		}
		if len(seq) == maxOps {
			return nil
		}
		for pid := 0; pid < h.NumProcs(); pid++ {
			for _, op := range h.ProcOps[pid] {
				next := append(seq[:len(seq):len(seq)], ProcOp{PID: pid, Op: op})
				if err := rec(next); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(nil); err != nil {
		return nil, err
	}
	return c, nil
}

// addSequential runs one sequential execution and records/checks its final
// memory representation.
func (c *Canon) addSequential(h *harness.Harness, seq []ProcOp, maxSteps int) error {
	scripts := make([][]core.Op, h.NumProcs())
	order := make([]int, len(seq))
	ops := make([]core.Op, len(seq))
	for i, po := range seq {
		scripts[po.PID] = append(scripts[po.PID], po.Op)
		order[i] = po.PID
		ops[i] = po.Op
	}
	t := sim.SequentialOps(h.Builder(scripts), maxSteps, func(opIdx int, _ []int) int {
		if opIdx < len(order) {
			return order[opIdx]
		}
		panic("hicheck: sequential run exceeded its operation sequence")
	})
	if t.Truncated {
		return fmt.Errorf("hicheck: %s: sequential execution %s did not finish within %d steps",
			h.Name, renderSeq(seq), maxSteps)
	}
	// Check responses against the specification.
	wantState, wantResps := core.ApplySeq(c.Spec, c.Spec.Init(), ops)
	got := t.CompletedOps(-1)
	if len(got) != len(seq) {
		return fmt.Errorf("hicheck: %s: sequential execution %s completed %d of %d ops",
			h.Name, renderSeq(seq), len(got), len(seq))
	}
	respIdx := 0
	for _, ev := range t.Events {
		if ev.Kind != sim.EvReturn {
			continue
		}
		if ev.Resp != wantResps[respIdx] {
			return fmt.Errorf("hicheck: %s: sequential execution %s: op %v returned %d, want %d",
				h.Name, renderSeq(seq), ev.Op, ev.Resp, wantResps[respIdx])
		}
		respIdx++
	}
	mem := t.MemAt(len(t.Steps))
	fp := sim.Fingerprint(mem)
	if prev, ok := c.ByState[wantState]; ok {
		if sim.Fingerprint(prev) != fp {
			return &SeqHIViolation{
				State: wantState,
				Seq1:  c.witness[wantState], Mem1: prev,
				Seq2: seq, Mem2: mem,
			}
		}
		return nil
	}
	if owner, ok := c.ByMem[fp]; ok && owner != wantState {
		return fmt.Errorf("hicheck: %s: memory %q represents both state %q and state %q",
			h.Name, fp, owner, wantState)
	}
	c.ByState[wantState] = mem
	c.ByMem[fp] = wantState
	c.witness[wantState] = seq
	return nil
}

// MaxCanonDistance returns the largest Hamming distance between the
// canonical representations of two states adjacent under a single
// state-changing operation. Proposition 6 shows perfect HI requires this to
// be at most 1.
func (c *Canon) MaxCanonDistance() int {
	max := 0
	for state, mem := range c.ByState {
		for _, op := range c.Spec.Ops(state) {
			next, _ := c.Spec.Apply(state, op)
			if next == state {
				continue
			}
			if mem2, ok := c.ByState[next]; ok {
				if d := sim.Distance(mem, mem2); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// Violation reports a concurrent configuration whose memory representation
// is not the canonical representation of a consistent abstract state.
type Violation struct {
	// Class is the observation class under which the violation occurred.
	Class ObsClass
	// ConfigIndex is the configuration C_k at which it was observed.
	ConfigIndex int
	// Mem is the offending memory representation.
	Mem []string
	// Reason describes the failure.
	Reason string
	// Trace is the offending execution.
	Trace *sim.Trace
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("%v HI violation at C_%d: %s\n  mem: %s",
		v.Class, v.ConfigIndex, v.Reason, sim.Fingerprint(v.Mem))
}

// CheckTrace verifies one execution against the canonical map under the
// given observation class: for every admitted configuration, the memory must
// be the canonical representation of some abstract state consistent with a
// linearization of the execution prefix. It returns a *Violation on failure.
func CheckTrace(c *Canon, t *sim.Trace, class ObsClass) error {
	configs := t.Configs()
	for _, cfg := range configs {
		if !class.Admits(cfg) {
			continue
		}
		fp := sim.Fingerprint(cfg.Mem)
		state, ok := c.ByMem[fp]
		if !ok {
			return &Violation{
				Class: class, ConfigIndex: cfg.Index, Mem: cfg.Mem, Trace: t,
				Reason: "memory is not the canonical representation of any state",
			}
		}
		candidates := linearize.FinalStates(c.Spec, prefixEvents(t, cfg.Index))
		if len(candidates) == 0 {
			return &Violation{
				Class: class, ConfigIndex: cfg.Index, Mem: cfg.Mem, Trace: t,
				Reason: "execution prefix is not linearizable",
			}
		}
		if !candidates[state] {
			return &Violation{
				Class: class, ConfigIndex: cfg.Index, Mem: cfg.Mem, Trace: t,
				Reason: fmt.Sprintf("memory canonically represents state %q, which no linearization of the prefix reaches (candidates: %v)",
					state, keys(candidates)),
			}
		}
	}
	return nil
}

// prefixEvents returns the events of the execution prefix ending at
// configuration C_k, preserving order.
func prefixEvents(t *sim.Trace, k int) []sim.Event {
	var out []sim.Event
	for _, ev := range t.Events {
		if ev.StepIndex <= k {
			out = append(out, ev)
		}
	}
	return out
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
