package hicheck

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/linearize"
	"hiconc/internal/sim"
)

// Crash-recovery checking (the E23 sim side): a process is stopped
// mid-operation after an arbitrary number of primitive steps — a thread
// crash — and is never scheduled again; the surviving processes then run
// their scripts to completion. The final memory must be the canonical
// representation of an abstract state some linearization of the whole
// history reaches (the crashed operation, pending forever, may or may
// not have taken effect). Enumerating every crash depth of a script
// visits every protocol window the crashing operation opens.
//
// The check is only as strong as the recovery scripts: a survivor
// repairs the windows its own operations encounter (helping, backward
// shifts) but never patrols groups it does not touch, so recovery
// scripts must end in operations that certainly rebuild the layout — an
// explicit grow (whose drain supersedes parked marks and drops stale
// flags) is the canonical choice.

// CheckCrashRecovery runs, for every script set and every crash depth k
// (1, 2, ... up to the crash process's full run), an execution in which
// process crashPID takes exactly k primitive steps and then crashes
// (never scheduled again), after which the surviving processes run to
// completion. Each final configuration is checked against the canonical
// map as described above. It returns the number of crash schedules
// checked and the first violation found.
func CheckCrashRecovery(c *Canon, h *harness.Harness, scriptSets [][][]core.Op, crashPID, maxSteps int) (int, error) {
	total := 0
	for _, scripts := range scriptSets {
		if err := h.Validate(scripts); err != nil {
			return total, err
		}
		if crashPID < 0 || crashPID >= h.NumProcs() {
			return total, fmt.Errorf("hicheck: crash pid %d out of range", crashPID)
		}
		for depth := 1; ; depth++ {
			t, crashed, err := runCrashSchedule(h, scripts, crashPID, depth, maxSteps)
			if err != nil {
				return total, fmt.Errorf("hicheck: %s: scripts %v, crash depth %d: %w", h.Name, scripts, depth, err)
			}
			total++
			if err := CheckFinal(c, t); err != nil {
				return total, fmt.Errorf("scripts %v, crash depth %d: %w", scripts, depth, err)
			}
			if !crashed {
				// The crash process finished within depth steps: deeper
				// schedules replay the same complete execution.
				break
			}
		}
	}
	return total, nil
}

// runCrashSchedule executes one crash schedule: crashPID runs alone for
// up to depth primitive steps, then is abandoned (its pending operation
// stays pending forever); the surviving processes then run to
// completion, lowest pid first. crashed reports whether the crash
// process was still mid-script when abandoned.
func runCrashSchedule(h *harness.Harness, scripts [][]core.Op, crashPID, depth, maxSteps int) (t *sim.Trace, crashed bool, err error) {
	r := h.BuildScripts(scripts)
	r.Start()
	defer r.Stop()
	for taken := 0; taken < depth && !r.ProcDone(crashPID); {
		for _, pid := range r.Paused() {
			r.Resume(pid)
		}
		if stepRunnable(r, crashPID) {
			taken++
		}
		if len(r.Trace().Steps) > maxSteps {
			return r.Trace(), false, fmt.Errorf("crash prefix exceeded %d steps", maxSteps)
		}
	}
	crashed = !r.ProcDone(crashPID)
	// Recovery: resume and step every process except the crashed one
	// until the survivors are done. The crashed process stays parked at
	// its next primitive forever.
	for {
		progressed := false
		for _, pid := range r.Paused() {
			if pid != crashPID {
				r.Resume(pid)
				progressed = true
			}
		}
		for _, pid := range r.Runnable() {
			if pid != crashPID {
				r.Step(pid)
				progressed = true
				break
			}
		}
		if !progressed {
			return r.Trace(), crashed, nil
		}
		if len(r.Trace().Steps) > maxSteps {
			return r.Trace(), crashed, fmt.Errorf("recovery did not finish within %d steps", maxSteps)
		}
	}
}

// stepRunnable steps pid if it is parked at a primitive, reporting
// whether a step was taken (false means it was paused and only resumed).
func stepRunnable(r *sim.Runner, pid int) bool {
	if _, ok := r.PendingPrim(pid); !ok {
		return false
	}
	r.Step(pid)
	return true
}

// CheckFinal checks the final configuration of a trace against the
// canonical map: the memory must canonically represent a state that some
// linearization of the (possibly incomplete) history reaches. Unlike
// CheckTrace it looks at one configuration and ignores observation
// classes — it is the recovery check, applied after a crash schedule
// where the crashed operation stays pending forever.
func CheckFinal(c *Canon, t *sim.Trace) error {
	k := len(t.Steps)
	mem := t.MemAt(k)
	fp := sim.Fingerprint(mem)
	state, ok := c.ByMem[fp]
	if !ok {
		return &Violation{
			Class: StateQuiescent, ConfigIndex: k, Mem: mem, Trace: t,
			Reason: "post-recovery memory is not the canonical representation of any state",
		}
	}
	candidates := linearize.FinalStates(c.Spec, t.Events)
	if len(candidates) == 0 {
		return &Violation{
			Class: StateQuiescent, ConfigIndex: k, Mem: mem, Trace: t,
			Reason: "crash execution is not linearizable",
		}
	}
	if !candidates[state] {
		return &Violation{
			Class: StateQuiescent, ConfigIndex: k, Mem: mem, Trace: t,
			Reason: fmt.Sprintf("memory canonically represents state %q, which no linearization of the crash history reaches (candidates: %v)",
				state, keys(candidates)),
		}
	}
	return nil
}
