package harness_test

import (
	"testing"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
)

var (
	rd = core.Op{Name: spec.OpRead}
	w  = func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
)

func TestValidate(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	if err := h.Validate([][]core.Op{{w(1), w(3)}, {rd}}); err != nil {
		t.Errorf("valid scripts rejected: %v", err)
	}
	if err := h.Validate([][]core.Op{{rd}, {rd}}); err == nil {
		t.Error("writer running read() should be rejected")
	}
	if err := h.Validate([][]core.Op{{w(1)}}); err == nil {
		t.Error("wrong script count should be rejected")
	}
	if err := h.Validate([][]core.Op{{w(9)}, {rd}}); err == nil {
		t.Error("out-of-domain write should be rejected")
	}
}

func TestCanRunAndStateChangingOps(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	if !h.CanRun(0, w(2)) || h.CanRun(0, rd) {
		t.Error("writer role wrong")
	}
	if !h.CanRun(1, rd) || h.CanRun(1, w(1)) {
		t.Error("reader role wrong")
	}
	sc := h.StateChangingOps()
	if len(sc) != 3 {
		t.Errorf("state-changing ops = %v, want the 3 writes", sc)
	}
}

func TestSliceSource(t *testing.T) {
	src := harness.NewSliceSource([]core.Op{w(1), w(2)})
	if op, ok := src.Next(nil); !ok || op != w(1) {
		t.Fatalf("first = %v, %v", op, ok)
	}
	if op, ok := src.Next(nil); !ok || op != w(2) {
		t.Fatalf("second = %v, %v", op, ok)
	}
	if _, ok := src.Next(nil); ok {
		t.Fatal("exhausted source should report ok = false")
	}
}

func TestFeedDrivesPausedProcess(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	feed := harness.NewFeed()
	r := h.Build([]harness.OpSource{feed, harness.NewSliceSource(nil)})
	r.Start()
	defer r.Stop()
	// The writer parks on the empty feed.
	if got := r.Paused(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("paused = %v", got)
	}
	feed.Push(w(2))
	r.Resume(0)
	for {
		if _, ok := r.PendingPrim(0); !ok {
			break
		}
		r.Step(0)
	}
	if got := len(r.Trace().Responses(0)); got != 1 {
		t.Fatalf("writer completed %d ops", got)
	}
	// Back to parked; closing the feed finishes the process.
	feed.Close()
	r.Resume(0)
	for {
		if _, ok := r.PendingPrim(0); !ok {
			break
		}
		r.Step(0)
	}
	if !r.ProcDone(0) {
		t.Fatal("writer should be done after the feed closed")
	}
}

func TestBuilderIsFresh(t *testing.T) {
	h := registers.NewAlg2(3, 1)
	build := h.Builder([][]core.Op{{w(2)}, nil})
	t1 := build().Run(&sim.RoundRobin{}, 100)
	t2 := build().Run(&sim.RoundRobin{}, 100)
	if sim.Fingerprint(t1.MemAt(len(t1.Steps))) != sim.Fingerprint(t2.MemAt(len(t2.Steps))) {
		t.Fatal("two builds of the same scripts diverged")
	}
}
