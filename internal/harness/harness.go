// Package harness bundles a concurrent implementation with its sequential
// specification and the roles of its processes, so that checkers, fuzzers
// and adversaries can drive any implementation uniformly.
package harness

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

// Harness describes one implementation under test.
type Harness struct {
	// Name identifies the implementation (e.g. "alg2").
	Name string
	// Spec is the sequential specification of the implemented object.
	Spec core.Spec
	// ProcOps lists, per process, the operations that process may invoke.
	// Its length is the number of processes.
	ProcOps [][]core.Op
	// Build constructs a fresh runner in which process i draws its
	// operations from srcs[i].
	Build func(srcs []OpSource) *sim.Runner
}

// BuildScripts constructs a runner in which process i executes the fixed
// script scripts[i].
func (h *Harness) BuildScripts(scripts [][]core.Op) *sim.Runner {
	return h.Build(SliceSources(scripts))
}

// NumProcs returns the number of processes of the implementation.
func (h *Harness) NumProcs() int { return len(h.ProcOps) }

// Validate checks that every script entry is permitted for its process.
func (h *Harness) Validate(scripts [][]core.Op) error {
	if len(scripts) != h.NumProcs() {
		return fmt.Errorf("harness %s: %d scripts for %d processes", h.Name, len(scripts), h.NumProcs())
	}
	for pid, script := range scripts {
		for _, op := range script {
			if !h.CanRun(pid, op) {
				return fmt.Errorf("harness %s: process %d cannot run %v", h.Name, pid, op)
			}
		}
	}
	return nil
}

// CanRun reports whether process pid may invoke op.
func (h *Harness) CanRun(pid int, op core.Op) bool {
	for _, o := range h.ProcOps[pid] {
		if o == op {
			return true
		}
	}
	return false
}

// Builder returns a sim.Builder running the given scripts.
func (h *Harness) Builder(scripts [][]core.Op) sim.Builder {
	return func() *sim.Runner { return h.BuildScripts(scripts) }
}

// StateChangingOps returns all state-changing operations any process may run,
// de-duplicated, in a deterministic order.
func (h *Harness) StateChangingOps() []core.Op {
	seen := map[core.Op]bool{}
	var out []core.Op
	for _, ops := range h.ProcOps {
		for _, op := range ops {
			if !h.Spec.ReadOnly(op) && !seen[op] {
				seen[op] = true
				out = append(out, op)
			}
		}
	}
	return out
}
