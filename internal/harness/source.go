package harness

import (
	"sync"

	"hiconc/internal/core"
	"hiconc/internal/sim"
)

// OpSource supplies a process's operations one at a time. Fixed scripts use
// SliceSource; adaptive drivers (such as the Theorem 17 adversary, which
// chooses the changer's next operation based on the reader's position) use
// Feed, which pauses the process while no operation is available.
type OpSource interface {
	// Next returns the process's next operation; ok is false when the
	// process should finish. Implementations may park the process via p.
	Next(p *sim.Proc) (op core.Op, ok bool)
}

// SliceSource is a fixed operation script.
type SliceSource struct {
	ops []core.Op
	idx int
}

var _ OpSource = (*SliceSource)(nil)

// NewSliceSource returns a source yielding ops in order.
func NewSliceSource(ops []core.Op) *SliceSource {
	return &SliceSource{ops: ops}
}

// Next implements OpSource.
func (s *SliceSource) Next(*sim.Proc) (core.Op, bool) {
	if s.idx >= len(s.ops) {
		return core.Op{}, false
	}
	op := s.ops[s.idx]
	s.idx++
	return op, true
}

// SliceSources wraps per-process scripts as sources.
func SliceSources(scripts [][]core.Op) []OpSource {
	srcs := make([]OpSource, len(scripts))
	for i, script := range scripts {
		srcs[i] = NewSliceSource(script)
	}
	return srcs
}

// Feed is an adaptive operation source. The driver pushes operations from
// outside the runner between steps; while the feed is empty the process
// pauses (leaving the runnable set) until the driver resumes it. The mutex
// makes the handoff race-detector clean even though pushes and reads are
// already serialized by the runner's lock-step protocol.
type Feed struct {
	mu     sync.Mutex
	ops    []core.Op
	closed bool
}

var _ OpSource = (*Feed)(nil)

// NewFeed returns an empty feed.
func NewFeed() *Feed { return &Feed{} }

// Push appends operations for the process to execute.
func (f *Feed) Push(ops ...core.Op) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		panic("harness: Push on a closed Feed")
	}
	f.ops = append(f.ops, ops...)
}

// Close marks the feed exhausted: once drained, the process finishes.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
}

// Next implements OpSource.
func (f *Feed) Next(p *sim.Proc) (core.Op, bool) {
	for {
		f.mu.Lock()
		if len(f.ops) > 0 {
			op := f.ops[0]
			f.ops = f.ops[1:]
			f.mu.Unlock()
			return op, true
		}
		closed := f.closed
		f.mu.Unlock()
		if closed {
			return core.Op{}, false
		}
		p.Pause()
	}
}
