// Voting: the paper's motivating application domain (history-independent
// voting machines, [14] in the paper). A ballot box must reveal the tally —
// and nothing else: not who voted when, not the order of votes, not votes
// that were cast and corrected.
//
// This example defines a custom tally object (a user-supplied conc.Object)
// and runs it through the universal construction, then contrasts it with a
// naive append-a-log ballot box whose memory representation leaks the exact
// voting order.
//
// Run with: go run ./examples/voting
package main

import (
	"fmt"
	"sync"

	"hiconc/internal/conc"
	"hiconc/internal/core"
)

// candidates in the running.
var candidates = []string{"Ada", "Barbara", "Grace"}

// tallyObj is a history-independent ballot box: its abstract state is just
// the per-candidate counts (an immutable [3]int value).
type tallyObj struct{}

func (tallyObj) Name() string { return "tally" }
func (tallyObj) Init() any    { return [3]int{} }

func (tallyObj) Apply(state any, op core.Op) (any, int) {
	t := state.([3]int)
	switch op.Name {
	case "vote":
		t[op.Arg]++ // t is a copy: arrays are values
		return t, 0
	case "count":
		return state, t[op.Arg]
	default:
		panic("tally: unknown op " + op.Name)
	}
}

func (tallyObj) ReadOnly(op core.Op) bool { return op.Name == "count" }

// naiveBallotBox is what NOT to do: it appends every ballot to a log. The
// final state is the same tally, but the memory representation is the
// sequence of votes — an observer who seizes the machine learns the order
// (and with timestamps or precinct order, the voters).
type naiveBallotBox struct {
	mu  sync.Mutex
	log []int
}

func (b *naiveBallotBox) vote(c int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.log = append(b.log, c)
}

func (b *naiveBallotBox) memory() string { return fmt.Sprint(b.log) }

func main() {
	const voters = 3

	runElection := func(ballots [][]int) (string, [3]int) {
		box := conc.NewUniversal(tallyObj{}, voters)
		var wg sync.WaitGroup
		for pid, bs := range ballots {
			wg.Add(1)
			go func(pid int, bs []int) {
				defer wg.Done()
				for _, c := range bs {
					box.Apply(pid, core.Op{Name: "vote", Arg: c})
				}
			}(pid, bs)
		}
		wg.Wait()
		return box.Snapshot(), box.State().([3]int)
	}

	// Two elections with the same outcome but different voting orders.
	memA, tallyA := runElection([][]int{{0, 0, 1}, {2, 1}, {0}})
	memB, tallyB := runElection([][]int{{1, 2}, {0, 0}, {1, 0}})

	fmt.Println("election A tally:", render(tallyA))
	fmt.Println("election B tally:", render(tallyB))
	fmt.Println("election A memory:", memA)
	fmt.Println("election B memory:", memB)
	if memA == memB {
		fmt.Println("=> the HI ballot box reveals the tally and nothing else")
	} else {
		fmt.Println("=> HISTORY LEAK (this should never happen)")
	}

	// The naive box leaks the order.
	naiveA, naiveB := &naiveBallotBox{}, &naiveBallotBox{}
	for _, c := range []int{0, 0, 1, 2, 1, 0} {
		naiveA.vote(c)
	}
	for _, c := range []int{1, 2, 0, 0, 1, 0} {
		naiveB.vote(c)
	}
	fmt.Println()
	fmt.Println("naive log A:", naiveA.memory())
	fmt.Println("naive log B:", naiveB.memory())
	fmt.Println("=> same tally, different memory: the naive box leaks who voted when")
}

func render(t [3]int) string {
	s := ""
	for i, c := range candidates {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", c, t[i])
	}
	return s
}
