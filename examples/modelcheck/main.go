// Modelcheck: using the repository's verification framework on your own
// concurrent implementation. We write a tiny flag object two ways — a
// correct single-cell version and a "denormalized" two-cell version that
// caches the complement — and let the checker find the history leak in the
// latter.
//
// The framework pieces used here are exactly the ones that verify the
// paper's algorithms: a sequential specification (core.Spec), a harness that
// builds simulator programs, the canonical-map builder (Proposition 3), and
// the exhaustive interleaving checker for Definition 5/7/8 observation
// classes.
//
// Run with: go run ./examples/modelcheck
package main

import (
	"fmt"

	"hiconc/internal/core"
	"hiconc/internal/harness"
	"hiconc/internal/hicheck"
	"hiconc/internal/sim"
)

// flagSpec is a single bit with set/clear/get.
type flagSpec struct{}

func (flagSpec) Name() string { return "flag" }
func (flagSpec) Init() string { return "0" }

func (flagSpec) Apply(state string, op core.Op) (string, int) {
	switch op.Name {
	case "set":
		return "1", 0
	case "clear":
		return "0", 0
	case "get":
		if state == "1" {
			return state, 1
		}
		return state, 0
	default:
		panic("flag: unknown op " + op.Name)
	}
}

func (flagSpec) ReadOnly(op core.Op) bool { return op.Name == "get" }

func (flagSpec) Ops(string) []core.Op {
	return []core.Op{{Name: "set"}, {Name: "clear"}, {Name: "get"}}
}

// goodHarness stores the flag in one binary register: perfect HI.
func goodHarness(n int) *harness.Harness {
	return flagHarness("flag-good", n, false)
}

// badHarness "optimizes" reads by caching the complement in a second
// register — and updates the two cells lazily, so the pair (bit, cache)
// remembers which operation ran last. The checker catches it.
func badHarness(n int) *harness.Harness {
	return flagHarness("flag-bad", n, true)
}

func flagHarness(name string, n int, cacheComplement bool) *harness.Harness {
	s := flagSpec{}
	procOps := make([][]core.Op, n)
	for i := range procOps {
		procOps[i] = s.Ops("")
	}
	return &harness.Harness{
		Name:    name,
		Spec:    s,
		ProcOps: procOps,
		Build: func(srcs []harness.OpSource) *sim.Runner {
			mem := sim.NewMemory()
			bit := mem.NewBinReg("bit", 0)
			var cache *sim.Reg
			if cacheComplement {
				cache = mem.NewBinReg("cache", 1)
			}
			progs := make([]sim.Program, n)
			for i := range progs {
				src := srcs[i]
				progs[i] = func(p *sim.Proc) {
					for op, ok := src.Next(p); ok; op, ok = src.Next(p) {
						switch op.Name {
						case "set":
							p.Invoke(op, true)
							p.Write(bit, 1)
							if cacheComplement {
								p.Write(cache, 0)
							}
							p.Return(0)
						case "clear":
							p.Invoke(op, true)
							p.Write(bit, 0)
							// BUG: the lazy "optimization" skips the cache
							// update on clear, so memory remembers whether
							// the last transition was set->clear or fresh.
							p.Return(0)
						case "get":
							p.Invoke(op, false)
							p.Return(p.ReadInt(bit))
						}
					}
				}
			}
			return sim.NewRunner(mem, progs)
		},
	}
}

func check(h *harness.Harness) {
	fmt.Printf("checking %s ...\n", h.Name)
	canon, err := hicheck.BuildCanon(h, 3, 200)
	if err != nil {
		fmt.Printf("  sequential HI: %v\n", err)
		return
	}
	fmt.Printf("  sequential HI: ok (%d canonical states)\n", len(canon.ByState))
	scripts := hicheck.Scripts(h, []int{1, 1})
	nTraces, err := hicheck.CheckExhaustive(canon, h, scripts, hicheck.Perfect, 8, 100000, true)
	if err != nil {
		fmt.Printf("  concurrent check: %v\n", err)
		return
	}
	fmt.Printf("  concurrent check: ok (%d interleavings, perfect HI + linearizable)\n", nTraces)
}

func main() {
	check(goodHarness(2))
	fmt.Println()
	check(badHarness(2))
	fmt.Println()
	fmt.Println("(the cached-complement version leaks: state 0 has two memory")
	fmt.Println(" representations depending on whether a set ever happened)")
}
