// Register: the Section 4 story on native hardware. Three SWSR multi-valued
// registers from binary registers (atomic int32 cells):
//
//   - Algorithm 1 (Vidyasankar): wait-free but leaks history — after
//     Write(3); Write(1) the stale 1 at position 3 reveals the old value.
//   - Algorithm 2: state-quiescent HI, but the read is only lock-free: a
//     write storm makes it retry.
//   - Algorithm 4: wait-free AND quiescent HI — the writer helps the reader
//     through the B array and everyone cleans up after themselves.
//
// Run with: go run ./examples/register
package main

import (
	"fmt"
	"sync"
	"time"

	"hiconc/internal/conc"
)

func main() {
	const k = 8

	fmt.Println("-- Algorithm 1 leaks history --")
	a := conc.NewAlg1Register(k, 1)
	a.Write(3)
	a.Write(1)
	b := conc.NewAlg1Register(k, 1)
	b.Write(1)
	fmt.Printf("after Write(3);Write(1): A = %s (reads %d)\n", a.Snapshot(), a.Read())
	fmt.Printf("after Write(1):          A = %s (reads %d)\n", b.Snapshot(), b.Read())
	fmt.Println("=> same value, different memory: the old value 3 is visible")

	fmt.Println()
	fmt.Println("-- Algorithm 2 is history independent (state-quiescent) --")
	c := conc.NewAlg2Register(k, 1)
	c.Write(3)
	c.Write(1)
	d := conc.NewAlg2Register(k, 1)
	d.Write(1)
	fmt.Printf("after Write(3);Write(1): A = %s\n", c.Snapshot())
	fmt.Printf("after Write(1):          A = %s\n", d.Snapshot())
	fmt.Println("=> identical canonical memory (one-hot at the current value)")

	fmt.Println()
	fmt.Println("-- but Algorithm 2's reader may retry under writes --")
	r2 := conc.NewAlg2Register(k, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 1
		for {
			select {
			case <-stop:
				return
			default:
				v = v%k + 1
				r2.Write(v)
			}
		}
	}()
	reads, retries := 0, 0
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		_, rt := r2.Read()
		reads++
		retries += rt
	}
	close(stop)
	wg.Wait()
	fmt.Printf("under a write storm: %d reads, %d retries (lock-free, not wait-free)\n", reads, retries)

	fmt.Println()
	fmt.Println("-- Algorithm 4: wait-free and quiescent HI --")
	r4 := conc.NewAlg4Register(k, 1)
	stop4 := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 1
		for {
			select {
			case <-stop4:
				return
			default:
				v = v%k + 1
				r4.Write(v)
			}
		}
	}()
	reads4 := 0
	deadline = time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		r4.Read() // bounded: at most two scan attempts, then B has a value
		reads4++
	}
	close(stop4)
	wg.Wait()
	fmt.Printf("under the same storm: %d reads, every one bounded\n", reads4)
	r4.Write(5)
	fmt.Printf("quiescent memory: %s (A one-hot, B empty, flags clear)\n", r4.Snapshot())
}
