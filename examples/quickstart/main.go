// Quickstart: a wait-free history-independent counter shared by four
// goroutines (the universal construction of Section 6 under the hood).
//
// The punchline of history independence: after the dust settles, the shared
// memory representation depends only on the counter's value — two instances
// that reached the same value through completely different operation
// histories have byte-identical memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"hiconc/internal/obj"
)

func main() {
	const n = 4
	counter := obj.NewCounter(n)

	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h := counter.Handle(pid)
			for i := 0; i < 1000; i++ {
				h.Inc()
			}
			for i := 0; i < 500; i++ {
				h.Dec()
			}
		}(pid)
	}
	wg.Wait()

	fmt.Println("value after 4×(1000 inc, 500 dec):", counter.Value())
	fmt.Println("memory:", counter.Snapshot())

	// A second counter with a totally different history but the same value.
	other := obj.NewCounter(n)
	h := other.Handle(2)
	for i := 0; i < 2000; i++ {
		h.Inc()
	}
	if other.Value() != counter.Value() {
		panic("values differ")
	}
	fmt.Println("other :", other.Snapshot())
	if other.Snapshot() == counter.Snapshot() {
		fmt.Println("=> identical memory for identical state: the history is unobservable")
	} else {
		fmt.Println("=> HISTORY LEAK (this should never happen)")
	}
}
