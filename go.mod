module hiconc

go 1.24
