package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestSmoke renders all three trace figures in-process and checks that
// the annotated configurations appear.
func TestSmoke(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runE3()
	runE6()
	runE25()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	for _, want := range []string{"E3", "E6", "E25", "native flight recording", ">>> invoke", "<<< return"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
