// Command hitrace renders paper-figure-style execution traces:
//
//	E3 — Figure 1: an annotated execution of Algorithm 2 with each
//	     configuration tagged by the observation classes that admit it
//	     (P = mid-update, perfect HI only; S = state-quiescent;
//	     Q = quiescent).
//	E6 — Figure 3: the head-mode alternation of the universal construction
//	     (mode A ⟨q,⊥⟩ to mode B ⟨q',⟨r,j⟩⟩ and back).
//	E25 — a Figure-1-style timeline of a real execution: a displacing
//	      insert storm racing lookups on the native hash set, captured by
//	      the flight recorder (internal/hirec) and rendered event by
//	      event with the protocol steps each goroutine performed.
//
// E3 and E6 render simulated schedules, so their output is
// deterministic; E25 records a live run, so its interleaving (and the
// timestamps) differ run to run.
//
// Usage:
//
//	hitrace [-exp E3,E6,E25|all]
package main

import (
	"flag"
	"fmt"
	"strings"
	"sync"

	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/llsc"
	"hiconc/internal/obj"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
	"hiconc/internal/universal"
)

var expFlag = flag.String("exp", "all", "experiments to render: E3, E6, E25 or 'all'")

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	if all || want["E3"] {
		runE3()
	}
	if all || want["E6"] {
		runE6()
	}
	if all || want["E25"] {
		runE25()
	}
}

func runE3() {
	fmt.Println("=== E3 (Figure 1): Write(2) ‖ Read on Algorithm 2, K=4")
	h := registers.NewAlg2(4, 4)
	scripts := [][]core.Op{
		{{Name: spec.OpWrite, Arg: 2}},
		{{Name: spec.OpRead}},
	}
	// Interleave: the reader scans while the write is mid-flight, as in
	// Figure 1's points ② and ③.
	sch := &sim.Phases{List: []sim.Phase{
		{PID: 0, Steps: 2}, {PID: 1, Steps: 3}, {PID: 0, Steps: 10}, {PID: 1, Steps: 20},
	}}
	tr := h.BuildScripts(scripts).Run(sch, 200)
	fmt.Print(trace.Figure1(tr))
	fmt.Println("legend: P = state-changing op pending (perfect HI observers only)")
	fmt.Println("        S = state-quiescent (Definition 7)   Q = quiescent (Definition 8)")
	fmt.Println()
}

func runE6() {
	fmt.Println("=== E6 (Figure 3): head-mode alternation of Algorithm 5 (counter, n=2, CAS cells)")
	h := universal.CounterHarness(4, 2, llsc.CASFactory{}, universal.Full)
	inc := core.Op{Name: spec.OpInc}
	dec := core.Op{Name: spec.OpDec}
	tr := h.BuildScripts([][]core.Op{{inc, inc}, {inc, dec}}).Run(&sim.RoundRobin{Quantum: 3}, 2000)
	fmt.Print(trace.HeadModes(tr))
	fmt.Println("(mode A = <q,⊥>, mode B = <q',<r,pj>>; Invariant 22: the two strictly alternate,")
	fmt.Println(" and each B->A transition erases the response while preserving the state)")
	fmt.Println()
	fmt.Println("operations (responses are fetch-and-inc/dec previous values):")
	fmt.Print(trace.Summary(tr))
	fmt.Println()
}

func runE25() {
	fmt.Println("=== E25: native flight recording — displacing inserts ‖ lookups on obj.HashSet")
	const domain, groups = 8, 2
	// The keys homing at group 0: one more than the group holds, inserted
	// largest first so the final (smallest, highest-priority) insert must
	// mark a resident for relocation — the recorded protocol steps show
	// the displacement happening.
	var heavy []int
	for k := 1; k <= domain; k++ {
		if hihash.GroupOf(k, groups) == 0 {
			heavy = append(heavy, k)
		}
	}
	if len(heavy) > hihash.SlotsPerGroup+1 {
		heavy = heavy[:hihash.SlotsPerGroup+1]
	}
	flight := hirec.Enable(1 << 10)
	s := obj.NewHashSetWithGroups(domain, groups)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := len(heavy) - 1; i >= 0; i-- {
			s.Insert(heavy[i])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			s.Contains(heavy[i%len(heavy)])
		}
	}()
	wg.Wait()
	hirec.Disable()
	fmt.Print(trace.NativeTimeline(flight.Snapshot()))
	fmt.Println("legend: >>> invoke and <<< return bracket one operation (gN = recorder lane);")
	fmt.Println("        · step marks a labeled protocol CAS performed inside some operation")
	fmt.Println("(a live run: the interleaving and timestamps differ between invocations)")
}
