// Command histarve runs the constructive impossibility adversaries:
//
//	E4 — the Theorem 17 (Lemma 15/16) adversary against the SWSR register
//	     algorithms: it starves Algorithm 2's reader indefinitely and is
//	     defeated by Algorithm 4 (which is outside the theorem's
//	     hypotheses).
//	E5 — the Theorem 20 (Appendix C) adversary against the queue-with-Peek
//	     from binary registers.
//
// Usage:
//
//	histarve [-exp E4,E5|all] [-rounds N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hiconc/internal/adversary"
	"hiconc/internal/hicheck"
	"hiconc/internal/registers"
)

var (
	expFlag    = flag.String("exp", "all", "experiments to run: E4, E5 or 'all'")
	roundsFlag = flag.Int("rounds", 1000, "maximum adversary rounds")
)

func main() {
	flag.Parse()
	if !runSelected() {
		os.Exit(1)
	}
}

// runSelected runs the experiments named by -exp and reports overall
// success (split from main so the smoke tests can drive it in-process).
func runSelected() bool {
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	ok := true
	if all || want["E4"] {
		ok = runE4() && ok
	}
	if all || want["E5"] {
		ok = runE5() && ok
	}
	return ok
}

func runE4() bool {
	fmt.Println("=== E4: Theorem 17 adversary (K-valued register from binary registers)")
	fmt.Printf("%8s %8s %-50s\n", "K", "rounds", "outcome")
	ok := true
	for _, k := range []int{3, 4, 5} {
		h := registers.NewAlg2(k, 1)
		canon, err := hicheck.BuildCanon(h, 1, 400)
		if err != nil {
			fmt.Println("  canon:", err)
			return false
		}
		res, err := adversary.Run(h, adversary.RegisterConfig(k), canon, *roundsFlag)
		if err != nil {
			fmt.Println("  run:", err)
			return false
		}
		fmt.Printf("%8d %8d alg2: %v\n", k, res.Rounds, res)
		ok = ok && res.Starved
	}
	h := registers.NewAlg4(3, 1)
	canon, err := hicheck.BuildCanon(h, 1, 800)
	if err != nil {
		fmt.Println("  canon:", err)
		return false
	}
	res, err := adversary.Run(h, adversary.RegisterConfig(3), canon, *roundsFlag)
	if err != nil {
		fmt.Println("  run:", err)
		return false
	}
	fmt.Printf("%8d %8d alg4: %v\n", 3, res.Rounds, res)
	ok = ok && !res.Starved
	if ok {
		fmt.Println("  conclusion: the adversary starves the state-quiescent HI implementation")
		fmt.Println("  (so it cannot be wait-free) and is defeated by the quiescent-HI-only one.")
	}
	return ok
}

func runE5() bool {
	fmt.Println("=== E5: Theorem 20 adversary (queue with Peek from binary registers)")
	fmt.Printf("%8s %8s %-50s\n", "t", "rounds", "outcome")
	ok := true
	for _, t := range []int{2, 3, 4} {
		h := registers.NewHIQueue(t, 2)
		canon, err := hicheck.BuildCanon(h, 2, 1500)
		if err != nil {
			fmt.Println("  canon:", err)
			return false
		}
		res, err := adversary.Run(h, adversary.QueueConfig(t), canon, *roundsFlag)
		if err != nil {
			fmt.Println("  run:", err)
			return false
		}
		fmt.Printf("%8d %8d hiqueue: %v\n", t, res.Rounds, res)
		ok = ok && res.Starved
	}
	if ok {
		fmt.Println("  conclusion: Peek starves — no wait-free state-quiescent HI queue")
		fmt.Println("  with Peek exists over base objects with fewer than t+1 states.")
	}
	return ok
}
