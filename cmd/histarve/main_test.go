package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestSmoke runs the Theorem 17 adversary with a small round budget and
// requires the expected outcome (Algorithm 2 starved, Algorithm 4 not).
func TestSmoke(t *testing.T) {
	*expFlag = "E4"
	*roundsFlag = 200
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ok := runSelected()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if !ok {
		t.Fatalf("histarve -exp E4 failed:\n%s", out)
	}
	if !strings.Contains(string(out), "conclusion") {
		t.Errorf("output missing the E4 conclusion:\n%s", out)
	}
}
