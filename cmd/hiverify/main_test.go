package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestSmoke runs the two cheapest verification experiments in-process and
// requires overall success: E1 (the Algorithm 1 refutation) and E21 (the
// HICHT hash table checks).
func TestSmoke(t *testing.T) {
	*expFlag = "E1,E21"
	*deepFlag = false
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ok := runSelected()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if !ok {
		t.Fatalf("hiverify -exp E1,E21 failed:\n%s", out)
	}
	for _, want := range []string{"REFUTED(expected)", "PASS"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeE23 runs the adversarial-observer family in-process: twin
// raw dumps, sim crash-schedule enumeration, and the native Kill matrix.
func TestSmokeE23(t *testing.T) {
	if testing.Short() {
		t.Skip("E23 enumerates displacing crash schedules")
	}
	*expFlag = "E23"
	*deepFlag = false
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ok := runSelected()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if !ok {
		t.Fatalf("hiverify -exp E23 failed:\n%s", out)
	}
	for _, want := range []string{"bounded twins", "displacing twins", "sim crash schedules", "native Kill matrix"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeE25 runs the flight-recorder family in-process: a recorded
// native stress run and a recorded faultinject crash schedule, both
// machine-checked for linearizability, plus the corruption rejection.
func TestSmokeE25(t *testing.T) {
	*expFlag = "E25"
	*deepFlag = false
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ok := runSelected()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if !ok {
		t.Fatalf("hiverify -exp E25 failed:\n%s", out)
	}
	for _, want := range []string{"recorded stress run", "recorded crash schedule", "corrupted recording rejected", "linearizable"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeE26 runs the read-path family in-process: a recorded
// lookup-heavy run machine-checked for linearizability, reads against
// a parked relocation mark, and twin raw dumps built under concurrent
// reader hammering.
func TestSmokeE26(t *testing.T) {
	*expFlag = "E26"
	*deepFlag = false
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ok := runSelected()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if !ok {
		t.Fatalf("hiverify -exp E26 failed:\n%s", out)
	}
	for _, want := range []string{"recorded lookup-heavy run", "park-at-mark", "twins under readers"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
