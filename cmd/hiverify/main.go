// Command hiverify runs the verification suite that reproduces the paper's
// claims as executable checks: the Table 1 possibility/impossibility matrix
// for SWSR registers, the Section 5.1 positive results (max register, set),
// the universal construction of Section 6 with its ablations, the
// Algorithm 6 R-LLSC properties, and the HICHT hash table of
// internal/hihash — the bounded group-word design (E21), the unbounded
// displacing, online-resizing one (E22), the adversarial-observer
// family (E23): raw-memory twin dumps, enumerated crash schedules on the
// simulated twins, and the native Kill matrix over every labeled
// protocol step — the flight recorder (E25): native concurrent runs
// and faultinject crash schedules captured by internal/hirec and
// machine-checked for linearizability post hoc — and the E26 read
// path: a recorded lookup-heavy run machine-checked for
// linearizability, reads against a parked relocation mark, and twin
// raw dumps built under concurrent reader hammering.
//
// Usage:
//
//	hiverify [-exp E1,E2,...|all] [-deep]
//
// Each experiment prints PASS/REFUTED lines; REFUTED(expected) marks
// violations the paper predicts (impossibility witnesses).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"

	"hiconc/internal/core"
	"hiconc/internal/faultinject"
	"hiconc/internal/harness"
	"hiconc/internal/hicheck"
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/linearize"
	"hiconc/internal/llsc"
	"hiconc/internal/obj"
	"hiconc/internal/registers"
	"hiconc/internal/sim"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
	"hiconc/internal/universal"
)

var (
	expFlag  = flag.String("exp", "all", "comma-separated experiment ids (E1,E2,E6,E7,E8,E9,E13,E14,E15,E21,E22,E23,E25,E26) or 'all'")
	deepFlag = flag.Bool("deep", false, "use deeper exploration bounds (slower)")
)

func main() {
	flag.Parse()
	if !runSelected() {
		os.Exit(1)
	}
}

// runSelected runs the experiments named by -exp and reports overall
// success (split from main so the smoke tests can drive it in-process).
func runSelected() bool {
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	failed := false
	run := func(id, title string, f func() error) {
		if !all && !want[id] {
			return
		}
		fmt.Printf("=== %s: %s\n", id, title)
		if err := f(); err != nil {
			failed = true
			fmt.Printf("    FAILED: %v\n", err)
		}
	}

	run("E1", "Algorithm 1 is not history independent (Section 4)", runE1)
	run("E2", "Table 1: the SWSR register possibility matrix", runE2)
	run("E6", "Universal construction: linearizable, wait-free, state-quiescent HI (Theorem 32)", runE6)
	run("E7", "Ablation: removing the RL lines breaks quiescent HI (Lemma 27)", runE7)
	run("E8", "Ablation: removing the escape hatches breaks wait-freedom", runE8)
	run("E9", "Algorithm 6: R-LLSC from CAS (Theorem 28)", runE9)
	run("E13", "Proposition 19: the reader must write", runE13)
	run("E14", "Section 5.1: max register and set positive results", runE14)
	run("E15", "Baseline: the Fatourou-Kallimanis-style universal construction is not HI", runE15)
	run("E21", "HICHT hash table: perfect HI and linearizable; append ablation refuted", runE21)
	run("E22", "Unbounded HICHT: displacement + online resize are SQHI and linearizable; perfect HI provably lost", runE22)
	run("E23", "Adversarial observers: twin raw dumps indistinguishable; every crash point recovers to canonical", runE23)
	run("E25", "Flight recorder: native executions captured and machine-checked for linearizability", runE25)
	run("E26", "Fast-path reads: lookup-heavy runs linearizable; reads correct against parked marks; twin dumps identical under readers", runE26)

	return !failed
}

func depth(short, deep int) int {
	if *deepFlag {
		return deep
	}
	return short
}

var (
	rd = core.Op{Name: spec.OpRead}
	w  = func(v int) core.Op { return core.Op{Name: spec.OpWrite, Arg: v} }
)

func runE1() error {
	h := registers.NewAlg1(3, 1)
	_, err := hicheck.BuildCanon(h, 2, 400)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		return fmt.Errorf("expected a sequential HI violation, got %v", err)
	}
	fmt.Printf("    REFUTED(expected): %v\n", v)
	fmt.Println("    PASS: Algorithm 1 leaks history, as Section 4 observes")
	return nil
}

// verifyCell checks one (implementation, observation class) cell of Table 1.
func verifyCell(h *harness.Harness, class hicheck.ObsClass, canonOps, maxSteps, fuzz int) error {
	c, err := hicheck.BuildCanon(h, canonOps, 1200)
	if err != nil {
		return err
	}
	scripts := hicheck.Scripts(h, []int{1, 1})
	if _, err := hicheck.CheckExhaustive(c, h, scripts, class, maxSteps, 2_000_000, true); err != nil {
		return err
	}
	big := [][][]core.Op{{{w(2), w(1), w(3)}, {rd, rd}}}
	return hicheck.CheckRandom(c, h, big, class, fuzz, 1, 400, true)
}

// refuteCell finds the violation witness for a cell the paper proves
// impossible to fill.
func refuteCell(h *harness.Harness, class hicheck.ObsClass, lens []int) (*hicheck.Violation, error) {
	c, err := hicheck.BuildCanon(h, 2, 1200)
	if err != nil {
		return nil, err
	}
	v := hicheck.FindViolation(c, h, hicheck.Scripts(h, lens), class, 12, 200000)
	if v == nil {
		return nil, errors.New("no violation found")
	}
	return v, nil
}

func runE2() error {
	alg2 := registers.NewAlg2(3, 1)
	alg4 := registers.NewAlg4(3, 1)
	ms := depth(13, 16)

	fmt.Println("    Alg 2 (lock-free):")
	if err := verifyCell(alg2, hicheck.StateQuiescent, 3, ms, 400); err != nil {
		return fmt.Errorf("Alg 2 state-quiescent HI: %w", err)
	}
	fmt.Println("      state-quiescent HI  PASS   (Theorem 9)")
	if v, err := refuteCell(alg2, hicheck.Perfect, []int{1, 0}); err != nil {
		return fmt.Errorf("Alg 2 perfect HI refutation: %w", err)
	} else {
		fmt.Printf("      perfect HI          REFUTED(expected): %v\n", v)
	}

	fmt.Println("    Alg 4 (wait-free):")
	if err := verifyCell(alg4, hicheck.Quiescent, 3, ms, 400); err != nil {
		return fmt.Errorf("Alg 4 quiescent HI: %w", err)
	}
	fmt.Println("      quiescent HI        PASS   (Theorem 12)")
	if v, err := refuteCell(alg4, hicheck.StateQuiescent, []int{0, 1}); err != nil {
		return fmt.Errorf("Alg 4 state-quiescent refutation: %w", err)
	} else {
		fmt.Printf("      state-quiescent HI  REFUTED(expected): %v\n", v)
	}
	fmt.Println("    (wait-free + state-quiescent HI is impossible from binary registers: run histarve -exp E4)")
	return nil
}

func runE6() error {
	for _, f := range []llsc.Factory{llsc.HardwareFactory{}, llsc.CASFactory{}} {
		h := universal.CounterHarness(2, 2, f, universal.Full)
		c, err := hicheck.BuildCanon(h, 3, 2000)
		if err != nil {
			return err
		}
		inc := core.Op{Name: spec.OpInc}
		dec := core.Op{Name: spec.OpDec}
		scripts := [][][]core.Op{{{inc}, {inc}}, {{inc}, {dec}}, {{dec}, {inc}}}
		ms := depth(12, 15)
		if f.Name() == "hw" {
			ms += 2
		}
		n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, ms, 2_000_000, true)
		if err != nil {
			return fmt.Errorf("%s: %w", h.Name, err)
		}
		fmt.Printf("    %-40s PASS (%d interleavings exhaustively)\n", h.Name, n)

		h3 := universal.CounterHarness(3, 3, f, universal.Full)
		c3, err := hicheck.BuildCanon(h3, 3, 2000)
		if err != nil {
			return err
		}
		fuzz := [][][]core.Op{{{inc, inc}, {dec, rd}, {inc, dec}}}
		if err := hicheck.CheckRandom(c3, h3, fuzz, hicheck.StateQuiescent, depth(300, 2000), 5, 2000, true); err != nil {
			return fmt.Errorf("%s fuzz: %w", h3.Name, err)
		}
		fmt.Printf("    %-40s PASS (random-schedule fuzz)\n", h3.Name)
	}
	return nil
}

func runE7() error {
	inc := core.Op{Name: spec.OpInc}
	for _, variant := range []universal.Variant{universal.NoRelease, universal.Full} {
		h := universal.CounterHarness(3, 2, llsc.CASFactory{}, variant)
		c, err := hicheck.BuildCanon(h, 2, 2000)
		if err != nil {
			return err
		}
		var found *hicheck.Violation
		for a := 1; a <= 30 && found == nil; a++ {
			for b := 1; b <= 15 && found == nil; b++ {
				tr := h.BuildScripts([][]core.Op{{inc}, {inc}}).Run(phases(1, a, 0, b), 1000)
				if tr.Truncated {
					continue
				}
				if err := hicheck.CheckTrace(c, tr, hicheck.Quiescent); err != nil {
					var v *hicheck.Violation
					if errors.As(err, &v) {
						found = v
					}
				}
			}
		}
		switch {
		case variant == universal.NoRelease && found == nil:
			return errors.New("NoRelease mutant: no violation found")
		case variant == universal.NoRelease:
			fmt.Printf("    no-release mutant   REFUTED(expected): %v\n", found)
		case found != nil:
			return fmt.Errorf("full algorithm violated quiescent HI: %v", found)
		default:
			fmt.Println("    faithful Algorithm 5 PASS over the same schedule grid")
		}
	}
	return nil
}

func runE8() error {
	p0, p1, steps := universal.StarvationDemo(universal.NoEscape, 40, 4000)
	if p0 != 0 || p1 < 20 {
		return fmt.Errorf("NoEscape demo inconclusive: p0=%d p1=%d", p0, p1)
	}
	fmt.Printf("    no-escape mutant: p0 starved (%d steps, 0 ops) while p1 completed %d ops\n", steps, p1)
	p0, p1, steps = universal.StarvationDemo(universal.Full, 40, 6000)
	if p0 != 1 {
		return fmt.Errorf("full variant did not escape: p0=%d p1=%d", p0, p1)
	}
	fmt.Printf("    faithful Algorithm 5: p0 escaped after %d steps while p1 completed %d ops\n", steps, p1)
	return nil
}

func runE9() error {
	// The R-LLSC checks live in the llsc test suite; here we re-verify the
	// perfect-HI core property: the cell's memory representation is exactly
	// its (val, context) state, with contexts empty at quiescence, by
	// running the universal construction's canonical map over it.
	h := universal.CounterHarness(2, 2, llsc.CASFactory{}, universal.Full)
	c, err := hicheck.BuildCanon(h, 3, 2000)
	if err != nil {
		return err
	}
	for state, mem := range c.ByState {
		for _, cell := range mem {
			if !strings.HasSuffix(cell, "|ctx=0)") {
				return fmt.Errorf("state %q: cell %s has a non-empty context at quiescence", state, cell)
			}
		}
	}
	fmt.Printf("    PASS: %d canonical states, all contexts empty (Lemma 27)\n", len(c.ByState))
	return nil
}

func runE13() error {
	h := registers.NewAlg4Mutant(3, 3, registers.Alg4ReaderSilent)
	scripts := [][]core.Op{{w(1), w(3), w(1)}, {rd}}
	sched := []int{1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1}
	tr := h.BuildScripts(scripts).Run(sim.FixedSchedule(sched), 200)
	resps := tr.Responses(1)
	if len(resps) != 1 || resps[0] != registers.Bot {
		return fmt.Errorf("silent reader returned %v; expected the ⊥ response", resps)
	}
	fmt.Println("    REFUTED(expected): with a non-writing reader, a Read finds no value to return")
	return nil
}

func runE14() error {
	mr := registers.NewMaxReg(3, 1)
	if err := verifyCell(mr, hicheck.StateQuiescent, 3, depth(12, 14), 300); err != nil {
		return fmt.Errorf("max register: %w", err)
	}
	fmt.Println("    max register: wait-free state-quiescent HI  PASS")
	st := registers.NewSet(2, 2)
	c, err := hicheck.BuildCanon(st, 3, 400)
	if err != nil {
		return err
	}
	if d := c.MaxCanonDistance(); d > 1 {
		return fmt.Errorf("set canonical distance %d > 1", d)
	}
	ins := func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	look := func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	scripts := [][][]core.Op{{{ins(1), ins(2)}, {look(1), ins(1)}}}
	if _, err := hicheck.CheckExhaustive(c, st, scripts, hicheck.Perfect, 10, 300000, true); err != nil {
		return err
	}
	fmt.Println("    set: wait-free perfect HI                   PASS")
	return nil
}

func runE15() error {
	h := universal.NewFKHarness(spec.NewCounter(2, 1), 2, llsc.CASFactory{})
	_, err := hicheck.BuildCanon(h, 2, 2000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		return fmt.Errorf("expected a sequential HI violation, got %v", err)
	}
	fmt.Printf("    REFUTED(expected): %v\n", v)
	fmt.Println("    PASS: storing responses in head reveals completed operations,")
	fmt.Println("    which is precisely what Algorithm 5's clearing stages erase")
	return nil
}

func runE21() error {
	// The direct hash table: every update is one CAS on a bucket group
	// whose slots sit in canonical priority order, so the simulated twin
	// must satisfy the strongest class — perfect HI — plus
	// linearizability, over every explored interleaving.
	p := hihash.Params{T: 3, G: 2, B: 1}
	h := hihash.NewSimHarness(p, 2, hihash.VariantCanonical)
	c, err := hicheck.BuildCanon(h, 3, 2000)
	if err != nil {
		return err
	}
	ins := func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	rem := func(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }
	look := func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	scripts := [][][]core.Op{
		{{ins(1)}, {ins(2)}},
		{{ins(1), rem(1)}, {ins(2)}},
		{{ins(1), look(2)}, {ins(3)}},
	}
	n, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.Perfect, depth(14, 16), 1_000_000, true)
	if err != nil {
		return fmt.Errorf("%s: %w", h.Name, err)
	}
	fmt.Printf("    %-44s PASS (%d interleavings exhaustively)\n", h.Name, n)
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.Perfect, depth(200, 1000), 23, 3000, true); err != nil {
		return fmt.Errorf("%s fuzz: %w", h.Name, err)
	}
	fmt.Printf("    %-44s PASS (random-schedule fuzz)\n", h.Name)

	// The append-order ablation must be refuted already sequentially.
	ha := hihash.NewSimHarness(hihash.Params{T: 3, G: 2, B: 2}, 2, hihash.VariantAppend)
	_, err = hicheck.BuildCanon(ha, 2, 2000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		return fmt.Errorf("append ablation: expected a sequential HI violation, got %v", err)
	}
	fmt.Printf("    append-order ablation REFUTED(expected): %v\n", v)
	return nil
}

func runE22() error {
	// The unbounded HICHT: cross-group Robin Hood displacement with
	// helped relocations, and an online resize. A relocation spans two
	// group words, so adjacent canonical layouts differ in >= 2 base
	// objects and Proposition 6 forbids perfect HI — the checker first
	// exhibits that witness, then verifies the class the HICHT paper
	// actually proves: state-quiescent HI plus linearizability, over
	// displacement races and schedules that cross a resize.
	p := hihash.Params{T: 3, G: 2, B: 1}
	h := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	c, err := hicheck.BuildCanon(h, 3, 4000)
	if err != nil {
		return err
	}
	ins := func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	rem := func(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }
	look := func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	grow := core.Op{Name: spec.OpGrow}

	if d := c.MaxCanonDistance(); d < 2 {
		return fmt.Errorf("canonical distance %d; displacement should force >= 2", d)
	} else {
		fmt.Printf("    canonical distance %d > 1: perfect HI impossible (Proposition 6)\n", d)
	}
	refute := [][][]core.Op{{{ins(1)}, {ins(2)}}, {{ins(1), rem(1)}, {ins(2)}}}
	if v := hicheck.FindViolation(c, h, refute, hicheck.Perfect, 22, 400000); v == nil {
		return errors.New("no perfect-HI witness found")
	} else {
		fmt.Printf("    perfect HI            REFUTED(expected): %v\n", v)
	}

	scripts := [][][]core.Op{
		{{ins(1)}, {ins(2)}},
		{{ins(1), rem(1)}, {ins(2)}},
		{{ins(1), look(2)}, {ins(2)}},
	}
	resizeScripts := [][][]core.Op{
		{{grow}, {ins(1)}},
		{{ins(1), grow}, {ins(2)}},
		{{ins(1), grow}, {rem(1)}},
		{{grow, look(1)}, {ins(1)}},
	}
	ms := depth(18, 26)
	n1, err := hicheck.CheckExhaustive(c, h, scripts, hicheck.StateQuiescent, ms, 400000, true)
	if err != nil && !errors.Is(err, sim.ErrBudget) {
		return fmt.Errorf("%s: %w", h.Name, err)
	}
	n2, err := hicheck.CheckExhaustive(c, h, resizeScripts, hicheck.StateQuiescent, depth(20, 28), 400000, true)
	if err != nil && !errors.Is(err, sim.ErrBudget) {
		return fmt.Errorf("%s resize: %w", h.Name, err)
	}
	fmt.Printf("    state-quiescent HI + linearizability PASS (%d displacement + %d mid-resize interleavings)\n", n1, n2)
	if err := hicheck.CheckRandom(c, h, scripts, hicheck.StateQuiescent, depth(120, 500), 31, 5000, true); err != nil {
		return fmt.Errorf("%s fuzz: %w", h.Name, err)
	}
	if err := hicheck.CheckRandom(c, h, resizeScripts, hicheck.StateQuiescent, depth(120, 500), 97, 6000, true); err != nil {
		return fmt.Errorf("%s resize fuzz: %w", h.Name, err)
	}
	fmt.Println("    random-schedule fuzz (including resize crossings)   PASS")

	// Wide groups (B=2): a group can hold a marked key next to a larger
	// unmarked one — the state class where relocation helping is
	// subtlest (see whitebox_test.go's parked-mark regression) and which
	// B=1 groups cannot express. Keys 2, 4, 5 share home group 0 here.
	pw := hihash.Params{T: 5, G: 2, B: 2}
	hw := hihash.NewDisplaceHarness(pw, 2, hihash.DisplaceCanonical)
	cw, err := hicheck.BuildCanon(hw, 3, 6000)
	if err != nil {
		return fmt.Errorf("%s: %w", hw.Name, err)
	}
	wide := [][][]core.Op{
		{{ins(2), ins(4)}, {ins(5)}},
		{{ins(4), ins(5)}, {ins(2), rem(4)}},
	}
	nw, err := hicheck.CheckExhaustive(cw, hw, wide, hicheck.StateQuiescent, depth(18, 24), 300000, true)
	if err != nil && !errors.Is(err, sim.ErrBudget) {
		return fmt.Errorf("%s: %w", hw.Name, err)
	}
	if err := hicheck.CheckRandom(cw, hw, wide, hicheck.StateQuiescent, depth(80, 400), 53, 4000, true); err != nil {
		return fmt.Errorf("%s fuzz: %w", hw.Name, err)
	}
	fmt.Printf("    wide groups (B=2, marked-next-to-larger states)     PASS (%d interleavings + fuzz)\n", nw)

	// The no-backward-shift ablation must be refuted sequentially: the
	// slot a key ends in would depend on the deletion history.
	ha := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceNoShift)
	_, err = hicheck.BuildCanon(ha, 3, 4000)
	var v *hicheck.SeqHIViolation
	if !errors.As(err, &v) {
		return fmt.Errorf("no-shift ablation: expected a sequential HI violation, got %v", err)
	}
	fmt.Printf("    no-backward-shift ablation REFUTED(expected): %v\n", v)
	return nil
}

func runE23() error {
	// E23 makes the adversary of the HI definitions executable against
	// the native tables. Three sub-experiments:
	//   (a) twin raw dumps — two tables driven to the same abstract set
	//       by different histories, captured as live word arrays through
	//       unsafe, must be byte-identical and equal to the canonical
	//       packed layout;
	//   (b) enumerated crash schedules on the simulated twins — a
	//       process killed after every possible number of primitive
	//       steps, with survivors running to completion, must always
	//       leave a canonical memory of a linearizable state;
	//   (c) the native Kill matrix — a goroutine killed at every labeled
	//       protocol steppoint; the exposed image must lie within 5
	//       words of a reachable canonical layout (the observed analogue
	//       of E21's distance bound), and recovery must restore
	//       canonical memory exactly.
	const (
		bDomain, bGroups = 16, 8
		dDomain, dGroups = 8, 2
	)

	pairs := depth(1000, 4000)
	for trial := 0; trial < pairs; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := e23Target(rng, bDomain, bDomain)
		a, b := hihash.NewSet(bDomain, bGroups), hihash.NewSet(bDomain, bGroups)
		e23Build(a, bDomain, target, int64(1000+trial))
		e23Build(b, bDomain, target, int64(2000+trial))
		if !bytes.Equal(a.RawDump(), b.RawDump()) {
			return fmt.Errorf("bounded twins: trial %d: same state %v, different raw dumps", trial, target)
		}
		if d := faultinject.CanonicalDistance(a, target); d != 0 {
			return fmt.Errorf("bounded twins: trial %d: state %v at distance %d from canonical", trial, target, d)
		}
	}
	fmt.Printf("    bounded twins:    %4d history pairs, raw dumps byte-identical and canonical\n", pairs)

	heavy := e23Heavy(dDomain, dGroups)
	dPairs := depth(600, 2400)
	for trial := 0; trial < dPairs; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := e23Target(rng, dDomain, 6)
		if trial%3 == 0 {
			// Force the overloaded set whose home group overflows, so a
			// third of the pairs exercise real cross-group displacement.
			target = append([]int(nil), heavy...)
		}
		a, b := hihash.NewDisplaceSet(dDomain, dGroups), hihash.NewDisplaceSet(dDomain, dGroups)
		e23Build(a, dDomain, target, int64(1000+trial))
		e23Build(b, dDomain, target, int64(2000+trial))
		if !bytes.Equal(a.RawDump(), b.RawDump()) {
			return fmt.Errorf("displacing twins: trial %d: same state %v, different raw dumps", trial, target)
		}
		if d := faultinject.CanonicalDistance(a, target); d != 0 {
			return fmt.Errorf("displacing twins: trial %d: state %v at distance %d from canonical", trial, target, d)
		}
	}
	fmt.Printf("    displacing twins: %4d history pairs (1/3 with forced displacement), dumps canonical\n", dPairs)

	p := hihash.Params{T: 3, G: 2, B: 1}
	ins := func(v int) core.Op { return core.Op{Name: spec.OpInsert, Arg: v} }
	rem := func(v int) core.Op { return core.Op{Name: spec.OpRemove, Arg: v} }
	look := func(v int) core.Op { return core.Op{Name: spec.OpLookup, Arg: v} }
	grow := core.Op{Name: spec.OpGrow}
	hb := hihash.NewSimHarness(p, 2, hihash.VariantCanonical)
	cb, err := hicheck.BuildCanon(hb, 3, 400)
	if err != nil {
		return err
	}
	nb, err := hicheck.CheckCrashRecovery(cb, hb, [][][]core.Op{
		{{ins(1), ins(2)}, {rem(1), look(2)}},
		{{ins(2), rem(2)}, {ins(1)}},
	}, 0, 2000)
	if err != nil {
		return fmt.Errorf("bounded crash schedules: %w", err)
	}
	hd := hihash.NewDisplaceHarness(p, 2, hihash.DisplaceCanonical)
	cd, err := hicheck.BuildCanon(hd, 3, 4000)
	if err != nil {
		return err
	}
	nd, err := hicheck.CheckCrashRecovery(cd, hd, [][][]core.Op{
		{{ins(3), ins(1)}, {grow, rem(2)}},
		{{ins(3), ins(1), rem(1)}, {grow, rem(2)}},
		{{ins(2), grow}, {grow, rem(1)}},
	}, 0, 4000)
	if err != nil {
		return fmt.Errorf("displacing crash schedules: %w", err)
	}
	fmt.Printf("    sim crash schedules: %d bounded + %d displacing, every recovery canonical and linearizable\n", nb, nd)

	cells, mid, maxDist, err := e23Matrix(dDomain, dGroups, heavy)
	if err != nil {
		return err
	}
	fmt.Printf("    native Kill matrix: %d cells (%d mid-drain), max stable-geometry distance %d <= 5\n", cells, mid, maxDist)
	return nil
}

// e23Target draws a random subset of {1..domain}, capped at maxLen keys.
func e23Target(rng *rand.Rand, domain, maxLen int) []int {
	var out []int
	for k := 1; k <= domain; k++ {
		if rng.Intn(3) == 0 {
			out = append(out, k)
		}
	}
	for len(out) > maxLen {
		out = append(out[:rng.Intn(len(out))], out[rng.Intn(len(out))+1:]...)
	}
	return out
}

// e23Build drives a fresh table to exactly target through a
// seed-dependent history: random insertion order, decoy churn around
// every insert, and remove/re-insert churn of target keys.
func e23Build(s *hihash.Set, domain int, target []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	in := func(keys []int, k int) bool {
		for _, x := range keys {
			if x == k {
				return true
			}
		}
		return false
	}
	order := append([]int(nil), target...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, k := range order {
		if len(target) < domain {
			decoy := rng.Intn(domain) + 1
			for in(target, decoy) {
				decoy = decoy%domain + 1
			}
			s.Insert(decoy)
			s.Insert(k)
			s.Remove(decoy)
		} else {
			s.Insert(k)
		}
		if rng.Intn(2) == 0 {
			s.Remove(k)
			s.Insert(k)
		}
	}
}

// e23Heavy returns SlotsPerGroup+1 keys homing at group 0 — one more
// than a group holds, so inserting them all forces displacement.
func e23Heavy(domain, nGroups int) []int {
	var heavy []int
	for k := 1; k <= domain; k++ {
		if hihash.GroupOf(k, nGroups) == 0 {
			heavy = append(heavy, k)
		}
	}
	return heavy[:hihash.SlotsPerGroup+1]
}

// e23Matrix runs the native Kill matrix: for every steppoint and every
// occurrence the workload reaches, a victim goroutine runs the script
// and dies at that protocol CAS; the crash image is measured against
// every reachable canonical layout, and recovery (re-settle membership,
// then grow) must restore canonical memory exactly.
func e23Matrix(domain, nGroups int, heavy []int) (cells, mid, maxDist int, err error) {
	churn := heavy[2]
	script := func(s *hihash.Set) {
		for _, k := range heavy {
			s.Insert(k)
		}
		s.Remove(churn)
		s.Insert(churn)
		s.Grow()
	}
	// Reachable abstract states: the cumulative prefixes of the script.
	var candidates [][]int
	candidates = append(candidates, nil)
	for i := range heavy {
		candidates = append(candidates, heavy[:i+1])
	}
	var without []int
	for _, k := range heavy {
		if k != churn {
			without = append(without, k)
		}
	}
	candidates = append(candidates, without)
	for sp := hihash.Steppoint(0); sp < hihash.NumSteppoints; sp++ {
		for occ := 1; occ <= 128; occ++ {
			s := hihash.NewDisplaceSet(domain, nGroups)
			in := faultinject.Install(faultinject.Plan{Point: sp, Occurrence: occ, Action: faultinject.Kill})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				script(s)
			}()
			wg.Wait()
			in.Uninstall()
			if !in.DidFire() {
				break
			}
			cells++
			if d := faultinject.MinCanonicalDistance(s, candidates); d < 0 {
				mid++
			} else if d > 5 {
				return cells, mid, d, fmt.Errorf("crash at %s#%d: image at distance %d > 5 from every reachable canonical layout", sp, occ, d)
			} else if d > maxDist {
				maxDist = d
			}
			for _, k := range heavy {
				s.Insert(k)
			}
			s.Grow()
			if got, want := s.Snapshot(), hihash.CanonicalSetSnapshot(domain, s.NumGroups(), heavy); got != want {
				return cells, mid, maxDist, fmt.Errorf("crash at %s#%d: recovery left non-canonical memory\n got:  %s\nwant: %s", sp, occ, got, want)
			}
		}
	}
	if cells < int(hihash.NumSteppoints) {
		return cells, mid, maxDist, fmt.Errorf("only %d crash cells reached; the workload misses whole steppoints", cells)
	}
	return cells, mid, maxDist, nil
}

// runE25 closes the loop between the native stack and the checker: the
// flight recorder (internal/hirec) captures a real concurrent run and a
// faultinject crash schedule at the API layer, and the recorded
// histories are extracted and machine-checked for linearizability post
// hoc — the native analogue of what E6/E21/E22 prove on the simulated
// twins. A corrupted recording must be rejected before it reaches the
// checker (a verdict on a broken history proves nothing).
func runE25() error {
	defer hirec.Disable()

	// (a) A recorded concurrent stress run on the API-layer hash set:
	// extract every invoke/return pair and hand the history to the
	// exhaustive checker (which caps at 64 operations, so the run is
	// sized to fit).
	const n, opsPer, domain = 4, 8, 16
	flight := hirec.Enable(1 << 12)
	s := obj.NewHashSet(domain)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := (pid*3+i)%domain + 1
				switch i % 3 {
				case 0:
					s.Insert(key)
				case 1:
					s.Contains(key)
				default:
					s.Remove(key)
				}
			}
		}(pid)
	}
	wg.Wait()
	hirec.Disable()
	recording := flight.Snapshot()
	recs, err := hirec.Records(recording)
	if err != nil {
		return fmt.Errorf("stress extraction: %w", err)
	}
	if err := linearize.CheckRecords(spec.NewSet(domain), recs); err != nil {
		fmt.Print(trace.NativeTimeline(recording))
		return fmt.Errorf("recorded stress run not linearizable: %w", err)
	}
	steps := 0
	for _, ev := range recording.Events {
		if ev.Kind == hirec.KStep {
			steps++
		}
	}
	fmt.Printf("    recorded stress run: %d ops + %d protocol steps extracted, linearizable  PASS\n",
		len(recs), steps)

	// (b) A recorded faultinject crash schedule: fill a bucket group with
	// the four larger keys of its home run, then insert the smallest —
	// which outranks every resident (smaller keys claim earlier groups),
	// so it must mark one for relocation — and kill it at that mark-set
	// CAS. The victim dies between invocation and response, so extraction
	// must yield exactly one pending operation — which the checker may
	// linearize or drop — and the verdict must still hold.
	heavy := e23Heavy(domain, 2)
	cs := obj.NewHashSetWithGroups(domain, 2)
	flight = hirec.Enable(1 << 12)
	for _, k := range heavy[1:] {
		cs.Insert(k)
	}
	in := faultinject.Install(faultinject.Plan{
		Point: hihash.SpMarkSet, Occurrence: 1, Action: faultinject.Kill,
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		cs.Insert(heavy[0])
	}()
	wg.Wait()
	in.Uninstall()
	hirec.Disable()
	if !in.DidFire() {
		return errors.New("crash schedule: the displacing insert never reached mark-set")
	}
	crashRec := flight.Snapshot()
	crashRecs, err := hirec.Records(crashRec)
	if err != nil {
		return fmt.Errorf("crash extraction: %w", err)
	}
	pending := 0
	for _, r := range crashRecs {
		if !r.Completed {
			pending++
		}
	}
	if pending != 1 {
		fmt.Print(trace.NativeTimeline(crashRec))
		return fmt.Errorf("crash schedule: %d pending operations extracted, want exactly 1 (the killed insert)", pending)
	}
	if err := linearize.CheckRecords(spec.NewSet(domain), crashRecs); err != nil {
		fmt.Print(trace.NativeTimeline(crashRec))
		return fmt.Errorf("recorded crash schedule not linearizable: %w", err)
	}
	fmt.Println("    recorded crash schedule: kill at mark-set left 1 pending op, history linearizable  PASS")

	// (c) The negative control: extraction must reject a recording it
	// cannot vouch for.
	corrupt := hirec.Recording{Events: append(append([]hirec.Event{}, crashRec.Events...), hirec.Event{
		Seq: uint64(len(crashRec.Events)) + 1, Kind: hirec.KReturn,
		Lane: 63, Index: 9999, Name: spec.OpInsert,
	})}
	if _, err := hirec.Records(corrupt); err == nil {
		return errors.New("corrupted recording accepted by extraction")
	} else {
		fmt.Printf("    corrupted recording rejected  PASS (%v)\n", err)
	}
	return nil
}

// runE26 verifies the E26 read path of the displacing table end to end:
//
//	(a) a recorded lookup-heavy concurrent run — extracted by the
//	    flight recorder and machine-checked for linearizability, so the
//	    SWAR + bounded-retry lookups are checked inside real
//	    interleavings, not just in isolation;
//	(b) reads against a parked relocation mark — an updater killed at
//	    the mark-set CAS leaves a marked resident with no owner;
//	    concurrent readers must all terminate with the correct answer
//	    for every key (the marked resident is logically present, the
//	    dead insert's key absent), and recovery must restore canonical
//	    memory;
//	(c) twin raw dumps built under concurrent reader hammering — the
//	    E23 twin-identity adversary with readers present throughout,
//	    checking that the read path (including its helping fallback)
//	    stays outside the HI boundary.
func runE26() error {
	// (a) Recorded lookup-heavy run: three of every four operations are
	// lookups; the rest churn so the lookups race real updates. Sized to
	// fit the exhaustive checker's 64-operation cap.
	const n, opsPer, domain = 4, 8, 16
	flight := hirec.Enable(1 << 12)
	s := obj.NewHashSet(domain)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := (pid*5+i)%domain + 1
				switch {
				case i%4 == 0:
					s.Insert(key)
				case i%8 == 7:
					s.Remove(key)
				default:
					s.Contains(key)
				}
			}
		}(pid)
	}
	wg.Wait()
	hirec.Disable()
	recording := flight.Snapshot()
	recs, err := hirec.Records(recording)
	if err != nil {
		return fmt.Errorf("lookup-heavy extraction: %w", err)
	}
	if err := linearize.CheckRecords(spec.NewSet(domain), recs); err != nil {
		fmt.Print(trace.NativeTimeline(recording))
		return fmt.Errorf("recorded lookup-heavy run not linearizable: %w", err)
	}
	lookups := 0
	for _, r := range recs {
		if r.Op.Name == spec.OpLookup {
			lookups++
		}
	}
	fmt.Printf("    recorded lookup-heavy run: %d ops (%d lookups), linearizable  PASS\n",
		len(recs), lookups)

	// (b) Park-at-mark readers: fill one bucket group with the four
	// larger keys of its home run, then insert the smallest — which
	// outranks every resident and must mark one for relocation — and
	// kill it at the mark-set CAS. The crash leaves a parked mark with
	// no owner. Readers must terminate (a parked mark is stable memory,
	// so validation succeeds) and answer correctly for every key: the
	// marked resident is logically present, the dead insert's key was
	// never placed.
	heavy := e23Heavy(domain, 2)
	ps := hihash.NewDisplaceSet(domain, 2)
	for _, k := range heavy[1:] {
		ps.Insert(k)
	}
	in := faultinject.Install(faultinject.Plan{
		Point: hihash.SpMarkSet, Occurrence: 1, Action: faultinject.Kill,
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ps.Insert(heavy[0])
	}()
	wg.Wait()
	in.Uninstall()
	if !in.DidFire() {
		return errors.New("park-at-mark: the displacing insert never reached mark-set")
	}
	expected := map[int]bool{}
	for _, k := range heavy[1:] {
		expected[k] = true
	}
	const parkReaders, parkSweeps = 4, 50
	errs := make(chan error, parkReaders)
	for g := 0; g < parkReaders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sweep := 0; sweep < parkSweeps; sweep++ {
				for k := 1; k <= domain; k++ {
					if got := ps.Contains(k); got != expected[k] {
						select {
						case errs <- fmt.Errorf("park-at-mark: Contains(%d) = %v, want %v", k, got, expected[k]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	// Recovery: re-settling the membership resolves the parked mark and
	// must restore canonical memory exactly (the e23Matrix recipe).
	for _, k := range heavy[1:] {
		ps.Insert(k)
	}
	ps.Grow()
	if got, want := ps.Snapshot(), hihash.CanonicalSetSnapshot(domain, ps.NumGroups(), heavy[1:]); got != want {
		return fmt.Errorf("park-at-mark: recovery left non-canonical memory\n got:  %s\nwant: %s", got, want)
	}
	fmt.Printf("    park-at-mark: %d readers x %d sweeps all correct against a parked mark, recovery canonical  PASS\n",
		parkReaders, parkSweeps)

	// (c) Twin dumps under readers: the E23 displacing twin adversary
	// with reader goroutines hammering Contains throughout each build.
	// Reads — including any slow-path helping they perform — must leave
	// the final raw dumps byte-identical and canonical.
	const dDomain, dGroups = 8, 2
	dheavy := e23Heavy(dDomain, dGroups)
	trials := depth(200, 800)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		target := e23Target(rng, dDomain, 6)
		if trial%3 == 0 {
			target = append([]int(nil), dheavy...)
		}
		a, b := hihash.NewDisplaceSet(dDomain, dGroups), hihash.NewDisplaceSet(dDomain, dGroups)
		e26BuildWithReaders(a, dDomain, target, int64(1000+trial))
		e26BuildWithReaders(b, dDomain, target, int64(2000+trial))
		if !bytes.Equal(a.RawDump(), b.RawDump()) {
			return fmt.Errorf("twins under readers: trial %d: same state %v, different raw dumps", trial, target)
		}
		if d := faultinject.CanonicalDistance(a, target); d != 0 {
			return fmt.Errorf("twins under readers: trial %d: state %v at distance %d from canonical", trial, target, d)
		}
	}
	fmt.Printf("    twins under readers: %4d history pairs with concurrent lookups, dumps byte-identical and canonical  PASS\n",
		trials)
	return nil
}

// e26BuildWithReaders is e23Build with reader goroutines hammering
// Contains over the whole domain for the duration of the build.
func e26BuildWithReaders(s *hihash.Set, domain int, target []int, seed int64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					s.Contains(rng.Intn(domain) + 1)
				}
			}
		}(seed*10 + int64(g))
	}
	e23Build(s, domain, target, seed)
	close(stop)
	wg.Wait()
}

// phases builds the two-phase-then-finish schedule used by E7.
func phases(pid1, n1, pid2, n2 int) *sim.Phases {
	return &sim.Phases{List: []sim.Phase{
		{PID: pid1, Steps: n1}, {PID: pid2, Steps: n2},
		{PID: pid1, Steps: 400}, {PID: pid2, Steps: 400},
	}}
}
