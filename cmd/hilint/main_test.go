package main

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the acceptance gate in miniature: the full
// analyzer suite over the whole tree reports nothing. CI runs the same
// thing as `go run ./cmd/hilint ./...`.
func TestRepoIsClean(t *testing.T) {
	t.Chdir("../..")
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("hilint ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed diagnostics:\n%s", out.String())
	}
}

// TestList prints every registered analyzer plus the escape gate.
func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("hilint -list = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	for _, name := range []string{"steppoint", "hookpoint", "hiboundary", "sleepwait", "escape"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzerFailsLoud pins the loud failure: a typo in -run is
// a usage error naming the known analyzers, not a silent no-op pass.
func TestUnknownAnalyzerFailsLoud(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-run", "stepoint", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("hilint -run stepoint = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "stepoint") || !strings.Contains(errOut.String(), "steppoint") {
		t.Errorf("error should name the unknown analyzer and the known ones:\n%s", errOut.String())
	}
}

// TestSelectedAnalyzer runs a single analyzer by name.
func TestSelectedAnalyzer(t *testing.T) {
	t.Chdir("../..")
	var out, errOut strings.Builder
	if code := run([]string{"-run", "sleepwait", "./internal/hihash"}, &out, &errOut); code != 0 {
		t.Fatalf("hilint -run sleepwait = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestEscapeGateFromMain exercises the -escape path end to end (it
// shells out to go build; the result is cached by the build cache).
func TestEscapeGateFromMain(t *testing.T) {
	if testing.Short() {
		t.Skip("-escape shells out to the compiler")
	}
	t.Chdir("../..")
	var out, errOut strings.Builder
	if code := run([]string{"-escape", "-run", "hiboundary", "./internal/hihash"}, &out, &errOut); code != 0 {
		t.Fatalf("hilint -escape = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}
