package main

// The go vet -vettool protocol, without x/tools' unitchecker: cmd/go
// probes the tool once with -V=full (the output line becomes part of
// vet's cache key), then invokes it once per package with a single
// argument, the path to a JSON config file describing the compilation
// unit. The tool must write its facts file (we have no facts — an empty
// file) and report findings on stderr with a non-zero exit.
//
//	go build -o /tmp/hilint ./cmd/hilint
//	go vet -vettool=/tmp/hilint ./...

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hiconc/internal/hilint"
	"hiconc/internal/hilint/analysis"
)

// vetConfig is the subset of cmd/go's vet config this driver needs.
type vetConfig struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// vettool handles the two -vettool invocation shapes; ok is false when
// args is a normal command line for the flag-based driver.
func vettool(args []string, stdout, stderr io.Writer) (code int, ok bool) {
	if len(args) == 1 && args[0] == "-V=full" {
		// Any stable single line works; vet hashes it as the tool ID.
		fmt.Fprintln(stdout, "hilint version 1")
		return 0, true
	}
	if len(args) == 1 && args[0] == "-flags" {
		// vet asks which analyzer flags the tool supports; none — the
		// suite always runs whole.
		fmt.Fprintln(stdout, "[]")
		return 0, true
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return 0, false
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "hilint: vet config:", err)
		return 2, true
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(stderr, "hilint: vet config:", err)
		return 2, true
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "hilint: vet facts:", err)
			return 2, true
		}
	}
	if cfg.VetxOnly {
		return 0, true
	}

	fset := token.NewFileSet()
	pkg := &analysis.Package{Dir: cfg.Dir}
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "hilint:", err)
			return 2, true
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, &analysis.File{
			Path: filepath.ToSlash(path),
			AST:  f,
			Test: strings.HasSuffix(path, "_test.go"),
		})
	}
	diags, err := analysis.RunAnalyzers(fset, []*analysis.Package{pkg}, hilint.Analyzers())
	if err != nil {
		fmt.Fprintln(stderr, "hilint:", err)
		return 2, true
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 1, true
	}
	return 0, true
}
