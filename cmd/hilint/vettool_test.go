package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolHandshake pins the -V=full probe cmd/go uses to identify
// the tool.
func TestVettoolHandshake(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full = %d, want 0", code)
	}
	if !strings.HasPrefix(out.String(), "hilint version") {
		t.Errorf("handshake output %q should start with 'hilint version'", out.String())
	}

	out.Reset()
	if code := run([]string{"-flags"}, &out, &errOut); code != 0 {
		t.Fatalf("-flags = %d, want 0", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags output %q should be an empty JSON list", out.String())
	}
}

// TestVettoolUnit drives the per-package config protocol against the
// sleepwait fixture: the facts file is written, the fixture's bare
// Sleep is reported on stderr, and the exit code signals findings.
func TestVettoolUnit(t *testing.T) {
	dir := t.TempDir()
	src, err := filepath.Abs("../../internal/hilint/sleepwait/testdata/src/cmd/demo/main.go")
	if err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "demo.vetx")
	cfg, err := json.Marshal(map[string]any{
		"Dir":        filepath.Dir(src),
		"ImportPath": "demo",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{cfgPath}, &out, &errOut); code != 1 {
		t.Fatalf("vettool unit = %d, want 1 (findings)\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "bare time.Sleep") {
		t.Errorf("stderr should carry the sleepwait finding:\n%s", errOut.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

// TestVettoolVetxOnly pins the facts-only invocation: write the facts
// file, report nothing.
func TestVettoolVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "p.vetx")
	cfg, err := json.Marshal(map[string]any{
		"ImportPath": "p",
		"VetxOnly":   true,
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{cfgPath}, &out, &errOut); code != 0 {
		t.Fatalf("vetx-only unit = %d, want 0; stderr:\n%s", code, errOut.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}
