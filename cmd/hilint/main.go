// Command hilint runs the project's static-invariant analyzers
// (internal/hilint) over the tree — the checks that machine-enforce the
// conventions the HI guarantees rest on but the compiler cannot see
// (DESIGN.md, "Static invariants"):
//
//	steppoint  — every atomic write to an HI group/bucket word maps to
//	             a labeled Steppoint (E23 crash-matrix coverage cannot
//	             rot as CAS sites grow).
//	hookpoint  — hook.Point observers are loaded once into a nil-checked
//	             local (the ≤2%-overhead disabled-path idiom of E24/E25).
//	hiboundary — declared read-path functions stay write-free and
//	             allowlisted; "unsafe" imports are confined to the
//	             declared raw-dump files.
//	sleepwait  — no bare time.Sleep synchronization in tests, examples/
//	             or cmd/.
//
// With -escape, hilint additionally runs the escape-audit gate
// (internal/hilint/escape): the declared hot-path functions must
// compile with zero heap escapes, checked against the compiler's own
// -gcflags=-m=2 trace.
//
// Exit status: 0 clean, 1 findings, 2 usage or internal error.
//
// Usage:
//
//	hilint [-run steppoint,...|all] [-escape] [-list] [packages...]
//
// Packages are directories, "dir/..." walks recursively; the default is
// "./...". CI runs `go run ./cmd/hilint ./...` plus
// `go run ./cmd/hilint -escape` from the module root on every commit.
//
// The binary also speaks the go vet tool protocol (vettool.go), so the
// suite can ride vet's caching and package enumeration:
//
//	go build -o /tmp/hilint ./cmd/hilint
//	go vet -vettool=/tmp/hilint ./...
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"

	"hiconc/internal/hilint"
	"hiconc/internal/hilint/analysis"
	"hiconc/internal/hilint/escape"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: args are the command-line arguments
// after the program name; the exit code comes back to main.
func run(args []string, stdout, stderr io.Writer) int {
	if code, ok := vettool(args, stdout, stderr); ok {
		return code
	}
	fs := flag.NewFlagSet("hilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runSel := fs.String("run", "all", "comma-separated analyzers to run, or 'all'")
	escapeGate := fs.Bool("escape", false, "also run the hot-path escape-audit gate (shells out to go build)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range hilint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", "escape", "(-escape) hot-path functions compile with zero heap escapes")
		return 0
	}

	analyzers, err := hilint.ByNames(*runSel)
	if err != nil {
		fmt.Fprintln(stderr, "hilint:", err)
		return 2
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "hilint: loading packages:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "hilint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}

	bad := len(diags) > 0
	if *escapeGate {
		findings, err := escape.Audit(".")
		if err != nil {
			fmt.Fprintln(stderr, "hilint: escape gate:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		bad = bad || len(findings) > 0
	}
	if bad {
		return 1
	}
	return 0
}
