package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiconc/internal/histats"
	"hiconc/internal/obj"
	"hiconc/internal/shard"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
	"hiconc/internal/workload"
)

// runWatch drives a built-in mixed workload (the instrumented HashSet
// plus a sharded combining map) with metrics enabled, and redraws a live
// table of protocol counters and latency histograms every tick. With
// dur > 0 it stops after that long and prints a final cumulative table;
// with dur = 0 it runs until the process is interrupted.
func runWatch(tick, dur time.Duration) error {
	const n, domain, mapKeys = 8, 16384, 256
	r := histats.Enable()
	defer histats.Disable()

	set := obj.NewHashSetWithGroups(domain, domain/8)
	cmap := shard.NewCombiningMap(n, mapKeys, 4)
	stop := make(chan struct{})
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			g := workload.NewGen(int64(pid))
			setMix := g.SetZipf(8192, domain, 1.01, 0.1)
			mapMix := g.MapZipf(2048, mapKeys, 1.5, 0.1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := setMix[i%len(setMix)]
				start := time.Now()
				switch op.Name {
				case spec.OpInsert:
					set.Insert(op.Arg)
				case spec.OpRemove:
					set.Remove(op.Arg)
				default:
					set.Contains(op.Arg)
				}
				el := uint64(time.Since(start).Nanoseconds())
				if op.Name == spec.OpLookup {
					histats.Observe(histats.HistLookupNanos, el)
				} else {
					histats.Observe(histats.HistUpdateNanos, el)
				}
				if i%4 == 3 {
					cmap.Apply(pid, mapMix[i%len(mapMix)])
				}
				ops.Add(1)
			}
		}(pid)
	}

	start := time.Now()
	prev := r.Snapshot()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for range ticker.C {
		cur := r.Snapshot()
		fmt.Print("\033[H\033[2J") // clear the terminal, cursor home
		fmt.Printf("hibench -watch   %v elapsed   %d ops   %d goroutines\n\n",
			time.Since(start).Round(time.Second), ops.Load(), n)
		fmt.Print(trace.StatsTable(cur, prev))
		prev = cur
		if dur > 0 && time.Since(start) >= dur {
			break
		}
	}
	close(stop)
	wg.Wait()
	fmt.Printf("\nfinal cumulative view after %v:\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(trace.StatsTable(r.Snapshot(), nil))
	return nil
}
