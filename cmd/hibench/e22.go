package main

import (
	"fmt"
	"sync"
	"time"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/shard"
	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

func runE22() {
	fmt.Println("=== E22: the unbounded HICHT — displacement and online resize")
	const n, domain = 8, 8192

	// Load-factor sweep: the displacing table starts at capacity
	// domain/2 and is preloaded to lf times that capacity; past lf = 1
	// the bounded table of E21 would reject, the displacing one spills
	// and grows. The bounded column is preloaded to the same load for a
	// like-for-like row (its rejects are counted, not hidden — above
	// load 1 part of its preload and workload is silently refused).
	fmt.Println("\n    load-factor sweep (10% lookups, Zipf s=1.01, 8 goroutines; ns/op):")
	fmt.Printf("%8s %16s %10s %10s %14s %18s %12s\n",
		"load", "hihash-displace", "rejects", "groups", "bounded", "sharded-universal", "sync.Map")
	g0 := domain / 8 // initial capacity domain/2
	for _, lf := range []float64{0.5, 0.75, 1.0, 1.25, 1.5} {
		load := int(lf * float64(g0) * hihash.SlotsPerGroup)
		mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
			return g.SetZipf(8192, domain, 1.01, 0.1)
		})
		tag := fmt.Sprintf("set/load=%.2f", lf)

		disp := &fullCounter{Applier: hihash.NewDisplaceSet(domain, g0)}
		preload(disp, load)
		dispCell := measurePerKey("E22", tag+"/hihash-displace", disp, n, mixes)
		record("E22", tag+"/hihash-displace/rspfull", "count", float64(disp.fulls))
		record("E22", tag+"/hihash-displace/groups", "groups", float64(disp.Applier.(*hihash.Set).NumGroups()))

		bounded := &fullCounter{Applier: hihash.NewSet(domain, g0)}
		preload(bounded, load)
		boundedCell := measurePerKey("E22", tag+"/hihash-bounded", bounded, n, mixes)
		record("E22", tag+"/hihash-bounded/rspfull", "count", float64(bounded.fulls))

		uni := shard.NewSet(n, domain, 16)
		preload(uni, load)
		uniCell := measurePerKey("E22", tag+"/sharded-universal/S=16", uni, n, mixes)

		sm := conc.NewSyncMapSet()
		preload(sm, load)
		smCell := measurePerKey("E22", tag+"/syncmap", sm, n, mixes)

		fmt.Printf("%8.2f %16s %10d %10d %14s %18s %12s\n",
			lf, dispCell, disp.fulls, disp.Applier.(*hihash.Set).NumGroups(),
			boundedCell, uniCell, smCell)
	}
	fmt.Println("    (rejects must be 0 for hihash-displace at every load factor; the")
	fmt.Println("     groups column shows the online resize absorbing load > 1)")

	// Resize under load: fill the whole domain from 8 goroutines into a
	// table that starts 64x too small, so the migration machinery runs
	// about six times mid-storm; the pre-sized table is the no-resize
	// ceiling.
	fmt.Println("\n    resize under load (insert storm of the full domain, 8 goroutines; ns/op):")
	fmt.Printf("%22s %16s %18s %12s\n", "hihash-displace(G=16)", "pre-sized", "sharded-universal", "sync.Map")
	storm := func(a conc.Applier) time.Duration {
		per := domain / n
		return timeIt(func() {
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						key := pid*per + i + 1
						a.Apply(pid, core.Op{Name: spec.OpInsert, Arg: key})
						if i%10 == 9 {
							a.Apply(pid, core.Op{Name: spec.OpLookup, Arg: key})
						}
					}
				}(pid)
			}
			wg.Wait()
		})
	}
	stormOps := domain + domain/10
	growing := &fullCounter{Applier: hihash.NewDisplaceSet(domain, 16)}
	tGrow := storm(growing)
	recordPerOp("E22", "storm/hihash-displace/G0=16", tGrow, stormOps)
	record("E22", "storm/hihash-displace/rspfull", "count", float64(growing.fulls))
	record("E22", "storm/hihash-displace/groups", "groups", float64(growing.Applier.(*hihash.Set).NumGroups()))
	tPre := storm(hihash.NewDisplaceSet(domain, domain/2))
	recordPerOp("E22", "storm/hihash-presized", tPre, stormOps)
	tUni := storm(shard.NewSet(n, domain, 16))
	recordPerOp("E22", "storm/sharded-universal/S=16", tUni, stormOps)
	tSM := storm(conc.NewSyncMapSet())
	recordPerOp("E22", "storm/syncmap", tSM, stormOps)
	fmt.Printf("%22s %16s %18s %12s\n",
		perOp(tGrow, stormOps), perOp(tPre, stormOps), perOp(tUni, stormOps), perOp(tSM, stormOps))
	fmt.Printf("    (grew to %d groups with %d rejects; resize cost is the gap to pre-sized)\n",
		growing.Applier.(*hihash.Set).NumGroups(), growing.fulls)

	// The map side: the pointer-bucket map growing online from 4 buckets
	// vs pre-sized vs the sharded universal construction.
	fmt.Println("\n    multi-counter map, growing online (Zipf s=1.2, 10% reads; ns/op):")
	const mapKeys = 4096
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.2, 0.1)
	})
	growMap := hihash.NewMap(mapKeys, 4)
	growCell := measurePerKey("E22", "map/hihash-growing/B0=4", growMap, n, mapMixes)
	record("E22", "map/hihash-growing/buckets", "buckets", float64(growMap.NumBuckets()))
	fmt.Printf("%22s %16s %18s\n", "hihash-map(B0=4)", "pre-sized", "sharded-universal")
	fmt.Printf("%22s %16s %18s\n",
		growCell,
		measurePerKey("E22", "map/hihash-presized", hihash.NewMap(mapKeys, mapKeys/4), n, mapMixes),
		measurePerKey("E22", "map/sharded-universal/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes))
	fmt.Printf("    (the growing map settled at %d buckets)\n", growMap.NumBuckets())
}
