package main

import (
	"fmt"
	"sync"
	"time"

	"hiconc/internal/conc"
	"hiconc/internal/workload"
)

func runE10() {
	fmt.Println("=== E10: SWSR register algorithms (native, single writer + single reader)")
	fmt.Printf("%6s %12s %12s %12s %12s %12s\n", "K", "alg1 wr", "alg2 wr", "alg4 wr", "alg2 rd", "alg4 rd")
	for _, k := range []int{4, 16, 64, 256} {
		n := *opsFlag
		g := workload.NewGen(1)
		writes := g.RegisterWrites(n, k)

		r1 := conc.NewAlg1Register(k, 1)
		t1 := timeIt(func() {
			for _, op := range writes {
				r1.Write(op.Arg)
			}
		})
		r2 := conc.NewAlg2Register(k, 1)
		t2 := timeIt(func() {
			for _, op := range writes {
				r2.Write(op.Arg)
			}
		})
		r4 := conc.NewAlg4Register(k, 1)
		t4 := timeIt(func() {
			for _, op := range writes {
				r4.Write(op.Arg)
			}
		})
		t2r := timeIt(func() {
			for i := 0; i < n; i++ {
				r2.Read()
			}
		})
		t4r := timeIt(func() {
			for i := 0; i < n; i++ {
				r4.Read()
			}
		})
		fmt.Printf("%6d %12s %12s %12s %12s %12s\n", k,
			perOp(t1, n), perOp(t2, n), perOp(t4, n), perOp(t2r, n), perOp(t4r, n))
		recordPerOp("E10", fmt.Sprintf("alg1-write/K=%d", k), t1, n)
		recordPerOp("E10", fmt.Sprintf("alg2-write/K=%d", k), t2, n)
		recordPerOp("E10", fmt.Sprintf("alg4-write/K=%d", k), t4, n)
		recordPerOp("E10", fmt.Sprintf("alg2-read/K=%d", k), t2r, n)
		recordPerOp("E10", fmt.Sprintf("alg4-read/K=%d", k), t4r, n)
	}

	fmt.Println("\n    reader under a write storm (K=64):")
	fmt.Printf("%12s %14s %14s\n", "impl", "reads/sec", "retries/read")
	for _, impl := range []string{"alg2", "alg4"} {
		reads, retries := writeStorm(impl, 64, 200*time.Millisecond)
		fmt.Printf("%12s %14.0f %14.4f\n", impl, reads, retries)
		record("E10", impl+"-storm-reads", "reads/sec", reads)
		record("E10", impl+"-storm-retries", "retries/read", retries)
	}
	fmt.Println("    (Algorithm 2's reader retries and can starve; Algorithm 4's reader")
	fmt.Println("     is helped by the writer and never retries more than twice)")
	fmt.Println()
}

// writeStorm hammers the register with writes while the reader reads for
// the given duration; it returns reads/second and mean retries per read.
func writeStorm(impl string, k int, d time.Duration) (readsPerSec, meanRetries float64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var r2 *conc.Alg2Register
	var r4 *conc.Alg4Register
	if impl == "alg2" {
		r2 = conc.NewAlg2Register(k, 1)
	} else {
		r4 = conc.NewAlg4Register(k, 1)
	}
	wg.Add(1)
	go func() { // writer storm
		defer wg.Done()
		v := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			v = v%k + 1
			if r2 != nil {
				r2.Write(v)
			} else {
				r4.Write(v)
			}
		}
	}()
	reads, retries := 0, 0
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if r2 != nil {
			_, rt := r2.Read()
			retries += rt
		} else {
			r4.Read()
		}
		reads++
	}
	close(stop)
	wg.Wait()
	return float64(reads) / d.Seconds(), float64(retries) / float64(reads)
}
