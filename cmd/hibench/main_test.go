package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed, keeping test logs readable.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ferr := f()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// TestSmoke runs two benchmark families with tiny parameters and -json,
// and checks that the machine-readable results are written and parse.
func TestSmoke(t *testing.T) {
	t.Chdir(t.TempDir())
	*expFlag = "E10,E21,E22,E23"
	*opsFlag = 2000
	*jsonFlag = true
	out := captureStdout(t, run)
	for _, want := range []string{"E10", "E21", "E22", "E23", "ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, name := range []string{"BENCH_E10.json", "BENCH_E21.json", "BENCH_E22.json", "BENCH_E23.json"} {
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		var doc struct {
			Exp     string `json:"exp"`
			Results []struct {
				Case   string  `json:"case"`
				Metric string  `json:"metric"`
				Value  float64 `json:"value"`
			} `json:"results"`
		}
		if err := json.Unmarshal(buf, &doc); err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if len(doc.Results) == 0 {
			t.Errorf("%s has no result rows", name)
		}
		for _, r := range doc.Results {
			// Latency and throughput rows must be positive; counters like
			// retries/read may legitimately be zero.
			if r.Case == "" || r.Metric == "" || r.Value < 0 || (r.Metric == "ns/op" && r.Value == 0) {
				t.Errorf("%s has a malformed row: %+v", name, r)
			}
		}
	}
}
