package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"hiconc/internal/benchfmt"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed, keeping test logs readable.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	ferr := f()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// captureStdoutErr is captureStdout for runs whose error the test wants
// to inspect instead of failing on.
func captureStdoutErr(f func() error) (string, error) {
	r, w, err := os.Pipe()
	if err != nil {
		return "", err
	}
	orig := os.Stdout
	os.Stdout = w
	ferr := f()
	os.Stdout = orig
	w.Close()
	out, _ := io.ReadAll(r)
	return string(out), ferr
}

// resetBench gives each smoke test a fresh recorder and baseline flags
// (the flag globals are shared package state).
func resetBench(t *testing.T) {
	t.Helper()
	rec = benchfmt.NewRecorder()
	*expFlag = "all"
	*opsFlag = 2000
	*jsonFlag = false
	*checkFlag = false
	*tolFlag = 0.5
	*maxOverheadFlag = 2.0
	*watchFlag = false
	*httpFlag = ""
	*recordFlag = ""
}

// TestSmoke runs benchmark families with tiny parameters and -json,
// and checks that the machine-readable results are written and parse.
func TestSmoke(t *testing.T) {
	t.Chdir(t.TempDir())
	resetBench(t)
	*expFlag = "E10,E21,E22,E23,E24,E25"
	*jsonFlag = true
	out := captureStdout(t, run)
	for _, want := range []string{"E10", "E21", "E22", "E23", "E24", "E25", "ns",
		"raw dumps with metrics enabled vs disabled identical: true",
		"raw dumps with recording enabled vs disabled identical: true",
		"linearizable: true", "corrupted recording rejected by extraction: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, name := range []string{"BENCH_E10.json", "BENCH_E21.json", "BENCH_E22.json", "BENCH_E23.json", "BENCH_E24.json", "BENCH_E25.json"} {
		buf, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		var doc struct {
			Exp     string `json:"exp"`
			Results []struct {
				Case   string  `json:"case"`
				Metric string  `json:"metric"`
				Value  float64 `json:"value"`
			} `json:"results"`
		}
		if err := json.Unmarshal(buf, &doc); err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if len(doc.Results) == 0 {
			t.Errorf("%s has no result rows", name)
		}
		for _, r := range doc.Results {
			// Latency and throughput rows must be positive; counters like
			// retries/read may legitimately be zero, and a measured A/B
			// overhead percentage can dip negative in timing noise.
			if r.Case == "" || r.Metric == "" || (r.Value < 0 && r.Metric != "percent") || (r.Metric == "ns/op" && r.Value == 0) {
				t.Errorf("%s has a malformed row: %+v", name, r)
			}
		}
	}
	// E24's machine-checked rows: the overhead gate input and the HI
	// boundary verdict must be present.
	e24, err := benchfmt.ReadFile("BENCH_E24.json")
	if err != nil {
		t.Fatal(err)
	}
	if e24.Find("set/computed-overhead", "percent") == nil {
		t.Error("BENCH_E24.json missing the computed-overhead row")
	}
	if r := e24.Find("hi/rawdump-identical", "bool"); r == nil || r.Value != 1 {
		t.Errorf("BENCH_E24.json HI-boundary row missing or false: %+v", r)
	}
	// E25's machine-checked rows: the overhead gate input, the
	// linearizability verdict on the recorded run, the corruption
	// rejection and the HI-boundary verdict.
	e25, err := benchfmt.ReadFile("BENCH_E25.json")
	if err != nil {
		t.Fatal(err)
	}
	if e25.Find("set/computed-overhead", "percent") == nil {
		t.Error("BENCH_E25.json missing the computed-overhead row")
	}
	for _, kase := range []string{"check/linearizable", "check/corrupt-rejected", "hi/rawdump-identical"} {
		if r := e25.Find(kase, "bool"); r == nil || r.Value != 1 {
			t.Errorf("BENCH_E25.json %s row missing or false: %+v", kase, r)
		}
	}
}

// TestUnknownExperiment checks that a typo in -exp fails loudly instead
// of silently selecting nothing.
func TestUnknownExperiment(t *testing.T) {
	resetBench(t)
	*expFlag = "E10,E99"
	out, err := captureStdoutErr(run)
	if err == nil {
		t.Fatalf("expected an unknown-experiment error, got success:\n%s", out)
	}
	if !strings.Contains(err.Error(), `unknown experiment "E99"`) {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestCheckMissingBaseline checks that -check on a family with no
// committed BENCH file is an error, not a silent skip.
func TestCheckMissingBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	resetBench(t)
	*expFlag = "E10"
	*checkFlag = true
	out, err := captureStdoutErr(run)
	if err == nil {
		t.Fatalf("expected a missing-baseline error, got success:\n%s", out)
	}
	if !strings.Contains(err.Error(), "no committed baseline") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestRecordSmoke runs a family under -record and checks that the flight
// trace is written, parses as Chrome trace JSON and holds op events.
func TestRecordSmoke(t *testing.T) {
	t.Chdir(t.TempDir())
	resetBench(t)
	*expFlag = "E20" // drives the shard layer, where op recording lives
	*recordFlag = "trace.json"
	out := captureStdout(t, run)
	if !strings.Contains(out, "wrote flight recording") {
		t.Errorf("output missing the recording confirmation:\n%s", out)
	}
	buf, err := os.ReadFile("trace.json")
	if err != nil {
		t.Fatalf("missing trace.json: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace.json has no events")
	}
	begins := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" {
			begins++
		}
	}
	if begins == 0 {
		t.Error("trace.json has no B (invoke) events; the op sites never recorded")
	}
}

// TestWatchSmoke drives the live-metrics view for a few ticks.
func TestWatchSmoke(t *testing.T) {
	resetBench(t)
	*watchFlag = true
	*tickFlag = 50 * time.Millisecond
	*watchForFlag = 250 * time.Millisecond
	out := captureStdout(t, run)
	for _, want := range []string{"hibench -watch", "counter", "hash-insert", "final cumulative"} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

// TestCheckSmoke runs a family against a committed baseline scaled far
// above the fresh numbers (must pass), then far below (must fail). Two
// honest tiny runs can legitimately differ by orders of magnitude in
// scheduler noise, so the baselines are synthesized from one real run
// rather than compared against a rerun.
func TestCheckSmoke(t *testing.T) {
	t.Chdir(t.TempDir())
	resetBench(t)
	*expFlag = "E10"
	*jsonFlag = true
	captureStdout(t, run)

	scaleBaseline := func(factor float64) {
		t.Helper()
		committed, err := benchfmt.ReadFile("BENCH_E10.json")
		if err != nil {
			t.Fatal(err)
		}
		for i := range committed.Results {
			if committed.Results[i].Metric == "ns/op" {
				committed.Results[i].Value *= factor
			}
		}
		buf, _ := json.Marshal(committed)
		if err := os.WriteFile("BENCH_E10.json", buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	*jsonFlag = false
	*checkFlag = true
	scaleBaseline(1000) // committed far slower: fresh run must pass
	rec = benchfmt.NewRecorder()
	out := captureStdout(t, run)
	if !strings.Contains(out, "E10 vs committed") {
		t.Errorf("check output missing the E10 delta table:\n%s", out)
	}

	scaleBaseline(1e-6) // committed far faster: fresh run must regress
	rec = benchfmt.NewRecorder()
	out, err := captureStdoutErr(run)
	if err == nil {
		t.Fatalf("expected a regression failure, got success:\n%s", out)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("regressed rows not marked FAIL:\n%s", out)
	}
}
