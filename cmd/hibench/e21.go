package main

import (
	"fmt"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/shard"
	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

// insertRejectRate replays the mixes once, sequentially, on a fresh
// instance and returns the fraction of inserts answered with
// hihash.RspFull. Rejected inserts are cheaper than real ones (one load,
// no CAS), so the rate qualifies the bounded tables' ns/op numbers; the
// replay keeps the counting off the timed path.
func insertRejectRate(a conc.Applier, mixes [][]core.Op) float64 {
	inserts, fulls := 0, 0
	for pid, ops := range mixes {
		for _, op := range ops {
			rsp := a.Apply(pid, op)
			if op.Name == spec.OpInsert {
				inserts++
				if rsp == hihash.RspFull {
					fulls++
				}
			}
		}
	}
	if inserts == 0 {
		return 0
	}
	return float64(fulls) / float64(inserts)
}

func runE21() {
	fmt.Println("=== E21: the HICHT direct hash table vs the universal-construction path")
	const n, domain, mapKeys = 8, 16384, 256

	fmt.Println("\n    set, 10% lookups, 8 goroutines (ns/op):")
	fmt.Printf("%10s %16s %16s %18s %16s %12s\n",
		"zipf", "hihash load=0.5", "hihash load=1.0", "sharded-universal", "sharded-hihash", "sync.Map")
	type rejectRow struct {
		zipf       float64
		half, full float64
	}
	var rejects []rejectRow
	for _, s := range []float64{1.01, 1.5} {
		mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
			return g.SetZipf(8192, domain, s, 0.1)
		})
		tag := fmt.Sprintf("set/zipf=%.2f", s)
		fmt.Printf("%10.2f %16s %16s %18s %16s %12s\n", s,
			measurePerKey("E21", tag+"/hihash/load=0.5", hihash.NewSet(domain, domain/2), n, mixes),
			measurePerKey("E21", tag+"/hihash/load=1.0", hihash.NewSet(domain, domain/4), n, mixes),
			measurePerKey("E21", tag+"/sharded-universal/S=16", shard.NewSet(n, domain, 16), n, mixes),
			measurePerKey("E21", tag+"/sharded-hihash/S=16", shard.NewHashSet(n, domain, 16), n, mixes),
			measurePerKey("E21", tag+"/syncmap", conc.NewSyncMapSet(), n, mixes))
		row := rejectRow{
			zipf: s,
			half: insertRejectRate(hihash.NewSet(domain, domain/2), mixes),
			full: insertRejectRate(hihash.NewSet(domain, domain/4), mixes),
		}
		rejects = append(rejects, row)
		record("E21", tag+"/hihash/load=0.5/reject", "reject-rate", row.half)
		record("E21", tag+"/hihash/load=1.0/reject", "reject-rate", row.full)
	}
	fmt.Println("\n    insert rejection rate of the bounded tables (RspFull; a rejected")
	fmt.Println("    insert is one load, cheaper than a real insert — qualify ns/op with")
	fmt.Println("    it; sharded-hihash displaces since E22 and never rejects):")
	for _, r := range rejects {
		fmt.Printf("      zipf=%.2f: load=0.5 %.2f%%, load=1.0 %.2f%%\n",
			r.zipf, 100*r.half, 100*r.full)
	}

	fmt.Println("\n    multi-counter map, 10% reads, Zipf s=1.2 (ns/op):")
	fmt.Printf("%16s %18s %22s\n", "hihash-map", "sharded-universal", "sharded-combining")
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.2, 0.1)
	})
	fmt.Printf("%16s %18s %22s\n",
		measurePerKey("E21", "map/hihash", hihash.NewMap(mapKeys, mapKeys/4), n, mapMixes),
		measurePerKey("E21", "map/sharded-universal/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes),
		measurePerKey("E21", "map/sharded-combining/S=16", shard.NewCombiningMap(n, mapKeys, 16), n, mapMixes))
	fmt.Println("    (the direct table has no serialization point at all: lookups are one")
	fmt.Println("     atomic load, updates one CAS on the key's bucket group — every")
	fmt.Println("     relocation the canonical layout needs is folded into that CAS)")
}
