package main

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/histats"
	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

// referenceReads routes lookups through ContainsReference — the
// retained pre-E26 read path (unbounded validated double collect with
// slice-collecting scans) — while updates take the live paths. It is
// the A side of the E26 read-path A/B.
type referenceReads struct{ s *hihash.Set }

func (r referenceReads) Name() string { return r.s.Name() + "+reference-reads" }

func (r referenceReads) Apply(pid int, op core.Op) int {
	if op.Name == spec.OpLookup {
		if r.s.ContainsReference(op.Arg) {
			return 1
		}
		return 0
	}
	return r.s.Apply(pid, op)
}

// runE26 measures the E26 read path and machine-checks its contract: a
// read-heavy Zipf sweep of the SWAR + bounded-retry lookups against the
// pre-E26 reference read path and a sync.Map baseline, the retry and
// probe distributions of a churny read-heavy run via histats, and three
// gates — observed retries never exceed the fast-path budget, a
// displacing lookup at quiescence allocates nothing, and the new read
// path beats the reference on the read-heavy sweep at 8 goroutines.
func runE26() error {
	fmt.Println("=== E26: fast-path reads — SWAR probes, bounded retries, an allocation-free hot path")
	const domain, zipf = 16384, 1.2
	const g0 = domain / 8
	readFracs := []float64{0.5, 0.9, 0.99}
	procs := []int{1, 2, 4, 8, 16}

	newDisp := func() conc.Applier {
		s := hihash.NewDisplaceSet(domain, g0)
		preload(s, domain/4)
		return s
	}
	refDisp := func() conc.Applier {
		s := hihash.NewDisplaceSet(domain, g0)
		preload(s, domain/4)
		return referenceReads{s}
	}
	syncMap := func() conc.Applier {
		m := conc.NewSyncMapSet()
		preload(m, domain/4)
		return m
	}
	measure := func(kase string, a conc.Applier, n int, mixes [][]core.Op) time.Duration {
		d := runPerKey(a, n, *opsFlag/n, mixes)
		recordPerOp("E26", kase, d, *opsFlag)
		return d
	}

	fmt.Printf("\n    displacing table, Zipf s=%.1f read sweep (ns/op; speedup is\n", zipf)
	fmt.Println("    reference/new — the same table and update paths, only the read")
	fmt.Println("    path differs):")
	fmt.Printf("%8s %6s %14s %12s %12s %10s\n",
		"reads", "procs", "swar+bounded", "reference", "sync.Map", "speedup")
	var tNew8, tRef8 time.Duration
	for _, rf := range readFracs {
		for _, n := range procs {
			mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
				return g.SetZipf(8192, domain, zipf, rf)
			})
			tag := fmt.Sprintf("read=%.2f/n=%d", rf, n)
			tNew := measure(tag+"/swar-bounded", newDisp(), n, mixes)
			tRef := measure(tag+"/reference", refDisp(), n, mixes)
			tSM := measure(tag+"/syncmap", syncMap(), n, mixes)
			if rf == 0.99 && n == 8 {
				tNew8, tRef8 = tNew, tRef
			}
			fmt.Printf("%7.0f%% %6d %14s %12s %12s %9.2fx\n", 100*rf, n,
				perOp(tNew, *opsFlag), perOp(tRef, *opsFlag), perOp(tSM, *opsFlag),
				float64(tRef.Nanoseconds())/float64(tNew.Nanoseconds()))
		}
	}
	speedup8 := float64(tRef8.Nanoseconds()) / float64(tNew8.Nanoseconds())
	record("E26", "read=0.99/n=8/speedup-vs-reference", "ratio", speedup8)

	// Retry and probe distributions, gathered with metrics enabled on an
	// untimed run (enabling histats during the timed sweep would distort
	// it). The update-heavy mix is the interesting one here: retries only
	// happen when a writer races the probe run a reader is validating.
	const distN = 8
	r := histats.Enable()
	distMixes := perKeyMixes(distN, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, domain, zipf, 0.5)
	})
	runPerKey(newDisp(), distN, *opsFlag/distN, distMixes)
	snap := r.Snapshot()
	histats.Disable()
	retries := snap.Counters[histats.CtrLookupRetry]
	helps := snap.Counters[histats.CtrLookupHelp]
	rh := &snap.Hists[histats.HistLookupRetry]
	pl := &snap.Hists[histats.HistProbeLen]
	fmt.Printf("\n    read-path interference at 50%% reads, %d goroutines, %d ops:\n", distN, *opsFlag)
	fmt.Printf("      validation retries: %d, help fallbacks: %d\n", retries, helps)
	fmt.Printf("      lookups that retried at all: %d, their retries p50/p99/max: %d/%d/%d (budget %d)\n",
		rh.Count, rh.Quantile(0.50), rh.Quantile(0.99), rh.Max(), hihash.LookupRetryLimit())
	fmt.Printf("      insert probe length p50/p99/max: %d/%d/%d\n",
		pl.Quantile(0.50), pl.Quantile(0.99), pl.Max())
	record("E26", "dist/lookup-retries", "count", float64(retries))
	record("E26", "dist/help-fallbacks", "count", float64(helps))
	record("E26", "dist/retry-max", "count", float64(rh.Max()))

	// The allocation gate: a displacing lookup at quiescence — over a
	// table that grew online and holds displaced probe runs — must not
	// allocate. The collect record lives in fixed stack buffers
	// (probeScan); a regression here is a silent hot-path heap record.
	as := hihash.NewDisplaceSet(domain, 16)
	preload(as, domain/4)
	allocs := testing.AllocsPerRun(1000, func() {
		as.Contains(1)      // present, hot
		as.Contains(domain) // absent
	})
	fmt.Printf("\n    allocations per displacing lookup pair at quiescence: %.1f\n", allocs)
	record("E26", "gate/lookup-allocs", "count", allocs)

	var gateErr error
	if max, lim := rh.Max(), uint64(hihash.LookupRetryLimit()); max > lim {
		gateErr = errors.Join(gateErr, fmt.Errorf("E26: observed lookup retries %d exceed the fast-path budget %d", max, lim))
	}
	if allocs != 0 {
		gateErr = errors.Join(gateErr, fmt.Errorf("E26: displacing lookup allocates %.1f per op pair, want 0", allocs))
	}
	if tNew8 >= tRef8 {
		gateErr = errors.Join(gateErr, fmt.Errorf("E26: SWAR+bounded read path (%s) did not beat the reference read path (%s) at 8 goroutines, 99%% reads",
			perOp(tNew8, *opsFlag), perOp(tRef8, *opsFlag)))
	}
	if gateErr == nil {
		fmt.Printf("    gate: retries within budget %d, zero-alloc lookups, %.2fx vs reference at 8 goroutines\n",
			hihash.LookupRetryLimit(), speedup8)
	}
	return gateErr
}
