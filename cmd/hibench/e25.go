package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/hirec"
	"hiconc/internal/linearize"
	"hiconc/internal/obj"
	"hiconc/internal/spec"
	"hiconc/internal/trace"
	"hiconc/internal/workload"
)

// e25Sites is the per-operation hot-site budget of the recorded stack:
// one OpStart, one OpEnd, and at most one protocol step per successful
// update on the obj.HashSet path. The E25 gate multiplies this by the
// measured cost of one disabled recording site.
const e25Sites = 3

// runE25 measures the flight recorder itself and machine-checks what it
// captures: the unit price of a disabled recording site, a disabled-vs-
// recording A/B over an E21-shaped workload on the API-layer hash set
// (where the invoke/return sites live), a machine-checked bound on the
// computed disabled-path overhead, then a recorded concurrent run whose
// extracted history must pass the linearizability checker, a corrupted
// recording that must be rejected, and the raw-dump identity check that
// recording stays outside the HI boundary.
func runE25() error {
	fmt.Println("=== E25: flight recorder — record native executions, machine-check them (internal/hirec)")
	const n, domain = 8, 8192

	// E25 measures its own enable/disable transitions, so a recorder
	// installed by -record is suspended for the duration and restored
	// after (its lanes would otherwise swallow this experiment's traffic).
	suspended := hirec.Disable()
	defer func() {
		if suspended != nil {
			hirec.EnableWith(suspended)
		}
	}()

	// Unit price of one disabled recording site.
	siteNs := measureDisabledRecSite()
	fmt.Printf("\n    disabled site (atomic load + branch): %.2f ns/call\n", siteNs)
	record("E25", "site/disabled", "ns/call", siteNs)

	// Disabled-vs-recording A/B on the obj.HashSet stack.
	mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, domain, 1.01, 0.1)
	})
	runSet := func() time.Duration {
		s := obj.NewHashSet(domain)
		for k := 1; k <= domain/4; k++ {
			s.Insert(k)
		}
		return runObjSet(s, n, *opsFlag/n, mixes)
	}
	tOff := runSet()
	hirec.Enable(1 << 15)
	tOn := runSet()
	hirec.Disable()

	offNs := float64(tOff.Nanoseconds()) / float64(*opsFlag)
	measured := 100 * (float64(tOn.Nanoseconds()) - float64(tOff.Nanoseconds())) / float64(tOff.Nanoseconds())
	par := runtime.GOMAXPROCS(0)
	if par > n {
		par = n
	}
	computed := 100 * e25Sites * siteNs / (float64(par) * offNs)
	fmt.Println("\n    disabled vs recording (ns/op; measured delta is wall-clock noise,")
	fmt.Println("    the computed bound is what the gate checks):")
	fmt.Printf("%12s %12s %12s %12s %12s\n", "workload", "disabled", "recording", "measured", "computed")
	fmt.Printf("%12s %12s %12s %11.1f%% %11.2f%%\n", "set",
		perOp(tOff, *opsFlag), perOp(tOn, *opsFlag), measured, computed)
	recordPerOp("E25", "set/disabled", tOff, *opsFlag)
	recordPerOp("E25", "set/recording", tOn, *opsFlag)
	record("E25", "set/measured-overhead", "percent", measured)
	record("E25", "set/computed-overhead", "percent", computed)

	// Record a real concurrent run and machine-check it: six goroutines
	// over a small domain (the exhaustive checker caps at 64 operations),
	// extracted to a history and fed to linearize against the set spec.
	const checkN, checkOps, checkDomain = 6, 6, 8
	flight := hirec.Enable(1 << 15)
	cs := obj.NewHashSet(checkDomain)
	var wg sync.WaitGroup
	for pid := 0; pid < checkN; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < checkOps; i++ {
				key := (pid+i)%checkDomain + 1
				switch i % 3 {
				case 0:
					cs.Insert(key)
				case 1:
					cs.Contains(key)
				default:
					cs.Remove(key)
				}
			}
		}(pid)
	}
	wg.Wait()
	hirec.Disable()
	recCheck := flight.Snapshot()
	recs, extractErr := hirec.Records(recCheck)
	var checkErr error
	if extractErr != nil {
		checkErr = extractErr
	} else {
		checkErr = linearize.CheckRecords(spec.NewSet(checkDomain), recs)
	}
	linearizable := checkErr == nil
	fmt.Printf("\n    recorded run: %d events, %d operations; linearizable: %v\n",
		len(recCheck.Events), len(recs), linearizable)
	if checkErr != nil {
		// Dump the timeline: a failed verdict without the recording that
		// produced it cannot be debugged.
		fmt.Print(indent(trace.NativeTimeline(recCheck), "      "))
		fmt.Printf("      verdict: %v\n", checkErr)
	}
	record("E25", "check/ops", "count", float64(len(recs)))
	record("E25", "check/linearizable", "bool", b2f(linearizable))

	// The negative control: a recording with an orphaned response must be
	// rejected before it reaches the checker.
	corrupt := hirec.Recording{Events: append(append([]hirec.Event{}, recCheck.Events...), hirec.Event{
		Seq: uint64(len(recCheck.Events)) + 1, Kind: hirec.KReturn,
		Lane: 63, Index: 9999, Name: spec.OpInsert,
	})}
	_, corruptErr := hirec.Records(corrupt)
	corruptRejected := corruptErr != nil
	fmt.Printf("    corrupted recording rejected by extraction: %v\n", corruptRejected)
	record("E25", "check/corrupt-rejected", "bool", b2f(corruptRejected))

	// The HI-boundary check: the same operation sequence with and without
	// the recorder installed must leave bit-identical raw dumps (the E24
	// build shape — inserts, removes, a grow).
	build := func() *hihash.Set {
		s := hihash.NewDisplaceSet(1024, 8)
		for k := 1; k <= 512; k++ {
			s.Insert(k)
		}
		for k := 3; k <= 512; k += 3 {
			s.Remove(k)
		}
		s.Grow()
		return s
	}
	plain := build()
	hirec.Enable(1 << 12)
	recorded := build()
	hirec.Disable()
	identical := bytes.Equal(plain.RawDump(), recorded.RawDump())
	fmt.Printf("    HI boundary: raw dumps with recording enabled vs disabled identical: %v\n", identical)
	record("E25", "hi/rawdump-identical", "bool", b2f(identical))

	var gateErr error
	if !identical {
		gateErr = errors.Join(gateErr, fmt.Errorf("E25: recording leaked into the representation (raw dumps differ)"))
	}
	if !linearizable {
		gateErr = errors.Join(gateErr, fmt.Errorf("E25: recorded native execution failed the linearizability check: %w", checkErr))
	}
	if !corruptRejected {
		gateErr = errors.Join(gateErr, fmt.Errorf("E25: extraction accepted a corrupted recording"))
	}
	if computed > *maxOverheadFlag {
		gateErr = errors.Join(gateErr, fmt.Errorf("E25: computed disabled-path overhead %.2f%% exceeds -maxoverhead %.2f%%",
			computed, *maxOverheadFlag))
	}
	if gateErr == nil {
		fmt.Printf("    gate: computed disabled-path overhead %.2f%% <= %.2f%% budget\n", computed, *maxOverheadFlag)
	}
	return gateErr
}

// measureDisabledRecSite times the disabled fast path of one recording
// site: hirec.Step with no recorder installed.
func measureDisabledRecSite() float64 {
	const calls = 5_000_000
	d := timeIt(func() {
		for i := 0; i < calls; i++ {
			hirec.Step("bounded-update")
		}
	})
	return float64(d.Nanoseconds()) / calls
}

// runObjSet drives the API-layer hash set (where the invoke/return
// recording sites live) with n goroutines replaying per-key mixes.
func runObjSet(s *obj.HashSet, n, opsPer int, mixes [][]core.Op) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := mixes[pid]
				for i := 0; i < opsPer; i++ {
					op := ops[i%len(ops)]
					switch op.Name {
					case spec.OpInsert:
						s.Insert(op.Arg)
					case spec.OpRemove:
						s.Remove(op.Arg)
					default:
						s.Contains(op.Arg)
					}
				}
			}(pid)
		}
		wg.Wait()
	})
}

// writeFlightTrace writes a -record recording as Chrome trace JSON.
func writeFlightTrace(path string, rec hirec.Recording) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-record: %w", err)
	}
	if err := hirec.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return fmt.Errorf("-record: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-record: %w", err)
	}
	fmt.Printf("wrote flight recording (%d events, %d dropped) to %s\n",
		len(rec.Events), rec.Dropped, path)
	return nil
}
