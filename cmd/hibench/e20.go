package main

import (
	"fmt"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/shard"
	"hiconc/internal/workload"
)

func runE20() {
	fmt.Println("=== E20: scale-out — sharding and operation combining")
	const n = 8

	fmt.Println("\n    shard scaling (Zipf s=1.01, 10% reads; ns/op):")
	fmt.Printf("%10s %14s %14s %14s %14s\n", "object", "baseline", "S=1", "S=4", "S=16")
	setDomain := 16384
	setMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, setDomain, 1.01, 0.1)
	})
	row := []string{
		measurePerKey("E20", "set/baseline", conc.NewUniversal(conc.BigSetObj{Words: setDomain / 64}, n), n, setMixes),
		measurePerKey("E20", "set/S=1", shard.NewSet(n, setDomain, 1), n, setMixes),
		measurePerKey("E20", "set/S=4", shard.NewSet(n, setDomain, 4), n, setMixes),
		measurePerKey("E20", "set/S=16", shard.NewSet(n, setDomain, 16), n, setMixes),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "set", row[0], row[1], row[2], row[3])
	mapKeys := 256
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.01, 0.1)
	})
	row = []string{
		measurePerKey("E20", "map/baseline", conc.NewUniversal(conc.MultiCounterObj{}, n), n, mapMixes),
		measurePerKey("E20", "map/S=1", shard.NewMap(n, mapKeys, 1), n, mapMixes),
		measurePerKey("E20", "map/S=4", shard.NewMap(n, mapKeys, 4), n, mapMixes),
		measurePerKey("E20", "map/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "map", row[0], row[1], row[2], row[3])
	fmt.Println("    (each update copies an immutable state 1/S the size, and on")
	fmt.Println("     multicore hardware shards also update in parallel)")

	fmt.Println("\n    combining ablation (100% updates, total contention; ns/op):")
	fmt.Printf("%10s %14s %14s\n", "object", "plain", "combining")
	ctrMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.CounterMix(8192, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "counter",
		measurePerKey("E20", "counter/plain", conc.NewUniversal(conc.CounterObj{}, n), n, ctrMixes),
		measurePerKey("E20", "counter/combining", conc.NewCombiningUniversal(conc.CounterObj{}, n), n, ctrMixes))
	hotMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.MapZipf(8192, mapKeys, 1.5, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "map/S=4",
		measurePerKey("E20", "map-hot/S=4/plain", shard.NewMap(n, mapKeys, 4), n, hotMixes),
		measurePerKey("E20", "map-hot/S=4/combining", shard.NewCombiningMap(n, mapKeys, 4), n, hotMixes))
	fmt.Println("    (a process whose SC fails folds all announced commuting ops into")
	fmt.Println("     one batched SC — contention converts into useful batching)")
}
