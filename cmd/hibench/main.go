// Command hibench runs the native performance experiments and prints their
// tables:
//
//	E10 — SWSR register algorithms: write/read latency vs K, and reader
//	      retry behaviour under a write storm (lock-free Algorithm 2 vs
//	      wait-free Algorithm 4).
//	E11 — universal construction scaling: throughput vs goroutine count for
//	      the HI universal construction against the leaky ablation, a
//	      mutex-guarded object and a bare CAS loop.
//	E12 — the cost of history independence: ns/op of the full construction
//	      vs the non-clearing ablation across operation mixes.
//	E20 — scale-out: sharded set/map throughput vs shard count against the
//	      single-Universal baseline, and the operation-combining ablation
//	      under total contention.
//	E21 — the HICHT direct hash table (internal/hihash) against the
//	      sharded universal construction and a sync.Map baseline, across
//	      load factors and Zipf skews.
//	E22 — the unbounded HICHT: cross-group displacement and online
//	      resize — a load-factor sweep past 1 with zero RspFull, an
//	      insert storm that grows the table mid-flight, and the online-
//	      growing map.
//	E23 — adversarial observers: the Kill matrix of internal/faultinject
//	      as a measurement — per-steppoint crash exposure (word distance
//	      of the raw image from the nearest reachable canonical layout)
//	      and the cost of recovering a crashed table to canonical, plus
//	      the observer's own cost of building and byte-diffing history
//	      twins.
//
// Absolute numbers depend on the machine; the paper makes no quantitative
// claims, so the interesting output is the relative shape (see
// EXPERIMENTS.md).
//
// With -json, each experiment family additionally writes a machine-
// readable BENCH_<exp>.json file so the performance trajectory can be
// tracked across commits.
//
// Usage:
//
//	hibench [-exp E10,E11,E12,E20,E21,E22,E23|all] [-ops N] [-procs list] [-json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
	"hiconc/internal/shard"
	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

var (
	expFlag   = flag.String("exp", "all", "experiments to run: E10, E11, E12, E20, E21, E22, E23 or 'all'")
	opsFlag   = flag.Int("ops", 200000, "operations per measurement")
	procsFlag = flag.String("procs", "1,2,4,8", "goroutine counts for E11")
	jsonFlag  = flag.Bool("json", false, "write one BENCH_<exp>.json per experiment family")
)

// jsonResult is one measurement row of a family's BENCH_<exp>.json.
type jsonResult struct {
	// Case identifies the measurement (impl and parameters).
	Case string `json:"case"`
	// Metric names the unit, e.g. "ns/op" or "reads/sec".
	Metric string `json:"metric"`
	// Value is the measurement.
	Value float64 `json:"value"`
}

// results accumulates rows per experiment family for -json output.
var results = map[string][]jsonResult{}

// record stores one measurement row for -json output.
func record(exp, kase, metric string, value float64) {
	results[exp] = append(results[exp], jsonResult{Case: kase, Metric: metric, Value: value})
}

// recordPerOp stores a ns/op row computed from a duration over n ops.
func recordPerOp(exp, kase string, d time.Duration, n int) {
	record(exp, kase, "ns/op", float64(d.Nanoseconds())/float64(n))
}

// writeJSON emits one BENCH_<exp>.json per recorded family.
func writeJSON() error {
	for exp, rows := range results {
		doc := struct {
			Exp     string       `json:"exp"`
			Ops     int          `json:"ops"`
			Results []jsonResult `json:"results"`
		}{Exp: exp, Ops: *opsFlag, Results: rows}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		name := fmt.Sprintf("BENCH_%s.json", exp)
		if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", name, len(rows))
	}
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hibench:", err)
		os.Exit(1)
	}
}

// parseProcs validates and parses the -procs list.
func parseProcs() ([]int, error) {
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad -procs: %w", err)
		}
		if p < 1 {
			return nil, fmt.Errorf("bad -procs: count %d out of range", p)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// run executes the selected experiment families (split from main so the
// smoke tests can drive it in-process).
func run() error {
	// Validate flags before any experiment runs, so a typo cannot discard
	// already-measured families.
	procs, err := parseProcs()
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	if all || want["E10"] {
		runE10()
	}
	if all || want["E11"] {
		runE11(procs)
	}
	if all || want["E12"] {
		runE12()
	}
	if all || want["E20"] {
		runE20()
	}
	if all || want["E21"] {
		runE21()
	}
	if all || want["E22"] {
		runE22()
	}
	if all || want["E23"] {
		runE23()
	}
	if *jsonFlag {
		return writeJSON()
	}
	return nil
}

func runE10() {
	fmt.Println("=== E10: SWSR register algorithms (native, single writer + single reader)")
	fmt.Printf("%6s %12s %12s %12s %12s %12s\n", "K", "alg1 wr", "alg2 wr", "alg4 wr", "alg2 rd", "alg4 rd")
	for _, k := range []int{4, 16, 64, 256} {
		n := *opsFlag
		g := workload.NewGen(1)
		writes := g.RegisterWrites(n, k)

		r1 := conc.NewAlg1Register(k, 1)
		t1 := timeIt(func() {
			for _, op := range writes {
				r1.Write(op.Arg)
			}
		})
		r2 := conc.NewAlg2Register(k, 1)
		t2 := timeIt(func() {
			for _, op := range writes {
				r2.Write(op.Arg)
			}
		})
		r4 := conc.NewAlg4Register(k, 1)
		t4 := timeIt(func() {
			for _, op := range writes {
				r4.Write(op.Arg)
			}
		})
		t2r := timeIt(func() {
			for i := 0; i < n; i++ {
				r2.Read()
			}
		})
		t4r := timeIt(func() {
			for i := 0; i < n; i++ {
				r4.Read()
			}
		})
		fmt.Printf("%6d %12s %12s %12s %12s %12s\n", k,
			perOp(t1, n), perOp(t2, n), perOp(t4, n), perOp(t2r, n), perOp(t4r, n))
		recordPerOp("E10", fmt.Sprintf("alg1-write/K=%d", k), t1, n)
		recordPerOp("E10", fmt.Sprintf("alg2-write/K=%d", k), t2, n)
		recordPerOp("E10", fmt.Sprintf("alg4-write/K=%d", k), t4, n)
		recordPerOp("E10", fmt.Sprintf("alg2-read/K=%d", k), t2r, n)
		recordPerOp("E10", fmt.Sprintf("alg4-read/K=%d", k), t4r, n)
	}

	fmt.Println("\n    reader under a write storm (K=64):")
	fmt.Printf("%12s %14s %14s\n", "impl", "reads/sec", "retries/read")
	for _, impl := range []string{"alg2", "alg4"} {
		reads, retries := writeStorm(impl, 64, 200*time.Millisecond)
		fmt.Printf("%12s %14.0f %14.4f\n", impl, reads, retries)
		record("E10", impl+"-storm-reads", "reads/sec", reads)
		record("E10", impl+"-storm-retries", "retries/read", retries)
	}
	fmt.Println("    (Algorithm 2's reader retries and can starve; Algorithm 4's reader")
	fmt.Println("     is helped by the writer and never retries more than twice)")
	fmt.Println()
}

// writeStorm hammers the register with writes while the reader reads for
// the given duration; it returns reads/second and mean retries per read.
func writeStorm(impl string, k int, d time.Duration) (readsPerSec, meanRetries float64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var r2 *conc.Alg2Register
	var r4 *conc.Alg4Register
	if impl == "alg2" {
		r2 = conc.NewAlg2Register(k, 1)
	} else {
		r4 = conc.NewAlg4Register(k, 1)
	}
	wg.Add(1)
	go func() { // writer storm
		defer wg.Done()
		v := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			v = v%k + 1
			if r2 != nil {
				r2.Write(v)
			} else {
				r4.Write(v)
			}
		}
	}()
	reads, retries := 0, 0
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if r2 != nil {
			_, rt := r2.Read()
			retries += rt
		} else {
			r4.Read()
		}
		reads++
	}
	close(stop)
	wg.Wait()
	return float64(reads) / d.Seconds(), float64(retries) / float64(reads)
}

func runE11(procs []int) {
	fmt.Println("=== E11: universal construction scaling (counter, 80% updates)")
	fmt.Printf("%6s %14s %14s %14s %14s\n", "procs", "universal-hi", "leaky", "mutex", "cas-nohelp")
	for _, n := range procs {
		row := make([]string, 0, 4)
		for _, mk := range []func() conc.Applier{
			func() conc.Applier { return conc.NewUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewLeakyUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewMutexObject(conc.CounterObj{}) },
			func() conc.Applier { return conc.NewNoHelpUniversal(conc.CounterObj{}) },
		} {
			a := mk()
			opsPer := *opsFlag / n
			elapsed := timeIt(func() {
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						ops := workload.NewGen(int64(pid)).CounterMix(opsPer, 0.2)
						for _, op := range ops {
							a.Apply(pid, op)
						}
					}(pid)
				}
				wg.Wait()
			})
			row = append(row, perOp(elapsed, opsPer*n))
			recordPerOp("E11", fmt.Sprintf("%s/procs=%d", a.Name(), n), elapsed, opsPer*n)
		}
		fmt.Printf("%6d %14s %14s %14s %14s\n", n, row[0], row[1], row[2], row[3])
	}
	fmt.Println("    (ns/op; universal-hi pays a constant factor over leaky for clearing,")
	fmt.Println("     and over cas-nohelp for announcing+helping — the price of wait-free HI)")
	fmt.Println()
}

func runE12() {
	fmt.Println("=== E12: the cost of clearing (full Algorithm 5 vs non-clearing ablation)")
	fmt.Printf("%10s %8s %14s %14s %10s\n", "object", "readFrac", "universal-hi", "leaky", "overhead")
	for _, readFrac := range []float64{0.0, 0.5, 0.9} {
		const n = 4
		full := conc.NewUniversal(conc.CounterObj{}, n)
		leaky := conc.NewLeakyUniversal(conc.CounterObj{}, n)
		tFull := runCounter(full, n, *opsFlag/n, readFrac)
		tLeaky := runCounter(leaky, n, *opsFlag/n, readFrac)
		fmt.Printf("%10s %8.1f %14s %14s %9.2fx\n", "counter", readFrac,
			perOp(tFull, *opsFlag), perOp(tLeaky, *opsFlag),
			float64(tFull)/float64(tLeaky))
		recordPerOp("E12", fmt.Sprintf("universal-hi/reads=%.1f", readFrac), tFull, *opsFlag)
		recordPerOp("E12", fmt.Sprintf("leaky/reads=%.1f", readFrac), tLeaky, *opsFlag)
	}
	fmt.Println("    (overhead should be a modest constant factor — clearing adds one")
	fmt.Println("     SC to head, one announce Store and the RL releases per operation)")
}

// measurePerKey runs one per-key measurement, records it for -json and
// returns the formatted ns/op cell.
func measurePerKey(exp, kase string, a conc.Applier, n int, mixes [][]core.Op) string {
	d := runPerKey(a, n, *opsFlag/n, mixes)
	recordPerOp(exp, kase, d, *opsFlag)
	return perOp(d, *opsFlag)
}

func runE20() {
	fmt.Println("=== E20: scale-out — sharding and operation combining")
	const n = 8

	fmt.Println("\n    shard scaling (Zipf s=1.01, 10% reads; ns/op):")
	fmt.Printf("%10s %14s %14s %14s %14s\n", "object", "baseline", "S=1", "S=4", "S=16")
	setDomain := 16384
	setMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, setDomain, 1.01, 0.1)
	})
	row := []string{
		measurePerKey("E20", "set/baseline", conc.NewUniversal(conc.BigSetObj{Words: setDomain / 64}, n), n, setMixes),
		measurePerKey("E20", "set/S=1", shard.NewSet(n, setDomain, 1), n, setMixes),
		measurePerKey("E20", "set/S=4", shard.NewSet(n, setDomain, 4), n, setMixes),
		measurePerKey("E20", "set/S=16", shard.NewSet(n, setDomain, 16), n, setMixes),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "set", row[0], row[1], row[2], row[3])
	mapKeys := 256
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.01, 0.1)
	})
	row = []string{
		measurePerKey("E20", "map/baseline", conc.NewUniversal(conc.MultiCounterObj{}, n), n, mapMixes),
		measurePerKey("E20", "map/S=1", shard.NewMap(n, mapKeys, 1), n, mapMixes),
		measurePerKey("E20", "map/S=4", shard.NewMap(n, mapKeys, 4), n, mapMixes),
		measurePerKey("E20", "map/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "map", row[0], row[1], row[2], row[3])
	fmt.Println("    (each update copies an immutable state 1/S the size, and on")
	fmt.Println("     multicore hardware shards also update in parallel)")

	fmt.Println("\n    combining ablation (100% updates, total contention; ns/op):")
	fmt.Printf("%10s %14s %14s\n", "object", "plain", "combining")
	ctrMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.CounterMix(8192, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "counter",
		measurePerKey("E20", "counter/plain", conc.NewUniversal(conc.CounterObj{}, n), n, ctrMixes),
		measurePerKey("E20", "counter/combining", conc.NewCombiningUniversal(conc.CounterObj{}, n), n, ctrMixes))
	hotMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.MapZipf(8192, mapKeys, 1.5, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "map/S=4",
		measurePerKey("E20", "map-hot/S=4/plain", shard.NewMap(n, mapKeys, 4), n, hotMixes),
		measurePerKey("E20", "map-hot/S=4/combining", shard.NewCombiningMap(n, mapKeys, 4), n, hotMixes))
	fmt.Println("    (a process whose SC fails folds all announced commuting ops into")
	fmt.Println("     one batched SC — contention converts into useful batching)")
}

// insertRejectRate replays the mixes once, sequentially, on a fresh
// instance and returns the fraction of inserts answered with
// hihash.RspFull. Rejected inserts are cheaper than real ones (one load,
// no CAS), so the rate qualifies the bounded tables' ns/op numbers; the
// replay keeps the counting off the timed path.
func insertRejectRate(a conc.Applier, mixes [][]core.Op) float64 {
	inserts, fulls := 0, 0
	for pid, ops := range mixes {
		for _, op := range ops {
			rsp := a.Apply(pid, op)
			if op.Name == spec.OpInsert {
				inserts++
				if rsp == hihash.RspFull {
					fulls++
				}
			}
		}
	}
	if inserts == 0 {
		return 0
	}
	return float64(fulls) / float64(inserts)
}

func runE21() {
	fmt.Println("=== E21: the HICHT direct hash table vs the universal-construction path")
	const n, domain, mapKeys = 8, 16384, 256

	fmt.Println("\n    set, 10% lookups, 8 goroutines (ns/op):")
	fmt.Printf("%10s %16s %16s %18s %16s %12s\n",
		"zipf", "hihash load=0.5", "hihash load=1.0", "sharded-universal", "sharded-hihash", "sync.Map")
	type rejectRow struct {
		zipf       float64
		half, full float64
	}
	var rejects []rejectRow
	for _, s := range []float64{1.01, 1.5} {
		mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
			return g.SetZipf(8192, domain, s, 0.1)
		})
		tag := fmt.Sprintf("set/zipf=%.2f", s)
		fmt.Printf("%10.2f %16s %16s %18s %16s %12s\n", s,
			measurePerKey("E21", tag+"/hihash/load=0.5", hihash.NewSet(domain, domain/2), n, mixes),
			measurePerKey("E21", tag+"/hihash/load=1.0", hihash.NewSet(domain, domain/4), n, mixes),
			measurePerKey("E21", tag+"/sharded-universal/S=16", shard.NewSet(n, domain, 16), n, mixes),
			measurePerKey("E21", tag+"/sharded-hihash/S=16", shard.NewHashSet(n, domain, 16), n, mixes),
			measurePerKey("E21", tag+"/syncmap", conc.NewSyncMapSet(), n, mixes))
		row := rejectRow{
			zipf: s,
			half: insertRejectRate(hihash.NewSet(domain, domain/2), mixes),
			full: insertRejectRate(hihash.NewSet(domain, domain/4), mixes),
		}
		rejects = append(rejects, row)
		record("E21", tag+"/hihash/load=0.5/reject", "reject-rate", row.half)
		record("E21", tag+"/hihash/load=1.0/reject", "reject-rate", row.full)
	}
	fmt.Println("\n    insert rejection rate of the bounded tables (RspFull; a rejected")
	fmt.Println("    insert is one load, cheaper than a real insert — qualify ns/op with")
	fmt.Println("    it; sharded-hihash displaces since E22 and never rejects):")
	for _, r := range rejects {
		fmt.Printf("      zipf=%.2f: load=0.5 %.2f%%, load=1.0 %.2f%%\n",
			r.zipf, 100*r.half, 100*r.full)
	}

	fmt.Println("\n    multi-counter map, 10% reads, Zipf s=1.2 (ns/op):")
	fmt.Printf("%16s %18s %22s\n", "hihash-map", "sharded-universal", "sharded-combining")
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.2, 0.1)
	})
	fmt.Printf("%16s %18s %22s\n",
		measurePerKey("E21", "map/hihash", hihash.NewMap(mapKeys, mapKeys/4), n, mapMixes),
		measurePerKey("E21", "map/sharded-universal/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes),
		measurePerKey("E21", "map/sharded-combining/S=16", shard.NewCombiningMap(n, mapKeys, 16), n, mapMixes))
	fmt.Println("    (the direct table has no serialization point at all: lookups are one")
	fmt.Println("     atomic load, updates one CAS on the key's bucket group — every")
	fmt.Println("     relocation the canonical layout needs is folded into that CAS)")
}

// fullCounter wraps an applier and counts RspFull insert responses — the
// E22 acceptance condition is that the displacing table produces zero.
type fullCounter struct {
	conc.Applier
	fulls int64
}

func (f *fullCounter) Apply(pid int, op core.Op) int {
	rsp := f.Applier.Apply(pid, op)
	if op.Name == spec.OpInsert && rsp == hihash.RspFull {
		atomic.AddInt64(&f.fulls, 1)
	}
	return rsp
}

// preload inserts keys 1..count via pid 0.
func preload(a conc.Applier, count int) {
	for k := 1; k <= count; k++ {
		a.Apply(0, core.Op{Name: spec.OpInsert, Arg: k})
	}
}

func runE22() {
	fmt.Println("=== E22: the unbounded HICHT — displacement and online resize")
	const n, domain = 8, 8192

	// Load-factor sweep: the displacing table starts at capacity
	// domain/2 and is preloaded to lf times that capacity; past lf = 1
	// the bounded table of E21 would reject, the displacing one spills
	// and grows. The bounded column is preloaded to the same load for a
	// like-for-like row (its rejects are counted, not hidden — above
	// load 1 part of its preload and workload is silently refused).
	fmt.Println("\n    load-factor sweep (10% lookups, Zipf s=1.01, 8 goroutines; ns/op):")
	fmt.Printf("%8s %16s %10s %10s %14s %18s %12s\n",
		"load", "hihash-displace", "rejects", "groups", "bounded", "sharded-universal", "sync.Map")
	g0 := domain / 8 // initial capacity domain/2
	for _, lf := range []float64{0.5, 0.75, 1.0, 1.25, 1.5} {
		load := int(lf * float64(g0) * hihash.SlotsPerGroup)
		mixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
			return g.SetZipf(8192, domain, 1.01, 0.1)
		})
		tag := fmt.Sprintf("set/load=%.2f", lf)

		disp := &fullCounter{Applier: hihash.NewDisplaceSet(domain, g0)}
		preload(disp, load)
		dispCell := measurePerKey("E22", tag+"/hihash-displace", disp, n, mixes)
		record("E22", tag+"/hihash-displace/rspfull", "count", float64(disp.fulls))
		record("E22", tag+"/hihash-displace/groups", "groups", float64(disp.Applier.(*hihash.Set).NumGroups()))

		bounded := &fullCounter{Applier: hihash.NewSet(domain, g0)}
		preload(bounded, load)
		boundedCell := measurePerKey("E22", tag+"/hihash-bounded", bounded, n, mixes)
		record("E22", tag+"/hihash-bounded/rspfull", "count", float64(bounded.fulls))

		uni := shard.NewSet(n, domain, 16)
		preload(uni, load)
		uniCell := measurePerKey("E22", tag+"/sharded-universal/S=16", uni, n, mixes)

		sm := conc.NewSyncMapSet()
		preload(sm, load)
		smCell := measurePerKey("E22", tag+"/syncmap", sm, n, mixes)

		fmt.Printf("%8.2f %16s %10d %10d %14s %18s %12s\n",
			lf, dispCell, disp.fulls, disp.Applier.(*hihash.Set).NumGroups(),
			boundedCell, uniCell, smCell)
	}
	fmt.Println("    (rejects must be 0 for hihash-displace at every load factor; the")
	fmt.Println("     groups column shows the online resize absorbing load > 1)")

	// Resize under load: fill the whole domain from 8 goroutines into a
	// table that starts 64x too small, so the migration machinery runs
	// about six times mid-storm; the pre-sized table is the no-resize
	// ceiling.
	fmt.Println("\n    resize under load (insert storm of the full domain, 8 goroutines; ns/op):")
	fmt.Printf("%22s %16s %18s %12s\n", "hihash-displace(G=16)", "pre-sized", "sharded-universal", "sync.Map")
	storm := func(a conc.Applier) time.Duration {
		per := domain / n
		return timeIt(func() {
			var wg sync.WaitGroup
			for pid := 0; pid < n; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						key := pid*per + i + 1
						a.Apply(pid, core.Op{Name: spec.OpInsert, Arg: key})
						if i%10 == 9 {
							a.Apply(pid, core.Op{Name: spec.OpLookup, Arg: key})
						}
					}
				}(pid)
			}
			wg.Wait()
		})
	}
	stormOps := domain + domain/10
	growing := &fullCounter{Applier: hihash.NewDisplaceSet(domain, 16)}
	tGrow := storm(growing)
	recordPerOp("E22", "storm/hihash-displace/G0=16", tGrow, stormOps)
	record("E22", "storm/hihash-displace/rspfull", "count", float64(growing.fulls))
	record("E22", "storm/hihash-displace/groups", "groups", float64(growing.Applier.(*hihash.Set).NumGroups()))
	tPre := storm(hihash.NewDisplaceSet(domain, domain/2))
	recordPerOp("E22", "storm/hihash-presized", tPre, stormOps)
	tUni := storm(shard.NewSet(n, domain, 16))
	recordPerOp("E22", "storm/sharded-universal/S=16", tUni, stormOps)
	tSM := storm(conc.NewSyncMapSet())
	recordPerOp("E22", "storm/syncmap", tSM, stormOps)
	fmt.Printf("%22s %16s %18s %12s\n",
		perOp(tGrow, stormOps), perOp(tPre, stormOps), perOp(tUni, stormOps), perOp(tSM, stormOps))
	fmt.Printf("    (grew to %d groups with %d rejects; resize cost is the gap to pre-sized)\n",
		growing.Applier.(*hihash.Set).NumGroups(), growing.fulls)

	// The map side: the pointer-bucket map growing online from 4 buckets
	// vs pre-sized vs the sharded universal construction.
	fmt.Println("\n    multi-counter map, growing online (Zipf s=1.2, 10% reads; ns/op):")
	const mapKeys = 4096
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.2, 0.1)
	})
	growMap := hihash.NewMap(mapKeys, 4)
	growCell := measurePerKey("E22", "map/hihash-growing/B0=4", growMap, n, mapMixes)
	record("E22", "map/hihash-growing/buckets", "buckets", float64(growMap.NumBuckets()))
	fmt.Printf("%22s %16s %18s\n", "hihash-map(B0=4)", "pre-sized", "sharded-universal")
	fmt.Printf("%22s %16s %18s\n",
		growCell,
		measurePerKey("E22", "map/hihash-presized", hihash.NewMap(mapKeys, mapKeys/4), n, mapMixes),
		measurePerKey("E22", "map/sharded-universal/S=16", shard.NewMap(n, mapKeys, 16), n, mapMixes))
	fmt.Printf("    (the growing map settled at %d buckets)\n", growMap.NumBuckets())
}

// e23Script builds the displacing victim workload of the E23 crash
// matrix, mirroring the internal/faultinject tests: overload group 0
// past its slot budget (forcing eviction), churn one key (forcing a
// flagged remove and a backward-shift pull), then grow (forcing a
// drain). It returns the steps, the key set the script converges to,
// and the abstract states reachable after each step (nil first — the
// empty set — so crash images can be diffed against every candidate).
func e23Script(domain, groups int) (ops []func(s *hihash.Set), heavy []int, candidates [][]int) {
	for k := 1; k <= domain && len(heavy) < hihash.SlotsPerGroup+1; k++ {
		if hihash.GroupOf(k, groups) == 0 {
			heavy = append(heavy, k)
		}
	}
	candidates = append(candidates, nil)
	for i := range heavy {
		k := heavy[i]
		ops = append(ops, func(s *hihash.Set) { s.Insert(k) })
		candidates = append(candidates, append([]int(nil), heavy[:i+1]...))
	}
	churn := heavy[2]
	without := make([]int, 0, len(heavy)-1)
	for _, k := range heavy {
		if k != churn {
			without = append(without, k)
		}
	}
	ops = append(ops,
		func(s *hihash.Set) { s.Remove(churn) },
		func(s *hihash.Set) { s.Insert(churn) },
		func(s *hihash.Set) { s.Grow() },
	)
	candidates = append(candidates, without, heavy, heavy)
	return ops, heavy, candidates
}

func runE23() {
	fmt.Println("=== E23: adversarial observers — crash exposure and recovery cost")
	const domain, groups = 8, 2
	ops, heavy, candidates := e23Script(domain, groups)

	// The Kill matrix as a measurement: per steppoint, how many crash
	// cells the workload reaches, how far the worst stable-geometry image
	// strays from canonical, and what repairing the wreckage costs.
	fmt.Println("\n    Kill matrix (displacing set; dist = 64-bit words from the nearest")
	fmt.Println("    reachable canonical layout; recovery = re-settle keys + grow):")
	fmt.Printf("%16s %8s %10s %10s %14s\n", "steppoint", "cells", "mid-drain", "max dist", "recovery")
	const maxOccurrences = 128
	for sp := hihash.Steppoint(0); sp < hihash.NumSteppoints; sp++ {
		cells, mid, maxDist := 0, 0, 0
		var recovery time.Duration
		for occ := 1; occ <= maxOccurrences; occ++ {
			s := hihash.NewDisplaceSet(domain, groups)
			in := faultinject.Install(faultinject.Plan{Point: sp, Occurrence: occ, Action: faultinject.Kill})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, op := range ops {
					op(s)
				}
			}()
			wg.Wait()
			in.Uninstall()
			if !in.DidFire() {
				break // the workload fires sp fewer than occ times
			}
			cells++
			if d := faultinject.MinCanonicalDistance(s, candidates); d < 0 {
				mid++ // mid-drain image spans two arrays; geometries differ
			} else if d > maxDist {
				maxDist = d
			}
			recovery += timeIt(func() {
				for _, k := range heavy {
					s.Insert(k)
				}
				s.Grow()
			})
		}
		if cells == 0 {
			continue
		}
		perRecovery := float64(recovery.Nanoseconds()) / float64(cells)
		fmt.Printf("%16s %8d %10d %10d %11.0f ns\n", sp, cells, mid, maxDist, perRecovery)
		tag := "kill/" + sp.String()
		record("E23", tag+"/cells", "count", float64(cells))
		record("E23", tag+"/mid-drain", "count", float64(mid))
		record("E23", tag+"/max-distance", "words", float64(maxDist))
		record("E23", tag+"/recovery", "ns/recovery", perRecovery)
	}
	fmt.Println("    (mid-drain cells are incomparable by geometry, not exposed: the")
	fmt.Println("     image spans two group arrays; every cell recovers to canonical)")

	// The observer's own cost: building one history-twin pair (ascending
	// vs descending insert order, both forcing displacement) and
	// byte-diffing their raw dumps — the unit price of the E23 twin check.
	pairs := *opsFlag / 2000
	if pairs < 50 {
		pairs = 50
	}
	mismatches := 0
	tTwin := timeIt(func() {
		for i := 0; i < pairs; i++ {
			a := hihash.NewDisplaceSet(domain, groups)
			b := hihash.NewDisplaceSet(domain, groups)
			for _, k := range heavy {
				a.Insert(k)
			}
			for j := len(heavy) - 1; j >= 0; j-- {
				b.Insert(heavy[j])
			}
			if !bytes.Equal(a.RawDump(), b.RawDump()) {
				mismatches++
			}
		}
	})
	fmt.Printf("\n    twin check (build 2 displacing tables + raw-dump + byte-diff): %s/pair, %d pairs, %d mismatches\n",
		perOp(tTwin, pairs), pairs, mismatches)
	record("E23", "twin/displace-pair", "ns/pair", float64(tTwin.Nanoseconds())/float64(pairs))
	record("E23", "twin/displace-mismatches", "count", float64(mismatches))
}

// perKeyMixes builds one seeded per-key mix per goroutine.
func perKeyMixes(n int, mk func(g *workload.Gen) []core.Op) [][]core.Op {
	mixes := make([][]core.Op, n)
	for pid := range mixes {
		mixes[pid] = mk(workload.NewGen(int64(pid)))
	}
	return mixes
}

// runPerKey drives applier a with n goroutines replaying per-key mixes.
func runPerKey(a conc.Applier, n, opsPer int, mixes [][]core.Op) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := mixes[pid]
				for i := 0; i < opsPer; i++ {
					a.Apply(pid, ops[i%len(ops)])
				}
			}(pid)
		}
		wg.Wait()
	})
}

func runCounter(a conc.Applier, n, opsPer int, readFrac float64) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := workload.NewGen(100+int64(pid)).CounterMix(opsPer, readFrac)
				for _, op := range ops {
					a.Apply(pid, op)
				}
			}(pid)
		}
		wg.Wait()
	})
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func perOp(d time.Duration, n int) string {
	return fmt.Sprintf("%.1f ns", float64(d.Nanoseconds())/float64(n))
}
