// Command hibench runs the native performance experiments and prints their
// tables:
//
//	E10 — SWSR register algorithms: write/read latency vs K, and reader
//	      retry behaviour under a write storm (lock-free Algorithm 2 vs
//	      wait-free Algorithm 4).
//	E11 — universal construction scaling: throughput vs goroutine count for
//	      the HI universal construction against the leaky ablation, a
//	      mutex-guarded object and a bare CAS loop.
//	E12 — the cost of history independence: ns/op of the full construction
//	      vs the non-clearing ablation across operation mixes.
//	E20 — scale-out: sharded set/map throughput vs shard count against the
//	      single-Universal baseline, and the operation-combining ablation
//	      under total contention.
//
// Absolute numbers depend on the machine; the paper makes no quantitative
// claims, so the interesting output is the relative shape (see
// EXPERIMENTS.md).
//
// Usage:
//
//	hibench [-exp E10,E11,E12,E20|all] [-ops N] [-procs list]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/shard"
	"hiconc/internal/workload"
)

var (
	expFlag   = flag.String("exp", "all", "experiments to run: E10, E11, E12, E20 or 'all'")
	opsFlag   = flag.Int("ops", 200000, "operations per measurement")
	procsFlag = flag.String("procs", "1,2,4,8", "goroutine counts for E11")
)

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	all := want["ALL"]
	if all || want["E10"] {
		runE10()
	}
	if all || want["E11"] {
		runE11()
	}
	if all || want["E12"] {
		runE12()
	}
	if all || want["E20"] {
		runE20()
	}
}

func runE10() {
	fmt.Println("=== E10: SWSR register algorithms (native, single writer + single reader)")
	fmt.Printf("%6s %12s %12s %12s %12s %12s\n", "K", "alg1 wr", "alg2 wr", "alg4 wr", "alg2 rd", "alg4 rd")
	for _, k := range []int{4, 16, 64, 256} {
		n := *opsFlag
		g := workload.NewGen(1)
		writes := g.RegisterWrites(n, k)

		r1 := conc.NewAlg1Register(k, 1)
		t1 := timeIt(func() {
			for _, op := range writes {
				r1.Write(op.Arg)
			}
		})
		r2 := conc.NewAlg2Register(k, 1)
		t2 := timeIt(func() {
			for _, op := range writes {
				r2.Write(op.Arg)
			}
		})
		r4 := conc.NewAlg4Register(k, 1)
		t4 := timeIt(func() {
			for _, op := range writes {
				r4.Write(op.Arg)
			}
		})
		t2r := timeIt(func() {
			for i := 0; i < n; i++ {
				r2.Read()
			}
		})
		t4r := timeIt(func() {
			for i := 0; i < n; i++ {
				r4.Read()
			}
		})
		fmt.Printf("%6d %12s %12s %12s %12s %12s\n", k,
			perOp(t1, n), perOp(t2, n), perOp(t4, n), perOp(t2r, n), perOp(t4r, n))
	}

	fmt.Println("\n    reader under a write storm (K=64):")
	fmt.Printf("%12s %14s %14s\n", "impl", "reads/sec", "retries/read")
	for _, impl := range []string{"alg2", "alg4"} {
		reads, retries := writeStorm(impl, 64, 200*time.Millisecond)
		fmt.Printf("%12s %14.0f %14.4f\n", impl, reads, retries)
	}
	fmt.Println("    (Algorithm 2's reader retries and can starve; Algorithm 4's reader")
	fmt.Println("     is helped by the writer and never retries more than twice)")
	fmt.Println()
}

// writeStorm hammers the register with writes while the reader reads for
// the given duration; it returns reads/second and mean retries per read.
func writeStorm(impl string, k int, d time.Duration) (readsPerSec, meanRetries float64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var r2 *conc.Alg2Register
	var r4 *conc.Alg4Register
	if impl == "alg2" {
		r2 = conc.NewAlg2Register(k, 1)
	} else {
		r4 = conc.NewAlg4Register(k, 1)
	}
	wg.Add(1)
	go func() { // writer storm
		defer wg.Done()
		v := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			v = v%k + 1
			if r2 != nil {
				r2.Write(v)
			} else {
				r4.Write(v)
			}
		}
	}()
	reads, retries := 0, 0
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if r2 != nil {
			_, rt := r2.Read()
			retries += rt
		} else {
			r4.Read()
		}
		reads++
	}
	close(stop)
	wg.Wait()
	return float64(reads) / d.Seconds(), float64(retries) / float64(reads)
}

func runE11() {
	fmt.Println("=== E11: universal construction scaling (counter, 80% updates)")
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Println("bad -procs:", err)
			return
		}
		procs = append(procs, p)
	}
	fmt.Printf("%6s %14s %14s %14s %14s\n", "procs", "universal-hi", "leaky", "mutex", "cas-nohelp")
	for _, n := range procs {
		row := make([]string, 0, 4)
		for _, mk := range []func() conc.Applier{
			func() conc.Applier { return conc.NewUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewLeakyUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewMutexObject(conc.CounterObj{}) },
			func() conc.Applier { return conc.NewNoHelpUniversal(conc.CounterObj{}) },
		} {
			a := mk()
			opsPer := *opsFlag / n
			elapsed := timeIt(func() {
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						ops := workload.NewGen(int64(pid)).CounterMix(opsPer, 0.2)
						for _, op := range ops {
							a.Apply(pid, op)
						}
					}(pid)
				}
				wg.Wait()
			})
			row = append(row, perOp(elapsed, opsPer*n))
		}
		fmt.Printf("%6d %14s %14s %14s %14s\n", n, row[0], row[1], row[2], row[3])
	}
	fmt.Println("    (ns/op; universal-hi pays a constant factor over leaky for clearing,")
	fmt.Println("     and over cas-nohelp for announcing+helping — the price of wait-free HI)")
	fmt.Println()
}

func runE12() {
	fmt.Println("=== E12: the cost of clearing (full Algorithm 5 vs non-clearing ablation)")
	fmt.Printf("%10s %8s %14s %14s %10s\n", "object", "readFrac", "universal-hi", "leaky", "overhead")
	for _, readFrac := range []float64{0.0, 0.5, 0.9} {
		const n = 4
		full := conc.NewUniversal(conc.CounterObj{}, n)
		leaky := conc.NewLeakyUniversal(conc.CounterObj{}, n)
		tFull := runCounter(full, n, *opsFlag/n, readFrac)
		tLeaky := runCounter(leaky, n, *opsFlag/n, readFrac)
		fmt.Printf("%10s %8.1f %14s %14s %9.2fx\n", "counter", readFrac,
			perOp(tFull, *opsFlag), perOp(tLeaky, *opsFlag),
			float64(tFull)/float64(tLeaky))
	}
	fmt.Println("    (overhead should be a modest constant factor — clearing adds one")
	fmt.Println("     SC to head, one announce Store and the RL releases per operation)")
}

func runE20() {
	fmt.Println("=== E20: scale-out — sharding and operation combining")
	const n = 8

	fmt.Println("\n    shard scaling (Zipf s=1.01, 10% reads; ns/op):")
	fmt.Printf("%10s %14s %14s %14s %14s\n", "object", "baseline", "S=1", "S=4", "S=16")
	setDomain := 16384
	setMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, setDomain, 1.01, 0.1)
	})
	row := []string{
		perOp(runPerKey(conc.NewUniversal(conc.BigSetObj{Words: setDomain / 64}, n), n, *opsFlag/n, setMixes), *opsFlag),
		perOp(runPerKey(shard.NewSet(n, setDomain, 1), n, *opsFlag/n, setMixes), *opsFlag),
		perOp(runPerKey(shard.NewSet(n, setDomain, 4), n, *opsFlag/n, setMixes), *opsFlag),
		perOp(runPerKey(shard.NewSet(n, setDomain, 16), n, *opsFlag/n, setMixes), *opsFlag),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "set", row[0], row[1], row[2], row[3])
	mapKeys := 256
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.01, 0.1)
	})
	row = []string{
		perOp(runPerKey(conc.NewUniversal(conc.MultiCounterObj{}, n), n, *opsFlag/n, mapMixes), *opsFlag),
		perOp(runPerKey(shard.NewMap(n, mapKeys, 1), n, *opsFlag/n, mapMixes), *opsFlag),
		perOp(runPerKey(shard.NewMap(n, mapKeys, 4), n, *opsFlag/n, mapMixes), *opsFlag),
		perOp(runPerKey(shard.NewMap(n, mapKeys, 16), n, *opsFlag/n, mapMixes), *opsFlag),
	}
	fmt.Printf("%10s %14s %14s %14s %14s\n", "map", row[0], row[1], row[2], row[3])
	fmt.Println("    (each update copies an immutable state 1/S the size, and on")
	fmt.Println("     multicore hardware shards also update in parallel)")

	fmt.Println("\n    combining ablation (100% updates, total contention; ns/op):")
	fmt.Printf("%10s %14s %14s\n", "object", "plain", "combining")
	ctrMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.CounterMix(8192, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "counter",
		perOp(runPerKey(conc.NewUniversal(conc.CounterObj{}, n), n, *opsFlag/n, ctrMixes), *opsFlag),
		perOp(runPerKey(conc.NewCombiningUniversal(conc.CounterObj{}, n), n, *opsFlag/n, ctrMixes), *opsFlag))
	hotMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op { return g.MapZipf(8192, mapKeys, 1.5, 0.0) })
	fmt.Printf("%10s %14s %14s\n", "map/S=4",
		perOp(runPerKey(shard.NewMap(n, mapKeys, 4), n, *opsFlag/n, hotMixes), *opsFlag),
		perOp(runPerKey(shard.NewCombiningMap(n, mapKeys, 4), n, *opsFlag/n, hotMixes), *opsFlag))
	fmt.Println("    (a process whose SC fails folds all announced commuting ops into")
	fmt.Println("     one batched SC — contention converts into useful batching)")
}

// perKeyMixes builds one seeded per-key mix per goroutine.
func perKeyMixes(n int, mk func(g *workload.Gen) []core.Op) [][]core.Op {
	mixes := make([][]core.Op, n)
	for pid := range mixes {
		mixes[pid] = mk(workload.NewGen(int64(pid)))
	}
	return mixes
}

// runPerKey drives applier a with n goroutines replaying per-key mixes.
func runPerKey(a conc.Applier, n, opsPer int, mixes [][]core.Op) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := mixes[pid]
				for i := 0; i < opsPer; i++ {
					a.Apply(pid, ops[i%len(ops)])
				}
			}(pid)
		}
		wg.Wait()
	})
}

func runCounter(a conc.Applier, n, opsPer int, readFrac float64) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := workload.NewGen(100+int64(pid)).CounterMix(opsPer, readFrac)
				for _, op := range ops {
					a.Apply(pid, op)
				}
			}(pid)
		}
		wg.Wait()
	})
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func perOp(d time.Duration, n int) string {
	return fmt.Sprintf("%.1f ns", float64(d.Nanoseconds())/float64(n))
}
