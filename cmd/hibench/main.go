// Command hibench runs the native performance experiments and prints their
// tables:
//
//	E10 — SWSR register algorithms: write/read latency vs K, and reader
//	      retry behaviour under a write storm (lock-free Algorithm 2 vs
//	      wait-free Algorithm 4).
//	E11 — universal construction scaling: throughput vs goroutine count for
//	      the HI universal construction against the leaky ablation, a
//	      mutex-guarded object and a bare CAS loop.
//	E12 — the cost of history independence: ns/op of the full construction
//	      vs the non-clearing ablation across operation mixes.
//	E20 — scale-out: sharded set/map throughput vs shard count against the
//	      single-Universal baseline, and the operation-combining ablation
//	      under total contention.
//	E21 — the HICHT direct hash table (internal/hihash) against the
//	      sharded universal construction and a sync.Map baseline, across
//	      load factors and Zipf skews.
//	E22 — the unbounded HICHT: cross-group displacement and online
//	      resize — a load-factor sweep past 1 with zero RspFull, an
//	      insert storm that grows the table mid-flight, and the online-
//	      growing map.
//	E23 — adversarial observers: the Kill matrix of internal/faultinject
//	      as a measurement — per-steppoint crash exposure (word distance
//	      of the raw image from the nearest reachable canonical layout)
//	      and the cost of recovering a crashed table to canonical, plus
//	      the observer's own cost of building and byte-diffing history
//	      twins.
//	E24 — observability: the cost of the internal/histats metrics layer —
//	      the unit price of a disabled site, enabled-vs-disabled A/B on
//	      the E21/E22 workloads, a machine-checked bound on the computed
//	      disabled-path overhead, the protocol-event distributions the
//	      enabled run gathers, and a raw-dump identity check that metrics
//	      stay outside the HI boundary.
//	E25 — the flight recorder (internal/hirec): the unit price of a
//	      disabled recording site, disabled-vs-recording A/B on the
//	      API-layer hash set, a machine-checked overhead bound, a recorded
//	      concurrent run whose extracted history must pass the
//	      linearizability checker (and a corrupted recording that must be
//	      rejected), and the raw-dump identity check that recording stays
//	      outside the HI boundary.
//	E26 — fast-path reads: the SWAR + bounded-retry read path of the
//	      displacing table against the pre-E26 reference read path and a
//	      sync.Map baseline across read-heavy Zipf mixes, the retry and
//	      probe distributions of a churny run, and machine-checked gates
//	      that retries stay within the fast-path budget, lookups at
//	      quiescence allocate nothing, and the new path wins read-heavy
//	      at 8 goroutines.
//
// Absolute numbers depend on the machine; the paper makes no quantitative
// claims, so the interesting output is the relative shape (see
// EXPERIMENTS.md).
//
// With -json, each experiment family additionally writes a machine-
// readable BENCH_<exp>.json file (internal/benchfmt) so the performance
// trajectory can be tracked across commits. With -check, fresh results
// are compared against the committed documents and the run fails on
// regression — the CI gate.
//
// With -record FILE, the whole run executes under the flight recorder
// (internal/hirec) and the recording is written to FILE as Chrome trace
// event JSON (loadable in Perfetto / chrome://tracing).
//
// With -watch, hibench instead runs a built-in mixed workload with
// metrics enabled and redraws a live table of protocol counters and
// latency histograms every -tick. With -http ADDR, any mode additionally
// serves /debug/pprof (with block and mutex profiles enabled),
// /debug/vars (expvar, including the histats tree), a plain-text
// /metrics endpoint and a /trace download of the live flight recording.
//
// Usage:
//
//	hibench [-exp E10,...,E26|all] [-ops N] [-procs list] [-json]
//	        [-check [-tol F] [-benchdir DIR]] [-maxoverhead PCT]
//	        [-record FILE] [-http ADDR] [-watch [-tick D] [-watchfor D]]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"hiconc/internal/hirec"
)

var (
	expFlag   = flag.String("exp", "all", "experiments to run: E10, E11, E12, E20, E21, E22, E23, E24, E25, E26 or 'all'")
	opsFlag   = flag.Int("ops", 200000, "operations per measurement")
	procsFlag = flag.String("procs", "1,2,4,8", "goroutine counts for E11")
	jsonFlag  = flag.Bool("json", false, "write one BENCH_<exp>.json per experiment family")

	checkFlag    = flag.Bool("check", false, "compare fresh results against committed BENCH_<exp>.json and fail on regression")
	tolFlag      = flag.Float64("tol", 0.5, "-check relative tolerance (0.5 = 50% slower fails)")
	benchdirFlag = flag.String("benchdir", ".", "directory holding the committed BENCH_<exp>.json files for -check")

	maxOverheadFlag = flag.Float64("maxoverhead", 2.0, "E24/E25 gate: maximum computed disabled-path observer overhead, percent")

	recordFlag = flag.String("record", "", "run under the flight recorder and write the Chrome trace JSON to this file")

	httpFlag = flag.String("http", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. localhost:6060)")

	watchFlag    = flag.Bool("watch", false, "run a live workload and redraw the protocol-metrics table every -tick")
	tickFlag     = flag.Duration("tick", 500*time.Millisecond, "-watch refresh interval")
	watchForFlag = flag.Duration("watchfor", 10*time.Second, "how long -watch runs (0 = until interrupted)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hibench:", err)
		os.Exit(1)
	}
}

// parseProcs validates and parses the -procs list.
func parseProcs() ([]int, error) {
	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad -procs: %w", err)
		}
		if p < 1 {
			return nil, fmt.Errorf("bad -procs: count %d out of range", p)
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// knownExps is the experiment vocabulary -exp is validated against: a
// typo must fail loudly instead of silently selecting nothing.
var knownExps = []string{"E10", "E11", "E12", "E20", "E21", "E22", "E23", "E24", "E25", "E26"}

// run executes the selected experiment families (split from main so the
// smoke tests can drive it in-process).
func run() (retErr error) {
	// Validate flags before any experiment runs, so a typo cannot discard
	// already-measured families.
	procs, err := parseProcs()
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	for e := range want {
		if e != "ALL" && !slices.Contains(knownExps, e) {
			return fmt.Errorf("unknown experiment %q in -exp (have %s or 'all')",
				e, strings.Join(knownExps, ", "))
		}
	}
	rec.Ops = *opsFlag
	if *httpFlag != "" {
		if err := startHTTP(*httpFlag); err != nil {
			return err
		}
	}
	if *recordFlag != "" {
		flight := hirec.Enable(1 << 15)
		defer func() {
			hirec.Disable()
			if werr := writeFlightTrace(*recordFlag, flight.Snapshot()); werr != nil && retErr == nil {
				retErr = werr
			}
		}()
	}
	if *watchFlag {
		return runWatch(*tickFlag, *watchForFlag)
	}
	all := want["ALL"]
	if all || want["E10"] {
		runE10()
	}
	if all || want["E11"] {
		runE11(procs)
	}
	if all || want["E12"] {
		runE12()
	}
	if all || want["E20"] {
		runE20()
	}
	if all || want["E21"] {
		runE21()
	}
	if all || want["E22"] {
		runE22()
	}
	if all || want["E23"] {
		runE23()
	}
	// The E24/E25 gates must not stop the results from being written or
	// checked; their errors are reported after the bookkeeping below.
	var gateErr error
	if all || want["E24"] {
		gateErr = runE24()
	}
	if all || want["E25"] {
		gateErr = errors.Join(gateErr, runE25())
	}
	if all || want["E26"] {
		gateErr = errors.Join(gateErr, runE26())
	}
	// Read the committed baselines before -json can overwrite them (the
	// common CI invocation runs from the repository root with both flags).
	var checkErr error
	if *checkFlag {
		checkErr = runCheck()
	}
	if *jsonFlag {
		if err := writeJSON(); err != nil {
			return err
		}
	}
	if checkErr != nil {
		return checkErr
	}
	return gateErr
}
