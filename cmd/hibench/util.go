package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hiconc/internal/benchfmt"
	"hiconc/internal/conc"
	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/spec"
	"hiconc/internal/workload"
)

// rec accumulates measurement rows per experiment family for -json and
// -check output (internal/benchfmt owns the document schema).
var rec = benchfmt.NewRecorder()

// record stores one measurement row.
func record(exp, kase, metric string, value float64) {
	rec.Record(exp, kase, metric, value)
}

// recordPerOp stores a ns/op row computed from a duration over n ops.
func recordPerOp(exp, kase string, d time.Duration, n int) {
	rec.RecordPerOp(exp, kase, d, n)
}

// writeJSON emits one BENCH_<exp>.json per recorded family.
func writeJSON() error {
	names, err := rec.WriteFiles(".")
	for _, name := range names {
		fmt.Printf("wrote %s\n", name)
	}
	return err
}

// measurePerKey runs one per-key measurement, records it for -json and
// returns the formatted ns/op cell.
func measurePerKey(exp, kase string, a conc.Applier, n int, mixes [][]core.Op) string {
	d := runPerKey(a, n, *opsFlag/n, mixes)
	recordPerOp(exp, kase, d, *opsFlag)
	return perOp(d, *opsFlag)
}

// perKeyMixes builds one seeded per-key mix per goroutine.
func perKeyMixes(n int, mk func(g *workload.Gen) []core.Op) [][]core.Op {
	mixes := make([][]core.Op, n)
	for pid := range mixes {
		mixes[pid] = mk(workload.NewGen(int64(pid)))
	}
	return mixes
}

// runPerKey drives applier a with n goroutines replaying per-key mixes.
func runPerKey(a conc.Applier, n, opsPer int, mixes [][]core.Op) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := mixes[pid]
				for i := 0; i < opsPer; i++ {
					a.Apply(pid, ops[i%len(ops)])
				}
			}(pid)
		}
		wg.Wait()
	})
}

func runCounter(a conc.Applier, n, opsPer int, readFrac float64) time.Duration {
	return timeIt(func() {
		var wg sync.WaitGroup
		for pid := 0; pid < n; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				ops := workload.NewGen(100+int64(pid)).CounterMix(opsPer, readFrac)
				for _, op := range ops {
					a.Apply(pid, op)
				}
			}(pid)
		}
		wg.Wait()
	})
}

// fullCounter wraps an applier and counts RspFull insert responses — the
// E22 acceptance condition is that the displacing table produces zero.
type fullCounter struct {
	conc.Applier
	fulls int64
}

func (f *fullCounter) Apply(pid int, op core.Op) int {
	rsp := f.Applier.Apply(pid, op)
	if op.Name == spec.OpInsert && rsp == hihash.RspFull {
		atomic.AddInt64(&f.fulls, 1)
	}
	return rsp
}

// preload inserts keys 1..count via pid 0.
func preload(a conc.Applier, count int) {
	for k := 1; k <= count; k++ {
		a.Apply(0, core.Op{Name: spec.OpInsert, Arg: k})
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func perOp(d time.Duration, n int) string {
	return fmt.Sprintf("%.1f ns", float64(d.Nanoseconds())/float64(n))
}
