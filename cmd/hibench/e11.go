package main

import (
	"fmt"
	"sync"

	"hiconc/internal/conc"
	"hiconc/internal/workload"
)

func runE11(procs []int) {
	fmt.Println("=== E11: universal construction scaling (counter, 80% updates)")
	fmt.Printf("%6s %14s %14s %14s %14s\n", "procs", "universal-hi", "leaky", "mutex", "cas-nohelp")
	for _, n := range procs {
		row := make([]string, 0, 4)
		for _, mk := range []func() conc.Applier{
			func() conc.Applier { return conc.NewUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewLeakyUniversal(conc.CounterObj{}, n) },
			func() conc.Applier { return conc.NewMutexObject(conc.CounterObj{}) },
			func() conc.Applier { return conc.NewNoHelpUniversal(conc.CounterObj{}) },
		} {
			a := mk()
			opsPer := *opsFlag / n
			elapsed := timeIt(func() {
				var wg sync.WaitGroup
				for pid := 0; pid < n; pid++ {
					wg.Add(1)
					go func(pid int) {
						defer wg.Done()
						ops := workload.NewGen(int64(pid)).CounterMix(opsPer, 0.2)
						for _, op := range ops {
							a.Apply(pid, op)
						}
					}(pid)
				}
				wg.Wait()
			})
			row = append(row, perOp(elapsed, opsPer*n))
			recordPerOp("E11", fmt.Sprintf("%s/procs=%d", a.Name(), n), elapsed, opsPer*n)
		}
		fmt.Printf("%6d %14s %14s %14s %14s\n", n, row[0], row[1], row[2], row[3])
	}
	fmt.Println("    (ns/op; universal-hi pays a constant factor over leaky for clearing,")
	fmt.Println("     and over cas-nohelp for announcing+helping — the price of wait-free HI)")
	fmt.Println()
}
