package main

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"hiconc/internal/faultinject"
	"hiconc/internal/hihash"
)

// e23Script builds the displacing victim workload of the E23 crash
// matrix, mirroring the internal/faultinject tests: overload group 0
// past its slot budget (forcing eviction), churn one key (forcing a
// flagged remove and a backward-shift pull), then grow (forcing a
// drain). It returns the steps, the key set the script converges to,
// and the abstract states reachable after each step (nil first — the
// empty set — so crash images can be diffed against every candidate).
func e23Script(domain, groups int) (ops []func(s *hihash.Set), heavy []int, candidates [][]int) {
	for k := 1; k <= domain && len(heavy) < hihash.SlotsPerGroup+1; k++ {
		if hihash.GroupOf(k, groups) == 0 {
			heavy = append(heavy, k)
		}
	}
	candidates = append(candidates, nil)
	for i := range heavy {
		k := heavy[i]
		ops = append(ops, func(s *hihash.Set) { s.Insert(k) })
		candidates = append(candidates, append([]int(nil), heavy[:i+1]...))
	}
	churn := heavy[2]
	without := make([]int, 0, len(heavy)-1)
	for _, k := range heavy {
		if k != churn {
			without = append(without, k)
		}
	}
	ops = append(ops,
		func(s *hihash.Set) { s.Remove(churn) },
		func(s *hihash.Set) { s.Insert(churn) },
		func(s *hihash.Set) { s.Grow() },
	)
	candidates = append(candidates, without, heavy, heavy)
	return ops, heavy, candidates
}

func runE23() {
	fmt.Println("=== E23: adversarial observers — crash exposure and recovery cost")
	const domain, groups = 8, 2
	ops, heavy, candidates := e23Script(domain, groups)

	// The Kill matrix as a measurement: per steppoint, how many crash
	// cells the workload reaches, how far the worst stable-geometry image
	// strays from canonical, and what repairing the wreckage costs.
	fmt.Println("\n    Kill matrix (displacing set; dist = 64-bit words from the nearest")
	fmt.Println("    reachable canonical layout; recovery = re-settle keys + grow):")
	fmt.Printf("%16s %8s %10s %10s %14s\n", "steppoint", "cells", "mid-drain", "max dist", "recovery")
	const maxOccurrences = 128
	for sp := hihash.Steppoint(0); sp < hihash.NumSteppoints; sp++ {
		cells, mid, maxDist := 0, 0, 0
		var recovery time.Duration
		for occ := 1; occ <= maxOccurrences; occ++ {
			s := hihash.NewDisplaceSet(domain, groups)
			in := faultinject.Install(faultinject.Plan{Point: sp, Occurrence: occ, Action: faultinject.Kill})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, op := range ops {
					op(s)
				}
			}()
			wg.Wait()
			in.Uninstall()
			if !in.DidFire() {
				break // the workload fires sp fewer than occ times
			}
			cells++
			if d := faultinject.MinCanonicalDistance(s, candidates); d < 0 {
				mid++ // mid-drain image spans two arrays; geometries differ
			} else if d > maxDist {
				maxDist = d
			}
			recovery += timeIt(func() {
				for _, k := range heavy {
					s.Insert(k)
				}
				s.Grow()
			})
		}
		if cells == 0 {
			continue
		}
		perRecovery := float64(recovery.Nanoseconds()) / float64(cells)
		fmt.Printf("%16s %8d %10d %10d %11.0f ns\n", sp, cells, mid, maxDist, perRecovery)
		tag := "kill/" + sp.String()
		record("E23", tag+"/cells", "count", float64(cells))
		record("E23", tag+"/mid-drain", "count", float64(mid))
		record("E23", tag+"/max-distance", "words", float64(maxDist))
		record("E23", tag+"/recovery", "ns/recovery", perRecovery)
	}
	fmt.Println("    (mid-drain cells are incomparable by geometry, not exposed: the")
	fmt.Println("     image spans two group arrays; every cell recovers to canonical)")

	// The observer's own cost: building one history-twin pair (ascending
	// vs descending insert order, both forcing displacement) and
	// byte-diffing their raw dumps — the unit price of the E23 twin check.
	pairs := *opsFlag / 2000
	if pairs < 50 {
		pairs = 50
	}
	mismatches := 0
	tTwin := timeIt(func() {
		for i := 0; i < pairs; i++ {
			a := hihash.NewDisplaceSet(domain, groups)
			b := hihash.NewDisplaceSet(domain, groups)
			for _, k := range heavy {
				a.Insert(k)
			}
			for j := len(heavy) - 1; j >= 0; j-- {
				b.Insert(heavy[j])
			}
			if !bytes.Equal(a.RawDump(), b.RawDump()) {
				mismatches++
			}
		}
	})
	fmt.Printf("\n    twin check (build 2 displacing tables + raw-dump + byte-diff): %s/pair, %d pairs, %d mismatches\n",
		perOp(tTwin, pairs), pairs, mismatches)
	record("E23", "twin/displace-pair", "ns/pair", float64(tTwin.Nanoseconds())/float64(pairs))
	record("E23", "twin/displace-mismatches", "count", float64(mismatches))
}
