package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"hiconc/internal/benchfmt"
)

// runCheck compares this run's fresh measurements against the committed
// BENCH_<exp>.json baselines in -benchdir and fails if any gated metric
// regressed beyond -tol. An experiment without a committed baseline is
// an error, as is a run that recorded nothing: a -check that silently
// checked less than it was asked to is how gates rot (generate and
// commit the baseline with -json when adding a family).
func runCheck() error {
	fams := rec.Families()
	if len(fams) == 0 {
		return fmt.Errorf("-check: no measurements recorded (did -exp select anything?)")
	}
	regressions := 0
	for _, exp := range fams {
		fresh := rec.File(exp)
		path := filepath.Join(*benchdirFlag, fresh.Filename())
		committed, err := benchfmt.ReadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("-check: no committed baseline at %s (generate it with -json and commit it, or drop %s from -exp)", path, exp)
			}
			return fmt.Errorf("-check: %w", err)
		}
		deltas, regressed := benchfmt.Compare(committed, fresh, *tolFlag)
		benchfmt.WriteDeltas(os.Stdout, exp, deltas, *tolFlag)
		regressions += regressed
	}
	if regressions > 0 {
		return fmt.Errorf("-check: %d gated measurement(s) regressed beyond tol=%.0f%%",
			regressions, *tolFlag*100)
	}
	return nil
}
