package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"hiconc/internal/core"
	"hiconc/internal/hihash"
	"hiconc/internal/histats"
	"hiconc/internal/shard"
	"hiconc/internal/trace"
	"hiconc/internal/workload"
)

// e24Sites is the per-operation hot-site budget of the instrumented
// stack: a successful displacing update fires at most one steppoint
// mirror (Inc) plus one probe-length Observe, and lookups fire nothing
// (see DESIGN.md, "Observability outside the HI boundary"). The E24
// gate multiplies this by the measured per-site cost.
const e24Sites = 2

// runE24 measures the histats metrics layer itself: the unit price of a
// disabled site, a disabled-vs-enabled A/B over the E21/E22-shaped
// workloads, a machine-checked bound on the computed disabled-path
// overhead, the protocol-event distributions the enabled run gathers,
// and a raw-dump identity check that metrics stay outside the HI
// boundary. The gate uses the computed overhead (sites x site cost over
// per-op CPU time), not the A/B difference: the difference of two noisy
// wall-clock measurements swings by more than the budget being checked,
// while the computed bound is a stable worst case.
func runE24() error {
	fmt.Println("=== E24: observability — the cost of the metrics layer (internal/histats)")
	const n, domain, mapKeys = 8, 8192, 256

	// Unit price of one disabled site: the atomic load + nil check every
	// instrumented site pays when no recorder is installed.
	histats.Disable()
	hookNs := measureDisabledSite()
	fmt.Printf("\n    disabled site (atomic load + branch): %.2f ns/call\n", hookNs)
	record("E24", "site/disabled", "ns/call", hookNs)

	// Disabled-vs-enabled A/B on the displacing set (the hihash hot path,
	// mirroring E22's load=0.5 row) and the combining map (the
	// universal-construction hot path).
	setMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.SetZipf(8192, domain, 1.01, 0.1)
	})
	runSet := func() time.Duration {
		s := hihash.NewDisplaceSet(domain, domain/8)
		preload(s, domain/4)
		return runPerKey(s, n, *opsFlag/n, setMixes)
	}
	mapMixes := perKeyMixes(n, func(g *workload.Gen) []core.Op {
		return g.MapZipf(8192, mapKeys, 1.5, 0.1)
	})
	runMap := func() time.Duration {
		return runPerKey(shard.NewCombiningMap(n, mapKeys, 4), n, *opsFlag/n, mapMixes)
	}

	tSetOff := runSet()
	tMapOff := runMap()
	r := histats.Enable()
	tSetOn := runSet()
	tMapOn := runMap()
	snap := r.Snapshot()
	histats.Disable()

	offNs := float64(tSetOff.Nanoseconds()) / float64(*opsFlag)
	measured := 100 * (float64(tSetOn.Nanoseconds()) - float64(tSetOff.Nanoseconds())) / float64(tSetOff.Nanoseconds())
	// CPU basis: one wall nanosecond is par CPU nanoseconds at the run's
	// effective parallelism, and each operation pays at most e24Sites
	// disabled sites.
	par := runtime.GOMAXPROCS(0)
	if par > n {
		par = n
	}
	computed := 100 * e24Sites * hookNs / (float64(par) * offNs)
	fmt.Println("\n    disabled vs enabled (ns/op; measured delta is wall-clock noise,")
	fmt.Println("    the computed bound is what the gate checks):")
	fmt.Printf("%12s %12s %12s %12s %12s\n", "workload", "disabled", "enabled", "measured", "computed")
	fmt.Printf("%12s %12s %12s %11.1f%% %11.2f%%\n", "set",
		perOp(tSetOff, *opsFlag), perOp(tSetOn, *opsFlag), measured, computed)
	mapMeasured := 100 * (float64(tMapOn.Nanoseconds()) - float64(tMapOff.Nanoseconds())) / float64(tMapOff.Nanoseconds())
	fmt.Printf("%12s %12s %12s %11.1f%% %12s\n", "map",
		perOp(tMapOff, *opsFlag), perOp(tMapOn, *opsFlag), mapMeasured, "-")
	recordPerOp("E24", "set/disabled", tSetOff, *opsFlag)
	recordPerOp("E24", "set/enabled", tSetOn, *opsFlag)
	record("E24", "set/measured-overhead", "percent", measured)
	record("E24", "set/computed-overhead", "percent", computed)
	recordPerOp("E24", "map/disabled", tMapOff, *opsFlag)
	recordPerOp("E24", "map/enabled", tMapOn, *opsFlag)
	record("E24", "map/measured-overhead", "percent", mapMeasured)

	// What the enabled runs gathered: the retry and probe-length
	// distributions of the protocol under these workloads.
	fmt.Println("\n    protocol events of the enabled runs:")
	fmt.Print(indent(trace.StatsTable(snap, nil), "    "))
	for c := histats.Counter(0); c < histats.NumCounters; c++ {
		if v := snap.Counters[c]; v > 0 {
			record("E24", "events/"+c.String(), "count", float64(v))
		}
	}
	for _, h := range []histats.Hist{histats.HistProbeLen, histats.HistRelocDist, histats.HistBatchSize} {
		hs := &snap.Hists[h]
		if hs.Count == 0 {
			continue
		}
		record("E24", "dist/"+h.String()+"/p50", "value", float64(hs.Quantile(0.50)))
		record("E24", "dist/"+h.String()+"/p99", "value", float64(hs.Quantile(0.99)))
	}

	// The HI-boundary check: the same operation sequence, once with
	// metrics enabled and once disabled, must leave bit-identical raw
	// dumps — metrics observe the execution, never the representation.
	build := func() *hihash.Set {
		s := hihash.NewDisplaceSet(1024, 8)
		for k := 1; k <= 512; k++ {
			s.Insert(k)
		}
		for k := 3; k <= 512; k += 3 {
			s.Remove(k)
		}
		s.Grow()
		return s
	}
	plain := build()
	histats.Enable()
	instrumented := build()
	histats.Disable()
	identical := bytes.Equal(plain.RawDump(), instrumented.RawDump())
	fmt.Printf("\n    HI boundary: raw dumps with metrics enabled vs disabled identical: %v\n", identical)
	record("E24", "hi/rawdump-identical", "bool", b2f(identical))

	if !identical {
		return fmt.Errorf("E24: instrumentation leaked into the representation (raw dumps differ)")
	}
	if computed > *maxOverheadFlag {
		return fmt.Errorf("E24: computed disabled-path overhead %.2f%% exceeds -maxoverhead %.2f%%",
			computed, *maxOverheadFlag)
	}
	fmt.Printf("    gate: computed disabled-path overhead %.2f%% <= %.2f%% budget\n", computed, *maxOverheadFlag)
	return nil
}

// measureDisabledSite times the disabled fast path of one instrumented
// site: histats.Inc with no recorder installed.
func measureDisabledSite() float64 {
	const calls = 5_000_000
	d := timeIt(func() {
		for i := 0; i < calls; i++ {
			histats.Inc(histats.CtrHashCASFail)
		}
	})
	return float64(d.Nanoseconds()) / calls
}

func indent(s, prefix string) string {
	var b bytes.Buffer
	for _, line := range bytes.Split([]byte(s), []byte("\n")) {
		if len(line) > 0 {
			b.WriteString(prefix)
			b.Write(line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
