package main

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"runtime"

	"hiconc/internal/hirec"
	"hiconc/internal/histats"
)

// startHTTP serves the debug endpoints on addr for the lifetime of the
// process: /debug/pprof (with block and mutex profiling enabled so
// contention inside the protocols is visible), /debug/vars (expvar,
// including the live histats tree), a plain-text /metrics exposition and
// a /trace download of the live flight recording (Chrome trace JSON).
func startHTTP(addr string) error {
	// Sample blocking events (channel/cond waits) about once per
	// microsecond blocked, and one mutex contention event in a hundred —
	// cheap enough to leave on for the whole run.
	runtime.SetBlockProfileRate(1000)
	runtime.SetMutexProfileFraction(100)
	histats.PublishExpvar("histats")
	http.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		r := histats.Active()
		if r == nil {
			http.Error(w, "histats disabled (run with -watch, or an E24 enabled phase)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = histats.WriteText(w, r.Snapshot())
	})
	http.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		r := hirec.Active()
		if r == nil {
			http.Error(w, "flight recorder disabled (run with -record)", http.StatusServiceUnavailable)
			return
		}
		// Snapshot is safe against live writers (unsealed slots are
		// skipped), so the trace can be pulled mid-run.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="flight-trace.json"`)
		_ = hirec.WriteChromeTrace(w, r.Snapshot())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-http: %w", err)
	}
	fmt.Printf("serving /debug/pprof, /debug/vars, /metrics and /trace on http://%s\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}
