package main

import (
	"fmt"

	"hiconc/internal/conc"
)

func runE12() {
	fmt.Println("=== E12: the cost of clearing (full Algorithm 5 vs non-clearing ablation)")
	fmt.Printf("%10s %8s %14s %14s %10s\n", "object", "readFrac", "universal-hi", "leaky", "overhead")
	for _, readFrac := range []float64{0.0, 0.5, 0.9} {
		const n = 4
		full := conc.NewUniversal(conc.CounterObj{}, n)
		leaky := conc.NewLeakyUniversal(conc.CounterObj{}, n)
		tFull := runCounter(full, n, *opsFlag/n, readFrac)
		tLeaky := runCounter(leaky, n, *opsFlag/n, readFrac)
		fmt.Printf("%10s %8.1f %14s %14s %9.2fx\n", "counter", readFrac,
			perOp(tFull, *opsFlag), perOp(tLeaky, *opsFlag),
			float64(tFull)/float64(tLeaky))
		recordPerOp("E12", fmt.Sprintf("universal-hi/reads=%.1f", readFrac), tFull, *opsFlag)
		recordPerOp("E12", fmt.Sprintf("leaky/reads=%.1f", readFrac), tLeaky, *opsFlag)
	}
	fmt.Println("    (overhead should be a modest constant factor — clearing adds one")
	fmt.Println("     SC to head, one announce Store and the RL releases per operation)")
}
