// Package hiconc reproduces "History-Independent Concurrent Objects"
// (Attiya, Bender, Farach-Colton, Oshman, Schiller; PODC 2024,
// arXiv:2403.14445) as a Go library.
//
// A concurrent data structure is history independent (HI) when its shared
// memory representation reveals only its current abstract state — never the
// operations that produced it. The paper defines three observation models
// (perfect, state-quiescent, quiescent HI), proves that a large class of
// objects cannot be implemented wait-free and HI from small base objects,
// and gives a wait-free state-quiescent HI universal construction from CAS.
//
// The module layout. Verification-side packages model algorithms in a
// lock-step simulator where every primitive is one scheduled step;
// native-side packages port the same algorithms to goroutines and
// sync/atomic for performance work. The simulated register algorithms live
// in internal/registers, their native ports in internal/conc (alongside the
// native universal construction); the sequential specifications live in
// internal/spec (string-encoded states, used by the simulator and the
// checkers), while internal/conc defines its own Object interface over
// immutable Go values for the native side.
//
//   - internal/core — the abstract-object model of Section 2: operations,
//     responses, and the Spec interface with string-encoded states;
//   - internal/spec — concrete sequential specifications (counter,
//     register, max register, queue, set) for the simulator and checkers;
//   - internal/sim — the lock-step shared-memory simulator in which every
//     configuration's memory representation is observable (the substrate
//     for all verification);
//   - internal/harness — bundles an implementation with its spec and
//     process roles so checkers, fuzzers and adversaries drive any
//     implementation uniformly;
//   - internal/linearize, internal/hicheck — linearizability checking and
//     the history-independence checkers for Definitions 4/5/7/8;
//   - internal/registers — simulated Algorithms 1, 2 and 4, the Section
//     5.1 max register and set, and a queue-with-Peek from binary
//     registers;
//   - internal/llsc, internal/universal — Algorithm 6 (R-LLSC from CAS)
//     and simulated Algorithm 5 (the universal construction), with
//     ablation mutants and the Fatourou–Kallimanis-style baseline;
//   - internal/adversary — the constructive Theorem 17 and Theorem 20
//     impossibility adversaries;
//   - internal/conc — native ports: the R-LLSC Cell, Algorithm 5 (with the
//     leaky ablation and the operation-combining extension), the SWSR
//     register algorithms, sequential objects (counter, register, max
//     register, queue, stack, set, big set, multi-counter) and baselines;
//   - internal/shard — hash-partitioned scale-out objects composing many
//     universal-construction instances into one history-independent set or
//     multi-counter, plus the simulator harness that machine-checks the
//     composition, and the hihash-backed direct-table variant (HashSet);
//   - internal/hihash — the HICHT subsystem: a lock-free hash table whose
//     bucket groups are single CAS words holding keys in canonical
//     priority order, with no serialization point. The bounded variant is
//     perfectly HI; the unbounded variant adds cross-group Robin Hood
//     displacement (marked, helped relocations) and online resize, and is
//     state-quiescent HI — both shipped as machine-checked simulated
//     twins and native sync/atomic ports (Set, Map). Since E26 the
//     native read path is SWAR word-parallel, bounds its validation
//     retries (falling back to helping after K failures) and runs
//     allocation-free, with the pre-E26 scalar probe kept as a
//     differential-testing reference;
//   - internal/obj — the user-facing objects (Counter, Register,
//     MaxRegister, Queue, Stack, Set, ShardedSet, ShardedMap, HashSet,
//     HashMap);
//   - internal/faultinject — the executable HI adversary: deterministic
//     crash injection at the tables' labeled protocol steppoints, raw
//     memory dumps and the canonical-distance differ (E23);
//   - internal/hook — the shared global-observer idiom: a generic
//     atomic hook point with install/uninstall swap semantics, used by
//     the steppoint hook, histats and hirec;
//   - internal/histats — the observability layer: per-goroutine-sharded
//     atomic counters and log-bucketed latency histograms behind one
//     global hook pointer, so the disabled path is a single atomic
//     nil-check; metrics live outside the HI boundary by construction
//     and by machine check (E24);
//   - internal/hirec — the flight recorder: lock-free per-goroutine
//     capture of operation invocations/responses and protocol steps,
//     extracted to linearize histories so native runs and crash
//     schedules are machine-checked post hoc, and exported as Chrome
//     trace JSON and rendered timelines (E25);
//   - internal/benchfmt — the BENCH_<exp>.json document schema, the
//     recorder the drivers share, and the regression comparator behind
//     hibench -check;
//   - internal/workload — seeded operation-mix generators (uniform and
//     Zipf-skewed per-key mixes) for benchmarks and drivers;
//   - internal/trace — paper-figure-style execution rendering (simulated
//     schedules and native flight recordings), plus the live
//     protocol-metrics table behind hibench -watch;
//   - internal/hilint — the static-invariant suite: project-specific
//     analyzers (steppoint labeling, the hook.Point load idiom, the
//     write-free read path and unsafe perimeter, the sleep-wait ban)
//     over a minimal dependency-free go/analysis-style framework, plus
//     the escape-audit gate that proves the declared lookup hot paths
//     compile with zero heap escapes; cmd/hilint runs it all and CI
//     gates on it;
//   - cmd/hiverify, cmd/histarve, cmd/hibench, cmd/hitrace — the
//     experiment drivers (see EXPERIMENTS.md).
//
// This file's directory also hosts the root benchmark harness
// (bench_test.go), with one benchmark family per experiment.
package hiconc
