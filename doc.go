// Package hiconc reproduces "History-Independent Concurrent Objects"
// (Attiya, Bender, Farach-Colton, Oshman, Schiller; PODC 2024,
// arXiv:2403.14445) as a Go library.
//
// A concurrent data structure is history independent (HI) when its shared
// memory representation reveals only its current abstract state — never the
// operations that produced it. The paper defines three observation models
// (perfect, state-quiescent, quiescent HI), proves that a large class of
// objects cannot be implemented wait-free and HI from small base objects,
// and gives a wait-free state-quiescent HI universal construction from CAS.
//
// The module layout:
//
//   - internal/core, internal/spec — abstract objects and sequential
//     specifications (Section 2);
//   - internal/sim — a lock-step shared-memory simulator in which every
//     primitive is one scheduled step and every configuration's memory
//     representation is observable (the substrate for all verification);
//   - internal/linearize, internal/hicheck — linearizability checking and
//     the history-independence checkers for Definitions 4/5/7/8;
//   - internal/registers — Algorithms 1, 2 and 4, the Section 5.1 max
//     register and set, and a queue-with-Peek from binary registers;
//   - internal/llsc, internal/universal — Algorithm 6 (R-LLSC from CAS) and
//     Algorithm 5 (the universal construction), with ablation mutants;
//   - internal/adversary — the constructive Theorem 17 and Theorem 20
//     impossibility adversaries;
//   - internal/conc, internal/obj — native goroutine/atomic ports and the
//     user-facing objects (Counter, Register, MaxRegister, Queue, Stack,
//     Set);
//   - cmd/hiverify, cmd/histarve, cmd/hibench, cmd/hitrace — the
//     experiment drivers (see EXPERIMENTS.md).
//
// This file's directory also hosts the root benchmark harness
// (bench_test.go), with one benchmark family per experiment.
package hiconc
